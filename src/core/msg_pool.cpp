#include "core/msg_pool.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "converse/msg.h"
#include "core/pe_state.h"

namespace converse {
namespace detail {
namespace {

// Size classes cover the message's own bytes (header + payload); the
// PoolPrefix rides in front of every block on top of these.  The range runs
// to 64 KiB so aggregation frames and shared-broadcast blocks — the large
// buffers on the zero-copy paths — recycle through freelists too.
constexpr std::size_t kClassBytes[] = {64,   128,  256,   512,   1024,  2048,
                                       4096, 8192, 16384, 32768, 65536};
constexpr int kNumClasses =
    static_cast<int>(sizeof(kClassBytes) / sizeof(kClassBytes[0]));
static_assert(kNumClasses <= CmiMemoryStats::kMaxSizeClasses);

/// Freelist misses carve blocks out of arena chunks this large, allocated
/// (and first written) by the owning PE's thread — so under a first-touch
/// NUMA policy every page of a PE's pool lands on that PE's node, and the
/// global allocator is hit once per chunk instead of once per block.
constexpr std::size_t kArenaChunkBytes = 256 * 1024;

/// Oversize (> largest class) buffers parked per owning PE, most recently
/// freed first; bounds keep the cache from pinning unbounded memory.
constexpr std::size_t kOversizeCacheSlots = 8;
constexpr std::size_t kOversizeCacheBytes = 16u * 1024 * 1024;

constexpr std::uint32_t kPrefixPooled = 0x506F4F4Cu;  // "PoOL"
constexpr std::uint32_t kPrefixDirect = 0x44495243u;  // "DIRC"
constexpr std::uint32_t kPrefixBig = 0x42494721u;     // "BIG!"

struct PoolPrefix {
  void* owner_or_next;  // live: owning MsgPool*; free: freelist/return link
  std::uint32_t tag;    // kPrefixPooled / kPrefixDirect / kPrefixBig
  std::uint16_t size_class;  // kPrefixBig: low half of the capacity
  std::uint16_t unused;      // kPrefixBig: high half of the capacity
};
static_assert(sizeof(PoolPrefix) == 16,
              "prefix must preserve the message's 16-byte alignment");

PoolPrefix* PrefixOf(void* msg) {
  return reinterpret_cast<PoolPrefix*>(static_cast<char*>(msg) -
                                       sizeof(PoolPrefix));
}
const PoolPrefix* PrefixOf(const void* msg) {
  return reinterpret_cast<const PoolPrefix*>(static_cast<const char*>(msg) -
                                             sizeof(PoolPrefix));
}

/// kPrefixBig capacity, split across the two u16 fields (u32 covers it:
/// message sizes are u32 on the wire).
std::size_t BigCapacity(const PoolPrefix* p) {
  return static_cast<std::size_t>(p->size_class) |
         (static_cast<std::size_t>(p->unused) << 16);
}
void SetBigCapacity(PoolPrefix* p, std::size_t bytes) {
  p->size_class = static_cast<std::uint16_t>(bytes & 0xffffu);
  p->unused = static_cast<std::uint16_t>((bytes >> 16) & 0xffffu);
}

int ClassFor(std::size_t nbytes) {
  for (int c = 0; c < kNumClasses; ++c) {
    if (nbytes <= kClassBytes[c]) return c;
  }
  return -1;
}

/// Single-writer counter: relaxed load+store compiles to a plain
/// increment (no lock prefix) yet keeps cross-thread snapshot reads clean.
class OwnerCounter {
 public:
  void Inc() {
    v_.store(v_.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }
  void Add(std::uint64_t n) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  std::uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

std::atomic<std::uint64_t> g_direct_allocs{0};

void* DirectAlloc(std::size_t nbytes) {
  g_direct_allocs.fetch_add(1, std::memory_order_relaxed);
  void* raw =
      ::operator new(sizeof(PoolPrefix) + nbytes, std::align_val_t{16});
  void* msg = static_cast<char*>(raw) + sizeof(PoolPrefix);
  PoolPrefix* p = PrefixOf(msg);
  p->owner_or_next = nullptr;
  p->tag = kPrefixDirect;
  p->size_class = 0;
  p->unused = 0;
  return msg;
}

bool ComputeEnabled() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  bool enabled_default = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  bool enabled_default = false;
#else
  bool enabled_default = true;
#endif
#else
  bool enabled_default = true;
#endif
  const char* env = std::getenv("CONVERSE_POOL");
  if (env != nullptr && env[0] != '\0') return env[0] != '0';
  return enabled_default;
}

}  // namespace

class MsgPool {
 public:
  /// Owner thread only.
  void* Alloc(std::size_t nbytes) {
    const int cls = ClassFor(nbytes);
    if (cls < 0) return OversizeAlloc(nbytes);
    void* blk = freelist_[cls];
    if (blk == nullptr) {
      ReclaimReturns();
      blk = freelist_[cls];
    }
    if (blk != nullptr) {
      freelist_[cls] = PrefixOf(blk)->owner_or_next;
      class_hits_[cls].Inc();
    } else {
      class_misses_[cls].Inc();
      blk = CarveFromArena(sizeof(PoolPrefix) + kClassBytes[cls]);
    }
    PoolPrefix* p = PrefixOf(blk);
    p->owner_or_next = this;
    p->tag = kPrefixPooled;
    p->size_class = static_cast<std::uint16_t>(cls);
    p->unused = 0;
    return blk;
  }

  /// Owner thread only.
  void LocalFree(void* msg, int cls) {
    PoolPrefix* p = PrefixOf(msg);
    p->owner_or_next = freelist_[cls];
    freelist_[cls] = msg;
    local_frees_.Inc();
  }

  /// Owner thread only: park (or drop) an oversize buffer.
  void OversizeFree(void* msg) {
    PoolPrefix* p = PrefixOf(msg);
    const std::size_t cap = BigCapacity(p);
    if (big_cache_.size() >= kOversizeCacheSlots ||
        big_cache_bytes_ + cap > kOversizeCacheBytes) {
      ::operator delete(static_cast<char*>(msg) - sizeof(PoolPrefix),
                        std::align_val_t{16});
      return;
    }
    big_cache_.push_back(msg);
    big_cache_bytes_ += cap;
    oversize_cached_.Inc();
    local_frees_.Inc();
  }

  /// Any thread: Treiber push onto the owner's return stack.
  void RemoteFree(void* msg) {
    PoolPrefix* p = PrefixOf(msg);
    void* head = returns_.load(std::memory_order_relaxed);
    do {
      p->owner_or_next = head;
    } while (!returns_.compare_exchange_weak(head, msg,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    remote_frees_.fetch_add(1, std::memory_order_relaxed);
  }

  void AccumInto(CmiMemoryStats& s) const {
    s.size_classes = kNumClasses;
    for (int c = 0; c < kNumClasses; ++c) {
      s.class_bytes[c] = kClassBytes[c];
      s.class_hits[c] += class_hits_[c].Get();
      s.class_misses[c] += class_misses_[c].Get();
      s.pool_hits += class_hits_[c].Get();
      s.pool_misses += class_misses_[c].Get();
    }
    s.local_frees += local_frees_.Get();
    s.remote_frees += remote_frees_.load(std::memory_order_relaxed);
    s.remote_reclaimed += remote_reclaimed_.Get();
    s.arena_chunks += arena_chunks_.Get();
    s.arena_bytes += arena_bytes_.Get();
    s.oversize_cached += oversize_cached_.Get();
    s.oversize_reused += oversize_reused_.Get();
  }

 private:
  /// Owner thread only: swap the whole return stack out at once (no ABA)
  /// and sort the blocks back into the freelists (or the oversize cache).
  void ReclaimReturns() {
    void* list = returns_.exchange(nullptr, std::memory_order_acquire);
    while (list != nullptr) {
      PoolPrefix* p = PrefixOf(list);
      void* next = p->owner_or_next;
      if (p->tag == kPrefixBig) {
        remote_reclaimed_.Inc();
        OversizeFree(list);
        list = next;
        continue;
      }
      assert(p->tag == kPrefixPooled && p->size_class < kNumClasses);
      p->owner_or_next = freelist_[p->size_class];
      freelist_[p->size_class] = list;
      remote_reclaimed_.Inc();
      list = next;
    }
  }

  /// Owner thread only: bump-allocate `bytes` (a multiple of 16) from the
  /// current arena chunk, starting a new chunk when it runs out.  The chunk
  /// is written first by this thread (the prefix/header stores that follow
  /// immediately), which is what places its pages locally under first-touch.
  void* CarveFromArena(std::size_t bytes) {
    assert(bytes % 16 == 0 && bytes <= kArenaChunkBytes);
    if (static_cast<std::size_t>(arena_end_ - arena_cur_) < bytes) {
      arena_cur_ =
          static_cast<char*>(::operator new(kArenaChunkBytes,
                                            std::align_val_t{16}));
      arena_end_ = arena_cur_ + kArenaChunkBytes;  // chunk leaks with pool
      arena_chunks_.Inc();
      arena_bytes_.Add(kArenaChunkBytes);
    }
    char* raw = arena_cur_;
    arena_cur_ += bytes;
    return raw + sizeof(PoolPrefix);
  }

  /// Owner thread only: serve an oversize request from the LIFO cache
  /// (most-recently-freed first — the warmest pages) or the allocator.
  void* OversizeAlloc(std::size_t nbytes) {
    for (std::size_t i = big_cache_.size(); i-- > 0;) {
      void* msg = big_cache_[i];
      PoolPrefix* p = PrefixOf(msg);
      const std::size_t cap = BigCapacity(p);
      if (cap < nbytes) continue;
      big_cache_.erase(big_cache_.begin() + static_cast<std::ptrdiff_t>(i));
      big_cache_bytes_ -= cap;
      oversize_reused_.Inc();
      p->owner_or_next = this;
      return msg;
    }
    g_direct_allocs.fetch_add(1, std::memory_order_relaxed);
    void* raw =
        ::operator new(sizeof(PoolPrefix) + nbytes, std::align_val_t{16});
    void* msg = static_cast<char*>(raw) + sizeof(PoolPrefix);
    PoolPrefix* p = PrefixOf(msg);
    p->owner_or_next = this;
    p->tag = kPrefixBig;
    SetBigCapacity(p, nbytes);
    return msg;
  }

  void* freelist_[kNumClasses] = {};
  char* arena_cur_ = nullptr;
  char* arena_end_ = nullptr;
  std::vector<void*> big_cache_;
  std::size_t big_cache_bytes_ = 0;
  OwnerCounter class_hits_[kNumClasses], class_misses_[kNumClasses];
  OwnerCounter local_frees_, remote_reclaimed_;
  OwnerCounter arena_chunks_, arena_bytes_;
  OwnerCounter oversize_cached_, oversize_reused_;
  alignas(64) std::atomic<void*> returns_{nullptr};
  std::atomic<std::uint64_t> remote_frees_{0};
};

namespace {

std::mutex g_registry_mu;
std::vector<MsgPool*>& Registry() {
  static std::vector<MsgPool*>* r = new std::vector<MsgPool*>;  // leaked
  return *r;
}

/// The calling thread's pool, or nullptr outside a PE thread.
MsgPool* MyPool() {
  PeState* pe = Cpv();
  return pe != nullptr ? pe->pool : nullptr;
}

}  // namespace

bool MsgPoolEnabled() {
  static const bool enabled = ComputeEnabled();
  return enabled;
}

MsgPool* MsgPoolForSlot(int slot) {
  assert(slot >= 0);
  std::scoped_lock lk(g_registry_mu);
  auto& pools = Registry();
  if (pools.size() <= static_cast<std::size_t>(slot)) {
    pools.resize(static_cast<std::size_t>(slot) + 1, nullptr);
  }
  if (pools[static_cast<std::size_t>(slot)] == nullptr) {
    pools[static_cast<std::size_t>(slot)] = new MsgPool;  // leaked: pools
    // outlive machines so post-teardown frees stay valid, and the next
    // machine's same slot reuses them.
  }
  return pools[static_cast<std::size_t>(slot)];
}

void* MsgPoolAlloc(std::size_t nbytes) {
  if (!MsgPoolEnabled()) {
    return ::operator new(nbytes, std::align_val_t{16});
  }
  MsgPool* pool = MyPool();
  if (pool != nullptr) return pool->Alloc(nbytes);
  return DirectAlloc(nbytes);
}

void MsgPoolFree(void* msg) {
  if (!MsgPoolEnabled()) {
    ::operator delete(msg, std::align_val_t{16});
    return;
  }
  PoolPrefix* p = PrefixOf(msg);
  if (p->tag == kPrefixDirect) {
    ::operator delete(static_cast<char*>(msg) - sizeof(PoolPrefix),
                      std::align_val_t{16});
    return;
  }
  if (p->tag == kPrefixBig) {
    auto* owner = static_cast<MsgPool*>(p->owner_or_next);
    if (owner == MyPool()) {
      owner->OversizeFree(msg);
    } else {
      owner->RemoteFree(msg);
    }
    return;
  }
  assert(p->tag == kPrefixPooled && "CmiFree of a non-CmiAlloc buffer");
  auto* owner = static_cast<MsgPool*>(p->owner_or_next);
  if (owner == MyPool()) {
    owner->LocalFree(msg, p->size_class);
  } else {
    owner->RemoteFree(msg);
  }
}

bool MsgPoolIsPooled(const void* msg) {
  return MsgPoolEnabled() && PrefixOf(msg)->tag == kPrefixPooled;
}

void MsgPoolRestampFlag(void* msg) {
  MsgHeader* h = Header(msg);
  // A restamped buffer is by definition a fresh standalone allocation; the
  // source header may have belonged to an in-frame or shared-broadcast view
  // (or a shared block whose image got CopyMessage'd wholesale).
  h->flags = static_cast<std::uint8_t>(
      h->flags & ~(kMsgFlagInFrame | kMsgFlagSbcast | kMsgFlagShared));
  if (MsgPoolIsPooled(msg)) {
    h->flags = static_cast<std::uint8_t>(h->flags | kMsgFlagPooled);
  } else {
    h->flags = static_cast<std::uint8_t>(h->flags & ~kMsgFlagPooled);
  }
}

CmiMemoryStats MsgPoolStats() {
  CmiMemoryStats s;
  s.pool_enabled = MsgPoolEnabled();
  s.direct_allocs = g_direct_allocs.load(std::memory_order_relaxed);
  std::scoped_lock lk(g_registry_mu);
  for (MsgPool* pool : Registry()) {
    if (pool != nullptr) pool->AccumInto(s);
  }
  return s;
}

}  // namespace detail

CmiMemoryStats CmiGetMemoryStats() { return detail::MsgPoolStats(); }

}  // namespace converse
