#include "core/msg_pool.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "converse/msg.h"
#include "core/pe_state.h"

namespace converse {
namespace detail {
namespace {

// Size classes cover the message's own bytes (header + payload); the
// PoolPrefix rides in front of every block on top of these.
constexpr std::size_t kClassBytes[] = {64, 128, 256, 512, 1024, 2048, 4096};
constexpr int kNumClasses =
    static_cast<int>(sizeof(kClassBytes) / sizeof(kClassBytes[0]));

constexpr std::uint32_t kPrefixPooled = 0x506F4F4Cu;  // "PoOL"
constexpr std::uint32_t kPrefixDirect = 0x44495243u;  // "DIRC"

struct PoolPrefix {
  void* owner_or_next;  // live: owning MsgPool*; free: freelist/return link
  std::uint32_t tag;    // kPrefixPooled / kPrefixDirect
  std::uint16_t size_class;
  std::uint16_t unused;
};
static_assert(sizeof(PoolPrefix) == 16,
              "prefix must preserve the message's 16-byte alignment");

PoolPrefix* PrefixOf(void* msg) {
  return reinterpret_cast<PoolPrefix*>(static_cast<char*>(msg) -
                                       sizeof(PoolPrefix));
}
const PoolPrefix* PrefixOf(const void* msg) {
  return reinterpret_cast<const PoolPrefix*>(static_cast<const char*>(msg) -
                                             sizeof(PoolPrefix));
}

int ClassFor(std::size_t nbytes) {
  for (int c = 0; c < kNumClasses; ++c) {
    if (nbytes <= kClassBytes[c]) return c;
  }
  return -1;
}

/// Single-writer counter: relaxed load+store compiles to a plain
/// increment (no lock prefix) yet keeps cross-thread snapshot reads clean.
class OwnerCounter {
 public:
  void Inc() {
    v_.store(v_.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }
  std::uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

std::atomic<std::uint64_t> g_direct_allocs{0};

void* DirectAlloc(std::size_t nbytes) {
  g_direct_allocs.fetch_add(1, std::memory_order_relaxed);
  void* raw =
      ::operator new(sizeof(PoolPrefix) + nbytes, std::align_val_t{16});
  void* msg = static_cast<char*>(raw) + sizeof(PoolPrefix);
  PoolPrefix* p = PrefixOf(msg);
  p->owner_or_next = nullptr;
  p->tag = kPrefixDirect;
  p->size_class = 0;
  p->unused = 0;
  return msg;
}

bool ComputeEnabled() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  bool enabled_default = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  bool enabled_default = false;
#else
  bool enabled_default = true;
#endif
#else
  bool enabled_default = true;
#endif
  const char* env = std::getenv("CONVERSE_POOL");
  if (env != nullptr && env[0] != '\0') return env[0] != '0';
  return enabled_default;
}

}  // namespace

class MsgPool {
 public:
  /// Owner thread only.
  void* Alloc(std::size_t nbytes) {
    const int cls = ClassFor(nbytes);
    if (cls < 0) return DirectAlloc(nbytes);
    void* blk = freelist_[cls];
    if (blk == nullptr) {
      ReclaimReturns();
      blk = freelist_[cls];
    }
    if (blk != nullptr) {
      freelist_[cls] = PrefixOf(blk)->owner_or_next;
      hits_.Inc();
    } else {
      misses_.Inc();
      void* raw = ::operator new(sizeof(PoolPrefix) + kClassBytes[cls],
                                 std::align_val_t{16});
      blk = static_cast<char*>(raw) + sizeof(PoolPrefix);
    }
    PoolPrefix* p = PrefixOf(blk);
    p->owner_or_next = this;
    p->tag = kPrefixPooled;
    p->size_class = static_cast<std::uint16_t>(cls);
    p->unused = 0;
    return blk;
  }

  /// Owner thread only.
  void LocalFree(void* msg, int cls) {
    PoolPrefix* p = PrefixOf(msg);
    p->owner_or_next = freelist_[cls];
    freelist_[cls] = msg;
    local_frees_.Inc();
  }

  /// Any thread: Treiber push onto the owner's return stack.
  void RemoteFree(void* msg) {
    PoolPrefix* p = PrefixOf(msg);
    void* head = returns_.load(std::memory_order_relaxed);
    do {
      p->owner_or_next = head;
    } while (!returns_.compare_exchange_weak(head, msg,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    remote_frees_.fetch_add(1, std::memory_order_relaxed);
  }

  void AccumInto(CmiMemoryStats& s) const {
    s.pool_hits += hits_.Get();
    s.pool_misses += misses_.Get();
    s.local_frees += local_frees_.Get();
    s.remote_frees += remote_frees_.load(std::memory_order_relaxed);
    s.remote_reclaimed += remote_reclaimed_.Get();
  }

 private:
  /// Owner thread only: swap the whole return stack out at once (no ABA)
  /// and sort the blocks back into the freelists.
  void ReclaimReturns() {
    void* list = returns_.exchange(nullptr, std::memory_order_acquire);
    while (list != nullptr) {
      PoolPrefix* p = PrefixOf(list);
      void* next = p->owner_or_next;
      assert(p->tag == kPrefixPooled && p->size_class < kNumClasses);
      p->owner_or_next = freelist_[p->size_class];
      freelist_[p->size_class] = list;
      remote_reclaimed_.Inc();
      list = next;
    }
  }

  void* freelist_[kNumClasses] = {};
  OwnerCounter hits_, misses_, local_frees_, remote_reclaimed_;
  alignas(64) std::atomic<void*> returns_{nullptr};
  std::atomic<std::uint64_t> remote_frees_{0};
};

namespace {

std::mutex g_registry_mu;
std::vector<MsgPool*>& Registry() {
  static std::vector<MsgPool*>* r = new std::vector<MsgPool*>;  // leaked
  return *r;
}

/// The calling thread's pool, or nullptr outside a PE thread.
MsgPool* MyPool() {
  PeState* pe = Cpv();
  return pe != nullptr ? pe->pool : nullptr;
}

}  // namespace

bool MsgPoolEnabled() {
  static const bool enabled = ComputeEnabled();
  return enabled;
}

MsgPool* MsgPoolForSlot(int slot) {
  assert(slot >= 0);
  std::scoped_lock lk(g_registry_mu);
  auto& pools = Registry();
  if (pools.size() <= static_cast<std::size_t>(slot)) {
    pools.resize(static_cast<std::size_t>(slot) + 1, nullptr);
  }
  if (pools[static_cast<std::size_t>(slot)] == nullptr) {
    pools[static_cast<std::size_t>(slot)] = new MsgPool;  // leaked: pools
    // outlive machines so post-teardown frees stay valid, and the next
    // machine's same slot reuses them.
  }
  return pools[static_cast<std::size_t>(slot)];
}

void* MsgPoolAlloc(std::size_t nbytes) {
  if (!MsgPoolEnabled()) {
    return ::operator new(nbytes, std::align_val_t{16});
  }
  MsgPool* pool = MyPool();
  if (pool != nullptr) return pool->Alloc(nbytes);
  return DirectAlloc(nbytes);
}

void MsgPoolFree(void* msg) {
  if (!MsgPoolEnabled()) {
    ::operator delete(msg, std::align_val_t{16});
    return;
  }
  PoolPrefix* p = PrefixOf(msg);
  if (p->tag == kPrefixDirect) {
    ::operator delete(static_cast<char*>(msg) - sizeof(PoolPrefix),
                      std::align_val_t{16});
    return;
  }
  assert(p->tag == kPrefixPooled && "CmiFree of a non-CmiAlloc buffer");
  auto* owner = static_cast<MsgPool*>(p->owner_or_next);
  if (owner == MyPool()) {
    owner->LocalFree(msg, p->size_class);
  } else {
    owner->RemoteFree(msg);
  }
}

bool MsgPoolIsPooled(const void* msg) {
  return MsgPoolEnabled() && PrefixOf(msg)->tag == kPrefixPooled;
}

void MsgPoolRestampFlag(void* msg) {
  MsgHeader* h = Header(msg);
  // A restamped buffer is by definition a fresh standalone allocation; the
  // source header may have belonged to an in-frame view.
  h->flags = static_cast<std::uint8_t>(h->flags & ~kMsgFlagInFrame);
  if (MsgPoolIsPooled(msg)) {
    h->flags = static_cast<std::uint8_t>(h->flags | kMsgFlagPooled);
  } else {
    h->flags = static_cast<std::uint8_t>(h->flags & ~kMsgFlagPooled);
  }
}

CmiMemoryStats MsgPoolStats() {
  CmiMemoryStats s;
  s.pool_enabled = MsgPoolEnabled();
  s.direct_allocs = g_direct_allocs.load(std::memory_order_relaxed);
  std::scoped_lock lk(g_registry_mu);
  for (MsgPool* pool : Registry()) {
    if (pool != nullptr) pool->AccumInto(s);
  }
  return s;
}

}  // namespace detail

CmiMemoryStats CmiGetMemoryStats() { return detail::MsgPoolStats(); }

}  // namespace converse
