#include "core/env.h"

#include <cerrno>
#include <cstdlib>

namespace converse::detail {

bool ParseInt(const char* text, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno == ERANGE) return false;
  if (end == text || *end != '\0') return false;  // no digits / trailing junk
  *out = v;
  return true;
}

long long GetEnvInt(const char* name, long long fallback, std::FILE* err,
                    bool warn) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  long long v = 0;
  if (ParseInt(text, &v)) return v;
  if (warn && err != nullptr) {
    std::fprintf(err,
                 "[Cmi] ignoring malformed %s=\"%s\": expected an integer, "
                 "using default %lld\n",
                 name, text, fallback);
    std::fflush(err);
  }
  return fallback;
}

}  // namespace converse::detail
