#include "core/transport/wire.h"

#include <cstring>

namespace converse::detail {

std::uint16_t WireCheck(const WireRec& rec) {
  // xor-fold the six 16-bit words before `check`; seed so an all-zero
  // header (freshly cleared memory) does not verify.
  std::uint16_t x = 0xC0DE;
  x ^= static_cast<std::uint16_t>(rec.magic & 0xFFFFu);
  x ^= static_cast<std::uint16_t>(rec.magic >> 16);
  x ^= static_cast<std::uint16_t>(rec.length & 0xFFFFu);
  x ^= static_cast<std::uint16_t>(rec.length >> 16);
  x ^= rec.dest_pe;
  x ^= rec.src_node;
  x ^= static_cast<std::uint16_t>(rec.kind | (rec.flags << 8));
  return x;
}

void WireEncode(const WireRec& rec, unsigned char out[kWireRecBytes]) {
  WireRec r = rec;
  r.magic = kWireMagic;
  r.check = WireCheck(r);
  std::memcpy(out, &r, kWireRecBytes);
}

bool WireDecode(const unsigned char in[kWireRecBytes], WireRec* rec) {
  std::memcpy(rec, in, kWireRecBytes);
  if (rec->magic != kWireMagic) return false;
  if (rec->check != WireCheck(*rec)) return false;
  if (rec->kind < kWireMessage || rec->kind > kWireGoodbye) return false;
  return true;
}

void WireParser::Append(const void* data, std::size_t n) {
  // Compact before growing: keeps the buffer bounded by one read chunk
  // plus one partial record instead of the whole connection history.
  if (off_ > 0 && off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(off_));
    off_ = 0;
  }
  const unsigned char* p = static_cast<const unsigned char*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

int WireParser::Next(WireRec* rec, const unsigned char** body) {
  if (pending() < kWireRecBytes) return 0;
  if (!WireDecode(buf_.data() + off_, rec)) return -1;
  if (pending() < kWireRecBytes + rec->length) return 0;
  *body = buf_.data() + off_ + kWireRecBytes;
  off_ += kWireRecBytes + rec->length;
  return 1;
}

}  // namespace converse::detail
