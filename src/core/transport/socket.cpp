// Real-socket wire backend (config.mynode >= 0): each OS process hosts one
// node's contiguous PE slice; peers talk over a full mesh of Unix-domain
// (CONVERSE_RDV directory) or loopback-TCP (CONVERSE_TCP_BASE) byte
// streams carrying the length-prefixed records of core/transport/wire.h.
//
// Threading model: ONE comm thread per node (the "one comm drain" of the
// two-level SMP design).  PE threads never touch a socket — SendRemote /
// SendNodeCast serialize the record into a per-peer outbox under one
// engine mutex and poke a wake pipe; the comm thread gathers queued
// records with sendmsg (many records per syscall — aggregation frames are
// the wire unit, so one syscall often moves hundreds of logical
// messages), reads 64 KiB chunks, and injects rebuilt messages straight
// onto the destination PE's delivery lane (DeliverFromWire) or expands
// node-cast records (CstNodeCastExpand).
//
// Rendezvous: node i listens at its well-known address and CONNECTS to
// every j < i (retry with backoff until wire_timeout_ms), then sends a
// hello record identifying itself; node j learns who called from that
// hello.  Exactly one duplex stream per node pair.
//
// Shutdown: Machine::Run calls Stop() after the PE threads joined.  The
// comm thread flushes every outbox, sends a goodbye record on each
// stream, and keeps reading (still delivering) until every peer's goodbye
// (or EOF) arrives — closing abruptly instead would RST away bytes the
// peer has not read yet.
//
// Failure: a stream that drops without a goodbye is reconnected by the
// connecting side with backoff; the front outbox record is retransmitted
// from its start (the receiver's parser discarded any partial record at
// EOF).  A peer that stays down past wire_timeout_ms aborts the machine —
// the satellite fault tests kill a child mid-stream and expect exactly
// that.
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "converse/check.h"
#include "converse/msg.h"
#include "converse/util/timer.h"
#include "core/msg_pool.h"
#include "core/pe_state.h"
#include "core/stream.h"
#include "core/transport/transport.h"
#include "core/transport/wire.h"

namespace converse::detail {
namespace {

/// One wire record (header + body) waiting in an outbox; `off` tracks
/// partial sendmsg progress on the deque's front element.  Small records
/// are fully serialized into `data`; large ones keep only the 16-byte
/// header there and gather the body straight out of the owned message
/// (`msg`), which is freed once the record has fully left the kernel —
/// the sendmsg iovec is the zero-copy boundary, not a staging memcpy.
struct OutBuf {
  std::vector<unsigned char> data;
  void* msg = nullptr;       // owned message backing the body (or null)
  std::size_t msg_len = 0;   // body bytes inside *msg
  std::size_t off = 0;       // progress over data + msg body
  std::size_t size() const { return data.size() + msg_len; }
};

/// Per-peer connection state.  fd/parser/flags are comm-thread-only;
/// `outbox` is shared with PE threads under SocketEngine::mu_.
struct Peer {
  int fd = -1;
  bool hello_rx = false;
  bool goodbye_rx = false;
  bool goodbye_tx = false;
  std::deque<OutBuf> outbox;
  WireParser parser;
  std::int64_t down_since_ns = -1;  // -1 while the stream is up
  std::int64_t next_dial_ns = 0;    // reconnect backoff gate
  // Direct-fill receive: a large in-flight message body being read()
  // straight into its final allocation (the mirror of the send gather).
  void* rx_msg = nullptr;
  std::uint32_t rx_len = 0;  // body bytes expected
  std::uint32_t rx_off = 0;  // body bytes landed so far
  WireRec rx_rec;
};

/// An accepted connection whose hello has not arrived yet.
struct Pending {
  int fd;
  WireParser parser;
};

/// Bodies at least this large skip the outbox staging memcpy and are
/// gathered by sendmsg straight from the (transferred-ownership) message.
/// Below it the copy is cheaper than carrying ownership around.
constexpr std::uint32_t kGatherMinBytes = 4096;

void SetNonBlocking(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

/// Deepen the kernel buffers: the drain loop moves data in large batched
/// writes, and a deeper pipe means fewer sender stalls and context
/// switches when both ranks share cores (the kernel may clamp the value).
void WidenSocketBuffers(int fd) {
  const int bytes = 1 << 20;
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

class SocketEngine : public Transport {
 public:
  explicit SocketEngine(Machine& m) : machine_(m) {}

  ~SocketEngine() override {
    // Stop() normally ran from Machine::Run; this is the safety net for a
    // machine torn down without running.
    Stop();
    CloseAll();
  }

  const char* name() const override { return "socket"; }

  void Start() override {
    const MachineConfig& c = machine_.config();
    mynode_ = c.mynode;
    peers_.resize(static_cast<std::size_t>(c.nnodes));
    unix_mode_ =
        c.rendezvous_dir != nullptr && c.rendezvous_dir[0] != '\0';
    if (!unix_mode_ && c.tcp_base_port <= 0) {
      throw std::runtime_error(
          "[Cmi] socket transport needs a rendezvous: set CONVERSE_RDV to "
          "a shared directory or CONVERSE_TCP_BASE to a port");
    }
    if (pipe(wake_) != 0) {
      throw std::runtime_error("[Cmi] socket transport: pipe() failed");
    }
    SetNonBlocking(wake_[0]);
    SetNonBlocking(wake_[1]);
    OpenListener();
    // Higher-numbered nodes dial us; start their rendezvous clocks now so
    // a peer that dies before ever connecting trips the wire timeout in
    // TendDisconnected instead of leaving this node waiting forever (the
    // clock clears when the peer's hello arrives).
    const std::int64_t now = util::NowNs();
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (static_cast<int>(i) > mynode_) {
        peers_[i].down_since_ns = now;
      }
    }
    running_ = true;
    comm_ = std::thread([this] { CommMain(); });
  }

  void Stop() override {
    if (!running_) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down_ = true;
    }
    Wake();
    comm_.join();
    running_ = false;
    CloseAll();
  }

  bool SendRemote(PeState& src, int dest_pe, void* msg,
                  bool immediate) override {
    MsgHeader* h = Header(msg);
    // Carriers that forward by pointer never cross the wire; broadcasts
    // arrive here only as node-cast records.
    assert((h->flags & (kMsgFlagBcast | kMsgFlagSbcast)) == 0);
    const std::uint32_t len = h->total_size;
    CountRecordSent(src, len);
    if (len >= kGatherMinBytes) {
      // Zero-copy path: the outbox takes ownership and sendmsg gathers
      // the body straight from the message; freed after the last byte.
      Enqueue(machine_.NodeOf(dest_pe),
              immediate ? kWireImmediate : kWireMessage, dest_pe, msg, len,
              msg);
    } else {
      Enqueue(machine_.NodeOf(dest_pe),
              immediate ? kWireImmediate : kWireMessage, dest_pe, msg, len);
      check::OnReclaim(msg);  // the wire consumed the in-flight buffer
      CmiFree(msg);
    }
    return true;  // in the outbox either way: the wire owns it now
  }

  void SendNodeCast(PeState& src, int node, const void* image,
                    std::uint32_t size) override {
    assert(node != mynode_);
    Enqueue(node, kWireNodeCast, machine_.NodeFirst(node), image, size);
    CountRecordSent(src, size);
  }

 private:
  // ---- addresses -----------------------------------------------------

  std::string UnixPath(int node) const {
    std::string p = machine_.config().rendezvous_dir;
    p += "/node";
    p += std::to_string(node);
    p += ".sock";
    return p;
  }

  void OpenListener() {
    if (unix_mode_) {
      listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
      if (listen_fd_ < 0) {
        throw std::runtime_error("[Cmi] socket transport: socket() failed");
      }
      const std::string path = UnixPath(mynode_);
      unlink(path.c_str());
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      if (path.size() >= sizeof(sa.sun_path)) {
        throw std::runtime_error(
            "[Cmi] socket transport: CONVERSE_RDV path too long for a "
            "unix socket address");
      }
      std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
      if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
          0) {
        throw std::runtime_error(
            "[Cmi] socket transport: bind(" + path + ") failed: " +
            std::strerror(errno));
      }
    } else {
      listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
      if (listen_fd_ < 0) {
        throw std::runtime_error("[Cmi] socket transport: socket() failed");
      }
      const int one = 1;
      setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      sa.sin_port = htons(static_cast<std::uint16_t>(
          machine_.config().tcp_base_port + mynode_));
      if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
          0) {
        throw std::runtime_error(
            std::string("[Cmi] socket transport: bind(tcp port) failed: ") +
            std::strerror(errno));
      }
    }
    if (listen(listen_fd_, machine_.config().nnodes + 8) != 0) {
      throw std::runtime_error("[Cmi] socket transport: listen() failed");
    }
    SetNonBlocking(listen_fd_);
  }

  /// One blocking-style dial attempt to `node` (the lower-numbered side of
  /// the pair).  Returns the connected fd or -1.
  int Dial(int node) {
    int fd;
    if (unix_mode_) {
      fd = socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return -1;
      const std::string path = UnixPath(node);
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
      if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        close(fd);
        return -1;
      }
    } else {
      fd = socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return -1;
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      sa.sin_port = htons(static_cast<std::uint16_t>(
          machine_.config().tcp_base_port + node));
      if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        close(fd);
        return -1;
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    WidenSocketBuffers(fd);
    return fd;
  }

  // ---- outboxes (PE threads + comm thread) ---------------------------

  /// Queue one record.  With `owned_msg` set, the body IS the message
  /// image and ownership transfers to the outbox: only the 16-byte header
  /// is built here, sendmsg gathers the body from the message itself, and
  /// the message is freed when the record fully leaves the kernel.
  void Enqueue(int node, std::uint8_t kind, int dest_pe, const void* body,
               std::uint32_t len, void* owned_msg = nullptr) {
    assert(node >= 0 && node < static_cast<int>(peers_.size()) &&
           node != mynode_);
    WireRec rec;
    rec.length = len;
    rec.dest_pe = static_cast<std::uint16_t>(dest_pe);
    rec.src_node = static_cast<std::uint16_t>(mynode_);
    rec.kind = kind;
    OutBuf buf;
    if (owned_msg != nullptr) {
      buf.data.resize(kWireRecBytes);
      WireEncode(rec, buf.data.data());
      buf.msg = owned_msg;
      buf.msg_len = len;
    } else {
      buf.data.resize(kWireRecBytes + len);
      WireEncode(rec, buf.data.data());
      if (len > 0) std::memcpy(buf.data.data() + kWireRecBytes, body, len);
    }
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Peer& p = peers_[static_cast<std::size_t>(node)];
      was_empty = p.outbox.empty();
      p.outbox.push_back(std::move(buf));
    }
    // A non-empty outbox means the comm thread is already draining (or
    // has POLLOUT armed); only the first record needs the wake byte.
    if (was_empty) Wake();
  }

  void Wake() {
    const char b = 1;
    // EAGAIN (pipe full) means the comm thread is hopelessly behind on
    // wakeups already — it will see the work without this byte.
    while (write(wake_[1], &b, 1) < 0 && errno == EINTR) {
    }
  }

  // ---- comm thread ---------------------------------------------------

  void CommMain() {
    // Dial every lower-numbered node; their listeners may not exist yet
    // (processes start in arbitrary order), so retry with backoff.
    const std::int64_t deadline =
        util::NowNs() +
        static_cast<std::int64_t>(machine_.config().wire_timeout_ms) *
            1000000;
    for (int j = 0; j < mynode_; ++j) {
      Peer& p = peers_[static_cast<std::size_t>(j)];
      std::int64_t backoff_ns = 1000000;  // 1 ms, doubling to 100 ms
      for (;;) {
        p.fd = Dial(j);
        if (p.fd >= 0) break;
        if (util::NowNs() > deadline || ShuttingDown()) break;
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
        if (backoff_ns < 100000000) backoff_ns *= 2;
      }
      if (p.fd < 0) {
        if (!ShuttingDown()) {
          Fail("rendezvous with node " + std::to_string(j) +
               " timed out");
        }
        return;
      }
      SendHello(p);
      SetNonBlocking(p.fd);
    }
    Loop();
  }

  void SendHello(Peer& p) {
    WireRec rec;
    rec.length = 0;
    rec.dest_pe = 0;
    rec.src_node = static_cast<std::uint16_t>(mynode_);
    rec.kind = kWireHello;
    unsigned char buf[kWireRecBytes];
    WireEncode(rec, buf);
    // The fd is still blocking here (or the record rides the outbox on
    // reconnect); 16 bytes into a fresh stream cannot meaningfully block.
    std::size_t off = 0;
    while (off < kWireRecBytes) {
      const ssize_t n =
          send(p.fd, buf + off, kWireRecBytes - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return;  // the read side will notice the dead stream
      }
      syscalls_.fetch_add(1, std::memory_order_relaxed);
      off += static_cast<std::size_t>(n);
    }
  }

  bool ShuttingDown() {
    std::lock_guard<std::mutex> lock(mu_);
    return shutting_down_;
  }

  void Fail(const std::string& what) {
    std::fprintf(machine_.err(), "[Cmi] socket transport: %s\n",
                 what.c_str());
    std::fflush(machine_.err());
    machine_.Abort(std::make_exception_ptr(
        std::runtime_error("[Cmi] socket transport: " + what)));
  }

  void Loop() {
    std::int64_t goodbye_deadline = 0;
    for (;;) {
      const bool down = ShuttingDown();
      if (down && goodbye_deadline == 0) {
        goodbye_deadline =
            util::NowNs() +
            static_cast<std::int64_t>(machine_.config().wire_timeout_ms) *
                1000000;
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < peers_.size(); ++i) {
          Peer& p = peers_[i];
          if (static_cast<int>(i) == mynode_ || p.fd < 0 ||
              p.goodbye_tx) {
            continue;
          }
          WireRec rec;
          rec.length = 0;
          rec.dest_pe = 0;
          rec.src_node = static_cast<std::uint16_t>(mynode_);
          rec.kind = kWireGoodbye;
          OutBuf buf;
          buf.data.resize(kWireRecBytes);
          WireEncode(rec, buf.data.data());
          p.outbox.push_back(std::move(buf));
          p.goodbye_tx = true;
        }
      }
      if (down && Drained(goodbye_deadline)) return;

      std::vector<pollfd>& fds = pollfds_;  // reused across iterations
      std::vector<int>& who = pollwho_;  // parallel: peer index, or -1/-2
                                         // for wake/listen, -(3+k) for
                                         // pending_[k]
      fds.clear();
      who.clear();
      fds.push_back({wake_[0], POLLIN, 0});
      who.push_back(-1);
      fds.push_back({listen_fd_, POLLIN, 0});
      who.push_back(-2);
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < peers_.size(); ++i) {
          Peer& p = peers_[i];
          if (p.fd < 0) continue;
          short ev = POLLIN;
          if (!p.outbox.empty()) ev |= POLLOUT;
          fds.push_back({p.fd, ev, 0});
          who.push_back(static_cast<int>(i));
        }
      }
      for (std::size_t k = 0; k < pending_.size(); ++k) {
        fds.push_back({pending_[k].fd, POLLIN, 0});
        who.push_back(-3 - static_cast<int>(k));
      }

      const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
      if (rc < 0 && errno != EINTR) {
        Fail(std::string("poll failed: ") + std::strerror(errno));
        return;
      }

      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents == 0) continue;
        const int tag = who[k];
        if (tag == -1) {
          char sink[256];
          while (read(wake_[0], sink, sizeof(sink)) > 0) {
          }
        } else if (tag == -2) {
          AcceptAll();
        } else if (tag <= -3) {
          ReadPending(static_cast<std::size_t>(-3 - tag));
        } else {
          Peer& p = peers_[static_cast<std::size_t>(tag)];
          if (fds[k].fd != p.fd) continue;  // replaced by a reconnect
          if (fds[k].revents & (POLLIN | POLLERR | POLLHUP)) {
            ReadPeer(tag, p);
          }
          if (p.fd >= 0 && (fds[k].revents & POLLOUT)) FlushPeer(p);
        }
      }
      // Opportunistic flush: records enqueued since the poll snapshot.
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (Peer& p : peers_) {
          if (p.fd >= 0 && !p.outbox.empty()) FlushLocked(p);
        }
      }
      pending_.erase(
          std::remove_if(pending_.begin(), pending_.end(),
                         [](const Pending& c) { return c.fd < 0; }),
          pending_.end());
      TendDisconnected();
      if (machine_.aborted() && !down) {
        // A PE threw; keep the wire alive until Stop() so late peer bytes
        // do not RST, but stop waiting on anything.
      }
    }
  }

  /// Shutdown progress: true once every stream has flushed its outbox and
  /// seen the peer's goodbye (or EOF / the deadline — a dead peer must
  /// not wedge exit).
  bool Drained(std::int64_t deadline) {
    bool all = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (static_cast<int>(i) == mynode_) continue;
        Peer& p = peers_[i];
        if (p.fd >= 0 && !p.outbox.empty()) all = false;
        if (p.fd >= 0 && !p.goodbye_rx) all = false;
      }
    }
    if (all) return true;
    return util::NowNs() > deadline;
  }

  void AcceptAll() {
    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      SetNonBlocking(fd);
      if (!unix_mode_) {
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      WidenSocketBuffers(fd);
      pending_.push_back(Pending{fd, WireParser{}});
    }
  }

  /// Read an unidentified inbound stream until its hello names the peer,
  /// then promote it (any pipelined records parse right away).
  void ReadPending(std::size_t k) {
    Pending& c = pending_[k];
    unsigned char chunk[4096];
    const ssize_t n = read(c.fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EINTR)) return;
      close(c.fd);
      c.fd = -1;
      return;
    }
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    c.parser.Append(chunk, static_cast<std::size_t>(n));
    WireRec rec;
    const unsigned char* body;
    const int r = c.parser.Next(&rec, &body);
    if (r < 0) {
      close(c.fd);
      c.fd = -1;
      return;
    }
    if (r == 0) return;  // hello still partial
    if (rec.kind != kWireHello ||
        rec.src_node >= peers_.size() ||
        static_cast<int>(rec.src_node) == mynode_) {
      close(c.fd);
      c.fd = -1;
      return;
    }
    Peer& p = peers_[rec.src_node];
    if (p.fd >= 0) {
      // Stale stream superseded by this reconnect.
      close(p.fd);
    }
    if (p.rx_msg != nullptr) {
      // A direct fill died with the old stream; the sender retransmits
      // that record from its start.
      CmiFree(p.rx_msg);
      p.rx_msg = nullptr;
      p.rx_len = 0;
      p.rx_off = 0;
    }
    p.fd = c.fd;
    p.hello_rx = true;
    p.goodbye_rx = false;
    p.down_since_ns = -1;
    p.parser = std::move(c.parser);
    c.fd = -1;
    DrainParser(static_cast<int>(rec.src_node), p);
  }

  void ReadPeer(int node, Peer& p) {
    for (;;) {
      // Continue a direct body fill: the rest of a large message reads
      // straight into its final allocation, no staging buffer at all.
      if (p.rx_msg != nullptr) {
        const ssize_t n =
            read(p.fd, static_cast<unsigned char*>(p.rx_msg) + p.rx_off,
                 p.rx_len - p.rx_off);
        if (n < 0) {
          if (errno == EAGAIN) return;
          if (errno == EINTR) continue;
          OnStreamDown(node, p);
          return;
        }
        if (n == 0) {
          OnStreamDown(node, p);
          return;
        }
        syscalls_.fetch_add(1, std::memory_order_relaxed);
        p.rx_off += static_cast<std::uint32_t>(n);
        if (p.rx_off < p.rx_len) continue;
        FinishDirectFill(p);
        continue;
      }

      unsigned char chunk[262144];
      const ssize_t n = read(p.fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EAGAIN) return;
        if (errno == EINTR) continue;
        OnStreamDown(node, p);
        return;
      }
      if (n == 0) {
        OnStreamDown(node, p);
        return;
      }
      syscalls_.fetch_add(1, std::memory_order_relaxed);
      if (!FeedBytes(node, p, chunk, static_cast<std::size_t>(n))) return;
      if (n < static_cast<ssize_t>(sizeof(chunk)) && p.rx_msg == nullptr) {
        return;
      }
    }
  }

  /// Route `n` fresh stream bytes.  When the parser holds no partial
  /// record the records are parsed and dispatched IN the read chunk (the
  /// common case — no staging copy); a large message body that overruns
  /// the chunk arms the direct fill.  Only a partial tail ever lands in
  /// the parser.  False when the stream was torn down.
  bool FeedBytes(int node, Peer& p, const unsigned char* data,
                 std::size_t n) {
    std::size_t off = 0;
    if (p.parser.pending() == 0) {
      while (n - off >= kWireRecBytes) {
        WireRec rec;
        if (!WireDecode(data + off, &rec)) {
          Fail("malformed record from node " + std::to_string(node));
          close(p.fd);
          p.fd = -1;
          return false;
        }
        const std::size_t avail = n - off - kWireRecBytes;
        if ((rec.kind == kWireMessage || rec.kind == kWireImmediate) &&
            rec.length >= kGatherMinBytes &&
            machine_.IsLocalPe(rec.dest_pe) && avail < rec.length) {
          // Large body split across reads: land what we have and read
          // the rest straight into the message.
          p.rx_msg = CmiAlloc(rec.length);
          p.rx_rec = rec;
          p.rx_len = rec.length;
          p.rx_off = static_cast<std::uint32_t>(avail);
          std::memcpy(p.rx_msg, data + off + kWireRecBytes, avail);
          return true;
        }
        if (avail < rec.length) break;  // small partial tail: buffer it
        Dispatch(p, rec, data + off + kWireRecBytes);
        off += kWireRecBytes + rec.length;
      }
      if (off < n) p.parser.Append(data + off, n - off);
      return true;
    }
    p.parser.Append(data, n);
    return DrainParser(node, p);
  }

  void FinishDirectFill(Peer& p) {
    void* msg = p.rx_msg;
    const WireRec rec = p.rx_rec;
    p.rx_msg = nullptr;
    p.rx_len = 0;
    p.rx_off = 0;
    MsgPoolRestampFlag(msg);  // the wire image carried the sender's bit
    bytes_received_.fetch_add(rec.length, std::memory_order_relaxed);
    DeliverFromWire(machine_, rec.dest_pe, msg,
                    rec.kind == kWireImmediate);
  }

  /// Parse and deliver every complete record buffered in the parser;
  /// false when the stream was torn down (malformed bytes).
  bool DrainParser(int node, Peer& p) {
    for (;;) {
      WireRec rec;
      const unsigned char* body;
      const int r = p.parser.Next(&rec, &body);
      if (r == 0) return true;
      if (r < 0) {
        Fail("malformed record from node " + std::to_string(node));
        close(p.fd);
        p.fd = -1;
        return false;
      }
      Dispatch(p, rec, body);
    }
  }

  /// Deliver one complete record (body fully materialized at `body`).
  void Dispatch(Peer& p, const WireRec& rec, const unsigned char* body) {
    switch (rec.kind) {
      case kWireHello:
        p.hello_rx = true;
        break;
      case kWireGoodbye:
        p.goodbye_rx = true;
        break;
      case kWireNodeCast:
        bytes_received_.fetch_add(rec.length, std::memory_order_relaxed);
        CstNodeCastExpand(machine_, nullptr, mynode_, body, rec.length);
        break;
      case kWireMessage:
      case kWireImmediate: {
        if (!machine_.IsLocalPe(rec.dest_pe)) break;  // misrouted
        void* msg = CmiAlloc(rec.length);
        std::memcpy(msg, body, rec.length);
        MsgPoolRestampFlag(msg);
        bytes_received_.fetch_add(rec.length, std::memory_order_relaxed);
        DeliverFromWire(machine_, rec.dest_pe, msg,
                        rec.kind == kWireImmediate);
        break;
      }
      default:
        break;
    }
  }

  void OnStreamDown(int node, Peer& p) {
    close(p.fd);
    p.fd = -1;
    p.parser.Reset();  // a partial record died with the stream
    if (p.rx_msg != nullptr) {  // ...including a half-filled direct body
      CmiFree(p.rx_msg);
      p.rx_msg = nullptr;
      p.rx_len = 0;
      p.rx_off = 0;
    }
    if (p.goodbye_rx || ShuttingDown()) return;  // clean end
    p.down_since_ns = util::NowNs();
    p.next_dial_ns = p.down_since_ns;
    {
      // The peer resends its partial front record on its side; we resend
      // ours: rewind the front outbox record to its start.
      std::lock_guard<std::mutex> lock(mu_);
      if (!p.outbox.empty()) p.outbox.front().off = 0;
    }
    (void)node;
  }

  /// Reconnect (connecting side) or time out streams that are down.
  void TendDisconnected() {
    const std::int64_t now = util::NowNs();
    const std::int64_t timeout_ns =
        static_cast<std::int64_t>(machine_.config().wire_timeout_ms) *
        1000000;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Peer& p = peers_[i];
      if (static_cast<int>(i) == mynode_ || p.down_since_ns < 0) continue;
      if (p.fd >= 0) continue;
      if (now - p.down_since_ns > timeout_ns) {
        if (!ShuttingDown() && !machine_.aborted()) {
          Fail("node " + std::to_string(i) +
               " unreachable past the wire timeout");
        }
        p.down_since_ns = -1;  // give up; stop re-reporting
        continue;
      }
      if (static_cast<int>(i) < mynode_ && now >= p.next_dial_ns) {
        const int fd = Dial(static_cast<int>(i));
        if (fd >= 0) {
          p.fd = fd;
          SendHello(p);
          SetNonBlocking(fd);
          p.down_since_ns = -1;
          reconnects_.fetch_add(1, std::memory_order_relaxed);
        } else {
          p.next_dial_ns = now + 100000000;  // retry in 100 ms
        }
      }
    }
  }

  void FlushPeer(Peer& p) {
    std::lock_guard<std::mutex> lock(mu_);
    FlushLocked(p);
  }

  /// Gather as many queued records as fit into iovecs and push them with
  /// sendmsg until EAGAIN or the outbox empties.  Zero-copy records
  /// contribute two iovecs (header bytes + the message image itself); the
  /// message is freed once its last byte is accepted.  Caller holds mu_.
  void FlushLocked(Peer& p) {
    while (!p.outbox.empty() && p.fd >= 0) {
      iovec iov[16];
      int cnt = 0;
      std::size_t queued = 0;
      for (const OutBuf& b : p.outbox) {
        if (cnt >= 15) break;  // a gathered record may need two slots
        if (b.off < b.data.size()) {
          iov[cnt].iov_base =
              const_cast<unsigned char*>(b.data.data()) + b.off;
          iov[cnt].iov_len = b.data.size() - b.off;
          queued += iov[cnt].iov_len;
          ++cnt;
          if (b.msg != nullptr) {
            iov[cnt].iov_base = b.msg;
            iov[cnt].iov_len = b.msg_len;
            queued += b.msg_len;
            ++cnt;
          }
        } else {
          const std::size_t body_off = b.off - b.data.size();
          iov[cnt].iov_base = static_cast<unsigned char*>(b.msg) + body_off;
          iov[cnt].iov_len = b.msg_len - body_off;
          queued += iov[cnt].iov_len;
          ++cnt;
        }
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<std::size_t>(cnt);
      const ssize_t n = sendmsg(p.fd, &mh, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EINTR) return;
        // Stream broke under us; the read side handles teardown/reconnect
        // on its next poll (POLLERR/POLLHUP).
        return;
      }
      syscalls_.fetch_add(1, std::memory_order_relaxed);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        OutBuf& front = p.outbox.front();
        const std::size_t want = front.size() - front.off;
        if (left >= want) {
          left -= want;
          if (front.msg != nullptr) {
            check::OnReclaim(front.msg);  // its last byte left the kernel
            CmiFree(front.msg);
          }
          p.outbox.pop_front();
        } else {
          front.off += left;
          left = 0;
        }
      }
      if (static_cast<std::size_t>(n) < queued) return;  // kernel is full
    }
  }

  void CloseAll() {
    for (Peer& p : peers_) {
      if (p.fd >= 0) close(p.fd);
      p.fd = -1;
      // Records that never left (peer died at shutdown) may still own
      // their gathered message bodies; same for a half-filled direct
      // receive.
      for (OutBuf& b : p.outbox) {
        if (b.msg != nullptr) {
          check::OnReclaim(b.msg);
          CmiFree(b.msg);
        }
      }
      p.outbox.clear();
      if (p.rx_msg != nullptr) {
        CmiFree(p.rx_msg);
        p.rx_msg = nullptr;
      }
    }
    for (Pending& c : pending_) {
      if (c.fd >= 0) close(c.fd);
      c.fd = -1;
    }
    pending_.clear();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
      if (unix_mode_) unlink(UnixPath(mynode_).c_str());
    }
    if (wake_[0] >= 0) close(wake_[0]);
    if (wake_[1] >= 0) close(wake_[1]);
    wake_[0] = wake_[1] = -1;
  }

  Machine& machine_;
  int mynode_ = -1;
  bool unix_mode_ = false;
  int listen_fd_ = -1;
  int wake_[2] = {-1, -1};
  std::mutex mu_;  // outboxes + shutting_down_
  bool shutting_down_ = false;
  bool running_ = false;
  std::vector<Peer> peers_;      // indexed by node id; [mynode_] unused
  std::vector<Pending> pending_; // accepted, hello not yet seen
  std::vector<pollfd> pollfds_;  // comm-loop scratch, capacity reused
  std::vector<int> pollwho_;
  std::thread comm_;
};

}  // namespace

std::unique_ptr<Transport> MakeSocketEngine(Machine& m) {
  return std::make_unique<SocketEngine>(m);
}

}  // namespace converse::detail
