// Wire format of the socket transport (DESIGN.md "Transport interface").
//
// Everything that crosses a socket is a sequence of length-prefixed
// *records*: a fixed 16-byte header followed by `length` body bytes.  The
// body of a kMessage/kImmediate record is the complete logical message
// image (MsgHeader + payload) exactly as the sender's PE stamped it — an
// aggregation frame (PR 4 carrier) travels as ONE record, so a burst of
// small messages costs one record header and one writev element, and the
// receiver re-dispatches it through the existing zero-copy frame-view
// machinery.  A kNodeCast record carries one stamped broadcast image per
// *remote node*; the receiving node fans it out locally (wrapper down the
// node-local spanning tree, or a shared refcounted block for large
// payloads) so a broadcast costs one wire copy per node, not per PE.
//
// Shared-broadcast blocks (kMsgFlagSbcast) are forwarded by pointer and
// therefore never cross the wire; the transport asserts that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace converse::detail {

inline constexpr std::uint32_t kWireMagic = 0x43767257u;  // "CvrW"
inline constexpr std::size_t kWireRecBytes = 16;

enum WireKind : std::uint8_t {
  kWireMessage = 1,    // body: message image for PE `dest_pe`'s regular lane
  kWireImmediate = 2,  // body: message image for the immediate lane
  kWireNodeCast = 3,   // body: broadcast image; receiver fans out in-node
  kWireHello = 4,      // empty body; dest_pe unused; src_node identifies peer
  kWireGoodbye = 5,    // empty body; orderly shutdown (EOF without one = died)
};

/// Fixed-size record header.  All fields little-endian host order (the
/// launcher only spawns ranks on one host family; see docs/PORTING.md).
struct WireRec {
  std::uint32_t magic = kWireMagic;
  std::uint32_t length = 0;  // body bytes following this header
  std::uint16_t dest_pe = 0;   // kMessage/kImmediate: global destination PE
  std::uint16_t src_node = 0;  // sending node
  std::uint8_t kind = 0;       // WireKind
  std::uint8_t flags = 0;      // reserved, zero
  std::uint16_t check = 0;     // xor-fold of the 12 bytes above
};
static_assert(sizeof(WireRec) == kWireRecBytes, "wire header must pack");

/// Header checksum: xor-fold of the six 16-bit words before `check`.
std::uint16_t WireCheck(const WireRec& rec);

/// Serialize `rec` (check filled in) into `out[0..16)`.
void WireEncode(const WireRec& rec, unsigned char out[kWireRecBytes]);

/// Parse a header from `in[0..16)`.  False when magic/checksum/kind are
/// wrong (corrupt or desynchronized stream).
bool WireDecode(const unsigned char in[kWireRecBytes], WireRec* rec);

/// Incremental record parser for a byte stream: feed arbitrary chunks with
/// Append, pull complete records with Next.  Body pointers returned by
/// Next stay valid until the following Append/Next call.
class WireParser {
 public:
  /// Buffer `n` more stream bytes.
  void Append(const void* data, std::size_t n);

  /// Extract the next complete record.  Returns 1 and fills (*rec, *body)
  /// when one is buffered; 0 when more bytes are needed; -1 when the
  /// stream is malformed (bad magic/checksum — there is no resynchronizing
  /// a corrupt framed stream, the connection must be dropped).
  int Next(WireRec* rec, const unsigned char** body);

  /// Bytes buffered but not yet returned by Next.
  std::size_t pending() const { return buf_.size() - off_; }

  /// True when the buffered tail is a *partial* record — after EOF this
  /// means the peer died mid-record (the complete prefix was delivered;
  /// the truncated tail is discarded and, on reconnect, the sender
  /// retransmits that record from its start).
  bool mid_record() const { return pending() > 0; }

  /// Drop any partial tail (connection reset).
  void Reset() {
    buf_.clear();
    off_ = 0;
  }

 private:
  std::vector<unsigned char> buf_;
  std::size_t off_ = 0;
};

}  // namespace converse::detail
