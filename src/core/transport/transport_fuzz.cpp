// Fuzz workload for the transport layer (converse/transport.h): a
// sim-driven loopback multi-node machine whose inter-node traffic crosses
// the virtual wire, with deterministic disconnect injection and a
// conservation oracle
//
//     delivered == sent - wire_dropped
//
// checked against the workload's own logical send/receive counts.  The
// structure deliberately mirrors src/sim/fuzz.cpp (per-PE PRNG streams
// derived from the case seed, root actions + handler fan-out, run to
// global quiescence) so a case is a pure function of its parameters and
// seeds replay bit-for-bit.
#include "converse/transport.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "converse/cmi.h"
#include "converse/csd.h"
#include "converse/machine.h"
#include "converse/msg.h"
#include "converse/stream.h"
#include "converse/util/rng.h"

namespace converse::transport {
namespace {

struct FuzzWire {
  std::uint32_t ttl;   // remaining fan-out depth
  std::uint32_t fill;  // payload size marker (checked for wire integrity)
};

struct PerPe {
  util::Xoshiro256 rng{0};
  std::uint64_t sent_net = 0;  // logical deliveries my sends should cause
  std::uint64_t sent_imm = 0;
  std::uint64_t recv_net = 0;
  std::uint64_t recv_imm = 0;
  std::uint64_t payload_bad = 0;  // delivered bytes that did not round-trip
};

struct Ctx {
  TransportFuzzParams p;
  std::vector<std::unique_ptr<PerPe>> pes;
  CmiStats final_stats;  // PE 0's snapshot at quiescence

  std::mutex fail_mu;
  std::string failure;
  void Fail(const std::string& what) {
    std::scoped_lock lk(fail_mu);
    if (failure.empty()) failure = what;
  }
};

util::Xoshiro256 PeStream(std::uint64_t seed, int pe) {
  util::SplitMix64 sm(seed ^ 0x7472616e73ull);  // 'trans'
  std::uint64_t s = 0;
  for (int i = 0; i <= pe + 1; ++i) s = sm.Next();
  return util::Xoshiro256(s);
}

void* MakeWire(int handler, std::uint32_t ttl, std::size_t extra) {
  void* msg = CmiAlloc(static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) +
                       sizeof(FuzzWire) + extra);
  CmiSetHandler(msg, handler);
  auto* w = static_cast<FuzzWire*>(CmiMsgPayload(msg));
  w->ttl = ttl;
  w->fill = static_cast<std::uint32_t>(extra);
  // Deterministic payload pattern so a wire-corrupted body is caught at
  // the far end, not just a miscounted record.
  std::memset(w + 1, static_cast<int>(0x5a ^ (extra & 0xff)), extra);
  return msg;
}

bool PayloadOk(const void* msg) {
  const auto* w = static_cast<const FuzzWire*>(
      CmiMsgPayload(const_cast<void*>(msg)));
  const auto* body = reinterpret_cast<const unsigned char*>(w + 1);
  const auto want =
      static_cast<unsigned char>(0x5a ^ (w->fill & 0xff));
  for (std::uint32_t i = 0; i < w->fill; ++i) {
    if (body[i] != want) return false;
  }
  return true;
}

void SendData(Ctx& ctx, PerPe& me, int h_data, std::uint32_t ttl) {
  const int dest = static_cast<int>(
      me.rng.Below(static_cast<std::uint64_t>(ctx.p.npes)));
  // Mostly small (aggregable), occasionally multi-KB so large records and
  // the shared-broadcast threshold region get exercised too.
  const std::size_t extra =
      me.rng.Below(16) == 0 ? 1024 + me.rng.Below(6144) : me.rng.Below(128);
  void* msg = MakeWire(h_data, ttl, extra);
  ++me.sent_net;
  CmiSyncSendAndFree(static_cast<unsigned>(dest),
                     static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
}

void SendBurst(Ctx& ctx, PerPe& me, int h_data) {
  const std::uint64_t burst = 4 + me.rng.Below(12);
  for (std::uint64_t i = 0; i < burst; ++i) SendData(ctx, me, h_data, 0);
}

void SendBcast(Ctx& ctx, PerPe& me, int h_data) {
  const std::size_t extra =
      me.rng.Below(4) == 0 ? 4096 + me.rng.Below(4096) : me.rng.Below(96);
  void* msg = MakeWire(h_data, 0, extra);
  me.sent_net += static_cast<std::uint64_t>(ctx.p.npes);
  CmiSyncBroadcastAllAndFree(static_cast<unsigned>(CmiMsgTotalSize(msg)),
                             msg);
}

void SendImm(Ctx& ctx, PerPe& me, int h_imm) {
  const int dest = static_cast<int>(
      me.rng.Below(static_cast<std::uint64_t>(ctx.p.npes)));
  void* msg = MakeWire(h_imm, 0, me.rng.Below(48));
  ++me.sent_imm;
  CmiSyncSendImmediateAndFree(static_cast<unsigned>(dest),
                              static_cast<unsigned>(CmiMsgTotalSize(msg)),
                              msg);
}

void RandomAction(Ctx& ctx, PerPe& me, int h_data, int h_imm,
                  std::uint32_t ttl_budget) {
  switch (me.rng.Below(8)) {
    case 0:
    case 1:
    case 2:
      SendData(ctx, me, h_data,
               static_cast<std::uint32_t>(me.rng.Below(ttl_budget + 1)));
      break;
    case 3:
      SendBurst(ctx, me, h_data);
      break;
    case 4:
    case 5:
      SendBcast(ctx, me, h_data);
      break;
    case 6:
      SendImm(ctx, me, h_imm);
      break;
    default:
      CmiFlush();
      break;
  }
}

void PeEntry(Ctx& ctx, int mype) {
  PerPe& me = *ctx.pes[static_cast<std::size_t>(mype)];
  me.rng = PeStream(ctx.p.seed, mype);

  int h_data = -1, h_imm = -1;
  h_data = CmiRegisterHandler([&ctx, &me, &h_data](void* msg) {
    FuzzWire w;
    std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
    ++me.recv_net;
    if (!PayloadOk(msg)) ++me.payload_bad;
    if (w.ttl > 0) {
      const std::uint64_t fanout = 1 + me.rng.Below(2);
      for (std::uint64_t i = 0; i < fanout; ++i) {
        SendData(ctx, me, h_data, w.ttl - 1);
      }
    }
  });
  h_imm = CmiRegisterHandler([&me](void* msg) {
    ++me.recv_imm;
    if (!PayloadOk(msg)) ++me.payload_bad;
  });

  for (int i = 0; i < ctx.p.actions; ++i) {
    RandomAction(ctx, me, h_data, h_imm, 2);
  }
  CsdScheduler(-1);
  if (mype == 0) ctx.final_stats = CmiGetStats();
}

}  // namespace

TransportFuzzResult RunTransportFuzzCase(const TransportFuzzParams& params) {
  TransportFuzzResult res;
  Ctx ctx;
  ctx.p = params;
  if (ctx.p.npes < 1) ctx.p.npes = 1;
  if (ctx.p.nnodes < 1) ctx.p.nnodes = 1;
  if (ctx.p.nnodes > ctx.p.npes) ctx.p.nnodes = ctx.p.npes;
  for (int i = 0; i < ctx.p.npes; ++i) {
    ctx.pes.push_back(std::make_unique<PerPe>());
  }

  SimConfig sim;
  sim.seed = params.seed;
  sim.report = &res.report;
  MachineConfig cfg;
  cfg.npes = ctx.p.npes;
  cfg.seed = params.seed;
  cfg.sim = &sim;
  cfg.aggregate_sends = params.aggregate ? 1 : 0;
  // Loopback multi-node: mynode stays -1, so the virtual wire carries
  // every inter-node record.  nnodes == npes is the socket backend's
  // one-PE-per-node shape; fewer nodes is the two-level SMP shape.
  cfg.transport =
      ctx.p.nnodes == ctx.p.npes ? CmiTransport::kSocket : CmiTransport::kSmpNode;
  cfg.nnodes = ctx.p.nnodes;
  cfg.wire_disconnect_rate = params.disconnect_rate;
  cfg.wire_disconnect_lost = params.disconnect_lost;
  cfg.wire_seed = params.seed ^ 0x77697265ull;
  cfg.wire_plant_lost = params.plant_lost ? 1 : 0;
  try {
    RunConverse(cfg, [&ctx](int pe, int) { PeEntry(ctx, pe); });
  } catch (const std::exception& e) {
    res.ok = false;
    res.failure = std::string("machine aborted: ") + e.what();
    return res;
  }

  res.wire_frames_sent = ctx.final_stats.wire_frames_sent;
  res.wire_dropped = ctx.final_stats.wire_dropped;
  res.wire_reconnects = ctx.final_stats.wire_reconnects;

  if (ctx.failure.empty() && !res.report.quiesced) {
    ctx.Fail("run did not end by global quiescence");
  }
  std::uint64_t sent_net = 0, recv_net = 0, sent_imm = 0, recv_imm = 0;
  std::uint64_t payload_bad = 0;
  for (const auto& pe : ctx.pes) {
    sent_net += pe->sent_net;
    recv_net += pe->recv_net;
    sent_imm += pe->sent_imm;
    recv_imm += pe->recv_imm;
    payload_bad += pe->payload_bad;
  }
  if (ctx.failure.empty() && payload_bad != 0) {
    ctx.Fail("payload corruption: a delivered body did not match the "
             "sender's deterministic fill pattern");
  }
  const std::uint64_t expected = sent_net - res.wire_dropped;
  if (ctx.failure.empty() && recv_net != expected) {
    char buf[224];
    std::snprintf(
        buf, sizeof(buf),
        "wire conservation violated: sent %llu regular messages, "
        "%llu dropped by injected disconnects, but %llu delivered "
        "(expected %llu)",
        static_cast<unsigned long long>(sent_net),
        static_cast<unsigned long long>(res.wire_dropped),
        static_cast<unsigned long long>(recv_net),
        static_cast<unsigned long long>(expected));
    ctx.Fail(buf);
  }
  if (ctx.failure.empty() && recv_imm != sent_imm) {
    ctx.Fail("immediate-lane conservation violated (the wire must never "
             "drop immediate records)");
  }
  if (ctx.failure.empty() && ctx.p.nnodes > 1 &&
      res.wire_frames_sent == 0) {
    ctx.Fail("multi-node run sent zero wire records: traffic bypassed the "
             "transport");
  }
  res.failure = ctx.failure;
  res.ok = res.failure.empty();
  return res;
}

TransportFuzzParams MinimizeTransport(const TransportFuzzParams& failing,
                                      int budget) {
  TransportFuzzParams best = failing;
  auto still_fails = [&budget](const TransportFuzzParams& p) {
    if (budget <= 0) return false;
    --budget;
    return !RunTransportFuzzCase(p).ok;
  };
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    if (best.actions > 1) {
      TransportFuzzParams t = best;
      t.actions = best.actions / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.npes > 2) {
      TransportFuzzParams t = best;
      t.npes = best.npes / 2;
      if (t.nnodes > t.npes) t.nnodes = t.npes;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.nnodes > 2) {
      TransportFuzzParams t = best;
      t.nnodes = 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.aggregate) {
      TransportFuzzParams t = best;
      t.aggregate = false;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.disconnect_rate > 0) {
      TransportFuzzParams t = best;
      t.disconnect_rate = 0;
      if (still_fails(t)) {
        best = t;
        improved = true;
      }
    }
  }
  return best;
}

std::string FormatTransportReplay(const TransportFuzzParams& params) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tools/simfuzz --transport --seed %llu --pes %d --nodes %d "
                "--actions %d",
                static_cast<unsigned long long>(params.seed), params.npes,
                params.nnodes, params.actions);
  std::string out = buf;
  if (params.disconnect_rate > 0) {
    std::snprintf(buf, sizeof(buf), " --disconnect %g --lost %d",
                  params.disconnect_rate, params.disconnect_lost);
    out += buf;
  }
  if (params.aggregate) out += " --agg";
  if (params.plant_lost) out += " --plant-lost";
  return out;
}

}  // namespace converse::transport
