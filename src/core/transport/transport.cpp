#include "core/transport/transport.h"

#include <cassert>
#include <cstring>
#include <mutex>

#include "converse/check.h"
#include "converse/msg.h"
#include "converse/util/rng.h"
#include "core/pe_state.h"
#include "core/stream.h"
#include "core/transport/wire.h"

namespace converse::detail {

// Trace-hash tags for wire events (folded via SimTraceUser so two
// sim-driven replays of one seed hash identically only when every wire
// decision matched).
inline constexpr std::uint64_t kWireTraceSend = 0x77697265u;  // 'wire'
inline constexpr std::uint64_t kWireTraceDrop = 0x7764726fu;  // 'wdro'

Transport::~Transport() = default;

void Transport::CountRecordSent(PeState& src, std::uint32_t body_len) {
  src.stats.wire_frames_sent += 1;
  src.stats.wire_bytes_sent += kWireRecBytes + body_len;
}

namespace {

/// Virtual wire for loopback mode (config.mynode == -1): every node lives
/// in this process, so "crossing the wire" means encoding the record
/// header, validating it parses back, advancing the counters, rolling the
/// deterministic disconnect injector — and then letting the machine's
/// normal local delivery run (SendRemote returns false), which keeps the
/// sim, NetModel, and race-detector semantics byte-identical to a
/// single-node run.  Injected losses consume the message instead and are
/// accounted in `dropped_` with the same logical weight the sim's own
/// fault injector would charge, so conservation oracles read:
///   sum(delivered) == sum(sent) - wire_dropped.
class LoopbackWire : public Transport {
 public:
  explicit LoopbackWire(Machine& m)
      : machine_(m),
        rate_(m.config().wire_disconnect_rate),
        lost_per_disconnect_(m.config().wire_disconnect_lost < 1
                                 ? 1
                                 : m.config().wire_disconnect_lost),
        plant_left_(m.config().wire_plant_lost),
        rng_(m.config().wire_seed) {}

  const char* name() const override { return "loopback"; }

  bool SendRemote(PeState& src, int dest_pe, void* msg,
                  bool immediate) override {
    MsgHeader* h = Header(msg);
    // Pointer-forwarded carriers never cross a wire: broadcasts reach
    // remote nodes as node-cast records, and shared blocks stay in-node.
    assert((h->flags & (kMsgFlagBcast | kMsgFlagSbcast)) == 0);
    const std::uint32_t len = h->total_size;
    ValidateHeader(immediate ? kWireImmediate : kWireMessage, dest_pe, len);
    CountRecordSent(src, len);
    if (!immediate) {  // immediates are the reliable control plane
      const int lost = Toss();
      if (lost != kDelivered) {
        if (lost == kLostCounted) {
          dropped_.fetch_add(CstMessageWeight(machine_, dest_pe, msg),
                             std::memory_order_relaxed);
          SimTraceUser(src, kWireTraceDrop,
                       static_cast<std::uint64_t>(dest_pe), len);
        }
        check::OnReclaim(msg);  // the (virtual) failed link ate the buffer
        CmiFree(msg);
        return true;  // consumed by the (virtual) failed link
      }
    }
    bytes_received_.fetch_add(len, std::memory_order_relaxed);
    SimTraceUser(src, kWireTraceSend, static_cast<std::uint64_t>(dest_pe),
                 len);
    return false;  // fall through to normal local delivery
  }

  void SendNodeCast(PeState& src, int node, const void* image,
                    std::uint32_t size) override {
    assert(node != src.node);
    ValidateHeader(kWireNodeCast, machine_.NodeFirst(node), size);
    CountRecordSent(src, size);
    const int lost = Toss();
    if (lost != kDelivered) {
      if (lost == kLostCounted) {
        dropped_.fetch_add(
            static_cast<std::uint64_t>(machine_.NodeSize(node)),
            std::memory_order_relaxed);
        SimTraceUser(src, kWireTraceDrop, 0x100u + node, size);
      }
      return;  // the whole node's fan-out is lost
    }
    bytes_received_.fetch_add(size, std::memory_order_relaxed);
    SimTraceUser(src, kWireTraceSend, 0x100u + node, size);
    CstNodeCastExpand(machine_, &src, node, image, size);
  }

 private:
  enum { kDelivered = 0, kLostCounted = 1, kLostPlanted = 2 };

  /// Roll the disconnect injector for one eligible record.  A disconnect
  /// swallows `lost_per_disconnect_` consecutive records, then the link
  /// "reconnects" (counted).  The planted bug drops exactly one record
  /// without counting anything — conservation oracles must notice.
  int Toss() {
    if (rate_ <= 0.0 && plant_left_ <= 0) return kDelivered;
    std::lock_guard<std::mutex> lock(mu_);
    if (plant_left_ > 0 && --plant_left_ == 0) return kLostPlanted;
    if (rate_ <= 0.0) return kDelivered;
    if (lost_left_ == 0 && rng_.NextDouble() < rate_)
      lost_left_ = lost_per_disconnect_;
    if (lost_left_ == 0) return kDelivered;
    if (--lost_left_ == 0)
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    return kLostCounted;
  }

  /// Exercise the codec the way a real socket would: encode the record
  /// header, decode it back, and insist every field round-trips.
  void ValidateHeader(std::uint8_t kind, int dest_pe, std::uint32_t len) {
    WireRec rec;
    rec.length = len;
    rec.dest_pe = static_cast<std::uint16_t>(dest_pe);
    rec.src_node = static_cast<std::uint16_t>(
        machine_.mynode() >= 0 ? machine_.mynode() : 0);
    rec.kind = kind;
    unsigned char buf[kWireRecBytes];
    WireEncode(rec, buf);
    WireRec back;
    const bool ok = WireDecode(buf, &back);
    assert(ok && back.length == len && back.kind == kind &&
           back.dest_pe == rec.dest_pe);
    (void)ok;
  }

  Machine& machine_;
  const double rate_;
  const int lost_per_disconnect_;
  std::mutex mu_;  // injector state (plain-threaded loopback machines)
  int plant_left_;
  int lost_left_ = 0;
  util::Xoshiro256 rng_;
};

}  // namespace

std::unique_ptr<Transport> MakeTransport(Machine& m) {
  const MachineConfig& c = m.config();
  if (c.nnodes <= 1) return nullptr;
  if (c.mynode < 0) return std::make_unique<LoopbackWire>(m);
  return MakeSocketEngine(m);
}

}  // namespace converse::detail
