// Pluggable wire backends behind the machine layer (DESIGN.md "Transport
// interface").
//
// The machine's send paths (SendOwnedFrom / SendOwnedImmediate /
// CstTreeCast) stay the single source of truth for stamping, counters,
// race hooks, sim routing and lane pushes.  A Transport only sees traffic
// whose destination lives on ANOTHER node, through three hooks:
//
//   SendRemote    — unicast (plain message or an aggregation-frame
//                   carrier; frames are the wire unit, PR 4).
//   SendNodeCast  — one record per remote node for a spanning-tree
//                   broadcast; the receiving node fans out locally.
//   Stop/Start    — lifecycle bracketing Machine::Run.
//
// Two families implement this:
//
//   LoopbackWire (transport.cpp) — "virtual wire" used whenever
//     config.mynode == -1: one process hosts every node, records are
//     encoded + header-validated in memory, counters advance, optional
//     deterministic disconnect injection drops records — and surviving
//     unicasts fall through (return false) to the normal local delivery
//     path, so the sim / NetModel / race machinery drive any backend
//     unchanged.  This is what `simfuzz --transport` runs.
//
//   SocketEngine (socket.cpp) — real mode (config.mynode >= 0): Unix
//     domain / TCP sockets to peer processes, one comm thread per node,
//     batched writev gather, poll() progress engine, reconnect with
//     backoff, goodbye handshake on shutdown.
//
// Single-node machines have no Transport at all (MakeTransport returns
// nullptr) — the in-process fast path is exactly the pre-refactor code.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "converse/cmi.h"

namespace converse::detail {

class Machine;
struct PeState;

class Transport {
 public:
  virtual ~Transport();

  virtual const char* name() const = 0;

  /// Bring the wire up (real mode: bind + start the comm thread; the
  /// rendezvous handshake completes asynchronously — sends queue until
  /// peers connect).  Called by Machine::Run before PE threads spawn.
  virtual void Start() {}

  /// Tear the wire down (real mode: flush outbound queues, exchange
  /// goodbye records, join the comm thread).  Called by Machine::Run
  /// after every PE thread joined — the comm thread is a lane producer,
  /// so it must be dead before the machine drains queues.
  virtual void Stop() {}

  /// Inter-node unicast of an owned message image (`immediate` selects
  /// the receiver's out-of-band lane).  True = the transport consumed
  /// `msg` (shipped to the peer process, or dropped by injection); false
  /// = fall through to the normal local delivery path (loopback's common
  /// case: the record was validated and counted, the original message
  /// still delivers locally so sim/model semantics are preserved).
  virtual bool SendRemote(PeState& src, int dest_pe, void* msg,
                          bool immediate) = 0;

  /// One broadcast record to `node` (never the sender's own node).
  /// `image` is a complete stamped message image of `size` bytes carrying
  /// the broadcast-root identity; the transport copies what it needs.
  virtual void SendNodeCast(PeState& src, int node, const void* image,
                            std::uint32_t size) = 0;

  /// Fold the node-level counters into a per-PE stats snapshot (CmiGetStats
  /// mirrors them on every local PE, like the agg/bcast counters).
  void FoldStats(CmiStats& s) const {
    s.wire_bytes_received += bytes_received_.load(std::memory_order_relaxed);
    s.wire_syscalls += syscalls_.load(std::memory_order_relaxed);
    s.wire_reconnects += reconnects_.load(std::memory_order_relaxed);
    s.wire_dropped += dropped_.load(std::memory_order_relaxed);
  }

  /// Logical messages lost to injected disconnects (loopback wire only;
  /// the conservation oracle's right-hand side).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 protected:
  /// Sender-side per-record accounting, charged to the PE that created
  /// the record (mirrors how agg_frames_sent is charged).
  static void CountRecordSent(PeState& src, std::uint32_t body_len);

  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> syscalls_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Build the backend the machine's (already env-resolved) config asks
/// for; nullptr when the machine is single-node.
std::unique_ptr<Transport> MakeTransport(Machine& m);

/// Real-socket backend factory (socket.cpp).
std::unique_ptr<Transport> MakeSocketEngine(Machine& m);

}  // namespace converse::detail
