#include "converse/handlers.h"

#include <cassert>

#include "converse/check.h"
#include "converse/util/timer.h"
#include "core/pe_state.h"
#include "race/race_internal.h"

namespace converse {

int CmiRegisterHandler(Handler fn) {
  detail::PeState& pe = detail::CpvChecked();
  assert(fn && "CmiRegisterHandler: empty handler");
  pe.handlers.push_back(std::move(fn));
  detail::check::OnHandlerRegister();
  return static_cast<int>(pe.handlers.size()) - 1;
}

void CmiSetHandler(void* msg, int handler_id) {
  assert(handler_id >= 0);
  detail::Header(msg)->handler = static_cast<std::uint32_t>(handler_id);
}

int CmiGetHandler(const void* msg) {
  return static_cast<int>(detail::Header(msg)->handler);
}

const Handler& CmiGetHandlerFunction(const void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  const auto idx = detail::Header(msg)->handler;
  assert(idx < pe.handlers.size() && "message has unregistered handler");
  return pe.handlers[idx];
}

int CmiNumHandlers() {
  return static_cast<int>(detail::CpvChecked().handlers.size());
}

namespace detail {

void DispatchMessage(void* msg, bool system_owned) {
  PeState& pe = CpvChecked();
  const MsgHeader* h = Header(msg);
  check::OnDeliverBegin(msg, system_owned);
  check::OnDispatchHandler(msg, pe.handlers.size());
  assert(h->magic == kMsgMagicAlive && "dispatching a freed message");
  assert(h->handler < pe.handlers.size() &&
         "message handler not registered on this PE");
  const Handler& fn = pe.handlers[h->handler];

  const std::uint32_t handler_id = h->handler;
  double begin_us = 0;
  const CoreHooks* hooks = pe.hooks;
  if (hooks != nullptr && hooks->on_dispatch_begin != nullptr) {
    hooks->on_dispatch_begin(hooks->ud, h, !system_owned);
  }
  if (hooks != nullptr && hooks->on_dispatch_end != nullptr) {
    begin_us = util::NowUs();
  }
  ++pe.qd_processed;
  race::OnDispatchBegin(pe, msg, system_owned);

  if (system_owned) {
    pe.sysbuf_stack.push_back(SysBuf{msg, false});
    [[maybe_unused]] const std::size_t depth = pe.sysbuf_stack.size();
    fn(msg);
    assert(pe.sysbuf_stack.size() == depth &&
           "handler unbalanced the system buffer stack");
    race::OnDispatchEnd(pe);  // before the dispatcher reclaims the buffer
    const SysBuf sb = pe.sysbuf_stack.back();
    pe.sysbuf_stack.pop_back();
    if (!sb.grabbed) {
      check::OnDeliverEnd(sb.msg);  // dispatcher reclaims the buffer
      CmiFree(sb.msg);
    }
  } else {
    // Scheduler-queue delivery: the handler owns the message.
    fn(msg);
    race::OnDispatchEnd(pe);
  }

  if (hooks != nullptr && hooks->on_dispatch_end != nullptr) {
    hooks->on_dispatch_end(hooks->ud, handler_id, begin_us);
  }
}

}  // namespace detail
}  // namespace converse
