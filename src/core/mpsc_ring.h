// Bounded lock-free multi-producer/single-consumer ring — the cross-PE
// delivery fast path.  This is Vyukov's bounded queue specialised to one
// consumer: every cell carries a sequence word that encodes whose turn the
// cell is on, so a push is one tail CAS plus one release store and a pop is
// one acquire load plus one release store, with no locks and no allocation.
//
// Concurrency contract:
//  * TryPush may be called from any thread (the sending PEs).
//  * TryPop / HasItems / Drain may be called only from the owning consumer
//    (the receiving PE's thread, or the machine teardown path after all PE
//    threads have joined).
//
// The tail CAS is seq_cst on purpose: it is one half of the Dekker pair
// with the consumer's `parked` flag (see WaitForNet in machine.cpp) — the
// producer's tail bump and the consumer's park announcement must be
// globally ordered so that either the producer sees `parked` and notifies,
// or the consumer sees the new tail and never sleeps.
//
// When a producer has claimed a cell but not yet published it (the two
// instructions between the CAS and the release store), the consumer can
// observe tail > head with an unpublished head cell.  TryPop distinguishes
// this from "empty" via the tail and briefly yields until the publish
// lands; the wait is bounded by the producer being between two adjacent
// instructions (plus scheduling, on oversubscribed hosts).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

namespace converse::detail {

class MpscRing {
 public:
  MpscRing() = default;
  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Allocate the cell array.  `capacity` is rounded up to a power of two
  /// (minimum 4).  Must be called before any push/pop.
  void Init(std::size_t capacity) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    head_ = 0;
    tail_.store(0, std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  /// Producer side: false when the ring is full (caller takes the overflow
  /// slow path).
  bool TryPush(void* msg) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
          cell.msg = msg;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure refreshed `pos`; retry.
      } else if (dif < 0) {
        return false;  // a full lap behind: ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side: next message, or nullptr when the ring is empty.
  void* TryPop() {
    const std::uint64_t pos = head_;
    Cell& cell = cells_[pos & mask_];
    std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) {
      if (tail_.load(std::memory_order_seq_cst) <= pos) return nullptr;
      // Claimed but not yet published: the producer is between its CAS and
      // its release store.  Wait for the publish rather than skipping the
      // cell, so ring order (and per-sender FIFO) is preserved.
      do {
        std::this_thread::yield();
        seq = cell.seq.load(std::memory_order_acquire);
      } while (seq != pos + 1);
    }
    void* msg = cell.msg;
    cell.seq.store(pos + capacity_, std::memory_order_release);
    head_ = pos + 1;
    return msg;
  }

  /// Consumer side: true when at least one cell has been claimed (it may
  /// still be a publish-in-progress cell; TryPop will wait it out).
  bool HasItems() const {
    return tail_.load(std::memory_order_seq_cst) > head_;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    void* msg = nullptr;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  // Producers contend on tail_; head_ is consumer-private.  Keep them on
  // separate cache lines so pops never bounce the producers' line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t head_ = 0;
};

}  // namespace converse::detail
