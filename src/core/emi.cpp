// EMI scatter ("advance receive") registration — see include/converse/emi.h.
#include "converse/emi.h"

#include <algorithm>
#include <cassert>

#include "core/pe_state.h"

namespace converse {

int CmiScatterRegister(std::size_t match_offset, std::uint32_t match_value,
                       std::vector<ScatterPart> parts, int notify_handler,
                       bool persistent) {
  detail::PeState& pe = detail::CpvChecked();
  detail::ScatterReg reg;
  reg.id = pe.next_scatter_id++;
  reg.match_offset = match_offset;
  reg.match_value = match_value;
  reg.parts = std::move(parts);
  reg.notify_handler = notify_handler;
  reg.persistent = persistent;
  pe.scatters.push_back(std::move(reg));
  return pe.scatters.back().id;
}

void CmiScatterCancel(int registration_id) {
  detail::PeState& pe = detail::CpvChecked();
  auto it = std::find_if(pe.scatters.begin(), pe.scatters.end(),
                         [registration_id](const detail::ScatterReg& r) {
                           return r.id == registration_id;
                         });
  if (it != pe.scatters.end()) pe.scatters.erase(it);
}

int CmiScatterCount() {
  return static_cast<int>(detail::CpvChecked().scatters.size());
}

}  // namespace converse
