// EMI scatter ("advance receive") registration — see include/converse/emi.h.
#include "converse/emi.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>

#include "core/pe_state.h"

namespace converse {

// The registration table is normally touched only by its owning PE, but the
// direct-scatter fast path (CmiVectorSend on another PE matching against
// this table and writing user buffers) makes it shared state: every access
// goes under pe.scatter_mu, with pe.scatter_armed as the lock-free
// senders-side emptiness probe.

int CmiScatterRegister(std::size_t match_offset, std::uint32_t match_value,
                       std::vector<ScatterPart> parts, int notify_handler,
                       bool persistent) {
  detail::PeState& pe = detail::CpvChecked();
  detail::ScatterReg reg;
  reg.match_offset = match_offset;
  reg.match_value = match_value;
  reg.parts = std::move(parts);
  reg.notify_handler = notify_handler;
  reg.persistent = persistent;
  std::scoped_lock lock(pe.scatter_mu);
  reg.id = pe.next_scatter_id++;
  pe.scatters.push_back(std::move(reg));
  pe.scatter_armed.store(static_cast<int>(pe.scatters.size()),
                         std::memory_order_release);
  return pe.scatters.back().id;
}

void CmiScatterCancel(int registration_id) {
  detail::PeState& pe = detail::CpvChecked();
  std::scoped_lock lock(pe.scatter_mu);
  auto it = std::find_if(pe.scatters.begin(), pe.scatters.end(),
                         [registration_id](const detail::ScatterReg& r) {
                           return r.id == registration_id;
                         });
  if (it != pe.scatters.end()) pe.scatters.erase(it);
  pe.scatter_armed.store(static_cast<int>(pe.scatters.size()),
                         std::memory_order_release);
}

int CmiScatterCount() {
  detail::PeState& pe = detail::CpvChecked();
  // The lock (not just the atomic) gives the caller a happens-before edge
  // with a remote direct-path fill: once the count observed here drops, the
  // user buffers the match wrote are safe to read.
  std::scoped_lock lock(pe.scatter_mu);
  return static_cast<int>(pe.scatters.size());
}

}  // namespace converse
