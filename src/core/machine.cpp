#include "converse/machine.h"

#include <barrier>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "converse/check.h"
#include "converse/csd.h"
#include "converse/detail/module.h"
#include "converse/util/timer.h"
#include "core/env.h"
#include "core/msg_pool.h"
#include "core/pe_state.h"
#include "core/transport/transport.h"
#include "race/race_internal.h"
#include "sim/sim_internal.h"

namespace converse {
namespace detail {
namespace {

thread_local PeState* tls_pe = nullptr;
Machine* g_current_machine = nullptr;

/// Per-PE state of the core module itself: the exit-broadcast handler and
/// the relay that re-creates receive-side scatter-notification semantics
/// for sender-side (zero-copy) landings.
struct CoreModuleState {
  int exit_handler = -1;
  int scatter_note_handler = -1;
};

CoreModuleState& CoreState() {
  return *static_cast<CoreModuleState*>(ModuleState(CoreModuleId()));
}

/// Copy `size` bytes of `msg` into a fresh machine-owned buffer.
void* CopyMessage(const void* msg, std::size_t size) {
  assert(size >= sizeof(MsgHeader));
  void* copy = CmiAlloc(size);
  std::memcpy(copy, msg, size);
  Header(copy)->total_size = static_cast<std::uint32_t>(size);
  Header(copy)->magic = kMsgMagicAlive;
  MsgPoolRestampFlag(copy);  // memcpy brought the source's pooled bit along
  check::OnCopyReset(copy);
  return copy;
}

}  // namespace

/// Test one scatter registration against a delivered message; returns true
/// if the message was consumed.
bool TryScatter(PeState& pe, void* msg) {
  // One relaxed load on the per-message fast path; registrations are rare.
  if (pe.scatter_armed.load(std::memory_order_relaxed) == 0) return false;
  // Carriers are machine-internal envelopes; scatters match the logical
  // messages unpacked from them, never the envelope's own payload.
  if ((Header(msg)->flags & kMsgFlagCarrierMask) != 0) return false;
  const std::size_t payload_size = CmiMsgPayloadSize(msg);
  const char* payload = static_cast<const char*>(CmiMsgPayload(msg));
  int notify = -1;
  std::uint32_t value = 0;
  bool matched = false;
  {
    // The registration table is shared with the sender-side zero-copy
    // landing path (TryScatterDirect); scatter_mu is a leaf lock.
    std::scoped_lock lk(pe.scatter_mu);
    for (std::size_t i = 0; i < pe.scatters.size(); ++i) {
      ScatterReg& reg = pe.scatters[i];
      if (reg.match_offset + sizeof(std::uint32_t) > payload_size) continue;
      std::uint32_t word;
      std::memcpy(&word, payload + reg.match_offset, sizeof(word));
      if (word != reg.match_value) continue;
      for (const ScatterPart& part : reg.parts) {
        assert(part.payload_offset + part.length <= payload_size &&
               "scatter part exceeds message payload");
        std::memcpy(part.destination, payload + part.payload_offset,
                    part.length);
      }
      notify = reg.notify_handler;
      value = reg.match_value;
      matched = true;
      if (!reg.persistent) {
        pe.scatters.erase(pe.scatters.begin() + static_cast<long>(i));
        pe.scatter_armed.store(static_cast<int>(pe.scatters.size()),
                               std::memory_order_release);
      }
      break;
    }
  }
  if (!matched) return false;
  check::OnReclaim(msg);  // machine layer consumes the in-flight buffer
  CmiFree(msg);
  if (notify >= 0) {
    // "queues a short empty message in addition ... to notify the
    // recipient that the data has arrived" (paper, EMI).
    void* note = CmiMakeMessage(notify, &value, sizeof(value));
    pe.schedq.Enqueue(note);
    ++pe.stats.msgs_enqueued;
  }
  return true;
}

namespace {

/// Copy `n` bytes at logical offset `off` of the concatenated gather
/// segments into `out`.  The caller guarantees off + n <= total size.
void GatherRead(int len, const int sizes[], const void* const data_array[],
                std::size_t off, std::size_t n, void* out) {
  char* dst = static_cast<char*>(out);
  for (int i = 0; i < len && n > 0; ++i) {
    const std::size_t seg = static_cast<std::size_t>(sizes[i]);
    if (off >= seg) {
      off -= seg;
      continue;
    }
    const std::size_t take = seg - off < n ? seg - off : n;
    std::memcpy(dst, static_cast<const char*>(data_array[i]) + off, take);
    dst += take;
    n -= take;
    off = 0;
  }
  assert(n == 0 && "gather read past the end of the segments");
}

}  // namespace

bool TryScatterDirect(PeState& src, int dest_pe, int len, const int sizes[],
                      const void* const data_array[],
                      std::size_t payload_size) {
  Machine& m = *src.machine;
  // The sim backend and latency models keep per-message semantics (fault
  // draws, arrival pricing, conservation oracles); a zero-copy landing
  // would make the matched message invisible to them, so those builds use
  // the receive-side TryScatter path unchanged.
  if (m.sim() != nullptr || m.has_model()) return false;
  // Cross-node destinations have no shared address space (and the loopback
  // wire emulates that): vector sends to them take the gather-copy path.
  if (m.multi_node() && m.NodeOf(dest_pe) != src.node) return false;
  PeState& dst = m.Pe(dest_pe);
  if (dst.scatter_armed.load(std::memory_order_acquire) == 0) return false;
  int notify = -1;
  std::uint32_t value = 0;
  bool matched = false;
  {
    std::scoped_lock lk(dst.scatter_mu);
    for (std::size_t i = 0; i < dst.scatters.size(); ++i) {
      ScatterReg& reg = dst.scatters[i];
      if (reg.match_offset + sizeof(std::uint32_t) > payload_size) continue;
      std::uint32_t word;
      GatherRead(len, sizes, data_array, reg.match_offset, sizeof(word),
                 &word);
      if (word != reg.match_value) continue;
      for (const ScatterPart& part : reg.parts) {
        assert(part.payload_offset + part.length <= payload_size &&
               "scatter part exceeds message payload");
        GatherRead(len, sizes, data_array, part.payload_offset, part.length,
                   part.destination);
      }
      notify = reg.notify_handler;
      value = reg.match_value;
      matched = true;
      if (!reg.persistent) {
        dst.scatters.erase(dst.scatters.begin() + static_cast<long>(i));
        dst.scatter_armed.store(static_cast<int>(dst.scatters.size()),
                                std::memory_order_release);
      }
      break;
    }
  }
  if (!matched) return false;
  ++src.stats.scatter_direct;
  if (notify >= 0) {
    // Recreate receive-side notification semantics exactly: a control
    // message to the destination whose machine-internal handler enqueues
    // the short notify message into the scheduler queue there (the notify
    // handler owns its buffer on both paths).  It flushes the sender's
    // open frame and rides the ordinary FIFO lane, so it arrives after any
    // earlier traffic and publishes the user-buffer writes.
    const std::uint32_t words[2] = {static_cast<std::uint32_t>(notify),
                                    value};
    void* ctl =
        CmiMakeMessage(CoreState().scatter_note_handler, words,
                       sizeof(words));
    SendOwnedFrom(src, dest_pe, ctl);
  }
  return true;
}

namespace {

void FlushPendingMmi(PeState& pe) {
  void* stale = pe.pending_mmi;
  const bool grabbed = pe.pending_mmi_grabbed;
  pe.pending_mmi = nullptr;
  pe.pending_mmi_grabbed = false;
  if (stale != nullptr && !grabbed) {
    check::OnReclaim(stale);  // MMI reclaims its ungrabbed buffer
    CmiFree(stale);
  }
}

// ---- lock-free delivery lanes -------------------------------------------
//
// The common send path is LanePush's first branch: one ring-slot CAS plus a
// release store, no mutex.  The overflow deque (and the sticky
// overflow_count protocol documented in pe_state.h) exists so the bounded
// ring is a throughput knob rather than a correctness limit.

/// Producer side: deposit `msg` into `lane` of `dst`, preserving per-sender
/// FIFO order across the ring/overflow boundary.
void LanePush(PeState& dst, InLane& lane, void* msg) {
  if (lane.overflow_count.load(std::memory_order_acquire) == 0 &&
      lane.ring.TryPush(msg)) {
    return;
  }
  std::scoped_lock lk(dst.mu);
  // Re-check under the lock: the consumer zeroes overflow_count only while
  // holding dst.mu, so a stale nonzero fast-path read is corrected here and
  // the message rejoins the ring — none of our earlier messages can still
  // be sitting in the (now empty) overflow deque.
  if (lane.overflow_count.load(std::memory_order_relaxed) == 0 &&
      lane.ring.TryPush(msg)) {
    return;
  }
  lane.overflow.push_back(msg);
  lane.overflow_count.fetch_add(1, std::memory_order_seq_cst);
}

/// Producer side: wake `dst` if its thread is parked in WaitForNet.  Must
/// run after the message is published (ring tail CAS or overflow count
/// bump — both seq_cst, pairing with the consumer's parked store).
void NotifyIfParked(PeState& dst) {
  if (dst.parked.load(std::memory_order_seq_cst)) {
    std::scoped_lock lk(dst.mu);
    dst.cv.notify_one();
  }
}

/// Consumer side: next message from `lane`, draining `batchq` first, then
/// the ring, then (in batch, one lock) the overflow deque.  nullptr when
/// the lane is empty.
void* LanePop(PeState& pe, InLane& lane, std::deque<void*>& batchq) {
  if (!batchq.empty()) {
    void* msg = batchq.front();
    batchq.pop_front();
    return msg;
  }
  if (void* msg = lane.ring.TryPop()) return msg;
  if (lane.overflow_count.load(std::memory_order_seq_cst) == 0) {
    return nullptr;
  }
  {
    std::scoped_lock lk(pe.mu);
    batchq.insert(batchq.end(), lane.overflow.begin(), lane.overflow.end());
    lane.overflow.clear();
    lane.overflow_count.store(0, std::memory_order_seq_cst);
  }
  if (batchq.empty()) return nullptr;
  void* msg = batchq.front();
  batchq.pop_front();
  return msg;
}

/// Consumer side: lane has (or imminently has) a message.  The staged batch
/// queues are consumer-private, so this is safe lock-free from the owning
/// PE's thread.
bool LaneHasItems(const PeState& pe, const InLane& lane,
                  const std::deque<void*>& batchq) {
  (void)pe;
  return !batchq.empty() || lane.ring.HasItems() ||
         lane.overflow_count.load(std::memory_order_seq_cst) != 0;
}

bool HasImmediate(const PeState& pe) {
  return LaneHasItems(pe, pe.immlane, pe.imm_batchq);
}

bool HasRegular(const PeState& pe) {
  return LaneHasItems(pe, pe.netlane, pe.batchq);
}

/// Consumer side, net-model mode: refill batchq with every already-arrived
/// timed entry (one lock per batch) and return the first one.
void* PopTimed(PeState& pe, Machine& m) {
  if (!pe.batchq.empty()) {
    void* msg = pe.batchq.front();
    pe.batchq.pop_front();
    return msg;
  }
  constexpr int kTimedBatch = 64;
  std::scoped_lock lk(pe.mu);
  const double now = m.ElapsedUs();
  int n = 0;
  while (!pe.timedq.empty() && pe.timedq.top().arrive_us <= now &&
         n < kTimedBatch) {
    pe.batchq.push_back(pe.timedq.top().msg);
    pe.timedq.pop();
    ++n;
  }
  if (pe.batchq.empty()) return nullptr;
  void* msg = pe.batchq.front();
  pe.batchq.pop_front();
  return msg;
}

}  // namespace

PeState* Cpv() { return tls_pe; }

PeState& CpvChecked() {
  if (CciCheckEnabled()) check::CheckInsidePe("a Converse runtime function");
  assert(tls_pe != nullptr &&
         "Converse call made outside a PE thread of a running machine");
  return *tls_pe;
}

void* CloneMessage(const void* msg) {
  return CopyMessage(msg, Header(const_cast<void*>(msg))->total_size);
}

int CoreModuleId() {
  static const int id = RegisterModule(
      "core",
      [](int module_id) {
        auto* st = new CoreModuleState;
        st->exit_handler = CmiRegisterHandler([](void*) {
          CsdExitScheduler();
        });
        st->scatter_note_handler = CmiRegisterHandler([](void* msg) {
          // Relay for sender-side (zero-copy) scatter landings: payload is
          // {notify handler, match value}.  Enqueue the notify message into
          // the scheduler queue here, exactly like the receive-side path.
          std::uint32_t words[2];
          std::memcpy(words, CmiMsgPayload(msg), sizeof(words));
          PeState& pe = CpvChecked();
          void* note = CmiMakeMessage(static_cast<int>(words[0]), &words[1],
                                      sizeof(words[1]));
          pe.schedq.Enqueue(note);
          ++pe.stats.msgs_enqueued;
        });
        SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<CoreModuleState*>(state); });
  return id;
}

/// A grabbed shared-broadcast view is read-only (the same bytes are live
/// on other PEs); send paths that restamp the header detach onto a private
/// copy first, releasing the view's block reference.
void* DetachSharedView(void* msg) {
  if ((Header(msg)->flags & kMsgFlagShared) == 0) return msg;
  void* copy = CloneMessage(msg);
  CmiFree(msg);
  return copy;
}

void SendSharedBlockFrom(PeState& pe, int dest_pe, void* block) {
  Machine& m = *pe.machine;
  assert(dest_pe >= 0 && dest_pe < m.npes() && "send to invalid PE");
  assert(!m.has_model() && "shared broadcasts need the plain (tree) path");
  // Per-sender FIFO choke point, as in SendOwnedFrom: earlier small sends
  // to this destination may still sit in an open frame.  No header
  // restamp, no check/race send hooks, no logical counters: the fan-out
  // was accounted at the broadcast root, the header is shared (read-only
  // off the root), and the race clock identity rides (root, seq) from
  // race::OnBcastRoot.
  if (!pe.agg.open.empty()) CstFlushDest(pe, dest_pe);
  if (SimCoordinator* sim = m.sim()) {
    sim->Send(pe, dest_pe, block, 0.0);
    return;
  }
  PeState& dst = m.Pe(dest_pe);
  LanePush(dst, dst.netlane, block);
  NotifyIfParked(dst);
}

namespace {

void SendOwnedFromImpl(PeState& pe, int dest_pe, void* msg, double delay_us,
                       bool allow_wire) {
  Machine& m = *pe.machine;
  msg = DetachSharedView(msg);
  assert(dest_pe >= 0 && dest_pe < m.npes() && "send to invalid PE");
  assert((delay_us == 0.0 || m.uses_timedq()) &&
         "delayed sends need a timed machine (sim backend or net model)");
  // Per-sender FIFO choke point: an open aggregation frame to this
  // destination holds earlier messages, so it must hit the wire first.
  // (CstFlushDest detaches the frame before re-entering here, so a frame's
  // own send passes straight through.)
  if (!pe.agg.open.empty()) CstFlushDest(pe, dest_pe);
  MsgHeader* h = Header(msg);
  check::OnSend(msg);
  assert(h->magic == kMsgMagicAlive && "sending a freed message");
  // With CciCheck on, a never-set handler is reported at dispatch time
  // (rule no-handler) with the sender PE named in the diagnostic.
  assert((CciCheckEnabled() || h->handler != 0xffffffffu) &&
         "sending a message with no handler");
  h->source_pe = static_cast<std::uint16_t>(pe.mype);
  h->seq = static_cast<std::uint32_t>(pe.send_seq++);
  // Carriers (aggregation frames, broadcast wrappers) are physical
  // envelopes: the logical messages inside were already counted — at
  // append time or at the broadcast root — so the envelope itself stays
  // invisible to the send counters and the trace.
  if ((h->flags & kMsgFlagCarrierMask) == 0) {
    if (pe.hooks != nullptr && pe.hooks->on_send != nullptr) {
      pe.hooks->on_send(pe.hooks->ud, h, dest_pe);
    }
    ++pe.stats.msgs_sent;
    ++pe.qd_created;
  }
  race::OnSend(pe, dest_pe, msg);

  // Destinations on another node cross the wire.  A real backend consumes
  // the message (it now belongs to a peer process); the loopback wire
  // validates + counts the record and falls through (or consumes it when
  // the disconnect injector lost it), so sim/model delivery semantics are
  // untouched.  Single-node machines have no transport: this is one load
  // and one branch on the in-process fast path.
  if (allow_wire && m.transport() != nullptr &&
      m.NodeOf(dest_pe) != pe.node &&
      m.transport()->SendRemote(pe, dest_pe, msg, /*immediate=*/false)) {
    return;
  }

  if (SimCoordinator* sim = m.sim()) {
    // The simulator owns the whole delivery decision: fault injection,
    // virtual-time arrival stamping, trace hashing.  Takes ownership.
    sim->Send(pe, dest_pe, msg, delay_us);
    return;
  }
  PeState& dst = m.Pe(dest_pe);
  if (m.has_model()) {
    // Timed queue keeps the original mutex semantics: arrival ordering
    // needs the priority queue, and waiters sleep on arrival deadlines.
    // A PE's sends to itself never cross the modeled network, so they pay
    // no model latency — a delayed self-send is a pure timer.
    const double oneway = dest_pe == pe.mype
                              ? 0.0
                              : m.model().OnewayUs(CmiMsgPayloadSize(msg));
    const double arrive_us = m.ElapsedUs() + oneway + delay_us;
    {
      std::scoped_lock lk(dst.mu);
      dst.timedq.push(NetEntry{msg, arrive_us, dst.net_seq++});
    }
    dst.cv.notify_one();
    return;
  }
  LanePush(dst, dst.netlane, msg);
  NotifyIfParked(dst);
}

}  // namespace

void SendOwnedFrom(PeState& pe, int dest_pe, void* msg, double delay_us) {
  SendOwnedFromImpl(pe, dest_pe, msg, delay_us, /*allow_wire=*/true);
}

void SendOwnedFromLocal(PeState& pe, int dest_pe, void* msg,
                        double delay_us) {
  SendOwnedFromImpl(pe, dest_pe, msg, delay_us, /*allow_wire=*/false);
}

void SendOwned(int dest_pe, void* msg) {
  SendOwnedFrom(CpvChecked(), dest_pe, msg);
}

void DeliverFromWire(Machine& m, int dest_pe, void* msg, bool immediate) {
  assert(m.IsLocalPe(dest_pe) && "wire delivery to a PE we do not host");
  PeState& dst = m.Pe(dest_pe);
  LanePush(dst, immediate ? dst.immlane : dst.netlane, msg);
  NotifyIfParked(dst);
}

void SendOwnedImmediate(int dest_pe, void* msg) {
  PeState& pe = CpvChecked();
  Machine& m = *pe.machine;
  msg = DetachSharedView(msg);
  assert(dest_pe >= 0 && dest_pe < m.npes() && "send to invalid PE");
  MsgHeader* h = Header(msg);
  check::OnSend(msg);
  assert(h->magic == kMsgMagicAlive);
  assert((CciCheckEnabled() || h->handler != 0xffffffffu) &&
         "sending a message with no handler");
  h->source_pe = static_cast<std::uint16_t>(pe.mype);
  h->seq = static_cast<std::uint32_t>(pe.send_seq++);
  if (pe.hooks != nullptr && pe.hooks->on_send != nullptr) {
    pe.hooks->on_send(pe.hooks->ud, h, dest_pe);
  }
  ++pe.stats.msgs_sent;
  ++pe.qd_created;
  race::OnSend(pe, dest_pe, msg);
  // Immediate messages bypass the sim's fault injector and latency model by
  // design — they are the reliable out-of-band control plane — but they are
  // still part of the deterministic trace.
  if (SimCoordinator* sim = m.sim()) {
    sim->RecordImmediateSend(pe, dest_pe, msg);
  }
  // Cross-node immediates ride the same wire but are exempt from the
  // loopback disconnect injector (they are the reliable control plane, as
  // with the sim's fault injector above).
  if (m.transport() != nullptr && m.NodeOf(dest_pe) != pe.node &&
      m.transport()->SendRemote(pe, dest_pe, msg, /*immediate=*/true)) {
    return;
  }
  PeState& dst = m.Pe(dest_pe);
  LanePush(dst, dst.immlane, msg);
  NotifyIfParked(dst);
}

void* PopNet(PeState& pe) {
  Machine& m = *pe.machine;
  for (;;) {
    // Out-of-band lane first: always ahead of regular traffic, never
    // delayed by the latency model.
    void* msg = LanePop(pe, pe.immlane, pe.imm_batchq);
    if (msg == nullptr) {
      msg = m.uses_timedq() ? PopTimed(pe, m)
                            : LanePop(pe, pe.netlane, pe.batchq);
    }
    if (msg == nullptr) return nullptr;
    if (!TryScatter(pe, msg)) return msg;
    // Scatter consumed the message; look for the next one.
  }
}

bool NetIsIdle(PeState& pe) {
  Machine& m = *pe.machine;
  if (HasImmediate(pe)) return false;
  if (m.uses_timedq()) {
    std::scoped_lock lk(pe.mu);
    return pe.timedq.empty() || pe.timedq.top().arrive_us > m.ElapsedUs();
  }
  return !HasRegular(pe);
}

int DeliverAvailable(PeState& pe, int budget) {
  int delivered = 0;
  while (budget < 0 || delivered < budget) {
    if (pe.exit_requested) break;
    void* msg = nullptr;
    if (!pe.heldq.empty()) {
      msg = pe.heldq.front();
      pe.heldq.pop_front();
    } else {
      msg = PopNet(pe);
      if (msg == nullptr) break;
    }
    SimCoordinator* sim = pe.machine->sim();
    if ((Header(msg)->flags & kMsgFlagCarrierMask) != 0) {
      // One wire message, possibly many logical deliveries: a counted
      // budget can overshoot (a frame unpacks atomically) but never stall.
      delivered += CstDeliverCarrier(pe, msg);
    } else {
      ++pe.stats.msgs_delivered;
      race::OnWireDeliver(pe, msg, /*was_bcast=*/false);
      if (sim != nullptr) sim->RecordDeliver(pe, msg);
      DispatchMessage(msg, /*system_owned=*/true);
      ++delivered;
    }
    // Dispatch boundaries are the sim's primary preemption points.
    if (sim != nullptr) sim->YieldPoint(pe);
  }
  return delivered;
}

void WaitForNet(PeState& pe) {
  // A PE about to block must push its open aggregation frames first: the
  // messages inside may be the very ones the awaited reply depends on.
  CstFlushAll(pe);
  Machine& m = *pe.machine;
  if (SimCoordinator* sim = m.sim()) {
    // Under the simulator an idle PE releases the baton instead of parking
    // on the condvar; it returns runnable (or unwinds on abort/deadlock).
    ++pe.stats.idle_blocks;
    if (pe.hooks != nullptr && pe.hooks->on_idle_begin != nullptr) {
      pe.hooks->on_idle_begin(pe.hooks->ud);
    }
    sim->BlockForNet(pe);
    if (pe.hooks != nullptr && pe.hooks->on_idle_end != nullptr) {
      pe.hooks->on_idle_end(pe.hooks->ud);
    }
    return;
  }
  // Optional spin phase: poll without sleeping (and, on the lane paths,
  // without locking) for a configured window — dedicated-node behavior;
  // fall through to the blocking wait after.
  const double spin_us = m.config().idle_spin_us;
  if (spin_us > 0) {
    const double deadline = m.ElapsedUs() + spin_us;
    while (m.ElapsedUs() < deadline) {
      if (m.aborted()) throw MachineAborted{};
      if (HasImmediate(pe)) return;
      if (m.has_model()) {
        std::scoped_lock lk(pe.mu);
        if (!pe.timedq.empty() &&
            pe.timedq.top().arrive_us <= m.ElapsedUs()) {
          return;
        }
      } else if (HasRegular(pe)) {
        return;
      }
    }
  }
  // From here on the PE is idle: the yield phase and the park below are
  // one idle block as far as stats and trace hooks are concerned.
  ++pe.stats.idle_blocks;
  if (pe.hooks != nullptr && pe.hooks->on_idle_begin != nullptr) {
    pe.hooks->on_idle_begin(pe.hooks->ud);
  }
  const auto idle_end = [&pe] {
    if (pe.hooks != nullptr && pe.hooks->on_idle_end != nullptr) {
      pe.hooks->on_idle_end(pe.hooks->ud);
    }
  };
  // Yield phase (no-model only): before paying for a futex park, hand the
  // core to whichever thread is runnable a few times.  On oversubscribed
  // hosts the producer usually runs in that window and the park — plus the
  // producer's matching lock+notify — never happens.  Bounded, so a PE
  // with genuinely nothing to do still parks promptly.
  if (!m.has_model()) {
    constexpr int kYieldRounds = 32;
    for (int i = 0; i < kYieldRounds; ++i) {
      if (m.aborted()) throw MachineAborted{};
      if (HasImmediate(pe) || HasRegular(pe)) {
        idle_end();
        return;
      }
      std::this_thread::yield();
    }
  }
  // Park.  The seq_cst parked store before the final deliverability probe
  // pairs with the producers' seq_cst publish (ring tail CAS / overflow
  // count bump) followed by their parked load: in every interleaving
  // either we see the message and skip the sleep, or the producer sees
  // parked==true and notifies under the mutex.
  pe.parked.store(true, std::memory_order_seq_cst);
  struct Unpark {
    PeState& pe;
    ~Unpark() { pe.parked.store(false, std::memory_order_seq_cst); }
  } unpark{pe};
  if (m.aborted()) throw MachineAborted{};
  if (!m.has_model() && (HasImmediate(pe) || HasRegular(pe))) {
    idle_end();
    return;
  }

  std::unique_lock lk(pe.mu);
  for (;;) {
    if (m.aborted()) throw MachineAborted{};
    if (HasImmediate(pe)) break;
    if (m.has_model()) {
      if (!pe.timedq.empty()) {
        const double arrive = pe.timedq.top().arrive_us;
        const double now = m.ElapsedUs();
        if (arrive <= now) break;
        pe.cv.wait_for(lk, std::chrono::duration<double, std::micro>(
                               arrive - now));
        continue;
      }
      pe.cv.wait(lk);
    } else {
      if (HasRegular(pe)) break;
      pe.cv.wait(lk);
    }
  }
  idle_end();
}

namespace {

/// Fold launcher environment (tools/converserun sets the CONVERSE_NODE
/// family on every rank it spawns) into the config and normalize the node
/// topology.  All integer variables go through the strict parser: a
/// malformed value keeps the built-in default and prints one "[Cmi]" line.
void ResolveTransportConfig(MachineConfig& c, std::FILE* err) {
  if (std::getenv("CONVERSE_NODE") != nullptr) {
    c.mynode = static_cast<int>(
        GetEnvInt("CONVERSE_NODE", c.mynode, err, /*warn=*/true));
    c.nnodes = static_cast<int>(
        GetEnvInt("CONVERSE_NNODES", c.nnodes, err, true));
    c.npes = static_cast<int>(GetEnvInt("CONVERSE_NPES", c.npes, err, true));
    if (const char* t = std::getenv("CONVERSE_TRANSPORT")) {
      if (std::strcmp(t, "socket") == 0) {
        c.transport = CmiTransport::kSocket;
      } else if (std::strcmp(t, "smp") == 0) {
        c.transport = CmiTransport::kSmpNode;
      } else if (std::strcmp(t, "inproc") == 0) {
        c.transport = CmiTransport::kInproc;
      } else {
        std::fprintf(err,
                     "[Cmi] ignoring unknown CONVERSE_TRANSPORT=\"%s\" "
                     "(want inproc|socket|smp)\n",
                     t);
      }
    }
  }
  if (c.rendezvous_dir == nullptr) {
    c.rendezvous_dir = std::getenv("CONVERSE_RDV");  // may stay null (TCP)
  }
  if (c.tcp_base_port == 0) {
    c.tcp_base_port =
        static_cast<int>(GetEnvInt("CONVERSE_TCP_BASE", 0, err, true));
  }
  if (c.wire_timeout_ms == 0) {
    c.wire_timeout_ms = static_cast<int>(
        GetEnvInt("CONVERSE_WIRE_TIMEOUT_MS", 10000, err, true));
  }
  switch (c.transport) {
    case CmiTransport::kInproc:
      c.nnodes = 1;
      break;
    case CmiTransport::kSocket:
      c.nnodes = c.npes;  // one process per PE
      break;
    case CmiTransport::kSmpNode:
      break;
  }
  if (c.nnodes < 1) c.nnodes = 1;
  if (c.nnodes > c.npes) c.nnodes = c.npes;
  if (c.nnodes == 1) c.mynode = c.mynode < 0 ? -1 : 0;
  assert(c.mynode < c.nnodes && "CONVERSE_NODE out of range");
  if (c.mynode >= 0) {
    // Real multi-process mode: delivery decisions live partly in peer
    // processes, which is incompatible with the sim's global serialization
    // and with timed-queue (NetModel) arrival ordering.  Loopback mode
    // (mynode == -1) supports both.
    assert(c.sim == nullptr &&
           "the deterministic sim drives socket transports in loopback "
           "mode (mynode == -1), not across real processes");
    assert(c.model == nullptr &&
           "a NetModel cannot price wires it does not carry; real "
           "multi-process machines must run without one");
  }
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      model_(config.model != nullptr ? *config.model : NetModel{}),
      tree_(config.npes, 0, config.spantree_branching),
      out_(config.out != nullptr ? config.out : stdout),
      err_(config.err != nullptr ? config.err : stderr),
      in_(config.in != nullptr ? config.in : stdin) {
  assert(config.npes >= 1);
  ResolveTransportConfig(config_, err_);
  tree_ = util::SpanningTree(config_.npes, 0, config_.spantree_branching);
  pe_begin_ = config_.mynode >= 0 ? NodeFirst(config_.mynode) : 0;
  pe_end_ = config_.mynode >= 0 ? pe_begin_ + NodeSize(config_.mynode)
                                : config_.npes;
  pes_.reserve(static_cast<std::size_t>(local_npes()));
  util::SplitMix64 seeder(config_.seed);
  // Skip the seed draws of PEs hosted by lower-ranked processes so a PE's
  // RNG stream is identical no matter which process hosts it.
  for (int i = 0; i < pe_begin_; ++i) seeder.Next();
  const std::size_t ring_cap = static_cast<std::size_t>(
      config_.ring_capacity < 1 ? 1 : config_.ring_capacity);
  for (int i = pe_begin_; i < pe_end_; ++i) {
    auto pe = std::make_unique<PeState>();
    pe->machine = this;
    pe->mype = i;
    pe->npes = config_.npes;
    pe->node = NodeOf(i);
    pe->rng = util::Xoshiro256(seeder.Next());
    pe->netlane.ring.Init(ring_cap);
    pe->immlane.ring.Init(ring_cap);
    pe->pool = MsgPoolEnabled() ? MsgPoolForSlot(i - pe_begin_) : nullptr;
    CstInitPe(*pe);
    pes_.push_back(std::move(pe));
  }
  if (config_.sim != nullptr) {
    sim_config_ = *config_.sim;
    config_.sim = &sim_config_;  // caller's SimConfig need not outlive us
    sim_ = std::make_unique<SimCoordinator>(*this, sim_config_);
  }
  transport_ = MakeTransport(*this);
  race::MachineCreate(*this);
}

Machine::~Machine() {
  if (sim_ != nullptr) {
    // Messages the fault injector or the flip mechanism still holds back
    // (possible only after an abort) are machine-owned like everything else
    // at teardown.
    while (void* held = sim_->TakeHeldMessage()) {
      detail::check::OnReclaim(held);
      CmiFree(held);
    }
    sim_->FillReport();
  }
  race::MachineDestroy(*this);
  for (auto& pe : pes_) DrainQueues(*pe);
}

void Machine::DrainQueues(PeState& pe) {
  // Teardown: the machine reclaims every buffer it still owns; OnReclaim
  // tells the checker these frees are the machine layer's prerogative.
  // PE threads have joined, so the destructor is the rings' consumer.
  CstDrain(pe);
  for (InLane* lane : {&pe.netlane, &pe.immlane}) {
    for (void* msg = lane->ring.TryPop(); msg != nullptr;
         msg = lane->ring.TryPop()) {
      detail::check::OnReclaim(msg);
      CmiFree(msg);
    }
    while (!lane->overflow.empty()) {
      detail::check::OnReclaim(lane->overflow.front());
      CmiFree(lane->overflow.front());
      lane->overflow.pop_front();
    }
    lane->overflow_count.store(0, std::memory_order_relaxed);
  }
  for (std::deque<void*>* q : {&pe.batchq, &pe.imm_batchq}) {
    while (!q->empty()) {
      detail::check::OnReclaim(q->front());
      CmiFree(q->front());
      q->pop_front();
    }
  }
  while (!pe.timedq.empty()) {
    detail::check::OnReclaim(pe.timedq.top().msg);
    CmiFree(pe.timedq.top().msg);
    pe.timedq.pop();
  }
  while (!pe.heldq.empty()) {
    detail::check::OnReclaim(pe.heldq.front());
    CmiFree(pe.heldq.front());
    pe.heldq.pop_front();
  }
  for (void* msg = pe.schedq.Dequeue(); msg != nullptr;
       msg = pe.schedq.Dequeue()) {
    CmiFree(msg);
  }
  if (pe.pending_mmi != nullptr && !pe.pending_mmi_grabbed) {
    detail::check::OnReclaim(pe.pending_mmi);
    CmiFree(pe.pending_mmi);
    pe.pending_mmi = nullptr;
  }
}

double Machine::ElapsedUs() const {
  if (sim_ != nullptr) return sim_->NowUs();  // virtual time
  return static_cast<double>(util::NowNs() - start_ns_) * 1e-3;
}

void Machine::Abort(std::exception_ptr e) {
  {
    std::scoped_lock lk(abort_mu_);
    if (!first_error_ && e) first_error_ = e;
  }
  aborted_.store(true, std::memory_order_relaxed);
  if (sim_ != nullptr) sim_->OnAbort();
  for (auto& pe : pes_) {
    std::scoped_lock lk(pe->mu);
    pe->cv.notify_all();
  }
}

Machine* Machine::Current() { return g_current_machine; }

void Machine::Run(const std::function<void(int pe, int npes)>& entry) {
  assert(g_current_machine == nullptr &&
         "machines must run sequentially within a process");
  g_current_machine = this;
  start_ns_ = util::NowNs();
  CoreModuleId();  // make sure the core module is registered

  // Barriers span the PEs *this process* hosts; in real multi-process
  // mode remote PEs synchronize through the wire traffic itself (there is
  // deliberately no global startup barrier — sends queue until peers
  // finish their rendezvous).
  const int local_n = local_npes();
  std::barrier start_barrier(local_n);
  std::barrier finish_barrier(local_n);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(local_n));
  if (transport_ != nullptr) transport_->Start();

  for (int i = 0; i < local_n; ++i) {
    threads.emplace_back([this, i, &entry, &start_barrier, &finish_barrier] {
      PeState& pe = *pes_[static_cast<std::size_t>(i)];
      tls_pe = &pe;
      try {
        RunPeInitHooks();
      } catch (...) {
        Abort(std::current_exception());
      }
      start_barrier.arrive_and_wait();
      if (!aborted()) {
        try {
          // Under the simulator, wait for the first baton grant here so OS
          // thread startup order cannot leak into the schedule.
          if (sim_ != nullptr) sim_->PeStart(pe);
          entry(pe.mype, pe.npes);
          // Whatever the entry left in open aggregation frames still has
          // to reach its receivers (their schedulers may still be running).
          CstFlushAll(pe);
        } catch (MachineAborted&) {
          // Another PE failed; unwind quietly.
        } catch (...) {
          Abort(std::current_exception());
        }
        if (sim_ != nullptr) sim_->PeFinish(pe);
      }
      if (!aborted()) check::OnPeFinish();
      finish_barrier.arrive_and_wait();
      try {
        RunPeFiniHooks();
      } catch (...) {
        Abort(std::current_exception());
      }
      tls_pe = nullptr;
    });
  }
  for (auto& t : threads) t.join();
  // The comm thread is a lane producer, so it must stop before the
  // destructor drains queues — and before rethrow, so an aborting machine
  // still says goodbye to (or times out on) its peers.
  if (transport_ != nullptr) transport_->Stop();
  g_current_machine = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void RunConverse(const MachineConfig& config,
                 const std::function<void(int pe, int npes)>& entry) {
  detail::Machine machine(config);
  machine.Run(entry);
}

void RunConverse(int npes,
                 const std::function<void(int pe, int npes)>& entry) {
  MachineConfig config;
  config.npes = npes;
  RunConverse(config, entry);
}

bool CmiInsideMachine() { return detail::Cpv() != nullptr; }

int CmiMyPe() { return detail::CpvChecked().mype; }
int CmiNumPes() { return detail::CpvChecked().npes; }

int CmiMyNode() { return detail::CpvChecked().node; }
int CmiNumNodes() { return detail::CpvChecked().machine->nnodes(); }
int CmiNodeOf(int pe) { return detail::CpvChecked().machine->NodeOf(pe); }
int CmiNodeFirst(int node) {
  return detail::CpvChecked().machine->NodeFirst(node);
}
int CmiNodeSize(int node) {
  return detail::CpvChecked().machine->NodeSize(node);
}
int CmiMyRank() {
  detail::PeState& pe = detail::CpvChecked();
  return pe.mype - pe.machine->NodeFirst(pe.node);
}

double CmiTimer() {
  return detail::CpvChecked().machine->ElapsedUs() * 1e-6;
}

double CmiCpuTimer() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void CmiSyncSend(unsigned int dest_pe, unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  // Small remote messages append into the destination's aggregation frame
  // (one copy, no allocation) when the layer is on; everything else takes
  // the classic copy-and-push path.
  if (detail::CstTrySmallSend(pe, static_cast<int>(dest_pe), msg, size,
                              nullptr)) {
    return;
  }
  detail::SendOwnedFrom(pe, static_cast<int>(dest_pe),
                        detail::CopyMessage(msg, size));
}

void CmiSyncSendAndFree(unsigned int dest_pe, unsigned int size, void* msg) {
  auto* h = detail::Header(msg);
  if (CciCheckEnabled() && h->magic != detail::kMsgMagicAlive) {
    detail::check::Violate(CciRule::kUseAfterFree, msg,
                           "CmiSyncSendAndFree of a freed message (header "
                           "magic 0x%08x)", h->magic);
  }
  assert(h->magic == detail::kMsgMagicAlive);
  msg = detail::DetachSharedView(msg);
  h = detail::Header(msg);
  h->total_size = size;
  detail::PeState& pe = detail::CpvChecked();
  // Guard against handing the machine a buffer the dispatcher still owns.
  // With CciCheck on, SendOwned's OnSend hook reports the precise rule.
  assert((CciCheckEnabled() || pe.sysbuf_stack.empty() ||
          pe.sysbuf_stack.back().msg != msg ||
          pe.sysbuf_stack.back().grabbed) &&
         "CmiSyncSendAndFree on an ungrabbed system buffer; call "
         "CmiGrabBuffer first");
  if (detail::CstTrySmallSend(pe, static_cast<int>(dest_pe), msg, size,
                              nullptr)) {
    // The frame holds a copy; the original goes through the normal send
    // ownership transition (so CciCheck still diagnoses misuse) and is
    // reclaimed by the machine layer right here.
    detail::check::OnSend(msg);
    detail::check::OnReclaim(msg);
    CmiFree(msg);
    return;
  }
  detail::SendOwnedFrom(pe, static_cast<int>(dest_pe), msg);
}

void CmiSyncSendDelayedAndFree(unsigned int dest_pe, unsigned int size,
                               void* msg, double delay_us) {
  auto* h = detail::Header(msg);
  if (CciCheckEnabled() && h->magic != detail::kMsgMagicAlive) {
    detail::check::Violate(CciRule::kUseAfterFree, msg,
                           "CmiSyncSendDelayedAndFree of a freed message "
                           "(header magic 0x%08x)", h->magic);
  }
  assert(h->magic == detail::kMsgMagicAlive);
  assert(delay_us >= 0.0 && "negative send delay");
  msg = detail::DetachSharedView(msg);
  h = detail::Header(msg);
  h->total_size = size;
  detail::PeState& pe = detail::CpvChecked();
  // Timed messages skip the aggregation layer on purpose: a frame would
  // couple their delivery time to unrelated traffic to the same
  // destination, and they carry no FIFO contract that frames preserve.
  detail::SendOwnedFrom(pe, static_cast<int>(dest_pe), msg,
                        pe.machine->uses_timedq() ? delay_us : 0.0);
}

CommHandle CmiAsyncSend(unsigned int dest_pe, unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  if (detail::CstWouldAggregate(pe, static_cast<int>(dest_pe), size)) {
    // The message sits in an open frame until it flushes: a genuinely
    // deferred operation, tracked by a completion record.
    auto* c = new detail::AsyncCompletion{0, false};
    if (detail::CstTrySmallSend(pe, static_cast<int>(dest_pe), msg, size,
                                c)) {
      if (c->pending == 0) {  // the append itself filled the frame
        delete c;
        return CommHandle{nullptr};
      }
      return CommHandle{c};
    }
    delete c;
  }
  // Otherwise the machine copies eagerly, so the operation completes
  // before the call returns; the handle is born "done".
  detail::SendOwnedFrom(pe, static_cast<int>(dest_pe),
                        detail::CopyMessage(msg, size));
  return CommHandle{nullptr};
}

int CmiAsyncMsgSent(CommHandle handle) {
  if (handle.rec == nullptr) return 1;
  return static_cast<detail::AsyncCompletion*>(handle.rec)->pending == 0 ? 1
                                                                         : 0;
}

void CmiReleaseCommHandle(CommHandle handle) {
  auto* c = static_cast<detail::AsyncCompletion*>(handle.rec);
  if (c == nullptr) return;
  if (c->pending == 0) {
    delete c;
  } else {
    c->released = true;  // the last completion deletes it
  }
}

CommHandle CmiVectorSend(int dest_pe, int handler_id, int len,
                         const int sizes[], const void* const data_array[]) {
  // The summed segment sizes become a u32 total_size on the wire; validate
  // unconditionally (not just in debug builds) so a negative length or an
  // overflowing sum can never silently wrap into a short allocation.
  constexpr std::size_t kMaxTotal = 0xffffffffu;
  std::size_t payload = 0;
  for (int i = 0; i < len; ++i) {
    if (sizes[i] < 0) {
      detail::check::Violate(CciRule::kGatherOverflow, nullptr,
                             "CmiVectorSend: segment %d has negative size %d",
                             i, sizes[i]);
    }
    payload += static_cast<std::size_t>(sizes[i]);
    if (payload > kMaxTotal - sizeof(detail::MsgHeader)) {
      detail::check::Violate(CciRule::kGatherOverflow, nullptr,
                             "CmiVectorSend: summed segment sizes overflow "
                             "the 32-bit message size at segment %d", i);
    }
  }
  const std::size_t total_bytes = sizeof(detail::MsgHeader) + payload;
  detail::PeState& pe = detail::CpvChecked();
  // A pre-registered scatter on the destination can land the pieces
  // straight in the user's buffers — no message allocation at all.
  if (detail::TryScatterDirect(pe, dest_pe, len, sizes, data_array,
                               payload)) {
    return CommHandle{nullptr};
  }
  if (void* image = detail::CstReserveMsg(
          pe, dest_pe, static_cast<std::uint32_t>(total_bytes))) {
    // Gather the pieces straight into the reserved frame entry — no
    // intermediate message buffer at all.
    detail::MsgHeader h{};
    h.handler = static_cast<std::uint32_t>(handler_id);
    h.total_size = static_cast<std::uint32_t>(total_bytes);
    h.queueing = static_cast<std::uint8_t>(Queueing::kFifo);
    h.magic = detail::kMsgMagicAlive;
    std::memcpy(image, &h, sizeof(h));
    char* out = static_cast<char*>(image) + sizeof(h);
    for (int i = 0; i < len; ++i) {
      std::memcpy(out, data_array[i], static_cast<std::size_t>(sizes[i]));
      out += sizes[i];
    }
    detail::CstCommitMsg(pe, dest_pe, image,
                         static_cast<std::uint32_t>(total_bytes), nullptr);
    return CommHandle{nullptr};
  }
  void* msg = CmiAlloc(total_bytes);
  CmiSetHandler(msg, handler_id);
  char* out = static_cast<char*>(CmiMsgPayload(msg));
  for (int i = 0; i < len; ++i) {
    std::memcpy(out, data_array[i], static_cast<std::size_t>(sizes[i]));
    out += sizes[i];
  }
  detail::SendOwnedFrom(pe, dest_pe, msg);
  return CommHandle{nullptr};
}

void* CmiGetMsg() {
  detail::PeState& pe = detail::CpvChecked();
  detail::FlushPendingMmi(pe);
  void* msg = nullptr;
  for (;;) {
    if (!pe.heldq.empty()) {
      msg = pe.heldq.front();
      pe.heldq.pop_front();
      break;
    }
    msg = detail::PopNet(pe);
    if (msg == nullptr) break;
    if ((detail::Header(msg)->flags & detail::kMsgFlagCarrierMask) != 0) {
      // Unpack the carrier's logical messages (which may be zero, if
      // scatters consumed them all) and look again.
      detail::CstUnpackToHeld(pe, msg);
      msg = nullptr;
      continue;
    }
    break;
  }
  if (msg != nullptr) {
    detail::check::OnMmiReturn(msg);
    detail::race::OnMmiReturn(pe, msg);
    pe.pending_mmi = msg;
    pe.pending_mmi_grabbed = false;
  }
  return msg;
}

int CmiDeliverMsgs(int max_msgs) {
  detail::PeState& pe = detail::CpvChecked();
  const int n = detail::DeliverAvailable(pe, max_msgs);
  // The caller resumes having observed every handler the loop ran.
  detail::race::OnSchedulerReturn(pe);
  return n;
}

void* CmiGetSpecificMsg(int handler_id) {
  detail::PeState& pe = detail::CpvChecked();
  detail::FlushPendingMmi(pe);
  // First look through messages buffered by earlier calls (and by carrier
  // unpacking below).
  const auto take_held = [&pe, handler_id]() -> void* {
    for (auto it = pe.heldq.begin(); it != pe.heldq.end(); ++it) {
      if (CmiGetHandler(*it) == handler_id) {
        void* msg = *it;
        pe.heldq.erase(it);
        return msg;
      }
    }
    return nullptr;
  };
  void* msg = take_held();
  while (msg == nullptr) {
    void* net = detail::PopNet(pe);
    if (net == nullptr) {
      detail::WaitForNet(pe);
      continue;
    }
    if ((detail::Header(net)->flags & detail::kMsgFlagCarrierMask) != 0) {
      detail::CstUnpackToHeld(pe, net);
      msg = take_held();
      continue;
    }
    if (CmiGetHandler(net) == handler_id) {
      msg = net;
    } else {
      pe.heldq.push_back(net);  // buffer messages meant for other handlers
    }
  }
  detail::check::OnMmiReturn(msg);
  detail::race::OnMmiReturn(pe, msg);
  pe.pending_mmi = msg;
  pe.pending_mmi_grabbed = false;
  return msg;
}

void CmiGrabBuffer(void** pbuf) {
  detail::PeState& pe = detail::CpvChecked();
  void* buf = *pbuf;
  if (pe.pending_mmi == buf) {
    detail::check::OnGrab(buf, pe.pending_mmi_grabbed);
    pe.pending_mmi_grabbed = true;
    return;
  }
  for (auto it = pe.sysbuf_stack.rbegin(); it != pe.sysbuf_stack.rend();
       ++it) {
    if (it->msg == buf) {
      detail::check::OnGrab(buf, it->grabbed);
      it->grabbed = true;
      return;
    }
  }
  if (CciCheckEnabled()) detail::check::OnGrabMiss(buf);
  assert(false &&
         "CmiGrabBuffer: buffer is not a system-owned message being "
         "delivered on this PE");
}

// Without a latency model, broadcasts go down the machine spanning tree
// (CstTreeCast): the root sends one wrapper per tree child and interior PEs
// re-forward, so no single PE pays O(npes) sends.  With a model attached
// the flat per-destination loops below are kept — each copy must be priced
// (and delayed) individually.
void CmiSyncBroadcast(unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  if (detail::CstUseTree(pe)) {
    detail::CstTreeCast(pe, msg, size, /*include_self=*/false,
                        /*defer=*/false);
    return;
  }
  for (int i = 0; i < pe.npes; ++i) {
    if (i == pe.mype) continue;
    ++pe.stats.bcast_payload_copies;
    detail::SendOwnedFrom(pe, i, detail::CopyMessage(msg, size));
  }
}

void CmiSyncBroadcastAll(unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  if (detail::CstUseTree(pe)) {
    detail::CstTreeCast(pe, msg, size, /*include_self=*/true,
                        /*defer=*/false);
    return;
  }
  for (int i = 0; i < pe.npes; ++i) {
    ++pe.stats.bcast_payload_copies;
    detail::SendOwnedFrom(pe, i, detail::CopyMessage(msg, size));
  }
}

void CmiSyncBroadcastAllAndFree(unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  auto* h = detail::Header(msg);
  if (CciCheckEnabled() && h->magic != detail::kMsgMagicAlive) {
    detail::check::Violate(CciRule::kUseAfterFree, msg,
                           "CmiSyncBroadcastAllAndFree of a freed message "
                           "(header magic 0x%08x)", h->magic);
  }
  assert(h->magic == detail::kMsgMagicAlive);
  msg = detail::DetachSharedView(msg);
  h = detail::Header(msg);
  if (detail::CstUseTree(pe)) {
    // The tree cast reads `msg` into the wrapper; the original is then
    // delivered to self, honoring the and-free ownership transfer.
    detail::CstTreeCast(pe, msg, size, /*include_self=*/false,
                        /*defer=*/false);
    h->total_size = size;
    detail::SendOwnedFrom(pe, pe.mype, msg);
    return;
  }
  // Copies go to the other PEs; the original is delivered to self instead
  // of being copied once more and freed (npes allocations, not npes + 1).
  for (int i = 0; i < pe.npes; ++i) {
    if (i == pe.mype) continue;
    ++pe.stats.bcast_payload_copies;
    detail::SendOwnedFrom(pe, i, detail::CopyMessage(msg, size));
  }
  h->total_size = size;
  detail::SendOwnedFrom(pe, pe.mype, msg);
}

CommHandle CmiAsyncBroadcast(unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  if (detail::CstUseTree(pe)) {
    return CommHandle{detail::CstTreeCast(pe, msg, size,
                                          /*include_self=*/false,
                                          /*defer=*/true)};
  }
  CmiSyncBroadcast(size, msg);
  return CommHandle{nullptr};
}

CommHandle CmiAsyncBroadcastAll(unsigned int size, void* msg) {
  detail::PeState& pe = detail::CpvChecked();
  if (detail::CstUseTree(pe)) {
    return CommHandle{detail::CstTreeCast(pe, msg, size,
                                          /*include_self=*/true,
                                          /*defer=*/true)};
  }
  CmiSyncBroadcastAll(size, msg);
  return CommHandle{nullptr};
}

void CmiSyncSendImmediate(unsigned int dest_pe, unsigned int size,
                          void* msg) {
  detail::SendOwnedImmediate(static_cast<int>(dest_pe),
                             detail::CopyMessage(msg, size));
}

void CmiSyncSendImmediateAndFree(unsigned int dest_pe, unsigned int size,
                                 void* msg) {
  msg = detail::DetachSharedView(msg);
  detail::Header(msg)->total_size = size;
  detail::SendOwnedImmediate(static_cast<int>(dest_pe), msg);
}

int CmiProbeImmediates() {
  detail::PeState& pe = detail::CpvChecked();
  int delivered = 0;
  detail::SimCoordinator* sim = pe.machine->sim();
  for (;;) {
    void* msg = detail::LanePop(pe, pe.immlane, pe.imm_batchq);
    if (msg == nullptr) break;
    ++pe.stats.msgs_delivered;
    detail::race::OnWireDeliver(pe, msg, /*was_bcast=*/false,
                                /*immediate=*/true);
    if (sim != nullptr) sim->RecordDeliver(pe, msg);
    detail::DispatchMessage(msg, /*system_owned=*/true);
    ++delivered;
  }
  return delivered;
}

CmiStats CmiGetStats() {
  detail::PeState& pe = detail::CpvChecked();
  CmiStats s = pe.stats;
  // Node-level wire counters mirror onto every local PE's snapshot, like
  // the machine-wide reading of the agg/bcast counters in tests.  Absent
  // a transport (single-node machine) they stay exactly zero.
  if (detail::Transport* t = pe.machine->transport()) t->FoldStats(s);
  return s;
}

void ConverseBroadcastExit() {
  const int handler = detail::CoreState().exit_handler;
  void* msg = CmiAlloc(sizeof(detail::MsgHeader));
  CmiSetHandler(msg, handler);
  CmiSyncBroadcastAllAndFree(sizeof(detail::MsgHeader), msg);
}

}  // namespace converse
