// Strict parsing for CONVERSE_* environment variables.
//
// The historical readers were atoi-shaped: "CONVERSE_AGG=abc" silently
// became 0 (or, worse, "anything non-zero-ish means on"), so a typo in a
// job script changed machine behavior without a trace.  Every integer
// knob now goes through ParseEnvInt: a malformed value is *rejected* —
// the built-in default stays in force and a one-line "[Cmi]" diagnostic
// names the variable and the offending text.
#pragma once

#include <cstdio>

namespace converse::detail {

/// Parse `text` as a base-10 integer (optional sign, digits only, no
/// trailing garbage).  Returns true and fills *out on success.
bool ParseInt(const char* text, long long* out);

/// Read environment variable `name` as a strict integer.  Unset or empty
/// returns `fallback`.  A malformed value returns `fallback` and, when
/// `warn` is true, prints one "[Cmi]" diagnostic line to `err` (never
/// nullptr; pass the machine's error stream so tests can capture it).
long long GetEnvInt(const char* name, long long fallback, std::FILE* err,
                    bool warn);

}  // namespace converse::detail
