#include "converse/queueing.h"

#include <cassert>

#include "converse/check.h"

namespace converse {
namespace {

// Normalized view of a priority as a bit string: `words` MSB-first and the
// total number of significant bits.  The default priority is integer 0.
struct PrioView {
  const std::uint32_t* words;
  std::size_t nwords;
  int nbits;
};

constexpr std::uint32_t kDefaultWord = 0x80000000u;  // int 0, sign-biased

PrioView View(const CqsPrio& p) {
  static constexpr std::uint32_t kDefaultWords[1] = {kDefaultWord};
  if (p.words().empty()) return {kDefaultWords, 1, 32};
  const int nbits =
      p.nbits() > 0 ? p.nbits() : static_cast<int>(p.words().size()) * 32;
  return {p.words().data(), p.words().size(), nbits};
}

}  // namespace

CqsPrio CqsPrio::FromBitvec(const std::uint32_t* words, int nbits) {
  assert(nbits >= 0);
  CqsPrio out;
  out.nbits_ = nbits;
  const int nwords = (nbits + 31) / 32;
  out.words_.assign(words, words + nwords);
  // Mask the unused low bits of the final partial word so that comparisons
  // are well defined regardless of caller garbage.
  if (nbits % 32 != 0 && nwords > 0) {
    const std::uint32_t mask = ~((1u << (32 - nbits % 32)) - 1);
    out.words_.back() &= mask;
  }
  if (nwords == 0) {
    // Zero-length bit-vector: equivalent to the default priority but keep a
    // distinct representation rule: treat it as default.
    out.nbits_ = 0;
  }
  return out;
}

int CqsPrio::Compare(const CqsPrio& o) const {
  const PrioView a = View(*this);
  const PrioView b = View(o);
  // Compare the common prefix, bit-string-wise (words are MSB-first).
  const int common_bits = a.nbits < b.nbits ? a.nbits : b.nbits;
  const int common_full_words = common_bits / 32;
  for (int i = 0; i < common_full_words; ++i) {
    if (a.words[i] != b.words[i]) return a.words[i] < b.words[i] ? -1 : 1;
  }
  const int rem = common_bits % 32;
  if (rem != 0) {
    const std::uint32_t mask = ~((1u << (32 - rem)) - 1);
    const std::uint32_t aw = a.words[common_full_words] & mask;
    const std::uint32_t bw = b.words[common_full_words] & mask;
    if (aw != bw) return aw < bw ? -1 : 1;
  }
  // Equal on the common prefix: the shorter bit string compares smaller
  // (dequeues first); equal lengths are equal priorities.
  if (a.nbits != b.nbits) return a.nbits < b.nbits ? -1 : 1;
  return 0;
}

bool CqsPrio::IsDefault() const {
  if (words_.empty()) return true;
  return Compare(CqsPrio{}) == 0;
}

CqsQueue::~CqsQueue() {
  // The queue does not own message payloads in general, but at machine
  // teardown leftover messages would leak; the machine layer drains the
  // queue itself. Nothing to do here.
}

void CqsQueue::EnqueueZero(void* msg, bool lifo) {
  assert(msg != nullptr);
  detail::check::OnEnqueue(msg);
  ++seq_;  // keeps TotalEnqueued in step with the general path
  detail::Header(msg)->queueing =
      static_cast<std::uint8_t>(lifo ? Queueing::kLifo : Queueing::kFifo);
  if (lifo) {
    zeroq_.push_front(msg);
  } else {
    zeroq_.push_back(msg);
  }
}

void CqsQueue::EnqueueGeneral(void* msg, Queueing strategy, CqsPrio prio) {
  const bool lifo = strategy == Queueing::kLifo ||
                    strategy == Queueing::kIntLifo ||
                    strategy == Queueing::kBitvecLifo;
  if (strategy == Queueing::kFifo || strategy == Queueing::kLifo) {
    EnqueueZero(msg, lifo);
    return;
  }
  assert(msg != nullptr);
  detail::check::OnEnqueue(msg);
  const std::uint64_t s = seq_++;
  detail::Header(msg)->queueing = static_cast<std::uint8_t>(strategy);
  const bool before_default = prio.Compare(CqsPrio{}) < 0;
  // LIFO among equal priorities: invert the sequence order.  ~s preserves
  // uniqueness and reverses comparison direction.
  heap_.push(Entry{std::move(prio), lifo ? ~s : s, msg, before_default});
}

void* CqsQueue::Dequeue() {
  void* msg = nullptr;
  if (!heap_.empty() && heap_.top().before_default) {
    msg = heap_.top().msg;
    heap_.pop();
  } else if (!zeroq_.empty()) {
    msg = zeroq_.front();
    zeroq_.pop_front();
  } else if (!heap_.empty()) {
    msg = heap_.top().msg;
    heap_.pop();
  }
  if (msg != nullptr) detail::check::OnDequeue(msg);
  return msg;
}

}  // namespace converse
