// Cst — small-message aggregation frames and spanning-tree broadcast
// carriers.  Layout and ownership rules in stream.h; the user-facing story
// in converse/stream.h.
#include "core/stream.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "converse/check.h"
#include "converse/machine.h"
#include "converse/stream.h"
#include "converse/util/spantree.h"
#include "core/env.h"
#include "core/msg_pool.h"
#include "core/pe_state.h"
#include "core/transport/transport.h"
#include "race/race_internal.h"
#include "sim/sim_internal.h"

namespace converse::detail {
namespace {

// u32 size + u32 pad + u64 frame back-pointer; 16 bytes so that every
// entry's message image lands on MsgHeader's 16-byte alignment and can be
// dispatched in place as a view.
constexpr std::uint32_t kEntryHeaderBytes = 16;

std::uint32_t PadTo16(std::uint32_t n) { return (n + 15u) & ~15u; }

std::uint32_t EntryBytes(std::uint32_t size) {
  return kEntryHeaderBytes + PadTo16(size);
}

static_assert(sizeof(MsgHeader) % 16 == 0 && sizeof(CstFrameWire) % 16 == 0,
              "frame entries must stay 16-aligned");

char* FrameEntries(void* frame) {
  return static_cast<char*>(frame) + sizeof(MsgHeader) + sizeof(CstFrameWire);
}
const char* FrameEntries(const void* frame) {
  return static_cast<const char*>(frame) + sizeof(MsgHeader) +
         sizeof(CstFrameWire);
}

/// Walk a finalized frame's entries read-only: fn(image, size) per packed
/// message (sim fault weighting; delivery uses ForEachView).
template <typename Fn>
void ForEachEntry(const void* frame, Fn&& fn) {
  CstFrameWire wire;
  std::memcpy(&wire, static_cast<const char*>(frame) + sizeof(MsgHeader),
              sizeof(wire));
  const char* p = FrameEntries(frame);
  for (std::uint32_t i = 0; i < wire.count; ++i) {
    std::uint32_t size;
    std::memcpy(&size, p, sizeof(size));
    fn(p + kEntryHeaderBytes, size);
    p += EntryBytes(size);
  }
}

/// Turn a received frame's entries into refcounted in-place views and hand
/// each to fn, in packed order.  Ownership of the frame buffer passes to
/// the views collectively: the last CstFrameViewRelease frees it, so the
/// walk reads each entry's extent *before* handing out its view (the
/// frame may die inside fn on the final entry).
template <typename Fn>
void ForEachView(void* frame, Fn&& fn) {
  auto* wire = reinterpret_cast<CstFrameWire*>(static_cast<char*>(frame) +
                                               sizeof(MsgHeader));
  const std::uint32_t count = wire->count;
  if (count == 0) {  // flush never emits an empty frame; stay safe anyway
    CmiFree(frame);
    return;
  }
  __atomic_store_n(&wire->refs, count, __ATOMIC_RELAXED);
  char* p = FrameEntries(frame);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t size;
    std::memcpy(&size, p, sizeof(size));
    std::memcpy(p + 8, &frame, sizeof(frame));  // release back-pointer
    char* const next = p + EntryBytes(size);
    void* view = p + kEntryHeaderBytes;
    MsgHeader* h = reinterpret_cast<MsgHeader*>(view);
    // Clear kMsgFlagShared too: the packed image may be a byte copy of a
    // grabbed shared-broadcast view, and this view owns no block reference.
    h->flags = static_cast<std::uint8_t>(
        (h->flags & ~(kMsgFlagPooled | kMsgFlagShared)) | kMsgFlagInFrame);
    check::OnAlloc(view, size);  // views live in the checker like messages
    check::OnCopyReset(view);
    fn(view);
    p = next;
  }
}

int FindFrameIdx(CstPeState& st, int dest) {
  // Steady-state sends hit the same destination repeatedly (reserve then
  // commit, bursts to one peer); the hint makes those lookups O(1).
  const std::size_t hot = static_cast<std::size_t>(st.hot);
  if (hot < st.open.size() && st.open[hot].dest == dest) {
    return st.hot;
  }
  for (std::size_t i = 0; i < st.open.size(); ++i) {
    if (st.open[i].dest == dest) {
      st.hot = static_cast<int>(i);
      return st.hot;
    }
  }
  return -1;
}

/// Copy a `size`-byte message image into a fresh machine-owned buffer
/// (broadcast inner materialization and self-delivery).
void* CopyImage(const void* image, std::uint32_t size) {
  void* msg = CmiAlloc(size);
  std::memcpy(msg, image, size);
  Header(msg)->total_size = size;
  Header(msg)->magic = kMsgMagicAlive;
  MsgPoolRestampFlag(msg);
  check::OnCopyReset(msg);
  return msg;
}

/// Detach the frame at `idx`, finalize its wire header and push it to the
/// network as one machine message.  Returns 1 (frames flushed).
// Adaptive solo-flush bypass (see CstPeState::solo_streak): after this many
// consecutive single-entry flushes to a destination, sends to it skip the
// aggregation layer; after this many bypassed sends, aggregation is
// re-probed in case the traffic turned bursty again.
constexpr std::uint16_t kSoloStreakLimit = 2;
constexpr std::uint16_t kSoloRetryEvery = 64;

int FlushFrameAt(PeState& pe, std::size_t idx) {
  CstFrame f = std::move(pe.agg.open[idx]);
  pe.agg.open.erase(pe.agg.open.begin() + static_cast<long>(idx));
  if (!pe.agg.solo_streak.empty()) {
    std::uint16_t& streak =
        pe.agg.solo_streak[static_cast<std::size_t>(f.dest)];
    if (f.count == 1) {
      if (streak < kSoloStreakLimit) ++streak;
    } else {
      streak = 0;
    }
  }
  MsgHeader* h = Header(f.buf);
  h->total_size =
      static_cast<std::uint32_t>(sizeof(MsgHeader) + sizeof(CstFrameWire)) +
      f.used;
  CstFrameWire wire{f.count, 0, 0};
  std::memcpy(static_cast<char*>(f.buf) + sizeof(MsgHeader), &wire,
              sizeof(wire));
  ++pe.stats.agg_frames_sent;
  pe.stats.agg_msgs_batched += f.count;
  if (pe.hooks != nullptr && pe.hooks->on_agg_flush != nullptr) {
    pe.hooks->on_agg_flush(pe.hooks->ud, f.dest, f.count, f.used);
  }
  // The frame is detached before this send, so SendOwnedFrom's own
  // flush-open-frame choke point cannot recurse into it.
  SendOwnedFrom(pe, f.dest, f.buf);
  for (AsyncCompletion* c : f.waiters) CstCompleteOne(c);
  return 1;
}

/// Shared append bookkeeping after an image was written into dest's frame.
void CommitRaw(PeState& pe, int dest, std::uint32_t size,
               AsyncCompletion* waiter) {
  CstPeState& st = pe.agg;
  const int idx = FindFrameIdx(st, dest);
  assert(idx >= 0 && "commit without a matching reserve");
  CstFrame& f = st.open[static_cast<std::size_t>(idx)];
  f.used += EntryBytes(size);
  ++f.count;
  if (waiter != nullptr) {
    ++waiter->pending;
    f.waiters.push_back(waiter);
  }
  if (f.count >= st.frame_msgs || f.used >= st.frame_bytes) {
    FlushFrameAt(pe, static_cast<std::size_t>(idx));
  }
}

void NoteCarrierForward(PeState& pe, int child, std::uint32_t size) {
  ++pe.stats.bcast_forwards;
  if (pe.hooks != nullptr && pe.hooks->on_bcast_forward != nullptr) {
    pe.hooks->on_bcast_forward(pe.hooks->ud, child, size);
  }
}

/// Children of `pe.mype` in the tree that distributes a carrier rooted at
/// (global PE) `root`.  Single-node machines use the whole-machine
/// spanning tree — bit-identical to the pre-transport behavior.  On
/// multi-node machines carriers are forwarded by pointer/clone and so
/// never leave the node: each node runs a node-local tree (remote nodes
/// got one wire record each instead), rooted at the root PE when it is
/// in-node and at the node's first PE otherwise (where the node-cast
/// record was injected).
std::vector<int> CarrierKids(const PeState& pe, int root) {
  const Machine& m = *pe.machine;
  if (!m.multi_node()) {
    const util::SpanningTree tree(pe.npes, root,
                                  m.config().spantree_branching);
    return tree.Children(pe.mype);
  }
  const int first = m.NodeFirst(pe.node);
  const int size = m.NodeSize(pe.node);
  const int local_root =
      (root >= first && root < first + size) ? root - first : 0;
  const util::SpanningTree tree(size, local_root,
                                m.config().spantree_branching);
  std::vector<int> kids = tree.Children(pe.mype - first);
  for (int& k : kids) k += first;
  return kids;
}

/// Logical messages lost when the carrier bound for `dest_pe` (rooted at
/// `root`) is dropped: the destination's subtree in the same tree
/// CarrierKids forwards along.
std::uint64_t CarrierSubtreeWeight(const Machine& m, int dest_pe, int root) {
  if (!m.multi_node()) {
    const util::SpanningTree tree(m.npes(), root,
                                  m.config().spantree_branching);
    return static_cast<std::uint64_t>(tree.SubtreeSize(dest_pe));
  }
  const int node = m.NodeOf(dest_pe);
  const int first = m.NodeFirst(node);
  const int size = m.NodeSize(node);
  const int local_root =
      (root >= first && root < first + size) ? root - first : 0;
  const util::SpanningTree tree(size, local_root,
                                m.config().spantree_branching);
  return static_cast<std::uint64_t>(tree.SubtreeSize(dest_pe - first));
}

/// Wrap a logical message image into a spanning-tree broadcast carrier
/// rooted at the calling PE.  The inner image's identity (source_pe, seq)
/// is stamped here, once — every PE in the tree materializes the same
/// logical message.
void* MakeWrapper(PeState& pe, const void* msg, std::uint32_t size,
                  std::uint32_t seq) {
  void* w = CmiAlloc(sizeof(MsgHeader) + sizeof(CstBcastWire) + size);
  MsgHeader* wh = Header(w);
  wh->handler = kCstCarrierHandler;
  wh->flags = static_cast<std::uint8_t>(wh->flags | kMsgFlagBcast);
  CstBcastWire wire{pe.mype, size};
  std::memcpy(CmiMsgPayload(w), &wire, sizeof(wire));
  char* dst = static_cast<char*>(CmiMsgPayload(w)) + sizeof(wire);
  std::memcpy(dst, msg, size);
  ++pe.stats.bcast_payload_copies;
  MsgHeader ih;
  std::memcpy(&ih, msg, sizeof(ih));
  ih.total_size = size;
  ih.magic = kMsgMagicAlive;
  ih.source_pe = static_cast<std::uint16_t>(pe.mype);
  ih.seq = seq;
  ih.flags = static_cast<std::uint8_t>(ih.flags & ~kMsgFlagCarrierMask);
  std::memcpy(dst, &ih, sizeof(ih));
  return w;
}

/// Take ownership of a received wrapper: re-forward it to this PE's tree
/// children (cloning for all but the last), then return the materialized
/// inner message, owned by the caller.
void* OpenBcast(PeState& pe, void* wrapper) {
  check::OnReclaim(wrapper);  // machine layer consumes the in-flight buffer
  CstBcastWire wire;
  std::memcpy(&wire, CmiMsgPayload(wrapper), sizeof(wire));
  const char* inner_image =
      static_cast<const char*>(CmiMsgPayload(wrapper)) + sizeof(wire);
  void* inner = CopyImage(inner_image, wire.inner_size);
  ++pe.stats.bcast_payload_copies;
  const std::vector<int> kids = CarrierKids(pe, wire.root);
  const std::uint32_t wsize = Header(wrapper)->total_size;
  for (std::size_t i = 0; i + 1 < kids.size(); ++i) {
    NoteCarrierForward(pe, kids[i], wsize);
    SendOwnedFrom(pe, kids[i], CloneMessage(wrapper));
    ++pe.stats.bcast_payload_copies;
  }
  if (!kids.empty()) {
    NoteCarrierForward(pe, kids.back(), wsize);
    SendOwnedFrom(pe, kids.back(), wrapper);
  } else {
    CmiFree(wrapper);
  }
  return inner;
}

/// Deliver one materialized (owned) logical message; opens a wrapper that
/// rode inside a frame first.  Returns 1, or 0 when a scatter registration
/// consumed the message (matching the flat PopNet path).
int DeliverOne(PeState& pe, void* msg) {
  const bool was_bcast = (Header(msg)->flags & kMsgFlagBcast) != 0;
  if (was_bcast) {
    msg = OpenBcast(pe, msg);
  }
  if (TryScatter(pe, msg)) return 0;
  ++pe.stats.msgs_delivered;
  race::OnWireDeliver(pe, msg, was_bcast);
  SimCoordinator* sim = pe.machine->sim();
  if (sim != nullptr) sim->RecordDeliver(pe, msg);
  DispatchMessage(msg, /*system_owned=*/true);
  return 1;
}

char* SbcastEntry(void* block) {
  return static_cast<char*>(block) + sizeof(MsgHeader) +
         sizeof(CstSbcastWire);
}

CstSbcastWire* SbcastWire(void* block) {
  return reinterpret_cast<CstSbcastWire*>(static_cast<char*>(block) +
                                          sizeof(MsgHeader));
}

/// Take ownership of one reference on a received shared-broadcast block:
/// forward the same pointer to this PE's tree children (bumping the
/// refcount *before* the pushes, so a holder exists before its pointer
/// does), then return the embedded view — whose single reference the
/// caller now owns in place of the block reference it came in with.
void* OpenShared(PeState& pe, void* block) {
  CstSbcastWire* wire = SbcastWire(block);
  // root < 0 marks a pre-fanned block: the transport layer already pushed
  // one reference to every PE of this node (CstNodeCastExpand), so
  // receivers dispatch their view and never forward.
  if (wire->root >= 0 && pe.mype != wire->root) {
    const std::vector<int> kids = CarrierKids(pe, wire->root);
    if (!kids.empty()) {
      __atomic_add_fetch(&wire->refs,
                         static_cast<std::uint32_t>(kids.size()),
                         __ATOMIC_RELAXED);
      const std::uint32_t bsize = Header(block)->total_size;
      for (int kid : kids) {
        NoteCarrierForward(pe, kid, bsize);
        SendSharedBlockFrom(pe, kid, block);
      }
    }
  }
  ++pe.stats.bcast_shared_views;
  return SbcastEntry(block) + kEntryHeaderBytes;
}

/// Deliver a received shared-broadcast block (CstDeliverCarrier's
/// kMsgFlagSbcast arm): forward, then dispatch the view in place.
int DeliverShared(PeState& pe, void* block) {
  void* view = OpenShared(pe, block);
  if (TryScatter(pe, view)) return 0;
  ++pe.stats.msgs_delivered;
  race::OnWireDeliver(pe, view, /*was_bcast=*/true);
  SimCoordinator* sim = pe.machine->sim();
  if (sim != nullptr) sim->RecordDeliver(pe, view);
  DispatchMessage(view, /*system_owned=*/true);
  return 1;
}

/// Multi-node broadcast fan-out: one wire record per REMOTE node, each
/// carrying the same stamped logical image (identity rule of MakeWrapper's
/// inner image); the receiving node re-expands it locally
/// (CstNodeCastExpand).  No-op on single-node machines.
void CastToRemoteNodes(PeState& pe, const void* msg, std::uint32_t size,
                       std::uint32_t seq) {
  Machine& m = *pe.machine;
  if (!m.multi_node()) return;
  Transport* t = m.transport();
  assert(t != nullptr);
  void* image = CopyImage(msg, size);
  MsgHeader* ih = Header(image);
  ih->source_pe = static_cast<std::uint16_t>(pe.mype);
  ih->seq = seq;
  ih->flags = static_cast<std::uint8_t>(ih->flags & ~kMsgFlagCarrierMask);
  for (int n = 0; n < m.nnodes(); ++n) {
    if (n != pe.node) t->SendNodeCast(pe, n, image, size);
  }
  check::OnReclaim(image);
  CmiFree(image);
}

/// Broadcast `size` bytes of `msg` as one refcounted shared block: the
/// payload is copied exactly once (here, at the root); every destination —
/// the root included, when include_self — dispatches a read-only view into
/// the same allocation, and the spanning tree forwards the block by
/// pointer.  All sends complete before returning.  On multi-node machines
/// the block covers only the root's own node; remote nodes get one wire
/// record each and build their own block (or wrapper) on arrival.
void CstSharedCast(PeState& pe, const void* msg, std::uint32_t size,
                   bool include_self) {
  const std::uint32_t seq = static_cast<std::uint32_t>(pe.send_seq++);
  race::OnBcastRoot(pe, seq);
  CastToRemoteNodes(pe, msg, size, seq);
  // Logical accounting up front, as in CstTreeCast — plus the self
  // delivery, which on this path rides the block like every other one
  // (the wrapper path self-delivers through SendOwnedFrom instead).
  const int logical = pe.npes - 1 + (include_self ? 1 : 0);
  pe.stats.msgs_sent += static_cast<std::uint64_t>(logical);
  pe.qd_created += static_cast<std::uint64_t>(logical);
  if (pe.hooks != nullptr && pe.hooks->on_send != nullptr) {
    MsgHeader h;
    std::memcpy(&h, msg, sizeof(h));
    h.total_size = size;
    h.magic = kMsgMagicAlive;
    h.source_pe = static_cast<std::uint16_t>(pe.mype);
    h.seq = seq;
    for (int i = 0; i < pe.npes; ++i) {
      if (i != pe.mype || include_self) {
        pe.hooks->on_send(pe.hooks->ud, &h, i);
      }
    }
  }
  const std::vector<int> kids = CarrierKids(pe, pe.mype);
  assert((!kids.empty() || include_self || pe.machine->multi_node()) &&
         "shared cast with no receiver");
  if (kids.empty() && !include_self) {
    // Possible only on a multi-node machine whose local node has no other
    // PE: the remote records above were the whole broadcast.
    return;
  }
  const std::uint32_t total =
      static_cast<std::uint32_t>(sizeof(MsgHeader) + sizeof(CstSbcastWire)) +
      kEntryHeaderBytes + size;
  void* block = CmiAlloc(total);
  MsgHeader* bh = Header(block);
  bh->handler = kCstCarrierHandler;
  bh->flags = static_cast<std::uint8_t>(bh->flags | kMsgFlagSbcast);
  bh->source_pe = static_cast<std::uint16_t>(pe.mype);
  bh->seq = seq;
  char* entry = SbcastEntry(block);
  std::memcpy(entry, &size, sizeof(size));
  std::memset(entry + sizeof(size), 0, 4);
  // The back-pointer is stamped once, here: the block is forwarded by
  // pointer and never copied, so it stays valid on every PE.  (The sim's
  // trace hash covers sizes and header identity, not payload bytes, so the
  // absolute address does not perturb determinism.)
  std::memcpy(entry + 8, &block, sizeof(block));
  void* view = entry + kEntryHeaderBytes;
  std::memcpy(view, msg, size);  // the one payload copy of this broadcast
  ++pe.stats.bcast_payload_copies;
  ++pe.stats.bcast_shared_blocks;
  MsgHeader* vh = reinterpret_cast<MsgHeader*>(view);
  vh->total_size = size;
  vh->magic = kMsgMagicAlive;
  vh->source_pe = static_cast<std::uint16_t>(pe.mype);
  vh->seq = seq;
  // Clear the CciCheck state bits (0x3) along with any inherited pool or
  // carrier bits: the checker never tracks shared views, so their state
  // field must read "owned" forever.
  vh->flags = static_cast<std::uint8_t>(
      (vh->flags &
       ~(0x3u | kMsgFlagPooled | kMsgFlagCarrierMask | kMsgFlagShared)) |
      kMsgFlagInFrame | kMsgFlagShared);
  CstSbcastWire wire{pe.mype,
                     static_cast<std::uint32_t>(kids.size() +
                                                (include_self ? 1 : 0)),
                     size, 0};
  std::memcpy(static_cast<char*>(block) + sizeof(MsgHeader), &wire,
              sizeof(wire));
  for (int kid : kids) {
    NoteCarrierForward(pe, kid, total);
    SendSharedBlockFrom(pe, kid, block);
  }
  if (include_self) SendSharedBlockFrom(pe, pe.mype, block);
}

}  // namespace

void CstNodeCastExpand(Machine& m, PeState* src, int node, const void* image,
                       std::uint32_t size) {
  const int first = m.NodeFirst(node);
  const int nlocal = m.NodeSize(node);
  assert(m.IsLocalPe(first) &&
         "node-cast expansion runs in the process hosting the node");
  MsgHeader ih;
  std::memcpy(&ih, image, sizeof(ih));
  const int root = ih.source_pe;
  // The share threshold is identical on every PE (same resolved config);
  // written once at machine construction, so the comm-thread read is safe.
  const std::uint32_t share_min = m.Pe(first).agg.share_min;
  if (share_min != 0 && size >= share_min && nlocal > 1) {
    // Shared-payload fan-out within the node: ONE allocation, one copy off
    // the wire, `nlocal` views.  The block is pre-fanned — every PE gets
    // its reference right here — so the root field carries the -1 sentinel
    // telling OpenShared not to re-forward.
    const std::uint32_t total =
        static_cast<std::uint32_t>(sizeof(MsgHeader) +
                                   sizeof(CstSbcastWire)) +
        kEntryHeaderBytes + size;
    void* block = CmiAlloc(total);
    MsgHeader* bh = Header(block);
    bh->handler = kCstCarrierHandler;
    bh->flags = static_cast<std::uint8_t>(bh->flags | kMsgFlagSbcast);
    bh->source_pe = ih.source_pe;
    bh->seq = ih.seq;
    char* entry = SbcastEntry(block);
    std::memcpy(entry, &size, sizeof(size));
    std::memset(entry + sizeof(size), 0, 4);
    std::memcpy(entry + 8, &block, sizeof(block));
    void* view = entry + kEntryHeaderBytes;
    std::memcpy(view, image, size);
    MsgHeader* vh = reinterpret_cast<MsgHeader*>(view);
    vh->total_size = size;
    vh->magic = kMsgMagicAlive;
    vh->flags = static_cast<std::uint8_t>(
        (vh->flags &
         ~(0x3u | kMsgFlagPooled | kMsgFlagCarrierMask | kMsgFlagShared)) |
        kMsgFlagInFrame | kMsgFlagShared);
    CstSbcastWire wire{-1, static_cast<std::uint32_t>(nlocal), size, 0};
    std::memcpy(static_cast<char*>(block) + sizeof(MsgHeader), &wire,
                sizeof(wire));
    if (src != nullptr) {
      ++src->stats.bcast_payload_copies;
      ++src->stats.bcast_shared_blocks;
      for (int i = first; i < first + nlocal; ++i) {
        SendSharedBlockFrom(*src, i, block);
      }
    } else {
      for (int i = first; i < first + nlocal; ++i) {
        DeliverFromWire(m, i, block, /*immediate=*/false);
      }
    }
    return;
  }
  // Small payload: one wrapper injected at the node's first PE, which
  // fans out down the node-local spanning tree (CarrierKids roots a tree
  // whose root PE is remote at local index 0 — exactly where this lands).
  void* w = CmiAlloc(sizeof(MsgHeader) + sizeof(CstBcastWire) + size);
  MsgHeader* wh = Header(w);
  wh->handler = kCstCarrierHandler;
  wh->flags = static_cast<std::uint8_t>(wh->flags | kMsgFlagBcast);
  CstBcastWire bwire{root, size};
  std::memcpy(CmiMsgPayload(w), &bwire, sizeof(bwire));
  std::memcpy(static_cast<char*>(CmiMsgPayload(w)) + sizeof(bwire), image,
              size);
  if (src != nullptr) {
    ++src->stats.bcast_payload_copies;
    SendOwnedFromLocal(*src, first, w);
  } else {
    wh->source_pe = static_cast<std::uint16_t>(root);
    wh->seq = ih.seq;
    DeliverFromWire(m, first, w, /*immediate=*/false);
  }
}

void CstInitPe(PeState& pe) {
  const MachineConfig& cfg = pe.machine->config();
  CstPeState& st = pe.agg;
  // Shared-payload broadcast threshold.  Independent of the frame toggle,
  // but like the spanning tree it needs the plain (no latency model) path:
  // a model prices per-destination copies individually.
  // Strict env parsing: a malformed value keeps the default and prints one
  // "[Cmi]" diagnostic (first local PE only, so one line per process).
  const bool warn = pe.mype == pe.machine->pe_begin();
  std::int64_t share = cfg.bcast_share_min;
  if (share < 0) {
    share = GetEnvInt("CONVERSE_SBCAST", 4096, pe.machine->err(), warn);
    if (share < 0) share = 0;
  }
  if (share > 0xffffffffll) share = 0xffffffffll;
  st.share_min = (pe.npes > 1 && cfg.model == nullptr)
                     ? static_cast<std::uint32_t>(share)
                     : 0;
  int mode = cfg.aggregate_sends;
  if (mode < 0) {
    mode = GetEnvInt("CONVERSE_AGG", 0, pe.machine->err(), warn) != 0 ? 1 : 0;
  }
  // A latency model prices each message individually; frames would turn
  // per-message latencies into per-batch ones, so the layer stays off.
  st.enabled = mode != 0 && pe.npes > 1 && cfg.model == nullptr;
  if (!st.enabled) return;
  st.frame_bytes = cfg.agg_frame_bytes < 64 ? 64 : cfg.agg_frame_bytes;
  st.frame_msgs = cfg.agg_frame_msgs < 1 ? 1 : cfg.agg_frame_msgs;
  const std::uint32_t cap = st.frame_bytes - kEntryHeaderBytes;
  st.max_msg = cfg.agg_max_msg < cap ? cfg.agg_max_msg : cap;
  if (st.max_msg < sizeof(MsgHeader)) st.enabled = false;
  if (st.enabled && cfg.agg_solo_bypass) {
    st.solo_streak.assign(static_cast<std::size_t>(pe.npes), 0);
    st.solo_bypassed.assign(static_cast<std::size_t>(pe.npes), 0);
  }
}

bool CstWouldAggregate(const PeState& pe, int dest, std::uint32_t size) {
  return pe.agg.enabled && dest != pe.mype &&
         size >= sizeof(MsgHeader) && size <= pe.agg.max_msg;
}

void* CstReserveMsg(PeState& pe, int dest, std::uint32_t size) {
  if (!CstWouldAggregate(pe, dest, size)) return nullptr;
  CstPeState& st = pe.agg;
  int idx = FindFrameIdx(st, dest);
  if (idx >= 0 &&
      st.open[static_cast<std::size_t>(idx)].used + EntryBytes(size) >
          st.frame_bytes) {
    FlushFrameAt(pe, static_cast<std::size_t>(idx));
    idx = -1;
  }
  if (idx < 0 && !st.solo_streak.empty() &&
      st.solo_streak[static_cast<std::size_t>(dest)] >= kSoloStreakLimit) {
    // This destination's frames keep flushing with one entry — the shape
    // pays frame overhead for no batching.  Send directly; once in a while
    // let one message open a frame again to re-probe the traffic shape.
    std::uint16_t& bypassed =
        st.solo_bypassed[static_cast<std::size_t>(dest)];
    if (++bypassed >= kSoloRetryEvery) {
      bypassed = 0;
      st.solo_streak[static_cast<std::size_t>(dest)] = 0;
    } else {
      return nullptr;
    }
  }
  if (idx < 0) {
    void* buf = CmiAlloc(sizeof(MsgHeader) + sizeof(CstFrameWire) +
                         st.frame_bytes);
    MsgHeader* h = Header(buf);
    h->handler = kCstCarrierHandler;
    h->flags = static_cast<std::uint8_t>(h->flags | kMsgFlagFrame);
    st.open.push_back(CstFrame{});
    CstFrame& f = st.open.back();
    f.buf = buf;
    f.dest = dest;
    idx = static_cast<int>(st.open.size()) - 1;
  }
  CstFrame& f = st.open[static_cast<std::size_t>(idx)];
  char* entry = FrameEntries(f.buf) + f.used;
  std::memcpy(entry, &size, sizeof(size));
  if (pe.machine->sim() != nullptr) {
    // The pad and back-pointer fields are dead on the wire (the receiver
    // stamps the back-pointer at unpack); zero them only when the sim will
    // hash the frame bytes, so the event trace stays deterministic.
    std::memset(entry + sizeof(size), 0, kEntryHeaderBytes - sizeof(size));
  }
  return entry + kEntryHeaderBytes;
}

void CstCommitMsg(PeState& pe, int dest, void* image, std::uint32_t size,
                  AsyncCompletion* waiter) {
  // Stamp the packed copy's logical identity (the image is 16-aligned, so
  // direct header access is legal) and account for it as one ordinary send.
  MsgHeader* h = reinterpret_cast<MsgHeader*>(image);
  h->total_size = size;
  h->magic = kMsgMagicAlive;
  h->source_pe = static_cast<std::uint16_t>(pe.mype);
  h->seq = static_cast<std::uint32_t>(pe.send_seq++);
  if (pe.hooks != nullptr && pe.hooks->on_send != nullptr) {
    pe.hooks->on_send(pe.hooks->ud, h, dest);
  }
  ++pe.stats.msgs_sent;
  ++pe.qd_created;
  race::OnFrameAppend(pe, dest, image);
  CommitRaw(pe, dest, size, waiter);
}

bool CstTrySmallSend(PeState& pe, int dest, const void* msg,
                     std::uint32_t size, AsyncCompletion* waiter) {
  void* image = CstReserveMsg(pe, dest, size);
  if (image == nullptr) return false;
  std::memcpy(image, msg, size);
  CstCommitMsg(pe, dest, image, size, waiter);
  return true;
}

bool CstTryAppendCarrier(PeState& pe, int dest, const void* image,
                         std::uint32_t size, AsyncCompletion* waiter) {
  void* spot = CstReserveMsg(pe, dest, size);
  if (spot == nullptr) return false;
  std::memcpy(spot, image, size);
  // The carrier wrapper keeps its own (broadcast) identity; the append
  // still joins the sender's clock into the frame's carried clock.
  race::OnFrameAppend(pe, dest, nullptr);
  CommitRaw(pe, dest, size, waiter);
  return true;
}

int CstFlushDest(PeState& pe, int dest) {
  const int idx = FindFrameIdx(pe.agg, dest);
  if (idx < 0) return 0;
  return FlushFrameAt(pe, static_cast<std::size_t>(idx));
}

int CstFlushAll(PeState& pe) {
  int n = 0;
  while (!pe.agg.open.empty()) n += FlushFrameAt(pe, 0);
  return n;
}

bool CstHasAnyOpen(const PeState& pe) { return !pe.agg.open.empty(); }

int CstDeliverCarrier(PeState& pe, void* carrier) {
  const std::uint8_t flags = Header(carrier)->flags;
  if ((flags & kMsgFlagSbcast) != 0) {
    return DeliverShared(pe, carrier);
  }
  if ((flags & kMsgFlagBcast) != 0) {
    return DeliverOne(pe, carrier);
  }
  check::OnReclaim(carrier);
  int delivered = 0;
  // Entries dispatch in place as views; the frame dies with its last view.
  ForEachView(carrier, [&](void* view) { delivered += DeliverOne(pe, view); });
  return delivered;
}

void CstUnpackToHeld(PeState& pe, void* carrier) {
  if ((Header(carrier)->flags & kMsgFlagSbcast) != 0) {
    // Tree forwarding happens now; the view waits in heldq like any other
    // unpacked logical message.
    void* view = OpenShared(pe, carrier);
    if (!TryScatter(pe, view)) pe.heldq.push_back(view);
    return;
  }
  const auto hold = [&pe](void* msg) {
    if ((Header(msg)->flags & kMsgFlagBcast) != 0) msg = OpenBcast(pe, msg);
    if (!TryScatter(pe, msg)) pe.heldq.push_back(msg);
  };
  if ((Header(carrier)->flags & kMsgFlagBcast) != 0) {
    hold(carrier);
    return;
  }
  check::OnReclaim(carrier);
  ForEachView(carrier, hold);
}

void CstFrameViewRelease(void* view) {
  // The entry header in front of the view holds the frame back-pointer
  // (stamped at unpack time; see ForEachView).
  void* frame;
  std::memcpy(&frame, static_cast<char*>(view) - 8, sizeof(frame));
  auto* wire = reinterpret_cast<CstFrameWire*>(static_cast<char*>(frame) +
                                               sizeof(MsgHeader));
  // A grabbed view can be re-sent and freed on another PE, so the release
  // must be atomic; the acquire/release pair orders every view's payload
  // writes before the frame buffer returns to its pool.
  if (__atomic_sub_fetch(&wire->refs, 1, __ATOMIC_ACQ_REL) == 0) {
    CmiFree(frame);
  }
}

void CstSbcastViewRelease(void* view) {
  // The entry header in front of the view carries the block back-pointer,
  // stamped once at the root (the block is never copied).
  void* block;
  std::memcpy(&block, static_cast<char*>(view) - 8, sizeof(block));
  CstSbcastBlockRelease(block);
}

void CstSbcastBlockRelease(void* block) {
  CstSbcastWire* wire = SbcastWire(block);
  // The acquire/release pair orders every PE's reads of the shared payload
  // before the block's storage is reused.
  if (__atomic_sub_fetch(&wire->refs, 1, __ATOMIC_ACQ_REL) == 0) {
    // Last holder: drop the routing flag so the block dies like an
    // ordinary message — CciCheck sees the OnFree matching the root's
    // OnAlloc, and the storage goes back to its pool.
    Header(block)->flags = static_cast<std::uint8_t>(Header(block)->flags &
                                                     ~kMsgFlagSbcast);
    CmiFree(block);
  }
}

bool CstWouldShareBcast(const PeState& pe, std::uint32_t size) {
  return pe.agg.share_min != 0 && size >= pe.agg.share_min &&
         CstUseTree(pe);
}

bool CstUseTree(const PeState& pe) {
  return pe.npes > 1 && !pe.machine->has_model();
}

AsyncCompletion* CstTreeCast(PeState& pe, const void* msg, std::uint32_t size,
                             bool include_self, bool defer) {
  assert(size >= sizeof(MsgHeader));
  if (CstWouldShareBcast(pe, size)) {
    // Zero-copy path: one refcounted payload block, N views.  Every push
    // completes before the call returns, so the deferred (async) variants
    // get a born-done handle.
    CstSharedCast(pe, msg, size, include_self);
    return nullptr;
  }
  const std::uint32_t seq = static_cast<std::uint32_t>(pe.send_seq++);
  race::OnBcastRoot(pe, seq);
  // Logical accounting up front: the root sends one message to every other
  // PE, whatever the physical fan-out below turns out to be.
  const int remote = pe.npes - 1;
  pe.stats.msgs_sent += static_cast<std::uint64_t>(remote);
  pe.qd_created += static_cast<std::uint64_t>(remote);
  if (pe.hooks != nullptr && pe.hooks->on_send != nullptr) {
    MsgHeader h;
    std::memcpy(&h, msg, sizeof(h));
    h.total_size = size;
    h.magic = kMsgMagicAlive;
    h.source_pe = static_cast<std::uint16_t>(pe.mype);
    h.seq = seq;
    for (int i = 0; i < pe.npes; ++i) {
      if (i != pe.mype) pe.hooks->on_send(pe.hooks->ud, &h, i);
    }
  }
  CastToRemoteNodes(pe, msg, size, seq);
  const std::vector<int> kids = CarrierKids(pe, pe.mype);
  AsyncCompletion* completion = nullptr;
  if (!kids.empty()) {
    void* w = MakeWrapper(pe, msg, size, seq);
    const std::uint32_t wsize = Header(w)->total_size;
    if (defer) {
      // Async variant: small wrappers ride the aggregation frames, sharing
      // one completion; flushing (or idling) finishes the operation.
      auto* c = new AsyncCompletion{0, false};
      for (int kid : kids) {
        NoteCarrierForward(pe, kid, wsize);
        if (CstTryAppendCarrier(pe, kid, w, wsize, c)) {
          ++pe.stats.bcast_payload_copies;  // packed copy into the frame
        } else {
          SendOwnedFrom(pe, kid, CloneMessage(w));
          ++pe.stats.bcast_payload_copies;
        }
      }
      CmiFree(w);
      if (c->pending == 0) {
        delete c;
      } else {
        completion = c;
      }
    } else {
      for (std::size_t i = 0; i + 1 < kids.size(); ++i) {
        NoteCarrierForward(pe, kids[i], wsize);
        SendOwnedFrom(pe, kids[i], CloneMessage(w));
        ++pe.stats.bcast_payload_copies;
      }
      NoteCarrierForward(pe, kids.back(), wsize);
      SendOwnedFrom(pe, kids.back(), w);
    }
  }
  if (include_self) {
    SendOwnedFrom(pe, pe.mype, CopyImage(msg, size));
    ++pe.stats.bcast_payload_copies;
  }
  return completion;
}

std::uint64_t CstMessageWeight(const Machine& m, int dest_pe,
                               const void* msg) {
  const std::uint8_t flags = Header(msg)->flags;
  if ((flags & kMsgFlagSbcast) != 0) {
    // Dropping a shared block bound for dest_pe loses that PE's view and
    // everything it would have forwarded below it — same weighting rule
    // as a broadcast wrapper.  A pre-fanned block (root < 0) is never
    // re-forwarded, so exactly one view is lost.
    CstSbcastWire wire;
    std::memcpy(&wire, CmiMsgPayload(msg), sizeof(wire));
    if (wire.root < 0) return 1;
    return CarrierSubtreeWeight(m, dest_pe, wire.root);
  }
  if ((flags & kMsgFlagBcast) != 0) {
    CstBcastWire wire;
    std::memcpy(&wire, CmiMsgPayload(msg), sizeof(wire));
    return CarrierSubtreeWeight(m, dest_pe, wire.root);
  }
  if ((flags & kMsgFlagFrame) != 0) {
    std::uint64_t w = 0;
    ForEachEntry(msg, [&](const char* image, std::uint32_t size) {
      (void)size;
      MsgHeader h;
      std::memcpy(&h, image, sizeof(h));
      if ((h.flags & kMsgFlagBcast) != 0) {
        CstBcastWire wire;
        std::memcpy(&wire, image + sizeof(MsgHeader), sizeof(wire));
        w += CarrierSubtreeWeight(m, dest_pe, wire.root);
      } else {
        w += 1;
      }
    });
    return w;
  }
  return 1;
}

void CstDrain(PeState& pe) {
  for (CstFrame& f : pe.agg.open) {
    // Open frames were never handed to the machine layer (still owned), so
    // a plain free is legal; their waiters complete vacuously.
    CmiFree(f.buf);
    for (AsyncCompletion* c : f.waiters) CstCompleteOne(c);
  }
  pe.agg.open.clear();
}

}  // namespace converse::detail

namespace converse {

int CmiFlush() { return detail::CstFlushAll(detail::CpvChecked()); }

bool CmiAggActive() { return detail::CpvChecked().agg.enabled; }

}  // namespace converse
