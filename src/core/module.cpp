#include "converse/detail/module.h"

#include <cassert>
#include <mutex>
#include <vector>

#include "core/pe_state.h"

namespace converse::detail {
namespace {

struct ModuleInfo {
  const char* name;
  std::function<void(int)> pe_init;
  std::function<void(void*)> pe_fini;
};

// Append-only registry.  Registration happens during static initialization
// or from a single thread before any machine runs; the mutex guards against
// a module being first-referenced between two machine runs while tools
// threads exist.
std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::vector<ModuleInfo>& Registry() {
  static std::vector<ModuleInfo> v;
  return v;
}

}  // namespace

int RegisterModule(const char* name, std::function<void(int)> pe_init,
                   std::function<void(void*)> pe_fini) {
  std::scoped_lock lk(RegistryMu());
  auto& reg = Registry();
  reg.push_back(ModuleInfo{name, std::move(pe_init), std::move(pe_fini)});
  return static_cast<int>(reg.size()) - 1;
}

int NumModules() {
  std::scoped_lock lk(RegistryMu());
  return static_cast<int>(Registry().size());
}

void* ModuleState(int module_id) {
  PeState& pe = CpvChecked();
  assert(module_id >= 0 &&
         module_id < static_cast<int>(pe.module_state.size()) &&
         "module used before machine start registered it");
  return pe.module_state[static_cast<std::size_t>(module_id)];
}

void SetModuleState(int module_id, void* state) {
  PeState& pe = CpvChecked();
  assert(module_id >= 0 &&
         module_id < static_cast<int>(pe.module_state.size()));
  pe.module_state[static_cast<std::size_t>(module_id)] = state;
}

void RunPeInitHooks() {
  PeState& pe = CpvChecked();
  // Snapshot the count once: modules registered after machine start would
  // have inconsistent handler indices across PEs, so they are deliberately
  // not initialized for this machine.
  std::size_t n;
  {
    std::scoped_lock lk(RegistryMu());
    n = Registry().size();
  }
  pe.module_state.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    Registry()[i].pe_init(static_cast<int>(i));
  }
}

void RunPeFiniHooks() {
  PeState& pe = CpvChecked();
  for (std::size_t i = pe.module_state.size(); i-- > 0;) {
    if (pe.module_state[i] != nullptr) {
      Registry()[i].pe_fini(pe.module_state[i]);
      pe.module_state[i] = nullptr;
    }
  }
}

}  // namespace converse::detail
