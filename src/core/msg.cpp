#include "converse/msg.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "converse/check.h"
#include "converse/handlers.h"
#include "core/msg_pool.h"
#include "core/stream.h"
#include "race/race_internal.h"

namespace converse {

void* CmiAlloc(std::size_t nbytes) {
  assert(nbytes >= sizeof(detail::MsgHeader) &&
         "CmiAlloc size must include CmiMsgHeaderSizeBytes()");
  void* msg = detail::MsgPoolAlloc(nbytes);
  auto* h = detail::Header(msg);
  h->handler = 0xffffffffu;  // invalid until CmiSetHandler
  h->total_size = static_cast<std::uint32_t>(nbytes);
  h->int_prio = 0;
  h->source_pe = 0;
  h->queueing = static_cast<std::uint8_t>(Queueing::kFifo);
  h->flags = detail::MsgPoolIsPooled(msg)
                 ? static_cast<std::uint8_t>(detail::kMsgFlagPooled)
                 : static_cast<std::uint8_t>(detail::kMsgFlagNone);
  h->magic = detail::kMsgMagicAlive;
  h->seq = 0;
  h->reserved = 0;
  detail::check::OnAlloc(msg, nbytes);
  detail::race::OnAllocMsg(msg, nbytes);
  return msg;
}

void CmiFree(void* msg) {
  if (msg == nullptr) return;
  {
    const std::uint8_t flags = detail::Header(msg)->flags;
    if ((flags & detail::kMsgFlagShared) != 0) {
      // A view embedded in a shared-broadcast block: the same pointer is
      // live on several PEs at once, so ownership diagnostics and magic
      // flips would race — resolve the block and release one reference.
      detail::CstSbcastViewRelease(msg);
      return;
    }
    if ((flags & detail::kMsgFlagSbcast) != 0) {
      // The block itself (a lane entry, sim hold, or fault-drop reclaim):
      // every holder of the pointer accounts for exactly one reference.
      detail::CstSbcastBlockRelease(msg);
      return;
    }
  }
  detail::check::OnFree(msg);
  detail::race::OnFreeMsg(msg);
  auto* h = detail::Header(msg);
  assert(h->magic == detail::kMsgMagicAlive && "CmiFree: not a live message");
  h->magic = detail::kMsgMagicFreed;
  if ((h->flags & detail::kMsgFlagInFrame) != 0) {
    // A view into a received aggregation frame: there is no standalone
    // allocation to return, only the frame's reference count to release.
    detail::CstFrameViewRelease(msg);
    return;
  }
  detail::MsgPoolFree(msg);
}

void CmiInitMsgHeader(void* msg, std::size_t nbytes) {
  assert(msg != nullptr);
  assert(nbytes >= sizeof(detail::MsgHeader) &&
         "CmiInitMsgHeader size must include CmiMsgHeaderSizeBytes()");
  assert(reinterpret_cast<std::uintptr_t>(msg) % alignof(detail::MsgHeader) ==
             0 &&
         "CmiInitMsgHeader buffer must be MsgHeader-aligned");
  auto* h = detail::Header(msg);
  h->handler = 0xffffffffu;  // invalid until CmiSetHandler
  h->total_size = static_cast<std::uint32_t>(nbytes);
  h->int_prio = 0;
  h->source_pe = 0;
  h->queueing = static_cast<std::uint8_t>(Queueing::kFifo);
  h->flags = static_cast<std::uint8_t>(detail::kMsgFlagNone);
  h->magic = detail::kMsgMagicAlive;
  h->seq = 0;
  h->reserved = 0;
}

void* CmiMakeMessage(int handler, const void* payload,
                     std::size_t payload_len) {
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + payload_len);
  CmiSetHandler(msg, handler);
  if (payload != nullptr && payload_len > 0) {
    std::memcpy(CmiMsgPayload(msg), payload, payload_len);
  }
  return msg;
}

bool CmiMsgIsValid(const void* msg) {
  return msg != nullptr &&
         detail::Header(msg)->magic == detail::kMsgMagicAlive;
}

}  // namespace converse
