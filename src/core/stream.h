// Cst internals — per-destination aggregation frames and spanning-tree
// broadcast carriers (public story in converse/stream.h).
//
// Wire formats (all offsets within the carrier's payload area):
//
//   frame   [ MsgHeader | CstFrameWire | entry ... ]       kMsgFlagFrame
//   entry   [ u32 size | u32 pad | u64 frame back-pointer
//             | size-byte message image | pad to 16 ]
//   wrapper [ MsgHeader | CstBcastWire | inner message image ]
//                                                          kMsgFlagBcast
//
// Every in-frame message image is 16-byte aligned (MsgHeader's natural
// alignment), so receivers dispatch entries *in place*: each image becomes
// a refcounted view (kMsgFlagInFrame) whose CmiFree decrements the frame's
// CstFrameWire::refs, and the last release frees the frame buffer itself.
// The receiver never copies or allocates per small message — that is the
// whole throughput story of the layer.  The entry's back-pointer field is
// dead on the wire (zero, sender-side) and stamped by the receiver just
// before the view is handed out.
// A wrapper's inner image carries the logical identity (handler,
// source_pe, seq) stamped once at the broadcast root; the carrier's own
// header belongs to the machine layer and is restamped on every hop.
//
// Carriers are never dispatched through the handler table: the delivery
// paths (DeliverAvailable, CmiGetMsg, CmiGetSpecificMsg) intercept
// kMsgFlagCarrierMask and unpack.  Logical accounting (CmiStats.msgs_sent,
// the on_send trace hook, qd_created) happens per logical message at
// append/broadcast time; carrier sends themselves are invisible to those
// counters and visible only through agg_frames_sent / bcast_forwards.
#pragma once

#include <cstdint>
#include <vector>

#include "converse/msg.h"

namespace converse::detail {

class Machine;
struct PeState;

/// Completion state shared by a CommHandle and the operations it covers
/// (deferred frame appends, gptr round trips).  Touched only by the owning
/// PE's thread.
struct AsyncCompletion {
  int pending = 0;       // operations not yet complete; 0 = done
  bool released = false; // CmiReleaseCommHandle ran before completion
};

/// Mark one covered operation complete; frees the record if the handle was
/// already released and this was the last one.
inline void CstCompleteOne(AsyncCompletion* c) {
  if (--c->pending == 0 && c->released) delete c;
}

struct CstFrameWire {
  std::uint32_t count;  // packed entries
  /// Receiver-side live-view count.  Zero on the wire; set to `count` when
  /// the frame is unpacked, decremented (atomically: a grabbed view can be
  /// re-sent and freed on another PE) by CstFrameViewRelease.
  std::uint32_t refs;
  std::uint64_t pad;  // keeps entries (and so every image) 16-aligned
};
static_assert(sizeof(CstFrameWire) == 16);

struct CstBcastWire {
  std::int32_t root;          // PE the spanning tree is rooted at
  std::uint32_t inner_size;   // bytes of the inner message image
};

/// Descriptor of a shared-payload broadcast block (kMsgFlagSbcast):
///
///   block  [ MsgHeader | CstSbcastWire | entry header | view image ]
///
/// The single view image sits behind a standard frame entry header (u32
/// size | u32 pad | u64 back-pointer), so CstFrameViewRelease-style
/// back-pointer resolution works unchanged; the back-pointer is stamped
/// once at the root (the block is never copied, so it stays valid).  Every
/// holder of the block pointer — a delivery-lane entry, a sim hold, a
/// fault-drop reclaim, teardown — owns exactly one reference; the view on
/// each PE owns one more.  The last release frees the block storage.
struct CstSbcastWire {
  std::int32_t root;         // PE the spanning tree is rooted at
  std::uint32_t refs;        // live references (atomic access only)
  std::uint32_t inner_size;  // bytes of the embedded view image
  std::uint32_t pad;         // keeps the entry header 16-aligned
};
static_assert(sizeof(CstSbcastWire) == 16);

/// Handler id stamped on carriers.  Never dispatched (the delivery paths
/// intercept on flags first); distinct from CmiAlloc's 0xffffffff "never
/// set" marker so SendOwnedFrom's no-handler assert stays meaningful.
inline constexpr std::uint32_t kCstCarrierHandler = 0xfffffffeu;

/// One open per-destination aggregation frame.
struct CstFrame {
  void* buf = nullptr;     // the frame message (kMsgFlagFrame)
  std::uint32_t used = 0;  // bytes of packed entries so far
  std::uint32_t count = 0; // entries so far
  int dest = -1;
  std::vector<AsyncCompletion*> waiters;  // resolved at flush
};

/// Per-PE aggregation state (PeState::agg).
struct CstPeState {
  bool enabled = false;
  std::uint32_t max_msg = 0;      // largest aggregable message (effective)
  std::uint32_t frame_bytes = 0;  // entry-area capacity per frame
  std::uint32_t frame_msgs = 0;
  std::vector<CstFrame> open;     // flush order == open order (deterministic)
  int hot = 0;  // index hint: the frame the last lookup landed on
  /// Shared-payload broadcast threshold (bytes, header included); 0 = off.
  /// Resolved from MachineConfig::bcast_share_min / CONVERSE_SBCAST and
  /// meaningful even when frame aggregation itself is disabled.
  std::uint32_t share_min = 0;
  /// Adaptive solo-flush bypass: per destination, the streak of frames
  /// that flushed with a single entry (a request/response shape that pays
  /// frame overhead for no batching) and, once bypassing, the count of
  /// direct sends since — the layer re-probes aggregation periodically.
  std::vector<std::uint16_t> solo_streak;
  std::vector<std::uint16_t> solo_bypassed;
};

/// Resolve the aggregation config (MachineConfig + CONVERSE_AGG) for one
/// PE; called from the Machine constructor.
void CstInitPe(PeState& pe);

/// True when a `size`-byte message to `dest` would go through the
/// aggregation layer (enabled, remote, within agg_max_msg).
bool CstWouldAggregate(const PeState& pe, int dest, std::uint32_t size);

/// Append `size` bytes of `msg` (a complete message image) into dest's
/// frame as one logical send: stamps source/seq into the packed copy,
/// fires the on_send hook, bumps msgs_sent/qd_created, may flush a full
/// frame.  Returns false (no side effects) when the message is not
/// eligible: layer disabled, self-send, or size > max_msg.  `waiter`, if
/// non-null, gains one pending count resolved when the frame flushes.
bool CstTrySmallSend(PeState& pe, int dest, const void* msg,
                     std::uint32_t size, AsyncCompletion* waiter);

/// Gather variant: reserve an entry for a `size`-byte message image in
/// dest's frame and return the image area to write into (nullptr when not
/// eligible, same rules as CstTrySmallSend).  The caller must fill all
/// `size` bytes (header first) and then call CstCommitMsg; no flush can
/// happen in between.
void* CstReserveMsg(PeState& pe, int dest, std::uint32_t size);
void CstCommitMsg(PeState& pe, int dest, void* image, std::uint32_t size,
                  AsyncCompletion* waiter);

/// Append a carrier image (broadcast wrapper) without logical accounting.
bool CstTryAppendCarrier(PeState& pe, int dest, const void* image,
                         std::uint32_t size, AsyncCompletion* waiter);

/// Flush the open frame for `dest` (if any); returns frames flushed (0/1).
int CstFlushDest(PeState& pe, int dest);

/// Flush every open frame, in open order; returns frames flushed.
int CstFlushAll(PeState& pe);

bool CstHasAnyOpen(const PeState& pe);

/// Deliver a received carrier: frames dispatch every packed message (tree
/// wrappers packed inside are forwarded and opened), wrappers forward to
/// the tree children and dispatch the inner.  Takes ownership.  Returns
/// the number of logical messages dispatched (scatter-consumed entries are
/// not counted, matching the flat path).
int CstDeliverCarrier(PeState& pe, void* carrier);

/// Like CstDeliverCarrier but the logical messages are placed onto
/// pe.heldq (in order) instead of dispatched — for CmiGetMsg /
/// CmiGetSpecificMsg.  Wrapper forwarding still happens immediately.
void CstUnpackToHeld(PeState& pe, void* carrier);

/// Release one view's reference on its frame (CmiFree's kMsgFlagInFrame
/// path); frees the frame buffer when this was the last live view.  Safe
/// from any thread.
void CstFrameViewRelease(void* view);

/// Release the reference a shared-broadcast view (kMsgFlagShared) holds on
/// its block, resolved through the view's back-pointer.  Safe from any
/// thread.
void CstSbcastViewRelease(void* view);

/// Release one holder reference on a shared-broadcast block itself
/// (CmiFree's kMsgFlagSbcast path: lane entries at teardown, sim drop
/// reclaims, sim holds).  Safe from any thread.
void CstSbcastBlockRelease(void* block);

/// True when a `size`-byte broadcast (header included) takes the
/// shared-payload path on this PE.
bool CstWouldShareBcast(const PeState& pe, std::uint32_t size);

/// True when broadcasts go down the spanning tree (more than one PE, no
/// latency model).  Independent of the aggregation toggle.
bool CstUseTree(const PeState& pe);

/// Spanning-tree broadcast of the `size`-byte message image `msg`
/// (caller-owned, only read) to every other PE, with full logical
/// accounting at the root; `include_self` adds a self-delivery.  With
/// `defer`, small wrappers are appended into the children's aggregation
/// frames and the returned completion (nullptr when everything went out
/// immediately) resolves once those frames flush.
AsyncCompletion* CstTreeCast(PeState& pe, const void* msg, std::uint32_t size,
                             bool include_self, bool defer);

/// Receiving-side fan-out of a node-cast record: rebuild the broadcast
/// for the PEs of `node` from the stamped message image that crossed the
/// wire — a pre-fanned shared block (root = -1 sentinel, one reference
/// per PE) when the image is at or past the node's share threshold, else
/// a wrapper injected at the node's first PE that walks the node-local
/// spanning tree.  `src` is the sending PE for loopback mode (pushes go
/// through the normal send paths so the sim sees them); nullptr in real
/// mode (the comm thread pushes straight onto delivery lanes via
/// DeliverFromWire).
void CstNodeCastExpand(Machine& m, PeState* src, int node, const void* image,
                       std::uint32_t size);

/// Logical-message weight of a wire message for the sim's fault
/// accounting: 1 for a plain message, the destination's subtree size for a
/// broadcast wrapper, the sum of entry weights for a frame.
std::uint64_t CstMessageWeight(const Machine& m, int dest_pe,
                               const void* msg);

/// Teardown: reclaim open frame buffers and resolve their waiters.
void CstDrain(PeState& pe);

}  // namespace converse::detail
