// The unified scheduler (paper §3.1.2, Figure 3).
//
// Loop shape follows the paper's pseudo code: deliver everything available
// from the machine layer first (timely processing of network messages),
// then dequeue exactly one message from the prioritized scheduler queue and
// deliver it to its handler; repeat.  When there is nothing to do the loop
// blocks on the PE's network condvar instead of spinning.
#include "converse/csd.h"

#include <cassert>

#include "converse/check.h"
#include "core/pe_state.h"
#include "race/race_internal.h"

namespace converse {
namespace {

using detail::CpvChecked;
using detail::PeState;

void NoteEnqueue(PeState& pe, void* msg) {
  ++pe.stats.msgs_enqueued;
  ++pe.qd_created;
  detail::race::OnLocalEnqueue(pe, msg);
  if (pe.hooks != nullptr && pe.hooks->on_enqueue != nullptr) {
    pe.hooks->on_enqueue(pe.hooks->ud, detail::Header(msg));
  }
  // When CciCheck is on, the queue's OnEnqueue hook diagnoses this with a
  // proper rule name; the assert only backs up checker-less debug builds.
  assert((CciCheckEnabled() || pe.sysbuf_stack.empty() ||
          pe.sysbuf_stack.back().msg != msg ||
          pe.sysbuf_stack.back().grabbed) &&
         "CsdEnqueue on an ungrabbed system buffer; call CmiGrabBuffer "
         "first (paper buffer-ownership protocol)");
}

/// Run every registered idle hook; true when any hook reported that it may
/// have produced new work (so the caller should re-poll before blocking).
bool RunIdleHooks(PeState& pe) {
  bool again = false;
  for (const PeState::IdleHook& h : pe.idle_hooks) {
    if (h.fn(h.ud)) again = true;
  }
  return again;
}

/// Dispatch one scheduler-queue message if present. Returns true if one ran.
bool RunOneFromQueue(PeState& pe) {
  void* msg = pe.schedq.Dequeue();
  if (msg == nullptr) return false;
  ++pe.stats.msgs_scheduled;
  detail::DispatchMessage(msg, /*system_owned=*/false);
  // Under the sim backend, every scheduler-queue dispatch is a potential
  // preemption point, matching the network-delivery boundaries.
  detail::SimYieldHere();
  return true;
}

}  // namespace

void CsdScheduler(int number_of_messages) {
  PeState& pe = CpvChecked();
  ++pe.sched_depth;
  int delivered = 0;
  const bool bounded = number_of_messages >= 0;
  for (;;) {
    if (pe.exit_requested) {
      pe.exit_requested = false;
      break;
    }
    if (bounded && delivered >= number_of_messages) break;

    const int budget = bounded ? number_of_messages - delivered : -1;
    const int got = detail::DeliverAvailable(pe, budget);
    delivered += got;
    if (pe.exit_requested || (bounded && delivered >= number_of_messages)) {
      continue;  // re-check at loop top
    }

    if (RunOneFromQueue(pe)) {
      ++delivered;
      continue;
    }
    if (got > 0) continue;

    // Nothing from the network, nothing in the queue.  Give idle hooks a
    // chance to generate work (the kSteal balancer sends its steal request
    // here) before blocking until the machine layer has something for us.
    if (RunIdleHooks(pe)) continue;
    detail::WaitForNet(pe);
  }
  detail::race::OnSchedulerReturn(pe);
  --pe.sched_depth;
}

int CsdScheduleUntilIdle() {
  PeState& pe = CpvChecked();
  ++pe.sched_depth;
  int delivered = 0;
  for (;;) {
    if (pe.exit_requested) {
      pe.exit_requested = false;
      break;
    }
    const int got = detail::DeliverAvailable(pe, -1);
    delivered += got;
    if (pe.exit_requested) continue;
    if (RunOneFromQueue(pe)) {
      ++delivered;
      continue;
    }
    if (got == 0) {
      // Both queues drained.  Idle is a flush point for the aggregation
      // layer: push any open frames out, and only stop once no flush
      // produced new work for us (a self-directed round trip may answer).
      if (detail::CstFlushAll(pe) > 0) continue;
      break;
    }
  }
  detail::race::OnSchedulerReturn(pe);
  --pe.sched_depth;
  return delivered;
}

int CsdSchedulePoll(int n) {
  PeState& pe = CpvChecked();
  ++pe.sched_depth;
  int delivered = 0;
  const bool bounded = n >= 0;
  for (;;) {
    if (pe.exit_requested) {
      pe.exit_requested = false;
      break;
    }
    if (bounded && delivered >= n) break;
    const int got = detail::DeliverAvailable(pe, 1);
    if (got > 0) {  // an aggregation frame may deliver several at once
      delivered += got;
      continue;
    }
    if (RunOneFromQueue(pe)) {
      ++delivered;
      continue;
    }
    // Going idle without blocking still counts as an aggregation flush
    // point; sending is non-blocking, so poll semantics are preserved.
    if (detail::CstFlushAll(pe) > 0) continue;
    break;  // nothing available and we never block
  }
  detail::race::OnSchedulerReturn(pe);
  --pe.sched_depth;
  return delivered;
}

void CsdExitScheduler() {
  PeState& pe = CpvChecked();
  pe.exit_requested = true;
}

void CsdEnqueue(void* msg) {
  PeState& pe = CpvChecked();
  NoteEnqueue(pe, msg);
  pe.schedq.Enqueue(msg);
}

void CsdEnqueueLifo(void* msg) {
  PeState& pe = CpvChecked();
  NoteEnqueue(pe, msg);
  pe.schedq.EnqueueLifo(msg);
}

void CsdEnqueueIntPrio(void* msg, std::int32_t prio, bool lifo) {
  PeState& pe = CpvChecked();
  NoteEnqueue(pe, msg);
  detail::Header(msg)->int_prio = prio;
  pe.schedq.EnqueueIntPrio(msg, prio, lifo);
}

void CsdEnqueueBitvecPrio(void* msg, const std::uint32_t* prio_words,
                          int nbits, bool lifo) {
  PeState& pe = CpvChecked();
  NoteEnqueue(pe, msg);
  pe.schedq.EnqueueBitvecPrio(msg, prio_words, nbits, lifo);
}

void CsdEnqueueGeneral(void* msg, Queueing strategy, const CqsPrio& prio) {
  PeState& pe = CpvChecked();
  NoteEnqueue(pe, msg);
  pe.schedq.EnqueueGeneral(msg, strategy, prio);
}

std::size_t CsdLength() { return CpvChecked().schedq.Length(); }

bool CsdIsIdle() {
  PeState& pe = CpvChecked();
  if (!pe.schedq.Empty() || !pe.heldq.empty()) return false;
  if (detail::CstHasAnyOpen(pe)) return false;  // pending outbound frames
  return detail::NetIsIdle(pe);
}

}  // namespace converse
