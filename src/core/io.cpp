// Atomic console I/O (paper §3.1.3, appendix §3.7).
//
// On the in-process machine "sending output to the host" degenerates to a
// process-wide mutex around stdio, which provides exactly the guarantee the
// paper specifies: data from two separate CmiPrintfs is never interleaved,
// and CmiScanfs from different PEs are serialized.
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

#include "converse/cmi.h"
#include "core/pe_state.h"

namespace converse {
namespace {

std::mutex& IoMu() {
  static std::mutex mu;
  return mu;
}

void VPrintTo(std::FILE* f, const char* format, va_list args) {
  std::scoped_lock lk(IoMu());
  std::vfprintf(f, format, args);
  std::fflush(f);
}

}  // namespace

void CmiPrintf(const char* format, ...) {
  detail::PeState& pe = detail::CpvChecked();
  va_list args;
  va_start(args, format);
  VPrintTo(pe.machine->out(), format, args);
  va_end(args);
}

void CmiError(const char* format, ...) {
  detail::PeState& pe = detail::CpvChecked();
  va_list args;
  va_start(args, format);
  VPrintTo(pe.machine->err(), format, args);
  va_end(args);
}

int CmiScanf(const char* format, ...) {
  detail::PeState& pe = detail::CpvChecked();
  std::scoped_lock lk(IoMu());
  va_list args;
  va_start(args, format);
  const int rc = std::vfscanf(pe.machine->in(), format, args);
  va_end(args);
  return rc;
}

void CmiScanfAsync(int handler_id) {
  detail::PeState& pe = detail::CpvChecked();
  std::string line;
  {
    std::scoped_lock lk(IoMu());
    int c;
    while ((c = std::fgetc(pe.machine->in())) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
  }
  // Deliver the raw line (NUL-terminated) to the handler; the recipient
  // re-parses with sscanf, per the paper's non-blocking scanf protocol.
  void* msg = CmiMakeMessage(handler_id, line.c_str(), line.size() + 1);
  detail::SendOwned(pe.mype, msg);
}

}  // namespace converse
