#include "converse/netmodel.h"

namespace converse {

double NetModel::OnewayUs(std::size_t n) const {
  double t = alpha_us + static_cast<double>(n) * per_byte_us;
  if (packet_bytes > 0) {
    const std::size_t packets = n == 0 ? 1 : (n + packet_bytes - 1) / packet_bytes;
    t += static_cast<double>(packets) * per_packet_us;
  }
  if (copy_threshold_bytes > 0 && n > copy_threshold_bytes) {
    t += static_cast<double>(n) * copy_per_byte_us;
  }
  return t;
}

namespace netmodels {

// Calibration notes (era-published figures; see DESIGN.md §2 and
// EXPERIMENTS.md for sources and the shape criteria these must satisfy):

NetModel AtmHp() {
  // FDDI/ATM LAN through the HP-UX socket stack: several-hundred-us
  // one-way latency, ~8 MB/s effective bandwidth.
  return NetModel{
      .name = "ATM-connected HPs",
      .alpha_us = 275.0,
      .per_byte_us = 0.125,  // ~8 MB/s
      .packet_bytes = 9180,  // ATM AAL5 MTU
      .per_packet_us = 35.0,
  };
}

NetModel CrayT3D() {
  // T3D with the FM package: a few us for short messages, ~120 MB/s, and
  // the 16 KB packetization-copy jump the paper calls out explicitly.
  return NetModel{
      .name = "Cray T3D",
      .alpha_us = 3.0,
      .per_byte_us = 0.008,  // ~125 MB/s
      .packet_bytes = 4096,
      .per_packet_us = 1.0,
      .copy_threshold_bytes = 16 * 1024,
      .copy_per_byte_us = 0.012,  // extra copy during packetization
  };
}

NetModel MyrinetFm() {
  // Illinois Fast Messages on Myrinet-connected Suns: the paper quotes
  // 25 us for native FM messages up to 128 bytes (round-trip half), with
  // Converse at ~31 us.
  return NetModel{
      .name = "Myrinet/FM Suns",
      .alpha_us = 23.5,
      .per_byte_us = 0.047,  // ~21 MB/s through FM at the time
      .packet_bytes = 128,   // FM packet size
      .per_packet_us = 1.5,
  };
}

NetModel IbmSp1() {
  // SP-1 with MPL: ~60 us short-message latency, ~9 MB/s sustained.
  return NetModel{
      .name = "IBM SP-1",
      .alpha_us = 56.0,
      .per_byte_us = 0.11,
      .packet_bytes = 4096,
      .per_packet_us = 8.0,
  };
}

NetModel ParagonSunmos() {
  // Intel Paragon under SUNMOS: ~25 us latency, ~170 MB/s peak.
  return NetModel{
      .name = "Intel Paragon (SUNMOS)",
      .alpha_us = 24.0,
      .per_byte_us = 0.006,
      .packet_bytes = 8192,
      .per_packet_us = 2.5,
  };
}

}  // namespace netmodels
}  // namespace converse
