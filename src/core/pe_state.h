// Internal per-PE and per-machine state of the in-process Converse machine.
// Not installed; runtime modules inside libconverse include it relative to
// the src/ root.  Everything in here is owned either by exactly one PE
// thread (consumer-side fields) or guarded by PeState::mu (the network
// in-queue, the only cross-thread channel).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "converse/cmi.h"
#include "converse/emi.h"
#include "converse/handlers.h"
#include "converse/machine.h"
#include "converse/queueing.h"
#include "converse/sim.h"
#include "converse/util/rng.h"
#include "converse/util/spantree.h"
#include "core/mpsc_ring.h"
#include "core/stream.h"

namespace converse::detail {

class Machine;
class MsgPool;
class SimCoordinator;
class Transport;  // core/transport/transport.h (multi-node wire backends)

namespace race {
class RaceDetector;   // src/race/race.cpp (CciRace, sim-only)
struct RacePeState;
}  // namespace race

/// A message sitting in a PE's timed (net-model) in-queue.
struct NetEntry {
  void* msg;
  double arrive_us;   // visibility time (0 when no net model)
  std::uint64_t seq;  // tie-break so equal arrival times stay FIFO
};

/// One inbound delivery lane: a bounded lock-free MPSC ring (the common
/// path — no lock, no allocation) plus an unbounded overflow deque guarded
/// by PeState::mu (taken only when the ring fills).
///
/// Ordering contract (per-sender FIFO):
///  * While `overflow_count` is nonzero, producers divert to the overflow
///    deque ("sticky" overflow) so a sender's later message can never pass
///    its earlier overflowed one via the ring.  Producers re-check the
///    count under the mutex before committing to the deque: the consumer
///    only zeroes the count under that same mutex, so a stale nonzero read
///    on the lock-free fast path is corrected before it can reorder.
///  * The consumer drains the ring before splicing the overflow deque into
///    its private batch queue, and drains the batch queue before returning
///    to the ring.
struct InLane {
  MpscRing ring;
  std::atomic<std::uint64_t> overflow_count{0};  // writes under PeState::mu
  std::deque<void*> overflow;                    // guarded by PeState::mu
};

struct NetEntryLater {
  bool operator()(const NetEntry& a, const NetEntry& b) const {
    if (a.arrive_us != b.arrive_us) return a.arrive_us > b.arrive_us;
    return a.seq > b.seq;
  }
};

/// Dispatch-time bookkeeping for the buffer ownership protocol: the message
/// currently being delivered and whether its handler grabbed it.
struct SysBuf {
  void* msg;
  bool grabbed;
};

/// Trace/instrumentation hooks.  All optional; the core tests `hooks` once
/// per event, so a machine without tracing pays one predictable branch.
struct CoreHooks {
  void* ud = nullptr;
  void (*on_send)(void* ud, const MsgHeader* h, int dest_pe) = nullptr;
  void (*on_dispatch_begin)(void* ud, const MsgHeader* h,
                            bool from_queue) = nullptr;
  void (*on_dispatch_end)(void* ud, std::uint32_t handler,
                          double begin_us) = nullptr;
  void (*on_enqueue)(void* ud, const MsgHeader* h) = nullptr;
  void (*on_idle_begin)(void* ud) = nullptr;
  void (*on_idle_end)(void* ud) = nullptr;
  // Aggregation layer (src/core/stream.cpp): a frame of `msgs` packed
  // messages (`bytes` of entries) went to the wire / a spanning-tree
  // broadcast carrier was forwarded to a tree child.
  void (*on_agg_flush)(void* ud, int dest_pe, std::uint32_t msgs,
                       std::uint32_t bytes) = nullptr;
  void (*on_bcast_forward)(void* ud, int dest_pe,
                           std::uint32_t size) = nullptr;
};

/// One-shot/persistent scatter registration (EMI advance receive).
struct ScatterReg {
  int id;
  std::size_t match_offset;
  std::uint32_t match_value;
  std::vector<ScatterPart> parts;
  int notify_handler;
  bool persistent;
};

/// Thrown inside blocked runtime calls when another PE aborted the machine
/// (entry function threw); swallowed by the PE thread wrapper.
struct MachineAborted {};

struct PeState {
  Machine* machine = nullptr;
  int mype = 0;
  int npes = 1;
  int node = 0;  // node owning this PE (== Machine::NodeOf(mype))
  MsgPool* pool = nullptr;  // this slot's message pool (null when disabled)

  // ---- network in-queue: producers are other PE threads ----
  std::mutex mu;  // guards overflow deques, timedq, and the parked condvar
  std::condition_variable cv;
  InLane netlane;  // regular traffic (used when there is no net model)
  InLane immlane;  // immediate (out-of-band) messages: always delivered
                   // before regular traffic and never delayed by a net model
  std::priority_queue<NetEntry, std::vector<NetEntry>, NetEntryLater>
      timedq;  // used with a net model (ordered by arrival time)
  std::uint64_t net_seq = 0;
  // True while this PE's thread is (about to be) blocked in WaitForNet.
  // Producers check it after publishing and only then pay for the
  // lock+notify; the seq_cst Dekker pairing with the ring's tail CAS (see
  // mpsc_ring.h) guarantees no lost wakeup.
  std::atomic<bool> parked{false};

  // ---- consumer-only state (touched only by this PE's thread) ----
  std::deque<void*> batchq;      // regular messages staged in batch
  std::deque<void*> imm_batchq;  // immediate messages staged in batch
  std::deque<void*> heldq;       // buffered by CmiGetSpecificMsg
  CqsQueue schedq;
  std::vector<Handler> handlers;
  // Handler count published for CciCheck's cross-PE divergence diagnosis:
  // written (release) by the owning PE on registration, read (acquire) by
  // other PEs only inside a checker violation path.  Stays 0 when the
  // checker is disabled.
  std::atomic<std::uint32_t> published_handlers{0};
  std::vector<SysBuf> sysbuf_stack;
  void* pending_mmi = nullptr;  // last buffer returned by CmiGetMsg/Specific
  bool pending_mmi_grabbed = false;
  bool exit_requested = false;
  int sched_depth = 0;  // nesting level of running scheduler loops
  std::vector<void*> module_state;
  // Scatter registrations (EMI advance receive).  Guarded by scatter_mu:
  // the zero-copy landing path (TryScatterDirect) matches and fills a
  // registration from the *sending* PE's thread.  scatter_armed mirrors
  // scatters.size() so the per-message fast path is one relaxed load.
  // scatter_mu is a leaf lock: never acquire another lock while holding it.
  std::mutex scatter_mu;
  std::vector<ScatterReg> scatters;
  std::atomic<int> scatter_armed{0};
  int next_scatter_id = 0;
  // Idle hooks, run by blocking scheduler loops (CsdScheduler) right before
  // the PE parks in WaitForNet.  A hook returns true when it did something
  // that could produce new work (sent a message, enqueued locally) so the
  // loop re-polls instead of blocking immediately.  Consumer-only state;
  // runtime modules (the kSteal seed balancer, kCentral's drain flush)
  // register at most one hook each per machine run.
  struct IdleHook {
    bool (*fn)(void* ud);
    void* ud;
  };
  std::vector<IdleHook> idle_hooks;
  util::Xoshiro256 rng{0};
  CmiStats stats;
  std::uint64_t send_seq = 0;
  const CoreHooks* hooks = nullptr;
  CstPeState agg;  // small-message aggregation state (core/stream.h)

  // CciRace per-PE state; non-null only under a sim-backed machine with
  // the detector compiled in.  Every race hook is gated on this pointer.
  race::RacePeState* race = nullptr;

  // Quiescence-relevant counters (read by the charm runtime).
  std::uint64_t qd_created = 0;    // messages sent or enqueued
  std::uint64_t qd_processed = 0;  // messages dispatched

  PeState() = default;
  PeState(const PeState&) = delete;
  PeState& operator=(const PeState&) = delete;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Spawn PE threads, run `entry` everywhere, join, tear down.
  void Run(const std::function<void(int pe, int npes)>& entry);

  /// State of (locally hosted) PE `i`.  `i` is a *global* PE number; in
  /// real multi-process mode only [pe_begin_, pe_end_) are hosted here and
  /// anything else is a bug (gate with IsLocalPe first).
  PeState& Pe(int i) { return *pes_[i - pe_begin_]; }
  int npes() const { return config_.npes; }

  // ---- node topology (block distribution of npes over nnodes) ----
  int nnodes() const { return config_.nnodes; }
  /// Node this process hosts; -1 = loopback (this process hosts them all).
  int mynode() const { return config_.mynode; }
  bool multi_node() const { return config_.nnodes > 1; }
  int NodeOf(int pe) const {
    const int base = config_.npes / config_.nnodes;
    const int rem = config_.npes % config_.nnodes;
    const int cut = rem * (base + 1);
    return pe < cut ? pe / (base + 1) : rem + (pe - cut) / base;
  }
  int NodeFirst(int node) const {
    const int base = config_.npes / config_.nnodes;
    const int rem = config_.npes % config_.nnodes;
    return node * base + (node < rem ? node : rem);
  }
  int NodeSize(int node) const {
    const int base = config_.npes / config_.nnodes;
    return base + (node < config_.npes % config_.nnodes ? 1 : 0);
  }
  /// True when PE `i`'s state lives in this process.
  bool IsLocalPe(int i) const { return i >= pe_begin_ && i < pe_end_; }
  int pe_begin() const { return pe_begin_; }
  int pe_end() const { return pe_end_; }
  int local_npes() const { return pe_end_ - pe_begin_; }

  /// The wire backend (nullptr on single-node machines).
  Transport* transport() const { return transport_.get(); }

  const MachineConfig& config() const { return config_; }
  bool has_model() const { return config_.model != nullptr; }
  const NetModel& model() const { return model_; }
  const util::SpanningTree& tree() const { return tree_; }
  std::FILE* out() const { return out_; }
  std::FILE* err() const { return err_; }
  std::FILE* in() const { return in_; }

  /// The deterministic-simulation coordinator (nullptr in normal mode).
  SimCoordinator* sim() const { return sim_.get(); }
  /// The machine's copy of the sim config (meaningful only when sim()).
  const SimConfig& sim_config() const { return sim_config_; }
  /// The CciRace detector (nullptr unless sim-backed and compiled in).
  race::RaceDetector* race_detector() const { return race_detector_; }
  /// Internal: the CciRace wiring in race.cpp owns this slot.
  race::RaceDetector*& race_detector_slot() { return race_detector_; }
  /// True when delivery goes through the timed priority queue (a net model
  /// is set, or the sim backend routes everything through virtual time).
  bool uses_timedq() const { return config_.model != nullptr || sim_ != nullptr; }

  /// Microseconds since machine start.
  double ElapsedUs() const;

  void Abort(std::exception_ptr e);
  bool aborted() const { return aborted_.load(std::memory_order_relaxed); }

  /// The currently running machine (nullptr outside Run).
  static Machine* Current();

 private:
  void DrainQueues(PeState& pe);

  MachineConfig config_;
  NetModel model_;  // copy of *config.model (valid even if caller's dies)
  SimConfig sim_config_;  // copy of *config.sim (same lifetime rule)
  std::unique_ptr<SimCoordinator> sim_;
  race::RaceDetector* race_detector_ = nullptr;  // owned; see race.cpp
  util::SpanningTree tree_;
  std::unique_ptr<Transport> transport_;  // null on single-node machines
  int pe_begin_ = 0;  // global PE range hosted by this process:
  int pe_end_ = 0;    // [pe_begin_, pe_end_); == [0, npes) except real mode
  std::vector<std::unique_ptr<PeState>> pes_;  // pes_[i - pe_begin_]
  std::int64_t start_ns_ = 0;
  std::FILE* out_;
  std::FILE* err_;
  std::FILE* in_;
  std::atomic<bool> aborted_{false};
  std::mutex abort_mu_;
  std::exception_ptr first_error_;
};

/// Current PE (thread-local); nullptr outside a PE thread.
PeState* Cpv();
/// Current PE, asserting we are inside a machine.
PeState& CpvChecked();

/// Internal send: takes ownership of `msg` (header fields completed here).
void SendOwned(int dest_pe, void* msg);

/// SendOwned for callers that already resolved the sending PE (saves the
/// thread-local lookup on hot paths).  A nonzero `delay_us` defers delivery
/// by that much machine time via the timed queue (CmiSyncSendDelayedAndFree);
/// it requires a timed machine and is ignored on the plain lane path.
void SendOwnedFrom(PeState& pe, int dest_pe, void* msg, double delay_us = 0.0);

/// SendOwnedFrom that never consults the wire backend: used by the
/// transport layer itself when expanding a node-cast into per-PE local
/// deliveries (the record already crossed — and was accounted on — the
/// wire; re-entering the wire branch would double-count or double-drop).
void SendOwnedFromLocal(PeState& pe, int dest_pe, void* msg,
                        double delay_us = 0.0);

/// Inject a message that arrived over a real socket into local PE
/// `dest_pe`'s delivery lane (immediate lane when `immediate`).  Called
/// from the transport comm thread — not a PE thread — so it takes no
/// logical counters; the sender's node accounted the message when it was
/// sent.  `msg` ownership transfers to the machine.
void DeliverFromWire(Machine& m, int dest_pe, void* msg, bool immediate);

/// Internal immediate send: like SendOwned but into the receiver's
/// out-of-band lane (paper §6 "preemptive messages" future work).
void SendOwnedImmediate(int dest_pe, void* msg);

/// Pop the next deliverable network message, applying scatter
/// registrations; nullptr if none available right now.
void* PopNet(PeState& pe);

/// Test one scatter registration against a delivered message; true when
/// the message was consumed.  Never matches carrier (frame/broadcast)
/// messages — scatters apply to the logical messages inside.
bool TryScatter(PeState& pe, void* msg);

/// Zero-copy scatter landing for CmiVectorSend (called on the *sender*):
/// if `dest_pe` has a matching registration, copy the gathered segments
/// straight into its user buffers — no intermediate message — and true is
/// returned.  Inactive under the sim backend or a latency model (those
/// paths keep per-message fault/latency semantics).
bool TryScatterDirect(PeState& src, int dest_pe, int len, const int sizes[],
                      const void* const data_array[],
                      std::size_t payload_size);

/// Push a shared-broadcast block to `dest_pe`'s delivery lane (or the sim)
/// without restamping its header or touching the logical send counters —
/// the caller already accounted for the fan-out and holds a reference per
/// push.  Flushes the sender's open frame to `dest_pe` first (FIFO).
void SendSharedBlockFrom(PeState& pe, int dest_pe, void* block);

/// True when no network message is deliverable right now (both lanes and,
/// under a net model, the timed queue).  Must run on `pe`'s own thread.
bool NetIsIdle(PeState& pe);

/// Deliver buffered-held + available network messages, up to `budget`
/// (-1 = unlimited); stops early if the PE's exit flag is raised.
int DeliverAvailable(PeState& pe, int budget);

/// Block until a network message is (or becomes) deliverable.  Throws
/// MachineAborted if the machine is aborting.
void WaitForNet(PeState& pe);

/// Core module id (registers the exit-broadcast handler); calling it
/// ensures the core module is registered.
int CoreModuleId();

/// Copy a live message into a fresh machine-owned buffer of the same size
/// (the sim fault injector's duplicate path).
void* CloneMessage(const void* msg);

/// Instrumented scheduling point: under the sim backend, offer the
/// coordinator a chance to hand execution to another PE.  No-op (one
/// thread-local load and a branch) in normal mode or outside a machine.
void SimYieldHere();

/// Fold a module-defined decision into the sim's event-trace hash (no-op
/// on machines without the sim backend).  Defined in sim/sim.cpp.
void SimTraceUser(PeState& pe, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c);

}  // namespace converse::detail
