// Per-PE size-class message pools behind CmiAlloc/CmiFree.
//
// Layout: every allocation carries a 16-byte PoolPrefix *before* the
// 16-byte-aligned message pointer.  The prefix — not the message header —
// holds the pool identity, because the runtime copies whole headers around
// (CopyMessage, the pgrp multicast unwrap): header-resident metadata would
// be clobbered by those memcpys, the out-of-band prefix never is.  The
// header's kMsgFlagPooled bit is advisory (re-stamped after full-header
// copies via MsgPoolRestampFlag) so tools and tests can see poolability.
//
// Ownership: each PE slot has one MsgPool, created on demand and leaked —
// machines run sequentially, so slot i of every machine reuses the same
// pool, and frees that happen after a machine tears down (or from non-PE
// threads) stay safe forever.  Allocation and local free touch only the
// owning PE's freelists (no atomics beyond single-writer counters); a free
// from any other thread pushes onto the owner's lock-free return stack
// (Treiber push; the owner reclaims with a swap-all exchange, so there is
// no ABA window).  Messages larger than the largest size class — and all
// allocations made outside a PE thread — fall back to direct operator new,
// tagged as such in the prefix.
//
// Sanitizers: pooling recycles memory, which would hide use-after-free
// from ASan and shift diagnosis under TSan, so pools default off when
// compiled with either sanitizer.  The CONVERSE_POOL environment variable
// overrides the default in both directions ("0" disables, anything else
// enables); with pools off CmiAlloc/CmiFree degrade to the original
// prefix-less operator new/delete path.
#pragma once

#include <cstddef>

#include "converse/cmi.h"

namespace converse::detail {

class MsgPool;

/// True when the pool layer is active (decided once, at first use).
bool MsgPoolEnabled();

/// The (leaked, process-lifetime) pool serving PE slot `slot`.
MsgPool* MsgPoolForSlot(int slot);

/// Allocate an `nbytes` message buffer (16-byte aligned) from the calling
/// PE's pool; direct allocation when outside a PE, oversize, or disabled.
void* MsgPoolAlloc(std::size_t nbytes);

/// Return a MsgPoolAlloc'ed buffer: owner's freelist when called on the
/// owning PE's thread, the owner's return stack otherwise.
void MsgPoolFree(void* msg);

/// True when `msg` came from a pool freelist/size class (false for direct
/// allocations and whenever pooling is disabled).
bool MsgPoolIsPooled(const void* msg);

/// Fix the advisory kMsgFlagPooled header bit after a full-header memcpy
/// replaced it with the source message's bit.
void MsgPoolRestampFlag(void* msg);

/// Process-wide counter snapshot (sums every slot's pool).
CmiMemoryStats MsgPoolStats();

}  // namespace converse::detail
