#include "converse/trace.h"

#include <cassert>

#include "converse/detail/module.h"
#include "converse/util/timer.h"
#include "core/pe_state.h"

namespace converse {
namespace {

struct TraceState {
  TraceMode mode = TraceMode::kNone;
  detail::CoreHooks hooks;
  TraceSummary summary;
  std::vector<TraceRecord> log;
  std::vector<std::string> user_events;
  std::vector<bool> dispatch_from_queue;  // nesting stack for begin/end
  double idle_begin_us = 0.0;
};

int ModuleId();

TraceState& St() {
  return *static_cast<TraceState*>(detail::ModuleState(ModuleId()));
}

double Now() { return detail::CpvChecked().machine->ElapsedUs(); }

void Record(TraceState& st, TraceEventKind kind, std::uint32_t handler,
            std::uint32_t size, std::uint16_t aux) {
  if (st.mode != TraceMode::kLog) return;
  st.log.push_back(TraceRecord{Now(), kind, 0, aux, handler, size});
}

void EnsureHandlerSlot(TraceState& st, std::uint32_t handler) {
  if (st.summary.per_handler.size() <= handler) {
    st.summary.per_handler.resize(handler + 1);
  }
}

// ---- CoreHooks callbacks (ud is the TraceState) ----

void OnSend(void* ud, const detail::MsgHeader* h, int dest_pe) {
  auto& st = *static_cast<TraceState*>(ud);
  ++st.summary.sends;
  Record(st, TraceEventKind::kSend, h->handler, h->total_size,
         static_cast<std::uint16_t>(dest_pe));
}

void OnDispatchBegin(void* ud, const detail::MsgHeader* h, bool from_queue) {
  auto& st = *static_cast<TraceState*>(ud);
  ++st.summary.deliveries;
  EnsureHandlerSlot(st, h->handler);
  ++st.summary.per_handler[h->handler].invocations;
  st.dispatch_from_queue.push_back(from_queue);
  Record(st,
         from_queue ? TraceEventKind::kScheduleBegin
                    : TraceEventKind::kDeliverBegin,
         h->handler, h->total_size, h->source_pe);
}

void OnDispatchEnd(void* ud, std::uint32_t handler, double begin_us) {
  auto& st = *static_cast<TraceState*>(ud);
  EnsureHandlerSlot(st, handler);
  st.summary.per_handler[handler].total_us += util::NowUs() - begin_us;
  bool from_queue = false;
  if (!st.dispatch_from_queue.empty()) {
    from_queue = st.dispatch_from_queue.back();
    st.dispatch_from_queue.pop_back();
  }
  Record(st,
         from_queue ? TraceEventKind::kScheduleEnd
                    : TraceEventKind::kDeliverEnd,
         handler, 0, 0);
}

void OnEnqueue(void* ud, const detail::MsgHeader* h) {
  auto& st = *static_cast<TraceState*>(ud);
  ++st.summary.enqueues;
  Record(st, TraceEventKind::kEnqueue, h->handler, h->total_size, 0);
}

void OnIdleBegin(void* ud) {
  auto& st = *static_cast<TraceState*>(ud);
  ++st.summary.idle_periods;
  st.idle_begin_us = util::NowUs();
  Record(st, TraceEventKind::kIdleBegin, 0, 0, 0);
}

void OnIdleEnd(void* ud) {
  auto& st = *static_cast<TraceState*>(ud);
  st.summary.idle_us += util::NowUs() - st.idle_begin_us;
  Record(st, TraceEventKind::kIdleEnd, 0, 0, 0);
}

void OnAggFlush(void* ud, int dest_pe, std::uint32_t msgs,
                std::uint32_t bytes) {
  auto& st = *static_cast<TraceState*>(ud);
  ++st.summary.agg_frames;
  st.summary.agg_batched += msgs;
  Record(st, TraceEventKind::kAggFlush, msgs, bytes,
         static_cast<std::uint16_t>(dest_pe));
}

void OnBcastForward(void* ud, int dest_pe, std::uint32_t size) {
  auto& st = *static_cast<TraceState*>(ud);
  (void)dest_pe;
  (void)size;
  ++st.summary.bcast_forwards;
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "trace",
      [](int module_id) {
        auto* st = new TraceState;
        st->hooks.ud = st;
        st->hooks.on_send = &OnSend;
        st->hooks.on_dispatch_begin = &OnDispatchBegin;
        st->hooks.on_dispatch_end = &OnDispatchEnd;
        st->hooks.on_enqueue = &OnEnqueue;
        st->hooks.on_idle_begin = &OnIdleBegin;
        st->hooks.on_idle_end = &OnIdleEnd;
        st->hooks.on_agg_flush = &OnAggFlush;
        st->hooks.on_bcast_forward = &OnBcastForward;
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<TraceState*>(state); });
  return id;
}

const char* KindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kSend: return "SEND";
    case TraceEventKind::kDeliverBegin: return "DELIVER_BEGIN";
    case TraceEventKind::kDeliverEnd: return "DELIVER_END";
    case TraceEventKind::kScheduleBegin: return "SCHEDULE_BEGIN";
    case TraceEventKind::kScheduleEnd: return "SCHEDULE_END";
    case TraceEventKind::kEnqueue: return "ENQUEUE";
    case TraceEventKind::kIdleBegin: return "IDLE_BEGIN";
    case TraceEventKind::kIdleEnd: return "IDLE_END";
    case TraceEventKind::kThreadCreate: return "THREAD_CREATE";
    case TraceEventKind::kObjectCreate: return "OBJECT_CREATE";
    case TraceEventKind::kUserEvent: return "USER_EVENT";
    case TraceEventKind::kAggFlush: return "AGG_FLUSH";
  }
  return "?";
}

}  // namespace

void TraceBegin(TraceMode mode) {
  TraceState& st = St();
  st.mode = mode;
  detail::PeState& pe = detail::CpvChecked();
  pe.hooks = mode == TraceMode::kNone ? nullptr : &st.hooks;
}

void TraceEnd() {
  TraceState& st = St();
  st.mode = TraceMode::kNone;
  detail::CpvChecked().hooks = nullptr;
}

TraceMode TraceCurrentMode() { return St().mode; }

TraceSummary TraceGetSummary() { return St().summary; }

const std::vector<TraceRecord>& TraceGetLog() { return St().log; }

void TraceClear() {
  TraceState& st = St();
  st.log.clear();
  st.summary = TraceSummary{};
}

void TraceDump(std::FILE* out) {
  TraceState& st = St();
  const int pe = CmiMyPe();
  // Self-describing header: format version, PE, the user event dictionary.
  std::fprintf(out, "CONVERSE-TRACE v1 pe=%d records=%zu\n", pe,
               st.log.size());
  for (std::size_t i = 0; i < st.user_events.size(); ++i) {
    std::fprintf(out, "USER-EVENT %zu %s\n", i, st.user_events[i].c_str());
  }
  for (const TraceRecord& r : st.log) {
    std::fprintf(out, "%.3f %s handler=%u size=%u aux=%u\n", r.time_us,
                 KindName(r.kind), r.handler, r.size, r.aux16);
  }
}

int TraceRegisterUserEvent(const std::string& name) {
  TraceState& st = St();
  st.user_events.push_back(name);
  return static_cast<int>(st.user_events.size()) - 1;
}

void TraceUserEvent(int event_id) {
  TraceState& st = St();
  if (st.mode == TraceMode::kNone) return;
  Record(st, TraceEventKind::kUserEvent,
         static_cast<std::uint32_t>(event_id), 0, 0);
}

void TraceNoteThreadCreate() {
  TraceState& st = St();
  if (st.mode == TraceMode::kNone) return;
  Record(st, TraceEventKind::kThreadCreate, 0, 0, 0);
}

void TraceNoteObjectCreate() {
  TraceState& st = St();
  if (st.mode == TraceMode::kNone) return;
  Record(st, TraceEventKind::kObjectCreate, 0, 0, 0);
}

}  // namespace converse

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::TraceModuleRegister() { return converse::ModuleId(); }
