#include "converse/trace_report.h"

#include <cstring>
#include <stdexcept>

namespace converse::tracetool {
namespace {

struct Event {
  double time_us;
  std::string kind;
  std::uint32_t handler;
  std::uint32_t size;
};

std::vector<std::string> ReadLines(std::FILE* in) {
  std::vector<std::string> lines;
  std::string cur;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(c));
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

}  // namespace

Report ParseTrace(std::FILE* in) {
  Report rep;
  const auto lines = ReadLines(in);
  if (lines.empty() ||
      lines.front().rfind("CONVERSE-TRACE v1", 0) != 0) {
    throw std::runtime_error("trace_report: not a CONVERSE-TRACE v1 dump");
  }
  std::size_t declared_records = 0;
  if (std::sscanf(lines.front().c_str(), "CONVERSE-TRACE v1 pe=%d records=%zu",
                  &rep.pe, &declared_records) != 2) {
    throw std::runtime_error("trace_report: malformed header");
  }

  std::vector<Event> events;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& ln = lines[i];
    if (ln.rfind("USER-EVENT ", 0) == 0) {
      int id = 0;
      char name[256] = {};
      if (std::sscanf(ln.c_str(), "USER-EVENT %d %255s", &id, name) == 2) {
        rep.user_events[name] = id;
      }
      continue;
    }
    Event e{};
    char kind[32] = {};
    if (std::sscanf(ln.c_str(), "%lf %31s handler=%u size=%u", &e.time_us,
                    kind, &e.handler, &e.size) != 4) {
      throw std::runtime_error("trace_report: malformed record: " + ln);
    }
    e.kind = kind;
    events.push_back(std::move(e));
  }
  rep.records = events.size();
  if (rep.records != declared_records) {
    throw std::runtime_error("trace_report: record count mismatch");
  }
  if (events.empty()) return rep;

  const double t0 = events.front().time_us;
  const double t1 = events.back().time_us;
  rep.span_us = t1 - t0;
  rep.timeline_busy_fraction.assign(kTimelineBuckets, 0.0);
  const double bucket_us =
      rep.span_us > 0 ? rep.span_us / kTimelineBuckets : 1.0;

  // Matched begin/end bookkeeping (handler dispatches nest).
  struct Open {
    double begin_us;
    std::uint32_t handler;
  };
  std::vector<Open> open_dispatch;
  double idle_begin = -1.0;

  auto add_busy_span = [&](double b, double e) {
    // Attribute the span to timeline buckets it overlaps.
    if (rep.span_us <= 0) return;
    for (int k = 0; k < kTimelineBuckets; ++k) {
      const double lo = t0 + k * bucket_us;
      const double hi = lo + bucket_us;
      const double ov = std::min(e, hi) - std::max(b, lo);
      if (ov > 0) rep.timeline_busy_fraction[static_cast<std::size_t>(k)] += ov;
    }
  };

  for (const Event& e : events) {
    if (e.kind == "SEND") {
      ++rep.sends;
      rep.send_bytes += e.size;
    } else if (e.kind == "ENQUEUE") {
      ++rep.enqueues;
    } else if (e.kind == "DELIVER_BEGIN" || e.kind == "SCHEDULE_BEGIN") {
      ++rep.handlers[e.handler].begins;
      open_dispatch.push_back(Open{e.time_us, e.handler});
    } else if (e.kind == "DELIVER_END" || e.kind == "SCHEDULE_END") {
      HandlerProfile& hp = rep.handlers[e.handler];
      ++hp.ends;
      if (!open_dispatch.empty()) {
        const Open o = open_dispatch.back();
        open_dispatch.pop_back();
        hp.busy_us += e.time_us - o.begin_us;
        if (open_dispatch.empty()) {
          add_busy_span(o.begin_us, e.time_us);
        }
      }
    } else if (e.kind == "IDLE_BEGIN") {
      idle_begin = e.time_us;
    } else if (e.kind == "IDLE_END") {
      if (idle_begin >= 0) {
        rep.idle_us += e.time_us - idle_begin;
        idle_begin = -1.0;
      }
    } else if (e.kind == "USER_EVENT") {
      ++rep.user_event_hits;
    } else if (e.kind == "THREAD_CREATE") {
      ++rep.thread_creates;
    } else if (e.kind == "OBJECT_CREATE") {
      ++rep.object_creates;
    }
  }
  // Normalize timeline buckets to fractions.
  for (double& f : rep.timeline_busy_fraction) f /= bucket_us;
  return rep;
}

void PrintReport(const Report& rep, std::FILE* out) {
  std::fprintf(out, "=== Converse trace report: pe %d ===\n", rep.pe);
  std::fprintf(out, "records:        %zu over %.1f us\n", rep.records,
               rep.span_us);
  std::fprintf(out, "sends:          %llu (%llu bytes)\n",
               static_cast<unsigned long long>(rep.sends),
               static_cast<unsigned long long>(rep.send_bytes));
  std::fprintf(out, "enqueues:       %llu\n",
               static_cast<unsigned long long>(rep.enqueues));
  std::fprintf(out, "idle:           %.1f us\n", rep.idle_us);
  std::fprintf(out, "threads made:   %llu   objects made: %llu\n",
               static_cast<unsigned long long>(rep.thread_creates),
               static_cast<unsigned long long>(rep.object_creates));
  std::fprintf(out, "-- per handler --\n");
  for (const auto& [id, hp] : rep.handlers) {
    std::fprintf(out, "  handler %3u: %6llu calls, %10.1f us busy\n", id,
                 static_cast<unsigned long long>(hp.begins), hp.busy_us);
  }
  if (!rep.user_events.empty()) {
    std::fprintf(out, "-- user events (%llu hits) --\n",
                 static_cast<unsigned long long>(rep.user_event_hits));
    for (const auto& [name, id] : rep.user_events) {
      std::fprintf(out, "  [%d] %s\n", id, name.c_str());
    }
  }
  std::fprintf(out, "-- utilization timeline (%d buckets) --\n  |",
               kTimelineBuckets);
  for (double f : rep.timeline_busy_fraction) {
    const char* glyph = f > 0.75 ? "#" : f > 0.5 ? "+" : f > 0.25 ? "-"
                        : f > 0.01 ? "." : " ";
    std::fprintf(out, "%s", glyph);
  }
  std::fprintf(out, "|\n");
}

}  // namespace converse::tracetool
