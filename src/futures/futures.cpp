#include "converse/futures.h"

#include <cassert>
#include <cstring>
#include <map>

#include "converse/cth.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse {
namespace {

struct FutureWire {
  std::uint32_t idx;
  std::uint32_t len;
  // `len` value bytes follow
};

struct FutureSlot {
  bool ready = false;
  std::vector<char> value;
  CthThread* waiter = nullptr;
};

struct FuturesState {
  int handler = -1;
  std::uint32_t next_idx = 1;
  std::map<std::uint32_t, FutureSlot> slots;
};

int ModuleId();

FuturesState& St() {
  return *static_cast<FuturesState*>(detail::ModuleState(ModuleId()));
}

void FillLocal(FuturesState& st, std::uint32_t idx, const void* data,
               std::size_t len) {
  auto it = st.slots.find(idx);
  assert(it != st.slots.end() && "CfutureSet on unknown/destroyed future");
  FutureSlot& slot = it->second;
  assert(!slot.ready && "future set twice (single-assignment violated)");
  slot.value.assign(static_cast<const char*>(data),
                    static_cast<const char*>(data) + len);
  slot.ready = true;
  if (slot.waiter != nullptr) {
    CthThread* t = slot.waiter;
    slot.waiter = nullptr;
    CthAwaken(t);
  }
}

void FutureHandler(void* msg) {
  const auto* wire = static_cast<const FutureWire*>(CmiMsgPayload(msg));
  FillLocal(St(), wire->idx, wire + 1, wire->len);
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "futures",
      [](int module_id) {
        auto* st = new FuturesState;
        st->handler = CmiRegisterHandler(&FutureHandler);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<FuturesState*>(state); });
  return id;
}

}  // namespace

Cfuture CfutureCreate() {
  FuturesState& st = St();
  const std::uint32_t idx = st.next_idx++;
  st.slots.emplace(idx, FutureSlot{});
  return Cfuture{CmiMyPe(), idx};
}

void CfutureSet(Cfuture f, const void* data, std::size_t len) {
  assert(f.IsValid());
  FuturesState& st = St();
  if (f.pe == CmiMyPe()) {
    FillLocal(st, f.idx, data, len);
    return;
  }
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(FutureWire) + len);
  CmiSetHandler(msg, st.handler);
  auto* wire = static_cast<FutureWire*>(CmiMsgPayload(msg));
  wire->idx = f.idx;
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, data, len);
  detail::SendOwned(f.pe, msg);
}

bool CfutureReady(Cfuture f) {
  assert(f.pe == CmiMyPe() && "only the owner PE may query a future");
  const FuturesState& st = St();
  auto it = st.slots.find(f.idx);
  return it != st.slots.end() && it->second.ready;
}

const std::vector<char>& CfutureWait(Cfuture f) {
  assert(f.pe == CmiMyPe() && "only the owner PE may wait on a future");
  FuturesState& st = St();
  auto it = st.slots.find(f.idx);
  assert(it != st.slots.end() && "CfutureWait on a destroyed future");
  FutureSlot& slot = it->second;
  if (!slot.ready) {
    if (!CthIsMain(CthSelf())) {
      assert(slot.waiter == nullptr &&
             "two threads waiting on one future");
      slot.waiter = CthSelf();
      CthSuspend();
      assert(slot.ready);
    } else {
      // SPM regime: receive only future traffic.  Any future fill may be
      // ours; re-check after each.
      while (!slot.ready) {
        void* msg = CmiGetSpecificMsg(st.handler);
        FutureHandler(msg);
      }
    }
  }
  return slot.value;
}

void CfutureDestroy(Cfuture f) {
  assert(f.pe == CmiMyPe());
  FuturesState& st = St();
  auto it = st.slots.find(f.idx);
  assert(it != st.slots.end());
  assert(it->second.waiter == nullptr && "destroying an awaited future");
  st.slots.erase(it);
}

int CfutureLiveCount() { return static_cast<int>(St().slots.size()); }

// Registration entry point used by the header anchor.
int detail::FuturesModuleRegister() { return ModuleId(); }

}  // namespace converse
