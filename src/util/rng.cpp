// RNGs are header-only; anchor TU.
#include "converse/util/rng.h"

namespace converse::util {
static_assert(sizeof(Xoshiro256) == 32, "xoshiro256 state must be 4 words");
}  // namespace converse::util
