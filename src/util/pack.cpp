// Packer/Unpacker are header-only; this TU exists so the module has a home
// in the archive and to hold the PackError vtable anchor.
#include "converse/util/pack.h"

namespace converse::util {
// Anchor: keep one out-of-line symbol so the exception type has a single
// strong RTTI definition across shared-library boundaries.
static_assert(sizeof(PackError) > 0);
}  // namespace converse::util
