#include "converse/util/spantree.h"

#include <cassert>

namespace converse::util {

SpanningTree::SpanningTree(int npes, int root, int branching)
    : npes_(npes), root_(root), branching_(branching) {
  assert(npes >= 1);
  assert(root >= 0 && root < npes);
  assert(branching >= 1);
}

int SpanningTree::Parent(int pe) const {
  const int r = ToRank(pe);
  if (r == 0) return -1;
  return ToPe((r - 1) / branching_);
}

std::vector<int> SpanningTree::Children(int pe) const {
  std::vector<int> kids;
  const int r = ToRank(pe);
  for (int i = 1; i <= branching_; ++i) {
    const int c = r * branching_ + i;
    if (c >= npes_) break;
    kids.push_back(ToPe(c));
  }
  return kids;
}

int SpanningTree::NumChildren(int pe) const {
  const int r = ToRank(pe);
  const int first = r * branching_ + 1;
  if (first >= npes_) return 0;
  const int last = r * branching_ + branching_;
  return (last < npes_ ? last : npes_ - 1) - first + 1;
}

int SpanningTree::SubtreeSize(int pe) const {
  // The subtree below virtual rank r occupies one contiguous rank interval
  // per level: [r, r], then [r*k+1, r*k+k], and so on; sum the clipped
  // interval lengths level by level.
  long a = ToRank(pe);
  long b = a;
  int size = 0;
  const long k = branching_;
  while (a < npes_) {
    const long hi = b < npes_ - 1 ? b : npes_ - 1;
    size += static_cast<int>(hi - a + 1);
    a = a * k + 1;
    b = b * k + k;
  }
  return size;
}

int SpanningTree::Depth(int pe) const {
  int d = 0;
  int r = ToRank(pe);
  while (r != 0) {
    r = (r - 1) / branching_;
    ++d;
  }
  return d;
}

}  // namespace converse::util
