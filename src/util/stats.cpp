#include "converse/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace converse::util {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  mean_ = (na * mean_ + nb * other.mean_) / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Min() const { return n_ ? min_ : 0.0; }
double RunningStats::Max() const { return n_ ? max_ : 0.0; }

double RunningStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace converse::util
