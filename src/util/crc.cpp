#include "converse/util/crc.h"

#include <array>

namespace converse::util {
namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C polynomial

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace converse::util
