#include "converse/util/histogram.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace converse::util {

LogHistogram::LogHistogram(unsigned sub_bits) : sub_bits_(sub_bits) {
  assert(sub_bits >= 1 && sub_bits <= 16 && "unreasonable sub_bits");
  // Exponents 0..sub_bits-1 collapse into the exact region (one group);
  // exponents sub_bits..63 each contribute a group of 2^sub_bits buckets.
  const std::size_t groups = 64 - sub_bits_ + 1;
  buckets_.assign(groups << sub_bits_, 0);
}

std::size_t LogHistogram::BucketIndex(std::uint64_t value) const {
  if (value < (std::uint64_t{1} << sub_bits_)) {
    return static_cast<std::size_t>(value);  // exact region: one per value
  }
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = e - sub_bits_;
  const std::uint64_t sub = (value >> shift) - (std::uint64_t{1} << sub_bits_);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(shift + 1) << sub_bits_) + sub);
}

std::uint64_t LogHistogram::BucketLower(std::size_t index) const {
  const std::uint64_t i = index;
  if (i < (std::uint64_t{1} << sub_bits_)) return i;
  const std::uint64_t g = i >> sub_bits_;  // 1-based octave group
  const std::uint64_t sub = i & ((std::uint64_t{1} << sub_bits_) - 1);
  return ((std::uint64_t{1} << sub_bits_) + sub) << (g - 1);
}

std::uint64_t LogHistogram::BucketUpper(std::size_t index) const {
  const std::uint64_t i = index;
  if (i < (std::uint64_t{1} << sub_bits_)) return i;
  const std::uint64_t g = i >> sub_bits_;
  const std::uint64_t width = std::uint64_t{1} << (g - 1);
  return BucketLower(index) + (width - 1);
}

void LogHistogram::RecordN(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  count_ += n;
  sum_ += value * n;
  buckets_[BucketIndex(value)] += n;
}

void LogHistogram::Merge(const LogHistogram& other) {
  assert(sub_bits_ == other.sub_bits_ &&
         "merging histograms with different bucket geometry");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

std::uint64_t LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_;
  if (q < 0.0) q = 0.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The exact max is a tighter upper bound than the last bucket's edge.
      const std::uint64_t upper = BucketUpper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;  // unreachable: counts always sum to count_
}

double LogHistogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

void LogHistogram::Clear() {
  count_ = sum_ = min_ = max_ = 0;
  buckets_.assign(buckets_.size(), 0);
}

}  // namespace converse::util
