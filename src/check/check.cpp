// CciCheck implementation — see include/converse/check.h for the contract.
//
// The checker keeps two kinds of state:
//  * a process-wide registry of live CmiAlloc'd buffers (mutex-guarded hash
//    set), which makes double-free and foreign-pointer-free reports precise
//    instead of relying on reading a magic word through a dangling pointer;
//  * a per-buffer ownership state carried in the low bits of
//    MsgHeader::flags (owned -> in-flight -> delivering -> owned/freed, plus
//    enqueued for scheduler-queue residency).
//
// Everything in this file except the cold diagnostic sinks is compiled only
// when CONVERSE_CHECK_ENABLED is set; the hooks are empty inlines otherwise.
#include "converse/check.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "converse/msg.h"
#include "core/pe_state.h"

#if CONVERSE_CHECK_ENABLED
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#endif

namespace converse {

const char* CciRuleName(CciRule rule) {
  switch (rule) {
    case CciRule::kDoubleFree: return "double-free";
    case CciRule::kForeignFree: return "foreign-free";
    case CciRule::kUseAfterFree: return "use-after-free";
    case CciRule::kUseAfterSend: return "use-after-send";
    case CciRule::kUngrabbedFree: return "ungrabbed-free";
    case CciRule::kUngrabbedSend: return "ungrabbed-send";
    case CciRule::kDoubleGrab: return "double-grab";
    case CciRule::kGrabOutsideDelivery: return "grab-outside-delivery";
    case CciRule::kDoubleEnqueue: return "double-enqueue";
    case CciRule::kEnqueueNotOwned: return "enqueue-not-owned";
    case CciRule::kNoHandler: return "no-handler";
    case CciRule::kBadHandler: return "bad-handler";
    case CciRule::kHandlerDivergence: return "handler-divergence";
    case CciRule::kNonPeThread: return "non-pe-thread";
    case CciRule::kCrossPeAccess: return "cross-pe-access";
    case CciRule::kThreadResumedTwice: return "thread-resumed-twice";
    case CciRule::kThreadUseAfterFree: return "thread-use-after-free";
    case CciRule::kQueueCorruption: return "queue-corruption";
    case CciRule::kExitImbalance: return "exit-imbalance";
    case CciRule::kThreadLeak: return "thread-leak";
    case CciRule::kBufferLeak: return "buffer-leak";
    case CciRule::kGatherOverflow: return "gather-overflow";
  }
  return "unknown";
}

namespace detail::check {
namespace {

#if CONVERSE_CHECK_ENABLED

// Ownership states, carried in MsgHeader::flags bits 0-1.  kStOwned is 0 so
// a header written by uninstrumented code (flags = kMsgFlagNone) reads as
// plainly owned by whoever holds the pointer.
enum MsgOwnState : std::uint8_t {
  kStOwned = 0,       // caller owns the buffer (fresh, grabbed, dequeued)
  kStInFlight = 1,    // machine layer owns it (sent, awaiting delivery)
  kStEnqueued = 2,    // sitting in a scheduler queue
  kStDelivering = 3,  // system-owned, a handler is running on it (or it is
                      // the pending CmiGetMsg result)
};
constexpr std::uint8_t kStateMask = 0x3;

MsgOwnState State(const void* msg) {
  return static_cast<MsgOwnState>(Header(msg)->flags & kStateMask);
}
void SetState(void* msg, MsgOwnState s) {
  auto* h = Header(msg);
  // A shared-broadcast view is one physical header dispatched concurrently
  // on every PE of the tree; writing per-PE ownership state into it would
  // be a data race (and nonsense — the block's refcount is the ownership).
  // The view's state bits are cleared at the root and stay kStOwned.
  if ((h->flags & kMsgFlagShared) != 0) return;
  h->flags = static_cast<std::uint8_t>((h->flags & ~kStateMask) | s);
}

struct Registry {
  std::mutex mu;
  std::unordered_map<void*, std::size_t> live;  // ptr -> allocation bytes
  // Recently freed pointers (bounded FIFO + set).  Lets OnFree distinguish
  // double-free from foreign-free WITHOUT dereferencing a dangling pointer,
  // so the checker itself stays clean under AddressSanitizer.
  std::unordered_set<void*> freed;
  std::deque<void*> freed_fifo;
};
constexpr std::size_t kFreedHistoryCap = 8192;
Registry& Reg() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_grabs{0};

/// Poison byte written over freed payloads so a use-after-free reads as
/// garbage deterministically instead of silently working.
constexpr unsigned char kPoison = 0xDB;

#endif  // CONVERSE_CHECK_ENABLED

std::atomic_uint64_t g_warnings{0};

int CurrentPe() {
  const PeState* pe = Cpv();
  return pe != nullptr ? pe->mype : -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cold diagnostic sinks (always compiled; call sites gate on
// CciCheckEnabled() which constant-folds when the checker is off).
// ---------------------------------------------------------------------------

void Violate(CciRule rule, const void* buffer, const char* fmt, ...) {
  char detail[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(detail, sizeof(detail), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[CciCheck] fatal: rule=%s pe=%d buffer=%p : %s\n",
               CciRuleName(rule), CurrentPe(), buffer, detail);
  std::fflush(stderr);
  std::abort();
}

void Warn(CciRule rule, const char* fmt, ...) {
  char detail[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(detail, sizeof(detail), fmt, ap);
  va_end(ap);
  g_warnings.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "[CciCheck] warning: rule=%s pe=%d : %s\n",
               CciRuleName(rule), CurrentPe(), detail);
}

void OnGrabMiss(void* msg) {
  Violate(CciRule::kGrabOutsideDelivery, msg,
          "CmiGrabBuffer on a buffer this PE is not currently delivering "
          "(wrong PE, already-freed delivery, or a pointer that was never a "
          "delivered message)");
}

#if CONVERSE_CHECK_ENABLED

// ---------------------------------------------------------------------------
// Buffer lifecycle
// ---------------------------------------------------------------------------

void OnAlloc(void* msg, std::size_t nbytes) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  Registry& r = Reg();
  std::scoped_lock lk(r.mu);
  r.live[msg] = nbytes;
  r.freed.erase(msg);  // the address has been legitimately reused
  // CmiAlloc just wrote a fresh header (flags = 0 == kStOwned).
}

void OnFree(void* msg) {
  {
    Registry& r = Reg();
    std::scoped_lock lk(r.mu);
    if (r.live.count(msg) == 0) {
      // Do NOT dereference msg here: it is either freed or never ours.
      if (r.freed.count(msg) != 0) {
        Violate(CciRule::kDoubleFree, msg,
                "CmiFree of an already-freed message");
      }
      if (reinterpret_cast<std::uintptr_t>(msg) % 16 != 0) {
        Violate(CciRule::kForeignFree, msg,
                "CmiFree of a misaligned pointer that cannot have come from "
                "CmiAlloc");
      }
      Violate(CciRule::kForeignFree, msg,
              "CmiFree of a pointer that is not a live CmiAlloc'd message");
    }
  }
  const MsgHeader* h = Header(msg);
  if (h->magic != kMsgMagicAlive) {
    Violate(CciRule::kForeignFree, msg,
            "CmiFree of a live allocation whose header magic is corrupted "
            "(0x%08x)", h->magic);
  }
  switch (State(msg)) {
    case kStOwned:
      break;
    case kStInFlight:
      Violate(CciRule::kUseAfterSend, msg,
              "CmiFree of a buffer already handed to the machine layer "
              "(handler %u, size %u): the sender gave up ownership",
              h->handler, h->total_size);
    case kStEnqueued:
      Violate(CciRule::kUseAfterSend, msg,
              "CmiFree of a message still in a scheduler queue "
              "(handler %u, size %u)", h->handler, h->total_size);
    case kStDelivering:
      Violate(CciRule::kUngrabbedFree, msg,
              "CmiFree of a system-owned buffer being delivered (handler %u, "
              "size %u); call CmiGrabBuffer first", h->handler,
              h->total_size);
  }
  std::size_t alloc_bytes = 0;
  {
    Registry& r = Reg();
    std::scoped_lock lk(r.mu);
    auto it = r.live.find(msg);
    alloc_bytes = it->second;
    r.live.erase(it);
    if (r.freed.insert(msg).second) {
      r.freed_fifo.push_back(msg);
      if (r.freed_fifo.size() > kFreedHistoryCap) {
        r.freed.erase(r.freed_fifo.front());
        r.freed_fifo.pop_front();
      }
    }
  }
  g_frees.fetch_add(1, std::memory_order_relaxed);
  // Poison the payload (using the registry's allocation size, immune to a
  // corrupted total_size field) so a kept pointer reads deterministic junk.
  if (alloc_bytes > sizeof(MsgHeader)) {
    std::memset(CmiMsgPayload(msg), kPoison,
                alloc_bytes - sizeof(MsgHeader));
  }
}

void OnReclaim(void* msg) {
  // Machine-layer teardown / scatter consumption: the machine owns whatever
  // it drains, regardless of the recorded state.
  SetState(msg, kStOwned);
}

void OnCopyReset(void* msg) {
  // CopyMessage memcpy'd a foreign header over this fresh allocation; the
  // copy is a brand-new owned buffer whatever the original's state was.
  SetState(msg, kStOwned);
}

void OnSend(void* msg) {
  const MsgHeader* h = Header(msg);
  if (h->magic != kMsgMagicAlive) {
    Violate(CciRule::kUseAfterFree, msg,
            "send of a freed message (header magic 0x%08x)", h->magic);
  }
  switch (State(msg)) {
    case kStOwned:
      break;
    case kStInFlight:
      Violate(CciRule::kUseAfterSend, msg,
              "send of a buffer already handed to the machine layer "
              "(handler %u, size %u): double send-and-free?", h->handler,
              h->total_size);
    case kStEnqueued:
      Violate(CciRule::kUseAfterSend, msg,
              "send of a message still in a scheduler queue (handler %u, "
              "size %u)", h->handler, h->total_size);
    case kStDelivering:
      Violate(CciRule::kUngrabbedSend, msg,
              "send-and-free of a system-owned buffer being delivered "
              "(handler %u, size %u); call CmiGrabBuffer first", h->handler,
              h->total_size);
  }
  SetState(msg, kStInFlight);
}

void OnEnqueue(void* msg) {
  const MsgHeader* h = Header(msg);
  if (h->magic != kMsgMagicAlive) {
    Violate(CciRule::kUseAfterFree, msg,
            "enqueue of a freed message (header magic 0x%08x)", h->magic);
  }
  switch (State(msg)) {
    case kStOwned:
      break;
    case kStEnqueued:
      Violate(CciRule::kDoubleEnqueue, msg,
              "enqueue of a message already in a scheduler queue "
              "(handler %u, size %u)", h->handler, h->total_size);
    case kStInFlight:
      Violate(CciRule::kEnqueueNotOwned, msg,
              "enqueue of a buffer owned by the machine layer (handler %u, "
              "size %u)", h->handler, h->total_size);
    case kStDelivering:
      Violate(CciRule::kEnqueueNotOwned, msg,
              "enqueue of a system-owned buffer being delivered "
              "(handler %u, size %u); call CmiGrabBuffer first", h->handler,
              h->total_size);
  }
  SetState(msg, kStEnqueued);
}

void OnDequeue(void* msg) {
  const MsgHeader* h = Header(msg);
  if (h->magic != kMsgMagicAlive) {
    Violate(CciRule::kQueueCorruption, msg,
            "scheduler queue returned a freed or corrupted message (header "
            "magic 0x%08x); something freed a queued buffer", h->magic);
  }
  // Shared-broadcast views never carry state bits (see SetState), so a
  // grabbed-then-enqueued view legitimately dequeues as kStOwned.
  if ((h->flags & kMsgFlagShared) == 0 && State(msg) != kStEnqueued) {
    Violate(CciRule::kQueueCorruption, msg,
            "scheduler queue returned a message whose ownership state is "
            "%d, not enqueued; the queue or the header was corrupted",
            static_cast<int>(State(msg)));
  }
  SetState(msg, kStOwned);
}

void OnDeliverBegin(void* msg, bool system_owned) {
  const MsgHeader* h = Header(msg);
  if (h->magic != kMsgMagicAlive) {
    Violate(CciRule::kUseAfterFree, msg,
            "dispatch of a freed message (header magic 0x%08x, handler %u)",
            h->magic, h->handler);
  }
  if (system_owned) SetState(msg, kStDelivering);
}

void OnDeliverEnd(void* msg) {
  // Handler returned without grabbing; the dispatcher frees the buffer now.
  SetState(msg, kStOwned);
}

void OnMmiReturn(void* msg) {
  // Buffer returned by CmiGetMsg/CmiGetSpecificMsg: MMI-owned until the
  // next MMI call unless grabbed.
  SetState(msg, kStDelivering);
}

void OnGrab(void* msg, bool already_grabbed) {
  g_grabs.fetch_add(1, std::memory_order_relaxed);
  if (already_grabbed) {
    Violate(CciRule::kDoubleGrab, msg,
            "CmiGrabBuffer called twice for the same delivery (handler %u)",
            Header(msg)->handler);
  }
  SetState(msg, kStOwned);
}

// ---------------------------------------------------------------------------
// Handler table
// ---------------------------------------------------------------------------

void OnHandlerRegister() {
  PeState& pe = CpvChecked();
  pe.published_handlers.store(static_cast<std::uint32_t>(pe.handlers.size()),
                              std::memory_order_release);
}

void OnDispatchHandler(const void* msg, std::size_t table_size) {
  const MsgHeader* h = Header(msg);
  if (h->handler == 0xffffffffu) {
    Violate(CciRule::kNoHandler, msg,
            "dispatch of a message whose handler was never set (size %u, "
            "src pe %u); call CmiSetHandler before sending", h->total_size,
            h->source_pe);
  }
  if (h->handler >= table_size) {
    const PeState* pe = Cpv();
    // The divergence diagnostic peeks at the sender's published handler
    // count, which only exists when the sender PE is hosted in this
    // process (multi-node machines host a contiguous slice).
    if (pe != nullptr && pe->machine != nullptr &&
        h->source_pe < pe->npes &&
        pe->machine->IsLocalPe(h->source_pe)) {
      const std::uint32_t src_count =
          pe->machine->Pe(h->source_pe)
              .published_handlers.load(std::memory_order_acquire);
      if (h->handler < src_count) {
        Violate(CciRule::kHandlerDivergence, msg,
                "handler %u is registered on sender PE %u (%u handlers) but "
                "not on this PE (%zu handlers); per-PE handler tables "
                "diverged — register handlers identically on every PE",
                h->handler, h->source_pe, src_count, table_size);
      }
    }
    Violate(CciRule::kBadHandler, msg,
            "handler index %u is outside this PE's handler table "
            "(%zu registered)", h->handler, table_size);
  }
}

// ---------------------------------------------------------------------------
// Cross-PE / scheduler invariants
// ---------------------------------------------------------------------------

void CheckInsidePe(const void* where) {
  if (Cpv() == nullptr) {
    Violate(CciRule::kNonPeThread, nullptr,
            "%s called from a thread that is not a PE of a running machine",
            static_cast<const char*>(where));
  }
}

void OnPeFinish() {
  PeState& pe = CpvChecked();
  if (pe.exit_requested) {
    Warn(CciRule::kExitImbalance,
         "PE %d finished with an unconsumed CsdExitScheduler request; "
         "CsdExitScheduler was called more times than schedulers ran",
         pe.mype);
  }
}

#endif  // CONVERSE_CHECK_ENABLED

}  // namespace detail::check

CciCounters CciCheckCounters() {
  CciCounters out;
#if CONVERSE_CHECK_ENABLED
  {
    auto& r = detail::check::Reg();
    std::scoped_lock lk(r.mu);
    out.live_buffers = static_cast<std::int64_t>(r.live.size());
  }
  out.allocs = detail::check::g_allocs.load(std::memory_order_relaxed);
  out.frees = detail::check::g_frees.load(std::memory_order_relaxed);
  out.grabs = detail::check::g_grabs.load(std::memory_order_relaxed);
#endif
  out.warnings =
      detail::check::g_warnings.load(std::memory_order_relaxed);
  return out;
}

}  // namespace converse
