#include "threads/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace converse::detail {
namespace {

// The fiber that the in-flight SwitchTo is starting for the first time.
// Set immediately before the switch, consumed by the trampoline on the new
// stack; no other switch can interleave on the same OS thread.
thread_local Fiber* g_starting = nullptr;

std::size_t PageSize() {
  static const std::size_t ps =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t RoundUpToPage(std::size_t n) {
  const std::size_t ps = PageSize();
  return (n + ps - 1) / ps * ps;
}

/// Per-OS-thread (== per PE) cache of guarded stack mappings.  Thread
/// creation cost is dominated by mmap+mprotect+munmap; language runtimes
/// like tSM and mdt create threads per message, so recycling mappings of
/// the common (default) size is a large win — see bench/thread_switch's
/// create/run/exit series.  Bounded; surplus mappings are unmapped.
class StackPool {
 public:
  ~StackPool() {
    for (const Entry& e : free_) ::munmap(e.map_base, e.map_bytes);
  }

  /// A cached mapping of exactly `map_bytes` (guard page included and
  /// already PROT_NONE), or nullptr.
  void* Acquire(std::size_t map_bytes) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].map_bytes == map_bytes) {
        void* base = free_[i].map_base;
        free_[i] = free_.back();
        free_.pop_back();
        ++hits_;
        return base;
      }
    }
    return nullptr;
  }

  void Release(void* map_base, std::size_t map_bytes) {
    if (free_.size() >= kMaxCached) {
      ::munmap(map_base, map_bytes);
      return;
    }
    free_.push_back(Entry{map_base, map_bytes});
  }

  std::uint64_t hits() const { return hits_; }

 private:
  struct Entry {
    void* map_base;
    std::size_t map_bytes;
  };
  static constexpr std::size_t kMaxCached = 16;
  std::vector<Entry> free_;
  std::uint64_t hits_ = 0;
};

thread_local StackPool g_stack_pool;

}  // namespace

std::uint64_t FiberStackPoolHits() { return g_stack_pool.hits(); }

#if CONVERSE_HAVE_ASM_FIBERS

// void conv_fiber_swap(void** save_sp, void* restore_sp)
//
// Saves the System V x86-64 callee-saved state (rbp, rbx, r12-r15, plus the
// x87 control word and mxcsr, which the ABI requires callees to preserve)
// on the current stack, publishes the resulting stack pointer through
// *save_sp, switches to restore_sp and restores symmetrically.  rdi/rsi are
// caller-saved so they need no preservation.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl conv_fiber_swap\n"
    ".type conv_fiber_swap, @function\n"
    "conv_fiber_swap:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq  $8, %rsp\n"
    "  stmxcsr 4(%rsp)\n"
    "  fnstcw  (%rsp)\n"
    "  movq  %rsp, (%rdi)\n"
    "  movq  %rsi, %rsp\n"
    "  fldcw   (%rsp)\n"
    "  ldmxcsr 4(%rsp)\n"
    "  addq  $8, %rsp\n"
    "  popq  %r15\n"
    "  popq  %r14\n"
    "  popq  %r13\n"
    "  popq  %r12\n"
    "  popq  %rbx\n"
    "  popq  %rbp\n"
    "  retq\n"
    ".size conv_fiber_swap, .-conv_fiber_swap\n");

extern "C" void conv_fiber_swap(void** save_sp, void* restore_sp);

namespace {

/// Capture the current x87 control word and mxcsr so a fresh fiber starts
/// with the thread's prevailing FP environment.
void CaptureFpState(std::uint16_t* fcw, std::uint32_t* mxcsr) {
  __asm__ __volatile__("fnstcw %0" : "=m"(*fcw));
  __asm__ __volatile__("stmxcsr %0" : "=m"(*mxcsr));
}

}  // namespace

#endif  // CONVERSE_HAVE_ASM_FIBERS

bool Fiber::BackendAvailable(Backend b) {
  switch (b) {
    case Backend::kUcontext:
      return true;
    case Backend::kAsm:
      return CONVERSE_HAVE_ASM_FIBERS != 0;
  }
  return false;
}

Fiber::Fiber(Backend backend) : backend_(backend), started_(true) {
  assert(BackendAvailable(backend));
}

Fiber::Fiber(Backend backend, std::size_t stack_bytes,
             std::function<void()> entry)
    : backend_(backend), entry_(std::move(entry)) {
  assert(BackendAvailable(backend));
  assert(stack_bytes >= 4096 && "fiber stack unreasonably small");

  stack_bytes_ = RoundUpToPage(stack_bytes);
  map_bytes_ = stack_bytes_ + PageSize();  // + guard page below the stack
  void* map = g_stack_pool.Acquire(map_bytes_);
  if (map == nullptr) {
    map = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map == MAP_FAILED) {
      throw std::runtime_error("Fiber: mmap of stack failed");
    }
    if (::mprotect(map, PageSize(), PROT_NONE) != 0) {
      ::munmap(map, map_bytes_);
      throw std::runtime_error("Fiber: mprotect of guard page failed");
    }
  }
  map_base_ = map;
  stack_base_ = static_cast<char*>(map) + PageSize();

  if (backend_ == Backend::kUcontext) {
    if (getcontext(&ctx_) != 0) {
      throw std::runtime_error("Fiber: getcontext failed");
    }
    ctx_.uc_stack.ss_sp = stack_base_;
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = nullptr;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 0);
    return;
  }

#if CONVERSE_HAVE_ASM_FIBERS
  // Prime the stack so the restore path of conv_fiber_swap lands in
  // Trampoline.  Layout (downward from the 16-byte-aligned top):
  //   [top- 8]  0                  backtrace terminator / fake return addr
  //   [top-16]  &Trampoline        the address `retq` will pop
  //   [top-64]  6 callee-saved qwords (zero)
  //   [top-72]  fcw (2 bytes) + pad + mxcsr (4 bytes at +4)
  // After the restore sequence pops everything and `retq` fires, rsp ==
  // top-8, i.e. rsp % 16 == 8, exactly the ABI state at a function entry.
  auto top = reinterpret_cast<std::uintptr_t>(stack_base_) + stack_bytes_;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* sp = reinterpret_cast<std::uint64_t*>(top);
  *--sp = 0;  // fake return address above Trampoline
  *--sp = reinterpret_cast<std::uint64_t>(&Fiber::Trampoline);
  for (int i = 0; i < 6; ++i) *--sp = 0;  // r15, r14, r13, r12, rbx, rbp
  sp = reinterpret_cast<std::uint64_t*>(reinterpret_cast<char*>(sp) - 8);
  std::uint16_t fcw = 0;
  std::uint32_t mxcsr = 0;
  CaptureFpState(&fcw, &mxcsr);
  std::memset(sp, 0, 8);
  std::memcpy(reinterpret_cast<char*>(sp), &fcw, sizeof(fcw));
  std::memcpy(reinterpret_cast<char*>(sp) + 4, &mxcsr, sizeof(mxcsr));
  sp_ = sp;
#else
  assert(false && "asm fiber backend not available in this build");
#endif
}

Fiber::~Fiber() {
  if (map_base_ != nullptr) {
    g_stack_pool.Release(map_base_, map_bytes_);
  }
}

void Fiber::ReleaseStack() {
  if (map_base_ != nullptr) {
    g_stack_pool.Release(map_base_, map_bytes_);
    map_base_ = nullptr;
    stack_base_ = nullptr;
    map_bytes_ = 0;
  }
}

void Fiber::SwitchTo(Fiber& target) {
  assert(backend_ == target.backend_ &&
         "cannot switch between fibers of different backends");
  assert(this != &target);
  if (!target.started_) {
    g_starting = &target;
  }
  if (backend_ == Backend::kUcontext) {
    [[maybe_unused]] const int rc = swapcontext(&ctx_, &target.ctx_);
    assert(rc == 0);
  } else {
#if CONVERSE_HAVE_ASM_FIBERS
    conv_fiber_swap(&sp_, target.sp_);
#else
    assert(false);
#endif
  }
}

void Fiber::Trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->RunEntry();
}

void Fiber::RunEntry() {
  started_ = true;
  entry_();
  // A fiber entry must end in CthExit (the Cth layer arranges this even
  // when the user function returns). Reaching here is a runtime bug.
  assert(false && "fiber entry returned without switching away");
  __builtin_trap();
}

}  // namespace converse::detail
