#include "converse/cts.h"

#include <cassert>
#include <deque>

#include "converse/cth.h"
#include "core/pe_state.h"

namespace converse {

// All three objects remember their owning PE so misuse across PEs is caught
// in debug builds; they contain no atomics because they are cooperative.

struct LOCK {
  int pe;
  CthThread* owner = nullptr;
  std::deque<CthThread*> waiters;
};

struct CONDN {
  int pe;
  std::deque<CthThread*> waiters;
};

struct BARRIER {
  int pe;
  int target = 0;
  int arrived = 0;
  std::deque<CthThread*> waiters;
};

namespace {
int MyPe() { return detail::CpvChecked().mype; }
}  // namespace

// ---- Locks -----------------------------------------------------------------

LOCK* CtsNewLock() { return new LOCK{MyPe(), nullptr, {}}; }

void CtsLockInit(LOCK* lock) {
  assert(lock->waiters.empty() && "CtsLockInit with queued waiters");
  lock->pe = MyPe();
  lock->owner = nullptr;
}

int CtsTryLock(LOCK* lock) {
  assert(lock->pe == MyPe() && "Cts objects are PE-local");
  if (lock->owner == nullptr) {
    lock->owner = CthSelf();
    return 1;
  }
  return 0;
}

int CtsLock(LOCK* lock) {
  assert(lock->pe == MyPe() && "Cts objects are PE-local");
  CthThread* self = CthSelf();
  if (lock->owner == nullptr) {
    lock->owner = self;
    return 0;
  }
  if (lock->owner == self) {
    // Non-recursive lock: self-deadlock would be silent, so fail loudly.
    assert(false && "CtsLock: relocking a lock the thread already owns");
    return -1;
  }
  lock->waiters.push_back(self);
  CthSuspend();
  // Ownership was transferred to us by the releasing thread (paper §3.2.3:
  // "releases the lock causes the shifting of ownership ... and awakens").
  assert(lock->owner == self);
  return 0;
}

int CtsUnLock(LOCK* lock) {
  assert(lock->pe == MyPe() && "Cts objects are PE-local");
  if (lock->owner != CthSelf()) return -1;
  if (lock->waiters.empty()) {
    lock->owner = nullptr;
    return 0;
  }
  CthThread* next = lock->waiters.front();
  lock->waiters.pop_front();
  lock->owner = next;
  CthAwaken(next);
  return 0;
}

void CtsFreeLock(LOCK* lock) {
  assert(lock == nullptr ||
         (lock->owner == nullptr && lock->waiters.empty()));
  delete lock;
}

CthThread* CtsLockOwner(const LOCK* lock) { return lock->owner; }
std::size_t CtsLockWaiters(const LOCK* lock) { return lock->waiters.size(); }

// ---- Condition variables ----------------------------------------------------

CONDN* CtsNewCondn() { return new CONDN{MyPe(), {}}; }

int CtsCondnBroadcast(CONDN* condn) {
  assert(condn->pe == MyPe() && "Cts objects are PE-local");
  int released = 0;
  while (!condn->waiters.empty()) {
    CthThread* t = condn->waiters.front();
    condn->waiters.pop_front();
    CthAwaken(t);
    ++released;
  }
  return released;
}

int CtsCondnInit(CONDN* condn) {
  // Per the appendix, (re)initialization awakens all current waiters.
  const int released = condn->waiters.empty() ? 0 : CtsCondnBroadcast(condn);
  condn->pe = MyPe();
  return released;
}

int CtsCondnWait(CONDN* condn) {
  assert(condn->pe == MyPe() && "Cts objects are PE-local");
  condn->waiters.push_back(CthSelf());
  CthSuspend();
  return 0;
}

int CtsCondnSignal(CONDN* condn) {
  assert(condn->pe == MyPe() && "Cts objects are PE-local");
  if (condn->waiters.empty()) return 0;
  CthThread* t = condn->waiters.front();
  condn->waiters.pop_front();
  CthAwaken(t);
  return 1;
}

void CtsFreeCondn(CONDN* condn) {
  assert(condn == nullptr || condn->waiters.empty());
  delete condn;
}

std::size_t CtsCondnWaiters(const CONDN* condn) {
  return condn->waiters.size();
}

// ---- Barriers ----------------------------------------------------------------

BARRIER* CtsNewBarrier() { return new BARRIER{MyPe(), 0, 0, {}}; }

int CtsBarrierReinit(BARRIER* bar, int num) {
  assert(num >= 1);
  bar->pe = MyPe();
  while (!bar->waiters.empty()) {
    CthThread* t = bar->waiters.front();
    bar->waiters.pop_front();
    CthAwaken(t);
  }
  bar->target = num;
  bar->arrived = 0;
  return 0;
}

int CtsAtBarrier(BARRIER* bar) {
  assert(bar->pe == MyPe() && "Cts objects are PE-local");
  assert(bar->target >= 1 && "barrier used before CtsBarrierReinit");
  ++bar->arrived;
  if (bar->arrived < bar->target) {
    bar->waiters.push_back(CthSelf());
    CthSuspend();
    return 0;
  }
  // kth arrival: broadcast and reset for reuse.
  while (!bar->waiters.empty()) {
    CthThread* t = bar->waiters.front();
    bar->waiters.pop_front();
    CthAwaken(t);
  }
  bar->arrived = 0;
  return 0;
}

void CtsFreeBarrier(BARRIER* bar) {
  assert(bar == nullptr || bar->waiters.empty());
  delete bar;
}

}  // namespace converse
