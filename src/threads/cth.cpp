// Thread objects — implementation (paper §3.2.2).
#include "converse/cth.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <unordered_set>

#include "converse/check.h"
#include "converse/cmi.h"
#include "converse/csd.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"
#include "threads/fiber.h"

namespace converse {

struct CthThread {
  detail::Fiber fiber;
  std::function<void()> fn;  // user entry (empty for the main thread)
  bool exiting = false;
  int owner_pe = -1;  // PE whose scheduler owns this thread (CciCheck)
  void* user_data = nullptr;
  // Per-thread scheduling strategy (paper's CthSetStrategy); empty = default.
  std::function<void()> suspend_fn;
  std::function<void(CthThread*)> awaken_fn;

  // Main-thread constructor.
  explicit CthThread(detail::Fiber::Backend backend) : fiber(backend) {}
  CthThread(detail::Fiber::Backend backend, std::size_t stack_bytes,
            std::function<void()> entry)
      : fiber(backend, stack_bytes, std::move(entry)) {}
};

namespace {

detail::Fiber::Backend ToFiber(CthBackend b) {
  return b == CthBackend::kAsm ? detail::Fiber::Backend::kAsm
                               : detail::Fiber::Backend::kUcontext;
}

struct CthPeState {
  CthBackend backend = CthDefaultBackend();
  CthThread* main = nullptr;     // the PE's scheduler context
  CthThread* current = nullptr;  // currently running thread
  CthThread* zombie = nullptr;   // exited thread awaiting stack reclaim
  int resume_handler = -1;       // handler of "resume thread" messages
  std::unordered_set<CthThread*> live;  // user threads (for teardown)
  // CciCheck quarantine: recently retired (exited/freed) thread objects are
  // kept here instead of being deleted, so a stale CthThread* can be
  // diagnosed by rule (resumed-twice vs use-after-free) without the checker
  // itself reading freed memory.  Bounded; empty when the checker is off.
  std::deque<CthThread*> graveyard;
  std::uint64_t switches = 0;
};

int ModuleId();

CthPeState& St() {
  return *static_cast<CthPeState*>(converse::detail::ModuleState(ModuleId()));
}

/// CciCheck: validate a thread-object operation against the owning PE's
/// live set.  Catches cross-PE thread access (a PE awakening/resuming a
/// thread whose stack and ready-message belong to another PE's scheduler)
/// and operations on freed/exited thread objects.
void CheckThreadOp(const CthPeState& st, CthThread* thr, const char* op,
                   bool is_resume = false) {
  if (!CciCheckEnabled() || thr == nullptr || thr == st.main) return;
  if (st.live.count(thr) != 0) return;
  using converse::detail::check::Violate;
  const int mype = CmiMyPe();
  // Retired on this PE: the quarantine still holds the object, so its
  // fields are safe to read for a precise diagnosis.
  for (const CthThread* g : st.graveyard) {
    if (g != thr) continue;
    if (is_resume && thr->exiting) {
      Violate(CciRule::kThreadResumedTwice, thr,
              "%s of a thread that already exited; it was awakened twice or "
              "resumed after CthExit", op);
    }
    Violate(CciRule::kThreadUseAfterFree, thr,
            "%s of a thread object already retired on this PE (it exited or "
            "was CthFree'd)", op);
  }
  // Unknown here: either owned by another PE (its owner_pe still reads as
  // that PE) or freed on this one (owner_pe reads as this PE or garbage).
  if (thr->owner_pe >= 0 && thr->owner_pe != mype) {
    Violate(CciRule::kCrossPeAccess, thr,
            "%s of a thread object owned by PE %d from PE %d; thread "
            "objects are private to the PE that created them", op,
            thr->owner_pe, mype);
  }
  Violate(CciRule::kThreadUseAfterFree, thr,
          "%s of a thread object not live on this PE (already freed or "
          "exited)", op);
}

/// Retire a thread object.  With the checker on it goes to the bounded
/// graveyard (see CthPeState) instead of straight to the heap.
void RetireThread(CthPeState& st, CthThread* thr) {
  st.live.erase(thr);
  if (!CciCheckEnabled()) {
    delete thr;
    return;
  }
  // The stack goes back to the pool immediately; only the small CthThread
  // node is quarantined for stale-handle diagnosis.
  thr->fiber.ReleaseStack();
  st.graveyard.push_back(thr);
  constexpr std::size_t kGraveyardCap = 1024;  // bounds quarantined nodes
  if (st.graveyard.size() > kGraveyardCap) {
    delete st.graveyard.front();
    st.graveyard.pop_front();
  }
}

void ReapZombie(CthPeState& st) {
  if (st.zombie != nullptr && st.zombie != st.current) {
    CthThread* z = st.zombie;
    st.zombie = nullptr;
    RetireThread(st, z);
  }
}

/// The generalized message that makes a ready thread schedulable: payload
/// is the CthThread pointer; the handler resumes it (paper §3.1.1 item 2).
void ResumeHandler(void* msg) {
  CthThread* thr = nullptr;
  std::memcpy(&thr, CmiMsgPayload(msg), sizeof(thr));
  // CthAwaken enqueues, so normally we own the message; if it somehow
  // arrived system-owned (direct send), take ownership so the dispatcher
  // does not free it behind our back.
  converse::detail::PeState& pe = converse::detail::CpvChecked();
  if (!pe.sysbuf_stack.empty() && pe.sysbuf_stack.back().msg == msg) {
    CmiGrabBuffer(&msg);
  }
  // Free *before* resuming: the thread may not return control here soon.
  CmiFree(msg);
  CthResume(thr);
}

int ModuleId() {
  static const int id = converse::detail::RegisterModule(
      "cth",
      [](int module_id) {
        auto* st = new CthPeState;
        st->resume_handler = CmiRegisterHandler(&ResumeHandler);
        converse::detail::SetModuleState(module_id, st);
        // The main thread object is created lazily on first Cth use so the
        // backend can still be chosen by CthInit.
      },
      [](void* state) {
        auto* st = static_cast<CthPeState*>(state);
        st->zombie = nullptr;
        if (CciCheckEnabled() && !st->live.empty()) {
          converse::detail::check::Warn(
              CciRule::kThreadLeak,
              "PE %d tears down with %d live thread objects (created or "
              "suspended but never resumed, exited, or freed)", CmiMyPe(),
              static_cast<int>(st->live.size()));
        }
        for (CthThread* t : st->live) delete t;  // reclaim leaked stacks
        for (CthThread* t : st->graveyard) delete t;
        delete st->main;
        delete st;
      });
  return id;
}

/// Ensure the PE has its main thread object (the scheduler context).
CthPeState& StReady() {
  CthPeState& st = St();
  if (st.main == nullptr) {
    st.main = new CthThread(ToFiber(st.backend));
    st.main->owner_pe = CmiMyPe();
    st.current = st.main;
  }
  return st;
}

void DefaultSuspend(CthPeState& st) {
  assert(st.current != st.main &&
         "CthSuspend called from the scheduler context");
  CthResume(st.main);
}

void DefaultAwaken(CthPeState& st, CthThread* thr, bool has_prio,
                   std::int32_t prio) {
  void* msg = CmiAlloc(CmiMsgHeaderSizeBytes() + sizeof(CthThread*));
  CmiSetHandler(msg, st.resume_handler);
  std::memcpy(CmiMsgPayload(msg), &thr, sizeof(thr));
  if (has_prio) {
    CsdEnqueueIntPrio(msg, prio);
  } else {
    CsdEnqueue(msg);
  }
}

}  // namespace

CthBackend CthDefaultBackend() {
#if CONVERSE_HAVE_ASM_FIBERS
  return CthBackend::kAsm;
#else
  return CthBackend::kUcontext;
#endif
}

bool CthBackendAvailable(CthBackend backend) {
  return detail::Fiber::BackendAvailable(ToFiber(backend));
}

void CthInit(CthBackend backend) {
  CthPeState& st = St();
  assert(st.main == nullptr &&
         "CthInit must run before any thread activity on this PE");
  assert(CthBackendAvailable(backend));
  st.backend = backend;
}

CthThread* CthCreate(std::function<void()> fn) {
  return CthCreateOfSize(std::move(fn),
                         detail::CpvChecked().machine->config()
                             .default_stack_bytes);
}

CthThread* CthCreateOfSize(std::function<void()> fn,
                           std::size_t stack_bytes) {
  CthPeState& st = StReady();
  ReapZombie(st);  // recycle an exited predecessor's stack right away
  // The fiber entry finds its own CthThread through the current-thread
  // pointer (set by CthResume before the first switch-in), runs the user
  // function, and exits the thread cleanly if that function returns.
  auto* thr = new CthThread(ToFiber(st.backend), stack_bytes, [] {
    CthPeState& s = St();
    ReapZombie(s);  // a predecessor may have exited straight into us
    CthThread* self = s.current;
    self->fn();
    CthExit();
  });
  thr->fn = std::move(fn);
  thr->owner_pe = CmiMyPe();
  st.live.insert(thr);
  return thr;
}

CthThread* CthCreate(void (*fn)(void*), void* arg) {
  return CthCreate([fn, arg] { fn(arg); });
}

void CthResume(CthThread* thr) {
  CthPeState& st = StReady();
  assert(thr != nullptr);
  CheckThreadOp(st, thr, "CthResume", /*is_resume=*/true);
  if (CciCheckEnabled() && thr->exiting) {
    detail::check::Violate(
        CciRule::kThreadResumedTwice, thr,
        "CthResume of a thread that already exited; it was awakened twice "
        "or resumed after CthExit");
  }
  assert(!thr->exiting && "resuming an exited thread");
  CthThread* cur = st.current;
  if (thr == cur) return;
  st.current = thr;
  ++st.switches;
  cur->fiber.SwitchTo(thr->fiber);
  // Control is back in `cur` (someone resumed it); reclaim any thread that
  // exited in the meantime.
  ReapZombie(St());
}

void CthSuspend() {
  CthPeState& st = StReady();
  CthThread* cur = st.current;
  // A thread about to give up the PE is a natural interleaving point for
  // the deterministic simulator (no-op in normal mode).
  detail::SimYieldHere();
  if (cur->suspend_fn) {
    cur->suspend_fn();
  } else {
    DefaultSuspend(st);
  }
}

void CthAwaken(CthThread* thr) {
  CthPeState& st = StReady();
  CheckThreadOp(st, thr, "CthAwaken");
  assert(thr != st.main && "cannot awaken the scheduler context");
  if (thr->awaken_fn) {
    thr->awaken_fn(thr);
  } else {
    DefaultAwaken(st, thr, false, 0);
  }
}

void CthAwakenPrio(CthThread* thr, std::int32_t prio) {
  CthPeState& st = StReady();
  CheckThreadOp(st, thr, "CthAwakenPrio");
  assert(thr != st.main);
  if (thr->awaken_fn) {
    thr->awaken_fn(thr);
  } else {
    DefaultAwaken(st, thr, true, prio);
  }
}

void CthYield() {
  CthAwaken(CthSelf());
  CthSuspend();
}

void CthExit() {
  CthPeState& st = StReady();
  CthThread* cur = st.current;
  assert(cur != st.main && "CthExit from the scheduler context");
  ReapZombie(st);  // make room in the single zombie slot
  cur->exiting = true;
  assert(st.zombie == nullptr);
  st.zombie = cur;
  // Leave per the thread's suspend strategy; nobody will awaken us again.
  if (cur->suspend_fn) {
    cur->suspend_fn();
  } else {
    // Bypass CthResume's exiting assertion by switching directly.
    CthThread* main = st.main;
    st.current = main;
    ++st.switches;
    cur->fiber.SwitchTo(main->fiber);
  }
  assert(false && "resumed an exited thread");
  __builtin_trap();
}

CthThread* CthSelf() { return StReady().current; }

bool CthIsMain(CthThread* thr) { return thr == StReady().main; }

void CthSetStrategy(CthThread* thr, std::function<void()> suspend_fn,
                    std::function<void(CthThread*)> awaken_fn) {
  thr->suspend_fn = std::move(suspend_fn);
  thr->awaken_fn = std::move(awaken_fn);
}

void CthFree(CthThread* thr) {
  CthPeState& st = StReady();
  CheckThreadOp(st, thr, "CthFree");
  assert(thr != st.current && "CthFree of the running thread; use CthExit");
  assert(thr != st.main);
  RetireThread(st, thr);
}

void CthSetData(CthThread* thr, void* data) { thr->user_data = data; }
void* CthGetData(CthThread* thr) { return thr->user_data; }

int CthLiveThreads() { return static_cast<int>(StReady().live.size()); }
std::uint64_t CthSwitchCount() { return StReady().switches; }

}  // namespace converse

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::CthModuleRegister() { return converse::ModuleId(); }
