// Internal fiber (stack + saved context) used by the Cth thread object.
// Two backends: a hand-written x86-64 switch that saves only callee-saved
// state (no sigprocmask syscall, ~an order of magnitude faster than
// swapcontext) and portable ucontext.  Stacks are mmap'd with a PROT_NONE
// guard page below them so overflow faults instead of corrupting the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#if !defined(CONVERSE_HAVE_ASM_FIBERS)
#define CONVERSE_HAVE_ASM_FIBERS 0
#endif

#include <ucontext.h>

namespace converse::detail {

/// Stack-pool reuse count on the calling OS thread (diagnostics/tests).
std::uint64_t FiberStackPoolHits();

class Fiber {
 public:
  enum class Backend { kAsm, kUcontext };

  static bool BackendAvailable(Backend b);

  /// Main-fiber constructor: represents the OS thread's native context;
  /// its state is captured the first time control switches away from it.
  explicit Fiber(Backend backend);

  /// New fiber with its own guarded stack; `entry` runs on first switch-in
  /// and must never return (the Cth layer guarantees CthExit).
  Fiber(Backend backend, std::size_t stack_bytes, std::function<void()> entry);

  ~Fiber();

  /// Return the stack mapping to the calling thread's pool now, ahead of
  /// destruction.  The fiber must never be switched to afterwards.  Used by
  /// the CciCheck thread graveyard, which keeps retired CthThread nodes
  /// around for diagnosis but must not hold their stacks hostage.
  void ReleaseStack();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Save the current context into *this and resume `target`.  Both fibers
  /// must use the same backend and belong to the calling OS thread.
  void SwitchTo(Fiber& target);

  bool is_main() const { return stack_base_ == nullptr; }
  std::size_t stack_bytes() const { return stack_bytes_; }

 private:
  static void Trampoline();
  void RunEntry();

  Backend backend_;
  std::function<void()> entry_;
  bool started_ = false;

  // Stack (nullptr for the main fiber). `map_base_` includes the guard page.
  void* map_base_ = nullptr;
  void* stack_base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t stack_bytes_ = 0;

  // asm backend: saved stack pointer.
  void* sp_ = nullptr;
  // ucontext backend.
  ucontext_t ctx_{};
};

}  // namespace converse::detail
