// Service fuzzing (tools/simfuzz --service): run the request/response
// service of converse/svc.h under the deterministic simulator and check the
// request-conservation oracles of converse/svc.h against the injector's
// exact fault counts.  Mirrors the structure of src/sim/fuzz.cpp: a case is
// a pure function of SvcFuzzParams, failing seeds shrink greedily, and a
// one-line replay command reproduces any failure.
#include <cstdarg>
#include <cstdio>
#include <string>

#include "converse/machine.h"
#include "converse/svc.h"

namespace converse::svc {
namespace {

/// Fixed workload knobs that are not worth fuzzing: a mean service time and
/// a dequeue deadline a few multiples above it, so queue-cap sheds,
/// deadline sheds, and plain completions all occur across the seed space.
constexpr double kServiceUs = 3.0;
constexpr double kDeadlineUs = 30.0;
constexpr std::uint32_t kPlantEvery = 5;

SvcConfig MakeConfig(const SvcFuzzParams& p) {
  SvcConfig cfg;
  cfg.sessions = p.sessions;
  cfg.workers = p.workers;
  cfg.queue_cap = p.queue_cap;
  cfg.service_time_us = kServiceUs;
  cfg.exp_service = true;  // PRNG-drawn, so still deterministic per seed
  cfg.deadline_us = kDeadlineUs;
  if (p.plant_lost_reply) cfg.lose_reply_every = kPlantEvery;
  return cfg;
}

void Fail(SvcFuzzResult& res, const char* fmt, ...) {
  if (!res.failure.empty()) return;
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  res.failure = buf;
}

}  // namespace

SvcFuzzResult RunSvcFuzzCase(const SvcFuzzParams& params) {
  SvcFuzzResult res;
  Service svc(MakeConfig(params), params.npes);

  SimConfig sim;
  sim.seed = params.seed;
  sim.faults = params.faults;
  sim.report = &res.report;

  MachineConfig cfg;
  cfg.npes = params.npes;
  cfg.seed = params.seed;
  cfg.sim = &sim;
  // Always explicit (never the -1 env default): a CONVERSE_AGG in the
  // environment must not silently change what a seed replays.
  cfg.aggregate_sends = 0;

  SvcLoad load;
  load.rate_per_pe = params.rate_per_pe;
  load.requests_per_pe = params.requests_per_pe;
  load.arrival = Arrival::kPoisson;
  load.seed = params.seed;

  try {
    RunConverse(cfg, [&svc, &load](int, int) {
      svc.Start();
      svc.GenerateLoad(load);
      svc.Serve();
    });
  } catch (const std::exception& e) {
    res.ok = false;
    res.failure = std::string("machine aborted: ") + e.what();
    res.totals = svc.Total();
    return res;
  }
  const SvcPeStats t = svc.Total();
  res.totals = t;

  if (!res.report.quiesced) {
    Fail(res, "run did not end by global quiescence");
  }
  // Server bookkeeping balances exactly under any fault mix: every received
  // request is either admitted or queue-shed, and every admitted request is
  // either completed or deadline-shed (counters are per-PE single-writer).
  if (t.requests_received != t.admitted + t.shed_queue) {
    Fail(res,
         "admission imbalance: %llu received != %llu admitted + %llu "
         "queue-shed",
         static_cast<unsigned long long>(t.requests_received),
         static_cast<unsigned long long>(t.admitted),
         static_cast<unsigned long long>(t.shed_queue));
  }
  if (t.admitted != t.completed + t.shed_deadline) {
    Fail(res,
         "service imbalance: %llu admitted != %llu completed + %llu "
         "deadline-shed",
         static_cast<unsigned long long>(t.admitted),
         static_cast<unsigned long long>(t.completed),
         static_cast<unsigned long long>(t.shed_deadline));
  }
  // Timers are delayed self-sends — exempt from fault injection — so they
  // conserve exactly even when every fault dimension is enabled.
  if (t.timers_fired != t.timers_sent) {
    Fail(res, "timer conservation violated: %llu armed but %llu fired",
         static_cast<unsigned long long>(t.timers_sent),
         static_cast<unsigned long long>(t.timers_fired));
  }
  // Every completed reply is recorded into the latency histogram once.
  if (t.latency_ns.Count() != t.replies_received) {
    Fail(res, "histogram count %llu != %llu completed replies received",
         static_cast<unsigned long long>(t.latency_ns.Count()),
         static_cast<unsigned long long>(t.replies_received));
  }
  // Total message conservation: the service's send-side counters say how
  // many wire messages it handed to the machine (requests, one reply per
  // completion, one notice per shed, timers), the injector's report says
  // exactly how many it ate or cloned, and the receive-side counters must
  // account for the rest.  A reply that silently never gets sent
  // (lose_reply_every) inflates the send tally without a matching receive
  // or drop — this is the oracle that catches the planted bug.
  const std::uint64_t sent = t.requests_sent + t.completed + t.shed_queue +
                             t.shed_deadline + t.timers_sent;
  const std::uint64_t received = t.requests_received + t.replies_received +
                                 t.shed_notices_received + t.timers_fired;
  const std::uint64_t expected =
      sent - res.report.msgs_dropped + res.report.msgs_duplicated;
  if (res.failure.empty() && received != expected) {
    Fail(res,
         "conservation violated: %llu service messages sent, %llu dropped + "
         "%llu duplicated by injection, but %llu received (expected %llu)",
         static_cast<unsigned long long>(sent),
         static_cast<unsigned long long>(res.report.msgs_dropped),
         static_cast<unsigned long long>(res.report.msgs_duplicated),
         static_cast<unsigned long long>(received),
         static_cast<unsigned long long>(expected));
  }
  if (!params.faults.Any() && res.failure.empty()) {
    // No faults: end-to-end conservation, per message class.
    if (t.requests_received != t.requests_sent) {
      Fail(res, "no faults, yet %llu of %llu requests never arrived",
           static_cast<unsigned long long>(t.requests_sent -
                                           t.requests_received),
           static_cast<unsigned long long>(t.requests_sent));
    }
    if (t.replies_received != t.completed) {
      Fail(res, "no faults, yet %llu completed requests but only %llu "
                "replies came back",
           static_cast<unsigned long long>(t.completed),
           static_cast<unsigned long long>(t.replies_received));
    }
    if (t.shed_notices_received != t.shed_queue + t.shed_deadline) {
      Fail(res, "no faults, yet %llu sheds but only %llu notices came back",
           static_cast<unsigned long long>(t.shed_queue + t.shed_deadline),
           static_cast<unsigned long long>(t.shed_notices_received));
    }
  }
  res.ok = res.failure.empty();
  return res;
}

SvcFuzzParams MinimizeSvc(const SvcFuzzParams& failing, int budget) {
  SvcFuzzParams best = failing;
  auto still_fails = [&budget](const SvcFuzzParams& p) {
    if (budget <= 0) return false;
    --budget;
    return !RunSvcFuzzCase(p).ok;
  };
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    if (best.requests_per_pe > 1) {
      SvcFuzzParams t = best;
      t.requests_per_pe = best.requests_per_pe / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.workers > 1) {
      SvcFuzzParams t = best;
      t.workers = best.workers / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.npes > 1) {
      SvcFuzzParams t = best;
      t.npes = best.npes > 2 ? best.npes / 2 : 1;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.sessions > 1) {
      SvcFuzzParams t = best;
      t.sessions = best.sessions / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    for (double SimFaults::*dim : {&SimFaults::drop, &SimFaults::dup,
                                   &SimFaults::delay, &SimFaults::reorder}) {
      if (best.faults.*dim == 0) continue;
      SvcFuzzParams t = best;
      t.faults.*dim = 0;
      if (still_fails(t)) {
        best = t;
        improved = true;
        break;
      }
    }
  }
  return best;
}

std::string FormatSvcReplay(const SvcFuzzParams& params) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tools/simfuzz --service --seed %llu --pes %d --sessions "
                "%llu --workers %d --requests %llu --rate %g --qcap %u",
                static_cast<unsigned long long>(params.seed), params.npes,
                static_cast<unsigned long long>(params.sessions),
                params.workers,
                static_cast<unsigned long long>(params.requests_per_pe),
                params.rate_per_pe, params.queue_cap);
  std::string out = buf;
  const auto add_prob = [&out, &buf](const char* flag, double v) {
    if (v <= 0) return;
    std::snprintf(buf, sizeof(buf), " %s %g", flag, v);
    out += buf;
  };
  add_prob("--drop", params.faults.drop);
  add_prob("--dup", params.faults.dup);
  add_prob("--delay", params.faults.delay);
  add_prob("--reorder", params.faults.reorder);
  if (params.plant_lost_reply) out += " --plant-lost-reply";
  return out;
}

}  // namespace converse::svc
