// Request/response service runtime (converse/svc.h).
//
// Everything here is per-PE and single-writer: handlers and worker threads
// of one PE run cooperatively on that PE's thread, so PerPe needs no locks.
// The only cross-PE channels are messages (requests, replies, the non-sim
// completion protocol) — which is exactly the Converse model.
#include "converse/svc.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "converse/cmi.h"
#include "converse/cmm.h"
#include "converse/csd.h"
#include "converse/cth.h"
#include "converse/machine.h"
#include "converse/msg.h"
#include "converse/util/rng.h"
#include "core/pe_state.h"

namespace converse::svc {

namespace {

enum ReplyKind : std::uint32_t {
  kCompleted = 0,
  kShedQueue = 1,     // refused at admission: queue-depth cap
  kShedDeadline = 2,  // dropped at dequeue: deadline already passed
};

enum TimerKind : std::uint32_t {
  kTick = 0,        // open-loop generator arrival
  kWorkerWake = 1,  // service-time clock of one worker
};

struct ReqWire {
  std::uint64_t session;
  std::uint64_t reqid;
  double sent_us;      // client clock at send (CmiTimer * 1e6)
  double deadline_us;  // absolute shed deadline (0 = none)
  std::uint32_t client_pe;
  std::uint32_t pad;
};

struct ReplyWire {
  std::uint64_t session;
  std::uint64_t reqid;
  double sent_us;  // echoed client stamp — the latency baseline
  std::uint64_t session_count;
  std::uint32_t kind;  // ReplyKind
  std::uint32_t server_pe;
};

struct TimerWire {
  std::uint32_t kind;  // TimerKind
  std::uint32_t worker;
};

double NowUsF() { return CmiTimer() * 1e6; }

/// Per-PE PRNG stream derived from the load seed (same expansion idiom as
/// the fuzz workload): deterministic and distinct per PE.
util::Xoshiro256 PeStream(std::uint64_t seed, int pe, std::uint64_t salt) {
  util::SplitMix64 sm(seed ^ salt);
  std::uint64_t s = 0;
  for (int i = 0; i <= pe + 1; ++i) s = sm.Next();
  return util::Xoshiro256(s);
}

void* MakeMsg(int handler, const void* wire, std::size_t wire_bytes,
              std::size_t extra_bytes) {
  void* msg = CmiAlloc(static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) +
                       wire_bytes + extra_bytes);
  CmiSetHandler(msg, handler);
  std::memcpy(CmiMsgPayload(msg), wire, wire_bytes);
  if (extra_bytes > 0) {
    std::memset(static_cast<char*>(CmiMsgPayload(msg)) + wire_bytes, 0x5a,
                extra_bytes);
  }
  return msg;
}

}  // namespace

struct Service::PerPe {
  explicit PerPe(unsigned sub_bits) {
    stats.latency_ns = util::LogHistogram(sub_bits);
  }

  const SvcConfig* cfg = nullptr;
  int mype = 0;
  int npes = 1;
  bool timed = false;   // machine has a timed queue (sim or net model)
  bool simmed = false;  // sim coordinator present: quiescence ends the run

  SvcPeStats stats;

  // Server side.
  struct Session {
    std::uint64_t count = 0;
    std::uint64_t mix = 0;
  };
  MSG_MNGR* mm = nullptr;  // the pending-request mailbox (admission queue)
  std::vector<Session> sessions;
  struct Worker {
    CthThread* t = nullptr;
    bool idle = false;  // suspended waiting for work (wake via CthAwaken)
    bool exited = false;
  };
  std::vector<Worker> workers;
  bool shutdown = false;
  util::Xoshiro256 srv_rng{0};  // exponential service-time draws

  // Client side (open-loop generator).
  SvcLoad load;
  util::Xoshiro256 gen_rng{0};
  std::uint64_t gen_remaining = 0;
  std::uint64_t next_reqid = 0;
  bool all_sent = true;
  bool done_sent = false;  // non-sim completion protocol
  int dones = 0;           // PE 0 only: client-done messages seen

  int h_req = -1, h_reply = -1, h_timer = -1, h_done = -1;

  ~PerPe() {
    if (mm != nullptr) CmmFree(mm);  // abort path; Serve() frees it normally
  }
};

namespace {

using PerPe = Service::PerPe;

void ArmTimer(PerPe& me, std::uint32_t kind, std::uint32_t worker,
              double delay_us) {
  TimerWire t{kind, worker};
  void* msg = MakeMsg(me.h_timer, &t, sizeof(t), 0);
  ++me.stats.timers_sent;
  CmiSyncSendDelayedAndFree(static_cast<unsigned>(me.mype),
                            static_cast<unsigned>(CmiMsgTotalSize(msg)), msg,
                            delay_us);
}

void SendReply(PerPe& me, const ReqWire& w, std::uint32_t kind,
               std::uint64_t session_count) {
  ReplyWire r{w.session, w.reqid,          w.sent_us,
              session_count, kind, static_cast<std::uint32_t>(me.mype)};
  void* msg = MakeMsg(me.h_reply, &r, sizeof(r), 0);
  if (me.cfg->lose_reply_every != 0 && kind == kCompleted &&
      me.stats.completed % me.cfg->lose_reply_every == 0) {
    // The planted bug: the reply vanishes without any bookkeeping trace.
    // The end-to-end conservation oracle (simfuzz --service) must notice.
    CmiFree(msg);
    return;
  }
  CmiSyncSendAndFree(w.client_pe,
                     static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
}

double DrawGapUs(PerPe& me) {
  const SvcLoad& l = me.load;
  const double per = 1e6 / l.rate_per_pe;
  switch (l.arrival) {
    case Arrival::kUniform:
      return per;
    case Arrival::kPoisson:
      return -std::log(1.0 - me.gen_rng.NextDouble()) * per;
    case Arrival::kBurst:
      return per * l.burst;
  }
  return per;
}

void SendOneRequest(PerPe& me) {
  const std::uint64_t session = me.gen_rng.Below(me.cfg->sessions);
  const double now = NowUsF();
  ReqWire w{};
  w.session = session;
  w.reqid = (static_cast<std::uint64_t>(me.mype) << 40) | me.next_reqid++;
  w.sent_us = now;
  w.deadline_us =
      me.cfg->deadline_us > 0 ? now + me.cfg->deadline_us : 0.0;
  w.client_pe = static_cast<std::uint32_t>(me.mype);
  void* msg = MakeMsg(me.h_req, &w, sizeof(w), me.cfg->payload_bytes);
  ++me.stats.requests_sent;
  --me.gen_remaining;
  CmiSyncSendAndFree(static_cast<unsigned>(SessionOwner(session, me.npes)),
                     static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
}

/// Non-sim termination: once this PE has sent everything and seen one reply
/// or shed notice per request, tell PE 0; PE 0 broadcasts the scheduler
/// exit when every PE said so.  (Under the sim the quiescence exit does
/// this for free — and keeps working when fault injection eats replies.)
void MaybeClientDone(PerPe& me) {
  if (me.simmed || me.done_sent || !me.all_sent) return;
  if (me.stats.replies_received + me.stats.shed_notices_received <
      me.stats.requests_sent) {
    return;
  }
  me.done_sent = true;
  const std::uint32_t from = static_cast<std::uint32_t>(me.mype);
  void* msg = MakeMsg(me.h_done, &from, sizeof(from), 0);
  CmiSyncSendAndFree(0, static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
}

void WorkFor(PerPe& me, std::uint32_t worker, double us) {
  if (us <= 0) return;
  if (me.timed) {
    // Timed machine: park on a delayed self-send — the service time is
    // exact virtual time, and workers overlap (the PE serves other work
    // while this one waits on its clock).
    ArmTimer(me, kWorkerWake, worker, us);
    CthSuspend();
    return;
  }
  // Real machine: service time is CPU time, so spin — the request occupies
  // the PE, which is what makes offered rates above 1/service_time an
  // actual overload.
  const double until = NowUsF() + us;
  while (NowUsF() < until) {
  }
}

void ProcessRequest(PerPe& me, std::uint32_t worker, const ReqWire& w) {
  detail::PeState& pe = detail::CpvChecked();
  if (w.deadline_us > 0 && NowUsF() > w.deadline_us) {
    ++me.stats.shed_deadline;
    ++pe.stats.svc_shed;
    SendReply(me, w, kShedDeadline, 0);
    return;
  }
  double st = me.cfg->service_time_us;
  if (me.cfg->exp_service) {
    st = -std::log(1.0 - me.srv_rng.NextDouble()) * st;
  }
  WorkFor(me, worker, st);
  PerPe::Session& s =
      me.sessions[static_cast<std::size_t>(w.session) /
                  static_cast<std::size_t>(me.npes)];
  ++s.count;
  s.mix = s.mix * 0x100000001b3ull ^ w.reqid;
  ++me.stats.completed;
  ++pe.stats.svc_completed;
  SendReply(me, w, kCompleted, s.count);
}

void WakeIdleWorker(PerPe& me) {
  for (PerPe::Worker& wk : me.workers) {
    if (wk.idle) {
      wk.idle = false;  // claimed before the awaken: no double-wake
      CthAwaken(wk.t);
      return;
    }
  }
  // All workers busy: the request waits in the mailbox; whichever worker
  // finishes first drains it before going idle.
}

}  // namespace

Service::Service(const SvcConfig& cfg, int npes) : cfg_(cfg), npes_(npes) {
  assert(npes >= 1);
  assert(cfg.workers >= 1);
  assert(cfg.sessions >= 1);
  for (int i = 0; i < npes; ++i) {
    pes_.push_back(std::make_unique<PerPe>(cfg_.hist_sub_bits));
  }
}

Service::~Service() = default;

void Service::Start() {
  const int mype = CmiMyPe();
  assert(CmiNumPes() == npes_ && "Service built for a different PE count");
  PerPe& me = *pes_[static_cast<std::size_t>(mype)];
  detail::Machine& m = *detail::CpvChecked().machine;
  me.cfg = &cfg_;
  me.mype = mype;
  me.npes = npes_;
  me.timed = m.uses_timedq();
  me.simmed = m.sim() != nullptr;
  me.mm = CmmNew();
  me.sessions.assign(
      static_cast<std::size_t>(cfg_.sessions) /
              static_cast<std::size_t>(npes_) + 1,
      PerPe::Session{});
  me.srv_rng = PeStream(cfg_.sessions * 31 + 7, mype, 0x53525643ull);

  // Handler registration order is identical on every PE, so ids agree.
  me.h_req = CmiRegisterHandler([&me](void* msg) {
    detail::PeState& pe = detail::CpvChecked();
    ReqWire w;
    std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
    ++me.stats.requests_received;
    // Admission control: a full pending queue sheds immediately, so the
    // cost of an over-capacity request is one O(1) check and a small
    // notice — not an unbounded queue that collapses every latency.
    if (CmmLength(me.mm) >= me.cfg->queue_cap) {
      ++me.stats.shed_queue;
      ++pe.stats.svc_shed;
      SendReply(me, w, kShedQueue, 0);
      return;
    }
    ++me.stats.admitted;
    ++pe.stats.svc_admitted;
    CmmPut(me.mm, &w, static_cast<int>(w.session & 0x3ff),
           static_cast<int>(sizeof(w)));
    WakeIdleWorker(me);
  });

  me.h_reply = CmiRegisterHandler([&me](void* msg) {
    ReplyWire r;
    std::memcpy(&r, CmiMsgPayload(msg), sizeof(r));
    if (r.kind == kCompleted) {
      ++me.stats.replies_received;
      const double lat_us = NowUsF() - r.sent_us;
      me.stats.latency_ns.Record(static_cast<std::uint64_t>(
          std::llround(lat_us > 0 ? lat_us * 1000.0 : 0.0)));
    } else {
      ++me.stats.shed_notices_received;
    }
    MaybeClientDone(me);
  });

  me.h_timer = CmiRegisterHandler([&me](void* msg) {
    TimerWire t;
    std::memcpy(&t, CmiMsgPayload(msg), sizeof(t));
    ++me.stats.timers_fired;
    if (t.kind == kWorkerWake) {
      CthAwaken(me.workers[t.worker].t);
      return;
    }
    // Generator tick: emit this arrival (a burst emits several), then arm
    // the next one.  Gaps depend only on the generator PRNG — open loop.
    std::uint64_t n =
        me.load.arrival == Arrival::kBurst ? me.load.burst : 1;
    while (n-- > 0 && me.gen_remaining > 0) SendOneRequest(me);
    if (me.gen_remaining > 0) {
      ArmTimer(me, kTick, 0, DrawGapUs(me));
    } else {
      me.all_sent = true;
      MaybeClientDone(me);
    }
  });

  me.h_done = CmiRegisterHandler([&me](void*) {
    ++me.dones;
    if (me.dones == me.npes) ConverseBroadcastExit();
  });

  me.workers.resize(static_cast<std::size_t>(cfg_.workers));
  for (int wi = 0; wi < cfg_.workers; ++wi) {
    const auto w = static_cast<std::uint32_t>(wi);
    me.workers[wi].t = CthCreate([&me, w] {
      PerPe::Worker& self = me.workers[w];
      for (;;) {
        ReqWire req;
        while (!me.shutdown &&
               CmmGet(me.mm, &req, CmmWildCard,
                      static_cast<int>(sizeof(req)), nullptr) >= 0) {
          ProcessRequest(me, w, req);
        }
        if (me.shutdown) break;
        // No yield point between the empty-mailbox check and the suspend
        // (cooperative PE), so a request can never slip past an idling
        // worker unnoticed.
        self.idle = true;
        CthSuspend();
        self.idle = false;
      }
      self.exited = true;
    });
    // Kick the worker once so it runs to its first park; until then it is
    // not idle (WakeIdleWorker skips it) but will drain the mailbox on its
    // first pass anyway.
    CthAwaken(me.workers[wi].t);
  }
}

void Service::GenerateLoad(const SvcLoad& load) {
  PerPe& me = *pes_[static_cast<std::size_t>(CmiMyPe())];
  assert(me.mm != nullptr && "GenerateLoad before Start");
  me.load = load;
  me.gen_rng = PeStream(load.seed, me.mype, 0x47454e00ull);
  me.gen_remaining = load.requests_per_pe;
  if (me.gen_remaining == 0) return;
  me.all_sent = false;
  if (me.timed) {
    // Virtual-time generator: a chain of delayed self-ticks, armed here and
    // advanced by h_timer once Serve() runs the scheduler.
    ArmTimer(me, kTick, 0, DrawGapUs(me));
    return;
  }
  // Real machine: pace against the wall clock, serving (polling the
  // scheduler) while waiting so this PE's own sessions stay live.  The
  // schedule of send times never depends on replies — open loop.
  double next_us = NowUsF() + DrawGapUs(me);
  while (me.gen_remaining > 0) {
    while (NowUsF() < next_us) CsdSchedulePoll(32);
    std::uint64_t n = load.arrival == Arrival::kBurst ? load.burst : 1;
    while (n-- > 0 && me.gen_remaining > 0) SendOneRequest(me);
    next_us += DrawGapUs(me);
  }
  me.all_sent = true;
}

void Service::Serve() {
  PerPe& me = *pes_[static_cast<std::size_t>(CmiMyPe())];
  assert(me.mm != nullptr && "Serve before Start");
  MaybeClientDone(me);  // zero-request clients are done immediately
  CsdScheduler(-1);
  // Wind down: wake every idle worker so it observes shutdown and exits
  // (local resumes only — nothing here disturbs quiescence elsewhere).
  me.shutdown = true;
  for (;;) {
    bool all_exited = true;
    for (PerPe::Worker& wk : me.workers) {
      if (wk.exited) continue;
      all_exited = false;
      if (wk.idle) {
        wk.idle = false;
        CthAwaken(wk.t);
      }
    }
    if (all_exited) break;
    CsdScheduleUntilIdle();
  }
  CmmFree(me.mm);
  me.mm = nullptr;
}

const SvcPeStats& Service::PeStats(int pe) const {
  return pes_[static_cast<std::size_t>(pe)]->stats;
}

SvcPeStats Service::Total() const {
  SvcPeStats t;
  t.latency_ns = util::LogHistogram(cfg_.hist_sub_bits);
  for (const auto& pe : pes_) {
    const SvcPeStats& s = pe->stats;
    t.requests_sent += s.requests_sent;
    t.replies_received += s.replies_received;
    t.shed_notices_received += s.shed_notices_received;
    t.requests_received += s.requests_received;
    t.admitted += s.admitted;
    t.shed_queue += s.shed_queue;
    t.shed_deadline += s.shed_deadline;
    t.completed += s.completed;
    t.timers_sent += s.timers_sent;
    t.timers_fired += s.timers_fired;
    t.latency_ns.Merge(s.latency_ns);
  }
  return t;
}

}  // namespace converse::svc
