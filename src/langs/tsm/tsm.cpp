#include "converse/langs/tsm.h"

#include <cassert>

#include "converse/cth.h"
#include "converse/langs/sm.h"
#include "converse/trace.h"
#include "core/pe_state.h"

namespace converse::tsm {
namespace {

// tSM keeps almost no state of its own — exactly the point the paper makes
// about how little a new language runtime needs when the thread object,
// message manager, and scheduler are reusable components.
int& LiveCount() {
  thread_local int live = 0;  // PE == OS thread on the in-process machine
  return live;
}

}  // namespace

void tSMCreate(std::function<void()> fn) {
  TraceNoteThreadCreate();
  ++LiveCount();
  CthThread* t = CthCreate([fn = std::move(fn)] {
    fn();
    --LiveCount();
  });
  CthAwaken(t);  // schedule for execution via the Converse scheduler
}

void tSMSend(int dest_pe, int tag, const void* data, std::size_t len) {
  sm::SmSend(dest_pe, tag, data, len);
}

int tSMReceive(int tag, void* buf, std::size_t maxlen, int* retsource) {
  assert(!CthIsMain(CthSelf()) &&
         "tSMReceive must be called from a tSM thread");
  return sm::SmRecv(buf, maxlen, tag, sm::kAnySource, nullptr, retsource);
}

int tSMProbe(int tag) { return sm::SmProbe(tag, sm::kAnySource); }

int tSMLiveThreads() { return LiveCount(); }

}  // namespace converse::tsm
