#include "converse/langs/mdt.h"

#include <cassert>
#include <cstring>
#include <map>
#include <vector>

#include "converse/cld.h"
#include "converse/cmm.h"
#include "converse/cth.h"
#include "converse/detail/module.h"
#include "converse/trace.h"
#include "core/pe_state.h"

namespace converse::mdt {
namespace {

struct SpawnWire {
  std::int32_t fn_idx;
  std::uint32_t len;
  // `len` argument bytes follow
};

struct MsgWire {
  std::uint64_t to;
  std::int32_t tag;
  std::uint32_t len;
  // `len` data bytes follow
};

struct MdtThreadState {
  MdtThreadId tid = kNoThread;
  CthThread* thread = nullptr;
  // Set while blocked in MdtRecv:
  int waiting_tag = 0;
  bool waiting = false;
  std::vector<char> incoming;
  bool incoming_valid = false;
};

struct MdtState {
  int spawn_handler = -1;
  int msg_handler = -1;
  std::vector<MdtFn> fns;
  std::map<std::uint32_t, MdtThreadState*> threads;  // local idx -> state
  std::uint32_t next_idx = 1;
  MSG_MNGR* mailbox = nullptr;  // tag1 = local idx, tag2 = message tag
};

int ModuleId();

MdtState& St() {
  return *static_cast<MdtState*>(detail::ModuleState(ModuleId()));
}

/// The mdt state of the running Cth thread (hangs off the thread's user
/// data slot so it follows suspends and resumes correctly).
MdtThreadState* CurrentMdt() {
  return static_cast<MdtThreadState*>(CthGetData(CthSelf()));
}

/// Take root: create the Cth thread here and schedule it.
void SpawnHere(const SpawnWire* wire) {
  MdtState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  assert(wire->fn_idx >= 0 &&
         wire->fn_idx < static_cast<int>(st.fns.size()) &&
         "MdtSpawn of an unregistered function");
  auto* ts = new MdtThreadState;
  const std::uint32_t idx = st.next_idx++;
  ts->tid = (static_cast<std::uint64_t>(pe.mype) << 32) | idx;
  std::vector<char> arg(reinterpret_cast<const char*>(wire + 1),
                        reinterpret_cast<const char*>(wire + 1) + wire->len);
  const int fn_idx = wire->fn_idx;
  ts->thread = CthCreate([ts, fn_idx, arg = std::move(arg), idx] {
    MdtState& s = St();
    s.fns[static_cast<std::size_t>(fn_idx)](arg.data(), arg.size());
    s.threads.erase(idx);
    delete ts;
  });
  CthSetData(ts->thread, ts);
  st.threads[idx] = ts;
  TraceNoteThreadCreate();
  CthAwaken(ts->thread);
}

void SpawnHandler(void* msg) {
  SpawnHere(static_cast<const SpawnWire*>(CmiMsgPayload(msg)));
}

void MsgHandler(void* msg) {
  MdtState& st = St();
  const auto* wire = static_cast<const MsgWire*>(CmiMsgPayload(msg));
  const auto idx = static_cast<std::uint32_t>(wire->to & 0xffffffffu);
  const char* data = reinterpret_cast<const char*>(wire + 1);
  auto it = st.threads.find(idx);
  if (it != st.threads.end() && it->second->waiting &&
      it->second->waiting_tag == wire->tag) {
    MdtThreadState* ts = it->second;
    ts->incoming.assign(data, data + wire->len);
    ts->incoming_valid = true;
    ts->waiting = false;
    CthAwaken(ts->thread);
    return;
  }
  // Not waiting (or thread gone): buffer by (idx, tag).
  CmmPut2(st.mailbox, data, static_cast<int>(idx), wire->tag,
          static_cast<int>(wire->len));
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "mdt",
      [](int module_id) {
        auto* st = new MdtState;
        st->spawn_handler = CmiRegisterHandler(&SpawnHandler);
        st->msg_handler = CmiRegisterHandler(&MsgHandler);
        st->mailbox = CmmNew();
        detail::SetModuleState(module_id, st);
      },
      [](void* state) {
        auto* st = static_cast<MdtState*>(state);
        CmmFree(st->mailbox);
        for (auto& [idx, ts] : st->threads) delete ts;
        delete st;
      });
  return id;
}

void* MakeSpawnMsg(MdtState& st, int fn_idx, const void* arg,
                   std::size_t len) {
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(SpawnWire) + len);
  CmiSetHandler(msg, st.spawn_handler);
  auto* wire = static_cast<SpawnWire*>(CmiMsgPayload(msg));
  wire->fn_idx = fn_idx;
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, arg, len);
  return msg;
}

}  // namespace

int MdtRegister(MdtFn fn) {
  MdtState& st = St();
  st.fns.push_back(std::move(fn));
  return static_cast<int>(st.fns.size()) - 1;
}

void MdtSpawn(int fn_idx, const void* arg, std::size_t len, int on_pe) {
  MdtState& st = St();
  void* msg = MakeSpawnMsg(st, fn_idx, arg, len);
  if (on_pe == kAnyPe) {
    // Anonymous spawn: a seed for the load balancer (paper §3.3.1).
    CldEnqueue(msg);
  } else if (on_pe == CmiMyPe()) {
    detail::Header(msg)->source_pe =
        static_cast<std::uint16_t>(CmiMyPe());
    SpawnHere(static_cast<const SpawnWire*>(CmiMsgPayload(msg)));
    CmiFree(msg);
  } else {
    detail::SendOwned(on_pe, msg);
  }
}

MdtThreadId MdtSpawnLocal(int fn_idx, const void* arg, std::size_t len) {
  MdtState& st = St();
  const std::uint32_t idx_before = st.next_idx;
  void* msg = MakeSpawnMsg(st, fn_idx, arg, len);
  SpawnHere(static_cast<const SpawnWire*>(CmiMsgPayload(msg)));
  CmiFree(msg);
  return (static_cast<std::uint64_t>(CmiMyPe()) << 32) | idx_before;
}

void MdtSend(MdtThreadId to, int tag, const void* data, std::size_t len) {
  assert(to != kNoThread);
  MdtState& st = St();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(MsgWire) + len);
  CmiSetHandler(msg, st.msg_handler);
  auto* wire = static_cast<MsgWire*>(CmiMsgPayload(msg));
  wire->to = to;
  wire->tag = tag;
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, data, len);
  detail::SendOwned(MdtPeOf(to), msg);
}

int MdtRecv(int tag, void* buf, std::size_t maxlen) {
  MdtThreadState* ts = CurrentMdt();
  assert(ts != nullptr && "MdtRecv outside an mdt thread");
  MdtState& st = St();
  const auto idx = static_cast<std::uint32_t>(ts->tid & 0xffffffffu);
  // Buffered first.
  const int len = CmmGet2(st.mailbox, buf, static_cast<int>(idx), tag,
                          static_cast<int>(maxlen), nullptr, nullptr);
  if (len >= 0) return len;
  ts->waiting = true;
  ts->waiting_tag = tag;
  ts->incoming_valid = false;
  CthSuspend();
  assert(ts->incoming_valid && "mdt thread resumed without its message");
  const std::size_t n =
      ts->incoming.size() < maxlen ? ts->incoming.size() : maxlen;
  if (n > 0) std::memcpy(buf, ts->incoming.data(), n);
  return static_cast<int>(ts->incoming.size());
}

MdtThreadId MdtSelf() {
  MdtThreadState* ts = CurrentMdt();
  return ts == nullptr ? kNoThread : ts->tid;
}

int MdtLiveThreads() { return static_cast<int>(St().threads.size()); }

}  // namespace converse::mdt

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::MdtModuleRegister() { return converse::mdt::ModuleId(); }
