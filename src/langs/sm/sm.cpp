#include "converse/langs/sm.h"

#include <cassert>
#include <cstring>
#include <deque>

#include "converse/cmm.h"
#include "converse/cth.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse::sm {
namespace {

struct SmWire {
  std::int32_t tag;
  std::int32_t source;
  std::uint32_t len;
  std::uint32_t pad;
  // `len` payload bytes follow
};

/// A thread blocked in SmRecv.
struct Waiter {
  int tag;
  int source;
  CthThread* thread;
  void* buf;
  std::size_t maxlen;
  int* rettag;
  int* retsource;
  int result_len = -1;
  bool satisfied = false;
};

struct SmState {
  int handler = -1;
  MSG_MNGR* mailbox = nullptr;
  std::deque<Waiter*> waiters;
};

int ModuleId();

SmState& St() {
  return *static_cast<SmState*>(detail::ModuleState(ModuleId()));
}

bool Matches(int want_tag, int want_src, int have_tag, int have_src) {
  return (want_tag == kAnyTag || want_tag == have_tag) &&
         (want_src == kAnySource || want_src == have_src);
}

/// Copy a delivered message into a waiter and wake it.
void Satisfy(Waiter& w, const SmWire* wire) {
  const std::size_t ncopy =
      wire->len < w.maxlen ? wire->len : w.maxlen;
  if (ncopy > 0) std::memcpy(w.buf, wire + 1, ncopy);
  if (w.rettag != nullptr) *w.rettag = wire->tag;
  if (w.retsource != nullptr) *w.retsource = wire->source;
  w.result_len = static_cast<int>(wire->len);
  w.satisfied = true;
  CthAwaken(w.thread);
}

/// Scheduler-delivered SM message: satisfy a blocked thread or buffer it.
void SmHandler(void* msg) {
  SmState& st = St();
  const auto* wire = static_cast<const SmWire*>(CmiMsgPayload(msg));
  for (auto it = st.waiters.begin(); it != st.waiters.end(); ++it) {
    if (Matches((*it)->tag, (*it)->source, wire->tag, wire->source)) {
      Waiter* w = *it;
      st.waiters.erase(it);
      Satisfy(*w, wire);
      return;
    }
  }
  CmmPut2(st.mailbox, wire + 1, wire->tag, wire->source,
          static_cast<int>(wire->len));
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "sm",
      [](int module_id) {
        auto* st = new SmState;
        st->handler = CmiRegisterHandler(&SmHandler);
        st->mailbox = CmmNew();
        detail::SetModuleState(module_id, st);
      },
      [](void* state) {
        auto* st = static_cast<SmState*>(state);
        CmmFree(st->mailbox);
        delete st;
      });
  return id;
}

/// Try the local mailbox; returns full length or -1.
int TryMailbox(SmState& st, void* buf, std::size_t maxlen, int tag,
               int source, int* rettag, int* retsource) {
  const int len = CmmGet2(st.mailbox, buf, tag, source,
                          static_cast<int>(maxlen), rettag, retsource);
  return len;
}

}  // namespace

void SmSend(int dest_pe, int tag, const void* data, std::size_t len) {
  SmState& st = St();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(SmWire) + len);
  CmiSetHandler(msg, st.handler);
  auto* wire = static_cast<SmWire*>(CmiMsgPayload(msg));
  wire->tag = tag;
  wire->source = CmiMyPe();
  wire->len = static_cast<std::uint32_t>(len);
  wire->pad = 0;
  if (len > 0) std::memcpy(wire + 1, data, len);
  detail::SendOwned(dest_pe, msg);
}

void SmBroadcastAll(int tag, const void* data, std::size_t len) {
  const int npes = CmiNumPes();
  for (int i = 0; i < npes; ++i) SmSend(i, tag, data, len);
}

int SmRecv(void* buf, std::size_t maxlen, int tag, int source, int* rettag,
           int* retsource) {
  SmState& st = St();
  {
    const int len = TryMailbox(st, buf, maxlen, tag, source, rettag,
                               retsource);
    if (len >= 0) return len;
  }

  if (!CthIsMain(CthSelf())) {
    // Implicit control regime: block this thread only; the scheduler keeps
    // the PE busy with other work.
    Waiter w{tag, source, CthSelf(), buf, maxlen, rettag, retsource};
    st.waiters.push_back(&w);
    CthSuspend();
    assert(w.satisfied && "SM waiter resumed without a message");
    return w.result_len;
  }

  // Explicit (SPM) control regime: receive only SM traffic; anything else
  // is buffered by the machine layer until we return to the scheduler.
  for (;;) {
    void* msg = CmiGetSpecificMsg(st.handler);
    const auto* wire = static_cast<const SmWire*>(CmiMsgPayload(msg));
    if (Matches(tag, source, wire->tag, wire->source)) {
      const std::size_t ncopy = wire->len < maxlen ? wire->len : maxlen;
      if (ncopy > 0) std::memcpy(buf, wire + 1, ncopy);
      if (rettag != nullptr) *rettag = wire->tag;
      if (retsource != nullptr) *retsource = wire->source;
      return static_cast<int>(wire->len);
    }
    // An SM message for a different tag/source: keep it for later.
    CmmPut2(st.mailbox, wire + 1, wire->tag, wire->source,
            static_cast<int>(wire->len));
  }
}

int SmProbe(int tag, int source) {
  int rettag = 0;
  return CmmProbe2(St().mailbox, tag, source, &rettag, nullptr);
}

std::size_t SmPending() { return CmmLength(St().mailbox); }

}  // namespace converse::sm

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::SmModuleRegister() { return converse::sm::ModuleId(); }
