#include "converse/langs/cpvm.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <vector>

#include "converse/cmm.h"
#include "converse/cth.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse::pvm {
namespace {

enum class PkType : std::uint8_t {
  kInt = 1,
  kLong = 2,
  kFloat = 3,
  kDouble = 4,
  kByte = 5,
  kStr = 6,
};

const char* PkTypeName(PkType t) {
  switch (t) {
    case PkType::kInt: return "int";
    case PkType::kLong: return "long";
    case PkType::kFloat: return "float";
    case PkType::kDouble: return "double";
    case PkType::kByte: return "byte";
    case PkType::kStr: return "str";
  }
  return "?";
}

struct PvmWire {
  std::int32_t tag;
  std::int32_t source;
  std::uint32_t len;
  std::uint32_t pad;
};

struct Waiter {
  int tid;
  int tag;
  CthThread* thread;
  bool satisfied = false;
  std::vector<char> data;
  int rtag = 0;
  int rsrc = 0;
};

struct PvmState {
  int handler = -1;
  MSG_MNGR* mailbox = nullptr;
  std::deque<Waiter*> waiters;
  std::vector<char> sendbuf;
  // Active receive buffer.
  std::vector<char> recvbuf;
  std::size_t recvpos = 0;
  int recv_tag = 0;
  int recv_src = 0;
  bool have_recv = false;
};

int ModuleId();

PvmState& St() {
  return *static_cast<PvmState*>(detail::ModuleState(ModuleId()));
}

bool Matches(int want_tid, int want_tag, int have_src, int have_tag) {
  return (want_tid == PvmAnyTid || want_tid == have_src) &&
         (want_tag == PvmAnyTag || want_tag == have_tag);
}

void PvmHandler(void* msg) {
  PvmState& st = St();
  const auto* wire = static_cast<const PvmWire*>(CmiMsgPayload(msg));
  const char* data = reinterpret_cast<const char*>(wire + 1);
  for (auto it = st.waiters.begin(); it != st.waiters.end(); ++it) {
    if (Matches((*it)->tid, (*it)->tag, wire->source, wire->tag)) {
      Waiter* w = *it;
      st.waiters.erase(it);
      w->data.assign(data, data + wire->len);
      w->rtag = wire->tag;
      w->rsrc = wire->source;
      w->satisfied = true;
      CthAwaken(w->thread);
      return;
    }
  }
  CmmPut2(st.mailbox, data, wire->tag, wire->source,
          static_cast<int>(wire->len));
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "cpvm",
      [](int module_id) {
        auto* st = new PvmState;
        st->handler = CmiRegisterHandler(&PvmHandler);
        st->mailbox = CmmNew();
        detail::SetModuleState(module_id, st);
      },
      [](void* state) {
        auto* st = static_cast<PvmState*>(state);
        CmmFree(st->mailbox);
        delete st;
      });
  return id;
}

void PackSegment(PvmState& st, PkType type, const void* data,
                 std::size_t elem, int n, int stride) {
  if (n < 0) throw PvmError("pvm_pk*: negative count");
  const std::uint8_t t = static_cast<std::uint8_t>(type);
  const std::uint32_t count = static_cast<std::uint32_t>(n);
  st.sendbuf.push_back(static_cast<char>(t));
  st.sendbuf.insert(st.sendbuf.end(),
                    reinterpret_cast<const char*>(&count),
                    reinterpret_cast<const char*>(&count) + sizeof(count));
  const char* src = static_cast<const char*>(data);
  for (int i = 0; i < n; ++i) {
    const char* p = src + static_cast<std::size_t>(i) *
                              static_cast<std::size_t>(stride) * elem;
    st.sendbuf.insert(st.sendbuf.end(), p, p + elem);
  }
}

void UnpackSegment(PvmState& st, PkType type, void* data, std::size_t elem,
                   int n, int stride) {
  if (!st.have_recv) {
    throw PvmError("pvm_upk*: no active receive buffer (call pvm_recv)");
  }
  if (st.recvpos + 1 + sizeof(std::uint32_t) > st.recvbuf.size()) {
    throw PvmError("pvm_upk*: read past end of message");
  }
  const PkType have = static_cast<PkType>(st.recvbuf[st.recvpos]);
  if (have != type) {
    throw PvmError(std::string("pvm_upk*: type mismatch, packed ") +
                   PkTypeName(have) + " unpacked " + PkTypeName(type));
  }
  st.recvpos += 1;
  std::uint32_t count = 0;
  std::memcpy(&count, st.recvbuf.data() + st.recvpos, sizeof(count));
  st.recvpos += sizeof(count);
  if (count != static_cast<std::uint32_t>(n)) {
    throw PvmError("pvm_upk*: element count mismatch");
  }
  if (st.recvpos + count * elem > st.recvbuf.size()) {
    throw PvmError("pvm_upk*: truncated message");
  }
  char* dst = static_cast<char*>(data);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::memcpy(dst + static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(stride) * elem,
                st.recvbuf.data() + st.recvpos, elem);
    st.recvpos += elem;
  }
}

/// Make (data,len,tag,src) the active receive buffer.
void Activate(PvmState& st, std::vector<char> data, int tag, int src) {
  st.recvbuf = std::move(data);
  st.recvpos = 0;
  st.recv_tag = tag;
  st.recv_src = src;
  st.have_recv = true;
}

/// Try the mailbox; returns true if a match became active.
bool TryMailbox(PvmState& st, int tid, int tag) {
  int rtag = 0, rsrc = 0;
  const int len = CmmProbe2(st.mailbox, tag, tid, &rtag, &rsrc);
  if (len < 0) return false;
  std::vector<char> data(static_cast<std::size_t>(len));
  CmmGet2(st.mailbox, data.data(), tag, tid, len, &rtag, &rsrc);
  Activate(st, std::move(data), rtag, rsrc);
  return true;
}

}  // namespace

int pvm_mytid() { return CmiMyPe(); }
int pvm_ntasks() { return CmiNumPes(); }

int pvm_initsend() {
  St().sendbuf.clear();
  return 1;
}

int pvm_pkint(const int* d, int n, int s) {
  PackSegment(St(), PkType::kInt, d, sizeof(int), n, s);
  return 0;
}
int pvm_pklong(const long* d, int n, int s) {
  PackSegment(St(), PkType::kLong, d, sizeof(long), n, s);
  return 0;
}
int pvm_pkfloat(const float* d, int n, int s) {
  PackSegment(St(), PkType::kFloat, d, sizeof(float), n, s);
  return 0;
}
int pvm_pkdouble(const double* d, int n, int s) {
  PackSegment(St(), PkType::kDouble, d, sizeof(double), n, s);
  return 0;
}
int pvm_pkbyte(const char* d, int n, int s) {
  PackSegment(St(), PkType::kByte, d, 1, n, s);
  return 0;
}
int pvm_pkstr(const char* s) {
  PackSegment(St(), PkType::kStr, s, 1,
              static_cast<int>(std::strlen(s)) + 1, 1);
  return 0;
}

int pvm_send(int tid, int tag) {
  PvmState& st = St();
  const std::size_t len = st.sendbuf.size();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(PvmWire) + len);
  CmiSetHandler(msg, st.handler);
  auto* wire = static_cast<PvmWire*>(CmiMsgPayload(msg));
  wire->tag = tag;
  wire->source = CmiMyPe();
  wire->len = static_cast<std::uint32_t>(len);
  wire->pad = 0;
  if (len > 0) std::memcpy(wire + 1, st.sendbuf.data(), len);
  detail::SendOwned(tid, msg);
  return 0;
}

int pvm_mcast(const int* tids, int n, int tag) {
  for (int i = 0; i < n; ++i) pvm_send(tids[i], tag);
  return 0;
}

int pvm_bcast_all(int tag) {
  const int npes = CmiNumPes();
  for (int i = 0; i < npes; ++i) pvm_send(i, tag);
  return 0;
}

int pvm_recv(int tid, int tag) {
  PvmState& st = St();
  if (TryMailbox(st, tid, tag)) return 1;

  if (!CthIsMain(CthSelf())) {
    // Multithreaded mode: suspend just this thread.
    Waiter w{tid, tag, CthSelf(), false, {}, 0, 0};
    st.waiters.push_back(&w);
    CthSuspend();
    assert(w.satisfied);
    Activate(st, std::move(w.data), w.rtag, w.rsrc);
    return 1;
  }

  // SPM mode: the paper's blocking semantics — receive only cpvm traffic.
  for (;;) {
    void* msg = CmiGetSpecificMsg(st.handler);
    const auto* wire = static_cast<const PvmWire*>(CmiMsgPayload(msg));
    const char* data = reinterpret_cast<const char*>(wire + 1);
    if (Matches(tid, tag, wire->source, wire->tag)) {
      Activate(st, std::vector<char>(data, data + wire->len), wire->tag,
               wire->source);
      return 1;
    }
    CmmPut2(st.mailbox, data, wire->tag, wire->source,
            static_cast<int>(wire->len));
  }
}

int pvm_nrecv(int tid, int tag) {
  return TryMailbox(St(), tid, tag) ? 1 : 0;
}

int pvm_probe(int tid, int tag) {
  int rtag = 0;
  return CmmProbe2(St().mailbox, tag, tid, &rtag, nullptr) >= 0 ? 1 : 0;
}

int pvm_bufinfo(int bufid, int* bytes, int* tag, int* tid) {
  PvmState& st = St();
  if (bufid != 1 || !st.have_recv) return -1;
  if (bytes != nullptr) *bytes = static_cast<int>(st.recvbuf.size());
  if (tag != nullptr) *tag = st.recv_tag;
  if (tid != nullptr) *tid = st.recv_src;
  return 0;
}

int pvm_upkint(int* d, int n, int s) {
  UnpackSegment(St(), PkType::kInt, d, sizeof(int), n, s);
  return 0;
}
int pvm_upklong(long* d, int n, int s) {
  UnpackSegment(St(), PkType::kLong, d, sizeof(long), n, s);
  return 0;
}
int pvm_upkfloat(float* d, int n, int s) {
  UnpackSegment(St(), PkType::kFloat, d, sizeof(float), n, s);
  return 0;
}
int pvm_upkdouble(double* d, int n, int s) {
  UnpackSegment(St(), PkType::kDouble, d, sizeof(double), n, s);
  return 0;
}
int pvm_upkbyte(char* d, int n, int s) {
  UnpackSegment(St(), PkType::kByte, d, 1, n, s);
  return 0;
}
int pvm_upkstr(char* s) {
  PvmState& st = St();
  if (!st.have_recv) throw PvmError("pvm_upkstr: no active receive buffer");
  if (st.recvpos + 1 + sizeof(std::uint32_t) > st.recvbuf.size()) {
    throw PvmError("pvm_upkstr: read past end of message");
  }
  if (static_cast<PkType>(st.recvbuf[st.recvpos]) != PkType::kStr) {
    throw PvmError("pvm_upkstr: type mismatch");
  }
  std::uint32_t count = 0;
  std::memcpy(&count, st.recvbuf.data() + st.recvpos + 1, sizeof(count));
  UnpackSegment(st, PkType::kStr, s, 1, static_cast<int>(count), 1);
  return 0;
}

}  // namespace converse::pvm

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::PvmModuleRegister() { return converse::pvm::ModuleId(); }
