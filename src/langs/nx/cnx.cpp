#include "converse/langs/cnx.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "converse/cmm.h"
#include "converse/cth.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse::nx {
namespace {

struct NxWire {
  std::int64_t type;
  std::int32_t source;
  std::uint32_t len;
};

struct PostedRecv {
  long typesel;
  void* buf;
  std::size_t maxlen;
  bool done = false;
  long count = 0;
  long type = 0;
  long node = 0;
  CthThread* waiting_thread = nullptr;  // thread blocked in msgwait
};

struct NxState {
  int handler = -1;
  MSG_MNGR* mailbox = nullptr;  // tag1 = low 31 bits of type, tag2 = source
  std::map<long, PostedRecv> posted;
  long next_mid = 1;
  long info_count = 0;
  long info_type = 0;
  long info_node = 0;
};

int ModuleId();

NxState& St() {
  return *static_cast<NxState*>(detail::ModuleState(ModuleId()));
}

bool TypeMatches(long sel, long have) { return sel == kAnyType || sel == have; }

int TypeTag(long type) {
  // Cmm tags are ints; NX types in this implementation must fit.
  assert(type >= 0 && type <= 0x7fffffff && "NX message type out of range");
  return static_cast<int>(type);
}

/// Deliver wire data into a posted receive.
void CompletePosted(PostedRecv& p, const void* data, std::size_t len,
                    long type, long node) {
  const std::size_t ncopy = len < p.maxlen ? len : p.maxlen;
  if (ncopy > 0) std::memcpy(p.buf, data, ncopy);
  p.count = static_cast<long>(len);
  p.type = type;
  p.node = node;
  p.done = true;
  if (p.waiting_thread != nullptr) {
    CthThread* t = p.waiting_thread;
    p.waiting_thread = nullptr;
    CthAwaken(t);
  }
}

void NxHandler(void* msg) {
  NxState& st = St();
  const auto* wire = static_cast<const NxWire*>(CmiMsgPayload(msg));
  const char* data = reinterpret_cast<const char*>(wire + 1);
  for (auto& [mid, p] : st.posted) {
    if (!p.done && TypeMatches(p.typesel, wire->type)) {
      CompletePosted(p, data, wire->len, wire->type, wire->source);
      return;
    }
  }
  CmmPut2(st.mailbox, data, TypeTag(wire->type), wire->source,
          static_cast<int>(wire->len));
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "cnx",
      [](int module_id) {
        auto* st = new NxState;
        st->handler = CmiRegisterHandler(&NxHandler);
        st->mailbox = CmmNew();
        detail::SetModuleState(module_id, st);
      },
      [](void* state) {
        auto* st = static_cast<NxState*>(state);
        CmmFree(st->mailbox);
        delete st;
      });
  return id;
}

int SelTag(long typesel) {
  return typesel == kAnyType ? CmmWildCard : TypeTag(typesel);
}

}  // namespace

int mynode() { return CmiMyPe(); }
int numnodes() { return CmiNumPes(); }

void csend(long type, const void* buf, std::size_t len, int node) {
  NxState& st = St();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(NxWire) + len);
  CmiSetHandler(msg, st.handler);
  auto* wire = static_cast<NxWire*>(CmiMsgPayload(msg));
  wire->type = type;
  wire->source = CmiMyPe();
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, buf, len);
  detail::SendOwned(node, msg);
}

void crecv(long typesel, void* buf, std::size_t len) {
  const long mid = irecv(typesel, buf, len);
  msgwait(mid);
}

long irecv(long typesel, void* buf, std::size_t len) {
  NxState& st = St();
  const long mid = st.next_mid++;
  PostedRecv& p = st.posted[mid];
  p.typesel = typesel;
  p.buf = buf;
  p.maxlen = len;
  // A matching message may already be buffered.
  int rtag = 0, rsrc = 0;
  const int have =
      CmmProbe2(st.mailbox, SelTag(typesel), CmmWildCard, &rtag, &rsrc);
  if (have >= 0) {
    std::vector<char> data(static_cast<std::size_t>(have));
    CmmGet2(st.mailbox, data.data(), SelTag(typesel), CmmWildCard, have,
            &rtag, &rsrc);
    CompletePosted(p, data.data(), data.size(), rtag, rsrc);
  }
  return mid;
}

int msgdone(long mid) {
  NxState& st = St();
  auto it = st.posted.find(mid);
  if (it == st.posted.end()) return 1;  // already waited and reclaimed
  if (!it->second.done) return 0;
  st.info_count = it->second.count;
  st.info_type = it->second.type;
  st.info_node = it->second.node;
  st.posted.erase(it);
  return 1;
}

void msgwait(long mid) {
  NxState& st = St();
  auto it = st.posted.find(mid);
  if (it == st.posted.end()) return;
  if (!it->second.done && !CthIsMain(CthSelf())) {
    it->second.waiting_thread = CthSelf();
    CthSuspend();
    it = st.posted.find(mid);
    assert(it != st.posted.end() && it->second.done);
  }
  while (!it->second.done) {
    // SPM wait: receive only NX traffic; the handler may complete any
    // posted receive, including this one.
    void* msg = CmiGetSpecificMsg(st.handler);
    NxHandler(msg);
    it = st.posted.find(mid);
    assert(it != st.posted.end());
  }
  st.info_count = it->second.count;
  st.info_type = it->second.type;
  st.info_node = it->second.node;
  st.posted.erase(it);
}

int iprobe(long typesel) {
  int rtag = 0;
  return CmmProbe2(St().mailbox, SelTag(typesel), CmmWildCard, &rtag,
                   nullptr) >= 0
             ? 1
             : 0;
}

long infocount() { return St().info_count; }
long infotype() { return St().info_type; }
long infonode() { return St().info_node; }

}  // namespace converse::nx

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::NxModuleRegister() { return converse::nx::ModuleId(); }
