#include "converse/langs/charm.h"

#include "langs/charm/charm_internal.h"

#include <cassert>
#include <cstring>
#include <map>
#include <memory>

#include "converse/cld.h"
#include "converse/csd.h"
#include "converse/detail/module.h"
#include "converse/trace.h"
#include "core/pe_state.h"

namespace converse::charm {

/// Grants the runtime access to Chare::id_.
struct ChareRuntimeAccess {
  static void SetId(Chare* c, ChareId id) { c->id_ = id; }
};

namespace {

// ---- Wire formats ------------------------------------------------------------

struct CreateWire {
  std::int32_t type;
  std::uint32_t arg_len;
  // arg bytes follow
};

struct InvokeWire {
  ChareId target;
  std::int32_t entry;
  std::uint32_t len;
  // payload bytes follow
};

struct GroupCreateWire {
  std::int32_t gid;
  std::int32_t type;
  std::uint32_t arg_len;
  std::uint32_t pad;
};

struct GroupInvokeWire {
  std::int32_t gid;
  std::int32_t entry;
  std::uint32_t len;
  std::uint32_t pad;
};

struct ReadonlyWire {
  std::int32_t key;
  std::uint32_t len;
};

struct QdRequestWire {
  std::int32_t initiator;
  std::int32_t cb_id;
};

struct QdWaveWire {
  std::uint64_t wave;
};

struct QdContribWire {
  std::uint64_t wave;
  std::int64_t created;
  std::int64_t processed;
};

struct QdDoneWire {
  std::int32_t cb_id;
};

// ---- Per-PE state -------------------------------------------------------------

struct ChareTypeInfo {
  const char* name;
  ChareFactory factory;
};

struct QdWaveState {
  int child_contribs = 0;
  bool have_local = false;
  std::int64_t created = 0;
  std::int64_t processed = 0;
};

struct CharmState {
  // Handlers (network-side and queued-side per the §3.3 idiom).
  int h_create_q = -1, h_create_net = -1;
  int h_invoke_q = -1, h_invoke_net = -1;
  int h_group_create = -1;
  int h_group_invoke_q = -1, h_group_invoke_net = -1;
  int h_destroy = -1;
  int h_readonly = -1;
  int h_qd_request = -1, h_qd_wave = -1, h_qd_contrib = -1, h_qd_done = -1;

  std::vector<ChareTypeInfo> types;
  std::vector<EntryFn> entries;
  std::map<std::uint32_t, std::unique_ptr<Chare>> chares;
  std::uint32_t next_chare_idx = 1;

  std::map<int, std::unique_ptr<Chare>> groups;
  std::map<int, std::vector<std::vector<char>>> pending_group_msgs;
  int next_group_seq = 0;

  std::map<int, std::vector<char>> readonly;

  ChareId current_chare;  // chare whose entry is running

  // Charm-level message accounting for quiescence detection.
  std::uint64_t qd_created = 0;
  std::uint64_t qd_processed = 0;

  // Quiescence driver (meaningful on PE 0) + per-PE wave state.
  std::vector<QdRequestWire> qd_requests;   // PE 0: outstanding requests
  bool qd_wave_active = false;              // PE 0
  std::uint64_t qd_wave_no = 0;             // PE 0
  std::int64_t qd_prev_created = -1;        // PE 0
  std::int64_t qd_prev_processed = -2;      // PE 0
  std::map<std::uint64_t, QdWaveState> qd_waves;  // all PEs
  std::vector<std::function<void()>> qd_callbacks;  // initiator-local
};

int ModuleId();

CharmState& St() {
  return *static_cast<CharmState*>(detail::ModuleState(ModuleId()));
}

// ---- Chare creation / invocation ----------------------------------------------

void ConstructChare(CharmState& st, const CreateWire* wire) {
  assert(wire->type >= 0 &&
         wire->type < static_cast<int>(st.types.size()) &&
         "CreateChare with unregistered type");
  const std::uint32_t idx = st.next_chare_idx++;
  const ChareId id{CmiMyPe(), idx};
  const ChareId prev = st.current_chare;
  st.current_chare = id;  // visible to the constructor via CkMyChareId
  Chare* obj =
      st.types[static_cast<std::size_t>(wire->type)].factory(wire + 1,
                                                             wire->arg_len);
  ChareRuntimeAccess::SetId(obj, id);
  st.chares[idx] = std::unique_ptr<Chare>(obj);
  st.current_chare = prev;
  TraceNoteObjectCreate();
  ++st.qd_processed;
}

/// Queued-side creation handler: owns the message.
void CreateQHandler(void* msg) {
  ConstructChare(St(), static_cast<const CreateWire*>(CmiMsgPayload(msg)));
  CmiFree(msg);
}

/// Network-side creation handler: grab, retarget, enqueue (§3.3 idiom).
void CreateNetHandler(void* msg) {
  CmiGrabBuffer(&msg);
  CmiSetHandler(msg, St().h_create_q);
  CsdEnqueue(msg);
}

void InvokeEntry(CharmState& st, const InvokeWire* wire) {
  auto it = st.chares.find(wire->target.idx);
  assert(it != st.chares.end() && "message for a dead or unknown chare");
  assert(wire->entry >= 0 &&
         wire->entry < static_cast<int>(st.entries.size()));
  const ChareId prev = st.current_chare;
  st.current_chare = wire->target;
  st.entries[static_cast<std::size_t>(wire->entry)](it->second.get(),
                                                    wire + 1, wire->len);
  st.current_chare = prev;
  ++st.qd_processed;
}

void InvokeQHandler(void* msg) {
  InvokeEntry(St(), static_cast<const InvokeWire*>(CmiMsgPayload(msg)));
  CmiFree(msg);
}

void InvokeNetHandler(void* msg) {
  CharmState& st = St();
  CmiGrabBuffer(&msg);
  CmiSetHandler(msg, st.h_invoke_q);
  // Priority (if any) rides in the standard header fields.
  const auto* h = detail::Header(msg);
  switch (static_cast<Queueing>(h->queueing)) {
    case Queueing::kIntFifo:
    case Queueing::kIntLifo:
      CsdEnqueueIntPrio(msg, h->int_prio);
      break;
    case Queueing::kBitvecFifo:
    case Queueing::kBitvecLifo: {
      // Bit-vector priorities travel after the payload (see the sender).
      const auto* wire = static_cast<const InvokeWire*>(CmiMsgPayload(msg));
      const char* after = reinterpret_cast<const char*>(wire + 1) + wire->len;
      std::int32_t nbits = 0;
      std::memcpy(&nbits, after, sizeof(nbits));
      std::vector<std::uint32_t> words(
          static_cast<std::size_t>((nbits + 31) / 32));
      std::memcpy(words.data(), after + sizeof(nbits),
                  words.size() * sizeof(std::uint32_t));
      CsdEnqueueBitvecPrio(msg, words.data(), nbits);
      break;
    }
    default:
      CsdEnqueue(msg);
  }
}

void DestroyHandler(void* msg) {
  CharmState& st = St();
  const auto* wire = static_cast<const InvokeWire*>(CmiMsgPayload(msg));
  st.chares.erase(wire->target.idx);
  ++st.qd_processed;
}

// ---- Groups --------------------------------------------------------------------

void GroupCreateHandler(void* msg) {
  CharmState& st = St();
  const auto* wire =
      static_cast<const GroupCreateWire*>(CmiMsgPayload(msg));
  assert(!st.groups.contains(wire->gid));
  const ChareId id{CmiMyPe(), 0};
  const ChareId prev = st.current_chare;
  st.current_chare = id;
  Chare* obj = st.types[static_cast<std::size_t>(wire->type)].factory(
      wire + 1, wire->arg_len);
  ChareRuntimeAccess::SetId(obj, id);
  st.current_chare = prev;
  st.groups[wire->gid] = std::unique_ptr<Chare>(obj);
  TraceNoteObjectCreate();
  ++st.qd_processed;
  // Flush branch messages that raced ahead of construction.
  auto pend = st.pending_group_msgs.find(wire->gid);
  if (pend != st.pending_group_msgs.end()) {
    for (const auto& bytes : pend->second) {
      const auto* gw =
          reinterpret_cast<const GroupInvokeWire*>(bytes.data());
      Chare* branch = st.groups[gw->gid].get();
      st.entries[static_cast<std::size_t>(gw->entry)](branch, gw + 1,
                                                      gw->len);
      ++st.qd_processed;
    }
    st.pending_group_msgs.erase(pend);
  }
}

void GroupInvokeQHandler(void* msg) {
  CharmState& st = St();
  const auto* wire =
      static_cast<const GroupInvokeWire*>(CmiMsgPayload(msg));
  auto it = st.groups.find(wire->gid);
  if (it == st.groups.end()) {
    // Branch not constructed yet: buffer the whole wire record.
    const char* raw = static_cast<const char*>(CmiMsgPayload(msg));
    st.pending_group_msgs[wire->gid].emplace_back(
        raw, raw + CmiMsgPayloadSize(msg));
    CmiFree(msg);
    return;
  }
  const ChareId prev = st.current_chare;
  st.current_chare = ChareId{CmiMyPe(), 0};
  st.entries[static_cast<std::size_t>(wire->entry)](it->second.get(),
                                                    wire + 1, wire->len);
  st.current_chare = prev;
  ++st.qd_processed;
  CmiFree(msg);
}

void GroupInvokeNetHandler(void* msg) {
  CmiGrabBuffer(&msg);
  CmiSetHandler(msg, St().h_group_invoke_q);
  CsdEnqueue(msg);
}

// ---- Read-only data --------------------------------------------------------------

void ReadonlyHandler(void* msg) {
  CharmState& st = St();
  const auto* wire = static_cast<const ReadonlyWire*>(CmiMsgPayload(msg));
  const char* data = reinterpret_cast<const char*>(wire + 1);
  st.readonly[wire->key].assign(data, data + wire->len);
}

// ---- Quiescence detection ----------------------------------------------------------

void QdStartWave(CharmState& st);

void QdCheckWaveComplete(CharmState& st, std::uint64_t wave) {
  detail::PeState& pe = detail::CpvChecked();
  const auto& tree = pe.machine->tree();
  auto it = st.qd_waves.find(wave);
  if (it == st.qd_waves.end()) return;
  QdWaveState& ws = it->second;
  if (!ws.have_local || ws.child_contribs != tree.NumChildren(pe.mype)) {
    return;
  }
  const int parent = tree.Parent(pe.mype);
  if (parent >= 0) {
    void* up = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(QdContribWire));
    CmiSetHandler(up, st.h_qd_contrib);
    auto* wire = static_cast<QdContribWire*>(CmiMsgPayload(up));
    wire->wave = wave;
    wire->created = ws.created;
    wire->processed = ws.processed;
    detail::SendOwned(parent, up);
    st.qd_waves.erase(it);
    return;
  }
  // Root (PE 0): evaluate stability.
  const std::int64_t created = ws.created;
  const std::int64_t processed = ws.processed;
  st.qd_waves.erase(it);
  st.qd_wave_active = false;
  if (created == processed && created == st.qd_prev_created &&
      processed == st.qd_prev_processed) {
    // Quiescent: answer every outstanding request.
    for (const QdRequestWire& req : st.qd_requests) {
      void* done = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(QdDoneWire));
      CmiSetHandler(done, st.h_qd_done);
      static_cast<QdDoneWire*>(CmiMsgPayload(done))->cb_id = req.cb_id;
      detail::SendOwned(req.initiator, done);
    }
    st.qd_requests.clear();
    st.qd_prev_created = -1;
    st.qd_prev_processed = -2;
    return;
  }
  st.qd_prev_created = created;
  st.qd_prev_processed = processed;
  QdStartWave(st);
}

void QdStartWave(CharmState& st) {
  assert(CmiMyPe() == 0);
  if (st.qd_wave_active || st.qd_requests.empty()) return;
  st.qd_wave_active = true;
  const std::uint64_t wave = ++st.qd_wave_no;
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(QdWaveWire));
  CmiSetHandler(msg, st.h_qd_wave);
  static_cast<QdWaveWire*>(CmiMsgPayload(msg))->wave = wave;
  CmiSyncBroadcastAllAndFree(
      static_cast<unsigned int>(CmiMsgTotalSize(msg)), msg);
}

void QdRequestHandler(void* msg) {
  CharmState& st = St();
  const auto* wire = static_cast<const QdRequestWire*>(CmiMsgPayload(msg));
  st.qd_requests.push_back(*wire);
  QdStartWave(st);
}

void QdWaveHandler(void* msg) {
  CharmState& st = St();
  const auto* wire = static_cast<const QdWaveWire*>(CmiMsgPayload(msg));
  QdWaveState& ws = st.qd_waves[wire->wave];
  ws.have_local = true;
  ws.created += static_cast<std::int64_t>(st.qd_created);
  ws.processed += static_cast<std::int64_t>(st.qd_processed);
  QdCheckWaveComplete(st, wire->wave);
}

void QdContribHandler(void* msg) {
  CharmState& st = St();
  const auto* wire = static_cast<const QdContribWire*>(CmiMsgPayload(msg));
  QdWaveState& ws = st.qd_waves[wire->wave];
  ws.created += wire->created;
  ws.processed += wire->processed;
  ++ws.child_contribs;
  QdCheckWaveComplete(st, wire->wave);
}

void QdDoneHandler(void* msg) {
  CharmState& st = St();
  const auto* wire = static_cast<const QdDoneWire*>(CmiMsgPayload(msg));
  assert(wire->cb_id >= 0 &&
         wire->cb_id < static_cast<int>(st.qd_callbacks.size()));
  auto cb = std::move(st.qd_callbacks[static_cast<std::size_t>(wire->cb_id)]);
  cb();
}

// ---- Module wiring ----------------------------------------------------------------

int ModuleId() {
  static const int id = detail::RegisterModule(
      "charm",
      [](int module_id) {
        auto* st = new CharmState;
        st->h_create_q = CmiRegisterHandler(&CreateQHandler);
        st->h_create_net = CmiRegisterHandler(&CreateNetHandler);
        st->h_invoke_q = CmiRegisterHandler(&InvokeQHandler);
        st->h_invoke_net = CmiRegisterHandler(&InvokeNetHandler);
        st->h_group_create = CmiRegisterHandler(&GroupCreateHandler);
        st->h_group_invoke_q = CmiRegisterHandler(&GroupInvokeQHandler);
        st->h_group_invoke_net = CmiRegisterHandler(&GroupInvokeNetHandler);
        st->h_destroy = CmiRegisterHandler(&DestroyHandler);
        st->h_readonly = CmiRegisterHandler(&ReadonlyHandler);
        st->h_qd_request = CmiRegisterHandler(&QdRequestHandler);
        st->h_qd_wave = CmiRegisterHandler(&QdWaveHandler);
        st->h_qd_contrib = CmiRegisterHandler(&QdContribHandler);
        st->h_qd_done = CmiRegisterHandler(&QdDoneHandler);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<CharmState*>(state); });
  return id;
}

void* MakeInvokeMsg(CharmState& st, ChareId target, int entry,
                    const void* data, std::size_t len, std::size_t extra) {
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(InvokeWire) + len +
                       extra);
  CmiSetHandler(msg, st.h_invoke_net);
  auto* wire = static_cast<InvokeWire*>(CmiMsgPayload(msg));
  wire->target = target;
  wire->entry = entry;
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, data, len);
  return msg;
}

void DispatchInvoke(CharmState& st, void* msg, ChareId target) {
  ++st.qd_created;
  if (target.pe == CmiMyPe()) {
    // Local: skip the network, go straight to the queued side.
    CmiSetHandler(msg, st.h_invoke_q);
    const auto* h = detail::Header(msg);
    switch (static_cast<Queueing>(h->queueing)) {
      case Queueing::kIntFifo:
      case Queueing::kIntLifo:
        CsdEnqueueIntPrio(msg, h->int_prio);
        return;
      default:
        CsdEnqueue(msg);
        return;
    }
  }
  detail::SendOwned(target.pe, msg);
}

}  // namespace

int RegisterChare(const char* name, ChareFactory factory) {
  CharmState& st = St();
  st.types.push_back(ChareTypeInfo{name, std::move(factory)});
  return static_cast<int>(st.types.size()) - 1;
}

int RegisterEntry(EntryFn fn) {
  CharmState& st = St();
  st.entries.push_back(std::move(fn));
  return static_cast<int>(st.entries.size()) - 1;
}

void CreateChare(int chare_type, const void* arg, std::size_t len,
                 int on_pe) {
  CharmState& st = St();
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(CreateWire) + len);
  auto* wire = static_cast<CreateWire*>(CmiMsgPayload(msg));
  wire->type = chare_type;
  wire->arg_len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, arg, len);
  ++st.qd_created;
  if (on_pe == kAnyPe) {
    // Seed: the balancer will CsdEnqueue it somewhere; handler owns it.
    CmiSetHandler(msg, st.h_create_q);
    CldEnqueue(msg);
  } else if (on_pe == CmiMyPe()) {
    CmiSetHandler(msg, st.h_create_q);
    CsdEnqueue(msg);  // converse-lint: allow(enqueue-delivered-buffer)
  } else {
    CmiSetHandler(msg, st.h_create_net);
    detail::SendOwned(on_pe, msg);
  }
}

void SendToChare(ChareId target, int entry, const void* data,
                 std::size_t len) {
  CharmState& st = St();
  void* msg = MakeInvokeMsg(st, target, entry, data, len, 0);
  DispatchInvoke(st, msg, target);
}

void SendToCharePrio(ChareId target, int entry, const void* data,
                     std::size_t len, std::int32_t prio) {
  CharmState& st = St();
  void* msg = MakeInvokeMsg(st, target, entry, data, len, 0);
  auto* h = detail::Header(msg);
  h->int_prio = prio;
  h->queueing = static_cast<std::uint8_t>(Queueing::kIntFifo);
  DispatchInvoke(st, msg, target);
}

void SendToChareBitvecPrio(ChareId target, int entry, const void* data,
                           std::size_t len, const std::uint32_t* prio_words,
                           int nbits) {
  CharmState& st = St();
  const std::size_t nwords = static_cast<std::size_t>((nbits + 31) / 32);
  const std::size_t extra = sizeof(std::int32_t) + nwords * sizeof(std::uint32_t);
  void* msg = MakeInvokeMsg(st, target, entry, data, len, extra);
  auto* wire = static_cast<InvokeWire*>(CmiMsgPayload(msg));
  char* after = reinterpret_cast<char*>(wire + 1) + len;
  const std::int32_t nb = nbits;
  std::memcpy(after, &nb, sizeof(nb));
  std::memcpy(after + sizeof(nb), prio_words, nwords * sizeof(std::uint32_t));
  auto* h = detail::Header(msg);
  h->queueing = static_cast<std::uint8_t>(Queueing::kBitvecFifo);
  ++st.qd_created;
  if (target.pe == CmiMyPe()) {
    CmiSetHandler(msg, st.h_invoke_q);
    // converse-lint: allow(enqueue-delivered-buffer) msg built by caller
    CsdEnqueueBitvecPrio(msg, prio_words, nbits);
  } else {
    detail::SendOwned(target.pe, msg);
  }
}

void DestroyChare(ChareId target) {
  CharmState& st = St();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(InvokeWire));
  CmiSetHandler(msg, st.h_destroy);
  auto* wire = static_cast<InvokeWire*>(CmiMsgPayload(msg));
  wire->target = target;
  wire->entry = -1;
  wire->len = 0;
  ++st.qd_created;
  detail::SendOwned(target.pe, msg);
}

ChareId CkMyChareId() { return St().current_chare; }

int CreateGroup(int chare_type, const void* arg, std::size_t len) {
  CharmState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  const int gid = pe.mype + pe.npes * st.next_group_seq++;
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(GroupCreateWire) + len);
  CmiSetHandler(msg, st.h_group_create);
  auto* wire = static_cast<GroupCreateWire*>(CmiMsgPayload(msg));
  wire->gid = gid;
  wire->type = chare_type;
  wire->arg_len = static_cast<std::uint32_t>(len);
  wire->pad = 0;
  if (len > 0) std::memcpy(wire + 1, arg, len);
  st.qd_created += static_cast<std::uint64_t>(pe.npes);
  CmiSyncBroadcastAllAndFree(
      static_cast<unsigned int>(CmiMsgTotalSize(msg)), msg);
  return gid;
}

void SendToBranch(int gid, int pe, int entry, const void* data,
                  std::size_t len) {
  CharmState& st = St();
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(GroupInvokeWire) + len);
  CmiSetHandler(msg, st.h_group_invoke_net);
  auto* wire = static_cast<GroupInvokeWire*>(CmiMsgPayload(msg));
  wire->gid = gid;
  wire->entry = entry;
  wire->len = static_cast<std::uint32_t>(len);
  wire->pad = 0;
  if (len > 0) std::memcpy(wire + 1, data, len);
  ++st.qd_created;
  if (pe == CmiMyPe()) {
    CmiSetHandler(msg, st.h_group_invoke_q);
    CsdEnqueue(msg);  // converse-lint: allow(enqueue-delivered-buffer)
  } else {
    detail::SendOwned(pe, msg);
  }
}

void BroadcastToGroup(int gid, int entry, const void* data,
                      std::size_t len) {
  const int npes = CmiNumPes();
  for (int pe = 0; pe < npes; ++pe) {
    SendToBranch(gid, pe, entry, data, len);
  }
}

Chare* LocalBranch(int gid) {
  CharmState& st = St();
  auto it = st.groups.find(gid);
  return it == st.groups.end() ? nullptr : it->second.get();
}

void ReadonlySet(int key, const void* data, std::size_t len) {
  CharmState& st = St();
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(ReadonlyWire) + len);
  CmiSetHandler(msg, st.h_readonly);
  auto* wire = static_cast<ReadonlyWire*>(CmiMsgPayload(msg));
  wire->key = key;
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, data, len);
  CmiSyncBroadcastAllAndFree(
      static_cast<unsigned int>(CmiMsgTotalSize(msg)), msg);
}

const std::vector<char>& ReadonlyGet(int key) {
  static const std::vector<char> kEmpty;
  CharmState& st = St();
  auto it = st.readonly.find(key);
  return it == st.readonly.end() ? kEmpty : it->second;
}

void StartQuiescence(std::function<void()> cb) {
  CharmState& st = St();
  st.qd_callbacks.push_back(std::move(cb));
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(QdRequestWire));
  CmiSetHandler(msg, st.h_qd_request);
  auto* wire = static_cast<QdRequestWire*>(CmiMsgPayload(msg));
  wire->initiator = CmiMyPe();
  wire->cb_id = static_cast<int>(st.qd_callbacks.size()) - 1;
  detail::SendOwned(0, msg);
}

namespace internal {

const EntryFn& EntryAt(int idx) {
  CharmState& st = St();
  assert(idx >= 0 && idx < static_cast<int>(st.entries.size()));
  return st.entries[static_cast<std::size_t>(idx)];
}

void NoteCreated(std::uint64_t n) { St().qd_created += n; }
void NoteProcessed(std::uint64_t n) { St().qd_processed += n; }

ChareId SwapCurrentChare(ChareId id) {
  CharmState& st = St();
  const ChareId prev = st.current_chare;
  st.current_chare = id;
  return prev;
}

}  // namespace internal

std::uint64_t CharmMsgsCreated() { return St().qd_created; }
std::uint64_t CharmMsgsProcessed() { return St().qd_processed; }
int CharmLocalChares() { return static_cast<int>(St().chares.size()); }

}  // namespace converse::charm

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::CharmModuleRegister() { return converse::charm::ModuleId(); }
