// Internal seams between the charm core (chares, groups, QD) and the
// chare-array extension.  Not installed.
#pragma once

#include "converse/langs/charm.h"

namespace converse::charm::internal {

/// Entry-table access (indices are the public RegisterEntry ids).
const EntryFn& EntryAt(int idx);

/// Charm-level message accounting: array traffic must participate in
/// quiescence detection exactly like chare traffic.
void NoteCreated(std::uint64_t n = 1);
void NoteProcessed(std::uint64_t n = 1);

/// Current-chare context (so CkMyChareId works inside array entries).
ChareId SwapCurrentChare(ChareId id);

}  // namespace converse::charm::internal
