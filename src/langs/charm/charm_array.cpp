// Chare arrays (see the array section of converse/langs/charm.h).
//
// Placement is static round-robin (element i on PE i % npes) — the
// simplest of the placement policies the Charm lineage supports; dynamic
// element migration is the quasi-dynamic balancing the paper explicitly
// scopes out (§3.3.1 footnote).  Reductions reuse the machine spanning
// tree with per-(array, round) state, mirroring the collectives module
// but counting every element rather than every PE.
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "converse/collectives.h"
#include "converse/csd.h"
#include "converse/detail/module.h"
#include "converse/trace.h"
#include "core/pe_state.h"
#include "langs/charm/charm_internal.h"

namespace converse::charm {

struct ArrayRuntimeAccess {
  static void Init(ArrayElement* e, int aid, int idx) {
    e->array_id_ = aid;
    e->index_ = idx;
  }
  static std::uint64_t NextRound(ArrayElement* e) {
    return e->reduction_round_++;
  }
};

namespace {

// ---- Wire formats ------------------------------------------------------------

struct ACreateWire {
  std::int32_t aid;
  std::int32_t type;
  std::int32_t nelems;
  std::uint32_t arg_len;
  // arg bytes follow
};

struct AInvokeWire {
  std::int32_t aid;
  std::int32_t idx;
  std::int32_t entry;
  std::uint32_t len;
  // payload bytes follow
};

struct AContribWire {
  std::int32_t aid;
  std::uint64_t round;
  std::int32_t reducer;
  std::int32_t client_handler;
  std::uint32_t size;
  std::int64_t elems;  // elements accounted for in this partial
  std::uint32_t pad;
  // `size` bytes of partially reduced data follow
};

// ---- Per-PE state -------------------------------------------------------------

struct RedRound {
  std::vector<char> acc;
  std::int64_t elems = 0;       // element contributions merged (subtree)
  int child_contribs = 0;       // machine-tree children heard from
  int reducer = -1;
  int client_handler = -1;
};

struct ArrayInfo {
  int type = -1;
  int nelems = 0;
  std::map<int, std::unique_ptr<ArrayElement>> elements;  // by global idx
  std::uint64_t round = 0;  // current reduction round (local view)
  std::map<std::uint64_t, RedRound> rounds;
  std::vector<std::vector<char>> pending;  // AInvoke wires awaiting create
};

struct ArrayTypeInfo {
  const char* name;
  ArrayFactory factory;
};

struct ArrState {
  int h_create = -1;
  int h_invoke_q = -1, h_invoke_net = -1;
  int h_contrib = -1;
  std::vector<ArrayTypeInfo> types;
  std::map<int, ArrayInfo> arrays;
  int next_seq = 0;
};

int ModuleId();

ArrState& St() {
  return *static_cast<ArrState*>(detail::ModuleState(ModuleId()));
}

int OwnerOf(int idx) { return idx % CmiNumPes(); }

/// Number of elements of an n-element array living on `pe`.
int LocalCount(int nelems, int pe, int npes) {
  return nelems / npes + (pe < nelems % npes ? 1 : 0);
}

void InvokeOnElement(ArrState& st, const AInvokeWire* wire) {
  auto ait = st.arrays.find(wire->aid);
  assert(ait != st.arrays.end());
  auto eit = ait->second.elements.find(wire->idx);
  assert(eit != ait->second.elements.end() &&
         "array message for an element this PE does not own");
  ArrayElement* elem = eit->second.get();
  const ChareId prev =
      internal::SwapCurrentChare(ChareId{CmiMyPe(), 0});
  internal::EntryAt(wire->entry)(elem, wire + 1, wire->len);
  internal::SwapCurrentChare(prev);
  internal::NoteProcessed();
}

void ACreateHandler(void* msg) {
  ArrState& st = St();
  const auto* wire = static_cast<const ACreateWire*>(CmiMsgPayload(msg));
  assert(wire->type >= 0 &&
         wire->type < static_cast<int>(st.types.size()));
  ArrayInfo& info = st.arrays[wire->aid];
  info.type = wire->type;
  info.nelems = wire->nelems;
  const int me = CmiMyPe();
  const int np = CmiNumPes();
  const ChareId prev = internal::SwapCurrentChare(ChareId{me, 0});
  for (int idx = me; idx < wire->nelems; idx += np) {
    ArrayElement* e = st.types[static_cast<std::size_t>(wire->type)]
                          .factory(idx, wire + 1, wire->arg_len);
    ArrayRuntimeAccess::Init(e, wire->aid, idx);
    info.elements[idx] = std::unique_ptr<ArrayElement>(e);
    TraceNoteObjectCreate();
  }
  internal::SwapCurrentChare(prev);
  internal::NoteProcessed();
  // Flush element messages that raced ahead of creation.
  auto pending = std::move(info.pending);
  info.pending.clear();
  for (const auto& bytes : pending) {
    InvokeOnElement(st,
                    reinterpret_cast<const AInvokeWire*>(bytes.data()));
  }
}

void AInvokeQHandler(void* msg) {
  ArrState& st = St();
  const auto* wire = static_cast<const AInvokeWire*>(CmiMsgPayload(msg));
  auto ait = st.arrays.find(wire->aid);
  if (ait == st.arrays.end() || ait->second.elements.empty()) {
    const char* raw = static_cast<const char*>(CmiMsgPayload(msg));
    st.arrays[wire->aid].pending.emplace_back(
        raw, raw + CmiMsgPayloadSize(msg));
    CmiFree(msg);
    return;
  }
  InvokeOnElement(st, wire);
  CmiFree(msg);
}

void AInvokeNetHandler(void* msg) {
  CmiGrabBuffer(&msg);
  CmiSetHandler(msg, St().h_invoke_q);
  CsdEnqueue(msg);
}

// ---- Array reductions over the machine tree ------------------------------------

void MaybeForwardRound(ArrState& st, int aid, std::uint64_t round);

void AContribHandler(void* msg) {
  ArrState& st = St();
  const auto* wire = static_cast<const AContribWire*>(CmiMsgPayload(msg));
  ArrayInfo& info = st.arrays[wire->aid];
  RedRound& rr = info.rounds[wire->round];
  rr.reducer = wire->reducer;
  rr.client_handler = wire->client_handler;
  if (rr.acc.empty()) {
    rr.acc.assign(reinterpret_cast<const char*>(wire + 1),
                  reinterpret_cast<const char*>(wire + 1) + wire->size);
  } else {
    assert(rr.acc.size() == wire->size);
    CmiApplyReducer(wire->reducer, rr.acc.data(), wire + 1, wire->size);
  }
  rr.elems += wire->elems;
  ++rr.child_contribs;
  MaybeForwardRound(st, wire->aid, wire->round);
}

/// Forward a completed subtree partial up the machine tree, or deliver at
/// the root when every element of the array has contributed.
void MaybeForwardRound(ArrState& st, int aid, std::uint64_t round) {
  detail::PeState& pe = detail::CpvChecked();
  const auto& tree = pe.machine->tree();
  ArrayInfo& info = st.arrays[aid];
  auto rit = info.rounds.find(round);
  if (rit == info.rounds.end()) return;
  RedRound& rr = rit->second;

  // Local completeness: all local elements contributed this round.
  const int local = LocalCount(info.nelems, pe.mype, pe.npes);
  // Subtree completeness bookkeeping: local elems + children partials.
  // rr.elems counts both; a subtree is ready when we have heard from all
  // machine-tree children AND our local elements are in.
  // Local element contributions arrive via ArrayContribute (below), which
  // bumps rr.elems too; track local separately through `local_in`.
  // (Stored in rr.elems; local completeness is rr_local counter.)
  // We keep it simple: forward when child_contribs == tree children and
  // the local element count for this round has been fully contributed.
  const std::int64_t local_in = rr.elems;  // includes children subtotals
  (void)local_in;
  if (rr.child_contribs < tree.NumChildren(pe.mype)) return;
  // Count how many local contributions this round still needs: we encode
  // that by comparing against the expected subtree size.
  std::int64_t subtree = local;
  for (int child : tree.Children(pe.mype)) {
    // Whole subtree rooted at child: every element owned by a PE in it.
    // With round-robin placement, count per PE and walk the subtree.
    std::vector<int> stack{child};
    while (!stack.empty()) {
      const int p = stack.back();
      stack.pop_back();
      subtree += LocalCount(info.nelems, p, pe.npes);
      for (int c : tree.Children(p)) stack.push_back(c);
    }
  }
  if (rr.elems < subtree) return;  // local elements still missing
  assert(rr.elems == subtree);

  const int parent = tree.Parent(pe.mype);
  if (parent >= 0) {
    void* up = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(AContribWire) +
                        rr.acc.size());
    CmiSetHandler(up, st.h_contrib);
    auto* wire = static_cast<AContribWire*>(CmiMsgPayload(up));
    wire->aid = aid;
    wire->round = round;
    wire->reducer = rr.reducer;
    wire->client_handler = rr.client_handler;
    wire->size = static_cast<std::uint32_t>(rr.acc.size());
    wire->elems = rr.elems;
    wire->pad = 0;
    std::memcpy(wire + 1, rr.acc.data(), rr.acc.size());
    detail::SendOwned(parent, up);
    internal::NoteCreated();
    info.rounds.erase(rit);
    return;
  }
  // Root: deliver to the client handler on PE 0 via the scheduler.
  void* res = CmiMakeMessage(rr.client_handler, rr.acc.data(),
                             rr.acc.size());
  CsdEnqueue(res);
  info.rounds.erase(rit);
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "charm_array",
      [](int module_id) {
        auto* st = new ArrState;
        st->h_create = CmiRegisterHandler(&ACreateHandler);
        st->h_invoke_q = CmiRegisterHandler(&AInvokeQHandler);
        st->h_invoke_net = CmiRegisterHandler(&AInvokeNetHandler);
        st->h_contrib = CmiRegisterHandler(&AContribHandler);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<ArrState*>(state); });
  return id;
}

}  // namespace

int RegisterArrayType(const char* name, ArrayFactory factory) {
  ArrState& st = St();
  st.types.push_back(ArrayTypeInfo{name, std::move(factory)});
  return static_cast<int>(st.types.size()) - 1;
}

int CreateArray(int array_type, int nelems, const void* arg,
                std::size_t len) {
  ArrState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  const int aid = pe.mype + pe.npes * st.next_seq++;
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(ACreateWire) + len);
  CmiSetHandler(msg, st.h_create);
  auto* wire = static_cast<ACreateWire*>(CmiMsgPayload(msg));
  wire->aid = aid;
  wire->type = array_type;
  wire->nelems = nelems;
  wire->arg_len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, arg, len);
  internal::NoteCreated(static_cast<std::uint64_t>(pe.npes));
  CmiSyncBroadcastAllAndFree(
      static_cast<unsigned int>(CmiMsgTotalSize(msg)), msg);
  return aid;
}

void SendToElement(int aid, int idx, int entry, const void* data,
                   std::size_t len) {
  ArrState& st = St();
  void* msg =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(AInvokeWire) + len);
  auto* wire = static_cast<AInvokeWire*>(CmiMsgPayload(msg));
  wire->aid = aid;
  wire->idx = idx;
  wire->entry = entry;
  wire->len = static_cast<std::uint32_t>(len);
  if (len > 0) std::memcpy(wire + 1, data, len);
  internal::NoteCreated();
  const int owner = OwnerOf(idx);
  if (owner == CmiMyPe()) {
    CmiSetHandler(msg, st.h_invoke_q);
    CsdEnqueue(msg);  // converse-lint: allow(enqueue-delivered-buffer)
  } else {
    CmiSetHandler(msg, st.h_invoke_net);
    detail::SendOwned(owner, msg);
  }
}

void BroadcastToArray(int aid, int entry, const void* data,
                      std::size_t len) {
  ArrState& st = St();
  auto ait = st.arrays.find(aid);
  // The creator may broadcast before its own create handler ran; the
  // element count is needed, so require the local descriptor (callers
  // typically broadcast from entry methods, well after creation).
  assert(ait != st.arrays.end() &&
         "BroadcastToArray before the array descriptor arrived here");
  for (int idx = 0; idx < ait->second.nelems; ++idx) {
    SendToElement(aid, idx, entry, data, len);
  }
}

void ArrayContribute(ArrayElement* elem, const void* data, std::size_t size,
                     int reducer, int client_handler) {
  ArrState& st = St();
  const int aid = elem->ArrayId();
  ArrayInfo& info = st.arrays[aid];
  // Rounds are tracked per element: the k-th contribution of any element
  // belongs to round k, regardless of interleaving across elements.
  const std::uint64_t round = ArrayRuntimeAccess::NextRound(elem);
  RedRound& rr = info.rounds[round];
  rr.reducer = reducer;
  rr.client_handler = client_handler;
  if (rr.acc.empty()) {
    rr.acc.assign(static_cast<const char*>(data),
                  static_cast<const char*>(data) + size);
  } else {
    assert(rr.acc.size() == size);
    CmiApplyReducer(reducer, rr.acc.data(), data, size);
  }
  ++rr.elems;
  MaybeForwardRound(st, aid, round);
}

int ArrayLocalElements(int aid) {
  ArrState& st = St();
  auto it = st.arrays.find(aid);
  return it == st.arrays.end()
             ? 0
             : static_cast<int>(it->second.elements.size());
}

}  // namespace converse::charm

// Registration entry point used by the header anchor.
int converse::detail::CharmArrayModuleRegister() {
  return converse::charm::ModuleId();
}
