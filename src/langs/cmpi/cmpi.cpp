#include "converse/langs/cmpi.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "converse/cmm.h"
#include "converse/collectives.h"
#include "converse/csd.h"
#include "converse/cth.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse::mpi {

struct Request {
  void* buf = nullptr;
  std::size_t maxlen = 0;
  int source = kAnySource;
  int tag = kAnyTag;
  Comm comm = kCommWorld;
  bool done = false;
  Status status;
  CthThread* waiter = nullptr;  // thread blocked in Wait()
};

namespace {

constexpr int kBcastTag = -2;  // internal tag space is negative

struct MpiWire {
  std::int32_t comm;
  std::int32_t tag;
  std::int32_t source_rank;
  std::uint32_t len;
  std::uint64_t seq;  // per (comm, source->dest) sequence number
  // `len` payload bytes follow
};

/// A message accepted into matching order but not yet received.
struct Stored {
  int tag;
  int source;
  std::vector<char> data;
};

struct MpiState {
  int handler = -1;
  int next_comm = 1;  // 0 is kCommWorld
  // Pairwise FIFO bookkeeping, keyed by (comm, source_rank).
  std::map<std::pair<int, int>, std::uint64_t> send_seq;
  std::map<std::pair<int, int>, std::uint64_t> recv_expected;
  std::map<std::pair<int, int>, std::map<std::uint64_t, Stored>> early;
  // Accepted-but-unreceived messages ("unexpected queue"), per comm, in
  // matching order.
  std::map<int, std::deque<Stored>> mailbox;
  // Posted receives (IRecv) in posting order.
  std::vector<Request*> posted;
};

int ModuleId();

MpiState& St() {
  return *static_cast<MpiState*>(detail::ModuleState(ModuleId()));
}

bool Matches(int want_src, int want_tag, int have_src, int have_tag) {
  return (want_src == kAnySource || want_src == have_src) &&
         (want_tag == kAnyTag || want_tag == have_tag);
}

void CompleteRequest(Request* req, const Stored& s) {
  const std::size_t n = s.data.size() < req->maxlen ? s.data.size()
                                                    : req->maxlen;
  if (n > 0) std::memcpy(req->buf, s.data.data(), n);
  req->status = Status{s.source, s.tag, static_cast<int>(s.data.size())};
  req->done = true;
  if (req->waiter != nullptr) {
    CthThread* t = req->waiter;
    req->waiter = nullptr;
    CthAwaken(t);
  }
}

/// A message has reached its position in pairwise-FIFO order: hand it to
/// a posted receive or park it in the mailbox.
void Accept(MpiState& st, int comm, Stored s) {
  for (auto it = st.posted.begin(); it != st.posted.end(); ++it) {
    Request* req = *it;
    if (req->comm == comm && !req->done &&
        Matches(req->source, req->tag, s.source, s.tag)) {
      st.posted.erase(it);
      CompleteRequest(req, s);
      return;
    }
  }
  st.mailbox[comm].push_back(std::move(s));
}

/// Network arrival: enforce per-(comm,source) delivery order, then accept
/// (draining any stashed successors).
void ProcessWire(MpiState& st, const MpiWire* wire) {
  const auto key = std::make_pair(wire->comm, wire->source_rank);
  Stored s;
  s.tag = wire->tag;
  s.source = wire->source_rank;
  const char* data = reinterpret_cast<const char*>(wire + 1);
  s.data.assign(data, data + wire->len);

  std::uint64_t& expected = st.recv_expected[key];
  if (wire->seq != expected) {
    // Out-of-order arrival (possible under the timed-delivery machine):
    // stash until its predecessors land — the "maintaining delivery
    // sequence" overhead the paper talks about.
    assert(wire->seq > expected && "duplicate cmpi sequence number");
    st.early[key].emplace(wire->seq, std::move(s));
    return;
  }
  ++expected;
  Accept(st, wire->comm, std::move(s));
  // Drain stashed successors that are now in order.
  auto eit = st.early.find(key);
  if (eit == st.early.end()) return;
  auto& stash = eit->second;
  while (!stash.empty() && stash.begin()->first == expected) {
    Stored next = std::move(stash.begin()->second);
    stash.erase(stash.begin());
    ++expected;
    Accept(st, key.first, std::move(next));
  }
  if (stash.empty()) st.early.erase(eit);
}

void MpiHandler(void* msg) {
  ProcessWire(St(), static_cast<const MpiWire*>(CmiMsgPayload(msg)));
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "cmpi",
      [](int module_id) {
        auto* st = new MpiState;
        st->handler = CmiRegisterHandler(&MpiHandler);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<MpiState*>(state); });
  return id;
}

/// Try to pull a matching message from the mailbox (in order).
bool TryMailbox(MpiState& st, Comm comm, int source, int tag, void* buf,
                std::size_t maxlen, Status* status) {
  auto mit = st.mailbox.find(comm);
  if (mit == st.mailbox.end()) return false;
  auto& q = mit->second;
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (Matches(source, tag, it->source, it->tag)) {
      const std::size_t n =
          it->data.size() < maxlen ? it->data.size() : maxlen;
      if (n > 0) std::memcpy(buf, it->data.data(), n);
      if (status != nullptr) {
        *status = Status{it->source, it->tag,
                         static_cast<int>(it->data.size())};
      }
      q.erase(it);
      return true;
    }
  }
  return false;
}

void SendInternal(const void* buf, std::size_t len, int dest_rank, int tag,
                  Comm comm) {
  MpiState& st = St();
  const int me = CmiMyPe();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(MpiWire) + len);
  CmiSetHandler(msg, st.handler);
  auto* wire = static_cast<MpiWire*>(CmiMsgPayload(msg));
  wire->comm = comm;
  wire->tag = tag;
  wire->source_rank = me;
  wire->len = static_cast<std::uint32_t>(len);
  wire->seq = st.send_seq[std::make_pair(comm, dest_rank)]++;
  if (len > 0) std::memcpy(wire + 1, buf, len);
  detail::SendOwned(dest_rank, msg);
}

}  // namespace

int CommRank(Comm) { return CmiMyPe(); }
int CommSize(Comm) { return CmiNumPes(); }

Comm CommDup(Comm) {
  // Same call order on all PEs => same id everywhere.
  return St().next_comm++;
}

void Send(const void* buf, std::size_t len, int dest_rank, int tag,
          Comm comm) {
  assert(tag >= 0 && "user tags must be non-negative (negative = internal)");
  SendInternal(buf, len, dest_rank, tag, comm);
}

void Recv(void* buf, std::size_t maxlen, int source_rank, int tag,
          Comm comm, Status* status) {
  MpiState& st = St();
  if (TryMailbox(st, comm, source_rank, tag, buf, maxlen, status)) return;

  if (!CthIsMain(CthSelf())) {
    Request req;
    req.buf = buf;
    req.maxlen = maxlen;
    req.source = source_rank;
    req.tag = tag;
    req.comm = comm;
    st.posted.push_back(&req);
    req.waiter = CthSelf();
    CthSuspend();
    assert(req.done);
    if (status != nullptr) *status = req.status;
    return;
  }

  // SPM regime: receive only cmpi traffic until a match materializes.
  for (;;) {
    void* msg = CmiGetSpecificMsg(st.handler);
    ProcessWire(st, static_cast<const MpiWire*>(CmiMsgPayload(msg)));
    if (TryMailbox(st, comm, source_rank, tag, buf, maxlen, status)) return;
  }
}

bool IProbe(int source_rank, int tag, Comm comm, Status* status) {
  MpiState& st = St();
  auto mit = st.mailbox.find(comm);
  if (mit == st.mailbox.end()) return false;
  for (const Stored& s : mit->second) {
    if (Matches(source_rank, tag, s.source, s.tag)) {
      if (status != nullptr) {
        *status = Status{s.source, s.tag, static_cast<int>(s.data.size())};
      }
      return true;
    }
  }
  return false;
}

Request* IRecv(void* buf, std::size_t maxlen, int source_rank, int tag,
               Comm comm) {
  MpiState& st = St();
  auto* req = new Request;
  req->buf = buf;
  req->maxlen = maxlen;
  req->source = source_rank;
  req->tag = tag;
  req->comm = comm;
  // A match may already be waiting.
  Status status;
  if (TryMailbox(st, comm, source_rank, tag, buf, maxlen, &status)) {
    req->status = status;
    req->done = true;
    return req;
  }
  st.posted.push_back(req);
  return req;
}

bool Test(Request* req, Status* status) {
  if (!req->done) return false;
  if (status != nullptr) *status = req->status;
  return true;
}

void Wait(Request* req, Status* status) {
  MpiState& st = St();
  if (!req->done) {
    if (!CthIsMain(CthSelf())) {
      req->waiter = CthSelf();
      CthSuspend();
      assert(req->done);
    } else {
      while (!req->done) {
        void* msg = CmiGetSpecificMsg(st.handler);
        ProcessWire(st, static_cast<const MpiWire*>(CmiMsgPayload(msg)));
      }
    }
  }
  if (status != nullptr) *status = req->status;
  delete req;
}

void Sendrecv(const void* sendbuf, std::size_t sendlen, int dest, int stag,
              void* recvbuf, std::size_t recvlen, int source, int rtag,
              Comm comm, Status* status) {
  // Sends are buffered (never block), so send-then-recv cannot deadlock.
  Send(sendbuf, sendlen, dest, stag, comm);
  Recv(recvbuf, recvlen, source, rtag, comm, status);
}

void Barrier(Comm) { CmiBarrierBlocking(); }

void Bcast(void* buf, std::size_t len, int root, Comm comm) {
  const int me = CmiMyPe();
  if (me == root) {
    for (int r = 0; r < CmiNumPes(); ++r) {
      if (r != root) SendInternal(buf, len, r, kBcastTag, comm);
    }
    return;
  }
  MpiState& st = St();
  if (TryMailbox(st, comm, root, kBcastTag, buf, len, nullptr)) return;
  for (;;) {
    void* msg = CmiGetSpecificMsg(st.handler);
    ProcessWire(st, static_cast<const MpiWire*>(CmiMsgPayload(msg)));
    if (TryMailbox(st, comm, root, kBcastTag, buf, len, nullptr)) return;
  }
}

namespace {
int ReduceOp(Op op, bool f64) {
  switch (op) {
    case Op::kSum: return f64 ? CmiReducerSumF64() : CmiReducerSumI64();
    case Op::kMin: return f64 ? CmiReducerMinF64() : CmiReducerMinI64();
    case Op::kMax: return f64 ? CmiReducerMaxF64() : CmiReducerMaxI64();
  }
  return -1;
}
}  // namespace

void AllreduceF64(const double* in, double* out, std::size_t n, Op op,
                  Comm) {
  std::memcpy(out, in, n * sizeof(double));
  CmiAllReduceBlocking(out, n * sizeof(double), ReduceOp(op, true));
}

void AllreduceI64(const std::int64_t* in, std::int64_t* out, std::size_t n,
                  Op op, Comm) {
  std::memcpy(out, in, n * sizeof(std::int64_t));
  CmiAllReduceBlocking(out, n * sizeof(std::int64_t), ReduceOp(op, false));
}

std::size_t UnexpectedCount() {
  std::size_t n = 0;
  for (const auto& [comm, q] : St().mailbox) n += q.size();
  return n;
}

}  // namespace converse::mpi

// Registration entry point used by the header anchor.
int converse::detail::MpiModuleRegister() {
  return converse::mpi::ModuleId();
}
