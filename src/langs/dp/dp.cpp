#include "converse/langs/dp.h"

#include "converse/cmi.h"
#include "converse/langs/sm.h"

namespace converse::dp {

Distribution1D::Distribution1D(std::size_t n, int npes, int pe)
    : n_(n), npes_(npes) {
  assert(npes >= 1 && pe >= 0 && pe < npes);
  const std::size_t base = n / static_cast<std::size_t>(npes);
  const std::size_t extra = n % static_cast<std::size_t>(npes);
  const auto p = static_cast<std::size_t>(pe);
  begin_ = p * base + (p < extra ? p : extra);
  end_ = begin_ + base + (p < extra ? 1 : 0);
}

int Distribution1D::Owner(std::size_t i) const {
  assert(i < n_);
  const std::size_t base = n_ / static_cast<std::size_t>(npes_);
  const std::size_t extra = n_ % static_cast<std::size_t>(npes_);
  const std::size_t cutoff = extra * (base + 1);
  if (i < cutoff) return static_cast<int>(i / (base + 1));
  if (base == 0) return npes_ - 1;  // all remaining elements are in `extra`
  return static_cast<int>(extra + (i - cutoff) / base);
}

namespace detail {

// dp reserves a private SM tag range so halo traffic cannot collide with
// application SM tags.
constexpr int kTagToRight = 0x44500001;  // carries my *last* element
constexpr int kTagToLeft = 0x44500002;   // carries my *first* element
constexpr int kTagGather = 0x44500003;
constexpr int kTagGatherLen = 0x44500004;

void HaloExchange(const void* first_elem, const void* last_elem,
                  void* left_ghost, void* right_ghost, std::size_t elem_size,
                  bool has_left, bool has_right) {
  const int me = CmiMyPe();
  // Send before receive: sends are asynchronous buffered, so this cannot
  // deadlock regardless of PE ordering.
  if (has_right) sm::SmSend(me + 1, kTagToRight, last_elem, elem_size);
  if (has_left) sm::SmSend(me - 1, kTagToLeft, first_elem, elem_size);
  if (has_left) {
    sm::SmRecv(left_ghost, elem_size, kTagToRight, me - 1);
  }
  if (has_right) {
    sm::SmRecv(right_ghost, elem_size, kTagToLeft, me + 1);
  }
}

bool GatherToRoot(const void* local, std::size_t local_bytes,
                  std::vector<char>* out) {
  const int me = CmiMyPe();
  const int npes = CmiNumPes();
  if (me != 0) {
    // Length first so the root can size its receive exactly.
    const std::uint64_t len = local_bytes;
    sm::SmSend(0, kTagGatherLen, &len, sizeof(len));
    sm::SmSend(0, kTagGather, local, local_bytes);
    return false;
  }
  out->clear();
  out->insert(out->end(), static_cast<const char*>(local),
              static_cast<const char*>(local) + local_bytes);
  for (int pe = 1; pe < npes; ++pe) {
    // Receive strictly in PE order so blocks concatenate correctly.
    std::uint64_t len = 0;
    sm::SmRecv(&len, sizeof(len), kTagGatherLen, pe);
    const std::size_t off = out->size();
    out->resize(off + len);
    if (len > 0) {
      sm::SmRecv(out->data() + off, len, kTagGather, pe);
    }
  }
  return true;
}

}  // namespace detail
}  // namespace converse::dp

// --------------------------- 2-D distribution -----------------------------------

namespace converse::dp {

ProcessGrid ProcessGrid::For(int npes) {
  ProcessGrid g;
  // Largest factor <= sqrt(npes) gives the most-square grid.
  int best = 1;
  for (int f = 1; f * f <= npes; ++f) {
    if (npes % f == 0) best = f;
  }
  g.py = best;
  g.px = npes / best;
  return g;
}

namespace {

/// 1-D block split helper: [begin, end) of `pe` among `parts`.
std::pair<std::size_t, std::size_t> Block(std::size_t n, int parts, int pe) {
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  const auto p = static_cast<std::size_t>(pe);
  const std::size_t begin = p * base + (p < extra ? p : extra);
  return {begin, begin + base + (p < extra ? 1 : 0)};
}

int BlockOwner(std::size_t n, int parts, std::size_t i) {
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  const std::size_t cutoff = extra * (base + 1);
  if (i < cutoff) return static_cast<int>(i / (base + 1));
  if (base == 0) return parts - 1;
  return static_cast<int>(extra + (i - cutoff) / base);
}

}  // namespace

Distribution2D::Distribution2D(std::size_t nx, std::size_t ny, int npes,
                               int pe)
    : nx_(nx), ny_(ny), grid_(ProcessGrid::For(npes)) {
  assert(pe >= 0 && pe < npes);
  pe_x_ = pe % grid_.px;
  pe_y_ = pe / grid_.px;
  std::tie(x_begin_, x_end_) = Block(nx, grid_.px, pe_x_);
  std::tie(y_begin_, y_end_) = Block(ny, grid_.py, pe_y_);
}

int Distribution2D::Owner(std::size_t x, std::size_t y) const {
  assert(x < nx_ && y < ny_);
  const int ox = BlockOwner(nx_, grid_.px, x);
  const int oy = BlockOwner(ny_, grid_.py, y);
  return oy * grid_.px + ox;
}

int Distribution2D::NeighborPe(int dx, int dy) const {
  const int nx2 = pe_x_ + dx;
  const int ny2 = pe_y_ + dy;
  if (nx2 < 0 || nx2 >= grid_.px || ny2 < 0 || ny2 >= grid_.py) return -1;
  return ny2 * grid_.px + nx2;
}

namespace detail {

namespace {
// Private SM tag range for 2-D halos; direction is encoded in the tag and
// the sender is matched explicitly, so concurrent exchanges on the four
// sides cannot cross.
constexpr int kTag2DToRight = 0x44500011;  // payload: my right column
constexpr int kTag2DToLeft = 0x44500012;   // payload: my left column
constexpr int kTag2DToUp = 0x44500013;     // payload: my top row
constexpr int kTag2DToDown = 0x44500014;   // payload: my bottom row
}  // namespace

void HaloExchange2D(const Distribution2D& dist, std::size_t elem_size,
                    const void* send_left, const void* send_right,
                    const void* send_down, const void* send_up,
                    void* recv_left, void* recv_right, void* recv_down,
                    void* recv_up) {
  const int left = dist.NeighborPe(-1, 0);
  const int right = dist.NeighborPe(+1, 0);
  const int down = dist.NeighborPe(0, -1);
  const int up = dist.NeighborPe(0, +1);
  const std::size_t col_bytes = elem_size * dist.local_ny();
  const std::size_t row_bytes = elem_size * dist.local_nx();

  // Send all four sides first (sends are buffered), then receive.
  if (left >= 0) sm::SmSend(left, kTag2DToLeft, send_left, col_bytes);
  if (right >= 0) sm::SmSend(right, kTag2DToRight, send_right, col_bytes);
  if (down >= 0) sm::SmSend(down, kTag2DToDown, send_down, row_bytes);
  if (up >= 0) sm::SmSend(up, kTag2DToUp, send_up, row_bytes);

  if (left >= 0) sm::SmRecv(recv_left, col_bytes, kTag2DToRight, left);
  if (right >= 0) sm::SmRecv(recv_right, col_bytes, kTag2DToLeft, right);
  if (down >= 0) sm::SmRecv(recv_down, row_bytes, kTag2DToUp, down);
  if (up >= 0) sm::SmRecv(recv_up, row_bytes, kTag2DToDown, up);
}

}  // namespace detail
}  // namespace converse::dp
