// Processor groups and tree multicast (paper EMI, appendix §3.8).
#include "converse/pgrp.h"

#include <cassert>
#include <cstring>
#include <map>

#include "converse/detail/module.h"
#include "converse/util/pack.h"
#include "core/msg_pool.h"
#include "core/pe_state.h"

namespace converse {
namespace {

struct PgrpDesc {
  int root = -1;
  std::vector<int> members;                // root first, then added order
  std::map<int, int> parent;               // pe -> parent pe (root -> -1)
  std::map<int, std::vector<int>> children;  // pe -> children

  bool IsMember(int pe) const { return parent.contains(pe); }
};

struct McastWire {
  std::int32_t gid;
  std::int32_t orig_sender;
  std::uint32_t inner_size;  // total size of the wrapped message
  std::uint32_t pad;
  // followed by the complete inner message (header + payload)
};

struct PgrpState {
  int desc_handler = -1;
  int mcast_handler = -1;
  std::map<int, PgrpDesc> groups;
  int next_local_id = 0;
};

int ModuleId();

PgrpState& St() {
  return *static_cast<PgrpState*>(detail::ModuleState(ModuleId()));
}

std::vector<char> SerializeDesc(int gid, const PgrpDesc& d) {
  util::Packer p;
  p.Put<std::int32_t>(gid);
  p.Put<std::int32_t>(d.root);
  p.PutArray(d.members.data(), d.members.size());
  p.Put<std::uint64_t>(d.parent.size());
  for (const auto& [pe, par] : d.parent) {
    p.Put<std::int32_t>(pe);
    p.Put<std::int32_t>(par);
  }
  auto bytes = p.Take();
  return {reinterpret_cast<char*>(bytes.data()),
          reinterpret_cast<char*>(bytes.data()) + bytes.size()};
}

void DeserializeDesc(const void* data, std::size_t size) {
  util::Unpacker u(data, size);
  const int gid = u.Get<std::int32_t>();
  PgrpDesc d;
  d.root = u.Get<std::int32_t>();
  d.members = u.GetArray<int>();
  const auto nparents = u.Get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nparents; ++i) {
    const int pe = u.Get<std::int32_t>();
    const int par = u.Get<std::int32_t>();
    d.parent[pe] = par;
    if (par >= 0) d.children[par].push_back(pe);
  }
  St().groups[gid] = std::move(d);
}

void DescHandler(void* msg) {
  DeserializeDesc(CmiMsgPayload(msg), CmiMsgPayloadSize(msg));
}

/// Forward a multicast wrapper down this PE's subtree and deliver the inner
/// message locally (unless this PE is the original sender).
void ForwardMcast(void* wrapper) {
  PgrpState& st = St();
  const auto* wire = static_cast<const McastWire*>(CmiMsgPayload(wrapper));
  auto it = st.groups.find(wire->gid);
  assert(it != st.groups.end() &&
         "multicast reached a PE without the group descriptor; did the "
         "root call CmiPgrpDistribute?");
  const PgrpDesc& desc = it->second;
  const int me = CmiMyPe();
  const auto kids = desc.children.find(me);
  if (kids != desc.children.end()) {
    for (int child : kids->second) {
      CmiSyncSend(static_cast<unsigned>(child),
                  static_cast<unsigned>(CmiMsgTotalSize(wrapper)), wrapper);
    }
  }
  if (me != wire->orig_sender) {
    // Deliver a private copy of the inner message with network-delivery
    // (system-owned) semantics, so handlers behave identically for direct
    // sends and multicasts.
    void* inner = CmiAlloc(wire->inner_size);
    std::memcpy(inner, wire + 1, wire->inner_size);
    detail::Header(inner)->magic = detail::kMsgMagicAlive;
    detail::MsgPoolRestampFlag(inner);  // memcpy clobbered the pooled bit
    ++detail::CpvChecked().stats.msgs_delivered;
    detail::DispatchMessage(inner, /*system_owned=*/true);
  }
}

void McastHandler(void* wrapper) { ForwardMcast(wrapper); }

int ModuleId() {
  static const int id = detail::RegisterModule(
      "pgrp",
      [](int module_id) {
        auto* st = new PgrpState;
        st->desc_handler = CmiRegisterHandler(&DescHandler);
        st->mcast_handler = CmiRegisterHandler(&McastHandler);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<PgrpState*>(state); });
  return id;
}

const PgrpDesc& Desc(const Pgrp* group) {
  PgrpState& st = St();
  auto it = st.groups.find(group->id);
  assert(it != st.groups.end() &&
         "group descriptor not present on this PE");
  return it->second;
}

}  // namespace

void CmiPgrpCreate(Pgrp* group) {
  PgrpState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  group->root = pe.mype;
  group->id = pe.mype + pe.npes * st.next_local_id++;
  PgrpDesc d;
  d.root = pe.mype;
  d.members.push_back(pe.mype);
  d.parent[pe.mype] = -1;
  st.groups[group->id] = std::move(d);
}

void CmiPgrpDestroy(Pgrp* group) {
  St().groups.erase(group->id);
  group->id = -1;
  group->root = -1;
}

void CmiAddChildren(Pgrp* group, int penum, int size, const int procs[]) {
  PgrpState& st = St();
  auto it = st.groups.find(group->id);
  assert(it != st.groups.end() && CmiMyPe() == it->second.root &&
         "CmiAddChildren may only be called by the group root");
  PgrpDesc& d = it->second;
  assert(d.IsMember(penum) && "parent PE is not in the group");
  for (int i = 0; i < size; ++i) {
    const int p = procs[i];
    assert(!d.IsMember(p) && "PE added to a group twice");
    d.parent[p] = penum;
    d.children[penum].push_back(p);
    d.members.push_back(p);
  }
}

void CmiPgrpDistribute(const Pgrp* group) {
  const PgrpDesc& d = Desc(group);
  assert(CmiMyPe() == d.root);
  const auto bytes = SerializeDesc(group->id, d);
  for (int member : d.members) {
    if (member == d.root) continue;
    void* msg = CmiMakeMessage(St().desc_handler, bytes.data(), bytes.size());
    detail::SendOwned(member, msg);
  }
}

bool CmiPgrpReady(const Pgrp* group) {
  return St().groups.contains(group->id);
}

int CmiPgrpRoot(const Pgrp* group) { return Desc(group).root; }

int CmiNumChildren(const Pgrp* group, int penum) {
  const PgrpDesc& d = Desc(group);
  auto it = d.children.find(penum);
  return it == d.children.end() ? 0 : static_cast<int>(it->second.size());
}

int CmiParent(const Pgrp* group, int penum) {
  const PgrpDesc& d = Desc(group);
  auto it = d.parent.find(penum);
  assert(it != d.parent.end() && "PE is not a member of the group");
  return it->second;
}

void CmiChildren(const Pgrp* group, int node, int* children) {
  const PgrpDesc& d = Desc(group);
  auto it = d.children.find(node);
  if (it == d.children.end()) return;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    children[i] = it->second[i];
  }
}

std::vector<int> CmiPgrpMembers(const Pgrp* group) {
  return Desc(group).members;
}

void CmiAsyncMulticastImpl(const Pgrp* group, unsigned int size, void* msg) {
  PgrpState& st = St();
  const int me = CmiMyPe();
  void* wrapper =
      CmiAlloc(sizeof(detail::MsgHeader) + sizeof(McastWire) + size);
  CmiSetHandler(wrapper, st.mcast_handler);
  auto* wire = static_cast<McastWire*>(CmiMsgPayload(wrapper));
  wire->gid = group->id;
  wire->orig_sender = me;
  wire->inner_size = size;
  wire->pad = 0;
  std::memcpy(wire + 1, msg, size);

  // Enter the tree at the root; if the caller *is* the root, forward
  // directly without a network hop.
  const int root = group->root;
  if (me == root) {
    ForwardMcast(wrapper);
    CmiFree(wrapper);
  } else {
    detail::SendOwned(root, wrapper);
  }
}

}  // namespace converse

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::PgrpModuleRegister() { return converse::ModuleId(); }
