// Spanning-tree reductions, all-reduce, and barriers.
//
// Split-phase protocol: every PE's k-th machine-wide collective call
// belongs to operation number k (SPMD ordering contract).  Contributions
// flow up the machine spanning tree, merged at each node; the root either
// delivers the result locally (CmiReduce) or broadcasts it (all-reduce /
// barrier).  Completion on each PE goes to that PE's locally recorded
// continuation, so user handler indices never cross PEs.
#include "converse/collectives.h"

#include <cassert>
#include <cstring>
#include <map>

#include "converse/csd.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse {
namespace {

enum class OpKind : std::int32_t { kReduce = 0, kAllReduce = 1, kBarrier = 2 };

struct ContribWire {
  std::uint64_t seq;
  std::int32_t reducer;
  std::uint32_t size;
  // followed by `size` bytes of partially reduced data
};

struct ResultWire {
  std::uint64_t seq;
  std::uint32_t size;
  // followed by `size` bytes of result
};

struct RedOp {
  std::vector<char> acc;
  bool have_local = false;
  int child_contribs = 0;
  // Local continuation (valid once have_local):
  OpKind kind = OpKind::kReduce;
  int reducer = -1;
  int user_handler = -1;
  std::function<void(const void*, std::size_t)> callback;  // blocking path
};

struct CollState {
  int contrib_handler = -1;
  int result_handler = -1;
  std::vector<CmiReducerFn> reducers;
  std::map<std::uint64_t, RedOp> ops;
  std::uint64_t next_seq = 0;
  // Built-in reducer indices.
  int sum_i64, max_i64, min_i64, sum_f64, max_f64, min_f64, or64, and64;
};

int ModuleId();

CollState& St() {
  return *static_cast<CollState*>(detail::ModuleState(ModuleId()));
}

template <typename T, typename F>
CmiReducerFn MakeTypedReducer(F combine) {
  return [combine](void* acc, const void* contrib, std::size_t size) {
    assert(size % sizeof(T) == 0);
    auto* a = static_cast<T*>(acc);
    const auto* c = static_cast<const T*>(contrib);
    for (std::size_t i = 0; i < size / sizeof(T); ++i) {
      a[i] = combine(a[i], c[i]);
    }
  };
}

void MergeContribution(CollState& st, RedOp& op, int reducer,
                       const void* data, std::size_t size) {
  if (op.acc.empty() && size > 0) {
    op.acc.assign(static_cast<const char*>(data),
                  static_cast<const char*>(data) + size);
    return;
  }
  if (size == 0) return;  // barrier: nothing to merge
  assert(op.acc.size() == size && "mismatched collective sizes across PEs");
  assert(reducer >= 0 && reducer < static_cast<int>(st.reducers.size()));
  st.reducers[static_cast<std::size_t>(reducer)](op.acc.data(), data, size);
}

void DeliverLocal(RedOp& op, const void* data, std::size_t size) {
  if (op.callback) {
    op.callback(data, size);
    return;
  }
  assert(op.user_handler >= 0);
  void* msg = CmiMakeMessage(op.user_handler, data, size);
  CsdEnqueue(msg);  // converse-lint: allow(enqueue-delivered-buffer) msg built above
}

/// Called whenever an op may have become complete on this PE.
void MaybeComplete(CollState& st, std::uint64_t seq) {
  auto it = st.ops.find(seq);
  if (it == st.ops.end()) return;
  RedOp& op = it->second;
  detail::PeState& pe = detail::CpvChecked();
  const auto& tree = pe.machine->tree();
  if (!op.have_local || op.child_contribs != tree.NumChildren(pe.mype)) {
    return;
  }
  const int parent = tree.Parent(pe.mype);
  if (parent >= 0) {
    // Interior/leaf node: pass the merged subtree contribution up.
    const std::size_t size = op.acc.size();
    void* msg =
        CmiAlloc(sizeof(detail::MsgHeader) + sizeof(ContribWire) + size);
    CmiSetHandler(msg, st.contrib_handler);
    auto* wire = static_cast<ContribWire*>(CmiMsgPayload(msg));
    wire->seq = seq;
    wire->reducer = op.reducer;
    wire->size = static_cast<std::uint32_t>(size);
    if (size > 0) std::memcpy(wire + 1, op.acc.data(), size);
    detail::SendOwned(parent, msg);
    // Reduce-to-root ops are finished on non-root PEs.
    if (op.kind == OpKind::kReduce) {
      st.ops.erase(it);
    } else {
      // Keep a stub so the result broadcast can find the continuation.
      op.acc.clear();
      op.child_contribs = -1;  // mark "sent up, awaiting result"
    }
    if (op.kind == OpKind::kReduce) return;
    return;
  }
  // Root: deliver or broadcast.
  if (op.kind == OpKind::kReduce) {
    DeliverLocal(op, op.acc.data(), op.acc.size());
    st.ops.erase(it);
    return;
  }
  const std::size_t size = op.acc.size();
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(ResultWire) + size);
  CmiSetHandler(msg, st.result_handler);
  auto* wire = static_cast<ResultWire*>(CmiMsgPayload(msg));
  wire->seq = seq;
  wire->size = static_cast<std::uint32_t>(size);
  if (size > 0) std::memcpy(wire + 1, op.acc.data(), size);
  CmiSyncBroadcastAllAndFree(
      static_cast<unsigned int>(CmiMsgTotalSize(msg)), msg);
  // Root's own completion arrives via the broadcast like everyone else's.
}

void ContribHandler(void* msg) {
  CollState& st = St();
  const auto* wire = static_cast<const ContribWire*>(CmiMsgPayload(msg));
  RedOp& op = st.ops[wire->seq];
  MergeContribution(st, op, wire->reducer, wire + 1, wire->size);
  ++op.child_contribs;
  MaybeComplete(st, wire->seq);
}

void ResultHandler(void* msg) {
  CollState& st = St();
  const auto* wire = static_cast<const ResultWire*>(CmiMsgPayload(msg));
  auto it = st.ops.find(wire->seq);
  assert(it != st.ops.end() &&
         "collective result for an operation this PE never issued");
  RedOp op = std::move(it->second);
  st.ops.erase(it);
  DeliverLocal(op, wire + 1, wire->size);
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "collectives",
      [](int module_id) {
        auto* st = new CollState;
        st->contrib_handler = CmiRegisterHandler(&ContribHandler);
        st->result_handler = CmiRegisterHandler(&ResultHandler);
        auto reg = [&st](CmiReducerFn fn) {
          st->reducers.push_back(std::move(fn));
          return static_cast<int>(st->reducers.size()) - 1;
        };
        using i64 = std::int64_t;
        using u64 = std::uint64_t;
        st->sum_i64 = reg(MakeTypedReducer<i64>([](i64 a, i64 b) { return a + b; }));
        st->max_i64 = reg(MakeTypedReducer<i64>([](i64 a, i64 b) { return a > b ? a : b; }));
        st->min_i64 = reg(MakeTypedReducer<i64>([](i64 a, i64 b) { return a < b ? a : b; }));
        st->sum_f64 = reg(MakeTypedReducer<double>([](double a, double b) { return a + b; }));
        st->max_f64 = reg(MakeTypedReducer<double>([](double a, double b) { return a > b ? a : b; }));
        st->min_f64 = reg(MakeTypedReducer<double>([](double a, double b) { return a < b ? a : b; }));
        st->or64 = reg(MakeTypedReducer<u64>([](u64 a, u64 b) { return a | b; }));
        st->and64 = reg(MakeTypedReducer<u64>([](u64 a, u64 b) { return a & b; }));
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<CollState*>(state); });
  return id;
}

/// Common entry for all collective calls.
void Contribute(const void* data, std::size_t size, int reducer, OpKind kind,
                int user_handler,
                std::function<void(const void*, std::size_t)> callback) {
  CollState& st = St();
  const std::uint64_t seq = st.next_seq++;
  RedOp& op = st.ops[seq];
  assert(!op.have_local && "collective sequence mismatch");
  op.have_local = true;
  op.kind = kind;
  op.reducer = reducer;
  op.user_handler = user_handler;
  op.callback = std::move(callback);
  MergeContribution(st, op, reducer, data, size);
  MaybeComplete(st, seq);
}

}  // namespace

int CmiSpanTreeRoot() {
  return detail::CpvChecked().machine->tree().root();
}
int CmiSpanTreeParent(int pe) {
  return detail::CpvChecked().machine->tree().Parent(pe);
}
std::vector<int> CmiSpanTreeChildren(int pe) {
  return detail::CpvChecked().machine->tree().Children(pe);
}

void CmiApplyReducer(int reducer, void* acc, const void* contrib,
                     std::size_t size) {
  CollState& st = St();
  assert(reducer >= 0 && reducer < static_cast<int>(st.reducers.size()));
  st.reducers[static_cast<std::size_t>(reducer)](acc, contrib, size);
}

int CmiRegisterReducer(CmiReducerFn fn) {
  CollState& st = St();
  st.reducers.push_back(std::move(fn));
  return static_cast<int>(st.reducers.size()) - 1;
}

int CmiReducerSumI64() { return St().sum_i64; }
int CmiReducerMaxI64() { return St().max_i64; }
int CmiReducerMinI64() { return St().min_i64; }
int CmiReducerSumF64() { return St().sum_f64; }
int CmiReducerMaxF64() { return St().max_f64; }
int CmiReducerMinF64() { return St().min_f64; }
int CmiReducerBitOr64() { return St().or64; }
int CmiReducerBitAnd64() { return St().and64; }

void CmiReduce(const void* data, std::size_t size, int reducer,
               int root_handler) {
  Contribute(data, size, reducer, OpKind::kReduce, root_handler, nullptr);
}

void CmiAllReduce(const void* data, std::size_t size, int reducer,
                  int handler) {
  Contribute(data, size, reducer, OpKind::kAllReduce, handler, nullptr);
}

void CmiAllReduceBlocking(void* data_inout, std::size_t size, int reducer) {
  bool done = false;
  Contribute(data_inout, size, reducer, OpKind::kAllReduce, -1,
             [&done, data_inout, size](const void* result, std::size_t n) {
               assert(n == size);
               std::memcpy(data_inout, result, n);
               done = true;
             });
  while (!done) CsdScheduler(1);
}

std::int64_t CmiAllReduceI64(std::int64_t value, int reducer) {
  CmiAllReduceBlocking(&value, sizeof(value), reducer);
  return value;
}

double CmiAllReduceF64(double value, int reducer) {
  CmiAllReduceBlocking(&value, sizeof(value), reducer);
  return value;
}

void CmiBarrier(int handler) {
  Contribute(nullptr, 0, -1, OpKind::kBarrier, handler, nullptr);
}

void CmiBarrierBlocking() {
  bool done = false;
  Contribute(nullptr, 0, -1, OpKind::kBarrier, -1,
             [&done](const void*, std::size_t) { done = true; });
  while (!done) CsdScheduler(1);
}

}  // namespace converse

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::CollectivesModuleRegister() { return converse::ModuleId(); }
