#include "converse/gptr.h"

#include <cassert>
#include <cstring>
#include <map>

#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse {
namespace {

// All gptr traffic — get requests, put requests, and replies — shares ONE
// handler.  This matters for the synchronous calls: while a PE blocks in
// CmiSyncGet/CmiSyncPut it receives only gptr traffic (SPM purity), but it
// must still *serve* requests from other PEs or a cycle of blocked getters
// would deadlock.  One handler makes CmiGetSpecificMsg cover both.
enum class WireKind : std::int32_t { kGet = 0, kPut = 1, kReply = 2 };

struct GptrWire {
  std::int32_t kind;      // WireKind
  std::int32_t peer;      // requests: reply PE; replies: unused
  std::uint64_t req_id;
  std::uint64_t addr;     // requests only
  std::uint32_t size;     // payload bytes that follow (put data/get reply)
  std::uint32_t pad;
};

struct Outstanding {
  void* lptr = nullptr;  // destination for get replies
  // Completion record shared with the CommHandle (core/stream.h protocol:
  // the reply completes it; whoever sees pending==0 && released frees it).
  detail::AsyncCompletion* done = nullptr;
};

struct GptrState {
  int handler = -1;
  std::uint64_t next_req = 0;
  std::map<std::uint64_t, Outstanding> outstanding;
};

int ModuleId();

GptrState& St() {
  return *static_cast<GptrState*>(detail::ModuleState(ModuleId()));
}

void* MakeWireMsg(int handler, WireKind kind, std::uint64_t req_id,
                  std::uint64_t addr, const void* data, std::uint32_t size) {
  void* msg = CmiAlloc(sizeof(detail::MsgHeader) + sizeof(GptrWire) + size);
  CmiSetHandler(msg, handler);
  auto* wire = static_cast<GptrWire*>(CmiMsgPayload(msg));
  wire->kind = static_cast<std::int32_t>(kind);
  wire->peer = CmiMyPe();
  wire->req_id = req_id;
  wire->addr = addr;
  wire->size = size;
  wire->pad = 0;
  if (size > 0) std::memcpy(wire + 1, data, size);
  return msg;
}

/// Process one gptr message (from the scheduler or from a blocked wait).
void Process(const void* msg) {
  GptrState& st = St();
  const auto* wire = static_cast<const GptrWire*>(CmiMsgPayload(msg));
  switch (static_cast<WireKind>(wire->kind)) {
    case WireKind::kGet: {
      void* local = reinterpret_cast<void*>(wire->addr);
      void* reply = MakeWireMsg(st.handler, WireKind::kReply, wire->req_id,
                                0, local, wire->size);
      detail::SendOwned(wire->peer, reply);
      return;
    }
    case WireKind::kPut: {
      void* local = reinterpret_cast<void*>(wire->addr);
      std::memcpy(local, wire + 1, wire->size);
      void* ack = MakeWireMsg(st.handler, WireKind::kReply, wire->req_id,
                              0, nullptr, 0);
      detail::SendOwned(wire->peer, ack);
      return;
    }
    case WireKind::kReply: {
      auto it = st.outstanding.find(wire->req_id);
      assert(it != st.outstanding.end() && "gptr reply for unknown request");
      if (wire->size > 0) {
        std::memcpy(it->second.lptr, wire + 1, wire->size);
      }
      detail::CstCompleteOne(it->second.done);
      st.outstanding.erase(it);
      return;
    }
  }
  assert(false && "corrupt gptr wire kind");
}

void GptrHandler(void* msg) { Process(msg); }

int ModuleId() {
  static const int id = detail::RegisterModule(
      "gptr",
      [](int module_id) {
        auto* st = new GptrState;
        st->handler = CmiRegisterHandler(&GptrHandler);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<GptrState*>(state); });
  return id;
}

/// Issue a request; returns a handle whose completion flag the reply sets.
CommHandle Issue(WireKind kind, const GlobalPtr* gptr, void* lptr,
                 const void* src, unsigned int size) {
  assert(kind == WireKind::kGet || kind == WireKind::kPut);
  assert(size <= gptr->size && "get/put exceeds registered region size");
  GptrState& st = St();
  detail::PeState& pe = detail::CpvChecked();

  auto* done = new detail::AsyncCompletion{1, false};

  // Local fast path: service the request without a network round trip, as
  // a real machine layer would for self-references.
  if (gptr->pe == pe.mype) {
    void* local = reinterpret_cast<void*>(gptr->addr);
    if (kind == WireKind::kGet) {
      std::memcpy(lptr, local, size);
    } else {
      std::memcpy(local, src, size);
    }
    done->pending = 0;
    return CommHandle{done};
  }

  const std::uint64_t req_id = st.next_req++;
  st.outstanding[req_id] = Outstanding{lptr, done};
  void* msg = MakeWireMsg(st.handler, kind, req_id, gptr->addr,
                          kind == WireKind::kPut ? src : nullptr,
                          kind == WireKind::kPut ? size : 0);
  if (kind == WireKind::kGet) {
    static_cast<GptrWire*>(CmiMsgPayload(msg))->size = size;
  }
  detail::SendOwned(gptr->pe, msg);
  return CommHandle{done};
}

/// Wait for `done`, receiving only gptr traffic — serving remote requests
/// and consuming replies, nothing else (SPM-safe).
void WaitDone(const detail::AsyncCompletion* done) {
  GptrState& st = St();
  while (done->pending != 0) {
    void* msg = CmiGetSpecificMsg(st.handler);
    Process(msg);
    // The buffer is MMI-owned; the next MMI receive reclaims it.
  }
}

}  // namespace

int CmiGptrCreate(GlobalPtr* gptr, void* lptr, unsigned int size) {
  gptr->pe = CmiMyPe();
  gptr->size = size;
  gptr->addr = reinterpret_cast<std::uint64_t>(lptr);
  return 1;
}

void* CmiGptrDref(GlobalPtr* gptr) {
  assert(gptr->pe == CmiMyPe() &&
         "CmiGptrDref on a pointer owned by another PE");
  return reinterpret_cast<void*>(gptr->addr);
}

int CmiSyncGet(const GlobalPtr* gptr, void* lptr, unsigned int size) {
  CommHandle h = Issue(WireKind::kGet, gptr, lptr, nullptr, size);
  CmiWaitHandle(h);
  return 1;
}

int CmiSyncPut(const GlobalPtr* gptr, const void* lptr, unsigned int size) {
  CommHandle h = Issue(WireKind::kPut, gptr, nullptr, lptr, size);
  CmiWaitHandle(h);
  return 1;
}

CommHandle CmiGet(const GlobalPtr* gptr, void* lptr, unsigned int size) {
  return Issue(WireKind::kGet, gptr, lptr, nullptr, size);
}

CommHandle CmiPut(const GlobalPtr* gptr, const void* lptr,
                  unsigned int size) {
  return Issue(WireKind::kPut, gptr, nullptr, lptr, size);
}

void CmiWaitHandle(CommHandle handle) {
  if (handle.rec != nullptr) {
    WaitDone(static_cast<const detail::AsyncCompletion*>(handle.rec));
  }
  CmiReleaseCommHandle(handle);
}

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::GptrModuleRegister() { return converse::ModuleId(); }

}  // namespace converse
