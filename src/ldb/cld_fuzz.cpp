// Load-balancer fuzzing (tools/simfuzz --ldb): run a seeded skewed seed
// workload through converse/cld.h under the deterministic simulator and
// check the conservation oracles of converse/cld.h against the injector's
// exact fault counts.  Mirrors the structure of src/svc/svc_fuzz.cpp: a
// case is a pure function of LdbFuzzParams, failing seeds shrink greedily,
// and a one-line replay command reproduces any failure.
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "converse/cld.h"
#include "converse/cmi.h"
#include "converse/csd.h"
#include "converse/handlers.h"
#include "converse/machine.h"
#include "converse/msg.h"
#include "converse/util/rng.h"

namespace converse::ldb {
namespace {

constexpr std::uint32_t kPlantEvery = 3;
constexpr double kWaveGapUs = 200.0;  // virtual time between spawn bursts

/// Per-PE workload tally (single writer: the owning PE; the sim serializes
/// all cross-PE execution, and results are only summed after the machine
/// joined).
struct WlPe {
  std::uint64_t spawned = 0;
  std::uint64_t executed = 0;
  std::uint64_t aux_sent = 0;      // wave-timer self-sends (fault-exempt)
  std::uint64_t aux_received = 0;
  CldCounters cld;
};

struct Wl {
  LdbFuzzParams p;
  int strategy = 0;
  std::vector<WlPe> pes;
};

Wl* g_wl = nullptr;  // fuzz cases run one at a time (set before RunConverse)

// Handler indices are identical on every PE because every PE registers the
// two workload handlers in the same order inside the entry (per-PE-thread
// slots: handler tables are per machine run).
int& WlSeedHandlerSlot() {
  thread_local int idx = -1;
  return idx;
}
int& WlWaveHandlerSlot() {
  thread_local int idx = -1;
  return idx;
}

/// Spawn one wave's worth of seeds on the calling PE: skewed integer costs
/// (declared to the balancer via CldChargeTime when the seed runs) and a
/// prio_fraction slice of prioritized seeds, all drawn from a per-PE
/// SplitMix stream so the workload is a pure function of (seed, pe, wave).
void SpawnWave(Wl& wl, int mype, int wave) {
  WlPe& me = wl.pes[static_cast<std::size_t>(mype)];
  const std::uint64_t per_wave =
      wl.p.seeds_per_pe / static_cast<std::uint64_t>(wl.p.waves);
  std::uint64_t n = per_wave;
  if (wave == wl.p.waves - 1) {
    n += wl.p.seeds_per_pe % static_cast<std::uint64_t>(wl.p.waves);
  }
  util::SplitMix64 sm(wl.p.seed ^
                      (0x9e3779b97f4a7c15ULL *
                       static_cast<std::uint64_t>(mype * 131 + wave + 1)));
  const auto prio_per_mille =
      static_cast<std::uint64_t>(wl.p.prio_fraction * 1000.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Skewed cost: the product of two small uniforms clusters near zero
    // with a long-ish tail, enough spread to make backlogs uneven.
    const std::uint32_t cost =
        1 + static_cast<std::uint32_t>((sm.Next() % 8) * (sm.Next() % 8));
    void* seed = CmiMakeMessage(WlSeedHandlerSlot(), &cost, sizeof(cost));
    ++me.spawned;
    if (sm.Next() % 1000 < prio_per_mille) {
      CldEnqueuePrio(seed, static_cast<std::int32_t>(sm.Next() % 16));
    } else {
      CldEnqueue(seed);
    }
  }
}

void ArmNextWave(Wl& wl, int mype, int next_wave) {
  if (next_wave >= wl.p.waves) return;
  WlPe& me = wl.pes[static_cast<std::size_t>(mype)];
  const std::int32_t w = next_wave;
  void* msg = CmiMakeMessage(WlWaveHandlerSlot(), &w, sizeof(w));
  ++me.aux_sent;
  // Delayed self-send: a reliable virtual-time timer even under faults.
  CmiSyncSendDelayedAndFree(static_cast<unsigned>(mype),
                            static_cast<unsigned>(CmiMsgTotalSize(msg)), msg,
                            kWaveGapUs * (next_wave + 1));
}

void Entry(int mype, int npes) {
  (void)npes;
  Wl& wl = *g_wl;
  CldSetStrategy(static_cast<CldStrategy>(wl.strategy));
  if (wl.p.plant_lost_steal_reply) CldSetLoseStealReplyEvery(kPlantEvery);

  WlSeedHandlerSlot() = CmiRegisterHandler([](void* msg) {
    Wl& w = *g_wl;
    WlPe& me = w.pes[static_cast<std::size_t>(CmiMyPe())];
    ++me.executed;
    std::uint32_t cost = 0;
    std::memcpy(&cost, CmiMsgPayload(msg), sizeof(cost));
    CldChargeTime(static_cast<double>(cost));
    CmiFree(msg);
  });
  WlWaveHandlerSlot() = CmiRegisterHandler([](void* msg) {
    Wl& w = *g_wl;
    const int me = CmiMyPe();
    ++w.pes[static_cast<std::size_t>(me)].aux_received;
    std::int32_t wave = 0;
    std::memcpy(&wave, CmiMsgPayload(msg), sizeof(wave));
    SpawnWave(w, me, wave);
    ArmNextWave(w, me, wave + 1);
  });

  SpawnWave(wl, mype, /*wave=*/0);
  ArmNextWave(wl, mype, /*next_wave=*/1);
  CsdScheduler(-1);  // runs until the sim's global-quiescence exit
  wl.pes[static_cast<std::size_t>(mype)].cld = CldGetCounters();
}

void Fail(LdbFuzzResult& res, const char* fmt, ...) {
  if (!res.failure.empty()) return;
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  res.failure = buf;
}

}  // namespace

LdbFuzzResult RunLdbFuzzCase(const LdbFuzzParams& params) {
  LdbFuzzResult res;
  Wl wl;
  wl.p = params;
  if (params.plant_lost_steal_reply) {
    wl.strategy = static_cast<int>(CldStrategy::kSteal);
  } else if (params.strategy >= 0) {
    wl.strategy = params.strategy % kCldStrategyCount;
  } else {
    wl.strategy = static_cast<int>(util::SplitMix64(params.seed).Next() %
                                   kCldStrategyCount);
  }
  res.strategy = wl.strategy;
  wl.pes.assign(static_cast<std::size_t>(params.npes), WlPe{});
  g_wl = &wl;

  SimConfig sim;
  sim.seed = params.seed;
  sim.faults = params.faults;
  sim.report = &res.report;
  // The balancer workloads push 10^5..10^6 wire messages per case; the
  // background race detector's per-send bookkeeping would dominate the run
  // (CciRace coverage of the steal path lives in test_ldb_stress instead).
  sim.race_detect = false;

  MachineConfig cfg;
  cfg.npes = params.npes;
  cfg.seed = params.seed;
  cfg.sim = &sim;
  // Always explicit (never the -1 env default): a CONVERSE_AGG in the
  // environment must not silently change what a seed replays.
  cfg.aggregate_sends = 0;

  try {
    RunConverse(cfg, &Entry);
  } catch (const std::exception& e) {
    g_wl = nullptr;
    res.ok = false;
    res.failure = std::string("machine aborted: ") + e.what();
    return res;
  }
  g_wl = nullptr;

  CldCounters t;
  std::uint64_t aux_sent = 0;
  std::uint64_t aux_received = 0;
  for (const WlPe& pe : wl.pes) {
    res.spawned += pe.spawned;
    res.executed += pe.executed;
    aux_sent += pe.aux_sent;
    aux_received += pe.aux_received;
    t.spawned += pe.cld.spawned;
    t.placed += pe.cld.placed;
    t.forwarded += pe.cld.forwarded;
    t.stored += pe.cld.stored;
    t.executed_store += pe.cld.executed_store;
    t.stolen_out += pe.cld.stolen_out;
    t.stolen_in += pe.cld.stolen_in;
    t.rebalanced_out += pe.cld.rebalanced_out;
    t.msgs_sent += pe.cld.msgs_sent;
    t.msgs_received += pe.cld.msgs_received;
  }
  res.totals = t;

  if (!res.report.quiesced) {
    Fail(res, "run did not end by global quiescence");
  }
  // The stealable backlog drains exactly under any fault mix: whatever was
  // stored was either executed by the worker, packed into a steal reply, or
  // pushed by a rebalance pass (per-PE single-writer counters).
  if (t.stored != t.executed_store + t.stolen_out + t.rebalanced_out) {
    Fail(res,
         "backlog imbalance: %llu stored != %llu executed + %llu stolen-out "
         "+ %llu rebalanced-out",
         static_cast<unsigned long long>(t.stored),
         static_cast<unsigned long long>(t.executed_store),
         static_cast<unsigned long long>(t.stolen_out),
         static_cast<unsigned long long>(t.rebalanced_out));
  }
  // Total message conservation: the balancer's send counter plus the
  // workload's wave timers say how many wire messages went out, the
  // injector's report says exactly how many it ate or cloned, and the
  // receive-side counters must account for the rest.  A steal reply that
  // silently never gets sent (CldSetLoseStealReplyEvery) inflates the send
  // tally without a matching receive or drop — one of the two oracles that
  // catch the planted bug.
  const std::uint64_t sent = t.msgs_sent + aux_sent;
  const std::uint64_t received = t.msgs_received + aux_received;
  const std::uint64_t expected =
      sent - res.report.msgs_dropped + res.report.msgs_duplicated;
  if (res.failure.empty() && received != expected) {
    Fail(res,
         "conservation violated: %llu balancer+workload messages sent, %llu "
         "dropped + %llu duplicated by injection, but %llu received "
         "(expected %llu)",
         static_cast<unsigned long long>(sent),
         static_cast<unsigned long long>(res.report.msgs_dropped),
         static_cast<unsigned long long>(res.report.msgs_duplicated),
         static_cast<unsigned long long>(received),
         static_cast<unsigned long long>(expected));
  }
  if (!params.faults.Any() && res.failure.empty()) {
    // No faults: every spawned seed takes root and executes exactly once —
    // the oracle that catches a lost steal reply (its packed seeds vanish).
    if (t.spawned != res.spawned) {
      Fail(res, "balancer saw %llu seeds but the workload spawned %llu",
           static_cast<unsigned long long>(t.spawned),
           static_cast<unsigned long long>(res.spawned));
    }
    if (t.placed != res.spawned) {
      Fail(res, "no faults, yet %llu of %llu seeds never took root",
           static_cast<unsigned long long>(res.spawned - t.placed),
           static_cast<unsigned long long>(res.spawned));
    }
    if (res.executed != res.spawned) {
      Fail(res, "no faults, yet %llu of %llu seeds never executed",
           static_cast<unsigned long long>(res.spawned - res.executed),
           static_cast<unsigned long long>(res.spawned));
    }
    if (t.stolen_in != t.stolen_out) {
      Fail(res, "no faults, yet %llu seeds stolen out but %llu landed",
           static_cast<unsigned long long>(t.stolen_out),
           static_cast<unsigned long long>(t.stolen_in));
    }
  }
  res.ok = res.failure.empty();
  return res;
}

LdbFuzzParams MinimizeLdb(const LdbFuzzParams& failing, int budget) {
  LdbFuzzParams best = failing;
  // Pin the strategy: a shrunk case must fail for the same reason, and the
  // -1 draw would re-roll it once other dimensions change.
  best.strategy = RunLdbFuzzCase(failing).strategy;
  auto still_fails = [&budget](const LdbFuzzParams& p) {
    if (budget <= 0) return false;
    --budget;
    return !RunLdbFuzzCase(p).ok;
  };
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    if (best.seeds_per_pe > 1) {
      LdbFuzzParams t = best;
      t.seeds_per_pe = best.seeds_per_pe / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.waves > 1) {
      LdbFuzzParams t = best;
      t.waves = best.waves / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.npes > 2) {
      LdbFuzzParams t = best;
      t.npes = best.npes / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.prio_fraction > 0) {
      LdbFuzzParams t = best;
      t.prio_fraction = 0;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    for (double SimFaults::*dim : {&SimFaults::drop, &SimFaults::dup,
                                   &SimFaults::delay, &SimFaults::reorder}) {
      if (best.faults.*dim == 0) continue;
      LdbFuzzParams t = best;
      t.faults.*dim = 0;
      if (still_fails(t)) {
        best = t;
        improved = true;
        break;
      }
    }
  }
  return best;
}

std::string FormatLdbReplay(const LdbFuzzParams& params) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tools/simfuzz --ldb --seed %llu --pes %d --strategy %d "
                "--lseeds %llu --waves %d --prio-frac %g",
                static_cast<unsigned long long>(params.seed), params.npes,
                params.strategy,
                static_cast<unsigned long long>(params.seeds_per_pe),
                params.waves, params.prio_fraction);
  std::string out = buf;
  const auto add_prob = [&out, &buf](const char* flag, double v) {
    if (v <= 0) return;
    std::snprintf(buf, sizeof(buf), " %s %g", flag, v);
    out += buf;
  };
  add_prob("--drop", params.faults.drop);
  add_prob("--dup", params.faults.dup);
  add_prob("--delay", params.faults.delay);
  add_prob("--reorder", params.faults.reorder);
  if (params.plant_lost_steal_reply) out += " --plant-lost-steal-reply";
  return out;
}

}  // namespace converse::ldb
