// Seed load balancers (paper §3.3.1).
//
// A seed travels as a generalized message whose handler field is
// temporarily replaced by the balancer's own handler; the original handler
// rides in the header's reserved word together with a hop count, so no
// payload copy is ever made while a seed floats.  Under the four legacy
// strategies, when a seed takes root the original handler is restored and
// the message enters the scheduler queue (with its priority, if it had
// one).
//
// The two adaptive strategies (kSteal, kPeriodic) keep placed seeds in a
// per-PE stealable backlog (`CldState::store`) instead: a multimap keyed by
// integer priority, FIFO among equal keys, drained by a per-PE worker that
// executes the best seed next.  The worker is driven by self-sent tick
// messages rather than the scheduler queue, for two reasons: the backlog
// stays movable right up to execution (half of it can be packed into a
// steal reply or pushed by a rebalance pass), and on a timed machine the
// tick's delay carries the virtual cost a seed declared via CldChargeTime —
// which is what lets backlogs, steals, and makespans exist in virtual time
// on a host with any number of cores.
//
// Steal protocol (kSteal): a PE whose store and tick are both empty sends a
// steal request from the scheduler's idle hook — first to a victim drawn
// from a dedicated seeded PRNG, then cycling, so after npes-1 failures
// every peer has been probed.  A victim holding >= 2 stealable seeds packs
// half (priority-coldest first) into one reply message; a victim with
// fewer replies empty but remembers the thief as hungry and pushes half of
// its backlog to it as soon as the backlog regrows.  Every decision is
// folded into the sim's event-trace hash (detail::SimTraceUser), so the
// same sim seed replays the same placements bit-for-bit.
//
// Rebalance protocol (kPeriodic): on timed machines each PE with a backlog
// runs a virtual-clock timer (delayed self-send); every tick it publishes
// its store size to all peers and, when above the resulting average, pushes
// its excess toward under-average peers.  Plain machines would lose the
// delay (delayed self-sends degrade to immediate), so they piggyback the
// same publish-and-push pass on every kRebalanceExecPeriod-th worker
// execution instead.
//
// The legacy strategies never touch any of the adaptive state: no store,
// no hooks firing, no extra messages, no atomics anywhere in this module.
#include "converse/cld.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <vector>

#include "converse/csd.h"
#include "converse/detail/module.h"
#include "converse/util/rng.h"
#include "core/pe_state.h"

namespace converse {
namespace {

constexpr std::uint8_t kMaxNeighborHops = 3;
constexpr int kStatusPeriod = 8;  // decisions between neighbor status sends
constexpr int kDrainPeriod = 8;   // placements between central drain reports

// Adaptive-strategy pacing knobs.
constexpr int kWorkerBatch = 16;  // backlog seeds per tick before yielding to
                                  // message delivery (steal requests must be
                                  // able to interleave with a deep backlog)
constexpr double kPeriodicTickUs = 50.0;    // kPeriodic sample/rebalance period
constexpr std::int64_t kMaxMovesPerTick = 256;  // rebalance push cap per tick
constexpr std::uint64_t kRebalanceExecPeriod = 64;  // plain-machine piggyback

// detail::SimTraceUser event kinds (first hash word), one per decision type.
constexpr std::uint64_t kTraceStealProbe = 0xC1D1;
constexpr std::uint64_t kTraceStealGrant = 0xC1D2;
constexpr std::uint64_t kTraceRebalance = 0xC1D3;

// Header `reserved` word layout for floating seeds.
struct SeedTag {
  std::uint32_t orig_handler;
  std::uint8_t hops;
  std::uint8_t prioritized;
  std::uint16_t pad;
};
static_assert(sizeof(SeedTag) == 8);

SeedTag LoadTag(const void* msg) {
  SeedTag t;
  std::memcpy(&t, &detail::Header(msg)->reserved, sizeof(t));
  return t;
}

void StoreTag(void* msg, const SeedTag& t) {
  std::memcpy(&detail::Header(msg)->reserved, &t, sizeof(t));
}

// Per-seed framing inside a steal reply: the seed's payload follows.
struct PackedSeed {
  std::uint32_t payload_size;
  std::int32_t int_prio;
  SeedTag tag;
};
static_assert(sizeof(PackedSeed) == 16);

struct CldState {
  CldStrategy strat = CldStrategy::kLocal;
  int seed_handler = -1;
  int status_handler = -1;
  int drain_handler = -1;
  int done_handler = -1;
  int worker_handler = -1;
  int steal_req_handler = -1;
  int steal_reply_handler = -1;
  int sample_handler = -1;
  int ptimer_handler = -1;
  // kNeighbor: load estimates for ring neighbors [prev, next].
  std::int64_t neighbor_load[2] = {0, 0};
  // kCentral (meaningful on PE 0): per-PE outstanding assigned seeds.
  std::vector<std::int64_t> outstanding;
  std::uint64_t placed = 0;
  std::uint64_t hops_seen = 0;
  std::uint64_t decisions = 0;
  int placed_since_report = 0;

  // ---- adaptive state (untouched by the legacy strategies) ----
  // The stealable backlog: best (smallest) effective priority first,
  // FIFO among equal priorities (multimap::insert appends to the range).
  std::multimap<std::int32_t, void*> store;
  bool ticking = false;    // a worker tick message is in flight
  bool in_worker = false;  // RunWorker is on the stack (spawns don't re-arm)
  double charge_us = 0.0;  // CldChargeTime accrual for the running seed
  double busy_us = 0.0;    // total charged here, ever
  std::uint64_t execs_since_pass = 0;  // plain-machine rebalance piggyback

  // kSteal.
  util::Xoshiro256 steal_rng{1};
  bool steal_pending = false;
  int steal_fails = 0;   // consecutive empty replies; probing stops at npes-1
  int last_victim = -1;  // cycled through on retries so every PE gets probed
  std::vector<std::uint8_t> hungry;  // thieves we owe a push (empty reply sent)
  int hungry_count = 0;
  std::uint32_t lose_reply_every = 0;  // planted bug (CldSetLoseStealReplyEvery)
  std::uint64_t replies_granted = 0;

  // kPeriodic.
  bool timer_armed = false;
  std::vector<std::int64_t> samples;  // last published store size, per PE

  CldCounters c;
};

int ModuleId();

CldState& St() {
  return *static_cast<CldState*>(detail::ModuleState(ModuleId()));
}

int RingPrev() {
  detail::PeState& pe = detail::CpvChecked();
  return (pe.mype + pe.npes - 1) % pe.npes;
}
int RingNext() {
  detail::PeState& pe = detail::CpvChecked();
  return (pe.mype + 1) % pe.npes;
}

/// All balancer wire traffic funnels through here so CldCounters::msgs_sent
/// stays an exact send count for the conservation oracles.
void SendCld(CldState& st, detail::PeState& pe, int dest, void* msg,
             double delay_us = 0.0) {
  ++st.c.msgs_sent;
  detail::SendOwnedFrom(pe, dest, msg,
                        pe.machine->uses_timedq() ? delay_us : 0.0);
}

/// Restore the seed's own handler and enqueue it locally: the seed has
/// taken root.  Under the central strategy the seed is routed through a
/// completion handler so the dispatcher learns when work *executes*, not
/// merely when it is queued (a queue-time report would make an idle
/// dispatcher PE look permanently unloaded to itself).
void PlaceSeed(void* msg) {
  CldState& st = St();
  const SeedTag tag = LoadTag(msg);
  st.hops_seen += tag.hops;
  ++st.placed;
  ++st.c.placed;
  if (st.strat == CldStrategy::kCentral) {
    CmiSetHandler(msg, st.done_handler);  // keep the SeedTag for later
  } else {
    CmiSetHandler(msg, static_cast<int>(tag.orig_handler));
    StoreTag(msg, SeedTag{});
  }
  if (tag.prioritized != 0) {
    // converse-lint: allow(enqueue-delivered-buffer) seed is handler-owned
    CsdEnqueueIntPrio(msg, detail::Header(msg)->int_prio);
  } else {
    CsdEnqueue(msg);  // converse-lint: allow(enqueue-delivered-buffer)
  }
}

/// Central-strategy completion: runs when the seed is dequeued for
/// execution.  Reports drained work to the dispatcher, then delegates to
/// the seed's own handler (which owns and frees the message).
void DoneHandler(void* msg) {
  CldState& st = St();
  const SeedTag tag = LoadTag(msg);
  StoreTag(msg, SeedTag{});
  CmiSetHandler(msg, static_cast<int>(tag.orig_handler));
  detail::PeState& pe = detail::CpvChecked();
  if (++st.placed_since_report >= kDrainPeriod) {
    if (pe.mype == 0) {
      st.outstanding[0] -= st.placed_since_report;
    } else {
      const std::int32_t n = st.placed_since_report;
      void* report = CmiMakeMessage(st.drain_handler, &n, sizeof(n));
      SendCld(st, pe, 0, report);
    }
    st.placed_since_report = 0;
  }
  CmiGetHandlerFunction(msg)(msg);
}

void ForwardSeed(void* msg, int dest) {
  CldState& st = St();
  ++st.c.forwarded;
  SendCld(st, detail::CpvChecked(), dest, msg);
}

void MaybeSendNeighborStatus(CldState& st) {
  if (++st.decisions % kStatusPeriod != 0) return;
  const std::int64_t load = CldLoad();
  for (int n : {RingPrev(), RingNext()}) {
    if (n == CmiMyPe()) continue;  // npes <= 2 degenerate ring
    void* msg = CmiMakeMessage(st.status_handler, &load, sizeof(load));
    SendCld(st, detail::CpvChecked(), n, msg);
  }
}

// ---------------------------------------------------------------------------
// Adaptive backlog worker.
// ---------------------------------------------------------------------------

/// Send the worker's next tick to ourselves.  Self-sends are exempt from
/// fault injection, so the tick (and with it the whole adaptive execution
/// engine) is reliable even on faulted schedules.
void ArmTick(CldState& st, detail::PeState& pe, double delay_us) {
  assert(!st.ticking);
  st.ticking = true;
  void* tick = CmiMakeMessage(st.worker_handler, "", 0);
  SendCld(st, pe, pe.mype, tick, delay_us);
}

void MaybeArmWorker(CldState& st, detail::PeState& pe) {
  // A running worker loop re-arms itself as needed; a tick in flight will
  // see the new seed when it fires.
  if (st.ticking || st.in_worker) return;
  ArmTick(st, pe, 0.0);
}

void GrantSteal(CldState& st, detail::PeState& pe, int thief);
void PublishAndRebalance(CldState& st, detail::PeState& pe);

/// A thief we owed a push is waiting and the backlog regrew: give the
/// longest-waiting one (scanning from mype+1 so the choice is deterministic
/// and fair-ish) half of the store.
void ServeHungry(CldState& st, detail::PeState& pe) {
  if (st.hungry_count == 0 || st.store.size() < 2) return;
  for (int d = 1; d < pe.npes; ++d) {
    const int thief = (pe.mype + d) % pe.npes;
    if (st.hungry[static_cast<std::size_t>(thief)] == 0) continue;
    st.hungry[static_cast<std::size_t>(thief)] = 0;
    --st.hungry_count;
    GrantSteal(st, pe, thief);
    return;
  }
}

/// Push a seed into the stealable backlog (adaptive strategies' version of
/// taking root; execution happens later, from the worker).
void StoreSeed(CldState& st, detail::PeState& pe, void* msg,
               const SeedTag& tag) {
  const std::int32_t key =
      tag.prioritized != 0 ? detail::Header(msg)->int_prio : 0;
  st.store.insert(std::make_pair(key, msg));
  ++st.c.stored;
  st.steal_fails = 0;  // fresh work: probing may pay again after this drains
  if (st.strat == CldStrategy::kSteal) ServeHungry(st, pe);
  if (st.strat == CldStrategy::kPeriodic && pe.npes > 1 &&
      pe.machine->uses_timedq() && !st.timer_armed) {
    st.timer_armed = true;
    void* t = CmiMakeMessage(st.ptimer_handler, "", 0);
    SendCld(st, pe, pe.mype, t, kPeriodicTickUs);
  }
  MaybeArmWorker(st, pe);
}

/// Execute one backlog seed inline: restore its handler and call it, the
/// same delegation the central strategy's DoneHandler uses.  The handler
/// owns (and frees) the message.
void ExecuteSeed(CldState& st, void* msg) {
  const SeedTag tag = LoadTag(msg);
  st.hops_seen += tag.hops;
  ++st.placed;
  ++st.c.placed;
  ++st.c.executed_store;
  StoreTag(msg, SeedTag{});
  CmiSetHandler(msg, static_cast<int>(tag.orig_handler));
  st.charge_us = 0.0;
  CmiGetHandlerFunction(msg)(msg);
}

/// Drain the backlog, best priority first, pacing with CldChargeTime
/// charges on timed machines and yielding to message delivery every
/// kWorkerBatch seeds.
void RunWorker(CldState& st, detail::PeState& pe) {
  st.in_worker = true;
  int executed = 0;
  while (!st.store.empty()) {
    if (executed >= kWorkerBatch) {
      st.in_worker = false;
      ArmTick(st, pe, 0.0);
      return;
    }
    auto it = st.store.begin();
    void* msg = it->second;
    st.store.erase(it);
    ++executed;
    if (st.strat == CldStrategy::kPeriodic && !pe.machine->uses_timedq() &&
        ++st.execs_since_pass >= kRebalanceExecPeriod) {
      st.execs_since_pass = 0;
      PublishAndRebalance(st, pe);
    }
    ExecuteSeed(st, msg);
    if (st.charge_us > 0.0 && pe.machine->uses_timedq()) {
      // The seed declared virtual cost: the next pop happens that much
      // virtual time later.  Re-arm even with an empty store so the PE's
      // busy interval extends the run's virtual makespan.
      const double d = st.charge_us;
      st.charge_us = 0.0;
      st.in_worker = false;
      ArmTick(st, pe, d);
      return;
    }
    st.charge_us = 0.0;
  }
  st.in_worker = false;
}

void WorkerTickHandler(void*) {
  CldState& st = St();
  ++st.c.msgs_received;
  st.ticking = false;
  RunWorker(st, detail::CpvChecked());
}

// ---------------------------------------------------------------------------
// kSteal protocol.
// ---------------------------------------------------------------------------

/// Pack half of the store (coldest priorities first — the seeds this PE
/// would run last) into one reply and send it to `thief`.  Caller
/// guarantees store.size() >= 2.
void GrantSteal(CldState& st, detail::PeState& pe, int thief) {
  const std::size_t k = st.store.size() / 2;
  assert(k >= 1);
  std::size_t bytes = sizeof(std::uint32_t);
  std::vector<void*> taken;
  taken.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto it = std::prev(st.store.end());
    taken.push_back(it->second);
    st.store.erase(it);
    bytes += sizeof(PackedSeed) + CmiMsgPayloadSize(taken.back());
  }
  std::vector<unsigned char> buf(bytes);
  unsigned char* p = buf.data();
  const auto count = static_cast<std::uint32_t>(k);
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (void* seed : taken) {
    PackedSeed ps;
    ps.payload_size = static_cast<std::uint32_t>(CmiMsgPayloadSize(seed));
    ps.int_prio = detail::Header(seed)->int_prio;
    ps.tag = LoadTag(seed);
    std::memcpy(p, &ps, sizeof(ps));
    p += sizeof(ps);
    std::memcpy(p, CmiMsgPayload(seed), ps.payload_size);
    p += ps.payload_size;
    CmiFree(seed);
  }
  st.c.stolen_out += k;
  ++st.replies_granted;
  ++pe.stats.ldb_steal_msgs;
  detail::SimTraceUser(pe, kTraceStealGrant,
                       (static_cast<std::uint64_t>(pe.mype) << 32) |
                           static_cast<std::uint32_t>(thief),
                       k);
  void* reply =
      CmiMakeMessage(st.steal_reply_handler, buf.data(), buf.size());
  if (st.lose_reply_every != 0 &&
      st.replies_granted % st.lose_reply_every == 0) {
    // Planted bug (simfuzz --ldb self-test): the grant counts as sent but
    // the reply — and the k seeds inside it — silently vanishes.
    ++st.c.msgs_sent;
    CmiFree(reply);
    return;
  }
  SendCld(st, pe, thief, reply);
}

/// Idle hook body for kSteal: nothing to run and no tick pending, so go
/// find a victim.  Returns true when a request went out (the scheduler
/// re-polls instead of blocking).
bool StealProbe(CldState& st, detail::PeState& pe) {
  if (pe.npes < 2) return false;
  if (!st.store.empty() || st.ticking) return false;  // work here or pending
  if (st.steal_pending) return false;                 // a probe is in flight
  if (st.steal_fails >= pe.npes - 1) return false;    // probed everyone: rest
  int victim;
  if (st.steal_fails == 0) {
    victim = static_cast<int>(
        st.steal_rng.Below(static_cast<std::uint64_t>(pe.npes - 1)));
    if (victim >= pe.mype) ++victim;  // uniform over the npes-1 others
  } else {
    victim = (st.last_victim + 1) % pe.npes;
    if (victim == pe.mype) victim = (victim + 1) % pe.npes;
  }
  st.last_victim = victim;
  st.steal_pending = true;
  ++pe.stats.ldb_steal_msgs;
  detail::SimTraceUser(pe, kTraceStealProbe,
                       (static_cast<std::uint64_t>(pe.mype) << 32) |
                           static_cast<std::uint32_t>(victim),
                       static_cast<std::uint64_t>(st.steal_fails));
  void* req = CmiMakeMessage(st.steal_req_handler, "", 0);
  SendCld(st, pe, victim, req);
  return true;
}

void StealReqHandler(void* msg) {
  CldState& st = St();
  ++st.c.msgs_received;
  detail::PeState& pe = detail::CpvChecked();
  const int thief = CmiMsgSourcePe(msg);
  if (st.store.size() >= 2) {
    GrantSteal(st, pe, thief);
    return;
  }
  // Too little to share right now: reply empty so the thief can probe
  // elsewhere, but remember it — StoreSeed pushes half our backlog to a
  // hungry thief the moment it regrows (no work is ever stranded behind an
  // exhausted probe budget).
  if (st.hungry[static_cast<std::size_t>(thief)] == 0) {
    st.hungry[static_cast<std::size_t>(thief)] = 1;
    ++st.hungry_count;
  }
  const std::uint32_t zero = 0;
  void* reply = CmiMakeMessage(st.steal_reply_handler, &zero, sizeof(zero));
  ++pe.stats.ldb_steal_msgs;
  SendCld(st, pe, thief, reply);
}

void StealReplyHandler(void* msg) {
  CldState& st = St();
  ++st.c.msgs_received;
  detail::PeState& pe = detail::CpvChecked();
  st.steal_pending = false;
  const auto* p = static_cast<const unsigned char*>(CmiMsgPayload(msg));
  std::uint32_t count = 0;
  std::memcpy(&count, p, sizeof(count));
  p += sizeof(count);
  if (count == 0) {
    ++st.steal_fails;  // next idle probes the next victim in the cycle
    return;
  }
  ++pe.stats.ldb_steals;
  st.c.stolen_in += count;
  for (std::uint32_t i = 0; i < count; ++i) {
    PackedSeed ps;
    std::memcpy(&ps, p, sizeof(ps));
    p += sizeof(ps);
    // Rebuild the floating seed in a fresh local buffer (the pool/flag
    // state of the victim's allocation does not travel).
    void* seed = CmiMakeMessage(st.seed_handler, p, ps.payload_size);
    p += ps.payload_size;
    detail::Header(seed)->int_prio = ps.int_prio;
    ps.tag.hops = static_cast<std::uint8_t>(
        std::min<unsigned>(255u, ps.tag.hops + 1u));
    StoreTag(seed, ps.tag);
    StoreSeed(st, pe, seed, ps.tag);
  }
}

// ---------------------------------------------------------------------------
// kPeriodic protocol.
// ---------------------------------------------------------------------------

/// Publish this PE's store size to every peer, then push excess seeds
/// toward under-average peers.  Runs from the virtual-clock timer on timed
/// machines and piggybacked on worker execution on plain ones.
void PublishAndRebalance(CldState& st, detail::PeState& pe) {
  if (pe.npes < 2) return;
  std::int64_t own = static_cast<std::int64_t>(st.store.size());
  st.samples[static_cast<std::size_t>(pe.mype)] = own;
  for (int i = 0; i < pe.npes; ++i) {
    if (i == pe.mype) continue;
    void* s = CmiMakeMessage(st.sample_handler, &own, sizeof(own));
    SendCld(st, pe, i, s);
  }
  std::int64_t total = 0;
  for (const std::int64_t v : st.samples) total += v;
  const std::int64_t avg =
      (total + pe.npes - 1) / pe.npes;  // ceil: never push below fair share
  if (own <= avg) return;
  std::int64_t excess = std::min<std::int64_t>(own - avg, kMaxMovesPerTick);
  for (int i = 0; i < pe.npes && excess > 0; ++i) {
    if (i == pe.mype) continue;
    const std::int64_t room = avg - st.samples[static_cast<std::size_t>(i)];
    if (room <= 0) continue;
    const std::int64_t gift = std::min(excess, room);
    for (std::int64_t j = 0; j < gift; ++j) {
      auto it = std::prev(st.store.end());  // coldest priorities travel
      void* seed = it->second;
      st.store.erase(it);
      SeedTag tag = LoadTag(seed);
      tag.hops =
          static_cast<std::uint8_t>(std::min<unsigned>(255u, tag.hops + 1u));
      StoreTag(seed, tag);
      ++st.c.rebalanced_out;
      ++st.c.forwarded;
      ++pe.stats.ldb_rebalance_moves;
      SendCld(st, pe, i, seed);
    }
    // Account the seeds as already there so this pass (and the next tick,
    // until fresher samples land) cannot push the same load twice.
    st.samples[static_cast<std::size_t>(i)] += gift;
    excess -= gift;
    detail::SimTraceUser(pe, kTraceRebalance,
                         (static_cast<std::uint64_t>(pe.mype) << 32) |
                             static_cast<std::uint32_t>(i),
                         static_cast<std::uint64_t>(gift));
  }
  st.samples[static_cast<std::size_t>(pe.mype)] =
      static_cast<std::int64_t>(st.store.size());
}

void PeriodicTickHandler(void*) {
  CldState& st = St();
  ++st.c.msgs_received;
  detail::PeState& pe = detail::CpvChecked();
  st.timer_armed = false;
  PublishAndRebalance(st, pe);
  if (!st.store.empty()) {
    // Keep sampling while there is a backlog; the timer dies with it (the
    // final, empty tick published our zero so peers stop counting on us),
    // which is what lets a sim run reach quiescence.
    st.timer_armed = true;
    void* t = CmiMakeMessage(st.ptimer_handler, "", 0);
    SendCld(st, pe, pe.mype, t, kPeriodicTickUs);
  }
}

void SampleHandler(void* msg) {
  CldState& st = St();
  ++st.c.msgs_received;
  std::int64_t load = 0;
  std::memcpy(&load, CmiMsgPayload(msg), sizeof(load));
  st.samples[static_cast<std::size_t>(CmiMsgSourcePe(msg))] = load;
}

// ---------------------------------------------------------------------------
// Idle hook (registered once per PE; dispatches on the active strategy).
// ---------------------------------------------------------------------------

/// kCentral: flush a drain-report remainder smaller than kDrainPeriod when
/// the PE goes idle — without this the dispatcher's outstanding[] keeps a
/// permanent stale residue of up to kDrainPeriod-1 per PE and skews every
/// later decision (the bug the CentralBurstSpreadsEvenly test pins down).
bool CentralFlushRemainder(CldState& st, detail::PeState& pe) {
  if (st.placed_since_report == 0) return false;
  const std::int32_t n = st.placed_since_report;
  st.placed_since_report = 0;
  if (pe.mype == 0) {
    st.outstanding[0] -= n;
    return false;  // purely local bookkeeping: nothing new to deliver
  }
  void* report = CmiMakeMessage(st.drain_handler, &n, sizeof(n));
  SendCld(st, pe, 0, report);
  return true;
}

bool IdleHook(void*) {
  CldState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  switch (st.strat) {
    case CldStrategy::kSteal:
      return StealProbe(st, pe);
    case CldStrategy::kCentral:
      return CentralFlushRemainder(st, pe);
    default:
      return false;
  }
}

/// The strategy decision: place the seed here or forward it (taking
/// ownership either way).  `msg` already carries a SeedTag and the cld seed
/// handler.
void Decide(void* msg) {
  CldState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  SeedTag tag = LoadTag(msg);

  switch (st.strat) {
    case CldStrategy::kLocal:
      PlaceSeed(msg);
      return;

    case CldStrategy::kRandom: {
      if (tag.hops > 0) {  // already sprayed once
        PlaceSeed(msg);
        return;
      }
      const int dest =
          static_cast<int>(pe.rng.Below(static_cast<std::uint64_t>(pe.npes)));
      if (dest == pe.mype) {
        PlaceSeed(msg);
        return;
      }
      tag.hops = 1;
      StoreTag(msg, tag);
      ForwardSeed(msg, dest);
      return;
    }

    case CldStrategy::kNeighbor: {
      MaybeSendNeighborStatus(st);
      const std::int64_t my_load = CldLoad();
      const std::int64_t best =
          st.neighbor_load[0] < st.neighbor_load[1] ? st.neighbor_load[0]
                                                    : st.neighbor_load[1];
      if (pe.npes == 1 || tag.hops >= kMaxNeighborHops ||
          my_load <= best + 2) {
        PlaceSeed(msg);
        return;
      }
      const int dest =
          st.neighbor_load[0] <= st.neighbor_load[1] ? RingPrev() : RingNext();
      // Assume the seed lands there; keeps a burst from all going one way.
      ++st.neighbor_load[st.neighbor_load[0] <= st.neighbor_load[1] ? 0 : 1];
      ++tag.hops;
      StoreTag(msg, tag);
      ForwardSeed(msg, dest);
      return;
    }

    case CldStrategy::kCentral: {
      if (pe.mype == 0) {
        if (tag.hops >= 2) {  // assigned to us by ourselves earlier
          PlaceSeed(msg);
          return;
        }
        // Refresh the dispatcher's own slot from a direct measurement at
        // decision time: everything still queued here *is* PE 0's
        // outstanding work, so stale drain residue and in-flight
        // self-accounting can never skew the comparison against the
        // report-driven estimates for the other PEs.
        st.outstanding[0] = static_cast<std::int64_t>(CsdLength());
        // Dispatch to the least-outstanding PE.
        int best_pe = 0;
        for (int i = 1; i < pe.npes; ++i) {
          if (st.outstanding[static_cast<std::size_t>(i)] <
              st.outstanding[static_cast<std::size_t>(best_pe)]) {
            best_pe = i;
          }
        }
        ++st.outstanding[static_cast<std::size_t>(best_pe)];
        tag.hops = 2;
        StoreTag(msg, tag);
        if (best_pe == 0) {
          PlaceSeed(msg);
        } else {
          ForwardSeed(msg, best_pe);
        }
        return;
      }
      if (tag.hops >= 2) {  // assigned by the dispatcher: take root
        PlaceSeed(msg);
        return;
      }
      tag.hops = 1;  // en route to the dispatcher
      StoreTag(msg, tag);
      ForwardSeed(msg, 0);
      return;
    }

    case CldStrategy::kSteal:
    case CldStrategy::kPeriodic:
      // Adaptive placement is always local-first: seeds go into the
      // stealable backlog and move later via the steal/rebalance
      // protocols, which see real measured backlogs instead of guessing
      // at send time.
      StoreSeed(st, pe, msg, tag);
      return;
  }
  assert(false && "unknown load balancing strategy");
}

/// Network arrival of a floating seed.
void SeedHandler(void* msg) {
  CldState& st = St();
  ++st.c.msgs_received;
  // Seeds arrive system-owned; we keep them (to enqueue, store or forward).
  CmiGrabBuffer(&msg);
  Decide(msg);
}

void StatusHandler(void* msg) {
  CldState& st = St();
  ++st.c.msgs_received;
  std::int64_t load = 0;
  std::memcpy(&load, CmiMsgPayload(msg), sizeof(load));
  const int src = CmiMsgSourcePe(msg);
  if (src == RingPrev()) st.neighbor_load[0] = load;
  if (src == RingNext()) st.neighbor_load[1] = load;
}

void DrainHandler(void* msg) {
  CldState& st = St();
  ++st.c.msgs_received;
  std::int32_t n = 0;
  std::memcpy(&n, CmiMsgPayload(msg), sizeof(n));
  const int src = CmiMsgSourcePe(msg);
  st.outstanding[static_cast<std::size_t>(src)] -= n;
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "cld",
      [](int module_id) {
        auto* st = new CldState;
        detail::PeState& pe = detail::CpvChecked();
        st->seed_handler = CmiRegisterHandler(&SeedHandler);
        st->status_handler = CmiRegisterHandler(&StatusHandler);
        st->drain_handler = CmiRegisterHandler(&DrainHandler);
        st->done_handler = CmiRegisterHandler(&DoneHandler);
        st->worker_handler = CmiRegisterHandler(&WorkerTickHandler);
        st->steal_req_handler = CmiRegisterHandler(&StealReqHandler);
        st->steal_reply_handler = CmiRegisterHandler(&StealReplyHandler);
        st->sample_handler = CmiRegisterHandler(&SampleHandler);
        st->ptimer_handler = CmiRegisterHandler(&PeriodicTickHandler);
        const auto npes = static_cast<std::size_t>(pe.npes);
        st->outstanding.assign(npes, 0);
        st->hungry.assign(npes, 0);
        st->samples.assign(npes, 0);
        // The steal PRNG streams from the sim seed when simulated (so a
        // replayed sim seed replays the same victims) and from the machine
        // seed otherwise; SplitMix decorrelates the per-PE streams.
        const std::uint64_t base = pe.machine->sim() != nullptr
                                       ? pe.machine->sim_config().seed
                                       : pe.machine->config().seed;
        util::SplitMix64 sm(base +
                            0x9e3779b97f4a7c15ULL *
                                static_cast<std::uint64_t>(pe.mype + 1));
        st->steal_rng = util::Xoshiro256(sm.Next());
        pe.idle_hooks.push_back(detail::PeState::IdleHook{&IdleHook, nullptr});
        detail::SetModuleState(module_id, st);
      },
      [](void* state) {
        auto* st = static_cast<CldState*>(state);
        // Normal runs drain the backlog before the schedulers return; an
        // aborted one can leave seeds behind, and they are ours to free.
        for (auto& kv : st->store) CmiFree(kv.second);
        delete st;
      });
  return id;
}

void Wrap(void* msg, bool prioritized) {
  CldState& st = St();
  SeedTag tag;
  tag.orig_handler = detail::Header(msg)->handler;
  tag.hops = 0;
  tag.prioritized = prioritized ? 1 : 0;
  tag.pad = 0;
  StoreTag(msg, tag);
  CmiSetHandler(msg, st.seed_handler);
}

}  // namespace

void CldSetStrategy(CldStrategy strategy) { St().strat = strategy; }
CldStrategy CldGetStrategy() { return St().strat; }

void CldEnqueue(void* msg) {
  assert(CmiMsgIsValid(msg));
  ++St().c.spawned;
  Wrap(msg, /*prioritized=*/false);
  Decide(msg);
}

void CldEnqueuePrio(void* msg, std::int32_t prio) {
  assert(CmiMsgIsValid(msg));
  ++St().c.spawned;
  detail::Header(msg)->int_prio = prio;
  Wrap(msg, /*prioritized=*/true);
  Decide(msg);
}

int CldLoad() {
  return static_cast<int>(CsdLength() + St().store.size());
}

std::uint64_t CldSeedsPlaced() { return St().placed; }
std::uint64_t CldSeedHops() { return St().hops_seen; }

void CldChargeTime(double us) {
  CldState& st = St();
  st.busy_us += us;
  st.charge_us += us;
}

double CldBusyTimeUs() { return St().busy_us; }

CldCounters CldGetCounters() { return St().c; }

void CldSetLoseStealReplyEvery(std::uint32_t n) {
  St().lose_reply_every = n;
}

}  // namespace converse

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::CldModuleRegister() { return converse::ModuleId(); }
