// Seed load balancers (paper §3.3.1).
//
// A seed travels as a generalized message whose handler field is
// temporarily replaced by the balancer's own handler; the original handler
// rides in the header's reserved word together with a hop count, so no
// payload copy is ever made while a seed floats.  When a seed takes root,
// the original handler is restored and the message enters the scheduler
// queue (with its priority, if it had one).
#include "converse/cld.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "converse/csd.h"
#include "converse/detail/module.h"
#include "core/pe_state.h"

namespace converse {
namespace {

constexpr std::uint8_t kMaxNeighborHops = 3;
constexpr int kStatusPeriod = 8;  // decisions between neighbor status sends
constexpr int kDrainPeriod = 8;   // placements between central drain reports

// Header `reserved` word layout for floating seeds.
struct SeedTag {
  std::uint32_t orig_handler;
  std::uint8_t hops;
  std::uint8_t prioritized;
  std::uint16_t pad;
};
static_assert(sizeof(SeedTag) == 8);

SeedTag LoadTag(const void* msg) {
  SeedTag t;
  std::memcpy(&t, &detail::Header(msg)->reserved, sizeof(t));
  return t;
}

void StoreTag(void* msg, const SeedTag& t) {
  std::memcpy(&detail::Header(msg)->reserved, &t, sizeof(t));
}

struct CldState {
  CldStrategy strat = CldStrategy::kLocal;
  int seed_handler = -1;
  int status_handler = -1;
  int drain_handler = -1;
  int done_handler = -1;
  // kNeighbor: load estimates for ring neighbors [prev, next].
  std::int64_t neighbor_load[2] = {0, 0};
  // kCentral (meaningful on PE 0): per-PE outstanding assigned seeds.
  std::vector<std::int64_t> outstanding;
  std::uint64_t placed = 0;
  std::uint64_t hops_seen = 0;
  std::uint64_t decisions = 0;
  int placed_since_report = 0;
};

int ModuleId();

CldState& St() {
  return *static_cast<CldState*>(detail::ModuleState(ModuleId()));
}

int RingPrev() {
  detail::PeState& pe = detail::CpvChecked();
  return (pe.mype + pe.npes - 1) % pe.npes;
}
int RingNext() {
  detail::PeState& pe = detail::CpvChecked();
  return (pe.mype + 1) % pe.npes;
}

/// Restore the seed's own handler and enqueue it locally: the seed has
/// taken root.  Under the central strategy the seed is routed through a
/// completion handler so the dispatcher learns when work *executes*, not
/// merely when it is queued (a queue-time report would make an idle
/// dispatcher PE look permanently unloaded to itself).
void PlaceSeed(void* msg) {
  CldState& st = St();
  const SeedTag tag = LoadTag(msg);
  st.hops_seen += tag.hops;
  ++st.placed;
  if (st.strat == CldStrategy::kCentral) {
    CmiSetHandler(msg, st.done_handler);  // keep the SeedTag for later
  } else {
    CmiSetHandler(msg, static_cast<int>(tag.orig_handler));
    StoreTag(msg, SeedTag{});
  }
  if (tag.prioritized != 0) {
    // converse-lint: allow(enqueue-delivered-buffer) seed is handler-owned
    CsdEnqueueIntPrio(msg, detail::Header(msg)->int_prio);
  } else {
    CsdEnqueue(msg);  // converse-lint: allow(enqueue-delivered-buffer)
  }
}

/// Central-strategy completion: runs when the seed is dequeued for
/// execution.  Reports drained work to the dispatcher, then delegates to
/// the seed's own handler (which owns and frees the message).
void DoneHandler(void* msg) {
  CldState& st = St();
  const SeedTag tag = LoadTag(msg);
  StoreTag(msg, SeedTag{});
  CmiSetHandler(msg, static_cast<int>(tag.orig_handler));
  detail::PeState& pe = detail::CpvChecked();
  if (++st.placed_since_report >= kDrainPeriod) {
    if (pe.mype == 0) {
      st.outstanding[0] -= st.placed_since_report;
    } else {
      const std::int32_t n = st.placed_since_report;
      void* report = CmiMakeMessage(st.drain_handler, &n, sizeof(n));
      detail::SendOwned(0, report);
    }
    st.placed_since_report = 0;
  }
  CmiGetHandlerFunction(msg)(msg);
}

void ForwardSeed(void* msg, int dest) {
  detail::SendOwned(dest, msg);
}

void MaybeSendNeighborStatus(CldState& st) {
  if (++st.decisions % kStatusPeriod != 0) return;
  const std::int64_t load = CldLoad();
  for (int n : {RingPrev(), RingNext()}) {
    if (n == CmiMyPe()) continue;  // npes <= 2 degenerate ring
    void* msg = CmiMakeMessage(st.status_handler, &load, sizeof(load));
    detail::SendOwned(n, msg);
  }
}

/// The strategy decision: place the seed here or forward it (taking
/// ownership either way).  `msg` already carries a SeedTag and the cld seed
/// handler.
void Decide(void* msg) {
  CldState& st = St();
  detail::PeState& pe = detail::CpvChecked();
  SeedTag tag = LoadTag(msg);

  switch (st.strat) {
    case CldStrategy::kLocal:
      PlaceSeed(msg);
      return;

    case CldStrategy::kRandom: {
      if (tag.hops > 0) {  // already sprayed once
        PlaceSeed(msg);
        return;
      }
      const int dest =
          static_cast<int>(pe.rng.Below(static_cast<std::uint64_t>(pe.npes)));
      if (dest == pe.mype) {
        PlaceSeed(msg);
        return;
      }
      tag.hops = 1;
      StoreTag(msg, tag);
      ForwardSeed(msg, dest);
      return;
    }

    case CldStrategy::kNeighbor: {
      MaybeSendNeighborStatus(st);
      const std::int64_t my_load = CldLoad();
      const std::int64_t best =
          st.neighbor_load[0] < st.neighbor_load[1] ? st.neighbor_load[0]
                                                    : st.neighbor_load[1];
      if (pe.npes == 1 || tag.hops >= kMaxNeighborHops ||
          my_load <= best + 2) {
        PlaceSeed(msg);
        return;
      }
      const int dest =
          st.neighbor_load[0] <= st.neighbor_load[1] ? RingPrev() : RingNext();
      // Assume the seed lands there; keeps a burst from all going one way.
      ++st.neighbor_load[st.neighbor_load[0] <= st.neighbor_load[1] ? 0 : 1];
      ++tag.hops;
      StoreTag(msg, tag);
      ForwardSeed(msg, dest);
      return;
    }

    case CldStrategy::kCentral: {
      if (pe.mype == 0) {
        if (tag.hops >= 2) {  // assigned to us by ourselves earlier
          PlaceSeed(msg);
          return;
        }
        // Dispatch to the least-outstanding PE.
        int best_pe = 0;
        for (int i = 1; i < pe.npes; ++i) {
          if (st.outstanding[static_cast<std::size_t>(i)] <
              st.outstanding[static_cast<std::size_t>(best_pe)]) {
            best_pe = i;
          }
        }
        ++st.outstanding[static_cast<std::size_t>(best_pe)];
        tag.hops = 2;
        StoreTag(msg, tag);
        if (best_pe == 0) {
          PlaceSeed(msg);
        } else {
          ForwardSeed(msg, best_pe);
        }
        return;
      }
      if (tag.hops >= 2) {  // assigned by the dispatcher: take root
        PlaceSeed(msg);
        return;
      }
      tag.hops = 1;  // en route to the dispatcher
      StoreTag(msg, tag);
      ForwardSeed(msg, 0);
      return;
    }
  }
  assert(false && "unknown load balancing strategy");
}

/// Network arrival of a floating seed.
void SeedHandler(void* msg) {
  // Seeds arrive system-owned; we keep them (to enqueue or forward).
  CmiGrabBuffer(&msg);
  Decide(msg);
}

void StatusHandler(void* msg) {
  CldState& st = St();
  std::int64_t load = 0;
  std::memcpy(&load, CmiMsgPayload(msg), sizeof(load));
  const int src = CmiMsgSourcePe(msg);
  if (src == RingPrev()) st.neighbor_load[0] = load;
  if (src == RingNext()) st.neighbor_load[1] = load;
}

void DrainHandler(void* msg) {
  CldState& st = St();
  std::int32_t n = 0;
  std::memcpy(&n, CmiMsgPayload(msg), sizeof(n));
  const int src = CmiMsgSourcePe(msg);
  st.outstanding[static_cast<std::size_t>(src)] -= n;
}

int ModuleId() {
  static const int id = detail::RegisterModule(
      "cld",
      [](int module_id) {
        auto* st = new CldState;
        st->seed_handler = CmiRegisterHandler(&SeedHandler);
        st->status_handler = CmiRegisterHandler(&StatusHandler);
        st->drain_handler = CmiRegisterHandler(&DrainHandler);
        st->done_handler = CmiRegisterHandler(&DoneHandler);
        st->outstanding.assign(
            static_cast<std::size_t>(detail::CpvChecked().npes), 0);
        detail::SetModuleState(module_id, st);
      },
      [](void* state) { delete static_cast<CldState*>(state); });
  return id;
}

void Wrap(void* msg, bool prioritized) {
  CldState& st = St();
  SeedTag tag;
  tag.orig_handler = detail::Header(msg)->handler;
  tag.hops = 0;
  tag.prioritized = prioritized ? 1 : 0;
  tag.pad = 0;
  StoreTag(msg, tag);
  CmiSetHandler(msg, st.seed_handler);
}

}  // namespace

void CldSetStrategy(CldStrategy strategy) { St().strat = strategy; }
CldStrategy CldGetStrategy() { return St().strat; }

void CldEnqueue(void* msg) {
  assert(CmiMsgIsValid(msg));
  Wrap(msg, /*prioritized=*/false);
  Decide(msg);
}

void CldEnqueuePrio(void* msg, std::int32_t prio) {
  assert(CmiMsgIsValid(msg));
  detail::Header(msg)->int_prio = prio;
  Wrap(msg, /*prioritized=*/true);
  Decide(msg);
}

int CldLoad() { return static_cast<int>(CsdLength()); }

std::uint64_t CldSeedsPlaced() { return St().placed; }
std::uint64_t CldSeedHops() { return St().hops_seen; }

}  // namespace converse

// Registration entry point used by the header anchor (see the module
// registration note in the public header).
int converse::detail::CldModuleRegister() { return converse::ModuleId(); }
