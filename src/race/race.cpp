// CciRace implementation — see include/converse/race.h for the contract
// and docs/ANALYSIS.md for the model.
//
// Happens-before is tracked per *context* (one handler dispatch, one entry
// spine, or one post-send epoch of either), not per PE: in a message-driven
// program two handlers on the same PE are unordered unless a message chain
// connects them, so per-PE scalar clocks would invent edges that do not
// exist.  Each context carries an ancestor bitset (`AncSet`) over context
// ids; HB(a, b) iff b's set contains a's id.  Outgoing edges (send, frame
// append, local enqueue, broadcast root) snapshot the sender's set for the
// receiver to join — and *split* the sender's epoch with a fresh id, so
// work the sender does after the send is not falsely ordered before the
// receiver.  Incoming edges (dispatch, MMI return, scheduler-loop return)
// join sets.
//
// The detector exists only under the deterministic sim backend: the baton
// serializes execution, so one mutex around the detector state is cheap,
// and the sim gives replay its determinism.  Everything except the cold
// report sinks is compiled only under CONVERSE_RACE_ENABLED.
#include "converse/race.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "converse/msg.h"
#include "converse/sim.h"

#if CONVERSE_RACE_ENABLED
#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pe_state.h"
#include "race/race_internal.h"
#endif

namespace converse {

const char* CciRaceRuleName(CciRaceRule rule) {
  switch (rule) {
    case CciRaceRule::kPayloadRace: return "payload-race";
    case CciRaceRule::kCpvRace: return "cpv-race";
    case CciRaceRule::kCsvRace: return "csv-race";
    case CciRaceRule::kMemoryRace: return "memory-race";
  }
  return "unknown";
}

const char* CciRaceClassName(CciRaceClass c) {
  switch (c) {
    case CciRaceClass::kUnconfirmed: return "unconfirmed";
    case CciRaceClass::kConfirmedDivergent: return "confirmed-divergent";
    case CciRaceClass::kBenignCommutative: return "benign-commutative";
    case CciRaceClass::kUnreplayable: return "unreplayable";
  }
  return "unknown";
}

namespace detail::race {
namespace {

// Process-wide counters.  Only ever written with the detector compiled in;
// kept outside the #if so CciRaceGetCounters links in every build.
std::atomic<long long> g_tracked{0};
std::atomic<long long> g_accesses{0};
std::atomic<long long> g_candidates{0};
std::atomic<long long> g_confirmed{0};

}  // namespace
}  // namespace detail::race

#if CONVERSE_RACE_ENABLED

namespace detail::race {
namespace {

constexpr std::uint32_t kNoCtx = 0xffffffffu;

/// Dynamic bitset over context ids.  Test beyond the stored prefix is
/// false; Set grows on demand.
struct AncSet {
  std::vector<std::uint64_t> w;

  void Set(std::uint32_t id) {
    const std::size_t word = id >> 6;
    if (word >= w.size()) w.resize(word + 1, 0);
    w[word] |= 1ull << (id & 63u);
  }
  bool Test(std::uint32_t id) const {
    const std::size_t word = id >> 6;
    return word < w.size() && ((w[word] >> (id & 63u)) & 1u) != 0;
  }
  void Or(const AncSet& o) {
    if (o.w.size() > w.size()) w.resize(o.w.size(), 0);
    for (std::size_t i = 0; i < o.w.size(); ++i) w[i] |= o.w[i];
  }
};

enum class WireKind : std::uint8_t {
  kNone = 0,   // entry spine (no delivery behind it)
  kPlain,      // plain unicast wire message (replayable)
  kFrame,      // aggregation-frame view (replayable via the carrier)
  kBcast,      // spanning-tree broadcast inner (not replayable)
  kImmediate,  // immediate-lane delivery (not replayable)
  kLocal,      // scheduler-queue local enqueue (not replayable)
};

/// Immutable description of one context (provenance + replay handle).
/// Epoch splits copy their context's meta under the fresh id.
struct CtxMeta {
  int pe = -1;
  std::uint32_t handler = 0xffffffffu;
  int msg_src = -1;          // logical identity of the triggering message
  std::uint32_t msg_seq = 0;
  std::uint32_t parent = kNoCtx;  // sender/enqueuer epoch
  int wire_src = -1;         // wire identity (carrier for frame views)
  std::uint32_t wire_seq = 0;
  WireKind wire_kind = WireKind::kNone;
  std::uint64_t order = 0;   // global delivery-order stamp
};

struct RaceCtx {
  std::uint32_t id = kNoCtx;
  AncSet anc;   // causal past, includes id itself
  AncSet done;  // join of finished children; folded at scheduler return
};

}  // namespace

struct RacePeState {
  RaceDetector* det = nullptr;
  int pe = -1;
  std::vector<RaceCtx> stack;  // [0] = entry spine
  std::unordered_map<int, AncSet> frame_clock;  // dest -> appender joins
  // Wire facts DeliverOne/CmiProbeImmediates capture for the dispatch that
  // immediately follows (cleared when consumed).
  bool pending_valid = false;
  bool pending_bcast = false;
  bool pending_immediate = false;
};

class RaceDetector {
 public:
  explicit RaceDetector(Machine& m) : machine(m), quiet(m.sim_config().race_quiet) {
    const int n = m.npes();
    pes.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto rp = std::make_unique<RacePeState>();
      rp->det = this;
      rp->pe = i;
      RaceCtx spine;
      spine.id = NewCtx(CtxMeta{i, 0xffffffffu, -1, 0, kNoCtx, -1, 0,
                                WireKind::kNone, 0});
      spine.anc.Set(spine.id);
      rp->stack.push_back(std::move(spine));
      pes.push_back(std::move(rp));
    }
  }

  ~RaceDetector() {
    g_tracked.fetch_sub(static_cast<long long>(ranges.size()),
                        std::memory_order_relaxed);
  }

  std::uint32_t NewCtx(CtxMeta m) {
    meta.push_back(m);
    return static_cast<std::uint32_t>(meta.size() - 1);
  }

  /// Give the top context of rp a fresh epoch id (same meta) after an
  /// outgoing HB edge, so later work is not ordered into the receiver.
  void SplitEpoch(RacePeState& rp) {
    RaceCtx& cur = rp.stack.back();
    const std::uint32_t nid = NewCtx(meta[cur.id]);
    cur.anc.Set(nid);
    cur.id = nid;
  }

  struct SendRecord {
    AncSet anc;
    std::uint32_t parent = kNoCtx;
  };

  struct Range {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    CciRaceRule rule = CciRaceRule::kMemoryRace;
    std::string name;
  };

  static std::uint64_t WireKey(int src, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           seq;
  }

  void RecordSend(RacePeState& rp, int src, std::uint32_t seq,
                  bool if_absent) {
    const std::uint64_t key = WireKey(src, seq);
    if (if_absent && wire_clock.count(key) != 0) return;
    RaceCtx& cur = rp.stack.back();
    SendRecord rec;
    rec.anc = cur.anc;
    rec.parent = cur.id;
    wire_clock[key] = std::move(rec);
  }

  const Range* FindRange(std::uintptr_t addr) const {
    auto it = ranges.upper_bound(addr);
    if (it == ranges.begin()) return nullptr;
    --it;
    return addr < it->second.hi ? &it->second : nullptr;
  }

  void Register(std::uintptr_t lo, std::size_t n, CciRaceRule rule,
                const char* name) {
    auto [it, inserted] = ranges.insert_or_assign(
        lo, Range{lo, lo + n, rule, name != nullptr ? name : ""});
    (void)it;
    if (inserted) g_tracked.fetch_add(1, std::memory_order_relaxed);
    ClearShadow(lo, n);
  }

  void Unregister(std::uintptr_t lo) {
    auto it = ranges.find(lo);
    if (it == ranges.end()) return;
    ClearShadow(lo, it->second.hi - it->second.lo);
    ranges.erase(it);
    g_tracked.fetch_sub(1, std::memory_order_relaxed);
  }

  void ClearShadow(std::uintptr_t lo, std::size_t n) {
    for (std::uintptr_t g = lo & ~7ull; g < lo + n; g += 8) shadow.erase(g);
  }

  struct ShadowAccess {
    std::uint32_t id = kNoCtx;
    std::int16_t pe = -1;
    bool is_write = false;
  };
  struct ShadowCell {
    ShadowAccess write;
    bool has_write = false;
    std::vector<ShadowAccess> reads;  // bounded (kMaxReads)
  };

  static constexpr std::size_t kMaxReads = 16;
  static constexpr std::size_t kMaxGranules = 128;
  static constexpr std::size_t kMaxCandidates = 64;

  void Access(RacePeState& rp, std::uintptr_t addr, std::size_t n,
              bool is_write) {
    g_accesses.fetch_add(1, std::memory_order_relaxed);
    RaceCtx& cur = rp.stack.back();
    const Range* range = FindRange(addr);
    std::size_t granules = 0;
    for (std::uintptr_t g = addr & ~7ull;
         g < addr + n && granules < kMaxGranules; g += 8, ++granules) {
      ShadowCell& cell = shadow[g];
      if (cell.has_write && !cur.anc.Test(cell.write.id)) {
        Candidate(cell.write, cur, rp, addr, range, is_write);
      }
      if (is_write) {
        for (const ShadowAccess& rd : cell.reads) {
          if (!cur.anc.Test(rd.id)) Candidate(rd, cur, rp, addr, range, true);
        }
        cell.write =
            ShadowAccess{cur.id, static_cast<std::int16_t>(rp.pe), true};
        cell.has_write = true;
        cell.reads.clear();
      } else {
        bool present = false;
        for (const ShadowAccess& rd : cell.reads) {
          if (rd.id == cur.id) {
            present = true;
            break;
          }
        }
        if (!present) {
          if (cell.reads.size() >= kMaxReads) {
            cell.reads.erase(cell.reads.begin());
          }
          cell.reads.push_back(
              ShadowAccess{cur.id, static_cast<std::int16_t>(rp.pe), false});
        }
      }
    }
  }

  std::string Chain(std::uint32_t id) const {
    std::string s;
    int depth = 0;
    while (id != kNoCtx) {
      const CtxMeta& m = meta[id];
      char buf[96];
      if (m.wire_kind == WireKind::kNone) {
        std::snprintf(buf, sizeof buf, "entry@pe%d", m.pe);
        s += buf;
        return s;
      }
      std::snprintf(buf, sizeof buf, "h%u@pe%d(msg pe%d#%u)", m.handler,
                    m.pe, m.msg_src, m.msg_seq);
      s += buf;
      if (++depth >= 8) {
        s += " <- ...";
        return s;
      }
      s += " <- ";
      id = m.parent;
    }
    s += "?";
    return s;
  }

  static bool Replayable(const CtxMeta& m) {
    return (m.wire_kind == WireKind::kPlain ||
            m.wire_kind == WireKind::kFrame) &&
           m.wire_src >= 0;
  }

  void Candidate(const ShadowAccess& prior, const RaceCtx& cur,
                 const RacePeState& rp, std::uintptr_t addr,
                 const Range* range, bool cur_is_write) {
    const auto key = std::make_pair(prior.id, cur.id);
    if (!reported_pairs.insert(key).second) return;
    if (candidates.size() >= kMaxCandidates) {
      ++suppressed;
      return;
    }
    g_candidates.fetch_add(1, std::memory_order_relaxed);

    CciRaceReport r;
    r.rule = range != nullptr ? range->rule : CciRaceRule::kMemoryRace;
    r.address = addr;
    if (range != nullptr && !range->name.empty()) {
      r.object = (r.rule == CciRaceRule::kCpvRace ? "Cpv " : "Csv ") +
                 range->name;
    } else if (range != nullptr && r.rule == CciRaceRule::kPayloadRace) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "message payload+%llu",
                    static_cast<unsigned long long>(addr - range->lo));
      r.object = buf;
    } else {
      r.object = "unregistered memory";
    }

    const CtxMeta& pm = meta[prior.id];
    const CtxMeta& cm = meta[cur.id];
    CciRaceAccess a;  // prior access (executed earlier under the baton)
    a.pe = pm.pe;
    a.is_write = prior.is_write;
    a.chain = Chain(prior.id);
    a.wire_src = Replayable(pm) ? pm.wire_src : -1;
    a.wire_seq = pm.wire_seq;
    a.order = pm.order;
    CciRaceAccess b;
    b.pe = cm.pe;
    b.is_write = cur_is_write;
    b.chain = Chain(cur.id);
    b.wire_src = Replayable(cm) ? cm.wire_src : -1;
    b.wire_seq = cm.wire_seq;
    b.order = cm.order;
    // "first" is the side whose delivery ran earlier in this execution.
    const bool prior_first = pm.order <= cm.order;
    r.first = prior_first ? a : b;
    r.second = prior_first ? b : a;
    r.replayable =
        Replayable(pm) && Replayable(cm) &&
        !(pm.wire_src == cm.wire_src && pm.wire_seq == cm.wire_seq);
    FormatLine(&r);
    if (!quiet) std::fprintf(stderr, "%s\n", r.line.c_str());
    candidates.push_back(std::move(r));
    (void)rp;
  }

  static void FormatLine(CciRaceReport* r) {
    char head[160];
    std::snprintf(head, sizeof head,
                  "[CciRace] rule=%s class=%s pe=%d addr=0x%llx object=\"%s\" "
                  "pair=%s/%s",
                  CciRaceRuleName(r->rule), CciRaceClassName(r->classification),
                  r->second.pe,
                  static_cast<unsigned long long>(r->address),
                  r->object.c_str(), r->first.is_write ? "write" : "read",
                  r->second.is_write ? "write" : "read");
    r->line = std::string(head) + " first={" + r->first.chain +
              "} second={" + r->second.chain + "}";
  }

  Machine& machine;
  bool quiet = false;
  std::mutex mu;
  std::vector<std::unique_ptr<RacePeState>> pes;
  std::vector<CtxMeta> meta;
  std::uint64_t order_counter = 0;

  std::map<std::uint64_t, SendRecord> wire_clock;          // (src,seq)
  std::unordered_map<const void*, SendRecord> local_clock; // by pointer
  std::map<std::uintptr_t, Range> ranges;
  std::unordered_map<std::uintptr_t, ShadowCell> shadow;

  std::set<std::pair<std::uint32_t, std::uint32_t>> reported_pairs;
  std::vector<CciRaceReport> candidates;
  std::uint64_t suppressed = 0;
};

namespace {

// Reports published by torn-down machines, drained by CciRaceTakeReports.
std::mutex g_reports_mu;
std::vector<CciRaceReport>& PendingReports() {
  static std::vector<CciRaceReport> v;
  return v;
}

/// Wire identity of a message about to be delivered: the enclosing frame
/// (via the entry back-pointer ForEachView stamped) for in-frame views,
/// the message's own header otherwise.
struct WireId {
  int src;
  std::uint32_t seq;
  bool in_frame;
};

WireId WireIdentityOf(const void* msg) {
  const MsgHeader* h = Header(msg);
  if ((h->flags & kMsgFlagInFrame) != 0) {
    void* frame = nullptr;
    std::memcpy(&frame, static_cast<const char*>(msg) - 8, sizeof(frame));
    const MsgHeader* fh = Header(frame);
    return WireId{static_cast<int>(fh->source_pe), fh->seq, true};
  }
  return WireId{static_cast<int>(h->source_pe), h->seq, false};
}

}  // namespace

void MachineCreate(Machine& m) {
  if (m.sim() == nullptr || !m.sim_config().race_detect) return;
  auto* det = new RaceDetector(m);
  for (int i = 0; i < m.npes(); ++i) m.Pe(i).race = det->pes[i].get();
  m.race_detector_slot() = det;
}

void MachineDestroy(Machine& m) {
  RaceDetector* det = m.race_detector();
  if (det == nullptr) return;
  for (int i = 0; i < m.npes(); ++i) m.Pe(i).race = nullptr;
  {
    std::scoped_lock lk(g_reports_mu, det->mu);
    auto& pending = PendingReports();
    for (auto& r : det->candidates) pending.push_back(std::move(r));
    if (det->suppressed != 0 && !det->quiet) {
      std::fprintf(stderr,
                   "[CciRace] note: %llu further candidate pair(s) "
                   "suppressed (cap %zu)\n",
                   static_cast<unsigned long long>(det->suppressed),
                   RaceDetector::kMaxCandidates);
    }
  }
  m.race_detector_slot() = nullptr;
  delete det;
}

void OnSendImpl(PeState& pe, int dest_pe, void* msg) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  MsgHeader* h = Header(msg);
  std::lock_guard<std::mutex> lk(det.mu);
  if ((h->flags & kMsgFlagBcast) != 0) {
    // Wrapper forwards; the logical identity was recorded at the root.
    return;
  }
  if ((h->flags & kMsgFlagFrame) != 0) {
    // Carrier flush: the frame carries the join of every appender's clock
    // (plus the flusher's own) once, under the carrier's wire identity.
    RaceCtx& cur = rp.stack.back();
    RaceDetector::SendRecord rec;
    rec.anc = cur.anc;
    rec.parent = cur.id;
    auto it = rp.frame_clock.find(dest_pe);
    if (it != rp.frame_clock.end()) {
      rec.anc.Or(it->second);
      rp.frame_clock.erase(it);
    }
    det.wire_clock[RaceDetector::WireKey(pe.mype, h->seq)] = std::move(rec);
    det.SplitEpoch(rp);
    return;
  }
  det.RecordSend(rp, pe.mype, h->seq, /*if_absent=*/false);
  det.SplitEpoch(rp);
}

void OnBcastRootImpl(PeState& pe, std::uint32_t seq) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  std::lock_guard<std::mutex> lk(det.mu);
  det.RecordSend(rp, pe.mype, seq, /*if_absent=*/true);
  det.SplitEpoch(rp);
}

void OnFrameAppendImpl(PeState& pe, int dest_pe, void* msg) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  std::lock_guard<std::mutex> lk(det.mu);
  if (msg != nullptr) {
    // Record the view's own logical identity too: carrier resolution
    // covers in-place dispatch, but CmiGetMsg materializations resolve by
    // the view header.
    const MsgHeader* h = Header(msg);
    det.RecordSend(rp, static_cast<int>(h->source_pe), h->seq,
                   /*if_absent=*/false);
  }
  RaceCtx& cur = rp.stack.back();
  rp.frame_clock[dest_pe].Or(cur.anc);
  det.SplitEpoch(rp);
}

void OnLocalEnqueueImpl(PeState& pe, void* msg) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  std::lock_guard<std::mutex> lk(det.mu);
  RaceCtx& cur = rp.stack.back();
  RaceDetector::SendRecord rec;
  rec.anc = cur.anc;
  rec.parent = cur.id;
  det.local_clock[msg] = std::move(rec);
  det.SplitEpoch(rp);
}

void OnWireDeliverImpl(PeState& pe, void* msg, bool was_bcast,
                       bool immediate) {
  (void)msg;
  RacePeState& rp = *pe.race;
  std::lock_guard<std::mutex> lk(rp.det->mu);
  rp.pending_valid = true;
  rp.pending_bcast = was_bcast;
  rp.pending_immediate = immediate;
}

void OnDispatchBeginImpl(PeState& pe, void* msg, bool system_owned) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  const MsgHeader* h = Header(msg);
  std::lock_guard<std::mutex> lk(det.mu);
  RaceCtx& parent = rp.stack.back();

  CtxMeta m;
  m.pe = pe.mype;
  m.handler = h->handler;
  m.msg_src = static_cast<int>(h->source_pe);
  m.msg_seq = h->seq;
  m.order = ++det.order_counter;

  const RaceDetector::SendRecord* rec = nullptr;
  if (!system_owned) {
    m.wire_kind = WireKind::kLocal;
    auto it = det.local_clock.find(msg);
    if (it != det.local_clock.end()) {
      rec = &it->second;
      m.parent = it->second.parent;
    }
  } else {
    const WireId wid = WireIdentityOf(msg);
    bool bcast = false, immediate = false;
    if (rp.pending_valid) {
      bcast = rp.pending_bcast;
      immediate = rp.pending_immediate;
      rp.pending_valid = false;
    }
    m.wire_src = wid.src;
    m.wire_seq = wid.seq;
    m.wire_kind = wid.in_frame  ? WireKind::kFrame
                  : bcast       ? WireKind::kBcast
                  : immediate   ? WireKind::kImmediate
                                : WireKind::kPlain;
    // Clock key: the carrier for in-frame views (it carries the joined
    // appender clocks), the logical identity otherwise.
    const std::uint64_t key =
        wid.in_frame
            ? RaceDetector::WireKey(wid.src, wid.seq)
            : RaceDetector::WireKey(static_cast<int>(h->source_pe), h->seq);
    auto it = det.wire_clock.find(key);
    if (it != det.wire_clock.end()) {
      rec = &it->second;
      m.parent = it->second.parent;
    }
  }
  if (m.parent == kNoCtx) m.parent = parent.id;

  RaceCtx child;
  child.anc = parent.anc;  // program order: spine/outer precedes handler
  if (rec != nullptr) child.anc.Or(rec->anc);
  child.id = det.NewCtx(m);
  child.anc.Set(child.id);
  if (!system_owned) det.local_clock.erase(msg);
  rp.stack.push_back(std::move(child));
}

void OnDispatchEndImpl(PeState& pe) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  std::lock_guard<std::mutex> lk(det.mu);
  if (rp.stack.size() <= 1) return;  // unbalanced under abort unwinds
  RaceCtx child = std::move(rp.stack.back());
  rp.stack.pop_back();
  rp.stack.back().done.Or(child.anc);
}

void OnSchedulerReturnImpl(PeState& pe) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  std::lock_guard<std::mutex> lk(det.mu);
  RaceCtx& cur = rp.stack.back();
  // The caller resumes after every handler the loop ran: program order on
  // this PE makes those contexts its past now.
  cur.anc.Or(cur.done);
  cur.done = AncSet{};
}

void OnMmiReturnImpl(PeState& pe, void* msg) {
  RacePeState& rp = *pe.race;
  RaceDetector& det = *rp.det;
  const MsgHeader* h = Header(msg);
  std::lock_guard<std::mutex> lk(det.mu);
  const WireId wid = WireIdentityOf(msg);
  const std::uint64_t key =
      wid.in_frame
          ? RaceDetector::WireKey(wid.src, wid.seq)
          : RaceDetector::WireKey(static_cast<int>(h->source_pe), h->seq);
  auto it = det.wire_clock.find(key);
  if (it != det.wire_clock.end()) rp.stack.back().anc.Or(it->second.anc);
}

void OnAllocMsgImpl(PeState& pe, void* msg, std::size_t nbytes) {
  RaceDetector& det = *pe.race->det;
  std::lock_guard<std::mutex> lk(det.mu);
  det.Register(reinterpret_cast<std::uintptr_t>(msg), nbytes,
               CciRaceRule::kPayloadRace, nullptr);
}

void OnFreeMsgImpl(PeState& pe, void* msg) {
  RaceDetector& det = *pe.race->det;
  std::lock_guard<std::mutex> lk(det.mu);
  det.Unregister(reinterpret_cast<std::uintptr_t>(msg));
  det.local_clock.erase(msg);  // a freed pointer may be reused
}

void NoteAccess(const void* p, std::size_t n, bool is_write) {
  PeState* pe = Cpv();
  if (pe == nullptr || pe->race == nullptr || n == 0) return;
  RacePeState& rp = *pe->race;
  RaceDetector& det = *rp.det;
  std::lock_guard<std::mutex> lk(det.mu);
  det.Access(rp, reinterpret_cast<std::uintptr_t>(p), n, is_write);
}

namespace {

void RegisterCell(const void* p, std::size_t n, const char* name,
                  CciRaceRule rule) {
  PeState* pe = Cpv();
  if (pe == nullptr || pe->race == nullptr || n == 0) return;
  RaceDetector& det = *pe->race->det;
  std::lock_guard<std::mutex> lk(det.mu);
  det.Register(reinterpret_cast<std::uintptr_t>(p), n, rule, name);
}

}  // namespace

void OnCpvInit(const void* p, std::size_t n, const char* name) {
  RegisterCell(p, n, name, CciRaceRule::kCpvRace);
}

void OnCsvInit(const void* p, std::size_t n, const char* name) {
  RegisterCell(p, n, name, CciRaceRule::kCsvRace);
}

}  // namespace detail::race

void CciRaceRegisterNamed(const void* p, std::size_t n, const char* name) {
  detail::race::OnCsvInit(p, n, name);
}

CciRaceCounters CciRaceGetCounters() {
  CciRaceCounters c;
  c.tracked_cells = detail::race::g_tracked.load(std::memory_order_relaxed);
  c.accesses = detail::race::g_accesses.load(std::memory_order_relaxed);
  c.candidates =
      detail::race::g_candidates.load(std::memory_order_relaxed);
  c.confirmed = detail::race::g_confirmed.load(std::memory_order_relaxed);
  return c;
}

std::vector<CciRaceReport> CciRaceTakeReports() {
  std::lock_guard<std::mutex> lk(detail::race::g_reports_mu);
  std::vector<CciRaceReport> out;
  out.swap(detail::race::PendingReports());
  return out;
}

std::vector<CciRaceReport> CciRaceAnalyze(
    const MachineConfig& cfg, const std::function<void(int, int)>& entry,
    const CciRaceOptions& opts) {
  if (cfg.sim == nullptr) {
    if (opts.reset) opts.reset();
    RunConverse(cfg, entry);
    return {};
  }
  // Baseline: same seed, faults off (fault draws would make the replay
  // diverge for reasons that are not the race under test).
  SimConfig base_sim = *cfg.sim;
  base_sim.faults = SimFaults{};
  base_sim.plant_reorder_bug = false;
  base_sim.race_detect = true;
  SimReport base_rep;
  base_sim.report = &base_rep;
  MachineConfig mc = cfg;
  mc.sim = &base_sim;
  (void)CciRaceTakeReports();
  if (opts.reset) opts.reset();
  RunConverse(mc, entry);
  std::vector<CciRaceReport> out = CciRaceTakeReports();
  if (!opts.confirm) return out;

  int budget = opts.max_replays;
  for (CciRaceReport& r : out) {
    if (!r.replayable) {
      r.classification = CciRaceClass::kUnreplayable;
      detail::race::RaceDetector::FormatLine(&r);
      continue;
    }
    if (budget-- <= 0) break;  // stays kUnconfirmed
    SimConfig rs = base_sim;
    rs.race_quiet = true;  // replay re-detects the same candidates
    SimReport rr;
    rs.report = &rr;
    rs.flip.enabled = true;
    rs.flip.hold_src = r.first.wire_src;
    rs.flip.hold_seq = r.first.wire_seq;
    rs.flip.until_src = r.second.wire_src;
    rs.flip.until_seq = r.second.wire_seq;
    MachineConfig rc = cfg;
    rc.sim = &rs;
    bool ran = true;
    try {
      if (opts.reset) opts.reset();
      RunConverse(rc, entry);
    } catch (...) {
      ran = false;  // the flipped schedule deadlocked or aborted
    }
    (void)CciRaceTakeReports();
    if (!ran || !rr.flip_applied) {
      r.classification = CciRaceClass::kUnreplayable;
    } else if (rr.outcome_hash == base_rep.outcome_hash) {
      r.classification = CciRaceClass::kBenignCommutative;
    } else {
      r.classification = CciRaceClass::kConfirmedDivergent;
      detail::race::g_confirmed.fetch_add(1, std::memory_order_relaxed);
    }
    detail::race::RaceDetector::FormatLine(&r);
  }
  return out;
}

#else  // !CONVERSE_RACE_ENABLED

void CciRaceRegisterNamed(const void*, std::size_t, const char*) {}

CciRaceCounters CciRaceGetCounters() {
  return CciRaceCounters{};  // tracked_cells = -1: inert
}

std::vector<CciRaceReport> CciRaceTakeReports() { return {}; }

std::vector<CciRaceReport> CciRaceAnalyze(
    const MachineConfig& cfg, const std::function<void(int, int)>& entry,
    const CciRaceOptions& opts) {
  if (opts.reset) opts.reset();
  RunConverse(cfg, entry);
  return {};
}

#endif  // CONVERSE_RACE_ENABLED

void CciRaceEnforce(const std::vector<CciRaceReport>& reports) {
  for (const CciRaceReport& r : reports) {
    if (r.classification == CciRaceClass::kConfirmedDivergent) {
      std::fprintf(stderr, "[CciRace] fatal: rule=%s %s\n",
                   CciRaceRuleName(r.rule), r.line.c_str());
      std::abort();
    }
  }
}

}  // namespace converse
