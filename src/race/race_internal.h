// CciRace internal hook surface.  Core runtime files (machine, scheduler,
// stream, handlers, msg) call these at every happens-before-relevant
// boundary; with CONVERSE_RACE_ENABLED unset they are empty inlines, and
// even when set each wrapper bails on `pe.race == nullptr` (the detector
// only exists under the deterministic sim backend), so the normal-mode
// cost is one predictable branch per boundary in race builds and zero
// bytes otherwise.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/pe_state.h"

namespace converse::detail::race {

#if CONVERSE_RACE_ENABLED

/// Machine ctor: create the detector when the machine is sim-backed (and
/// cfg.sim->race_detect), wiring every PeState::race pointer.
void MachineCreate(Machine& m);
/// Machine dtor: publish candidate reports to the process-wide pending
/// list (CciRaceTakeReports) and free the detector.
void MachineDestroy(Machine& m);

// Implementations (race.cpp); call through the inline gates below.
void OnSendImpl(PeState& pe, int dest_pe, void* msg);
void OnBcastRootImpl(PeState& pe, std::uint32_t seq);
void OnFrameAppendImpl(PeState& pe, int dest_pe, void* msg);
void OnLocalEnqueueImpl(PeState& pe, void* msg);
void OnWireDeliverImpl(PeState& pe, void* msg, bool was_bcast,
                       bool immediate);
void OnDispatchBeginImpl(PeState& pe, void* msg, bool system_owned);
void OnDispatchEndImpl(PeState& pe);
void OnSchedulerReturnImpl(PeState& pe);
void OnMmiReturnImpl(PeState& pe, void* msg);
void OnAllocMsgImpl(PeState& pe, void* msg, std::size_t nbytes);
void OnFreeMsgImpl(PeState& pe, void* msg);

/// A unicast (or carrier) send was stamped with (pe.mype, seq): record the
/// sender's clock for the receiver to join.  Splits the sender's epoch.
inline void OnSend(PeState& pe, int dest_pe, void* msg) {
  if (pe.race != nullptr) OnSendImpl(pe, dest_pe, msg);
}
/// A spanning-tree broadcast allocated logical identity (pe.mype, seq) at
/// the root; record it once (forwarders never call this).
inline void OnBcastRoot(PeState& pe, std::uint32_t seq) {
  if (pe.race != nullptr) OnBcastRootImpl(pe, seq);
}
/// A logical message was packed into the open frame for dest_pe; its
/// clock joins the frame's carried clock (sent once per carrier at flush).
inline void OnFrameAppend(PeState& pe, int dest_pe, void* msg) {
  if (pe.race != nullptr) OnFrameAppendImpl(pe, dest_pe, msg);
}
/// CsdEnqueue* of a locally owned message.
inline void OnLocalEnqueue(PeState& pe, void* msg) {
  if (pe.race != nullptr) OnLocalEnqueueImpl(pe, msg);
}
/// A wire message is about to be dispatched; capture its wire identity
/// (carrier for frame views) before DispatchMessage.
inline void OnWireDeliver(PeState& pe, void* msg, bool was_bcast,
                          bool immediate = false) {
  if (pe.race != nullptr) OnWireDeliverImpl(pe, msg, was_bcast, immediate);
}
/// Handler dispatch: push a fresh context joining the message's clock.
inline void OnDispatchBegin(PeState& pe, void* msg, bool system_owned) {
  if (pe.race != nullptr) OnDispatchBeginImpl(pe, msg, system_owned);
}
/// Handler returned: fold the context into its parent's pending set.
inline void OnDispatchEnd(PeState& pe) {
  if (pe.race != nullptr) OnDispatchEndImpl(pe);
}
/// A scheduler loop returned to its caller: the caller resumes having
/// observed every handler the loop ran (program order on this PE).
inline void OnSchedulerReturn(PeState& pe) {
  if (pe.race != nullptr) OnSchedulerReturnImpl(pe);
}
/// CmiGetMsg/CmiGetSpecificMsg returned msg to the polling context.
inline void OnMmiReturn(PeState& pe, void* msg) {
  if (pe.race != nullptr) OnMmiReturnImpl(pe, msg);
}
/// CmiAlloc/CmiFree: (un)register the payload range for shadow tracking.
inline void OnAllocMsg(void* msg, std::size_t nbytes) {
  PeState* pe = Cpv();
  if (pe != nullptr && pe->race != nullptr) OnAllocMsgImpl(*pe, msg, nbytes);
}
inline void OnFreeMsg(void* msg) {
  PeState* pe = Cpv();
  if (pe != nullptr && pe->race != nullptr) OnFreeMsgImpl(*pe, msg);
}

#else  // !CONVERSE_RACE_ENABLED

inline void MachineCreate(Machine&) {}
inline void MachineDestroy(Machine&) {}
inline void OnSend(PeState&, int, void*) {}
inline void OnBcastRoot(PeState&, std::uint32_t) {}
inline void OnFrameAppend(PeState&, int, void*) {}
inline void OnLocalEnqueue(PeState&, void*) {}
inline void OnWireDeliver(PeState&, void*, bool, bool = false) {}
inline void OnDispatchBegin(PeState&, void*, bool) {}
inline void OnDispatchEnd(PeState&) {}
inline void OnSchedulerReturn(PeState&) {}
inline void OnMmiReturn(PeState&, void*) {}
inline void OnAllocMsg(void*, std::size_t) {}
inline void OnFreeMsg(void*) {}

#endif  // CONVERSE_RACE_ENABLED

}  // namespace converse::detail::race
