// Property-based fuzz workload for the deterministic simulator (the
// converse::sim public API of converse/sim.h).
//
// One RunFuzzCase spins up a simulated machine and drives a randomized
// handler graph on it: every PE injects root actions (unicasts with TTL
// fan-out, broadcasts, immediate messages, priority-queue enqueues, Cmm
// put/probe/get, Cth thread wakeups), handlers recursively generate more
// traffic, and the run ends at the simulator's global-quiescence exit.  All
// workload randomness comes from per-PE PRNG streams derived from the case
// seed, and the simulator serializes PEs deterministically — so a case is a
// pure function of its FuzzParams, which is what makes seed replay and
// shrinking work.
//
// Oracles (checked during the run and after teardown):
//  * conservation — every regular message sent is delivered exactly once,
//    corrected by the injector's exact drop/duplicate counts;
//  * per-sender FIFO per destination, whenever no enabled fault dimension
//    (dup/delay/reorder) may legally break it — this is the oracle that
//    catches SimConfig::plant_reorder_bug;
//  * immediate-lane and local-enqueue conservation (never faulted);
//  * Cmm retrievals match a naive reference mailbox;
//  * the run ends by quiescence (no stuck PE — a deadlock aborts and is
//    reported as the failure).
#include "converse/sim.h"

#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "converse/cmi.h"
#include "converse/cmm.h"
#include "converse/csd.h"
#include "converse/cth.h"
#include "converse/machine.h"
#include "converse/msg.h"
#include "converse/race.h"
#include "converse/stream.h"
#include "converse/util/rng.h"
#include "core/pe_state.h"

namespace converse::sim {
namespace {

enum WireKind : std::uint32_t {
  kData = 1,   // regular unicast (faultable)
  kBcast = 2,  // regular broadcast copy (faultable)
  kLocal = 3,  // scheduler-queue message, never touches the network
};

struct WireMsg {
  std::uint32_t kind;
  std::uint32_t src;     // sending PE
  std::uint32_t stream;  // per-sender sequence in its kind's stream
  std::uint32_t ttl;     // remaining fan-out depth
};

struct ThreadSlot {
  CthThread* t = nullptr;
  bool wake_pending = false;  // a resume message is in the scheduler queue
  bool exited = false;
};

struct PerPe {
  util::Xoshiro256 rng{0};
  bool shutdown = false;

  // Send-side accounting (every counter is owned by this PE's thread; the
  // simulator serializes PEs, and RunFuzzCase aggregates after join).
  std::vector<std::uint32_t> next_uni;  // per destination
  std::uint32_t next_bcast = 0;
  std::uint64_t sent_net = 0;  // expected deliveries from my regular sends
  std::uint64_t sent_imm = 0;
  std::uint64_t local_enq = 0;

  // Receive-side accounting and FIFO oracles.
  std::vector<std::uint32_t> expect_uni;    // per source
  std::vector<std::uint32_t> expect_bcast;  // per source
  std::uint64_t recv_net = 0;
  std::uint64_t recv_imm = 0;
  std::uint64_t local_run = 0;

  std::vector<ThreadSlot> threads;

  // Cmm against a naive reference mailbox.
  MSG_MNGR* mm = nullptr;
  struct RefMsg {
    int tag1, tag2;
    std::uint32_t value;
  };
  std::deque<RefMsg> cmm_ref;
};

struct Ctx {
  FuzzParams p;
  bool fifo_check = false;   // no enabled fault may reorder
  bool exact_streams = false;  // additionally no drops: seqs contiguous
  std::vector<std::unique_ptr<PerPe>> pes;

  std::mutex fail_mu;
  std::string failure;

  void Fail(const std::string& what) {
    std::scoped_lock lk(fail_mu);
    if (failure.empty()) failure = what;
  }
};

util::Xoshiro256 PeStream(std::uint64_t seed, int pe) {
  util::SplitMix64 sm(seed);
  std::uint64_t s = 0;
  for (int i = 0; i <= pe + 1; ++i) s = sm.Next();
  return util::Xoshiro256(s);
}

void* MakeWire(int handler, WireKind kind, int src, std::uint32_t stream,
               std::uint32_t ttl, std::size_t extra_bytes) {
  void* msg = CmiAlloc(static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) +
                       sizeof(WireMsg) + extra_bytes);
  CmiSetHandler(msg, handler);
  auto* w = static_cast<WireMsg*>(CmiMsgPayload(msg));
  w->kind = kind;
  w->src = static_cast<std::uint32_t>(src);
  w->stream = stream;
  w->ttl = ttl;
  std::memset(w + 1, static_cast<int>(stream & 0xff), extra_bytes);
  return msg;
}

/// Random extra payload size: mostly small, occasionally multi-KB so the
/// size axis is exercised too.
std::size_t DrawExtra(PerPe& me) {
  if (me.rng.Below(32) == 0) return 1024 + me.rng.Below(4096);
  return me.rng.Below(160);
}

void SendData(Ctx& ctx, PerPe& me, int mype, int h_data, std::uint32_t ttl) {
  const int dest = static_cast<int>(me.rng.Below(
      static_cast<std::uint64_t>(ctx.p.npes)));
  void* msg = MakeWire(h_data, kData, mype,
                       me.next_uni[static_cast<std::size_t>(dest)]++, ttl,
                       DrawExtra(me));
  ++me.sent_net;
  CmiSyncSendAndFree(static_cast<unsigned>(dest),
                     static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
}

void SendBroadcast(Ctx& ctx, PerPe& me, int mype, int h_data) {
  void* msg = MakeWire(h_data, kBcast, mype, me.next_bcast++, 0, DrawExtra(me));
  me.sent_net += static_cast<std::uint64_t>(ctx.p.npes);
  CmiSyncBroadcastAllAndFree(static_cast<unsigned>(CmiMsgTotalSize(msg)),
                             msg);
}

/// Aggregation stressor: a burst of small unicasts to one destination, the
/// traffic shape the Cst layer batches into frames.  Stream accounting is
/// identical to SendData, so every oracle applies unchanged.
void SendBurst(Ctx& ctx, PerPe& me, int mype, int h_data) {
  const int dest = static_cast<int>(me.rng.Below(
      static_cast<std::uint64_t>(ctx.p.npes)));
  const std::uint64_t burst = 4 + me.rng.Below(12);
  for (std::uint64_t i = 0; i < burst; ++i) {
    void* msg = MakeWire(h_data, kData, mype,
                         me.next_uni[static_cast<std::size_t>(dest)]++, 0,
                         me.rng.Below(96));
    ++me.sent_net;
    CmiSyncSendAndFree(static_cast<unsigned>(dest),
                       static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
  }
}

void SendImmediate(Ctx& ctx, PerPe& me, int mype, int h_imm) {
  const int dest = static_cast<int>(me.rng.Below(
      static_cast<std::uint64_t>(ctx.p.npes)));
  void* msg = MakeWire(h_imm, kData, mype, 0, 0, me.rng.Below(32));
  ++me.sent_imm;
  CmiSyncSendImmediateAndFree(static_cast<unsigned>(dest),
                              static_cast<unsigned>(CmiMsgTotalSize(msg)),
                              msg);
}

void EnqueueLocal(PerPe& me, int mype, int h_local, std::uint32_t ttl) {
  // A fresh allocation, not a delivered buffer: the receiving handler owns
  // and frees it (queue-delivery ownership rule).
  void* fresh = MakeWire(h_local, kLocal, mype, 0, ttl, me.rng.Below(48));
  ++me.local_enq;
  if (me.rng.Below(2) == 0) {
    CsdEnqueue(fresh);
  } else {
    const auto prio = static_cast<std::int32_t>(me.rng.Below(17)) - 8;
    CsdEnqueueIntPrio(fresh, prio, me.rng.Below(4) == 0);
  }
}

void WakeSomeThread(PerPe& me) {
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < me.threads.size(); ++i) {
    ThreadSlot& th = me.threads[i];
    if (!th.exited && !th.wake_pending) cand.push_back(i);
  }
  if (cand.empty()) return;
  ThreadSlot& th = me.threads[cand[static_cast<std::size_t>(
      me.rng.Below(cand.size()))]];
  th.wake_pending = true;
  CthAwaken(th.t);
}

void CmmOp(Ctx& ctx, PerPe& me) {
  const int t1 = static_cast<int>(me.rng.Below(5));
  const int t2 = static_cast<int>(me.rng.Below(3));
  if (me.rng.Below(2) == 0 || me.cmm_ref.empty()) {  // put
    const auto value = static_cast<std::uint32_t>(me.rng.Next());
    CmmPut2(me.mm, &value, t1, t2, static_cast<int>(sizeof(value)));
    me.cmm_ref.push_back(PerPe::RefMsg{t1, t2, value});
    return;
  }
  // get with random wildcards, against the reference mailbox
  const int w1 = me.rng.Below(2) != 0 ? t1 : CmmWildCard;
  const int w2 = me.rng.Below(2) != 0 ? t2 : CmmWildCard;
  std::uint32_t got_value = 0;
  int r1 = -7, r2 = -7;
  const int got = CmmGet2(me.mm, &got_value, w1, w2,
                          static_cast<int>(sizeof(got_value)), &r1, &r2);
  auto it = me.cmm_ref.begin();
  for (; it != me.cmm_ref.end(); ++it) {
    if ((w1 == CmmWildCard || w1 == it->tag1) &&
        (w2 == CmmWildCard || w2 == it->tag2)) {
      break;
    }
  }
  if (it == me.cmm_ref.end()) {
    if (got != -1) ctx.Fail("cmm: Get2 matched but reference mailbox has no match");
    return;
  }
  if (got != static_cast<int>(sizeof(got_value)) || got_value != it->value ||
      r1 != it->tag1 || r2 != it->tag2) {
    ctx.Fail("cmm: Get2 returned a different message than the reference mailbox");
  }
  me.cmm_ref.erase(it);
}

/// One random action from handler/root/thread context.
void RandomAction(Ctx& ctx, PerPe& me, int mype, int h_data, int h_imm,
                  int h_local, std::uint32_t ttl_budget) {
  // Aggregated runs widen the draw by two actions (burst, explicit flush);
  // non-aggregated runs keep the original Below(10) stream so existing
  // seeds replay bit-for-bit.
  const std::uint64_t pick = me.rng.Below(ctx.p.aggregate ? 12 : 10);
  if (pick == 10) {
    SendBurst(ctx, me, mype, h_data);
    return;
  }
  if (pick == 11) {
    CmiFlush();
    return;
  }
  switch (pick) {
    case 0:
    case 1:
    case 2:
    case 3:
      SendData(ctx, me, mype, h_data,
               static_cast<std::uint32_t>(me.rng.Below(ttl_budget + 1)));
      break;
    case 4:
      SendBroadcast(ctx, me, mype, h_data);
      break;
    case 5:
      SendImmediate(ctx, me, mype, h_imm);
      break;
    case 6:
      EnqueueLocal(me, mype, h_local,
                   static_cast<std::uint32_t>(me.rng.Below(2)));
      break;
    case 7:
      WakeSomeThread(me);
      break;
    default:
      CmmOp(ctx, me);
      break;
  }
}

/// Validate one received regular message against the per-sender stream
/// oracles; returns false (and records the failure) on violation.
void CheckStream(Ctx& ctx, PerPe& me, int mype, const WireMsg& w) {
  std::vector<std::uint32_t>& expect =
      w.kind == kBcast ? me.expect_bcast : me.expect_uni;
  std::uint32_t& next = expect[w.src];
  if (!ctx.fifo_check) {
    // dup/delay/reorder faults make any order legal; conservation is
    // checked globally after the run.
    return;
  }
  char buf[160];
  if (ctx.exact_streams) {
    if (w.stream != next) {
      std::snprintf(buf, sizeof(buf),
                    "per-sender FIFO violated: PE %d got %s stream %u from "
                    "PE %u, expected %u",
                    mype, w.kind == kBcast ? "bcast" : "unicast", w.stream,
                    w.src, next);
      ctx.Fail(buf);
      return;
    }
    next = w.stream + 1;
    return;
  }
  // Drops enabled: gaps are fine, going backwards (or repeating) is not.
  if (w.stream < next) {
    std::snprintf(buf, sizeof(buf),
                  "per-sender order violated: PE %d got %s stream %u from "
                  "PE %u after already seeing %u",
                  mype, w.kind == kBcast ? "bcast" : "unicast", w.stream,
                  w.src, next);
    ctx.Fail(buf);
    return;
  }
  next = w.stream + 1;
}

void PeEntry(Ctx& ctx, int mype) {
  PerPe& me = *ctx.pes[static_cast<std::size_t>(mype)];
  me.rng = PeStream(ctx.p.seed, mype);
  me.next_uni.assign(static_cast<std::size_t>(ctx.p.npes), 0);
  me.expect_uni.assign(static_cast<std::size_t>(ctx.p.npes), 0);
  me.expect_bcast.assign(static_cast<std::size_t>(ctx.p.npes), 0);
  me.mm = CmmNew();

  // Handler registration order is identical on every PE, so ids agree.
  int h_data = -1, h_imm = -1, h_local = -1;
  h_data = CmiRegisterHandler([&ctx, &me, mype, &h_data, &h_imm,
                               &h_local](void* msg) {
    WireMsg w;  // copy out: the buffer may be grabbed and freed below
    std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
    ++me.recv_net;
    CheckStream(ctx, me, mype, w);
    if (me.rng.Below(8) == 0) {
      // Exercise the buffer-ownership protocol: take the system buffer and
      // release it ourselves.
      CmiGrabBuffer(&msg);
      CmiFree(msg);
    }
    if (w.ttl > 0) {
      const std::uint64_t fanout = 1 + me.rng.Below(2);
      for (std::uint64_t i = 0; i < fanout; ++i) {
        SendData(ctx, me, mype, h_data, w.ttl - 1);
      }
    }
    if (me.rng.Below(8) == 0) WakeSomeThread(me);
    if (me.rng.Below(6) == 0) CmmOp(ctx, me);
    if (me.rng.Below(8) == 0) {
      EnqueueLocal(me, mype, h_local, 0);
    }
  });
  h_imm = CmiRegisterHandler([&me](void*) { ++me.recv_imm; });
  h_local = CmiRegisterHandler([&ctx, &me, mype, &h_data](void* msg) {
    // Scheduler-queue delivery: the handler owns the buffer.
    WireMsg w;
    std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
    ++me.local_run;
    if (w.ttl > 0) SendData(ctx, me, mype, h_data, 0);
    CmiFree(msg);
  });

  // Worker threads: each does a little traffic, then suspends until a
  // handler (or the drain loop) wakes it.
  me.threads.resize(static_cast<std::size_t>(ctx.p.threads));
  for (int t = 0; t < ctx.p.threads; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    me.threads[ti].t = CthCreate([&ctx, &me, mype, ti, &h_data, &h_imm,
                                  &h_local] {
      ThreadSlot& self = me.threads[ti];
      self.wake_pending = false;
      while (!me.shutdown) {
        RandomAction(ctx, me, mype, h_data, h_imm, h_local, 1);
        self.wake_pending = false;  // consume the wake that resumed us
        CthSuspend();
      }
      self.exited = true;
    });
  }

  // Root actions, then run to global quiescence.
  for (int i = 0; i < ctx.p.actions; ++i) {
    RandomAction(ctx, me, mype, h_data, h_imm, h_local, 2);
    detail::SimYieldHere();  // let injections from different PEs interleave
  }
  CsdScheduler(-1);

  // Drain: wake every remaining thread so it observes shutdown and exits
  // (local resumes only — nothing here can disturb quiescence elsewhere).
  me.shutdown = true;
  for (;;) {
    bool all_exited = true;
    for (ThreadSlot& th : me.threads) {
      if (th.exited) continue;
      all_exited = false;
      if (!th.wake_pending) {
        th.wake_pending = true;
        CthAwaken(th.t);
      }
    }
    if (all_exited) break;
    CsdScheduleUntilIdle();
  }
  if (CmmLength(me.mm) != me.cmm_ref.size()) {
    ctx.Fail("cmm: mailbox length diverged from reference");
  }
  CmmFree(me.mm);
  me.mm = nullptr;
}

}  // namespace

FuzzResult RunFuzzCase(const FuzzParams& params) {
  FuzzResult res;
  Ctx ctx;
  ctx.p = params;
  ctx.fifo_check = params.faults.dup == 0 && params.faults.delay == 0 &&
                   params.faults.reorder == 0;
  ctx.exact_streams = ctx.fifo_check && params.faults.drop == 0;
  for (int i = 0; i < params.npes; ++i) {
    ctx.pes.push_back(std::make_unique<PerPe>());
  }

  SimConfig sim;
  sim.seed = params.seed;
  sim.faults = params.faults;
  sim.plant_reorder_bug = params.plant_reorder_bug;
  sim.report = &res.report;
  MachineConfig cfg;
  cfg.npes = params.npes;
  cfg.seed = params.seed;
  cfg.sim = &sim;
  // Always explicit (never the -1 env default): a CONVERSE_AGG in the
  // environment must not silently change what a seed replays.
  cfg.aggregate_sends = params.aggregate ? 1 : 0;
  try {
    RunConverse(cfg, [&ctx](int pe, int) { PeEntry(ctx, pe); });
  } catch (const std::exception& e) {
    res.ok = false;
    res.failure = std::string("machine aborted: ") + e.what();
    return res;
  }

  if (ctx.failure.empty() && !res.report.quiesced) {
    ctx.Fail("run did not end by global quiescence");
  }
  std::uint64_t sent_net = 0, recv_net = 0, sent_imm = 0, recv_imm = 0;
  std::uint64_t local_enq = 0, local_run = 0;
  for (const auto& pe : ctx.pes) {
    sent_net += pe->sent_net;
    recv_net += pe->recv_net;
    sent_imm += pe->sent_imm;
    recv_imm += pe->recv_imm;
    local_enq += pe->local_enq;
    local_run += pe->local_run;
  }
  const std::uint64_t expected =
      sent_net - res.report.msgs_dropped + res.report.msgs_duplicated;
  if (ctx.failure.empty() && recv_net != expected) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "conservation violated: sent %llu regular messages, "
                  "%llu dropped + %llu duplicated by injection, but %llu "
                  "delivered (expected %llu)",
                  static_cast<unsigned long long>(sent_net),
                  static_cast<unsigned long long>(res.report.msgs_dropped),
                  static_cast<unsigned long long>(res.report.msgs_duplicated),
                  static_cast<unsigned long long>(recv_net),
                  static_cast<unsigned long long>(expected));
    ctx.Fail(buf);
  }
  if (ctx.failure.empty() && recv_imm != sent_imm) {
    ctx.Fail("immediate-lane conservation violated (the injector must never "
             "touch immediate messages)");
  }
  if (ctx.failure.empty() && local_run != local_enq) {
    ctx.Fail("scheduler-queue conservation violated (local enqueues lost)");
  }
  res.failure = ctx.failure;
  res.ok = res.failure.empty();
  return res;
}

FuzzParams Minimize(const FuzzParams& failing, int budget) {
  FuzzParams best = failing;
  auto still_fails = [&budget](const FuzzParams& p) {
    if (budget <= 0) return false;
    --budget;
    return !RunFuzzCase(p).ok;
  };
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    if (best.actions > 1) {
      FuzzParams t = best;
      t.actions = best.actions / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.threads > 0) {
      FuzzParams t = best;
      t.threads = best.threads / 2;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.npes > 1) {
      FuzzParams t = best;
      t.npes = best.npes > 2 ? best.npes / 2 : 1;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    if (best.aggregate) {
      FuzzParams t = best;
      t.aggregate = false;
      if (still_fails(t)) {
        best = t;
        improved = true;
        continue;
      }
    }
    for (double SimFaults::*dim : {&SimFaults::drop, &SimFaults::dup,
                                   &SimFaults::delay, &SimFaults::reorder}) {
      if (best.faults.*dim == 0) continue;
      FuzzParams t = best;
      t.faults.*dim = 0;
      if (still_fails(t)) {
        best = t;
        improved = true;
        break;
      }
    }
  }
  return best;
}

std::string FormatReplay(const FuzzParams& params) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "CONVERSE_SIM_SEED=%llu tools/simfuzz --pes %d --actions %d "
                "--threads %d",
                static_cast<unsigned long long>(params.seed), params.npes,
                params.actions, params.threads);
  std::string out = buf;
  const auto add_prob = [&out, &buf](const char* flag, double v) {
    if (v <= 0) return;
    std::snprintf(buf, sizeof(buf), " %s %g", flag, v);
    out += buf;
  };
  add_prob("--drop", params.faults.drop);
  add_prob("--dup", params.faults.dup);
  add_prob("--delay", params.faults.delay);
  add_prob("--reorder", params.faults.reorder);
  if (params.plant_reorder_bug) out += " --plant-bug";
  if (params.aggregate) out += " --agg";
  return out;
}

// ---------------------------------------------------------------------------
// CciRace fuzz workload (simfuzz --race).
//
// The workload is built so the expected report set is exactly computable:
//  * `chains` independent token chains hop across PEs; every hop handler
//    updates its chain's registered cell and then sends the next hop, so
//    all accesses to one chain cell are totally ordered by happens-before.
//    A sound detector must stay silent — any candidate is a false positive.
//  * plant 1 injects two causally unordered handlers doing an
//    order-sensitive update of a shared cell and echoing the observed
//    value to PE 0: flipping their delivery order changes the echoed
//    payload, so the pair must classify confirmed-divergent.
//  * plant 2 injects two unordered commutative increments with no echo:
//    the candidate must classify benign-commutative.
//
// All routing comes from pure hashes of (seed, chain, hop) — the workload
// draws nothing from the simulator's RNG, so existing fuzz seeds replay
// unchanged.  Aggregation alternates with seed parity to cover the
// frame-carried clock path.
// ---------------------------------------------------------------------------

namespace {

struct RaceHopWire {
  std::uint32_t chain;
  std::uint32_t hop;
};

struct RacePlantWire {
  std::uint32_t writer;  // 1 or 2: distinguishes the two planted updates
  std::uint32_t mode;    // RaceFuzzParams::plant (1 divergent, 2 benign)
};

struct RaceWorkCtx {
  RaceFuzzParams p;
  std::vector<std::uint64_t> chain_cell;
  std::uint64_t plant_cell = 0;

  void Reset() {
    chain_cell.assign(static_cast<std::size_t>(p.chains), 0);
    plant_cell = 0;
  }
};

int RouteHop(const RaceFuzzParams& p, int chain, int hop) {
  util::SplitMix64 sm(p.seed ^
                      (static_cast<std::uint64_t>(chain + 1) * 0x9e3779b9ull) ^
                      (static_cast<std::uint64_t>(hop + 1) * 0x85ebca6bull));
  return static_cast<int>(sm.Next() % static_cast<std::uint64_t>(p.npes));
}

void SendRaceWire(int dest, int handler, const void* wire, std::size_t n) {
  void* msg =
      CmiAlloc(static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) + n);
  CmiSetHandler(msg, handler);
  std::memcpy(CmiMsgPayload(msg), wire, n);
  CmiSyncSendAndFree(static_cast<unsigned>(dest),
                     static_cast<unsigned>(CmiMsgTotalSize(msg)), msg);
}

void RacePeEntry(RaceWorkCtx& ctx, int mype) {
  // Registration order is identical on every PE, so handler ids agree.
  int h_chain = -1, h_plant = -1, h_echo = -1;
  h_chain = CmiRegisterHandler([&ctx, &h_chain](void* msg) {
    RaceHopWire w;
    std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
    std::uint64_t& cell = ctx.chain_cell[w.chain];
    CmiRaceNoteWrite(&cell, sizeof(cell));
    cell = cell * 31 + w.hop;
    const int next_hop = static_cast<int>(w.hop) + 1;
    if (next_hop < ctx.p.hops) {
      RaceHopWire next{w.chain, static_cast<std::uint32_t>(next_hop)};
      SendRaceWire(RouteHop(ctx.p, static_cast<int>(w.chain), next_hop),
                   h_chain, &next, sizeof(next));
    }
  });
  h_plant = CmiRegisterHandler([&ctx, &h_echo](void* msg) {
    RacePlantWire w;
    std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
    CmiRaceNoteWrite(&ctx.plant_cell, sizeof(ctx.plant_cell));
    if (w.mode == 1) {
      // Order-sensitive: the echoed value depends on which writer ran
      // first, so the flipped replay's outcome digest diverges.
      ctx.plant_cell = ctx.plant_cell * 31 + w.writer;
      const std::uint64_t echo = ctx.plant_cell;
      SendRaceWire(0, h_echo, &echo, sizeof(echo));
    } else {
      // Commutative: either order produces the same final state and the
      // same delivered payloads.
      ctx.plant_cell += 1;
    }
  });
  h_echo = CmiRegisterHandler([](void*) {
    // The echoed payload participates in the outcome digest by arriving;
    // nothing to do here.
  });

  if (mype == 0) {
    CciRaceRegisterNamed(ctx.chain_cell.data(),
                         ctx.chain_cell.size() * sizeof(std::uint64_t),
                         "race-fuzz chain cells");
    CciRaceRegisterNamed(&ctx.plant_cell, sizeof(ctx.plant_cell),
                         "race-fuzz plant cell");
    for (int c = 0; c < ctx.p.chains; ++c) {
      RaceHopWire w{static_cast<std::uint32_t>(c), 0};
      SendRaceWire(RouteHop(ctx.p, c, 0), h_chain, &w, sizeof(w));
    }
    if (ctx.p.plant != 0) {
      // Two sends from one context are causally unordered at the receiver
      // (the epoch splits after the first send), so the two plant handlers
      // race on plant_cell by construction.
      const int dest = ctx.p.npes > 1 ? 1 : 0;
      for (std::uint32_t writer = 1; writer <= 2; ++writer) {
        RacePlantWire w{writer, static_cast<std::uint32_t>(ctx.p.plant)};
        SendRaceWire(dest, h_plant, &w, sizeof(w));
        // Under aggregation the two plants would otherwise share one
        // frame — a single wire message whose internal order cannot be
        // flipped.  Flushing gives each its own carrier.
        CmiFlush();
      }
    }
  }
  CsdScheduler(-1);
}

}  // namespace

bool RaceFuzzAvailable() { return CciRaceEnabled(); }

RaceFuzzResult RunRaceFuzzCase(const RaceFuzzParams& params) {
  RaceFuzzResult res;
  if (!CciRaceEnabled()) {
    res.failure = "CciRace is compiled out (build with -DCONVERSE_RACE=ON)";
    return res;
  }
  RaceWorkCtx ctx;
  ctx.p = params;
  if (ctx.p.npes < 1) ctx.p.npes = 1;
  if (ctx.p.chains < 0) ctx.p.chains = 0;

  SimConfig sim;
  sim.seed = params.seed;
  MachineConfig cfg;
  cfg.npes = ctx.p.npes;
  cfg.seed = params.seed;
  cfg.sim = &sim;
  cfg.aggregate_sends = (params.seed % 2 == 0) ? 1 : 0;

  CciRaceOptions opts;
  opts.reset = [&ctx] { ctx.Reset(); };
  std::vector<CciRaceReport> reports;
  try {
    reports = CciRaceAnalyze(
        cfg, [&ctx](int pe, int) { RacePeEntry(ctx, pe); }, opts);
  } catch (const std::exception& e) {
    res.failure = std::string("machine aborted: ") + e.what();
    return res;
  }

  res.candidates = static_cast<int>(reports.size());
  for (const auto& r : reports) {
    switch (r.classification) {
      case CciRaceClass::kConfirmedDivergent: ++res.divergent; break;
      case CciRaceClass::kBenignCommutative: ++res.benign; break;
      case CciRaceClass::kUnreplayable: ++res.unreplayable; break;
      case CciRaceClass::kUnconfirmed: break;
    }
  }

  switch (params.plant) {
    case 0:
      if (res.candidates != 0) {
        res.failure = "false positive: candidate race reported for a "
                      "causally ordered workload";
      }
      break;
    case 1:
      if (res.divergent < 1) {
        res.failure = "planted order-sensitive race was not classified "
                      "confirmed-divergent";
      }
      break;
    case 2:
      if (res.benign < 1) {
        res.failure = "planted commutative pair was not classified "
                      "benign-commutative";
      } else if (res.divergent != 0) {
        res.failure = "planted commutative pair misclassified as divergent";
      }
      break;
    default:
      res.failure = "unknown plant mode";
      break;
  }
  res.ok = res.failure.empty();
  return res;
}

std::string FormatRaceReplay(const RaceFuzzParams& params) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "tools/simfuzz --race --seed %llu --pes %d --chains %d "
                "--hops %d%s",
                static_cast<unsigned long long>(params.seed), params.npes,
                params.chains, params.hops,
                params.plant == 1   ? " --plant-race"
                : params.plant == 2 ? " --plant-benign"
                                    : "");
  return buf;
}

}  // namespace converse::sim
