// Deterministic-simulation coordinator — implementation.  See
// sim_internal.h for the execution model and locking rules.
#include "sim/sim_internal.h"

#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "converse/check.h"
#include "converse/cmi.h"
#include "converse/msg.h"
#include "converse/util/crc.h"
#include "core/pe_state.h"
#include "core/stream.h"

namespace converse::detail {

SimCoordinator::SimCoordinator(Machine& m, const SimConfig& cfg)
    : m_(m),
      cfg_(cfg),
      npes_(m.npes()),
      slots_(static_cast<std::size_t>(m.npes())),
      rng_(cfg.seed) {}

void SimCoordinator::HashEvent(Event kind, std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (std::uint64_t w : {static_cast<std::uint64_t>(kind), a, b, c}) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ (w & 0xffu)) * kPrime;
      w >>= 8;
    }
  }
  ++events_;
}

bool SimCoordinator::Deliverable(PeState& pe) {
  // Reading another thread's consumer-private lane state is safe here: the
  // owner is blocked (it parked through mu_, which we hold), so its last
  // writes happen-before our reads via the mutex handoff.
  for (const InLane* lane : {&pe.immlane, &pe.netlane}) {
    if (lane->ring.HasItems() ||
        lane->overflow_count.load(std::memory_order_seq_cst) != 0) {
      return true;
    }
  }
  if (!pe.imm_batchq.empty() || !pe.batchq.empty()) return true;
  const double now = NowUs();
  std::scoped_lock plk(pe.mu);
  return !pe.timedq.empty() && pe.timedq.top().arrive_us <= now;
}

void SimCoordinator::PushTimed(int dest_pe, void* msg, double arrive_us) {
  PeState& dst = m_.Pe(dest_pe);
  std::scoped_lock plk(dst.mu);
  dst.timedq.push(NetEntry{msg, arrive_us, dst.net_seq++});
}

void SimCoordinator::WakeAllPesLocked() {
  for (Slot& s : slots_) s.cv.notify_all();
}

void SimCoordinator::DeadlockAbortLocked(std::unique_lock<std::mutex>& lk,
                                         const std::string& reason) {
  abort_mode_ = true;
  WakeAllPesLocked();
  std::string what = "converse sim: deadlock detected — " + reason +
                     " (replay with seed " + std::to_string(cfg_.seed) + ")";
  // Machine::Abort re-enters OnAbort (which takes mu_) and notifies every
  // PE condvar, so it must run unlocked.
  lk.unlock();
  m_.Abort(std::make_exception_ptr(std::runtime_error(what)));
  lk.lock();
}

void SimCoordinator::ScheduleNextLocked(std::unique_lock<std::mutex>& lk) {
  if (abort_mode_) {
    WakeAllPesLocked();
    return;
  }
  for (;;) {
    cand_.clear();
    int alive = 0;
    for (int i = 0; i < npes_; ++i) {
      Slot& s = slots_[static_cast<std::size_t>(i)];
      if (s.state == PeRunState::kDone || s.state == PeRunState::kNew) {
        continue;
      }
      ++alive;
      if (s.state == PeRunState::kReady) {
        cand_.push_back(i);
      } else if (s.state == PeRunState::kBlocked &&
                 (m_.Pe(i).exit_requested || Deliverable(m_.Pe(i)))) {
        cand_.push_back(i);
      }
    }
    if (!cand_.empty()) {
      const int pick = cand_[static_cast<std::size_t>(
          rng_.Below(static_cast<std::uint64_t>(cand_.size())))];
      Slot& granted = slots_[static_cast<std::size_t>(pick)];
      granted.state = PeRunState::kRunning;
      if (pick != last_running_) {
        ++context_switches_;
        HashEvent(Event::kSwitch, static_cast<std::uint64_t>(pick), 0, 0);
        last_running_ = pick;
      }
      // Wake only the granted PE.  When the caller re-granted itself, no
      // thread is waiting on this cv and the notify is a no-op.
      granted.cv.notify_all();
      return;
    }
    if (alive == 0) return;  // last PE just finished; nothing left to grant

    // Every live PE is blocked with nothing deliverable: advance the
    // virtual clock straight to the earliest pending arrival.
    double min_arrive = std::numeric_limits<double>::infinity();
    for (int i = 0; i < npes_; ++i) {
      if (slots_[static_cast<std::size_t>(i)].state == PeRunState::kDone) {
        continue;  // nobody will ever consume a finished PE's queue
      }
      PeState& pe = m_.Pe(i);
      std::scoped_lock plk(pe.mu);
      if (!pe.timedq.empty() && pe.timedq.top().arrive_us < min_arrive) {
        min_arrive = pe.timedq.top().arrive_us;
      }
    }
    if (min_arrive < std::numeric_limits<double>::infinity()) {
      {
        std::scoped_lock clk(clock_mu_);
        if (min_arrive > now_us_) now_us_ = min_arrive;
      }
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(min_arrive));
      std::memcpy(&bits, &min_arrive, sizeof(bits));
      HashEvent(Event::kAdvance, bits, 0, 0);
      continue;  // re-scan: some blocked PE is deliverable now
    }

    // No future arrival either.  A held-back (reorder-fault) message would
    // make this look quiescent when it is not: flush it first.
    if (held_.msg != nullptr) {
      void* msg = held_.msg;
      const int dst = held_.dst;
      held_ = Held{};
      PushTimed(dst, msg, NowUs());
      continue;
    }
    // Same for a flip-held message whose partner delivery never came:
    // release it un-flipped (flip_applied_ stays false -> unreplayable).
    if (flip_held_.msg != nullptr) {
      void* msg = flip_held_.msg;
      const int dst = flip_held_.dst;
      flip_held_ = Held{};
      flip_done_ = true;
      PushTimed(dst, msg, NowUs());
      continue;
    }

    // Global quiescence: nothing can ever happen again on its own.
    HashEvent(Event::kQuiesce, 0, 0, 0);
    quiesced_ = true;
    if (!cfg_.exit_on_quiescence) {
      DeadlockAbortLocked(
          lk, "global quiescence (all PEs blocked, nothing in flight)");
      return;
    }
    for (int i = 0; i < npes_; ++i) {
      Slot& s = slots_[static_cast<std::size_t>(i)];
      if (s.state == PeRunState::kDone) continue;
      m_.Pe(i).exit_requested = true;
      if (s.state == PeRunState::kBlocked) s.state = PeRunState::kReady;
    }
    // Loop: the freshly readied PEs are candidates now.
  }
}

void SimCoordinator::PeStart(PeState& pe) {
  std::unique_lock lk(mu_);
  Slot& sp = slots_[static_cast<std::size_t>(pe.mype)];
  sp.state = PeRunState::kReady;
  ++registered_;
  if (registered_ == npes_) ScheduleNextLocked(lk);
  while (sp.state != PeRunState::kRunning) {
    if (abort_mode_) throw MachineAborted{};
    sp.cv.wait(lk);
  }
}

void SimCoordinator::PeFinish(PeState& pe) {
  std::unique_lock lk(mu_);
  Slot& sp = slots_[static_cast<std::size_t>(pe.mype)];
  if (sp.state == PeRunState::kDone) return;
  sp.state = PeRunState::kDone;
  if (!abort_mode_) ScheduleNextLocked(lk);
}

void SimCoordinator::YieldPoint(PeState& pe) {
  std::unique_lock lk(mu_);
  Slot& sp = slots_[static_cast<std::size_t>(pe.mype)];
  // Only the baton holder may yield; teardown paths (fini hooks) and abort
  // unwinding reach scheduling points after the PE already released it.
  if (abort_mode_ || sp.state != PeRunState::kRunning) return;
  sp.state = PeRunState::kReady;
  ScheduleNextLocked(lk);
  while (sp.state != PeRunState::kRunning) {
    if (abort_mode_) return;  // silent: may be inside a fiber
    sp.cv.wait(lk);
  }
}

void SimCoordinator::BlockForNet(PeState& pe) {
  std::unique_lock lk(mu_);
  Slot& sp = slots_[static_cast<std::size_t>(pe.mype)];
  if (sp.state == PeRunState::kDone) return;  // defensive (teardown paths)
  for (;;) {
    if (abort_mode_) throw MachineAborted{};
    if (Deliverable(pe)) {
      sp.events_at_exit_return = kNeverReturned;
      return;
    }
    if (pe.exit_requested) {
      // Woken only by the quiescence exit.  If the PE blocks again without
      // a single event in between, it is spinning on a receive that can
      // never complete (e.g. CmiGetSpecificMsg with no possible sender).
      if (sp.events_at_exit_return == events_) {
        DeadlockAbortLocked(
            lk, "PE " + std::to_string(pe.mype) +
                    " still waits for a message after the quiescence exit "
                    "with nothing in flight");
        throw MachineAborted{};
      }
      sp.events_at_exit_return = events_;
      return;
    }
    sp.state = PeRunState::kBlocked;
    ScheduleNextLocked(lk);
    while (sp.state != PeRunState::kRunning && !abort_mode_) sp.cv.wait(lk);
  }
}

void SimCoordinator::Send(PeState& src, int dest_pe, void* msg,
                          double extra_delay_us) {
  MsgHeader* h = Header(msg);
  const std::size_t payload = CmiMsgPayloadSize(msg);
  std::unique_lock lk(mu_);
  HashEvent(Event::kSend,
            (static_cast<std::uint64_t>(src.mype) << 32) |
                static_cast<std::uint32_t>(dest_pe),
            h->handler,
            (static_cast<std::uint64_t>(h->seq) << 32) | payload);

  if ((h->flags & kMsgFlagFrame) != 0) {
    CstFrameWire wire;
    std::memcpy(&wire, static_cast<const char*>(msg) + sizeof(MsgHeader),
                sizeof(wire));
    ++agg_frames_;
    agg_batched_ += wire.count;
  }

  // CciRace replay flip: hold the targeted wire message back at its send
  // until its partner has been delivered (see SimFlip).  Checked before the
  // fault draws so it never perturbs the fault RNG stream (replay runs
  // disable faults anyway).
  if (cfg_.flip.enabled && !flip_done_ && flip_held_.msg == nullptr &&
      src.mype == cfg_.flip.hold_src && h->seq == cfg_.flip.hold_seq) {
    HashEvent(Event::kHold, static_cast<std::uint64_t>(dest_pe), h->handler,
              h->seq);
    flip_held_ = Held{msg, src.mype, dest_pe};
    return;
  }

  // Fault draws.  Each dimension draws only when enabled, so the schedule
  // stream is unperturbed by dimensions that are off.  Self-sends never
  // cross a network — no real machine can lose a message a PE hands to
  // itself — so they are exempt: this is what makes delayed self-sends
  // (the service runtime's timers) reliable under fault injection.
  const SimFaults& f = cfg_.faults;
  const bool faultable = dest_pe != src.mype;
  bool drop = false, dup = false, hold = false;
  double extra_us = 0.0;
  if (faultable && f.Any() && faults_injected_ < f.max_faults) {
    if (f.drop > 0 && rng_.NextDouble() < f.drop) drop = true;
    if (!drop && f.dup > 0 && rng_.NextDouble() < f.dup) dup = true;
    if (!drop && f.delay > 0 && rng_.NextDouble() < f.delay) {
      extra_us = rng_.NextDouble() * f.delay_max_us;
    }
    if (!drop && held_.msg == nullptr && f.reorder > 0 &&
        rng_.NextDouble() < f.reorder) {
      hold = true;
      ++reordered_;
      ++faults_injected_;
    }
  }
  bool planted_hold = false;
  if (cfg_.plant_reorder_bug && !drop && !hold && held_.msg == nullptr) {
    // The planted ordering bug: silently break per-sender FIFO with the
    // same hold-back mechanism, but without accounting it as a fault.
    hold = true;
    planted_hold = true;
  }

  if (drop) {
    // Dropping an aggregation frame or broadcast carrier loses every
    // logical message it carries; weight the counter so conservation
    // oracles balance (delivered == sent - dropped + duplicated).
    dropped_ += CstMessageWeight(m_, dest_pe, msg);
    ++faults_injected_;
    HashEvent(Event::kDrop, static_cast<std::uint64_t>(dest_pe), h->handler,
              h->seq);
    lk.unlock();
    check::OnReclaim(msg);  // the "network" eats the buffer
    CmiFree(msg);
    return;
  }
  if (hold) {
    if (!planted_hold) {
      HashEvent(Event::kHold, static_cast<std::uint64_t>(dest_pe),
                h->handler, h->seq);
    }
    held_ = Held{msg, src.mype, dest_pe};
    return;
  }

  if (extra_us > 0) {
    ++delayed_;
    ++faults_injected_;
  }
  // Self-sends pay no modeled network cost (same rationale as the fault
  // exemption above): a delayed self-send is then an exact virtual timer.
  const double latency = faultable && m_.has_model()
                             ? m_.model().OnewayUs(payload)
                             : 0.0;
  const double arrive = NowUs() + latency + extra_us + extra_delay_us;

  void* clone = nullptr;
  if (dup) {
    if ((h->flags & kMsgFlagSbcast) != 0) {
      // A shared-broadcast block must not be cloned: its embedded view's
      // back-pointer (stamped at the root) would still point at the
      // original, and its refcount is the identity being shared.  Duplicate
      // the *reference* instead — both lane entries release one ref each.
      auto* wire = reinterpret_cast<CstSbcastWire*>(
          static_cast<char*>(msg) + sizeof(MsgHeader));
      __atomic_add_fetch(&wire->refs, 1, __ATOMIC_RELAXED);
      clone = msg;
    } else {
      clone = CloneMessage(msg);  // keeps handler/source/seq of the original
      check::OnSend(clone);
    }
    duplicated_ += CstMessageWeight(m_, dest_pe, msg);  // weighted, see drop
    ++faults_injected_;
    HashEvent(Event::kDup, static_cast<std::uint64_t>(dest_pe), h->handler,
              h->seq);
  }
  PushTimed(dest_pe, msg, arrive);
  if (clone != nullptr) PushTimed(dest_pe, clone, arrive);

  // Release a held-back message from the same (src, dst) pair *after* this
  // one: same arrival time, later tie-break seq — a guaranteed inversion.
  if (held_.msg != nullptr && held_.src == src.mype &&
      held_.dst == dest_pe) {
    void* hm = held_.msg;
    held_ = Held{};
    PushTimed(dest_pe, hm, arrive);
  }
}

void SimCoordinator::RecordImmediateSend(PeState& src, int dest_pe,
                                         const void* msg) {
  const MsgHeader* h = Header(const_cast<void*>(msg));
  std::scoped_lock lk(mu_);
  HashEvent(Event::kImmediateSend,
            (static_cast<std::uint64_t>(src.mype) << 32) |
                static_cast<std::uint32_t>(dest_pe),
            h->handler, h->seq);
}

void SimCoordinator::RecordUser(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) {
  std::scoped_lock lk(mu_);
  HashEvent(Event::kUser, a, b, c);
}

void SimTraceUser(PeState& pe, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  if (SimCoordinator* sim = pe.machine->sim()) sim->RecordUser(a, b, c);
}

void SimCoordinator::RecordDeliver(PeState& pe, const void* msg) {
  const MsgHeader* h = Header(const_cast<void*>(msg));
  // Outcome digest fields, computed before taking mu_: payload bytes only
  // (headers carry per-sender seqs, which a flipped schedule reassigns).
  const std::size_t payload = CmiMsgPayloadSize(msg);
  const std::uint32_t crc = util::Crc32c(CmiMsgPayload(msg), payload);
  // The wire identity whose delivery releases a pending flip: for a view
  // into an aggregation frame that is the carrier (the view's release
  // back-pointer sits 8 bytes before the header), else the header's own.
  int wire_src = h->source_pe;
  std::uint32_t wire_seq = h->seq;
  if ((h->flags & kMsgFlagInFrame) != 0) {
    void* frame = nullptr;
    std::memcpy(&frame, static_cast<const char*>(msg) - 8, sizeof(frame));
    wire_src = Header(frame)->source_pe;
    wire_seq = Header(frame)->seq;
  }

  std::scoped_lock lk(mu_);
  HashEvent(Event::kDeliver, static_cast<std::uint64_t>(pe.mype), h->handler,
            (static_cast<std::uint64_t>(h->source_pe) << 32) | h->seq);
  // Commutative (wrapping) sum over a per-delivery FNV-1a hash: equal
  // multisets of deliveries produce equal digests regardless of order.
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t d = 1469598103934665603ull;
  for (std::uint64_t w : {static_cast<std::uint64_t>(pe.mype),
                          static_cast<std::uint64_t>(h->handler),
                          (static_cast<std::uint64_t>(payload) << 32) | crc}) {
    for (int i = 0; i < 8; ++i) {
      d = (d ^ (w & 0xffu)) * kPrime;
      w >>= 8;
    }
  }
  outcome_ += d;

  if (flip_held_.msg != nullptr && wire_src == cfg_.flip.until_src &&
      wire_seq == cfg_.flip.until_seq) {
    // The partner delivery happened: release the held message now, strictly
    // after it — the pair's order is inverted relative to the baseline.
    void* hm = flip_held_.msg;
    const int dst = flip_held_.dst;
    flip_held_ = Held{};
    flip_done_ = true;
    flip_applied_ = true;
    PushTimed(dst, hm, NowUs());
  }
}

void SimCoordinator::OnAbort() {
  std::scoped_lock lk(mu_);
  abort_mode_ = true;
  WakeAllPesLocked();
}

void SimCoordinator::FillReport() {
  std::scoped_lock lk(mu_);
  if (cfg_.report == nullptr) return;
  SimReport& r = *cfg_.report;
  r.trace_hash = hash_;
  r.events = events_;
  r.context_switches = context_switches_;
  r.msgs_dropped = dropped_;
  r.msgs_duplicated = duplicated_;
  r.msgs_delayed = delayed_;
  r.msgs_reordered = reordered_;
  r.faults_injected = faults_injected_;
  r.agg_frames = agg_frames_;
  r.agg_msgs_batched = agg_batched_;
  r.final_virtual_us = NowUs();
  r.quiesced = quiesced_;
  r.outcome_hash = outcome_;
  r.flip_applied = flip_applied_;
}

void* SimCoordinator::TakeHeldMessage() {
  std::scoped_lock lk(mu_);
  void* msg = held_.msg;
  held_ = Held{};
  if (msg == nullptr) {
    msg = flip_held_.msg;
    flip_held_ = Held{};
  }
  return msg;
}

void SimYieldHere() {
  PeState* pe = Cpv();
  if (pe == nullptr) return;
  if (SimCoordinator* sim = pe->machine->sim()) sim->YieldPoint(*pe);
}

}  // namespace converse::detail
