// The deterministic-simulation coordinator (see converse/sim.h for the
// user-facing story).
//
// Execution model: PE threads stay real OS threads, but a single "baton"
// serializes them — exactly one PE runs at any instant, and every handoff
// happens at an instrumented point (after a dispatch, at a Cth suspend, when
// a PE blocks for the network).  The coordinator picks the next PE to run
// uniformly from the runnable set with one seeded PRNG, so the entire
// schedule is a pure function of the seed.  Because all cross-PE state is
// only ever touched by the baton holder, and the baton moves through mu_
// (unlock in the yielding thread, lock in the granted one), every access is
// ordered by that mutex: the design is data-race-free without making any
// per-PE field atomic.
//
// Time is virtual: sends are stamped now + model latency (+ injected delay)
// into the destination's timed queue, and the clock jumps forward only when
// every live PE is blocked, directly to the earliest pending arrival.  When
// there is no pending arrival either, the machine is globally quiescent —
// the coordinator raises every PE's scheduler-exit flag (or reports a
// deadlock, see BlockForNet).
//
// Lock ordering: mu_ before any PeState::mu, never the reverse.  Machine
// code calls into the coordinator only while holding no PE mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "converse/sim.h"
#include "converse/util/rng.h"

namespace converse::detail {

class Machine;
struct PeState;

class SimCoordinator {
 public:
  SimCoordinator(Machine& m, const SimConfig& cfg);

  // ---- PE thread lifecycle (called from Machine::Run) ----
  /// Register this PE and block until the coordinator grants it the baton.
  /// The first grant waits for all npes PEs, so OS thread startup order
  /// cannot leak into the schedule.  Throws MachineAborted on abort.
  void PeStart(PeState& pe);
  /// The PE's entry returned (or unwound): release the baton for good.
  void PeFinish(PeState& pe);

  // ---- instrumented points (called from machine/scheduler/cth) ----
  /// Offer a handoff; returns with the baton re-granted (possibly without
  /// ever giving it up).  Silently returns in abort mode — this is reachable
  /// from fiber context, where throwing would escape the fiber entry.
  void YieldPoint(PeState& pe);
  /// The PE has nothing deliverable: release the baton until a message is
  /// deliverable or a quiescence exit is pending.  Throws MachineAborted on
  /// abort or on detected deadlock.
  void BlockForNet(PeState& pe);

  // ---- send path (called from SendOwnedFrom; takes ownership of msg) ----
  /// `extra_delay_us` is the caller-requested timer offset of a delayed
  /// send (CmiSyncSendDelayedAndFree); it adds to the model latency and any
  /// injected delay.  Self-sends (dest == src) never cross a network, so
  /// the fault injector leaves them alone — that makes delayed self-sends a
  /// reliable virtual-time timer even under fault injection.
  void Send(PeState& src, int dest_pe, void* msg, double extra_delay_us = 0.0);
  /// Immediate-lane sends are never faulted or delayed; only traced.
  void RecordImmediateSend(PeState& src, int dest_pe, const void* msg);
  /// Trace one network delivery about to be dispatched on `pe`.
  void RecordDeliver(PeState& pe, const void* msg);
  /// Fold a module-defined decision into the event-trace hash (e.g. the
  /// seed balancer's steal/rebalance choices), so a replay that diverges in
  /// module behavior diverges in trace hash even when the wire traffic
  /// happens to coincide.  Callers go through detail::SimTraceUser.
  void RecordUser(std::uint64_t a, std::uint64_t b, std::uint64_t c);

  /// Virtual microseconds since machine start.
  double NowUs() const {
    std::scoped_lock lk(clock_mu_);
    return now_us_;
  }

  /// Machine::Abort notifies the coordinator so every wait loop exits.
  void OnAbort();

  /// Fill cfg.report (if any) with final counters; called at teardown.
  void FillReport();

  /// Detach the fault injector's held-back message, if one exists, so the
  /// machine teardown can reclaim it (only non-empty after an abort — a
  /// normal run flushes it before declaring quiescence).
  void* TakeHeldMessage();

 private:
  enum class PeRunState : std::uint8_t { kNew, kReady, kRunning, kBlocked, kDone };

  enum class Event : std::uint64_t {
    kSend = 1,
    kImmediateSend,
    kDeliver,
    kSwitch,
    kAdvance,
    kQuiesce,
    kDrop,
    kDup,
    kHold,
    kUser,  // module-defined decision (RecordUser)
  };

  struct Slot {
    PeRunState state = PeRunState::kNew;
    // Per-PE wakeup channel (all waits still use mu_).  A shared condvar
    // with notify_all turns every baton handoff into a thundering herd —
    // npes-1 spurious thread wakeups per event, which dominates wall time
    // on hosts with fewer cores than PEs.  Targeted notifies wake only the
    // granted PE.
    std::condition_variable cv;
    // events_ value at the last time BlockForNet returned only because of a
    // pending quiescence exit; a second such return with no event in
    // between means the PE re-blocked without making progress (deadlock).
    std::uint64_t events_at_exit_return = kNeverReturned;
  };

  struct Held {
    void* msg = nullptr;
    int src = -1;
    int dst = -1;
  };

  static constexpr std::uint64_t kNeverReturned = ~0ull;

  /// Fold one event into the trace hash (FNV-1a over the field words).
  void HashEvent(Event kind, std::uint64_t a, std::uint64_t b,
                 std::uint64_t c);

  /// True when `pe` has a message it could deliver right now.
  bool Deliverable(PeState& pe);

  /// Wake every PE thread (abort / teardown paths).  Caller holds mu_.
  void WakeAllPesLocked();

  /// Pick the next PE to run and grant it the baton; advances the virtual
  /// clock / fires quiescence / detects deadlock when nobody is runnable.
  void ScheduleNextLocked(std::unique_lock<std::mutex>& lk);

  /// Abort the machine with a deadlock diagnostic (releases and reacquires
  /// lk around Machine::Abort, which re-enters OnAbort).
  void DeadlockAbortLocked(std::unique_lock<std::mutex>& lk,
                           const std::string& reason);

  /// Push a message into dest's timed queue at virtual time `arrive_us`.
  void PushTimed(int dest_pe, void* msg, double arrive_us);

  Machine& m_;
  const SimConfig cfg_;
  const int npes_;

  std::mutex mu_;
  std::vector<Slot> slots_;
  util::Xoshiro256 rng_;
  int registered_ = 0;
  int last_running_ = -1;
  bool abort_mode_ = false;
  std::vector<int> cand_;  // scratch for ScheduleNextLocked

  // The virtual clock gets its own (innermost, leaf) mutex so NowUs is
  // callable from machine paths that already hold mu_ or a PeState::mu.
  mutable std::mutex clock_mu_;
  double now_us_ = 0.0;

  // Fault injection (all under mu_).
  Held held_;
  std::uint64_t faults_injected_ = 0;

  // CciRace replay flip (all under mu_): a second, independent held slot so
  // a flip coexists with reorder-fault holds.  flip_done_ latches once the
  // flip either fired or was flushed at quiescence; flip_applied_ is set
  // only when the inversion actually happened (SimReport::flip_applied).
  Held flip_held_;
  bool flip_applied_ = false;
  bool flip_done_ = false;

  // Trace + report counters (all under mu_).
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t outcome_ = 0;  // order-insensitive delivery digest
  std::uint64_t events_ = 0;
  std::uint64_t context_switches_ = 0;
  std::uint64_t dropped_ = 0;     // weighted: logical messages lost
  std::uint64_t duplicated_ = 0;  // weighted: logical messages duplicated
  std::uint64_t delayed_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t agg_frames_ = 0;   // aggregation frames seen on the wire
  std::uint64_t agg_batched_ = 0;  // logical messages inside those frames
  bool quiesced_ = false;
};

}  // namespace converse::detail
