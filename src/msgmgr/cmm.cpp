#include "converse/cmm.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <vector>

namespace converse {

namespace {

struct StoredMsg {
  int tag1;
  int tag2;
  std::vector<char> data;
};

bool TagMatches(int want, int have) {
  return want == CmmWildCard || want == have;
}

}  // namespace

struct MSG_MNGR {
  // FIFO among matches requires ordered scan; the original implementation
  // is also a linear list.  For the tag cardinalities these mailboxes see
  // (a handful of outstanding messages per entity) a deque scan wins over
  // any index structure.
  std::deque<StoredMsg> msgs;

  std::deque<StoredMsg>::iterator Find(int tag1, int tag2) {
    for (auto it = msgs.begin(); it != msgs.end(); ++it) {
      if (TagMatches(tag1, it->tag1) && TagMatches(tag2, it->tag2)) return it;
    }
    return msgs.end();
  }
};

MSG_MNGR* CmmNew() { return new MSG_MNGR; }

void CmmFree(MSG_MNGR* mm) { delete mm; }

void CmmPut2(MSG_MNGR* mm, const void* msg, int tag1, int tag2, int size) {
  assert(size >= 0);
  assert(tag1 != CmmWildCard && tag2 != CmmWildCard &&
         "stored messages must carry concrete tags");
  StoredMsg s;
  s.tag1 = tag1;
  s.tag2 = tag2;
  s.data.assign(static_cast<const char*>(msg),
                static_cast<const char*>(msg) + size);
  mm->msgs.push_back(std::move(s));
}

void CmmPut(MSG_MNGR* mm, const void* msg, int tag, int size) {
  CmmPut2(mm, msg, tag, /*tag2=*/0, size);
}

int CmmProbe2(MSG_MNGR* mm, int tag1, int tag2, int* rettag1, int* rettag2) {
  auto it = mm->Find(tag1, tag2);
  if (it == mm->msgs.end()) return -1;
  if (rettag1 != nullptr) *rettag1 = it->tag1;
  if (rettag2 != nullptr) *rettag2 = it->tag2;
  return static_cast<int>(it->data.size());
}

int CmmProbe(MSG_MNGR* mm, int tag, int* rettag) {
  return CmmProbe2(mm, tag, CmmWildCard, rettag, nullptr);
}

int CmmGet2(MSG_MNGR* mm, void* addr, int tag1, int tag2, int size,
            int* rettag1, int* rettag2) {
  auto it = mm->Find(tag1, tag2);
  if (it == mm->msgs.end()) return -1;
  if (rettag1 != nullptr) *rettag1 = it->tag1;
  if (rettag2 != nullptr) *rettag2 = it->tag2;
  const int len = static_cast<int>(it->data.size());
  const int ncopy = len < size ? len : size;
  if (ncopy > 0) {
    std::memcpy(addr, it->data.data(), static_cast<std::size_t>(ncopy));
  }
  mm->msgs.erase(it);
  return len;
}

int CmmGet(MSG_MNGR* mm, void* addr, int tag, int size, int* rettag) {
  return CmmGet2(mm, addr, tag, CmmWildCard, size, rettag, nullptr);
}

int CmmGetPtr2(MSG_MNGR* mm, void** addr, int tag1, int tag2, int* rettag1,
               int* rettag2) {
  auto it = mm->Find(tag1, tag2);
  if (it == mm->msgs.end()) return -1;
  if (rettag1 != nullptr) *rettag1 = it->tag1;
  if (rettag2 != nullptr) *rettag2 = it->tag2;
  const int len = static_cast<int>(it->data.size());
  char* out = new char[it->data.empty() ? 1 : it->data.size()];
  if (!it->data.empty()) {
    std::memcpy(out, it->data.data(), it->data.size());
  }
  *addr = out;
  mm->msgs.erase(it);
  return len;
}

int CmmGetPtr(MSG_MNGR* mm, void** addr, int tag, int* rettag) {
  return CmmGetPtr2(mm, addr, tag, CmmWildCard, rettag, nullptr);
}

std::size_t CmmLength(const MSG_MNGR* mm) { return mm->msgs.size(); }

}  // namespace converse
