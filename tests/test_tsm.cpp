// tSM tests — the paper's exemplar threaded language (§3.2.2): threads
// created and scheduled via the Converse scheduler, blocking tagged
// receives via the message manager.
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/sm.h"
#include "converse/langs/tsm.h"

using namespace converse;
using namespace converse::tsm;

TEST(Tsm, CreateRunsThreadThroughScheduler) {
  std::atomic<bool> ran{false};
  RunConverse(1, [&](int, int) {
    tSMCreate([&] { ran = true; });
    EXPECT_FALSE(ran.load());
    CsdScheduleUntilIdle();
  });
  EXPECT_TRUE(ran.load());
}

TEST(Tsm, ReceiveBlocksUntilTaggedMessage) {
  std::atomic<long> got{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      tSMCreate([&] {
        long v = 0;
        const int len = tSMReceive(5, &v, sizeof(v));
        got = v;
        EXPECT_EQ(len, static_cast<int>(sizeof(v)));
        ConverseBroadcastExit();
      });
      CsdScheduler(-1);
    } else {
      long v = 987;
      tSMSend(0, 5, &v, sizeof(v));
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(got.load(), 987);
}

TEST(Tsm, TwoThreadsDifferentTags) {
  std::atomic<long> a{0}, b{0};
  std::atomic<int> done{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      auto worker = [&](int tag, std::atomic<long>* out) {
        long v = 0;
        tSMReceive(tag, &v, sizeof(v));
        *out = v;
        if (++done == 2) ConverseBroadcastExit();
      };
      tSMCreate([&, worker] { worker(1, &a); });
      tSMCreate([&, worker] { worker(2, &b); });
      CsdScheduler(-1);
    } else {
      // Send tag 2 first: thread waiting on tag 1 must not consume it.
      long v2 = 22;
      tSMSend(0, 2, &v2, sizeof(v2));
      long v1 = 11;
      tSMSend(0, 1, &v1, sizeof(v1));
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(a.load(), 11);
  EXPECT_EQ(b.load(), 22);
}

TEST(Tsm, ThreadsTalkAcrossPes) {
  // A ring of tSM threads, one per PE, passing an incrementing token.
  constexpr int kNpes = 4;
  std::atomic<long> final{0};
  RunConverse(kNpes, [&](int pe, int npes) {
    tSMCreate([&, pe, npes] {
      if (pe == 0) {
        long token = 1;
        tSMSend(1 % npes, 9, &token, sizeof(token));
        tSMReceive(9, &token, sizeof(token));
        final = token;
        ConverseBroadcastExit();
      } else {
        long token = 0;
        tSMReceive(9, &token, sizeof(token));
        ++token;
        tSMSend((pe + 1) % npes, 9, &token, sizeof(token));
      }
    });
    CsdScheduler(-1);
  });
  EXPECT_EQ(final.load(), kNpes);
}

TEST(Tsm, ProbeSeesBufferedMessages) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      tSMCreate([&] {
        // Wait for the control message; the data message (tag 4) is then
        // guaranteed buffered (FIFO from PE1).
        char c;
        tSMReceive(3, &c, 1);
        ok = tSMProbe(4) == static_cast<int>(sizeof(long));
        long v;
        tSMReceive(4, &v, sizeof(v));
        ConverseBroadcastExit();
      });
      CsdScheduler(-1);
    } else {
      long v = 1;
      tSMSend(0, 4, &v, sizeof(v));
      char c = 'x';
      tSMSend(0, 3, &c, 1);
      CsdScheduler(-1);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Tsm, ManyThreadsManyMessages) {
  constexpr int kThreads = 16;
  std::atomic<int> sum{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      for (int t = 0; t < kThreads; ++t) {
        tSMCreate([&, t] {
          int v = 0;
          tSMReceive(100 + t, &v, sizeof(v));
          sum += v;
          if (sum.load() == kThreads * (kThreads + 1) / 2) {
            ConverseBroadcastExit();
          }
        });
      }
      EXPECT_EQ(tSMLiveThreads(), kThreads);
      CsdScheduler(-1);
    } else {
      for (int t = 0; t < kThreads; ++t) {
        const int v = t + 1;
        tSMSend(0, 100 + t, &v, sizeof(v));
      }
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(sum.load(), kThreads * (kThreads + 1) / 2);
}
