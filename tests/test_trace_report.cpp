// Round-trip tests for the §3.3.2 tool chain: run a traced program, dump
// the standard format, parse it back, and check the computed profile.
#include "test_helpers.h"

#include <cstring>

#include "converse/trace_report.h"

using namespace converse;

namespace {

/// Run a traced 1-PE program, returning the parsed report of its dump.
tracetool::Report RunAndReport(const std::function<void()>& body) {
  char* buf = nullptr;
  std::size_t len = 0;
  RunConverse(1, [&](int, int) {
    TraceBegin(TraceMode::kLog);
    body();
    TraceEnd();
    std::FILE* mem = open_memstream(&buf, &len);
    TraceDump(mem);
    std::fclose(mem);
  });
  std::FILE* in = fmemopen(buf, len, "r");
  auto report = tracetool::ParseTrace(in);
  std::fclose(in);
  free(buf);
  return report;
}

}  // namespace

TEST(TraceReport, EmptyTraceParses) {
  const auto rep = RunAndReport([] {});
  EXPECT_EQ(rep.pe, 0);
  EXPECT_EQ(rep.records, 0u);
  EXPECT_EQ(rep.sends, 0u);
}

TEST(TraceReport, CountsMatchActivity) {
  const auto rep = RunAndReport([] {
    // Distinct handlers per delivery path: queued messages are owned (and
    // freed) by their handler; network deliveries are system-owned.
    int hq = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    int hnet = CmiRegisterHandler([](void*) {});
    for (int i = 0; i < 5; ++i) {
      CsdEnqueue(CmiMakeMessage(hq, nullptr, 0));
    }
    CsdScheduler(5);
    void* net = CmiMakeMessage(hnet, "xy", 2);
    CmiSyncSendAndFree(0, CmiMsgTotalSize(net), net);
    CmiDeliverMsgs(1);
  });
  EXPECT_EQ(rep.enqueues, 5u);
  EXPECT_EQ(rep.sends, 1u);
  // 6 dispatches of the same handler, all begin/end matched.
  std::uint64_t begins = 0, ends = 0;
  double busy = 0;
  for (const auto& [id, hp] : rep.handlers) {
    begins += hp.begins;
    ends += hp.ends;
    busy += hp.busy_us;
  }
  EXPECT_EQ(begins, 6u);
  EXPECT_EQ(ends, 6u);
  EXPECT_GE(busy, 0.0);
}

TEST(TraceReport, UserEventsAndCreationsSurvive) {
  const auto rep = RunAndReport([] {
    const int ev = TraceRegisterUserEvent("checkpoint");
    TraceUserEvent(ev);
    TraceUserEvent(ev);
    TraceNoteThreadCreate();
    TraceNoteObjectCreate();
    TraceNoteObjectCreate();
  });
  ASSERT_TRUE(rep.user_events.contains("checkpoint"));
  EXPECT_EQ(rep.user_event_hits, 2u);
  EXPECT_EQ(rep.thread_creates, 1u);
  EXPECT_EQ(rep.object_creates, 2u);
}

TEST(TraceReport, TimelineHasExpectedShape) {
  const auto rep = RunAndReport([] {
    int burn = CmiRegisterHandler([](void* msg) {
      volatile double x = 1;
      for (int i = 0; i < 400000; ++i) x = x * 1.0000001;
      CmiFree(msg);
    });
    CsdEnqueue(CmiMakeMessage(burn, nullptr, 0));
    CsdScheduler(1);
  });
  ASSERT_EQ(rep.timeline_busy_fraction.size(),
            static_cast<std::size_t>(tracetool::kTimelineBuckets));
  // One long busy span: the majority of buckets should be mostly busy.
  int busy_buckets = 0;
  for (double f : rep.timeline_busy_fraction) busy_buckets += f > 0.5;
  EXPECT_GE(busy_buckets, tracetool::kTimelineBuckets / 2);
}

TEST(TraceReport, RejectsGarbageInput) {
  const char* junk = "this is not a trace\n";
  std::FILE* in = fmemopen(const_cast<char*>(junk), std::strlen(junk), "r");
  EXPECT_THROW(tracetool::ParseTrace(in), std::runtime_error);
  std::fclose(in);
}

TEST(TraceReport, RejectsTruncatedDump) {
  const char* truncated = "CONVERSE-TRACE v1 pe=0 records=3\n";
  std::FILE* in =
      fmemopen(const_cast<char*>(truncated), std::strlen(truncated), "r");
  EXPECT_THROW(tracetool::ParseTrace(in), std::runtime_error);
  std::fclose(in);
}

TEST(TraceReport, PrintReportProducesText) {
  const auto rep = RunAndReport([] {
    int h = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(1);
  });
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  tracetool::PrintReport(rep, mem);
  std::fclose(mem);
  std::string s(buf, len);
  free(buf);
  EXPECT_NE(s.find("Converse trace report"), std::string::npos);
  EXPECT_NE(s.find("per handler"), std::string::npos);
  EXPECT_NE(s.find("utilization timeline"), std::string::npos);
}

TEST(MachineConfig, IdleSpinStillDeliversMessages) {
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.idle_spin_us = 200.0;  // spin briefly before blocking
  std::atomic<int> got{0};
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      ++got;
      CsdExitScheduler();
    });
    if (pe == 0) {
      volatile double x = 1;
      for (int i = 0; i < 1000000; ++i) x = x * 1.0000001;
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      return;
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(got.load(), 1);
}
