// Zero-copy shared-payload broadcasts, the large-message direct-scatter
// path, and the NUMA/cache-aware pool placement behind them (paper §3.1.3's
// "message as a first-class buffer" contract stretched to N receivers).
#include "test_helpers.h"

#include <cstring>
#include <numeric>
#include <vector>

using namespace converse;

namespace {

MachineConfig ShareConfig(int npes, std::int64_t share_min) {
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.aggregate_sends = 0;
  cfg.bcast_share_min = share_min;
  return cfg;
}

/// Deterministic payload byte for position i of a broadcast test.
unsigned char PatternByte(std::size_t i) {
  return static_cast<unsigned char>((i * 131) ^ (i >> 7));
}

std::vector<unsigned char> Pattern(std::size_t n) {
  std::vector<unsigned char> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = PatternByte(i);
  return v;
}

}  // namespace

TEST(Zerocopy, OneCopyBroadcastAt8Pes) {
  // The acceptance criterion: a >= 4 KiB CmiSyncBroadcastAll at 8 PEs makes
  // exactly ONE payload copy across the whole machine (at the root), and
  // every PE dispatches a view into the same shared block.
  constexpr int kNpes = 8;
  constexpr std::size_t kPayload = 4096;  // total 4128 >= default 4096
  const std::vector<unsigned char> want = Pattern(kPayload);
  std::vector<std::uint64_t> copies(kNpes, 0), views(kNpes, 0),
      blocks(kNpes, 0);
  std::atomic<int> received{0};
  std::atomic<int> bad_bytes{0};
  MachineConfig cfg;
  cfg.npes = kNpes;
  cfg.aggregate_sends = 0;
  // bcast_share_min left at -1: CONVERSE_SBCAST is unset in the test
  // environment, so the default 4096 threshold applies.
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      if (CmiMsgPayloadSize(msg) != kPayload ||
          std::memcmp(CmiMsgPayload(msg), want.data(), kPayload) != 0) {
        ++bad_bytes;
      }
      const CmiStats s = CmiGetStats();
      const int me = CmiMyPe();
      copies[static_cast<std::size_t>(me)] = s.bcast_payload_copies;
      views[static_cast<std::size_t>(me)] = s.bcast_shared_views;
      blocks[static_cast<std::size_t>(me)] = s.bcast_shared_blocks;
      if (++received == kNpes) ConverseBroadcastExit();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, want.data(), kPayload);
      CmiSyncBroadcastAll(CmiMsgTotalSize(m), m);
      CmiFree(m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(received.load(), kNpes);
  EXPECT_EQ(bad_bytes.load(), 0);
  EXPECT_EQ(std::accumulate(copies.begin(), copies.end(), 0ull), 1ull)
      << "a shared broadcast must copy its payload exactly once, machine-"
         "wide";
  EXPECT_EQ(blocks[0], 1ull);
  EXPECT_EQ(std::accumulate(views.begin(), views.end(), 0ull),
            static_cast<std::uint64_t>(kNpes));
}

TEST(Zerocopy, ThresholdGatesTheSharedPath) {
  // Below the threshold (or with the feature forced off) broadcasts stay on
  // the wrapper path: no shared blocks, one copy per destination subtree
  // hop at the root.
  const auto blocks_for = [](std::int64_t share_min, std::size_t payload) {
    std::uint64_t blocks = ~0ull;
    std::atomic<int> received{0};
    RunConverse(ShareConfig(4, share_min), [&](int pe, int np) {
      int h = CmiRegisterHandler([&](void*) {
        if (++received == np) ConverseBroadcastExit();
      });
      if (pe == 0) {
        const std::vector<unsigned char> data(payload, 0x42);
        void* m = CmiMakeMessage(h, data.data(), payload);
        CmiSyncBroadcastAll(CmiMsgTotalSize(m), m);
        CmiFree(m);
      }
      CsdScheduler(-1);
      if (pe == 0) blocks = CmiGetStats().bcast_shared_blocks;
    });
    return blocks;
  };
  EXPECT_EQ(blocks_for(/*share_min=*/64, /*payload=*/256), 1ull);
  EXPECT_EQ(blocks_for(/*share_min=*/0, /*payload=*/8192), 0ull);
  EXPECT_EQ(blocks_for(/*share_min=*/4096, /*payload=*/256), 0ull);
}

TEST(Zerocopy, SharedViewsDeliverOnEveryBroadcastVariant) {
  // CmiSyncBroadcast (no self), CmiSyncBroadcastAllAndFree and the async
  // variants all route >= threshold payloads through the shared path and
  // deliver intact bytes.
  constexpr int kNpes = 4;
  constexpr std::size_t kPayload = 512;
  const std::vector<unsigned char> want = Pattern(kPayload);
  std::atomic<int> received{0};
  std::atomic<int> bad{0};
  // 3 (no self) + 4 (all, and-free) + 3 (async no self) + 4 (async all)
  constexpr int kExpected = 3 + 4 + 3 + 4;
  RunConverse(ShareConfig(kNpes, 64), [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      if (CmiMsgPayloadSize(msg) != kPayload ||
          std::memcmp(CmiMsgPayload(msg), want.data(), kPayload) != 0) {
        ++bad;
      }
      if (++received == kExpected) ConverseBroadcastExit();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, want.data(), kPayload);
      const unsigned int total = CmiMsgTotalSize(m);
      CmiSyncBroadcast(total, m);
      CmiReleaseCommHandle(CmiAsyncBroadcast(total, m));
      CmiReleaseCommHandle(CmiAsyncBroadcastAll(total, m));
      void* m2 = CmiMakeMessage(h, want.data(), kPayload);
      CmiSyncBroadcastAllAndFree(total, m2);
      CmiFree(m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(received.load(), kExpected);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Zerocopy, GrabbedViewCanOutliveDeliveryAndBeResent) {
  // A handler grabs its read-only view, keeps it past the delivery, and
  // later re-sends it with an and-free call: the machine must detach the
  // view onto a private copy (the shared header is live on other PEs, so
  // the and-free wrapper cannot stamp total_size into it) and release the
  // view's block reference.
  constexpr int kNpes = 4;
  constexpr std::size_t kPayload = 600;
  const std::vector<unsigned char> want = Pattern(kPayload);
  std::atomic<int> seen{0};
  std::atomic<int> bad{0};
  RunConverse(ShareConfig(kNpes, 64), [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      if (CmiMsgPayloadSize(msg) != kPayload ||
          std::memcmp(CmiMsgPayload(msg), want.data(), kPayload) != 0) {
        ++bad;
      }
      if (CmiMyPe() == 2 && seen.fetch_add(1) < 3) {
        // Grab the shared view and relay it to PE 3 while PEs 0..3 may
        // still hold the block live.
        CmiGrabBuffer(&msg);
        CmiSyncSendAndFree(3, CmiMsgTotalSize(msg), msg);
        return;
      }
      ++seen;
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, want.data(), kPayload);
      CmiSyncBroadcast(CmiMsgTotalSize(m), m);  // PEs 1..3
      CmiFree(m);
    }
    // 3 broadcast deliveries + 1 relayed redelivery on PE 3.  Every PE
    // polls to completion and returns; no exit broadcast (it could be
    // consumed inside a poll on a still-looping PE and strand the final
    // CsdScheduler).
    (void)pe;
    while (seen.load() < 4) CsdSchedulePoll(8);
  });
  EXPECT_EQ(seen.load(), 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ZerocopyStress, ConcurrentViewGrabAndFreeAcross8Pes) {
  // The TSan stress shape: every PE broadcasts shared payloads while every
  // other PE concurrently grabs some views, stashes them, and frees them
  // later from its own thread — the block refcounts see constant
  // multi-thread traffic and the last release races across PEs.
  constexpr int kNpes = 8;
  constexpr int kRounds = 24;
  constexpr std::size_t kPayload = 512;
  std::atomic<long> delivered{0};
  constexpr long kTotal = static_cast<long>(kNpes) * kRounds * kNpes;
  RunConverse(ShareConfig(kNpes, 64), [&](int pe, int) {
    std::vector<void*> stash;
    int h = CmiRegisterHandler([&](void* msg) {
      if ((delivered.fetch_add(1) % 3) == 0) {
        CmiGrabBuffer(&msg);
        stash.push_back(msg);
        if (stash.size() > 6) {
          for (void* v : stash) CmiFree(v);
          stash.clear();
        }
      }
    });
    for (int r = 0; r < kRounds; ++r) {
      std::vector<unsigned char> data(kPayload,
                                      static_cast<unsigned char>(pe + r));
      void* m = CmiMakeMessage(h, data.data(), data.size());
      CmiSyncBroadcastAll(CmiMsgTotalSize(m), m);
      CmiFree(m);
      CsdSchedulePoll(4);
    }
    while (delivered.load() < kTotal) CsdSchedulePoll(16);
    for (void* v : stash) CmiFree(v);
    stash.clear();
  });
  EXPECT_EQ(delivered.load(), kTotal);
}

TEST(ZerocopySim, SharedBroadcastTraceIsDeterministic) {
  // Same seed, same workload, shared path on => identical trace hashes,
  // even though the blocks carry absolute back-pointers (the hash covers
  // header identity and sizes, never payload bytes).
  const auto run_once = [](std::uint64_t seed) {
    SimReport report;
    SimConfig sim;
    sim.seed = seed;
    sim.report = &report;
    MachineConfig cfg = ShareConfig(4, 64);
    cfg.sim = &sim;
    std::uint64_t blocks = 0;
    RunConverse(cfg, [&](int pe, int) {
      int h = CmiRegisterHandler([](void*) {});
      if (pe != 3) {  // three roots keep the schedule interesting
        std::vector<unsigned char> data(1024,
                                        static_cast<unsigned char>(pe));
        for (int i = 0; i < 4; ++i) {
          void* m = CmiMakeMessage(h, data.data(), data.size());
          CmiSyncBroadcastAll(CmiMsgTotalSize(m), m);
          CmiFree(m);
        }
      }
      CsdScheduler(-1);  // quiescence exit ends the run
      if (pe == 0) blocks = CmiGetStats().bcast_shared_blocks;
    });
    EXPECT_EQ(blocks, 4ull);
    return report;
  };
  const SimReport a = run_once(7);
  const SimReport b = run_once(7);
  const SimReport c = run_once(8);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(ZerocopySim, FaultConservationWeightsSharedBlocks) {
  // Dropping or duplicating a shared block in flight loses/duplicates every
  // delivery in the destination's subtree; the injector must weight its
  // counters accordingly so delivered == sent - dropped + duplicated.
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    SimReport report;
    SimConfig sim;
    sim.seed = seed;
    sim.faults.drop = 0.2;
    sim.faults.dup = 0.2;
    sim.report = &report;
    MachineConfig cfg = ShareConfig(4, 64);
    cfg.sim = &sim;
    constexpr int kRounds = 6;
    std::atomic<long> delivered{0};
    RunConverse(cfg, [&](int pe, int np) {
      int h = CmiRegisterHandler([&](void*) { ++delivered; });
      if (pe == 0) {
        std::vector<unsigned char> data(2048, 0x77);
        for (int i = 0; i < kRounds; ++i) {
          void* m = CmiMakeMessage(h, data.data(), data.size());
          CmiSyncBroadcastAll(CmiMsgTotalSize(m), m);
          CmiFree(m);
        }
      }
      (void)np;
      CsdScheduler(-1);
    });
    const long sent = kRounds * 4;  // broadcast-all at 4 PEs
    EXPECT_EQ(delivered.load(),
              sent - static_cast<long>(report.msgs_dropped) +
                  static_cast<long>(report.msgs_duplicated))
        << "seed " << seed << " dropped=" << report.msgs_dropped
        << " duplicated=" << report.msgs_duplicated;
    // Same seed, same faults: the injection schedule itself must replay.
    SimReport again;
    sim.report = &again;
    std::atomic<long> delivered2{0};
    RunConverse(cfg, [&](int pe, int) {
      int h = CmiRegisterHandler([&](void*) { ++delivered2; });
      if (pe == 0) {
        std::vector<unsigned char> data(2048, 0x77);
        for (int i = 0; i < kRounds; ++i) {
          void* m = CmiMakeMessage(h, data.data(), data.size());
          CmiSyncBroadcastAll(CmiMsgTotalSize(m), m);
          CmiFree(m);
        }
      }
      CsdScheduler(-1);
    });
    EXPECT_EQ(report.trace_hash, again.trace_hash);
    EXPECT_EQ(delivered.load(), delivered2.load());
  }
}

// ---------------------------------------------------------------------------
// Large-message direct scatter (CmiVectorSend -> registered user buffers)
// ---------------------------------------------------------------------------

TEST(ScatterDirect, VectorSendLandsInRegisteredBuffersWithoutAMessage) {
  std::atomic<bool> armed{false};  // PE 0 registered; direct path available
  std::atomic<bool> ok{false};
  std::atomic<std::uint64_t> direct{0};
  RunConverse(2, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) { FAIL(); });
    int notify = CmiRegisterHandler([&](void* msg) {
      CmiFree(msg);
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t key_sink;
      static double payload[64];
      CmiScatterRegister(0, 0x5CA7,
                         {{0, sizeof(key_sink), &key_sink},
                          {sizeof(std::uint32_t), sizeof(payload), payload}},
                         notify);
      armed.store(true, std::memory_order_release);
      CsdScheduler(-1);
      ok = key_sink == 0x5CA7 && payload[0] == 0.5 && payload[63] == 63.5;
    } else {
      while (!armed.load(std::memory_order_acquire)) CsdSchedulePoll(1);
      const std::uint32_t key = 0x5CA7;
      double data[64];
      for (int i = 0; i < 64; ++i) data[i] = i + 0.5;
      const int sizes[] = {sizeof(key), sizeof(data)};
      const void* arrays[] = {&key, data};
      CmiReleaseCommHandle(CmiVectorSend(0, never, 2, sizes, arrays));
      CsdScheduler(-1);
      direct = CmiGetStats().scatter_direct;
    }
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(direct.load(), 1u) << "the send must take the zero-copy path";
}

TEST(ScatterDirect, MatchWordSplitAcrossSegmentsStillMatches) {
  // The direct path reads the match word (and every part) through an
  // iovec-style cross-segment walk; split the 32-bit key across two
  // 2-byte segments to exercise it.
  std::atomic<bool> armed{false};
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) { FAIL(); });
    int notify = CmiRegisterHandler([&](void* msg) {
      CmiFree(msg);
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t key_sink;
      static char tail[4];
      CmiScatterRegister(0, 0x31323334,
                         {{0, sizeof(key_sink), &key_sink},
                          {sizeof(std::uint32_t), sizeof(tail), tail}},
                         notify);
      armed.store(true, std::memory_order_release);
      CsdScheduler(-1);
      ok = key_sink == 0x31323334 && std::memcmp(tail, "abcd", 4) == 0;
    } else {
      while (!armed.load(std::memory_order_acquire)) CsdSchedulePoll(1);
      const std::uint32_t key = 0x31323334;
      const char* bytes = reinterpret_cast<const char*>(&key);
      const char* tail = "abcd";
      const int sizes[] = {2, 2, 4};
      const void* arrays[] = {bytes, bytes + 2, tail};
      CmiReleaseCommHandle(CmiVectorSend(0, never, 3, sizes, arrays));
      CsdScheduler(-1);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(ScatterDirect, PersistentRegistrationServesManyDirectSends) {
  std::atomic<bool> armed{false};
  std::atomic<int> notified{0};
  std::atomic<std::uint64_t> direct{0};
  constexpr int kSends = 5;
  RunConverse(2, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) { FAIL(); });
    int notify = CmiRegisterHandler([&](void* msg) {
      CmiFree(msg);
      if (++notified == kSends) ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t sink[2];
      const int id = CmiScatterRegister(0, 0xFEED, {{0, sizeof(sink), sink}},
                                        notify, /*persistent=*/true);
      armed.store(true, std::memory_order_release);
      CsdScheduler(-1);
      CmiScatterCancel(id);
    } else {
      while (!armed.load(std::memory_order_acquire)) CsdSchedulePoll(1);
      const std::uint32_t body[2] = {0xFEED, 99};
      const int sizes[] = {sizeof(body)};
      const void* arrays[] = {body};
      for (int i = 0; i < kSends; ++i) {
        CmiReleaseCommHandle(CmiVectorSend(0, never, 1, sizes, arrays));
      }
      CsdScheduler(-1);
      direct = CmiGetStats().scatter_direct;
    }
  });
  EXPECT_EQ(notified.load(), kSends);
  EXPECT_EQ(direct.load(), static_cast<std::uint64_t>(kSends));
}

TEST(ScatterDirect, CancelRacingInFlightMatchDeliversExactlyOnce) {
  // Satellite: CmiScatterCancel on the receiving PE races a CmiVectorSend
  // match running on the sender's thread.  Whichever side wins the
  // registration lock, the message is consumed exactly once — scattered
  // with a notification, or passed through to its normal handler.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> scattered{0}, passed{0};
    RunConverse(2, [&](int pe, int) {
      int h = CmiRegisterHandler([&](void*) {
        ++passed;
        ConverseBroadcastExit();
      });
      int notify = CmiRegisterHandler([&](void* msg) {
        CmiFree(msg);
        ++scattered;
        ConverseBroadcastExit();
      });
      if (pe == 0) {
        static std::uint32_t sink;
        const int id = CmiScatterRegister(0, 0xACED,
                                          {{0, sizeof(sink), &sink}},
                                          notify);
        CmiScatterCancel(id);  // immediately — may lose or win the race
      } else {
        const std::uint32_t key = 0xACED;
        const int sizes[] = {sizeof(key)};
        const void* arrays[] = {&key};
        CmiReleaseCommHandle(CmiVectorSend(0, h, 1, sizes, arrays));
      }
      CsdScheduler(-1);
    });
    EXPECT_EQ(scattered.load() + passed.load(), 1)
        << "round " << round << ": scattered=" << scattered.load()
        << " passed=" << passed.load();
  }
}

TEST(ScatterSim, PersistentScatterBalancesUnderFaultInjection) {
  // Satellite: dropped and duplicated matched messages must keep the
  // notification count and the conservation oracle balanced, and leave the
  // persistent registration armed.
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    SimReport report;
    SimConfig sim;
    sim.seed = seed;
    sim.faults.drop = 0.3;
    sim.faults.dup = 0.3;
    sim.report = &report;
    MachineConfig cfg;
    cfg.npes = 2;
    cfg.aggregate_sends = 0;
    cfg.sim = &sim;
    constexpr int kSends = 8;
    std::atomic<int> notified{0};
    std::atomic<int> leaked{0};
    std::atomic<int> armed_after{-1};
    RunConverse(cfg, [&](int pe, int) {
      int h = CmiRegisterHandler([&](void*) { ++leaked; });
      int notify = CmiRegisterHandler([&](void* msg) {
        CmiFree(msg);
        ++notified;
      });
      int reg_id = -1;
      if (pe == 0) {
        static std::uint32_t sink;
        reg_id = CmiScatterRegister(0, 0xFA17, {{0, sizeof(sink), &sink}},
                                    notify, /*persistent=*/true);
      } else {
        const std::uint32_t key = 0xFA17;
        for (int i = 0; i < kSends; ++i) {
          void* m = CmiMakeMessage(h, &key, sizeof(key));
          CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        }
      }
      CsdScheduler(-1);  // quiescence exit
      if (pe == 0) {
        armed_after = CmiScatterCount();
        CmiScatterCancel(reg_id);
      }
    });
    EXPECT_EQ(leaked.load(), 0) << "seed " << seed;
    EXPECT_EQ(notified.load(),
              kSends - static_cast<int>(report.msgs_dropped) +
                  static_cast<int>(report.msgs_duplicated))
        << "seed " << seed;
    EXPECT_EQ(armed_after.load(), 1) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Gather bounds checking (always on, all build types)
// ---------------------------------------------------------------------------

class ZerocopyDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(ZerocopyDeathTest, NegativeGatherSegmentAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          const int h = CmiRegisterHandler([](void*) {});
                          char byte = 0;
                          const int sizes[] = {4, -1};
                          const void* arrays[] = {&byte, &byte};
                          CmiVectorSend(0, h, 2, sizes, arrays);
                        }),
               "rule=gather-overflow");
}

TEST_F(ZerocopyDeathTest, OverflowingGatherSumAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          const int h = CmiRegisterHandler([](void*) {});
                          char byte = 0;
                          const int big = 0x7fffffff;
                          const int sizes[] = {big, big, big};
                          const void* arrays[] = {&byte, &byte, &byte};
                          CmiVectorSend(0, h, 3, sizes, arrays);
                        }),
               "rule=gather-overflow");
}

// ---------------------------------------------------------------------------
// Pool placement and size-class accounting
// ---------------------------------------------------------------------------

TEST(MsgPoolPlacement, SizeClassesCoverLargeMessagesWithStats) {
  if (!CmiGetMemoryStats().pool_enabled) {
    GTEST_SKIP() << "pooling disabled (sanitizer build or CONVERSE_POOL=0)";
  }
  // Per-PE pools only exist (and register for stats) inside a machine run,
  // so every structural assertion happens on the PE thread.
  CmiMemoryStats after{};
  ctu::Run(1, [&](int, int) {
    // Free then reallocate in the same large class: the second allocation
    // must be a freelist hit in that class.
    void* m = CmiAlloc(60000);
    CmiFree(m);
    const CmiMemoryStats mid = CmiGetMemoryStats();
    ASSERT_GT(mid.size_classes, 0);
    ASSERT_LE(mid.size_classes, CmiMemoryStats::kMaxSizeClasses);
    EXPECT_EQ(mid.class_bytes[mid.size_classes - 1], 65536u)
        << "the class range must reach 64 KiB for frames and shared blocks";
    void* m2 = CmiAlloc(50000);
    CmiFree(m2);
    after = CmiGetMemoryStats();
    const int cls = mid.size_classes - 1;  // both sizes land in 64 KiB
    EXPECT_GT(after.class_hits[cls], mid.class_hits[cls]);
  });
  EXPECT_GT(after.arena_chunks, 0u)
      << "freelist misses must carve from first-touch arenas";
  EXPECT_GT(after.arena_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Aggregation solo-flush bypass (the 8-PE broadcast-round regression fix)
// ---------------------------------------------------------------------------

TEST(SoloBypass, PingPongStopsPayingFrameOverhead) {
  // Request/response traffic aggregates nothing: every frame flushes with a
  // single message and pays alloc/append/flush/unpack for no batching.  The
  // streak detector must drop such destinations to the direct path, while
  // agg_solo_bypass=false pins the old always-frame behaviour.
  const auto pe0_frames_for = [](bool bypass) {
    constexpr int kRounds = 30;
    std::atomic<std::uint64_t> frames{~0ull};
    MachineConfig cfg;
    cfg.npes = 2;
    cfg.aggregate_sends = 1;
    cfg.agg_solo_bypass = bypass;
    RunConverse(cfg, [&](int pe, int) {
      int h = -1;
      h = CmiRegisterHandler([&](void* msg) {
        int round = 0;
        std::memcpy(&round, CmiMsgPayload(msg), sizeof(round));
        if (round >= kRounds) {
          ConverseBroadcastExit();
          return;
        }
        const int next = round + 1;
        void* m = CmiMakeMessage(h, &next, sizeof(next));
        CmiSyncSendAndFree(1 - CmiMyPe(), CmiMsgTotalSize(m), m);
      });
      if (pe == 0) {
        const int zero = 0;
        void* m = CmiMakeMessage(h, &zero, sizeof(zero));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      CsdScheduler(-1);
      if (pe == 0) frames = CmiGetStats().agg_frames_sent;
    });
    return frames.load();
  };
  const std::uint64_t with_bypass = pe0_frames_for(true);
  const std::uint64_t without_bypass = pe0_frames_for(false);
  EXPECT_LE(with_bypass, 4u)
      << "solo streak must switch the destination to direct sends";
  EXPECT_GE(without_bypass, 12u) << "control: one frame per solo flush";
  EXPECT_LT(with_bypass, without_bypass);
}

TEST(MsgPoolPlacement, OversizeBuffersRecycleThroughThePeCache) {
  const CmiMemoryStats probe = CmiGetMemoryStats();
  if (!probe.pool_enabled) {
    GTEST_SKIP() << "pooling disabled (sanitizer build or CONVERSE_POOL=0)";
  }
  std::uint64_t cached = 0, reused = 0;
  ctu::Run(1, [&](int, int) {
    const CmiMemoryStats before = CmiGetMemoryStats();
    void* big = CmiAlloc(200 * 1024);  // above the largest size class
    CmiFree(big);                      // parks in the PE's oversize cache
    void* again = CmiAlloc(150 * 1024);  // fits in the parked buffer
    CmiFree(again);
    const CmiMemoryStats after = CmiGetMemoryStats();
    cached = after.oversize_cached - before.oversize_cached;
    reused = after.oversize_reused - before.oversize_reused;
  });
  EXPECT_GE(cached, 1u);
  EXPECT_GE(reused, 1u);
}
