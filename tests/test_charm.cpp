// Charm-style message-driven object tests: chare creation (direct and via
// seeds), entry invocation, priorities, groups, read-only data, quiescence
// detection (paper §2.1, §3.3).
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/charm.h"

using namespace converse;
using namespace converse::charm;

namespace {

/// A chare that accumulates integers and can report to its creator.
struct Accumulator : Chare {
  long sum = 0;
  Accumulator(const void* arg, std::size_t len) {
    if (len == sizeof(long)) std::memcpy(&sum, arg, sizeof(long));
  }
  void Add(const void* data, std::size_t len) {
    ASSERT_EQ(len, sizeof(long));
    long v;
    std::memcpy(&v, data, sizeof(v));
    sum += v;
  }
};

}  // namespace

TEST(Charm, CreateOnSpecificPeAndInvoke) {
  std::atomic<long> observed{0};
  RunConverse(2, [&](int pe, int) {
    const int type = RegisterChareType<Accumulator>("acc");
    const int add = RegisterEntryMethod<Accumulator>(&Accumulator::Add);
    const int report = RegisterEntry([&](Chare* c, const void*, std::size_t) {
      observed = static_cast<Accumulator*>(c)->sum;
      ConverseBroadcastExit();
    });
    struct Echo : Chare {  // chare that tells its creator its id
      Echo(const void*, std::size_t) {}
    };
    (void)pe;
    if (pe == 0) {
      const long init = 100;
      CreateChare(type, &init, sizeof(init), /*on_pe=*/1);
      // We do not know the chare id synchronously; instead have the chare
      // itself report after processing: send through a known route — the
      // chare was created on PE1 as the first local chare there.  Use a
      // second pattern instead: create, then quiesce, then probe via a
      // broadcast entry.  Simpler: the chare reports in its constructor.
      // For this test, use quiescence to know creation+adds are done.
      StartQuiescence([&, add, report] {
        // All messages drained: the chare exists; look it up indirectly by
        // sending via its deterministic id {pe=1, idx=1}.
        const ChareId id{1, 1};
        const long v = 11;
        SendToChare(id, add, &v, sizeof(v));
        SendToChare(id, report, nullptr, 0);
      });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(observed.load(), 111);
}

TEST(Charm, ConstructorSeesCkMyChareId) {
  std::atomic<int> ctor_pe{-1};
  std::atomic<unsigned> ctor_idx{0};
  RunConverse(2, [&](int pe, int) {
    struct SelfAware : Chare {
      SelfAware(const void*, std::size_t) {}
    };
    // Atomic: every PE thread stores the (identical) pointer concurrently.
    static std::atomic<std::atomic<int>*> pe_out;
    static std::atomic<std::atomic<unsigned>*> idx_out;
    pe_out.store(&ctor_pe);
    idx_out.store(&ctor_idx);
    const int type = RegisterChare("selfaware", [](const void*, std::size_t) -> Chare* {
      *pe_out.load() = CkMyChareId().pe;
      *idx_out.load() = CkMyChareId().idx;
      return new SelfAware(nullptr, 0);
    });
    if (pe == 0) {
      CreateChare(type, nullptr, 0, /*on_pe=*/1);
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(ctor_pe.load(), 1);
  EXPECT_GE(ctor_idx.load(), 1u);
}

TEST(Charm, SeedCreationPlacesEverywhereEventually) {
  constexpr int kNpes = 4;
  constexpr int kChares = 120;
  ctu::PerPeCounters where(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kRandom);
    struct Worker : Chare {
      Worker(const void*, std::size_t) {}
    };
    static std::atomic<ctu::PerPeCounters*> wp;
    wp.store(&where);
    const int type = RegisterChare("worker", [](const void*, std::size_t) -> Chare* {
      wp.load()->Add(CmiMyPe());
      return new Worker(nullptr, 0);
    });
    if (pe == 0) {
      for (int i = 0; i < kChares; ++i) CreateChare(type, nullptr, 0);
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(where.Total(), kChares);
}

TEST(Charm, PrioritizedEntriesRunInPriorityOrder) {
  // All invocations are queued (Figure 6's scheduling cost); priorities
  // reorder them.
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    struct Recorder : Chare {
      std::vector<int>* out;
      Recorder(const void* arg, std::size_t) {
        std::memcpy(&out, arg, sizeof(out));
      }
      void Rec(const void* data, std::size_t) {
        int v;
        std::memcpy(&v, data, sizeof(v));
        out->push_back(v);
      }
    };
    const int type = RegisterChareType<Recorder>("rec");
    const int rec = RegisterEntryMethod<Recorder>(&Recorder::Rec);
    auto* optr = &order;
    CreateChare(type, &optr, sizeof(optr), /*on_pe=*/0);
    CsdScheduler(1);  // construct it; id is {0, 1}
    const ChareId id{0, 1};
    for (int v : {5, 1, 9, 3}) {
      SendToCharePrio(id, rec, &v, sizeof(v), v);
    }
    CsdScheduler(4);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 9}));
}

TEST(Charm, BitvecPrioritizedEntries) {
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    struct Recorder : Chare {
      std::vector<int>* out;
      Recorder(const void* arg, std::size_t) {
        std::memcpy(&out, arg, sizeof(out));
      }
      void Rec(const void* data, std::size_t) {
        int v;
        std::memcpy(&v, data, sizeof(v));
        out->push_back(v);
      }
    };
    const int type = RegisterChareType<Recorder>("rec");
    const int rec = RegisterEntryMethod<Recorder>(&Recorder::Rec);
    auto* optr = &order;
    CreateChare(type, &optr, sizeof(optr), /*on_pe=*/0);
    CsdScheduler(1);
    const ChareId id{0, 1};
    const std::uint32_t deep[] = {0x00000000u, 0x80000000u};  // "0...01"
    const std::uint32_t shallow[] = {0x80000000u};            // "1"
    int v = 2;
    SendToChareBitvecPrio(id, rec, &v, sizeof(v), shallow, 1);
    v = 1;
    SendToChareBitvecPrio(id, rec, &v, sizeof(v), deep, 33);
    CsdScheduler(2);
  });
  // "0...01" (33 bits starting with 0) lexicographically precedes "1".
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Charm, GroupsHaveBranchOnEveryPe) {
  constexpr int kNpes = 3;
  ctu::PerPeCounters hits(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    struct Branch : Chare {
      Branch(const void*, std::size_t) {}
      void Poke(const void*, std::size_t) {}
    };
    static std::atomic<ctu::PerPeCounters*> hp;
    hp.store(&hits);
    const int type = RegisterChareType<Branch>("branch");
    const int poke = RegisterEntry([](Chare*, const void*, std::size_t) {
      hp.load()->Add(CmiMyPe());
    });
    if (pe == 0) {
      const int gid = CreateGroup(type, nullptr, 0);
      BroadcastToGroup(gid, poke, nullptr, 0);
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
    EXPECT_NE(LocalBranch(0), nullptr);  // gid of the first group is 0
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(hits.Get(i), 1);
}

TEST(Charm, SendToBranchTargetsOnePe) {
  constexpr int kNpes = 3;
  ctu::PerPeCounters hits(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    struct Branch : Chare {
      Branch(const void*, std::size_t) {}
    };
    static std::atomic<ctu::PerPeCounters*> hp;
    hp.store(&hits);
    const int type = RegisterChareType<Branch>("branch");
    const int poke = RegisterEntry([](Chare*, const void*, std::size_t) {
      hp.load()->Add(CmiMyPe());
    });
    if (pe == 0) {
      const int gid = CreateGroup(type, nullptr, 0);
      SendToBranch(gid, 2, poke, nullptr, 0);
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(hits.Get(0), 0);
  EXPECT_EQ(hits.Get(1), 0);
  EXPECT_EQ(hits.Get(2), 1);
}

TEST(Charm, GroupStatePersistsAcrossInvocations) {
  std::atomic<long> final{0};
  RunConverse(2, [&](int pe, int) {
    struct Counter : Chare {
      long n = 0;
      Counter(const void*, std::size_t) {}
      void Bump(const void*, std::size_t) { ++n; }
    };
    const int type = RegisterChareType<Counter>("counter");
    const int bump = RegisterEntryMethod<Counter>(&Counter::Bump);
    const int read = RegisterEntry([&](Chare* c, const void*, std::size_t) {
      final = static_cast<Counter*>(c)->n;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      const int gid = CreateGroup(type, nullptr, 0);
      for (int i = 0; i < 7; ++i) SendToBranch(gid, 1, bump, nullptr, 0);
      SendToBranch(gid, 1, read, nullptr, 0);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(final.load(), 7);
}

TEST(Charm, ReadonlyDataVisibleEverywhere) {
  constexpr int kNpes = 3;
  ctu::PerPeCounters ok(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    if (pe == 0) {
      const double params[2] = {1.5, 2.5};
      ReadonlySet(7, params, sizeof(params));
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
    const auto& blob = ReadonlyGet(7);
    if (blob.size() == 2 * sizeof(double)) {
      double params[2];
      std::memcpy(params, blob.data(), sizeof(params));
      if (params[0] == 1.5 && params[1] == 2.5) ok.Add(pe);
    }
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(ok.Get(i), 1);
}

TEST(Charm, QuiescenceWaitsForCascades) {
  // A chare that spawns more chares on arrival: QD must not fire until
  // the whole cascade has drained.
  std::atomic<int> constructed{0};
  std::atomic<int> at_qd{0};
  RunConverse(3, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kRandom);
    struct Fanout : Chare {
      Fanout(const void*, std::size_t) {}
    };
    static std::atomic<std::atomic<int>*> cp;
    static std::atomic<int> type_idx;
    cp.store(&constructed);
    const int type = RegisterChare("fanout", [](const void* arg, std::size_t len) -> Chare* {
      int depth = 0;
      if (len == sizeof(int)) std::memcpy(&depth, arg, sizeof(depth));
      cp.load()->fetch_add(1);
      if (depth > 0) {
        const int next = depth - 1;
        CreateChare(type_idx.load(), &next, sizeof(next));
        CreateChare(type_idx.load(), &next, sizeof(next));
      }
      return new Fanout(nullptr, 0);
    });
    type_idx.store(type);
    if (pe == 0) {
      const int depth = 5;  // 2^6 - 1 = 63 chares
      CreateChare(type, &depth, sizeof(depth));
      StartQuiescence([&] {
        at_qd = constructed.load();
        ConverseBroadcastExit();
      });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(constructed.load(), 63);
  EXPECT_EQ(at_qd.load(), 63);
}

TEST(Charm, DestroyChareRemovesIt) {
  std::atomic<int> live{-1};
  RunConverse(1, [&](int, int) {
    struct Tmp : Chare {
      Tmp(const void*, std::size_t) {}
    };
    const int type = RegisterChareType<Tmp>("tmp");
    CreateChare(type, nullptr, 0, 0);
    CreateChare(type, nullptr, 0, 0);
    CsdScheduler(2);
    EXPECT_EQ(CharmLocalChares(), 2);
    DestroyChare(ChareId{0, 1});
    CsdScheduler(1);
    live = CharmLocalChares();
  });
  EXPECT_EQ(live.load(), 1);
}

TEST(Charm, MessageCountersBalanceAtQuiescence) {
  std::atomic<long> created{0}, processed{0};
  RunConverse(2, [&](int pe, int) {
    struct W : Chare {
      W(const void*, std::size_t) {}
    };
    const int type = RegisterChareType<W>("w");
    if (pe == 0) {
      for (int i = 0; i < 10; ++i) CreateChare(type, nullptr, 0, 1);
      StartQuiescence([&] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
    created += static_cast<long>(CharmMsgsCreated());
    processed += static_cast<long>(CharmMsgsProcessed());
  });
  EXPECT_EQ(created.load(), processed.load());
  EXPECT_EQ(created.load(), 10);
}
