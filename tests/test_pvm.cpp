// cpvm tests: PVM-style pack/send/recv/unpack in SPM and threaded modes
// (paper §1, §5: PVM among the initial Converse clients).
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/cpvm.h"

using namespace converse;
using namespace converse::pvm;

TEST(Pvm, TidsAndTaskCount) {
  RunConverse(3, [&](int pe, int) {
    EXPECT_EQ(pvm_mytid(), pe);
    EXPECT_EQ(pvm_ntasks(), 3);
  });
}

TEST(Pvm, PackSendRecvUnpackAllTypes) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      pvm_initsend();
      const int ints[3] = {1, 2, 3};
      pvm_pkint(ints, 3);
      const double d = 6.5;
      pvm_pkdouble(&d, 1);
      const float f = 0.25f;
      pvm_pkfloat(&f, 1);
      const long l = 123456789L;
      pvm_pklong(&l, 1);
      pvm_pkstr("converse");
      pvm_pkbyte("\x01\x02", 2);
      pvm_send(1, 7);
      return;
    }
    pvm_recv(0, 7);
    int ints[3] = {};
    pvm_upkint(ints, 3);
    double d = 0;
    pvm_upkdouble(&d, 1);
    float f = 0;
    pvm_upkfloat(&f, 1);
    long l = 0;
    pvm_upklong(&l, 1);
    char s[16] = {};
    pvm_upkstr(s);
    char bytes[2] = {};
    pvm_upkbyte(bytes, 2);
    ok = ints[0] == 1 && ints[2] == 3 && d == 6.5 && f == 0.25f &&
         l == 123456789L && std::strcmp(s, "converse") == 0 &&
         bytes[1] == 2;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Pvm, StridedPackUnpack) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      int data[10];
      for (int i = 0; i < 10; ++i) data[i] = i;
      pvm_initsend();
      pvm_pkint(data, 5, /*stride=*/2);  // 0 2 4 6 8
      pvm_send(1, 1);
      return;
    }
    pvm_recv(0, 1);
    int out[9] = {};
    pvm_upkint(out, 5, /*stride=*/2);  // lands at 0 2 4 6 8
    ok = out[0] == 0 && out[2] == 2 && out[8] == 8 && out[1] == 0;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Pvm, TypeMismatchThrows) {
  std::atomic<bool> threw{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      pvm_initsend();
      const double d = 1.0;
      pvm_pkdouble(&d, 1);
      pvm_send(1, 2);
      return;
    }
    pvm_recv(0, 2);
    int wrong = 0;
    try {
      pvm_upkint(&wrong, 1);
    } catch (const PvmError&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw.load());
}

TEST(Pvm, CountMismatchThrows) {
  std::atomic<bool> threw{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      pvm_initsend();
      const int v[2] = {1, 2};
      pvm_pkint(v, 2);
      pvm_send(1, 2);
      return;
    }
    pvm_recv(0, 2);
    int out[3];
    try {
      pvm_upkint(out, 3);
    } catch (const PvmError&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw.load());
}

TEST(Pvm, RecvWildcardsAndBufinfo) {
  std::atomic<bool> ok{false};
  RunConverse(3, [&](int pe, int) {
    if (pe == 2) {
      pvm_initsend();
      const int v = 5;
      pvm_pkint(&v, 1);
      pvm_send(0, 44);
      return;
    }
    if (pe == 0) {
      pvm_recv(PvmAnyTid, PvmAnyTag);
      int bytes = 0, tag = 0, tid = 0;
      pvm_bufinfo(1, &bytes, &tag, &tid);
      int v = 0;
      pvm_upkint(&v, 1);
      ok = tag == 44 && tid == 2 && v == 5 && bytes > 0;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Pvm, NrecvAndProbeNonBlocking) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      // Nothing buffered yet.
      EXPECT_EQ(pvm_nrecv(0, 9), 0);
      EXPECT_EQ(pvm_probe(0, 9), 0);
      // Blocking recv of a later message buffers the tag-9 one.
      pvm_recv(0, 10);
      EXPECT_EQ(pvm_probe(0, 9), 1);
      EXPECT_EQ(pvm_nrecv(0, 9), 1);
      int v = 0;
      pvm_upkint(&v, 1);
      ok = v == 99;
      return;
    }
    pvm_initsend();
    const int v = 99;
    pvm_pkint(&v, 1);
    pvm_send(1, 9);
    pvm_initsend();
    pvm_send(1, 10);  // empty message
  });
  EXPECT_TRUE(ok.load());
}

TEST(Pvm, McastAndBcast) {
  constexpr int kNpes = 4;
  ctu::PerPeCounters got(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    if (pe == 0) {
      pvm_initsend();
      const int v = 3;
      pvm_pkint(&v, 1);
      pvm_bcast_all(6);
    }
    pvm_recv(0, 6);
    int v = 0;
    pvm_upkint(&v, 1);
    got.Add(pe, v);
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(got.Get(i), 3);
}

TEST(Pvm, ThreadedModeRecvSuspendsThread) {
  // pvm_recv from inside a Cth thread must suspend only that thread —
  // the multithreaded PVM mode the paper promises.
  std::atomic<int> background{0};
  std::atomic<int> thread_val{0};
  RunConverse(2, [&](int pe, int) {
    int bg = CmiRegisterHandler([&](void* msg) {
      ++background;
      CmiFree(msg);
    });
    if (pe == 0) {
      CthAwaken(CthCreate([&] {
        pvm_recv(1, 12);
        int v = 0;
        pvm_upkint(&v, 1);
        thread_val = v;
        ConverseBroadcastExit();
      }));
      for (int i = 0; i < 2; ++i) CsdEnqueue(CmiMakeMessage(bg, nullptr, 0));
      CsdScheduler(-1);
      CsdScheduleUntilIdle();  // drain bg work if the exit came early
    } else {
      volatile double x = 1;
      for (int i = 0; i < 1000000; ++i) x = x * 1.0000001;
      pvm_initsend();
      const int v = 1212;
      pvm_pkint(&v, 1);
      pvm_send(0, 12);
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(thread_val.load(), 1212);
  EXPECT_EQ(background.load(), 2);
}

TEST(Pvm, UnpackWithoutRecvThrows) {
  RunConverse(1, [&](int, int) {
    int v;
    EXPECT_THROW(pvm_upkint(&v, 1), PvmError);
  });
}
