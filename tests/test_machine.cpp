// Integration tests for the machine layer (MMI): sends, broadcasts,
// specific receive with buffering, buffer ownership protocol, vector send,
// timers, stats, console I/O, abort propagation.
#include "test_helpers.h"

#include <cstring>
#include <numeric>
#include <stdexcept>

#include "converse/util/crc.h"
#include "converse/util/rng.h"

using namespace converse;
using converse::ctu::PerPeCounters;

TEST(Machine, SinglePeRuns) {
  std::atomic<int> ran{0};
  RunConverse(1, [&](int pe, int npes) {
    EXPECT_EQ(pe, 0);
    EXPECT_EQ(npes, 1);
    EXPECT_EQ(CmiMyPe(), 0);
    EXPECT_EQ(CmiNumPes(), 1);
    EXPECT_EQ(CmiNumPe(), 1);
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Machine, EntryRunsOnEveryPe) {
  constexpr int kNpes = 6;
  PerPeCounters ran(kNpes);
  RunConverse(kNpes, [&](int pe, int npes) {
    EXPECT_EQ(npes, kNpes);
    ran.Add(pe);
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(ran.Get(i), 1);
}

TEST(Machine, SequentialMachinesAreIndependent) {
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> got{0};
    RunConverse(2, [&](int pe, int) {
      int h = CmiRegisterHandler([&](void*) {
        ++got;
        CsdExitScheduler();
      });
      if (pe == 0) {
        void* m = CmiMakeMessage(h, nullptr, 0);
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
      CsdScheduler(-1);
    });
    EXPECT_EQ(got.load(), 2);
  }
}

TEST(Machine, SyncSendDeliversPayloadIntact) {
  const std::string payload = "hello from pe0";
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      ok = CmiMsgPayloadSize(msg) == payload.size() &&
           std::memcmp(CmiMsgPayload(msg), payload.data(), payload.size()) ==
               0 &&
           CmiMsgSourcePe(msg) == 0;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, payload.data(), payload.size());
      CmiSyncSend(1, CmiMsgTotalSize(m), m);
      CmiFree(m);  // CmiSyncSend copies: buffer reusable immediately
    }
    CsdScheduler(-1);
  });
  EXPECT_TRUE(ok.load());
}

TEST(Machine, SendToSelfWorks) {
  std::atomic<int> v{0};
  RunConverse(1, [&](int, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      v = *static_cast<int*>(CmiMsgPayload(msg));
      CsdExitScheduler();
    });
    int payload = 77;
    void* m = CmiMakeMessage(h, &payload, sizeof(payload));
    CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
    CsdScheduler(-1);
  });
  EXPECT_EQ(v.load(), 77);
}

TEST(Machine, AsyncSendHandleIsCompleteAndReleasable) {
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CommHandle ch = CmiAsyncSend(1, CmiMsgTotalSize(m), m);
      // Aggregated sends complete at frame flush, not at the call.
      if (!CmiAsyncMsgSent(ch)) CmiFlush();
      EXPECT_EQ(CmiAsyncMsgSent(ch), 1);
      CmiReleaseCommHandle(ch);
      CmiFree(m);
      CsdExitScheduler();
    }
    CsdScheduler(-1);
  });
}

TEST(Machine, AsyncBroadcastHandlesAreConsistent) {
  // Every async variant must return a handle that CmiAsyncMsgSent reports
  // complete and that CmiReleaseCommHandle accepts (repeatedly creating
  // and releasing must not crash or leak); the messages must still land.
  constexpr int kNpes = 4;
  PerPeCounters hits(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    int seen = 0;
    int h = CmiRegisterHandler([&hits, &seen](void*) {
      hits.Add(CmiMyPe());
      // PE0 gets 1 (broadcast-all only); others get 2 (broadcast + all).
      const int want = CmiMyPe() == 0 ? 1 : 2;
      if (++seen == want) CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CommHandle cb = CmiAsyncBroadcast(CmiMsgTotalSize(m), m);
      // Aggregated broadcasts complete when their carriers flush.
      if (!CmiAsyncMsgSent(cb)) CmiFlush();
      EXPECT_EQ(CmiAsyncMsgSent(cb), 1);
      CmiReleaseCommHandle(cb);
      CommHandle ca = CmiAsyncBroadcastAll(CmiMsgTotalSize(m), m);
      if (!CmiAsyncMsgSent(ca)) CmiFlush();
      EXPECT_EQ(CmiAsyncMsgSent(ca), 1);
      CmiReleaseCommHandle(ca);
      CmiFree(m);  // async variants copy eagerly: source reusable at once
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(hits.Get(0), 1);
  for (int i = 1; i < kNpes; ++i) EXPECT_EQ(hits.Get(i), 2);
}

TEST(Machine, VectorSendHandleIsCompleteAndReleasable) {
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      const char* piece = "x";
      const int sizes[] = {1};
      const void* arrays[] = {piece};
      CommHandle ch = CmiVectorSend(1, h, 1, sizes, arrays);
      EXPECT_EQ(CmiAsyncMsgSent(ch), 1);
      CmiReleaseCommHandle(ch);
      CsdExitScheduler();
    }
    CsdScheduler(-1);
  });
}

class MachineBroadcast : public ::testing::TestWithParam<int> {};

TEST_P(MachineBroadcast, BroadcastExcludesCaller) {
  const int npes = GetParam();
  PerPeCounters hits(npes);
  ctu::RunAll(npes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void*) {
      hits.Add(pe);
      CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncBroadcast(CmiMsgTotalSize(m), m);
      CmiFree(m);
      CsdExitScheduler();
    }
  });
  EXPECT_EQ(hits.Get(0), 0);
  for (int i = 1; i < npes; ++i) EXPECT_EQ(hits.Get(i), 1);
}

TEST_P(MachineBroadcast, BroadcastAllIncludesCaller) {
  const int npes = GetParam();
  PerPeCounters hits(npes);
  ctu::RunAll(npes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void*) {
      hits.Add(pe);
      CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    }
  });
  for (int i = 0; i < npes; ++i) EXPECT_EQ(hits.Get(i), 1);
}

INSTANTIATE_TEST_SUITE_P(Npes, MachineBroadcast, ::testing::Values(1, 2, 3, 5, 8));

TEST(Machine, GetSpecificMsgBuffersOthers) {
  // PE1 sends A-tagged then B-tagged; PE0 waits for B first, then must
  // still see A afterwards (buffered by the machine layer).
  std::atomic<bool> order_ok{false};
  RunConverse(2, [&](int pe, int) {
    int ha = CmiRegisterHandler([](void*) {});
    int hb = CmiRegisterHandler([](void*) {});
    if (pe == 1) {
      void* a = CmiMakeMessage(ha, "A", 1);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(a), a);
      void* b = CmiMakeMessage(hb, "B", 1);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(b), b);
      return;
    }
    void* mb = CmiGetSpecificMsg(hb);
    const bool b_first = *static_cast<char*>(CmiMsgPayload(mb)) == 'B';
    void* ma = CmiGetSpecificMsg(ha);
    order_ok = b_first && *static_cast<char*>(CmiMsgPayload(ma)) == 'A';
  });
  EXPECT_TRUE(order_ok.load());
}

TEST(Machine, GrabBufferKeepsMessageAlive) {
  // A handler grabs its buffer and stores it; the payload must stay valid
  // after the handler returns, and the grabber must free it.
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    void* saved = nullptr;
    int h = CmiRegisterHandler([&saved](void* msg) {
      CmiGrabBuffer(&msg);
      saved = msg;
      CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, "keepme", 6);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      CsdExitScheduler();
    }
    CsdScheduler(-1);
    if (pe == 1) {
      ok = saved != nullptr && CmiMsgIsValid(saved) &&
           std::memcmp(CmiMsgPayload(saved), "keepme", 6) == 0;
      CmiFree(saved);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Machine, VectorSendConcatenatesPieces) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      ok = CmiMsgPayloadSize(msg) == 10 &&
           std::memcmp(CmiMsgPayload(msg), "abcdefghij", 10) == 0;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      const char* p1 = "abc";
      const char* p2 = "defg";
      const char* p3 = "hij";
      const int sizes[] = {3, 4, 3};
      const void* arrays[] = {p1, p2, p3};
      CmiVectorSend(1, h, 3, sizes, arrays);
    }
    CsdScheduler(-1);
  });
  EXPECT_TRUE(ok.load());
}

TEST(Machine, TimerAdvancesAndHasResolution) {
  RunConverse(1, [&](int, int) {
    const double t0 = CmiTimer();
    EXPECT_GE(t0, 0.0);
    // Busy work; steady_clock has ns resolution so this must register.
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
    const double t1 = CmiTimer();
    EXPECT_GT(t1, t0);
    EXPECT_LT(t1, 60.0);  // seconds since machine start, sane bound
    EXPECT_GE(CmiCpuTimer(), 0.0);
  });
}

TEST(Machine, StatsCountSendsAndDeliveries) {
  std::atomic<long> sent{0}, delivered{0};
  RunConverse(2, [&](int pe, int) {
    int noop = CmiRegisterHandler([](void*) {});
    int exit_h = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      for (int i = 0; i < 5; ++i) {
        void* m = CmiMakeMessage(noop, nullptr, 0);
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      void* last = CmiMakeMessage(exit_h, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(last), last);
      CsdScheduler(-1);
      sent += static_cast<long>(CmiGetStats().msgs_sent);
    } else {
      CsdScheduler(5);
      delivered += static_cast<long>(CmiGetStats().msgs_delivered);
    }
  });
  EXPECT_EQ(sent.load(), 6);
  EXPECT_EQ(delivered.load(), 5);
}

TEST(Machine, PrintfIsAtomicAndRedirectable) {
  char* buf = nullptr;
  std::size_t buflen = 0;
  std::FILE* mem = open_memstream(&buf, &buflen);
  MachineConfig cfg;
  cfg.npes = 4;
  cfg.out = mem;
  RunConverse(cfg, [&](int pe, int) {
    for (int i = 0; i < 10; ++i) {
      CmiPrintf("[pe%d line%d]\n", pe, i);
    }
  });
  std::fclose(mem);
  std::string s(buf, buflen);
  free(buf);
  // 40 complete lines, none interleaved.
  int lines = 0;
  std::size_t pos = 0;
  while ((pos = s.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 40);
  for (int pe = 0; pe < 4; ++pe) {
    for (int i = 0; i < 10; ++i) {
      char expect[32];
      std::snprintf(expect, sizeof(expect), "[pe%d line%d]\n", pe, i);
      EXPECT_NE(s.find(expect), std::string::npos) << expect;
    }
  }
}

TEST(Machine, ScanfReadsRedirectedInput) {
  std::FILE* in = tmpfile();
  std::fputs("321 hello\n", in);
  std::rewind(in);
  MachineConfig cfg;
  cfg.npes = 1;
  cfg.in = in;
  std::atomic<int> v{0};
  RunConverse(cfg, [&](int, int) {
    int x = 0;
    char w[16] = {};
    EXPECT_EQ(CmiScanf("%d %15s", &x, w), 2);
    v = x;
    EXPECT_STREQ(w, "hello");
  });
  std::fclose(in);
  EXPECT_EQ(v.load(), 321);
}

TEST(Machine, ScanfAsyncDeliversLineToHandler) {
  std::FILE* in = tmpfile();
  std::fputs("42 async-line\n", in);
  std::rewind(in);
  MachineConfig cfg;
  cfg.npes = 1;
  cfg.in = in;
  std::atomic<int> v{0};
  RunConverse(cfg, [&](int, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      int x = 0;
      char w[32] = {};
      sscanf(static_cast<const char*>(CmiMsgPayload(msg)), "%d %31s", &x, w);
      v = x;
      EXPECT_STREQ(w, "async-line");
      CsdExitScheduler();
    });
    CmiScanfAsync(h);
    CsdScheduler(-1);
  });
  std::fclose(in);
  EXPECT_EQ(v.load(), 42);
}

TEST(Machine, EntryExceptionPropagatesToCaller) {
  EXPECT_THROW(
      RunConverse(3,
                  [&](int pe, int) {
                    if (pe == 1) throw std::runtime_error("pe1 exploded");
                    CsdScheduler(-1);  // blocked PEs must be unwound
                  }),
      std::runtime_error);
}

namespace {

// RAII save/restore for one environment variable, so env-parsing tests
// can't leak state into other tests in this binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

// Run a tiny machine with `err` captured, returning everything the
// machine wrote to its error stream.
std::string CaptureMachineErr(int npes,
                              const std::function<void(int, int)>& entry) {
  char* buf = nullptr;
  std::size_t buflen = 0;
  std::FILE* mem = open_memstream(&buf, &buflen);
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.err = mem;
  RunConverse(cfg, entry);
  std::fclose(mem);
  std::string s(buf, buflen);
  free(buf);
  return s;
}

}  // namespace

TEST(MachineEnv, MalformedIntegerIsRejectedWithDiagnostic) {
  // CONVERSE_AGG=abc must NOT enable aggregation (the historical atoi
  // reader treated junk as 0 silently; worse typos flipped behavior).
  // The default stays in force and exactly one "[Cmi]" line names the
  // variable and the offending text.
  ScopedEnv agg("CONVERSE_AGG", "abc");
  std::atomic<std::uint64_t> frames{0};
  const std::string err = CaptureMachineErr(2, [&](int pe, int) {
    int h = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      CsdExitScheduler();
    }
    CsdScheduler(-1);
    frames += CmiGetStats().agg_frames_sent;
  });
  EXPECT_EQ(frames.load(), 0u);  // default (off) stayed in force
  EXPECT_NE(err.find("[Cmi] ignoring malformed CONVERSE_AGG=\"abc\""),
            std::string::npos)
      << "got: " << err;
  // One diagnostic per process, not one per PE.
  EXPECT_EQ(err.find("[Cmi] ignoring malformed"),
            err.rfind("[Cmi] ignoring malformed"));
}

TEST(MachineEnv, TrailingGarbageAndOverflowAreRejected) {
  for (const char* bad : {"12junk", "", "999999999999999999999999", "-",
                          "0x10"}) {
    ScopedEnv sb("CONVERSE_SBCAST", bad);
    const std::string err = CaptureMachineErr(2, [&](int, int) {});
    if (bad[0] == '\0') {
      // Empty means "unset" — no diagnostic.
      EXPECT_EQ(err.find("[Cmi]"), std::string::npos) << "value: empty";
    } else {
      EXPECT_NE(err.find("[Cmi] ignoring malformed CONVERSE_SBCAST"),
                std::string::npos)
          << "value: " << bad << " got: " << err;
    }
  }
}

TEST(MachineEnv, WellFormedIntegerIsAcceptedSilently) {
  ScopedEnv agg("CONVERSE_AGG", "1");
  std::atomic<std::uint64_t> frames{0};
  const std::string err = CaptureMachineErr(2, [&](int pe, int) {
    int seen = 0;
    int h = CmiRegisterHandler([&seen](void*) {
      if (++seen == 8) CsdExitScheduler();
    });
    if (pe == 0) {
      for (int i = 0; i < 8; ++i) {
        void* m = CmiMakeMessage(h, &i, sizeof(i));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      CmiFlush();
      CsdExitScheduler();
    }
    CsdScheduler(-1);
    frames += CmiGetStats().agg_frames_sent;
  });
  EXPECT_EQ(err.find("[Cmi]"), std::string::npos) << "got: " << err;
  EXPECT_GT(frames.load(), 0u);  // aggregation really turned on
}

TEST(Machine, MessageIntegrityRandomSizes) {
  // Property test: payloads of many sizes arrive with matching CRC.
  constexpr int kMsgs = 60;
  std::atomic<int> ok{0};
  RunConverse(3, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      const auto n = CmiMsgPayloadSize(msg) - sizeof(std::uint32_t);
      const char* data = static_cast<const char*>(CmiMsgPayload(msg));
      std::uint32_t want;
      std::memcpy(&want, data + n, sizeof(want));
      if (util::Crc32c(data, n) == want) ++ok;
      if (ok.load() == 2 * kMsgs) CsdExitScheduler();
    });
    if (pe != 0) {
      util::Xoshiro256 rng(1000u + static_cast<unsigned>(pe));
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t n = rng.Below(8192) + 1;
        void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + n + sizeof(std::uint32_t));
        CmiSetHandler(m, h);
        auto* data = static_cast<char*>(CmiMsgPayload(m));
        for (std::size_t j = 0; j < n; ++j) {
          data[j] = static_cast<char>(rng.Next());
        }
        const std::uint32_t crc = util::Crc32c(data, n);
        std::memcpy(data + n, &crc, sizeof(crc));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      }
      return;  // senders exit; receiver schedules
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(ok.load(), 2 * kMsgs);
}
