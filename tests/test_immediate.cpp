// Immediate (out-of-band) message tests — the paper's §6 "preemptive
// messages (interrupt messages)" future work, realized cooperatively.
#include "test_helpers.h"

#include <cstring>

using namespace converse;

TEST(Immediate, OvertakesEarlierRegularMessages) {
  std::vector<int> order;
  RunConverse(2, [&](int pe, int) {
    int rec = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      order.push_back(v);
      if (order.size() == 4) CsdExitScheduler();
    });
    if (pe == 0) {
      // Three regular messages, then one immediate: the immediate must be
      // delivered first even though it was sent last.
      for (int v : {1, 2, 3}) {
        void* m = CmiMakeMessage(rec, &v, sizeof(v));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      const int urgent = 99;
      void* m = CmiMakeMessage(rec, &urgent, sizeof(urgent));
      CmiSyncSendImmediateAndFree(1, CmiMsgTotalSize(m), m);
      return;
    }
    // Give the sender time to enqueue everything before we start.
    volatile double x = 1;
    for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
    CsdScheduler(-1);
    EXPECT_EQ(order, (std::vector<int>{99, 1, 2, 3}));
  });
}

TEST(Immediate, NotDelayedByNetworkModel) {
  NetModel slow;
  slow.name = "slow";
  slow.alpha_us = 50000;  // 50 ms for regular traffic
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.model = &slow;
  std::atomic<double> arrival_s{1e9};
  RunConverse(cfg, [&](int pe, int) {
    int rec = CmiRegisterHandler([&](void*) {
      arrival_s = CmiTimer();
      CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(rec, nullptr, 0);
      CmiSyncSendImmediateAndFree(1, CmiMsgTotalSize(m), m);
      return;
    }
    CsdScheduler(-1);
  });
  // Far quicker than the 50 ms the model would impose.
  EXPECT_LT(arrival_s.load(), 0.045);
}

TEST(Immediate, ProbeImmediatesFromLongRunningHandler) {
  // A long-running handler polls the immediate lane mid-computation; the
  // urgent message's handler runs inside the poll.
  std::vector<int> order;
  RunConverse(2, [&](int pe, int) {
    int urgent = CmiRegisterHandler([&](void*) { order.push_back(2); });
    int longrun = CmiRegisterHandler([&, urgent](void* msg) {
      order.push_back(1);
      // Wait until the urgent message has surely been sent, then poll.
      int polled = 0;
      const double t0 = CmiTimer();
      while (polled == 0 && CmiTimer() - t0 < 5.0) {
        polled = CmiProbeImmediates();
      }
      order.push_back(3);
      (void)msg;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(longrun, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      CmiFlush();  // must reach PE1 before the immediate overtakes it
      // Let PE1 enter the long handler, then interrupt it.
      volatile double x = 1;
      for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
      void* u = CmiMakeMessage(urgent, nullptr, 0);
      CmiSyncSendImmediateAndFree(1, CmiMsgTotalSize(u), u);
    }
    CsdScheduler(-1);
    if (pe == 1) {
      EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Immediate, WakesIdleScheduler) {
  std::atomic<bool> woke{false};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      woke = true;
      CsdExitScheduler();
    });
    if (pe == 1) {
      volatile double x = 1;
      for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendImmediateAndFree(0, CmiMsgTotalSize(m), m);
      return;
    }
    CsdScheduler(-1);  // blocks idle; the immediate must wake it
  });
  EXPECT_TRUE(woke.load());
}

TEST(Immediate, CopyingVariantLeavesBufferUsable) {
  std::atomic<int> got{0};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      got = *static_cast<int*>(CmiMsgPayload(msg));
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      int v = 5;
      void* m = CmiMakeMessage(h, &v, sizeof(v));
      CmiSyncSendImmediate(1, CmiMsgTotalSize(m), m);
      // The buffer is still ours: mutate and free it safely.
      *static_cast<int*>(CmiMsgPayload(m)) = -1;
      CmiFree(m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(got.load(), 5);
}
