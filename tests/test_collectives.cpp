// Collectives tests: spanning-tree reductions, all-reduce, barriers
// (paper EMI: "carrying out reductions and other global operations").
#include "test_helpers.h"

#include <cstring>

using namespace converse;

class CollectivesNpes : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesNpes, AllReduceSumI64) {
  const int npes = GetParam();
  ctu::PerPeCounters results(npes);
  RunConverse(npes, [&](int pe, int n) {
    const std::int64_t got = CmiAllReduceI64(pe + 1, CmiReducerSumI64());
    results.Add(pe, got);
    (void)n;
  });
  const long want = static_cast<long>(npes) * (npes + 1) / 2;
  for (int i = 0; i < npes; ++i) EXPECT_EQ(results.Get(i), want);
}

TEST_P(CollectivesNpes, AllReduceMinMax) {
  const int npes = GetParam();
  std::atomic<bool> all_ok{true};
  RunConverse(npes, [&](int pe, int n) {
    const std::int64_t mx = CmiAllReduceI64(pe * 3, CmiReducerMaxI64());
    const std::int64_t mn = CmiAllReduceI64(pe * 3, CmiReducerMinI64());
    if (mx != (n - 1) * 3 || mn != 0) all_ok = false;
  });
  EXPECT_TRUE(all_ok.load());
}

TEST_P(CollectivesNpes, AllReduceF64Sum) {
  const int npes = GetParam();
  std::atomic<bool> all_ok{true};
  RunConverse(npes, [&](int pe, int n) {
    const double got = CmiAllReduceF64(0.5 * (pe + 1), CmiReducerSumF64());
    const double want = 0.5 * n * (n + 1) / 2;
    if (got != want) all_ok = false;
  });
  EXPECT_TRUE(all_ok.load());
}

TEST_P(CollectivesNpes, BitOpsReduce) {
  const int npes = GetParam();
  std::atomic<bool> all_ok{true};
  RunConverse(npes, [&](int pe, int n) {
    const std::uint64_t my_bit = 1ull << pe;
    std::uint64_t v = my_bit;
    CmiAllReduceBlocking(&v, sizeof(v), CmiReducerBitOr64());
    if (v != (n >= 64 ? ~0ull : (1ull << n) - 1)) all_ok = false;
  });
  EXPECT_TRUE(all_ok.load());
}

TEST_P(CollectivesNpes, BlockingBarrierCompletes) {
  const int npes = GetParam();
  std::atomic<int> passed{0};
  RunConverse(npes, [&](int, int) {
    CmiBarrierBlocking();
    ++passed;
    CmiBarrierBlocking();  // reusable
  });
  EXPECT_EQ(passed.load(), npes);
}

INSTANTIATE_TEST_SUITE_P(Npes, CollectivesNpes, ::testing::Values(1, 2, 3, 5, 8));

TEST(Collectives, ReduceDeliversToRootOnly) {
  constexpr int kNpes = 4;
  ctu::PerPeCounters got(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void* msg) {
      std::int64_t v = 0;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      got.Add(pe, v);
      ConverseBroadcastExit();
    });
    std::int64_t mine = 10 + pe;
    CmiReduce(&mine, sizeof(mine), CmiReducerSumI64(), h);
    CsdScheduler(-1);
  });
  EXPECT_EQ(got.Get(0), 10 + 11 + 12 + 13);
  for (int i = 1; i < kNpes; ++i) EXPECT_EQ(got.Get(i), 0);
}

TEST(Collectives, AsyncAllReduceDeliversEverywhere) {
  constexpr int kNpes = 3;
  ctu::PerPeCounters got(kNpes);
  std::atomic<int> done{0};
  RunConverse(kNpes, [&](int pe, int npes) {
    int h = CmiRegisterHandler([&, pe, npes](void* msg) {
      std::int64_t v = 0;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      got.Add(pe, v);
      if (++done == npes) ConverseBroadcastExit();
      CsdExitScheduler();
    });
    std::int64_t mine = pe;
    CmiAllReduce(&mine, sizeof(mine), CmiReducerSumI64(), h);
    CsdScheduler(-1);
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(got.Get(i), 0 + 1 + 2);
}

TEST(Collectives, CustomReducer) {
  std::atomic<bool> ok{true};
  RunConverse(4, [&](int pe, int) {
    // A product reducer — not one of the built-ins.
    const int prod = CmiRegisterReducer(
        [](void* acc, const void* contrib, std::size_t size) {
          ASSERT_EQ(size, sizeof(std::int64_t));
          auto* a = static_cast<std::int64_t*>(acc);
          const auto* c = static_cast<const std::int64_t*>(contrib);
          *a *= *c;
        });
    std::int64_t v = pe + 2;  // 2*3*4*5 = 120
    CmiAllReduceBlocking(&v, sizeof(v), prod);
    if (v != 120) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Collectives, ManySequentialCollectives) {
  std::atomic<bool> ok{true};
  RunConverse(3, [&](int pe, int n) {
    for (int round = 0; round < 20; ++round) {
      const std::int64_t got =
          CmiAllReduceI64(pe + round, CmiReducerSumI64());
      const std::int64_t want =
          static_cast<std::int64_t>(n) * round + n * (n - 1) / 2;
      if (got != want) ok = false;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Collectives, VectorReduceElementwise) {
  std::atomic<bool> ok{true};
  RunConverse(4, [&](int pe, int n) {
    double v[3] = {1.0 * pe, 2.0 * pe, 3.0 * pe};
    CmiAllReduceBlocking(v, sizeof(v), CmiReducerSumF64());
    const double s = n * (n - 1) / 2.0;  // sum of pe
    if (v[0] != s || v[1] != 2 * s || v[2] != 3 * s) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Collectives, SpanTreeQueriesAreConsistent) {
  RunConverse(7, [&](int pe, int npes) {
    EXPECT_EQ(CmiSpanTreeRoot(), 0);
    if (pe != 0) {
      const int parent = CmiSpanTreeParent(pe);
      ASSERT_GE(parent, 0);
      ASSERT_LT(parent, npes);
      auto kids = CmiSpanTreeChildren(parent);
      EXPECT_NE(std::find(kids.begin(), kids.end(), pe), kids.end());
    } else {
      EXPECT_EQ(CmiSpanTreeParent(0), -1);
    }
  });
}

TEST(Collectives, SplitPhaseBarrierNotifiesEveryPe) {
  constexpr int kNpes = 4;
  ctu::PerPeCounters notified(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void*) {
      notified.Add(pe);
      CsdExitScheduler();
    });
    CmiBarrier(h);
    CsdScheduler(-1);
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(notified.Get(i), 1);
}
