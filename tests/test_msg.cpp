// Unit tests for generalized messages: allocation, header layout, payload
// helpers, liveness canary (paper §3.1.1).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "converse/handlers.h"
#include "converse/msg.h"

using namespace converse;

TEST(Msg, HeaderSizeIsFixedAndAligned) {
  EXPECT_EQ(CmiMsgHeaderSizeBytes(), 32);
  EXPECT_EQ(sizeof(detail::MsgHeader) % 16, 0u);
}

TEST(Msg, AllocInitializesHeader) {
  void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + 100);
  EXPECT_TRUE(CmiMsgIsValid(m));
  EXPECT_EQ(CmiMsgTotalSize(m), static_cast<std::size_t>(
                                    CmiMsgHeaderSizeBytes() + 100));
  EXPECT_EQ(CmiMsgPayloadSize(m), 100u);
  CmiFree(m);
}

TEST(Msg, PayloadIsAfterHeaderAndAligned) {
  void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + 64);
  EXPECT_EQ(static_cast<char*>(CmiMsgPayload(m)) - static_cast<char*>(m),
            CmiMsgHeaderSizeBytes());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(CmiMsgPayload(m)) % 16, 0u);
  CmiFree(m);
}

TEST(Msg, FreeInvalidatesCanary) {
  void* m = CmiAlloc(CmiMsgHeaderSizeBytes());
  EXPECT_TRUE(CmiMsgIsValid(m));
  // Save the header bytes to inspect after free (the memory itself is
  // returned to the allocator; we only check the canary flips before that).
  CmiFree(m);
  // Cannot portably read freed memory; instead verify the null case:
  EXPECT_FALSE(CmiMsgIsValid(nullptr));
}

TEST(Msg, FreeNullIsNoop) { CmiFree(nullptr); }

TEST(Msg, MakeMessageCopiesPayload) {
  const char data[] = "payload-bytes";
  void* m = CmiMakeMessage(3, data, sizeof(data));
  EXPECT_EQ(CmiMsgPayloadSize(m), sizeof(data));
  EXPECT_EQ(std::memcmp(CmiMsgPayload(m), data, sizeof(data)), 0);
  CmiFree(m);
}

TEST(Msg, MakeMessageWithEmptyPayload) {
  void* m = CmiMakeMessage(1, nullptr, 0);
  EXPECT_EQ(CmiMsgPayloadSize(m), 0u);
  CmiFree(m);
}

TEST(Msg, ZeroPayloadAllocation) {
  void* m = CmiAlloc(CmiMsgHeaderSizeBytes());
  EXPECT_EQ(CmiMsgPayloadSize(m), 0u);
  CmiFree(m);
}

TEST(Msg, LargeMessage) {
  constexpr std::size_t kBig = 4u << 20;  // 4 MiB
  void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + kBig);
  std::memset(CmiMsgPayload(m), 0x5a, kBig);
  EXPECT_EQ(CmiMsgPayloadSize(m), kBig);
  EXPECT_EQ(static_cast<unsigned char*>(CmiMsgPayload(m))[kBig - 1], 0x5a);
  CmiFree(m);
}

TEST(Msg, InitMsgHeaderMakesCallerBufferSendable) {
  alignas(16) unsigned char buf[128];
  std::memset(buf, 0xee, sizeof(buf));
  CmiInitMsgHeader(buf, sizeof(buf));
  EXPECT_TRUE(CmiMsgIsValid(buf));
  EXPECT_EQ(CmiMsgTotalSize(buf), sizeof(buf));
  EXPECT_EQ(CmiMsgPayloadSize(buf),
            sizeof(buf) - static_cast<std::size_t>(CmiMsgHeaderSizeBytes()));
  EXPECT_EQ(CmiGetHandler(buf), -1);  // invalid until CmiSetHandler
  CmiSetHandler(buf, 5);
  EXPECT_EQ(CmiGetHandler(buf), 5);
  // No CmiFree: the storage is the caller's.
}
