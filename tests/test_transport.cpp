// Transport layer tests (DESIGN.md "Transport interface"): wire codec
// framing, node/PE block topology, loopback multi-node machines (unicast,
// broadcast fan-out, immediates), transport counters and their single-node
// inertness pin, sim determinism across backends, and injected-disconnect
// conservation including the planted-loss self-test.
//
// Everything here is single-process: multi-node machines run in loopback
// mode (config.mynode == -1, every node hosted in this process over the
// virtual wire).  Real cross-process sockets are in test_transport_mp.cpp.
#include "test_helpers.h"

#include <cstring>
#include <string>
#include <vector>

#include "converse/cld.h"
#include "converse/transport.h"
#include "core/transport/wire.h"

using namespace converse;
using converse::ctu::PerPeCounters;
using detail::kWireRecBytes;
using detail::WireDecode;
using detail::WireEncode;
using detail::WireParser;
using detail::WireRec;

namespace {

WireRec SampleRec(std::uint32_t len, std::uint8_t kind) {
  WireRec r;
  r.length = len;
  r.dest_pe = 513;
  r.src_node = 7;
  r.kind = kind;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Wire, EncodeDecodeRoundtrip) {
  for (std::uint8_t kind = detail::kWireMessage; kind <= detail::kWireGoodbye;
       ++kind) {
    const WireRec in = SampleRec(kind * 1000u, kind);
    unsigned char buf[kWireRecBytes];
    WireEncode(in, buf);
    WireRec out;
    ASSERT_TRUE(WireDecode(buf, &out)) << "kind " << int(kind);
    EXPECT_EQ(out.length, in.length);
    EXPECT_EQ(out.dest_pe, in.dest_pe);
    EXPECT_EQ(out.src_node, in.src_node);
    EXPECT_EQ(out.kind, in.kind);
  }
}

TEST(Wire, DecodeRejectsCorruption) {
  unsigned char buf[kWireRecBytes];
  WireEncode(SampleRec(64, detail::kWireMessage), buf);
  WireRec out;
  ASSERT_TRUE(WireDecode(buf, &out));
  // Any single flipped byte must fail magic or checksum validation.
  for (std::size_t i = 0; i < kWireRecBytes; ++i) {
    unsigned char bad[kWireRecBytes];
    std::memcpy(bad, buf, sizeof(bad));
    bad[i] ^= 0x40;
    EXPECT_FALSE(WireDecode(bad, &out)) << "flipped byte " << i;
  }
  // Out-of-range kinds are rejected even with a consistent checksum.
  for (std::uint8_t kind : {std::uint8_t{0}, std::uint8_t{6},
                            std::uint8_t{255}}) {
    unsigned char raw[kWireRecBytes];
    WireEncode(SampleRec(64, kind), raw);
    EXPECT_FALSE(WireDecode(raw, &out)) << "kind " << int(kind);
  }
}

TEST(Wire, ParserReassemblesByteAtATime) {
  // Three records with distinct bodies, streamed one byte at a time — the
  // parser must produce exactly the three records, in order, intact.
  std::vector<unsigned char> stream;
  for (int i = 0; i < 3; ++i) {
    const std::string body = "record-body-" + std::to_string(i) +
                             std::string(static_cast<std::size_t>(i) * 37, 'x');
    WireRec r = SampleRec(static_cast<std::uint32_t>(body.size()),
                          detail::kWireMessage);
    r.dest_pe = static_cast<std::uint16_t>(i);
    unsigned char hdr[kWireRecBytes];
    WireEncode(r, hdr);
    stream.insert(stream.end(), hdr, hdr + kWireRecBytes);
    stream.insert(stream.end(), body.begin(), body.end());
  }

  WireParser p;
  int got = 0;
  for (unsigned char byte : stream) {
    p.Append(&byte, 1);
    WireRec rec;
    const unsigned char* body = nullptr;
    int rc;
    while ((rc = p.Next(&rec, &body)) == 1) {
      EXPECT_EQ(rec.dest_pe, got);
      const std::string want = "record-body-" + std::to_string(got) +
                               std::string(static_cast<std::size_t>(got) * 37,
                                           'x');
      ASSERT_EQ(rec.length, want.size());
      EXPECT_EQ(std::memcmp(body, want.data(), want.size()), 0);
      ++got;
    }
    ASSERT_NE(rc, -1);
  }
  EXPECT_EQ(got, 3);
  EXPECT_FALSE(p.mid_record());
}

TEST(Wire, ParserRejectsGarbage) {
  WireParser p;
  unsigned char junk[kWireRecBytes];
  for (std::size_t i = 0; i < sizeof(junk); ++i) {
    junk[i] = static_cast<unsigned char>(0xA5 ^ i);
  }
  p.Append(junk, sizeof(junk));
  WireRec rec;
  const unsigned char* body = nullptr;
  EXPECT_EQ(p.Next(&rec, &body), -1);
}

TEST(Wire, ParserPartialTailAndReset) {
  unsigned char hdr[kWireRecBytes];
  WireEncode(SampleRec(100, detail::kWireMessage), hdr);
  WireParser p;
  p.Append(hdr, kWireRecBytes);
  p.Append("short", 5);  // 5 of the promised 100 body bytes
  WireRec rec;
  const unsigned char* body = nullptr;
  EXPECT_EQ(p.Next(&rec, &body), 0);  // incomplete, not an error
  EXPECT_TRUE(p.mid_record());        // EOF here would mean a died peer
  p.Reset();                          // connection reset: drop the tail
  EXPECT_FALSE(p.mid_record());
  EXPECT_EQ(p.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Node/PE block topology
// ---------------------------------------------------------------------------

TEST(Topology, BlockMapInvariants) {
  // 7 PEs over 3 nodes: sizes {3,2,2}; every helper must agree.
  MachineConfig cfg;
  cfg.npes = 7;
  cfg.nnodes = 3;
  cfg.transport = CmiTransport::kSmpNode;
  RunConverse(cfg, [&](int pe, int npes) {
    ASSERT_EQ(CmiNumNodes(), 3);
    int total = 0;
    for (int node = 0; node < CmiNumNodes(); ++node) {
      const int first = CmiNodeFirst(node);
      const int size = CmiNodeSize(node);
      EXPECT_GE(size, npes / 3);
      EXPECT_LE(size, npes / 3 + 1);
      for (int p = first; p < first + size; ++p) {
        EXPECT_EQ(CmiNodeOf(p), node);
      }
      total += size;
    }
    EXPECT_EQ(total, npes);
    EXPECT_EQ(CmiMyNode(), CmiNodeOf(pe));
    EXPECT_GE(pe, CmiNodeFirst(CmiMyNode()));
    EXPECT_LT(pe, CmiNodeFirst(CmiMyNode()) + CmiNodeSize(CmiMyNode()));
  });
}

TEST(Topology, SingleNodeIsDegenerate) {
  RunConverse(3, [&](int pe, int npes) {
    EXPECT_EQ(CmiMyNode(), 0);
    EXPECT_EQ(CmiNumNodes(), 1);
    EXPECT_EQ(CmiNodeOf(pe), 0);
    EXPECT_EQ(CmiNodeFirst(0), 0);
    EXPECT_EQ(CmiNodeSize(0), npes);
  });
}

// ---------------------------------------------------------------------------
// Loopback multi-node machines
// ---------------------------------------------------------------------------

namespace {

MachineConfig SmpLoopback(int npes, int nnodes) {
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.nnodes = nnodes;
  cfg.transport =
      nnodes == npes ? CmiTransport::kSocket : CmiTransport::kSmpNode;
  return cfg;
}

}  // namespace

TEST(TransportLoopback, PingpongAcrossNodes) {
  // PE 0 (node 0) and PE 3 (node 1) ping-pong; the unicasts cross the
  // virtual wire, so records must be created and counted.
  constexpr int kRounds = 32;
  std::atomic<int> rounds{0};
  std::atomic<std::uint64_t> frames{0};
  RunConverse(SmpLoopback(4, 2), [&](int pe, int) {
    ASSERT_NE(CmiNodeOf(0), CmiNodeOf(3));
    int h = -1;
    h = CmiRegisterHandler([&h, &rounds](void* msg) {
      int r;
      std::memcpy(&r, CmiMsgPayload(msg), sizeof(r));
      if (r >= kRounds) {
        rounds = r;
        ConverseBroadcastExit();
        return;
      }
      const int next = r + 1;
      void* m = CmiMakeMessage(h, &next, sizeof(next));
      CmiSyncSendAndFree(CmiMyPe() == 0 ? 3 : 0, CmiMsgTotalSize(m), m);
    });
    if (pe == 0) {
      const int zero = 0;
      void* m = CmiMakeMessage(h, &zero, sizeof(zero));
      CmiSyncSendAndFree(3, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
    if (pe == 0 || pe == 3) {
      frames += CmiGetStats().wire_frames_sent;
    }
  });
  EXPECT_EQ(rounds.load(), kRounds);
  // Every leg of the pingpong is one record; both directions count.
  EXPECT_GE(frames.load(), static_cast<std::uint64_t>(kRounds));
}

TEST(TransportLoopback, BroadcastReachesEveryPeOncePerRemoteNode) {
  // A broadcast from PE 0 over 3 nodes must land exactly once everywhere
  // and put exactly one node-cast record per *remote node* on the wire.
  constexpr int kNpes = 6, kNnodes = 3;
  PerPeCounters hits(kNpes);
  std::atomic<std::uint64_t> root_frames{0};
  RunConverse(SmpLoopback(kNpes, kNnodes), [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      hits.Add(CmiMyPe());
      CsdExitScheduler();  // local exit: keeps the frame accounting exact
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
    if (pe == 0) root_frames = CmiGetStats().wire_frames_sent;
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(hits.Get(i), 1);
  EXPECT_EQ(root_frames.load(), static_cast<std::uint64_t>(kNnodes - 1));
}

TEST(TransportLoopback, SharedBlockRemoteFanout) {
  // A share-threshold-sized broadcast crossing nodes: each remote node
  // rebuilds ONE shared block and fans out views, so payload copies stay
  // one per node, not one per PE.
  constexpr int kNpes = 6, kNnodes = 2;
  constexpr std::size_t kBytes = 4096;
  PerPeCounters good(kNpes);
  std::atomic<std::uint64_t> blocks{0}, views{0}, copies{0};
  MachineConfig cfg = SmpLoopback(kNpes, kNnodes);
  cfg.bcast_share_min = 1024;
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      const auto* p = static_cast<const unsigned char*>(CmiMsgPayload(msg));
      bool ok = CmiMsgPayloadSize(msg) == kBytes;
      for (std::size_t i = 0; ok && i < kBytes; ++i) {
        ok = p[i] == static_cast<unsigned char>((i * 31 + 7) & 0xff);
      }
      if (ok) good.Add(CmiMyPe());
      CsdExitScheduler();  // local: exit broadcasts would skew the counters
    });
    if (pe == 0) {
      void* m = CmiAlloc(static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) +
                         kBytes);
      CmiSetHandler(m, h);
      auto* p = static_cast<unsigned char*>(CmiMsgPayload(m));
      for (std::size_t i = 0; i < kBytes; ++i) {
        p[i] = static_cast<unsigned char>((i * 31 + 7) & 0xff);
      }
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
    const CmiStats s = CmiGetStats();
    blocks += s.bcast_shared_blocks;
    views += s.bcast_shared_views;
    copies += s.bcast_payload_copies;
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(good.Get(i), 1);
  // One block at the root plus one per remote node; every PE except the
  // root dispatches a view (the root consumes the original message).
  EXPECT_EQ(blocks.load(), static_cast<std::uint64_t>(kNnodes));
  EXPECT_EQ(views.load(), static_cast<std::uint64_t>(kNpes - 1));
  // Copies: the root's one staging copy plus one rebuild per remote node.
  EXPECT_EQ(copies.load(), static_cast<std::uint64_t>(kNnodes));
}

TEST(TransportLoopback, ImmediatesCrossNodes) {
  // Immediate (out-of-band) messages ride the wire's control lane: they
  // must arrive across nodes and be counted as records.
  constexpr int kImms = 16;
  std::atomic<int> got{0};
  RunConverse(SmpLoopback(4, 2), [&](int pe, int) {
    int h = CmiRegisterHandler([&got](void*) {
      if (++got == kImms) ConverseBroadcastExit();
    });
    if (pe == 0) {
      for (int i = 0; i < kImms; ++i) {
        void* m = CmiMakeMessage(h, &i, sizeof(i));
        CmiSyncSendImmediateAndFree(3, CmiMsgTotalSize(m), m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(got.load(), kImms);
}

TEST(TransportLoopback, StealSeedsCrossNodes) {
  // Cld kSteal seeds spawned on one node must take root across the whole
  // machine with steal-protocol traffic crossing the wire transparently.
  constexpr int kSeeds = 64;
  std::atomic<int> rooted{0};
  RunConverse(SmpLoopback(4, 2), [&](int pe, int) {
    CldSetStrategy(CldStrategy::kSteal);
    int h_done = CmiRegisterHandler([](void*) { ConverseBroadcastExit(); });
    int h_ack = CmiRegisterHandler([&, h_done](void*) {
      if (++rooted == kSeeds) {
        void* m = CmiMakeMessage(h_done, nullptr, 0);
        CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
      }
    });
    int h_seed = CmiRegisterHandler([h_ack](void* msg) {
      CldChargeTime(3.0);
      void* m = CmiMakeMessage(h_ack, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      CmiFree(msg);
    });
    if (pe == 0) {
      for (int i = 0; i < kSeeds; ++i) {
        void* m = CmiMakeMessage(h_seed, &i, sizeof(i));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(rooted.load(), kSeeds);
}

// ---------------------------------------------------------------------------
// Transport counters (satellite: CmiStats wire_* family)
// ---------------------------------------------------------------------------

TEST(TransportStats, InertOnSingleNodeMachines) {
  // Pin: a single-node machine has NO transport (MakeTransport returns
  // nullptr), so every wire counter stays exactly zero no matter how much
  // in-process traffic flows.  This is the in-proc zero-overhead contract.
  constexpr int kMsgs = 100;
  std::atomic<int> got{0};
  std::atomic<std::uint64_t> wire_total{0};
  RunConverse(4, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      if (++got == kMsgs + 4) ConverseBroadcastExit();
    });
    if (pe == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        void* m = CmiMakeMessage(h, &i, sizeof(i));
        CmiSyncSendAndFree(i % 4, CmiMsgTotalSize(m), m);
      }
      void* b = CmiMakeMessage(h, nullptr, 0);
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(b), b);
    }
    CsdScheduler(-1);
    const CmiStats s = CmiGetStats();
    wire_total += s.wire_frames_sent + s.wire_bytes_sent +
                  s.wire_bytes_received + s.wire_syscalls +
                  s.wire_reconnects + s.wire_dropped;
  });
  EXPECT_EQ(wire_total.load(), 0u);
}

TEST(TransportStats, SenderCountersMatchWireTraffic) {
  // Cross-node unicasts: the sending PE is charged frames + bytes, and
  // the node-level received-bytes mirror shows up in every local PE's
  // snapshot identically.
  constexpr int kMsgs = 20;
  constexpr std::size_t kBody = 256;
  std::atomic<int> got{0};
  std::atomic<std::uint64_t> frames0{0}, bytes0{0};
  std::vector<std::uint64_t> mirrored(4, ~0ull);
  MachineConfig cfg = SmpLoopback(4, 2);
  // Frames are the wire unit: with aggregation on these 20 small sends
  // batch into a schedule-dependent number of records. This test pins
  // the exact per-message accounting, so force the plain path even when
  // CONVERSE_AGG=1 is in the environment (the loopback and fuzz tests
  // cover the aggregated wire).
  cfg.aggregate_sends = 0;
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      if (++got == kMsgs) ConverseBroadcastExit();
    });
    if (pe == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        void* m = CmiAlloc(static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) +
                           kBody);
        CmiSetHandler(m, h);
        CmiSyncSendAndFree(2, CmiMsgTotalSize(m), m);  // node 0 -> node 1
      }
    }
    CsdScheduler(-1);
    const CmiStats s = CmiGetStats();
    if (pe == 0) {
      frames0 = s.wire_frames_sent;
      bytes0 = s.wire_bytes_sent;
    }
    mirrored[static_cast<std::size_t>(pe)] = s.wire_bytes_received;
  });
  EXPECT_EQ(frames0.load(), static_cast<std::uint64_t>(kMsgs));
  // Each record is a 16-byte header plus the full message image.
  EXPECT_GE(bytes0.load(),
            static_cast<std::uint64_t>(kMsgs) *
                (detail::kWireRecBytes + kBody));
  // Node-level mirror: identical on every PE of the machine.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(mirrored[0], mirrored[static_cast<std::size_t>(i)]);
}

// ---------------------------------------------------------------------------
// Sim-driven determinism + fault conservation (converse/transport.h)
// ---------------------------------------------------------------------------

TEST(TransportSim, TwoReplaysSameTraceHash) {
  // Acceptance criterion: the deterministic sim driving a socket-shaped
  // machine (nnodes == npes) produces the identical trace hash when the
  // same seed is replayed.
  transport::TransportFuzzParams p;
  p.seed = 2026;
  p.npes = 4;
  p.nnodes = 4;  // socket-shaped: every PE its own node
  p.actions = 24;
  const transport::TransportFuzzResult a = transport::RunTransportFuzzCase(p);
  const transport::TransportFuzzResult b = transport::RunTransportFuzzCase(p);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.report.trace_hash, b.report.trace_hash);
  EXPECT_NE(a.report.trace_hash, 0u);
  EXPECT_GT(a.wire_frames_sent, 0u);
}

TEST(TransportSim, SmpShapeIsAlsoDeterministic) {
  transport::TransportFuzzParams p;
  p.seed = 77;
  p.npes = 6;
  p.nnodes = 3;  // two PEs per node: SMP-node shape
  p.actions = 24;
  p.aggregate = true;  // frames as the wire unit
  const transport::TransportFuzzResult a = transport::RunTransportFuzzCase(p);
  const transport::TransportFuzzResult b = transport::RunTransportFuzzCase(p);
  ASSERT_TRUE(a.ok) << a.failure;
  EXPECT_EQ(a.report.trace_hash, b.report.trace_hash);
}

TEST(TransportFault, DisconnectedWireConservesMessages) {
  // Injected disconnects drop records; the conservation oracle inside
  // RunTransportFuzzCase (delivered == sent - dropped, payloads intact,
  // immediates reliable) must hold on every seed.
  for (unsigned long long seed : {11ull, 12ull, 13ull}) {
    transport::TransportFuzzParams p;
    p.seed = seed;
    p.npes = 6;
    p.nnodes = 3;
    p.actions = 24;
    p.disconnect_rate = 0.05;
    p.disconnect_lost = 3;
    const transport::TransportFuzzResult r = transport::RunTransportFuzzCase(p);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}

TEST(TransportFault, PlantedLossIsDetected) {
  // Self-test of the oracle itself: silently stealing one record (no
  // dropped-counter credit) MUST trip the conservation check.  If this
  // ever passes cleanly the oracle has gone blind.
  transport::TransportFuzzParams p;
  p.seed = 5;
  p.npes = 6;
  p.nnodes = 3;
  p.actions = 32;
  p.plant_lost = true;
  const transport::TransportFuzzResult r = transport::RunTransportFuzzCase(p);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

TEST(TransportFault, MinimizerShrinksFailingCase) {
  transport::TransportFuzzParams p;
  p.seed = 5;
  p.npes = 6;
  p.nnodes = 3;
  p.actions = 32;
  p.plant_lost = true;
  const transport::TransportFuzzParams small =
      transport::MinimizeTransport(p, 24);
  // The planted loss reproduces at any scale, so the minimizer must be
  // able to shrink the workload while keeping the failure.
  EXPECT_LE(small.actions, p.actions);
  EXPECT_LE(small.npes, p.npes);
  const transport::TransportFuzzResult r =
      transport::RunTransportFuzzCase(small);
  EXPECT_FALSE(r.ok);
  // And the replay line names the tool invocation for humans.
  const std::string replay = transport::FormatTransportReplay(small);
  EXPECT_NE(replay.find("--transport"), std::string::npos);
  EXPECT_NE(replay.find("--plant-lost"), std::string::npos);
}
