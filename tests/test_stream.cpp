// Cst aggregation layer and spanning-tree broadcast pipeline tests
// (converse/stream.h, src/core/stream.cpp).
#include "test_helpers.h"

#include <cstring>
#include <numeric>

#include "converse/util/spantree.h"

using namespace converse;

namespace {

MachineConfig AggConfig(int npes, int aggregate) {
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.aggregate_sends = aggregate;
  return cfg;
}

struct SeqWire {
  int seq;
};

}  // namespace

TEST(Stream, SmallSendsRoundTripAndBatch) {
  // A burst of small unicasts must arrive complete and in order, and the
  // sender's counters must show that they traveled inside frames.
  constexpr int kCount = 100;
  std::atomic<int> received{0};
  std::atomic<bool> order_ok{true};
  std::atomic<std::uint64_t> frames{0}, batched{0};
  RunConverse(AggConfig(2, 1), [&](int pe, int) {
    int next = 0;
    int h = CmiRegisterHandler([&](void* msg) {
      SeqWire w;
      std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
      if (w.seq != next++) order_ok = false;
      if (++received == kCount) ConverseBroadcastExit();
    });
    if (pe == 0) {
      ASSERT_TRUE(CmiAggActive());
      for (int i = 0; i < kCount; ++i) {
        SeqWire w{i};
        void* m = CmiMakeMessage(h, &w, sizeof(w));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      CmiFlush();
    }
    CsdScheduler(-1);
    if (pe == 0) {
      const CmiStats s = CmiGetStats();
      frames = s.agg_frames_sent;
      batched = s.agg_msgs_batched;
    }
  });
  EXPECT_EQ(received.load(), kCount);
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(batched.load(), static_cast<std::uint64_t>(kCount));
  // 100 messages at the default 32-per-frame cap: at least four frames,
  // far fewer than one per message.
  EXPECT_GE(frames.load(), 4u);
  EXPECT_LT(frames.load(), static_cast<std::uint64_t>(kCount));
}

TEST(Stream, FifoPreservedAcrossSmallLargeInterleave) {
  // Alternating aggregated (small) and bypass (large) messages to the same
  // destination must still arrive in send order: a large send chokes the
  // open frame out first.
  constexpr int kPairs = 40;
  std::atomic<int> received{0};
  std::atomic<bool> order_ok{true};
  RunConverse(AggConfig(2, 1), [&](int pe, int) {
    int next = 0;
    int h = CmiRegisterHandler([&](void* msg) {
      SeqWire w;
      std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
      if (w.seq != next++) order_ok = false;
      if (++received == 2 * kPairs) ConverseBroadcastExit();
    });
    if (pe == 0) {
      char big[900];
      std::memset(big, 0x5a, sizeof(big));
      for (int i = 0; i < kPairs; ++i) {
        SeqWire w{2 * i};
        void* small = CmiMakeMessage(h, &w, sizeof(w));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(small), small);
        w.seq = 2 * i + 1;
        std::memcpy(big, &w, sizeof(w));
        void* large = CmiMakeMessage(h, big, sizeof(big));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(large), large);
      }
      CmiFlush();
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(received.load(), 2 * kPairs);
  EXPECT_TRUE(order_ok.load());
}

TEST(Stream, LargeMessagesBypassAggregation) {
  std::atomic<int> received{0};
  std::atomic<std::uint64_t> batched{1};
  RunConverse(AggConfig(2, 1), [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      if (++received == 8) ConverseBroadcastExit();
    });
    if (pe == 0) {
      char big[600];
      std::memset(big, 0x33, sizeof(big));
      for (int i = 0; i < 8; ++i) {
        void* m = CmiMakeMessage(h, big, sizeof(big));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
    }
    CsdScheduler(-1);
    if (pe == 0) batched = CmiGetStats().agg_msgs_batched;
  });
  EXPECT_EQ(received.load(), 8);
  EXPECT_EQ(batched.load(), 0u);
}

TEST(Stream, ExplicitFlushReportsOpenFrames) {
  RunConverse(AggConfig(2, 1), [&](int pe, int) {
    int h = CmiRegisterHandler([](void*) { ConverseBroadcastExit(); });
    if (pe == 0) {
      EXPECT_EQ(CmiFlush(), 0);  // nothing open yet
      SeqWire w{7};
      void* m = CmiMakeMessage(h, &w, sizeof(w));
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      EXPECT_EQ(CmiFlush(), 1);  // the open frame to PE1
      EXPECT_EQ(CmiFlush(), 0);  // idempotent
    }
    CsdScheduler(-1);
  });
}

TEST(Stream, IdleSchedulerFlushesWithoutExplicitFlush) {
  // No CmiFlush anywhere: the frame must still go out when the sender's
  // scheduler blocks idle (WaitForNet is a flush point).
  std::atomic<int> received{0};
  RunConverse(AggConfig(2, 1), [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      ++received;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      SeqWire w{1};
      void* m = CmiMakeMessage(h, &w, sizeof(w));
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(received.load(), 1);
}

TEST(Stream, AggregationDisabledByConfigZero) {
  RunConverse(AggConfig(2, 0), [&](int pe, int) {
    if (pe == 0) {
      EXPECT_FALSE(CmiAggActive());
      EXPECT_EQ(CmiFlush(), 0);
    }
  });
}

TEST(Stream, BroadcastUsesSpanningTree) {
  // 8 PEs, branching 2: the root must perform exactly branching-factor
  // wrapper sends; the whole tree performs npes-1 (one per edge).  The
  // root's logical send count still reads as npes (broadcast-all).
  constexpr int kNpes = 8;
  std::vector<std::uint64_t> forwards(kNpes, 0);
  std::atomic<std::uint64_t> root_sends{0};
  std::atomic<int> received{0};
  MachineConfig cfg = AggConfig(kNpes, 0);
  cfg.spantree_branching = 2;
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) { ++received; });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
    }
    // Exactly one logical delivery per PE — no exit broadcast, which would
    // be a second tree broadcast and muddy the forward counters.
    CsdScheduler(1);
    const CmiStats s = CmiGetStats();
    forwards[static_cast<std::size_t>(pe)] = s.bcast_forwards;
    if (pe == 0) root_sends = s.msgs_sent;
  });
  EXPECT_EQ(received.load(), kNpes);
  EXPECT_EQ(forwards[0], 2u);  // root sends only branching-factor copies
  EXPECT_EQ(std::accumulate(forwards.begin(), forwards.end(), 0ull),
            static_cast<std::uint64_t>(kNpes - 1));
  EXPECT_EQ(root_sends.load(), static_cast<std::uint64_t>(kNpes));
}

TEST(Stream, AsyncBroadcastAllDefersUntilFlush) {
  // Satellite regression: CmiAsyncBroadcastAll with aggregation on returns
  // a genuinely deferred handle — incomplete until the carriers flush.
  constexpr int kNpes = 4;
  ctu::PerPeCounters hits(kNpes);
  std::atomic<int> received{0};
  std::atomic<bool> deferred{false}, completed{false};
  RunConverse(AggConfig(kNpes, 1), [&](int pe, int np) {
    int h = CmiRegisterHandler([&](void*) {
      hits.Add(CmiMyPe());
      if (++received == np) ConverseBroadcastExit();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CommHandle ca = CmiAsyncBroadcastAll(CmiMsgTotalSize(m), m);
      deferred = CmiAsyncMsgSent(ca) == 0;
      CmiFlush();
      completed = CmiAsyncMsgSent(ca) == 1;
      CmiReleaseCommHandle(ca);
      CmiFree(m);
    }
    CsdScheduler(-1);
  });
  EXPECT_TRUE(deferred.load());
  EXPECT_TRUE(completed.load());
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(hits.Get(i), 1);
}

namespace {

/// Receive one CmiVectorSend result and hand its payload bytes back.
std::vector<unsigned char> VectorRoundTrip(int aggregate) {
  std::vector<unsigned char> got;
  const unsigned char a[5] = {1, 2, 3, 4, 5};
  const unsigned char b[3] = {9, 8, 7};
  const unsigned char c[7] = {10, 20, 30, 40, 50, 60, 70};
  RunConverse(AggConfig(2, aggregate), [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      const auto* p = static_cast<const unsigned char*>(CmiMsgPayload(msg));
      got.assign(p, p + CmiMsgPayloadSize(msg));
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      const int sizes[3] = {5, 3, 7};
      const void* const data[3] = {a, b, c};
      CommHandle ch = CmiVectorSend(1, h, 3, sizes, data);
      CmiReleaseCommHandle(ch);
      CmiFlush();
    }
    CsdScheduler(-1);
  });
  return got;
}

}  // namespace

TEST(Stream, VectorSendGathersIdenticalBytesBothModes) {
  const std::vector<unsigned char> off = VectorRoundTrip(0);
  const std::vector<unsigned char> on = VectorRoundTrip(1);
  ASSERT_EQ(off.size(), 15u);
  EXPECT_EQ(off, on);
  const unsigned char want[15] = {1, 2,  3,  4,  5,  9,  8, 7,
                                  10, 20, 30, 40, 50, 60, 70};
  EXPECT_EQ(std::memcmp(off.data(), want, sizeof(want)), 0);
}

TEST(Stream, SubtreeSizeIsConsistentWithChildren) {
  for (int npes : {1, 2, 5, 8, 13}) {
    for (int branching : {2, 3, 4}) {
      for (int root : {0, npes / 2}) {
        util::SpanningTree t(npes, root, branching);
        EXPECT_EQ(t.SubtreeSize(t.root()), npes);
        for (int pe = 0; pe < npes; ++pe) {
          int sum = 1;
          for (int kid : t.Children(pe)) sum += t.SubtreeSize(kid);
          EXPECT_EQ(t.SubtreeSize(pe), sum)
              << "npes=" << npes << " b=" << branching << " pe=" << pe;
        }
      }
    }
  }
}

TEST(StreamSim, TraceHashDeterministicWithAggregation) {
  sim::FuzzParams p;
  p.seed = 2026;
  p.npes = 4;
  p.actions = 32;
  p.aggregate = true;
  const sim::FuzzResult r1 = sim::RunFuzzCase(p);
  const sim::FuzzResult r2 = sim::RunFuzzCase(p);
  ASSERT_TRUE(r1.ok) << r1.failure;
  ASSERT_TRUE(r2.ok) << r2.failure;
  EXPECT_EQ(r1.report.trace_hash, r2.report.trace_hash);
  EXPECT_GT(r1.report.agg_frames, 0u);
  EXPECT_GE(r1.report.agg_msgs_batched, r1.report.agg_frames);
}

TEST(StreamSim, AggregationChangesTheSchedule) {
  // Sanity that the aggregate toggle actually exercises a different wire
  // pattern: same seed, agg on vs off, different trace hashes.
  sim::FuzzParams p;
  p.seed = 2026;
  p.npes = 4;
  p.actions = 32;
  const sim::FuzzResult off = sim::RunFuzzCase(p);
  p.aggregate = true;
  const sim::FuzzResult on = sim::RunFuzzCase(p);
  ASSERT_TRUE(off.ok) << off.failure;
  ASSERT_TRUE(on.ok) << on.failure;
  EXPECT_NE(off.report.trace_hash, on.report.trace_hash);
  EXPECT_EQ(off.report.agg_frames, 0u);
}

TEST(StreamSim, FaultConservationSeesThroughFrames) {
  // Drops and duplicates of whole frames must be accounted as their
  // contained logical messages: the fuzz conservation oracle balances.
  for (std::uint64_t seed : {3u, 11u, 27u, 58u}) {
    sim::FuzzParams p;
    p.seed = seed;
    p.npes = 4;
    p.actions = 40;
    p.aggregate = true;
    p.faults.drop = 0.08;
    p.faults.dup = 0.08;
    p.faults.delay = 0.1;
    const sim::FuzzResult r = sim::RunFuzzCase(p);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}

TEST(StreamSim, AggregatedBurstsWithDropsStayConserved) {
  for (std::uint64_t seed : {5u, 21u}) {
    sim::FuzzParams p;
    p.seed = seed;
    p.npes = 3;
    p.actions = 48;
    p.aggregate = true;
    p.faults.drop = 0.15;
    const sim::FuzzResult r = sim::RunFuzzCase(p);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}
