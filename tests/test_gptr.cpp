// Global pointer tests (paper EMI, appendix §3.4): create/dereference,
// synchronous and asynchronous get/put, SPM-purity of the blocking wait.
#include "test_helpers.h"

#include <cstring>
#include <numeric>

using namespace converse;

namespace {

/// Each PE publishes a region and broadcasts its GlobalPtr under a
/// handler; returns the table of all PEs' pointers after a barrier.
std::vector<GlobalPtr> PublishRegions(void* region, unsigned size) {
  static thread_local std::vector<GlobalPtr> table;
  table.assign(static_cast<std::size_t>(CmiNumPes()), GlobalPtr{});
  int h = CmiRegisterHandler([](void* msg) {
    // payload: GlobalPtr
    GlobalPtr g;
    std::memcpy(&g, CmiMsgPayload(msg), sizeof(g));
    table[static_cast<std::size_t>(g.pe)] = g;
  });
  GlobalPtr mine;
  CmiGptrCreate(&mine, region, size);
  void* m = CmiMakeMessage(h, &mine, sizeof(mine));
  CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
  // Drain until every pointer arrived, then sync.
  while (std::any_of(table.begin(), table.end(),
                     [](const GlobalPtr& g) { return g.pe < 0; })) {
    CsdScheduler(1);
  }
  CmiBarrierBlocking();
  return table;
}

}  // namespace

TEST(Gptr, CreateAndDrefLocal) {
  RunConverse(1, [&](int, int) {
    int data[4] = {1, 2, 3, 4};
    GlobalPtr g;
    EXPECT_GT(CmiGptrCreate(&g, data, sizeof(data)), 0);
    EXPECT_EQ(g.pe, 0);
    EXPECT_EQ(g.size, sizeof(data));
    EXPECT_EQ(CmiGptrDref(&g), data);
  });
}

TEST(Gptr, LocalGetPutFastPath) {
  RunConverse(1, [&](int, int) {
    double region[8] = {};
    GlobalPtr g;
    CmiGptrCreate(&g, region, sizeof(region));
    const double vals[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_GT(CmiSyncPut(&g, vals, sizeof(vals)), 0);
    double back[8] = {};
    EXPECT_GT(CmiSyncGet(&g, back, sizeof(back)), 0);
    EXPECT_EQ(std::memcmp(back, vals, sizeof(vals)), 0);
  });
}

TEST(Gptr, RemoteSyncGetReadsOtherPeMemory) {
  constexpr int kNpes = 3;
  std::atomic<int> ok{0};
  RunConverse(kNpes, [&](int pe, int npes) {
    std::vector<int> region(16);
    std::iota(region.begin(), region.end(), pe * 100);
    auto table = PublishRegions(region.data(),
                                static_cast<unsigned>(region.size() * 4));
    const int right = (pe + 1) % npes;
    std::vector<int> got(16);
    CmiSyncGet(&table[static_cast<std::size_t>(right)], got.data(),
               static_cast<unsigned>(got.size() * 4));
    if (got[0] == right * 100 && got[15] == right * 100 + 15) ++ok;
    CmiBarrierBlocking();  // nobody frees regions while gets may be pending
  });
  EXPECT_EQ(ok.load(), kNpes);
}

TEST(Gptr, RemoteSyncPutWritesOtherPeMemory) {
  constexpr int kNpes = 2;
  std::atomic<bool> ok{false};
  RunConverse(kNpes, [&](int pe, int) {
    std::vector<long> region(4, 0);
    auto table = PublishRegions(region.data(),
                                static_cast<unsigned>(region.size() * 8));
    if (pe == 0) {
      const long vals[4] = {10, 20, 30, 40};
      CmiSyncPut(&table[1], vals, sizeof(vals));
    }
    CmiBarrierBlocking();  // put complete (acked) before the check
    if (pe == 1) {
      ok = region[0] == 10 && region[3] == 40;
    }
    CmiBarrierBlocking();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Gptr, AsyncGetCompletesViaHandle) {
  constexpr int kNpes = 2;
  std::atomic<bool> ok{false};
  RunConverse(kNpes, [&](int pe, int) {
    int region[2] = {pe * 7, pe * 7 + 1};
    auto table = PublishRegions(region, sizeof(region));
    if (pe == 0) {
      int got[2] = {};
      CommHandle h = CmiGet(&table[1], got, sizeof(got));
      CmiWaitHandle(h);
      ok = got[0] == 7 && got[1] == 8;
    }
    CmiBarrierBlocking();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Gptr, AsyncPutThenGetRoundTrip) {
  constexpr int kNpes = 2;
  std::atomic<bool> ok{false};
  RunConverse(kNpes, [&](int pe, int) {
    char region[8] = {};
    auto table = PublishRegions(region, sizeof(region));
    if (pe == 0) {
      CommHandle hp = CmiPut(&table[1], "ABCDEFG", 8);
      CmiWaitHandle(hp);
      char back[8] = {};
      CmiSyncGet(&table[1], back, 8);
      ok = std::memcmp(back, "ABCDEFG", 8) == 0;
    }
    CmiBarrierBlocking();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Gptr, SyncGetDoesNotRunUnrelatedHandlers) {
  // SPM purity: while PE0 blocks in CmiSyncGet, an unrelated message must
  // be buffered, not delivered (paper: "no side effects while blocked").
  constexpr int kNpes = 2;
  std::atomic<bool> side_effect_during_get{false};
  std::atomic<bool> in_sync_get{false};
  std::atomic<int> unrelated_runs{0};
  RunConverse(kNpes, [&](int pe, int) {
    int region[1] = {pe};
    int unrelated = CmiRegisterHandler([&](void*) {
      ++unrelated_runs;
      if (in_sync_get.load()) side_effect_during_get = true;
    });
    auto table = PublishRegions(region, sizeof(region));
    if (pe == 1) {
      // Send the unrelated message *before* serving PE0's get request:
      // FIFO delivery guarantees it sits in front of the reply in PE0's
      // queue, so SyncGet must skip over it.
      void* m = CmiMakeMessage(unrelated, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      CsdScheduler(1);  // serve the gptr request
    }
    if (pe == 0) {
      int got = -1;
      in_sync_get = true;
      CmiSyncGet(&table[1], &got, sizeof(got));
      in_sync_get = false;
      EXPECT_EQ(got, 1);
      CsdScheduleUntilIdle();  // now the unrelated handler runs
    }
    CmiBarrierBlocking();
  });
  EXPECT_FALSE(side_effect_during_get.load());
  EXPECT_EQ(unrelated_runs.load(), 1);
}
