// Service-runtime tests (converse/svc.h) under the deterministic sim:
// exact virtual-time latency quantiles, seed-stable traces, overload
// shedding with bounded admitted-request latency, CmiStats mirroring, and
// the conservation-oracle fuzz layer (clean seeds pass, the planted
// lost-reply bug is caught and shrunk).
#include "converse/svc.h"

#include <gtest/gtest.h>

#include <vector>

#include "converse/cmi.h"
#include "converse/machine.h"
#include "converse/netmodel.h"
#include "converse/sim.h"

using namespace converse;
using namespace converse::svc;

namespace {

struct RunOut {
  SimReport report;
  SvcPeStats totals;
  std::vector<SvcPeStats> per_pe;
  std::vector<CmiStats> cmi;  // per-PE snapshot at entry exit
};

RunOut RunService(const SvcConfig& cfg, const SvcLoad& load, int npes,
                  std::uint64_t sim_seed, const SimFaults* faults = nullptr,
                  const NetModel* model = nullptr) {
  RunOut out;
  Service s(cfg, npes);
  SimConfig sim;
  sim.seed = sim_seed;
  if (faults != nullptr) sim.faults = *faults;
  sim.report = &out.report;
  MachineConfig m;
  m.npes = npes;
  m.seed = sim_seed;
  m.sim = &sim;
  m.model = model;
  m.aggregate_sends = 0;
  out.cmi.resize(static_cast<std::size_t>(npes));
  RunConverse(m, [&](int pe, int) {
    s.Start();
    s.GenerateLoad(load);
    s.Serve();
    out.cmi[static_cast<std::size_t>(pe)] = CmiGetStats();
  });
  out.totals = s.Total();
  for (int pe = 0; pe < npes; ++pe) out.per_pe.push_back(s.PeStats(pe));
  return out;
}

}  // namespace

TEST(Service, ExactVirtualTimeLatencyWithoutQueueing) {
  // Offered rate three orders of magnitude below capacity, fixed service
  // time, uniform arrivals: no request ever waits, so every latency is
  // EXACTLY the 5 us service time in virtual nanoseconds — min, max, sum,
  // and every quantile.
  SvcConfig cfg;
  cfg.sessions = 64;
  cfg.workers = 2;
  cfg.service_time_us = 5.0;
  SvcLoad load;
  load.rate_per_pe = 1000.0;  // 1000 us gaps >> 5 us service
  load.requests_per_pe = 50;
  load.arrival = Arrival::kUniform;
  const RunOut r = RunService(cfg, load, 2, 42);

  const SvcPeStats& t = r.totals;
  EXPECT_TRUE(r.report.quiesced);
  EXPECT_EQ(t.requests_sent, 100u);
  EXPECT_EQ(t.requests_received, 100u);
  EXPECT_EQ(t.admitted, 100u);
  EXPECT_EQ(t.completed, 100u);
  EXPECT_EQ(t.replies_received, 100u);
  EXPECT_EQ(t.shed_queue + t.shed_deadline, 0u);
  EXPECT_EQ(t.timers_fired, t.timers_sent);

  ASSERT_EQ(t.latency_ns.Count(), 100u);
  EXPECT_EQ(t.latency_ns.Min(), 5000u);
  EXPECT_EQ(t.latency_ns.Max(), 5000u);
  EXPECT_EQ(t.latency_ns.Sum(), 500000u);
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(t.latency_ns.Quantile(q), 5000u) << "q=" << q;
  }
}

TEST(Service, NetModelLatencyIsExactPerOwnerLocality) {
  // Under a fixed-alpha model, a request to a remote owner costs exactly
  // request + reply network hops (2 * alpha) on top of the service time; a
  // request whose owner is the client's own PE costs the service time
  // alone (self-sends never cross the modeled network).  With npes = 2,
  // both kinds occur, so min and max pin both constants exactly.
  NetModel net;
  net.name = "svc-exact";
  net.alpha_us = 7.0;
  SvcConfig cfg;
  cfg.sessions = 64;
  cfg.workers = 2;
  cfg.service_time_us = 5.0;
  SvcLoad load;
  load.rate_per_pe = 500.0;
  load.requests_per_pe = 40;
  load.arrival = Arrival::kUniform;
  const RunOut r = RunService(cfg, load, 2, 3, nullptr, &net);

  const SvcPeStats& t = r.totals;
  ASSERT_EQ(t.latency_ns.Count(), 80u);
  EXPECT_EQ(t.latency_ns.Min(), 5000u);             // local owner
  EXPECT_EQ(t.latency_ns.Max(), 5000u + 14000u);    // remote: 2 * 7 us
  EXPECT_EQ(t.latency_ns.Quantile(1.0), 19000u);
}

TEST(Service, SameSeedSameTraceAndQuantiles) {
  SvcConfig cfg;
  cfg.sessions = 32;
  cfg.workers = 3;
  cfg.service_time_us = 4.0;
  cfg.exp_service = true;
  cfg.queue_cap = 8;
  SvcLoad load;
  load.rate_per_pe = 150000.0;
  load.requests_per_pe = 200;
  load.arrival = Arrival::kPoisson;
  load.seed = 9;
  const RunOut a = RunService(cfg, load, 3, 9);
  const RunOut b = RunService(cfg, load, 3, 9);

  EXPECT_EQ(a.report.trace_hash, b.report.trace_hash);
  EXPECT_EQ(a.report.events, b.report.events);
  EXPECT_EQ(a.report.final_virtual_us, b.report.final_virtual_us);
  EXPECT_EQ(a.totals.completed, b.totals.completed);
  EXPECT_EQ(a.totals.shed_queue, b.totals.shed_queue);
  EXPECT_EQ(a.totals.latency_ns.Count(), b.totals.latency_ns.Count());
  EXPECT_EQ(a.totals.latency_ns.Sum(), b.totals.latency_ns.Sum());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.totals.latency_ns.Quantile(q),
              b.totals.latency_ns.Quantile(q))
        << "q=" << q;
  }
  // A different schedule seed (same workload) is a different interleaving.
  const RunOut c = RunService(cfg, load, 3, 10);
  EXPECT_NE(a.report.trace_hash, c.report.trace_hash);
}

TEST(Service, OverloadShedsAtAdmissionAndBoundsAdmittedLatency) {
  // Offered load 2x capacity (10 us service, 2 workers => 200k/s per PE;
  // offered 400k/s per PE).  The queue cap must shed the excess at
  // admission, and because an admitted request can have at most
  // queue_cap - 1 requests queued ahead plus `workers` in service, its
  // latency is bounded by a small multiple of the service time — overload
  // degrades throughput, never admitted-request tails.
  SvcConfig cfg;
  cfg.sessions = 64;
  cfg.workers = 2;
  cfg.service_time_us = 10.0;
  cfg.queue_cap = 4;
  SvcLoad load;
  load.rate_per_pe = 400000.0;
  load.requests_per_pe = 400;
  load.arrival = Arrival::kPoisson;
  load.seed = 5;
  const RunOut r = RunService(cfg, load, 2, 5);

  const SvcPeStats& t = r.totals;
  EXPECT_TRUE(r.report.quiesced);
  EXPECT_EQ(t.requests_received, 800u);
  EXPECT_EQ(t.requests_received, t.admitted + t.shed_queue);
  EXPECT_EQ(t.admitted, t.completed + t.shed_deadline);
  EXPECT_EQ(t.shed_deadline, 0u);  // no deadline configured
  EXPECT_GT(t.shed_queue, 0u);     // 2x overload must shed
  EXPECT_EQ(t.replies_received, t.completed);
  EXPECT_EQ(t.shed_notices_received, t.shed_queue);
  // Wait bound: (queue_cap - 1) queued ahead + workers in service, drained
  // by `workers` threads, plus own service time.
  const std::uint64_t bound_ns =
      static_cast<std::uint64_t>(cfg.service_time_us * 1000.0) *
      ((cfg.queue_cap - 1 + cfg.workers) / cfg.workers + 2);
  EXPECT_LE(t.latency_ns.Max(), bound_ns);
  EXPECT_LE(t.latency_ns.Quantile(0.99), bound_ns);
}

TEST(Service, CmiStatsMirrorServiceCounters) {
  SvcConfig cfg;
  cfg.sessions = 48;
  cfg.workers = 2;
  cfg.service_time_us = 6.0;
  cfg.queue_cap = 3;
  SvcLoad load;
  load.rate_per_pe = 300000.0;
  load.requests_per_pe = 150;
  load.seed = 2;
  const RunOut r = RunService(cfg, load, 3, 2);

  std::uint64_t admitted = 0, shed = 0, completed = 0;
  for (const CmiStats& s : r.cmi) {
    admitted += s.svc_admitted;
    shed += s.svc_shed;
    completed += s.svc_completed;
  }
  EXPECT_EQ(admitted, r.totals.admitted);
  EXPECT_EQ(shed, r.totals.shed_queue + r.totals.shed_deadline);
  EXPECT_EQ(completed, r.totals.completed);
  // Per-PE breakdown agrees too, not just the totals: each PE's CmiStats
  // mirror exactly its own slot of the service counters.
  for (std::size_t pe = 0; pe < 3; ++pe) {
    const CmiStats& s = r.cmi[pe];
    const SvcPeStats& p = r.per_pe[pe];
    EXPECT_EQ(s.svc_admitted, p.admitted) << "pe " << pe;
    EXPECT_EQ(s.svc_shed, p.shed_queue + p.shed_deadline) << "pe " << pe;
    EXPECT_EQ(s.svc_completed, p.completed) << "pe " << pe;
  }
}

TEST(Service, DeadlineShedsStaleRequestsAtDequeue) {
  // Deadline shorter than the queueing delay under overload: requests that
  // sat too long are shed at dequeue with a notice, and everything still
  // balances.
  SvcConfig cfg;
  cfg.sessions = 32;
  cfg.workers = 1;
  cfg.service_time_us = 10.0;
  cfg.queue_cap = 16;
  cfg.deadline_us = 25.0;
  SvcLoad load;
  load.rate_per_pe = 300000.0;
  load.requests_per_pe = 200;
  load.arrival = Arrival::kBurst;
  load.burst = 8;
  load.seed = 4;
  const RunOut r = RunService(cfg, load, 2, 4);

  const SvcPeStats& t = r.totals;
  EXPECT_GT(t.shed_deadline, 0u);
  EXPECT_EQ(t.requests_received, t.admitted + t.shed_queue);
  EXPECT_EQ(t.admitted, t.completed + t.shed_deadline);
  EXPECT_EQ(t.shed_notices_received, t.shed_queue + t.shed_deadline);
  // No completed request can have exceeded the deadline: it would have
  // been shed at dequeue instead.
  EXPECT_LE(t.latency_ns.Max(),
            static_cast<std::uint64_t>(
                (cfg.deadline_us + cfg.service_time_us) * 1000.0));
}

// ---------------------------------------------------------------------------
// The conservation-oracle fuzz layer (tools/simfuzz --service).
// ---------------------------------------------------------------------------

TEST(ServiceFuzz, CleanSeedsSatisfyAllOracles) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SvcFuzzParams p;
    p.seed = seed;
    const SvcFuzzResult r = RunSvcFuzzCase(p);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    EXPECT_TRUE(r.report.quiesced);
    EXPECT_GT(r.totals.completed, 0u);
  }
}

TEST(ServiceFuzz, FaultedSeedsStillConserve) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SvcFuzzParams p;
    p.seed = seed;
    p.faults.drop = 0.08;
    p.faults.dup = 0.05;
    p.faults.delay = 0.1;
    p.faults.reorder = 0.05;
    const SvcFuzzResult r = RunSvcFuzzCase(p);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    // Replay determinism under faults.
    const SvcFuzzResult again = RunSvcFuzzCase(p);
    EXPECT_EQ(r.report.trace_hash, again.report.trace_hash);
    EXPECT_EQ(r.totals.completed, again.totals.completed);
  }
}

TEST(ServiceFuzz, PlantedLostReplyIsCaughtAndShrunk) {
  SvcFuzzParams p;
  p.seed = 7;
  p.plant_lost_reply = true;
  const SvcFuzzResult r = RunSvcFuzzCase(p);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("conservation"), std::string::npos) << r.failure;

  const SvcFuzzParams small = MinimizeSvc(p);
  EXPECT_FALSE(RunSvcFuzzCase(small).ok);
  EXPECT_LE(small.requests_per_pe, p.requests_per_pe);
  EXPECT_LE(small.npes, p.npes);
  // The replay line round-trips the shrunk parameters.
  const std::string replay = FormatSvcReplay(small);
  EXPECT_NE(replay.find("--service"), std::string::npos);
  EXPECT_NE(replay.find("--plant-lost-reply"), std::string::npos);
}

TEST(ServiceFuzz, PlantedBugCaughtEvenUnderFaults) {
  // The total-conservation oracle corrects for injected drops/dups using
  // the injector's exact counts, so a silently lost reply is still an
  // imbalance the oracle sees.
  SvcFuzzParams p;
  p.seed = 3;
  p.plant_lost_reply = true;
  p.faults.drop = 0.05;
  p.faults.delay = 0.1;
  const SvcFuzzResult r = RunSvcFuzzCase(p);
  EXPECT_FALSE(r.ok);
}
