// Interoperability tests — the point of the whole framework (paper §4):
// modules written in different paradigms coexisting in one program under
// the unified scheduler.
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/charm.h"
#include "converse/langs/cnx.h"
#include "converse/langs/cpvm.h"
#include "converse/langs/mdt.h"
#include "converse/langs/sm.h"
#include "converse/langs/tsm.h"

using namespace converse;

TEST(Interop, SmAndNxTagSpacesAreIndependent) {
  // Two "libraries" use the same tag number in different languages; the
  // messages must not cross because each runtime has its own handler.
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const int a = 1;
      sm::SmSend(1, 7, &a, sizeof(a));
      const int b = 2;
      nx::csend(7, &b, sizeof(b), 1);
      return;
    }
    int v = 0;
    nx::crecv(7, &v, sizeof(v));
    const bool nx_got_nx = v == 2;
    sm::SmRecv(&v, sizeof(v), 7);
    ok = nx_got_nx && v == 1;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Interop, SpmModuleInvokesMessageDrivenModule) {
  // The paper's §3.1.2 footnote scenario: an SPM module deposits messages
  // for a concurrent (charm) module, then explicitly invokes the scheduler
  // to let the concurrent computation run, and picks up the result by
  // function call afterwards.
  std::atomic<long> result{0};
  RunConverse(2, [&](int pe, int) {
    struct Summer : charm::Chare {
      long total = 0;
      Summer(const void*, std::size_t) {}
      void Add(const void* d, std::size_t) {
        long v;
        std::memcpy(&v, d, sizeof(v));
        total += v;
      }
    };
    const int type = charm::RegisterChareType<Summer>("summer");
    const int add = charm::RegisterEntryMethod<Summer>(&Summer::Add);
    if (pe == 0) {
      // --- SPM phase: local chare gets work deposited ---
      charm::CreateChare(type, nullptr, 0, /*on_pe=*/0);
      CsdScheduler(1);  // construct
      const charm::ChareId id{0, 1};
      for (long v = 1; v <= 4; ++v) {
        charm::SendToChare(id, add, &v, sizeof(v));
      }
      // --- explicitly relinquish control to the scheduler (paper!) ---
      CsdScheduler(4);
      // --- back in the SPM module: read the result synchronously ---
      // The chare lives on this PE; in Converse terms the SPM module gets
      // the result "passed by function calls" — we model that by reading
      // through the runtime's local table via an entry invocation that
      // writes into SPM-owned memory.
      const int read = charm::RegisterEntry(
          [&result](charm::Chare* c, const void*, std::size_t) {
            result = static_cast<Summer*>(c)->total;
          });
      charm::SendToChare(id, read, nullptr, 0);
      CsdScheduler(1);
      ConverseBroadcastExit();
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(result.load(), 10);
}

TEST(Interop, CharmModuleUsesPvmModule) {
  // The NAMD scenario in miniature (paper §4): a Charm-style driver on PE0
  // invokes a PVM-style far-field module that runs SPMD across all PEs,
  // then consumes its result.
  std::atomic<double> energy{0};
  RunConverse(3, [&](int pe, int npes) {
    // --- The "PVM FMA module": an SPMD worker on every PE != 0 ---
    // Workers wait for a request (tag 1: n doubles), compute a partial
    // "far-field" sum, and reply (tag 2).
    if (pe != 0) {
      using namespace converse::pvm;
      pvm_recv(0, 1);
      double xs[8];
      pvm_upkdouble(xs, 8);
      double partial = 0;
      for (int i = pe - 1; i < 8; i += npes - 1) partial += xs[i] * xs[i];
      pvm_initsend();
      pvm_pkdouble(&partial, 1);
      pvm_send(0, 2);
      CsdScheduler(-1);  // stay alive for the exit broadcast
      return;
    }
    // --- The "Charm NAMD driver" on PE0 ---
    struct Driver : charm::Chare {
      Driver(const void*, std::size_t) {}
      void Run(const void* d, std::size_t) {
        std::atomic<double>* out;
        std::memcpy(&out, d, sizeof(out));
        using namespace converse::pvm;
        double xs[8];
        for (int i = 0; i < 8; ++i) xs[i] = i + 1;
        // Call into the PVM module: broadcast work...
        for (int w = 1; w < CmiNumPes(); ++w) {
          pvm_initsend();
          pvm_pkdouble(xs, 8);
          pvm_send(w, 1);
        }
        // ...and collect replies SPM-style from inside the entry method.
        double total = 0;
        for (int w = 1; w < CmiNumPes(); ++w) {
          pvm_recv(PvmAnyTid, 2);
          double partial = 0;
          pvm_upkdouble(&partial, 1);
          total += partial;
        }
        *out = total;
        ConverseBroadcastExit();
      }
    };
    const int type = charm::RegisterChareType<Driver>("driver");
    const int run = charm::RegisterEntryMethod<Driver>(&Driver::Run);
    charm::CreateChare(type, nullptr, 0, /*on_pe=*/0);
    auto* eptr = &energy;
    charm::SendToChare(charm::ChareId{0, 1}, run, &eptr, sizeof(eptr));
    CsdScheduler(-1);
  });
  // sum of squares 1..8 = 204
  EXPECT_DOUBLE_EQ(energy.load(), 204.0);
}

TEST(Interop, ThreadsAndHandlersShareTheScheduler) {
  // tSM threads, raw handlers, and charm entries all make progress under
  // one CsdScheduler loop on the same PE.
  std::atomic<int> pieces{0};
  RunConverse(2, [&](int pe, int) {
    struct Obj : charm::Chare {
      Obj(const void*, std::size_t) {}
    };
    const int type = charm::RegisterChareType<Obj>("obj");
    // Atomic: every PE thread stores the (identical) pointer concurrently.
    static std::atomic<std::atomic<int>*> pp;
    pp.store(&pieces);
    const int poke = charm::RegisterEntry(
        [](charm::Chare*, const void*, std::size_t) {
          if (pp.load()->fetch_add(1) + 1 == 3) ConverseBroadcastExit();
        });
    int raw = CmiRegisterHandler([&](void*) {
      if (pieces.fetch_add(1) + 1 == 3) ConverseBroadcastExit();
    });
    if (pe == 0) {
      // Piece 1: a tSM thread that waits for a tagged message.
      tsm::tSMCreate([&] {
        char c;
        tsm::tSMReceive(5, &c, 1);
        if (pieces.fetch_add(1) + 1 == 3) ConverseBroadcastExit();
      });
      // Piece 2: a charm chare.
      charm::CreateChare(type, nullptr, 0, 0);
      charm::SendToChare(charm::ChareId{0, 1}, poke, nullptr, 0);
    } else {
      const char c = 'x';
      tsm::tSMSend(0, 5, &c, 1);
      // Piece 3: a raw generalized message.
      void* m = CmiMakeMessage(raw, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(pieces.load(), 3);
}

TEST(Interop, MdtThreadDrivesSmModule) {
  // A coordination-language thread sends SM messages to a classic SPMD
  // worker and gets an answer back into the thread world.
  std::atomic<long> got{0};
  RunConverse(2, [&](int pe, int) {
    using namespace converse::mdt;
    const int fn = MdtRegister([&](const void*, std::size_t) {
      const long q = 10;
      sm::SmSend(1, 1, &q, sizeof(q));
      long a = 0;
      sm::SmRecv(&a, sizeof(a), 2);  // thread-mode receive
      got = a;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      MdtSpawnLocal(fn, nullptr, 0);
      CsdScheduler(-1);
    } else {
      long q = 0;
      sm::SmRecv(&q, sizeof(q), 1);  // SPM-mode receive
      q *= 7;
      sm::SmSend(0, 2, &q, sizeof(q));
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(got.load(), 70);
}

TEST(Interop, PrioritizedWorkOvertakesBulkWork) {
  // §2.3 motivation: a latency-critical message jumps a deep queue of
  // bulk-work messages.
  std::vector<int> completion_order;
  RunConverse(1, [&](int, int) {
    int bulk = CmiRegisterHandler([&](void* msg) {
      completion_order.push_back(0);
      CmiFree(msg);
    });
    int critical = CmiRegisterHandler([&](void* msg) {
      completion_order.push_back(1);
      CmiFree(msg);
    });
    for (int i = 0; i < 10; ++i) {
      CsdEnqueue(CmiMakeMessage(bulk, nullptr, 0));
    }
    CsdEnqueueIntPrio(CmiMakeMessage(critical, nullptr, 0), -100);
    CsdScheduler(11);
  });
  ASSERT_EQ(completion_order.size(), 11u);
  EXPECT_EQ(completion_order.front(), 1);  // critical ran first
}
