// Whole-system test: every paradigm of the paper in one traced program on
// a latency-modeled machine — SPM collectives, message-driven chares,
// tSM threads, PVM-style workers, seed balancing, quiescence — finishing
// with a trace dump parsed by the §3.3.2 tool.
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/charm.h"
#include "converse/langs/cpvm.h"
#include "converse/langs/tsm.h"
#include "converse/trace_report.h"

using namespace converse;

TEST(System, AllParadigmsOneTracedMachine) {
  NetModel model;
  model.name = "system";
  model.alpha_us = 300;
  model.per_byte_us = 0.01;
  MachineConfig cfg;
  cfg.npes = 3;
  cfg.model = &model;

  std::atomic<long> chare_work{0};
  std::atomic<long> thread_work{0};
  std::atomic<double> pvm_result{0};
  std::atomic<bool> report_ok{false};

  RunConverse(cfg, [&](int pe, int np) {
    TraceBegin(TraceMode::kLog);
    CldSetStrategy(CldStrategy::kRandom);

    // Paradigm 1: message-driven chares spawned through the seed balancer.
    struct Worker : charm::Chare {
      Worker(const void*, std::size_t) {}
    };
    // Atomic: every PE thread stores the (identical) pointer concurrently.
    static std::atomic<std::atomic<long>*> cw;
    cw.store(&chare_work);
    const int type = charm::RegisterChare(
        "worker", [](const void*, std::size_t) -> charm::Chare* {
          cw.load()->fetch_add(1);
          return new Worker(nullptr, 0);
        });

    // Paradigm 2: a thread per PE doing tagged messaging round a ring.
    tsm::tSMCreate([&, pe, np] {
      long token = 0;
      if (pe == 0) {
        token = 7;
        tsm::tSMSend(1 % np, 40, &token, sizeof(token));
        tsm::tSMReceive(40, &token, sizeof(token));
        thread_work = token;
      } else {
        tsm::tSMReceive(40, &token, sizeof(token));
        token += 7;
        tsm::tSMSend((pe + 1) % np, 40, &token, sizeof(token));
      }
    });

    // Paradigm 3 (SPM): a blocking collective everyone joins.
    const double contribution = 1.5 * (pe + 1);
    const double total = CmiAllReduceF64(contribution, CmiReducerSumF64());
    EXPECT_DOUBLE_EQ(total, 1.5 * (1 + 2 + 3));

    // Paradigm 4: PVM-style work farmed from PE0's chare seeds + QD end.
    if (pe == 0) {
      for (int i = 0; i < 12; ++i) charm::CreateChare(type, nullptr, 0);
      using namespace converse::pvm;
      for (int w = 1; w < np; ++w) {
        pvm_initsend();
        const double x = w * 0.5;
        pvm_pkdouble(&x, 1);
        pvm_send(w, 50);
      }
      double acc = 0;
      for (int w = 1; w < np; ++w) {
        pvm_recv(PvmAnyTid, 51);
        double r = 0;
        pvm_upkdouble(&r, 1);
        acc += r;
      }
      pvm_result = acc;
      charm::StartQuiescence([] { ConverseBroadcastExit(); });
    } else {
      using namespace converse::pvm;
      pvm_recv(0, 50);
      double x = 0;
      pvm_upkdouble(&x, 1);
      x *= 10;
      pvm_initsend();
      pvm_pkdouble(&x, 1);
      pvm_send(0, 51);
    }
    CsdScheduler(-1);

    // Tooling: dump this PE's trace and parse it back.
    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    TraceDump(mem);
    std::fclose(mem);
    TraceEnd();
    std::FILE* in = fmemopen(buf, len, "r");
    const auto rep = tracetool::ParseTrace(in);
    std::fclose(in);
    free(buf);
    if (pe == 0) {
      report_ok = rep.sends > 0 && rep.records > 10 && rep.span_us > 0;
    }
  });

  EXPECT_EQ(chare_work.load(), 12);
  EXPECT_EQ(thread_work.load(), 7 + 7 * 2);  // token grew at PEs 1 and 2
  EXPECT_DOUBLE_EQ(pvm_result.load(), (0.5 + 1.0) * 10);
  EXPECT_TRUE(report_ok.load());
}
