// Language runtimes under the timed-delivery machine: the latency model
// must be transparent to every layer built on the MMI.  All tests run on
// the deterministic simulation backend, so the modeled latencies are
// virtual time and nothing here waits on the wall clock.
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/charm.h"
#include "converse/langs/cpvm.h"
#include "converse/langs/sm.h"
#include "converse/langs/tsm.h"

using namespace converse;

namespace {

MachineConfig LaggyConfig(int npes, NetModel* model, SimConfig* sim) {
  model->name = "laggy";
  model->alpha_us = 1500;
  model->per_byte_us = 0.02;
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.model = model;
  cfg.sim = sim;
  return cfg;
}

}  // namespace

TEST(NetSimLangs, SmPingPongUnderLatency) {
  NetModel model;
  SimConfig sim;
  const auto cfg = LaggyConfig(2, &model, &sim);
  std::atomic<long> final{0};
  RunConverse(cfg, [&](int pe, int) {
    long v = 0;
    if (pe == 0) {
      v = 5;
      sm::SmSend(1, 1, &v, sizeof(v));
      sm::SmRecv(&v, sizeof(v), 2);
      final = v;
    } else {
      sm::SmRecv(&v, sizeof(v), 1);
      v *= 3;
      sm::SmSend(0, 2, &v, sizeof(v));
    }
  });
  EXPECT_EQ(final.load(), 15);
}

TEST(NetSimLangs, PvmSpmWorkflowUnderLatency) {
  NetModel model;
  SimConfig sim;
  const auto cfg = LaggyConfig(3, &model, &sim);
  std::atomic<long> total{0};
  RunConverse(cfg, [&](int pe, int np) {
    using namespace converse::pvm;
    if (pe == 0) {
      long acc = 0;
      for (int w = 1; w < np; ++w) {
        pvm_recv(PvmAnyTid, 4);
        long v = 0;
        pvm_upklong(&v, 1);
        acc += v;
      }
      total = acc;
      return;
    }
    pvm_initsend();
    const long v = pe * 11;
    pvm_pklong(&v, 1);
    pvm_send(0, 4);
  });
  EXPECT_EQ(total.load(), 11 + 22);
}

TEST(NetSimLangs, CharmQuiescenceUnderLatency) {
  NetModel model;
  SimConfig sim;
  const auto cfg = LaggyConfig(2, &model, &sim);
  std::atomic<int> constructed{0};
  RunConverse(cfg, [&](int pe, int) {
    struct W : charm::Chare {
      W(const void*, std::size_t) {}
    };
    // Atomic: every PE thread stores the (identical) pointer concurrently.
    static std::atomic<std::atomic<int>*> cp;
    cp.store(&constructed);
    const int type =
        charm::RegisterChare("w", [](const void*, std::size_t) -> charm::Chare* {
          cp.load()->fetch_add(1);
          return new W(nullptr, 0);
        });
    if (pe == 0) {
      for (int i = 0; i < 8; ++i) charm::CreateChare(type, nullptr, 0, 1);
      charm::StartQuiescence([&] {
        EXPECT_EQ(constructed.load(), 8);
        ConverseBroadcastExit();
      });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(constructed.load(), 8);
}

TEST(NetSimLangs, ThreadedTsmRingUnderLatency) {
  NetModel model;
  SimConfig sim;
  const auto cfg = LaggyConfig(3, &model, &sim);
  std::atomic<long> final{0};
  RunConverse(cfg, [&](int pe, int np) {
    tsm::tSMCreate([&, pe, np] {
      if (pe == 0) {
        long token = 1;
        tsm::tSMSend(1, 9, &token, sizeof(token));
        tsm::tSMReceive(9, &token, sizeof(token));
        final = token;
        ConverseBroadcastExit();
      } else {
        long token = 0;
        tsm::tSMReceive(9, &token, sizeof(token));
        token += 10;
        tsm::tSMSend((pe + 1) % np, 9, &token, sizeof(token));
      }
    });
    CsdScheduler(-1);
  });
  EXPECT_EQ(final.load(), 21);
}

TEST(NetSimLangs, ScatterAdvanceReceiveUnderLatency) {
  NetModel model;
  SimConfig sim;
  const auto cfg = LaggyConfig(2, &model, &sim);
  std::atomic<bool> ok{false};
  RunConverse(cfg, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) { FAIL(); });
    int notify = CmiRegisterHandler([&](void* msg) {
      CmiFree(msg);
      ConverseBroadcastExit();
    });
    std::uint32_t sink = 0;
    double payload_sink[2] = {};
    if (pe == 0) {
      CmiScatterRegister(
          0, 0x5150,
          {{0, sizeof(sink), &sink},
           {sizeof(std::uint32_t) + 4, sizeof(payload_sink), payload_sink}},
          notify);
    } else {
      struct {
        std::uint32_t key;
        std::uint32_t pad;
        double vals[2];
      } wire{0x5150, 0, {1.5, -2.5}};
      void* m = CmiMakeMessage(never, &wire, sizeof(wire));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
    if (pe == 0) {
      ok = sink == 0x5150 && payload_sink[0] == 1.5 &&
           payload_sink[1] == -2.5;
    }
  });
  EXPECT_TRUE(ok.load());
}
