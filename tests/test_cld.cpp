// Seed load balancer tests (paper §3.3.1): every strategy must deliver
// every seed exactly once; distribution properties vary by strategy.
#include "test_helpers.h"

#include <cstring>

using namespace converse;

namespace {

/// PE0 creates `nseeds` seeds; each seed records the PE it took root on.
/// Returns per-PE placement counts.
void RunSeedSpray(CldStrategy strat, int npes, int nseeds,
                  ctu::PerPeCounters* placed) {
  std::atomic<int> done{0};
  RunConverse(npes, [&](int pe, int n) {
    (void)n;
    CldSetStrategy(strat);
    int work = CmiRegisterHandler([&, pe](void* msg) {
      placed->Add(pe);
      CmiFree(msg);  // placed seeds arrive via the scheduler queue
      if (done.fetch_add(1) + 1 == nseeds) ConverseBroadcastExit();
    });
    if (pe == 0) {
      for (int i = 0; i < nseeds; ++i) {
        void* m = CmiMakeMessage(work, &i, sizeof(i));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);
  });
}

}  // namespace

class CldStrategies : public ::testing::TestWithParam<CldStrategy> {};

TEST_P(CldStrategies, EverySeedPlacedExactlyOnce) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 200;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(GetParam(), kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CldStrategies,
                         ::testing::Values(CldStrategy::kLocal,
                                           CldStrategy::kRandom,
                                           CldStrategy::kNeighbor,
                                           CldStrategy::kCentral),
                         [](const auto& info) {
                           switch (info.param) {
                             case CldStrategy::kLocal: return "Local";
                             case CldStrategy::kRandom: return "Random";
                             case CldStrategy::kNeighbor: return "Neighbor";
                             case CldStrategy::kCentral: return "Central";
                           }
                           return "?";
                         });

TEST(Cld, LocalStrategyKeepsEverythingHome) {
  constexpr int kNpes = 3;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kLocal, kNpes, 90, &placed);
  EXPECT_EQ(placed.Get(0), 90);
  EXPECT_EQ(placed.Get(1), 0);
  EXPECT_EQ(placed.Get(2), 0);
}

TEST(Cld, RandomStrategySpreadsWork) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 400;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kRandom, kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
  for (int i = 0; i < kNpes; ++i) {
    // Uniform spray: each PE gets ~100; allow wide slack (binomial tail).
    EXPECT_GT(placed.Get(i), 50) << "pe " << i;
    EXPECT_LT(placed.Get(i), 170) << "pe " << i;
  }
}

TEST(Cld, CentralStrategyBalancesOutstandingWork) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 400;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kCentral, kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
  for (int i = 0; i < kNpes; ++i) {
    // The dispatcher balances outstanding counts: every PE gets a share.
    EXPECT_GT(placed.Get(i), kSeeds / kNpes / 4) << "pe " << i;
  }
}

TEST(Cld, NeighborStrategyRelievesHotSpot) {
  // All seeds originate on PE0 which is kept artificially busy; with load
  // diffusion a nontrivial share must migrate to the ring neighbors.
  constexpr int kNpes = 4;
  constexpr int kSeeds = 256;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kNeighbor, kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
  EXPECT_LT(placed.Get(0), kSeeds)
      << "diffusion moved nothing off the hot PE";
}

TEST(Cld, PrioritizedSeedsKeepPriorityAtPlacement) {
  // Two seeds placed locally with priorities: the higher-priority (more
  // negative) one must run first even though enqueued second.
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    CldSetStrategy(CldStrategy::kLocal);
    int work = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      order.push_back(v);
      CmiFree(msg);
    });
    int a = 1, b = 2;
    void* ma = CmiMakeMessage(work, &a, sizeof(a));
    CldEnqueuePrio(ma, 10);
    void* mb = CmiMakeMessage(work, &b, sizeof(b));
    CldEnqueuePrio(mb, -10);
    CsdScheduler(2);
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Cld, SeedsFromMultipleOriginsAllPlaced) {
  constexpr int kNpes = 3;
  constexpr int kSeedsPerPe = 50;
  ctu::PerPeCounters placed(kNpes);
  std::atomic<int> done{0};
  RunConverse(kNpes, [&](int pe, int n) {
    CldSetStrategy(CldStrategy::kRandom);
    int work = CmiRegisterHandler([&, pe, n](void* msg) {
      placed.Add(pe);
      CmiFree(msg);
      if (done.fetch_add(1) + 1 == kSeedsPerPe * n) {
        ConverseBroadcastExit();
      }
    });
    for (int i = 0; i < kSeedsPerPe; ++i) {
      void* m = CmiMakeMessage(work, &i, sizeof(i));
      CldEnqueue(m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(placed.Total(), kNpes * kSeedsPerPe);
}

TEST(Cld, PayloadSurvivesFloating) {
  // Seed payloads must arrive intact after forwarding hops.
  constexpr int kNpes = 4;
  constexpr int kSeeds = 64;
  std::atomic<int> correct{0};
  RunConverse(kNpes, [&](int pe, int) {
    (void)pe;
    CldSetStrategy(CldStrategy::kCentral);  // guarantees >= 1 hop usually
    int work = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      if (v >= 1000 && v < 1000 + kSeeds) ++correct;
      CmiFree(msg);
      if (correct.load() == kSeeds) ConverseBroadcastExit();
    });
    if (CmiMyPe() == 1) {  // not the dispatcher: forces a hop to PE0
      for (int i = 0; i < kSeeds; ++i) {
        int payload = 1000 + i;
        void* m = CmiMakeMessage(work, &payload, sizeof(payload));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(correct.load(), kSeeds);
}

TEST(Cld, DiagnosticsCount) {
  RunConverse(1, [&](int, int) {
    CldSetStrategy(CldStrategy::kLocal);
    int work = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    for (int i = 0; i < 5; ++i) {
      CldEnqueue(CmiMakeMessage(work, nullptr, 0));
    }
    EXPECT_EQ(CldSeedsPlaced(), 5u);
    CsdScheduler(5);
  });
}
