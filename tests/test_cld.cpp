// Seed load balancer tests (paper §3.3.1): every strategy — the four
// legacy ones and the two adaptive ones (kSteal, kPeriodic) — must deliver
// every seed exactly once, preserve priorities and FIFO order at placement,
// and keep its hop accounting within the strategy's bound.  Distribution
// properties and protocol counters vary by strategy and get their own
// tests.  The million-seed skewed workloads live in test_ldb_stress.cpp.
#include "test_helpers.h"

#include <cstring>

using namespace converse;

namespace {

const char* StrategyName(CldStrategy s) {
  switch (s) {
    case CldStrategy::kLocal: return "Local";
    case CldStrategy::kRandom: return "Random";
    case CldStrategy::kNeighbor: return "Neighbor";
    case CldStrategy::kCentral: return "Central";
    case CldStrategy::kSteal: return "Steal";
    case CldStrategy::kPeriodic: return "Periodic";
  }
  return "?";
}

constexpr CldStrategy kAllStrategies[] = {
    CldStrategy::kLocal,   CldStrategy::kRandom, CldStrategy::kNeighbor,
    CldStrategy::kCentral, CldStrategy::kSteal,  CldStrategy::kPeriodic,
};

/// Per-PE balancer diagnostics collected after the schedulers returned.
struct SprayDiag {
  explicit SprayDiag(int npes)
      : placed(static_cast<size_t>(npes)), hops(static_cast<size_t>(npes)) {}
  std::vector<std::uint64_t> placed;
  std::vector<std::uint64_t> hops;
  std::vector<CldCounters> counters{placed.size()};

  std::uint64_t PlacedTotal() const {
    std::uint64_t t = 0;
    for (auto v : placed) t += v;
    return t;
  }
  std::uint64_t HopsTotal() const {
    std::uint64_t t = 0;
    for (auto v : hops) t += v;
    return t;
  }
  CldCounters Totals() const {
    CldCounters t;
    for (const CldCounters& c : counters) {
      t.spawned += c.spawned;
      t.placed += c.placed;
      t.forwarded += c.forwarded;
      t.stored += c.stored;
      t.executed_store += c.executed_store;
      t.stolen_out += c.stolen_out;
      t.stolen_in += c.stolen_in;
      t.rebalanced_out += c.rebalanced_out;
      t.msgs_sent += c.msgs_sent;
      t.msgs_received += c.msgs_received;
    }
    return t;
  }
};

/// PE0 creates `nseeds` seeds; each seed records the PE it took root on.
/// Returns per-PE placement counts (and balancer diagnostics, if asked).
void RunSeedSpray(CldStrategy strat, int npes, int nseeds,
                  ctu::PerPeCounters* placed, SprayDiag* diag = nullptr) {
  std::atomic<int> done{0};
  RunConverse(npes, [&](int pe, int n) {
    (void)n;
    CldSetStrategy(strat);
    int work = CmiRegisterHandler([&, pe](void* msg) {
      placed->Add(pe);
      CmiFree(msg);  // placed seeds are handler-owned
      if (done.fetch_add(1) + 1 == nseeds) ConverseBroadcastExit();
    });
    if (pe == 0) {
      for (int i = 0; i < nseeds; ++i) {
        void* m = CmiMakeMessage(work, &i, sizeof(i));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);
    if (diag != nullptr) {
      diag->placed[static_cast<size_t>(pe)] = CldSeedsPlaced();
      diag->hops[static_cast<size_t>(pe)] = CldSeedHops();
      diag->counters[static_cast<size_t>(pe)] = CldGetCounters();
    }
  });
}

}  // namespace

class CldStrategies : public ::testing::TestWithParam<CldStrategy> {};

TEST_P(CldStrategies, EverySeedPlacedExactlyOnce) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 200;
  ctu::PerPeCounters placed(kNpes);
  SprayDiag diag(kNpes);
  RunSeedSpray(GetParam(), kNpes, kSeeds, &placed, &diag);
  EXPECT_EQ(placed.Total(), kSeeds);
  // The balancer's own accounting agrees with the workload's.
  EXPECT_EQ(diag.PlacedTotal(), static_cast<std::uint64_t>(kSeeds));
  EXPECT_EQ(diag.Totals().spawned, static_cast<std::uint64_t>(kSeeds));
}

TEST_P(CldStrategies, HopAccountingStaysWithinStrategyBound) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 160;
  ctu::PerPeCounters placed(kNpes);
  SprayDiag diag(kNpes);
  RunSeedSpray(GetParam(), kNpes, kSeeds, &placed, &diag);
  std::uint64_t per_seed_cap = 0;
  switch (GetParam()) {
    case CldStrategy::kLocal: per_seed_cap = 0; break;
    case CldStrategy::kRandom: per_seed_cap = 1; break;
    case CldStrategy::kNeighbor: per_seed_cap = 3; break;  // kMaxNeighborHops
    case CldStrategy::kCentral: per_seed_cap = 2; break;  // via dispatcher
    case CldStrategy::kSteal:
    case CldStrategy::kPeriodic:
      per_seed_cap = 64;  // re-steals/re-pushes are possible but bounded in
                          // practice; the cap guards runaway ping-pong
      break;
  }
  EXPECT_LE(diag.HopsTotal(), per_seed_cap * kSeeds);
}

TEST_P(CldStrategies, PrioritizedSeedsKeepPriorityAtPlacement) {
  // Two seeds placed with priorities on one PE: the higher-priority (more
  // negative) one must run first even though enqueued second — for the
  // legacy strategies via the scheduler queue's integer priority, for the
  // adaptive ones via the backlog worker's best-priority-first pop.
  std::vector<int> order;
  const CldStrategy strat = GetParam();
  RunConverse(1, [&](int, int) {
    CldSetStrategy(strat);
    int work = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      order.push_back(v);
      CmiFree(msg);
    });
    int a = 1, b = 2;
    void* ma = CmiMakeMessage(work, &a, sizeof(a));
    CldEnqueuePrio(ma, 10);
    void* mb = CmiMakeMessage(work, &b, sizeof(b));
    CldEnqueuePrio(mb, -10);
    CsdScheduleUntilIdle();
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_P(CldStrategies, UnprioritizedSeedsPlaceInFifoOrder) {
  // On a single PE every strategy degenerates to local placement, and
  // unprioritized seeds must execute in spawn order (scheduler-queue FIFO
  // for the legacy strategies, FIFO-among-equal-priorities in the adaptive
  // backlog).
  constexpr int kSeeds = 32;
  std::vector<int> order;
  const CldStrategy strat = GetParam();
  RunConverse(1, [&](int, int) {
    CldSetStrategy(strat);
    int work = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      order.push_back(v);
      CmiFree(msg);
    });
    for (int i = 0; i < kSeeds; ++i) {
      void* m = CmiMakeMessage(work, &i, sizeof(i));
      CldEnqueue(m);
    }
    CsdScheduleUntilIdle();
  });
  ASSERT_EQ(order.size(), static_cast<size_t>(kSeeds));
  for (int i = 0; i < kSeeds; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CldStrategies,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const auto& info) {
                           return StrategyName(info.param);
                         });

TEST(Cld, LocalStrategyKeepsEverythingHome) {
  constexpr int kNpes = 3;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kLocal, kNpes, 90, &placed);
  EXPECT_EQ(placed.Get(0), 90);
  EXPECT_EQ(placed.Get(1), 0);
  EXPECT_EQ(placed.Get(2), 0);
}

TEST(Cld, RandomStrategySpreadsWork) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 400;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kRandom, kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
  for (int i = 0; i < kNpes; ++i) {
    // Uniform spray: each PE gets ~100; allow wide slack (binomial tail).
    EXPECT_GT(placed.Get(i), 50) << "pe " << i;
    EXPECT_LT(placed.Get(i), 170) << "pe " << i;
  }
}

TEST(Cld, CentralStrategyBalancesOutstandingWork) {
  constexpr int kNpes = 4;
  constexpr int kSeeds = 400;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kCentral, kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
  for (int i = 0; i < kNpes; ++i) {
    // The dispatcher balances outstanding counts: every PE gets a share.
    EXPECT_GT(placed.Get(i), kSeeds / kNpes / 4) << "pe " << i;
  }
}

TEST(Cld, NeighborStrategyRelievesHotSpot) {
  // All seeds originate on PE0 which is kept artificially busy; with load
  // diffusion a nontrivial share must migrate to the ring neighbors.
  constexpr int kNpes = 4;
  constexpr int kSeeds = 256;
  ctu::PerPeCounters placed(kNpes);
  RunSeedSpray(CldStrategy::kNeighbor, kNpes, kSeeds, &placed);
  EXPECT_EQ(placed.Total(), kSeeds);
  EXPECT_LT(placed.Get(0), kSeeds)
      << "diffusion moved nothing off the hot PE";
}

TEST(Cld, SeedsFromMultipleOriginsAllPlaced) {
  constexpr int kNpes = 3;
  constexpr int kSeedsPerPe = 50;
  ctu::PerPeCounters placed(kNpes);
  std::atomic<int> done{0};
  RunConverse(kNpes, [&](int pe, int n) {
    CldSetStrategy(CldStrategy::kRandom);
    int work = CmiRegisterHandler([&, pe, n](void* msg) {
      placed.Add(pe);
      CmiFree(msg);
      if (done.fetch_add(1) + 1 == kSeedsPerPe * n) {
        ConverseBroadcastExit();
      }
    });
    for (int i = 0; i < kSeedsPerPe; ++i) {
      void* m = CmiMakeMessage(work, &i, sizeof(i));
      CldEnqueue(m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(placed.Total(), kNpes * kSeedsPerPe);
}

TEST(Cld, PayloadSurvivesFloating) {
  // Seed payloads must arrive intact after forwarding hops.
  constexpr int kNpes = 4;
  constexpr int kSeeds = 64;
  std::atomic<int> correct{0};
  RunConverse(kNpes, [&](int pe, int) {
    (void)pe;
    CldSetStrategy(CldStrategy::kCentral);  // guarantees >= 1 hop usually
    int work = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      if (v >= 1000 && v < 1000 + kSeeds) ++correct;
      CmiFree(msg);
      if (correct.load() == kSeeds) ConverseBroadcastExit();
    });
    if (CmiMyPe() == 1) {  // not the dispatcher: forces a hop to PE0
      for (int i = 0; i < kSeeds; ++i) {
        int payload = 1000 + i;
        void* m = CmiMakeMessage(work, &payload, sizeof(payload));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(correct.load(), kSeeds);
}

TEST(Cld, PayloadSurvivesStealing) {
  // Same integrity check through the steal path: seeds are re-packed into a
  // reply message and rebuilt at the thief, so every byte must survive.
  constexpr int kNpes = 4;
  constexpr int kSeeds = 96;
  std::atomic<int> correct{0};
  std::atomic<int> done{0};
  RunConverse(kNpes, [&](int pe, int) {
    (void)pe;
    CldSetStrategy(CldStrategy::kSteal);
    int work = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      if (v >= 5000 && v < 5000 + kSeeds) ++correct;
      CmiFree(msg);
      if (done.fetch_add(1) + 1 == kSeeds) ConverseBroadcastExit();
    });
    if (CmiMyPe() == 0) {
      for (int i = 0; i < kSeeds; ++i) {
        int payload = 5000 + i;
        void* m = CmiMakeMessage(work, &payload, sizeof(payload));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(correct.load(), kSeeds);
}

TEST(Cld, LegacyStrategiesStayInertOnAdaptiveState) {
  // The adaptive machinery must cost the legacy strategies nothing: no
  // backlog traffic, no steal or rebalance counters, ever.
  constexpr int kNpes = 4;
  ctu::PerPeCounters placed(kNpes);
  SprayDiag diag(kNpes);
  RunSeedSpray(CldStrategy::kRandom, kNpes, 120, &placed, &diag);
  const CldCounters t = diag.Totals();
  EXPECT_EQ(t.stored, 0u);
  EXPECT_EQ(t.executed_store, 0u);
  EXPECT_EQ(t.stolen_out, 0u);
  EXPECT_EQ(t.stolen_in, 0u);
  EXPECT_EQ(t.rebalanced_out, 0u);
}

TEST(Cld, StealCountersConserve) {
  // A single-origin backlog with virtual per-seed cost under the sim: the
  // other PEs go idle, probe, and steal.  The backlog must drain exactly
  // and every stolen seed must land (clean schedule).
  constexpr int kNpes = 4;
  constexpr int kSeeds = 300;
  SprayDiag diag(kNpes);
  std::atomic<int> done{0};
  SimConfig sim;
  sim.seed = 11;
  MachineConfig cfg;
  cfg.npes = kNpes;
  cfg.seed = 11;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;  // explicit: ignore any CONVERSE_AGG in the env
  RunConverse(cfg, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kSteal);
    int work = CmiRegisterHandler([&](void* msg) {
      done.fetch_add(1);
      CldChargeTime(5.0);  // virtual occupancy: keeps a backlog alive
      CmiFree(msg);
    });
    if (pe == 0) {
      for (int i = 0; i < kSeeds; ++i) {
        void* m = CmiMakeMessage(work, &i, sizeof(i));
        CldEnqueue(m);
      }
    }
    CsdScheduler(-1);  // sim exits on global quiescence
    diag.placed[static_cast<size_t>(pe)] = CldSeedsPlaced();
    diag.hops[static_cast<size_t>(pe)] = CldSeedHops();
    diag.counters[static_cast<size_t>(pe)] = CldGetCounters();
  });
  EXPECT_EQ(done.load(), kSeeds);
  const CldCounters t = diag.Totals();
  EXPECT_EQ(t.stored, t.executed_store + t.stolen_out);
  EXPECT_EQ(t.stolen_in, t.stolen_out);
  EXPECT_GT(t.stolen_in, 0u) << "no steal ever happened";
  EXPECT_EQ(diag.PlacedTotal(), static_cast<std::uint64_t>(kSeeds));
}

TEST(Cld, CentralBurstSpreadsEvenly) {
  // Regression for the dispatcher's stale-estimate bug: drain-report
  // remainders below the reporting period used to stick in outstanding[]
  // forever, and PE 0's own slot was never measured at decision time.
  // With idle-time remainder flushes and a fresh own-slot estimate, a
  // bursty single-origin workload must spread within +/-20% of even —
  // deterministically, under the sim.
  constexpr int kNpes = 4;
  constexpr int kBursts = 25;
  constexpr int kPerBurst = 40;
  constexpr int kTotal = kBursts * kPerBurst;
  ctu::PerPeCounters placed(kNpes);
  SimConfig sim;
  sim.seed = 23;
  MachineConfig cfg;
  cfg.npes = kNpes;
  cfg.seed = 23;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;  // explicit: ignore any CONVERSE_AGG in the env
  RunConverse(cfg, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kCentral);
    thread_local int work = -1;
    work = CmiRegisterHandler([&, pe](void* msg) {
      placed.Add(pe);
      CldChargeTime(2.0);
      CmiFree(msg);
    });
    thread_local int burst = -1;
    burst = CmiRegisterHandler([&](void* msg) {
      int b;
      std::memcpy(&b, CmiMsgPayload(msg), sizeof(b));
      for (int i = 0; i < kPerBurst; ++i) {
        void* m = CmiMakeMessage(work, &i, sizeof(i));
        CldEnqueue(m);
      }
      if (b + 1 < kBursts) {
        int next = b + 1;
        void* nm = CmiMakeMessage(burst, &next, sizeof(next));
        CmiSyncSendDelayedAndFree(0, static_cast<unsigned>(CmiMsgTotalSize(nm)),
                                  nm, 2000.0);  // idle gap between bursts
      }
    });
    if (pe == 0) {
      int b0 = 0;
      void* m = CmiMakeMessage(burst, &b0, sizeof(b0));
      CmiSyncSendDelayedAndFree(0, static_cast<unsigned>(CmiMsgTotalSize(m)),
                                m, 1.0);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(placed.Total(), kTotal);
  const long even = kTotal / kNpes;
  for (int i = 0; i < kNpes; ++i) {
    EXPECT_GE(placed.Get(i), even * 8 / 10) << "pe " << i;
    EXPECT_LE(placed.Get(i), even * 12 / 10) << "pe " << i;
  }
}

TEST(Cld, DiagnosticsCount) {
  RunConverse(1, [&](int, int) {
    CldSetStrategy(CldStrategy::kLocal);
    int work = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    for (int i = 0; i < 5; ++i) {
      CldEnqueue(CmiMakeMessage(work, nullptr, 0));
    }
    EXPECT_EQ(CldSeedsPlaced(), 5u);
    CsdScheduler(5);
  });
}
