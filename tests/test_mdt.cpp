// mdt tests — the §4 coordination language: message-driven threads with
// single-tag sends, blocking receives, dynamic creation (optionally placed
// by the seed load balancer).
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/mdt.h"

using namespace converse;
using namespace converse::mdt;

TEST(Mdt, SpawnLocalRunsAndSelfIdMatches) {
  std::atomic<std::uint64_t> seen{0};
  RunConverse(1, [&](int, int) {
    const int fn = MdtRegister([&](const void*, std::size_t) {
      seen = MdtSelf();
    });
    const MdtThreadId tid = MdtSpawnLocal(fn, nullptr, 0);
    EXPECT_NE(tid, kNoThread);
    CsdScheduleUntilIdle();
    EXPECT_EQ(seen.load(), tid);
    EXPECT_EQ(MdtLiveThreads(), 0);
  });
}

TEST(Mdt, ArgumentBytesArriveIntact) {
  std::atomic<int> got{0};
  RunConverse(1, [&](int, int) {
    const int fn = MdtRegister([&](const void* arg, std::size_t len) {
      EXPECT_EQ(len, sizeof(int));
      int v;
      std::memcpy(&v, arg, sizeof(v));
      got = v;
    });
    const int v = 4321;
    MdtSpawnLocal(fn, &v, sizeof(v));
    CsdScheduleUntilIdle();
  });
  EXPECT_EQ(got.load(), 4321);
}

TEST(Mdt, SendRecvBetweenLocalThreads) {
  std::atomic<long> got{0};
  RunConverse(1, [&](int, int) {
    const int receiver = MdtRegister([&](const void*, std::size_t) {
      long v = 0;
      MdtRecv(1, &v, sizeof(v));
      got = v;
    });
    const int sender = MdtRegister([&](const void* arg, std::size_t) {
      MdtThreadId to;
      std::memcpy(&to, arg, sizeof(to));
      const long v = 66;
      MdtSend(to, 1, &v, sizeof(v));
    });
    const MdtThreadId r = MdtSpawnLocal(receiver, nullptr, 0);
    MdtSpawnLocal(sender, &r, sizeof(r));
    CsdScheduleUntilIdle();
  });
  EXPECT_EQ(got.load(), 66);
}

TEST(Mdt, RecvByTagIgnoresOtherTags) {
  std::atomic<bool> ok{false};
  RunConverse(1, [&](int, int) {
    const int receiver = MdtRegister([&](const void*, std::size_t) {
      long v = 0;
      MdtRecv(2, &v, sizeof(v));  // tag-1 message must stay buffered
      const bool first = v == 222;
      MdtRecv(1, &v, sizeof(v));
      ok = first && v == 111;
    });
    const int sender = MdtRegister([&](const void* arg, std::size_t) {
      MdtThreadId to;
      std::memcpy(&to, arg, sizeof(to));
      long v = 111;
      MdtSend(to, 1, &v, sizeof(v));
      v = 222;
      MdtSend(to, 2, &v, sizeof(v));
    });
    const MdtThreadId r = MdtSpawnLocal(receiver, nullptr, 0);
    MdtSpawnLocal(sender, &r, sizeof(r));
    CsdScheduleUntilIdle();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Mdt, CrossPeParentChildProtocol) {
  // Parent spawns a child on another PE, child reports its id back, then
  // they exchange a message — the handle-flow idiom of the language.
  std::atomic<long> answer{0};
  RunConverse(2, [&](int pe, int) {
    const int child_fn = MdtRegister([](const void* arg, std::size_t) {
      MdtThreadId parent;
      std::memcpy(&parent, arg, sizeof(parent));
      const MdtThreadId me = MdtSelf();
      MdtSend(parent, 1, &me, sizeof(me));  // report my id
      long q = 0;
      MdtRecv(2, &q, sizeof(q));            // get a question
      q *= 2;
      MdtSend(parent, 3, &q, sizeof(q));    // answer
    });
    const int parent_fn = MdtRegister([&](const void*, std::size_t) {
      const MdtThreadId me = MdtSelf();
      MdtSpawn(child_fn, &me, sizeof(me), /*on_pe=*/1);
      MdtThreadId child = 0;
      MdtRecv(1, &child, sizeof(child));
      EXPECT_EQ(MdtPeOf(child), 1);
      const long q = 21;
      MdtSend(child, 2, &q, sizeof(q));
      long a = 0;
      MdtRecv(3, &a, sizeof(a));
      answer = a;
      ConverseBroadcastExit();
    });
    if (pe == 0) MdtSpawnLocal(parent_fn, nullptr, 0);
    CsdScheduler(-1);
  });
  EXPECT_EQ(answer.load(), 42);
}

TEST(Mdt, AnonymousSpawnGoesThroughLoadBalancer) {
  constexpr int kNpes = 3;
  constexpr int kThreads = 60;
  ctu::PerPeCounters where(kNpes);
  std::atomic<int> done{0};
  RunConverse(kNpes, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kRandom);
    const int fn = MdtRegister([&](const void*, std::size_t) {
      where.Add(CmiMyPe());
      if (done.fetch_add(1) + 1 == kThreads) ConverseBroadcastExit();
    });
    if (pe == 0) {
      for (int i = 0; i < kThreads; ++i) {
        MdtSpawn(fn, nullptr, 0);  // kAnyPe -> seed balancer
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(where.Total(), kThreads);
  // Random spray: with 60 seeds over 3 PEs it is overwhelmingly likely at
  // least two PEs got work (probability of all-on-one ~ 3^-59).
  int nonzero = 0;
  for (int i = 0; i < kNpes; ++i) nonzero += where.Get(i) > 0;
  EXPECT_GE(nonzero, 2);
}

TEST(Mdt, ManyMessagesFifoPerTag) {
  std::atomic<bool> ok{true};
  RunConverse(1, [&](int, int) {
    const int receiver = MdtRegister([&](const void*, std::size_t) {
      for (int i = 0; i < 50; ++i) {
        int v = -1;
        MdtRecv(4, &v, sizeof(v));
        if (v != i) ok = false;
      }
    });
    const int sender = MdtRegister([&](const void* arg, std::size_t) {
      MdtThreadId to;
      std::memcpy(&to, arg, sizeof(to));
      for (int i = 0; i < 50; ++i) {
        MdtSend(to, 4, &i, sizeof(i));
        if (i % 7 == 0) CthYield();  // interleave with the receiver
      }
    });
    const MdtThreadId r = MdtSpawnLocal(receiver, nullptr, 0);
    MdtSpawnLocal(sender, &r, sizeof(r));
    CsdScheduleUntilIdle();
  });
  EXPECT_TRUE(ok.load());
}
