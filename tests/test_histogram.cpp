// Property tests for the log-bucketed latency histogram
// (converse/util/histogram.h): quantiles against a sorted reference on
// random and adversarial value streams, and merge order-insensitivity.
#include "converse/util/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "converse/util/rng.h"

using converse::util::LogHistogram;
using converse::util::Xoshiro256;

namespace {

constexpr double kQuantiles[] = {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0};

/// Exact quantile at the histogram's rank convention: the value at rank
/// max(1, ceil(q * n)) of the sorted stream.
std::uint64_t RefQuantile(std::vector<std::uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

/// The histogram's accuracy contract: an estimated quantile lands in the
/// same bucket as the exact one, or in an adjacent bucket (rank ties at a
/// bucket edge may round either way).
void ExpectWithinOneBucket(const LogHistogram& h,
                           const std::vector<std::uint64_t>& values) {
  for (double q : kQuantiles) {
    const std::uint64_t est = h.Quantile(q);
    const std::uint64_t exact = RefQuantile(values, q);
    const auto bi_est = static_cast<long>(h.BucketIndex(est));
    const auto bi_exact = static_cast<long>(h.BucketIndex(exact));
    EXPECT_LE(std::labs(bi_est - bi_exact), 1)
        << "q=" << q << " est=" << est << " exact=" << exact;
    // The estimate is a bucket upper bound clamped to the stream max, so it
    // never undershoots the exact value's bucket lower bound.
    EXPECT_GE(est, h.BucketLower(h.BucketIndex(exact)))
        << "q=" << q << " est=" << est << " exact=" << exact;
  }
}

void RecordAll(LogHistogram& h, const std::vector<std::uint64_t>& values) {
  for (std::uint64_t v : values) h.Record(v);
}

/// The generated distributions: uniform across magnitudes, clustered,
/// heavy-tailed, and adversarial bucket-edge cases.
std::vector<std::vector<std::uint64_t>> Distributions(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint64_t>> out;

  std::vector<std::uint64_t> uniform_small;
  for (int i = 0; i < 2000; ++i) uniform_small.push_back(rng.Below(50000));
  out.push_back(std::move(uniform_small));

  // Uniform in the exponent: one value per draw anywhere in [1, 2^56).
  std::vector<std::uint64_t> log_uniform;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t shift = rng.Below(56);
    log_uniform.push_back((std::uint64_t{1} << shift) + rng.Below(1u << 16));
  }
  out.push_back(std::move(log_uniform));

  // Exponential-ish tail (latency-shaped): mostly small, rare huge.
  std::vector<std::uint64_t> tail;
  for (int i = 0; i < 3000; ++i) {
    const double u = rng.NextDouble();
    tail.push_back(static_cast<std::uint64_t>(-std::log(1.0 - u) * 2000.0));
  }
  out.push_back(std::move(tail));

  // Adversarial: exact powers of two and their neighbors (bucket edges).
  std::vector<std::uint64_t> edges;
  for (unsigned e = 0; e < 63; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    edges.push_back(p - 1);
    edges.push_back(p);
    edges.push_back(p + 1);
  }
  out.push_back(std::move(edges));

  out.push_back(std::vector<std::uint64_t>(500, 777));   // all equal
  out.push_back({42});                                   // single value
  out.push_back({0, 0, 0, UINT64_MAX, UINT64_MAX - 1});  // extremes
  return out;
}

}  // namespace

TEST(Histogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below 2^sub_bits get one bucket each: quantiles are exact.
  LogHistogram h;
  std::vector<std::uint64_t> values;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Below(64));
  RecordAll(h, values);
  for (double q : kQuantiles) {
    EXPECT_EQ(h.Quantile(q), RefQuantile(values, q)) << "q=" << q;
  }
}

TEST(Histogram, BucketGeometryIsMonotoneAndContiguous) {
  const LogHistogram h;
  std::size_t prev = 0;
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}}) {
    prev = h.BucketIndex(v);
    EXPECT_EQ(h.BucketLower(prev), v);
  }
  // Walk every bucket boundary: lower bounds strictly increase and every
  // bucket's upper + 1 is the next bucket's lower (no gaps, no overlaps).
  prev = h.BucketIndex(1);
  for (std::uint64_t v = 2; v < (std::uint64_t{1} << 20); v += 37) {
    const std::size_t b = h.BucketIndex(v);
    EXPECT_GE(b, prev);
    EXPECT_LE(h.BucketLower(b), v);
    EXPECT_GE(h.BucketUpper(b), v);
    if (b != prev) {
      EXPECT_EQ(h.BucketLower(b), h.BucketUpper(b - 1) + 1);
    }
    prev = b;
  }
}

TEST(Histogram, QuantilesWithinOneBucketOfSortedReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& values : Distributions(seed)) {
      LogHistogram h;
      RecordAll(h, values);
      ASSERT_EQ(h.Count(), values.size());
      std::uint64_t sum = 0, mn = UINT64_MAX, mx = 0;
      for (std::uint64_t v : values) {
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      EXPECT_EQ(h.Sum(), sum);
      EXPECT_EQ(h.Min(), mn);
      EXPECT_EQ(h.Max(), mx);
      ExpectWithinOneBucket(h, values);
    }
  }
}

TEST(Histogram, MergeIsOrderInsensitive) {
  for (const auto& values : Distributions(11)) {
    // Split the stream in two arbitrary halves.
    LogHistogram a, b, whole;
    for (std::size_t i = 0; i < values.size(); ++i) {
      (i % 3 == 0 ? a : b).Record(values[i]);
      whole.Record(values[i]);
    }
    LogHistogram ab = a;
    ab.Merge(b);
    LogHistogram ba = b;
    ba.Merge(a);
    // merge(a,b) == merge(b,a) == record-everything-in-one, bucket for
    // bucket: identical counts, moments, and every quantile.
    for (const LogHistogram* m : {&ab, &ba}) {
      EXPECT_EQ(m->Count(), whole.Count());
      EXPECT_EQ(m->Sum(), whole.Sum());
      EXPECT_EQ(m->Min(), whole.Min());
      EXPECT_EQ(m->Max(), whole.Max());
    }
    for (double q = 0.0; q <= 1.0; q += 0.01) {
      EXPECT_EQ(ab.Quantile(q), ba.Quantile(q)) << "q=" << q;
      EXPECT_EQ(ab.Quantile(q), whole.Quantile(q)) << "q=" << q;
    }
  }
}

TEST(Histogram, MergeEmptyIsIdentity) {
  LogHistogram a, empty;
  a.Record(5);
  a.Record(500000);
  LogHistogram merged = a;
  merged.Merge(empty);
  EXPECT_EQ(merged.Count(), a.Count());
  EXPECT_EQ(merged.Min(), a.Min());
  EXPECT_EQ(merged.Max(), a.Max());
  LogHistogram other = empty;
  other.Merge(a);
  EXPECT_EQ(other.Count(), a.Count());
  EXPECT_EQ(other.Quantile(1.0), a.Quantile(1.0));
}

TEST(Histogram, RecordNWeightsLikeRepeatedRecord) {
  LogHistogram h1, hn;
  for (int i = 0; i < 9; ++i) h1.Record(12345);
  hn.RecordN(12345, 9);
  EXPECT_EQ(h1.Count(), hn.Count());
  EXPECT_EQ(h1.Sum(), hn.Sum());
  EXPECT_EQ(h1.Quantile(0.5), hn.Quantile(0.5));
}
