// Unit tests for the scheduler's pluggable queueing module (CqsQueue):
// FIFO/LIFO, signed integer priorities, lexicographic bit-vector
// priorities, and the interaction rules between the unprioritized deque
// and the priority heap (paper §2.3, §3.1.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "converse/msg.h"
#include "converse/queueing.h"
#include "converse/util/rng.h"

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CqsPrio;
using converse::CqsQueue;
using converse::Queueing;

namespace {

/// Make a minimal message whose payload records `id`.
void* Msg(int id) {
  void* m = CmiAlloc(converse::CmiMsgHeaderSizeBytes() + sizeof(int));
  *static_cast<int*>(converse::CmiMsgPayload(m)) = id;
  return m;
}

int IdOf(void* m) { return *static_cast<int*>(converse::CmiMsgPayload(m)); }

/// Drain the queue into a vector of ids, freeing messages.
std::vector<int> Drain(CqsQueue& q) {
  std::vector<int> out;
  for (void* m = q.Dequeue(); m != nullptr; m = q.Dequeue()) {
    out.push_back(IdOf(m));
    CmiFree(m);
  }
  return out;
}

}  // namespace

TEST(Cqs, EmptyDequeueReturnsNull) {
  CqsQueue q;
  EXPECT_EQ(q.Dequeue(), nullptr);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Length(), 0u);
}

TEST(Cqs, FifoOrder) {
  CqsQueue q;
  for (int i = 0; i < 10; ++i) q.Enqueue(Msg(i));
  EXPECT_EQ(q.Length(), 10u);
  EXPECT_EQ(Drain(q), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Cqs, LifoOrder) {
  CqsQueue q;
  for (int i = 0; i < 5; ++i) q.EnqueueLifo(Msg(i));
  EXPECT_EQ(Drain(q), (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Cqs, IntPrioSmallerDequeuesFirst) {
  CqsQueue q;
  q.EnqueueIntPrio(Msg(1), 10);
  q.EnqueueIntPrio(Msg(2), -5);
  q.EnqueueIntPrio(Msg(3), 3);
  q.EnqueueIntPrio(Msg(4), -100);
  EXPECT_EQ(Drain(q), (std::vector<int>{4, 2, 3, 1}));
}

TEST(Cqs, IntPrioFifoAmongEqual) {
  CqsQueue q;
  for (int i = 0; i < 5; ++i) q.EnqueueIntPrio(Msg(i), 7);
  EXPECT_EQ(Drain(q), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Cqs, IntPrioLifoAmongEqual) {
  CqsQueue q;
  for (int i = 0; i < 5; ++i) q.EnqueueIntPrio(Msg(i), 7, /*lifo=*/true);
  EXPECT_EQ(Drain(q), (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Cqs, NegativePrioBeatsUnprioritizedBeatsPositive) {
  CqsQueue q;
  q.Enqueue(Msg(0));              // default (int 0) class, deque
  q.EnqueueIntPrio(Msg(1), 5);    // positive: after deque
  q.EnqueueIntPrio(Msg(2), -1);   // negative: before deque
  q.Enqueue(Msg(3));
  EXPECT_EQ(Drain(q), (std::vector<int>{2, 0, 3, 1}));
}

TEST(Cqs, ExplicitZeroPrioRanksWithDequeButAfterIt) {
  CqsQueue q;
  q.EnqueueIntPrio(Msg(0), 0);  // heap entry at the default priority
  q.Enqueue(Msg(1));            // deque entry
  // Ties at the default priority favor the deque (the zeroq of the
  // original CqsQueue).
  EXPECT_EQ(Drain(q), (std::vector<int>{1, 0}));
}

TEST(Cqs, BitvecLexicographicOrder) {
  CqsQueue q;
  // Bit strings (MSB first): 0b00..., 0b01..., 0b10...
  const std::uint32_t a[] = {0x00000000u};
  const std::uint32_t b[] = {0x40000000u};
  const std::uint32_t c[] = {0x80000000u};
  q.EnqueueBitvecPrio(Msg(2), c, 2);
  q.EnqueueBitvecPrio(Msg(0), a, 2);
  q.EnqueueBitvecPrio(Msg(1), b, 2);
  EXPECT_EQ(Drain(q), (std::vector<int>{0, 1, 2}));
}

TEST(Cqs, BitvecPrefixComparesSmaller) {
  CqsQueue q;
  // "10" is a strict prefix of "100..0": prefix dequeues first.
  const std::uint32_t p2[] = {0x80000000u};
  const std::uint32_t p34[] = {0x80000000u, 0x00000000u};
  q.EnqueueBitvecPrio(Msg(1), p34, 34);
  q.EnqueueBitvecPrio(Msg(0), p2, 2);
  EXPECT_EQ(Drain(q), (std::vector<int>{0, 1}));
}

TEST(Cqs, BitvecUnusedLowBitsIgnored) {
  // Garbage in the unused bits of the last word must not affect order.
  const std::uint32_t noisy[] = {0x8000ffffu};
  const std::uint32_t clean[] = {0x80000000u};
  const CqsPrio a = CqsPrio::FromBitvec(noisy, 16);
  const CqsPrio b = CqsPrio::FromBitvec(clean, 16);
  EXPECT_EQ(a.Compare(b), 0);
}

TEST(Cqs, MultiWordBitvecCompare) {
  const std::uint32_t lo[] = {0x12345678u, 0x00000001u};
  const std::uint32_t hi[] = {0x12345678u, 0x00000002u};
  const CqsPrio a = CqsPrio::FromBitvec(lo, 64);
  const CqsPrio b = CqsPrio::FromBitvec(hi, 64);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
}

TEST(Cqs, IntPrioMapsOntoBitvecOrdering) {
  // Int priorities and single-word bitvecs live in one ordered domain.
  const CqsPrio neg = CqsPrio::FromInt(-1);
  const CqsPrio zero = CqsPrio::FromInt(0);
  const CqsPrio pos = CqsPrio::FromInt(1);
  EXPECT_LT(neg.Compare(zero), 0);
  EXPECT_LT(zero.Compare(pos), 0);
  EXPECT_EQ(zero.Compare(CqsPrio{}), 0);  // default == int 0
}

TEST(Cqs, MixedStrategiesTotalOrder) {
  CqsQueue q;
  q.EnqueueIntPrio(Msg(10), 1);
  q.Enqueue(Msg(20));
  q.EnqueueIntPrio(Msg(30), -1);
  q.EnqueueLifo(Msg(40));
  q.EnqueueIntPrio(Msg(50), -1);
  // Order: -1 entries FIFO (30, 50); deque: lifo-front 40 then 20; then +1.
  EXPECT_EQ(Drain(q), (std::vector<int>{30, 50, 40, 20, 10}));
}

TEST(Cqs, LengthTracksBothStructures) {
  CqsQueue q;
  q.Enqueue(Msg(1));
  q.EnqueueIntPrio(Msg(2), 3);
  EXPECT_EQ(q.Length(), 2u);
  CmiFree(q.Dequeue());
  EXPECT_EQ(q.Length(), 1u);
  CmiFree(q.Dequeue());
  EXPECT_TRUE(q.Empty());
}

// Property test: the queue's output order must match a reference sort by
// (priority, sequence) for randomized int-priority workloads.
class CqsRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(CqsRandomized, MatchesReferenceOrder) {
  converse::util::Xoshiro256 rng(GetParam());
  CqsQueue q;
  struct Ref {
    int prio;
    int seq;
    int id;
  };
  std::vector<Ref> ref;
  for (int i = 0; i < 500; ++i) {
    const int prio = static_cast<int>(rng.Below(21)) - 10;
    q.EnqueueIntPrio(Msg(i), prio);
    ref.push_back(Ref{prio, i, i});
  }
  std::stable_sort(ref.begin(), ref.end(),
                   [](const Ref& a, const Ref& b) { return a.prio < b.prio; });
  const auto got = Drain(q);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i], ref[i].id) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqsRandomized,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

// Oracle for the fast-path property test below: a direct, unoptimized
// implementation of the header's ordering rules using only the public
// CqsPrio::Compare.  The deque lane is a plain deque; the "heap" is a
// linear scan for the minimum (priority, then order).  Any shortcut in
// CqsQueue — the dedicated zero-priority deque lane, the cached
// heap-vs-deque decision bit — that changed observable ordering would
// diverge from this model.
namespace {

struct CqsOracle {
  struct Entry {
    CqsPrio prio;
    std::uint64_t order;
    int id;
  };
  std::deque<int> zero;
  std::vector<Entry> heap;
  std::uint64_t seq = 0;

  void Fifo(int id) {
    ++seq;
    zero.push_back(id);
  }
  void Lifo(int id) {
    ++seq;
    zero.push_front(id);
  }
  void Prio(int id, CqsPrio p, bool lifo) {
    const std::uint64_t s = seq++;
    heap.push_back(Entry{std::move(p), lifo ? ~s : s, id});
  }
  int Dequeue() {  // -1 when empty
    auto best = heap.end();
    for (auto it = heap.begin(); it != heap.end(); ++it) {
      if (best == heap.end()) {
        best = it;
        continue;
      }
      const int c = it->prio.Compare(best->prio);
      if (c < 0 || (c == 0 && it->order < best->order)) best = it;
    }
    if (best != heap.end() && best->prio.Compare(CqsPrio{}) < 0) {
      const int id = best->id;
      heap.erase(best);
      return id;
    }
    if (!zero.empty()) {
      const int id = zero.front();
      zero.pop_front();
      return id;
    }
    if (best != heap.end()) {
      const int id = best->id;
      heap.erase(best);
      return id;
    }
    return -1;
  }
};

}  // namespace

// Property test for the default-priority fast lane: randomized mixed
// workloads (FIFO, LIFO, int priorities including an explicit default 0,
// and bit-vector priorities), with dequeues interleaved so the
// heap-vs-deque decision is exercised in many intermediate states.  The
// dequeue order must match the oracle exactly, element for element.
class CqsFastPathProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CqsFastPathProperty, MixedWorkloadMatchesOracleExactly) {
  converse::util::Xoshiro256 rng(GetParam());
  CqsQueue q;
  CqsOracle oracle;
  int next_id = 0;
  auto enqueue_random = [&] {
    const int id = next_id++;
    switch (rng.Below(7)) {
      case 0:
        q.Enqueue(Msg(id));
        oracle.Fifo(id);
        break;
      case 1:
        q.EnqueueLifo(Msg(id));
        oracle.Lifo(id);
        break;
      case 2:
        // Explicit default priority: a heap entry that must rank behind
        // every deque entry (the documented tie rule).
        q.EnqueueIntPrio(Msg(id), 0);
        oracle.Prio(id, CqsPrio::FromInt(0), /*lifo=*/false);
        break;
      case 3:
      case 4: {
        const int p = static_cast<int>(rng.Below(9)) - 4;
        const bool lifo = rng.Below(2) != 0;
        q.EnqueueIntPrio(Msg(id), p, lifo);
        oracle.Prio(id, CqsPrio::FromInt(p), lifo);
        break;
      }
      default: {
        const std::uint32_t words[2] = {static_cast<std::uint32_t>(rng.Next()),
                                        static_cast<std::uint32_t>(rng.Next())};
        const int nbits = 1 + static_cast<int>(rng.Below(64));
        const bool lifo = rng.Below(2) != 0;
        q.EnqueueBitvecPrio(Msg(id), words, nbits, lifo);
        oracle.Prio(id, CqsPrio::FromBitvec(words, nbits), lifo);
        break;
      }
    }
  };
  for (int op = 0; op < 1200; ++op) {
    if (rng.Below(3) != 0 || q.Empty()) {
      enqueue_random();
    } else {
      void* m = q.Dequeue();
      ASSERT_NE(m, nullptr);
      const int want = oracle.Dequeue();
      EXPECT_EQ(IdOf(m), want) << "op " << op;
      CmiFree(m);
    }
  }
  while (!q.Empty()) {
    void* m = q.Dequeue();
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(IdOf(m), oracle.Dequeue());
    CmiFree(m);
  }
  EXPECT_EQ(oracle.Dequeue(), -1);
  EXPECT_EQ(q.TotalEnqueued(), static_cast<std::uint64_t>(next_id));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqsFastPathProperty,
                         ::testing::Values(7u, 42u, 99u, 2026u));

TEST(Cqs, TotalEnqueuedCounts) {
  CqsQueue q;
  for (int i = 0; i < 7; ++i) q.Enqueue(Msg(i));
  EXPECT_EQ(q.TotalEnqueued(), 7u);
  Drain(q);
  EXPECT_EQ(q.TotalEnqueued(), 7u);  // monotone, not decremented
}
