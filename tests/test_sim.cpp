// Deterministic simulation backend (converse/sim.h): reproducibility of
// the event schedule, fault-injection accounting, the fuzz oracles, seed
// minimization, and virtual-time semantics.
#include "test_helpers.h"

#include <stdexcept>
#include <string>

using namespace converse;

namespace {

sim::FuzzParams BaseParams(std::uint64_t seed) {
  sim::FuzzParams p;
  p.seed = seed;
  p.npes = 4;
  p.actions = 32;
  p.threads = 2;
  return p;
}

}  // namespace

TEST(Sim, SameSeedGivesIdenticalEventTrace) {
  // The whole point of the simulator: a seed fully determines the run.
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const sim::FuzzResult a = sim::RunFuzzCase(BaseParams(seed));
    const sim::FuzzResult b = sim::RunFuzzCase(BaseParams(seed));
    ASSERT_TRUE(a.ok) << a.failure;
    ASSERT_TRUE(b.ok) << b.failure;
    EXPECT_EQ(a.report.trace_hash, b.report.trace_hash) << "seed " << seed;
    EXPECT_EQ(a.report.events, b.report.events);
    EXPECT_EQ(a.report.context_switches, b.report.context_switches);
    EXPECT_EQ(a.report.final_virtual_us, b.report.final_virtual_us);
  }
}

TEST(Sim, DifferentSeedsGiveDifferentSchedules) {
  const sim::FuzzResult a = sim::RunFuzzCase(BaseParams(21));
  const sim::FuzzResult b = sim::RunFuzzCase(BaseParams(22));
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_NE(a.report.trace_hash, b.report.trace_hash);
}

TEST(Sim, OraclesHoldOnCleanRuns) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::FuzzResult r = sim::RunFuzzCase(BaseParams(seed));
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    EXPECT_TRUE(r.report.quiesced);
    EXPECT_GT(r.report.events, 0u);
    EXPECT_EQ(r.report.msgs_dropped, 0u);
    EXPECT_EQ(r.report.msgs_duplicated, 0u);
  }
}

TEST(Sim, OraclesHoldUnderFaultInjection) {
  // With every fault dimension enabled the conservation oracle still
  // balances, because the injector reports exact drop/duplicate counts.
  bool any_faults = false;
  for (std::uint64_t seed = 101; seed <= 112; ++seed) {
    sim::FuzzParams p = BaseParams(seed);
    p.faults.drop = 0.05;
    p.faults.dup = 0.05;
    p.faults.delay = 0.25;
    p.faults.reorder = 0.1;
    const sim::FuzzResult r = sim::RunFuzzCase(p);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
    EXPECT_TRUE(r.report.quiesced);
    any_faults |= r.report.msgs_dropped > 0 || r.report.msgs_duplicated > 0 ||
                  r.report.msgs_delayed > 0 || r.report.msgs_reordered > 0;
    // Fault seeds must not change with the same injection config either.
    const sim::FuzzResult again = sim::RunFuzzCase(p);
    EXPECT_EQ(r.report.trace_hash, again.report.trace_hash);
    EXPECT_EQ(r.report.msgs_dropped, again.report.msgs_dropped);
  }
  EXPECT_TRUE(any_faults) << "injection probabilities never fired";
}

TEST(Sim, FaultCapLimitsInjection) {
  sim::FuzzParams p = BaseParams(5);
  p.faults.drop = 1.0;  // would drop everything...
  p.faults.max_faults = 3;  // ...but the cap stops after three
  const sim::FuzzResult r = sim::RunFuzzCase(p);
  EXPECT_TRUE(r.ok) << r.failure;
  // The cap counts injection events; a dropped broadcast carrier loses its
  // whole subtree of logical messages, so msgs_dropped can exceed the cap.
  EXPECT_EQ(r.report.faults_injected, 3u);
  EXPECT_GE(r.report.msgs_dropped, 3u);
}

TEST(Sim, PlantedOrderingBugIsCaughtAndShrunk) {
  // The acceptance demo: a deliberately planted message-reordering bug is
  // detected by the FIFO oracle, minimized, and reported as a replayable
  // seed line.
  sim::FuzzParams p = BaseParams(42);
  p.actions = 48;
  p.plant_reorder_bug = true;
  const sim::FuzzResult r = sim::RunFuzzCase(p);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("FIFO"), std::string::npos) << r.failure;

  const sim::FuzzParams small = sim::Minimize(p);
  const sim::FuzzResult still = sim::RunFuzzCase(small);
  EXPECT_FALSE(still.ok) << "minimized case no longer fails";
  EXPECT_LT(small.actions, p.actions);
  EXPECT_LE(small.npes, p.npes);

  const std::string replay = sim::FormatReplay(small);
  EXPECT_NE(replay.find("CONVERSE_SIM_SEED="), std::string::npos) << replay;
  EXPECT_NE(replay.find("--plant-bug"), std::string::npos) << replay;
  // And the shrunk line is a complete reproduction: running it again via
  // the params gives the same failure deterministically.
  EXPECT_EQ(sim::RunFuzzCase(small).failure, still.failure);
}

TEST(Sim, VirtualClockIsExactUnderNetModel) {
  // 20 ms of modeled latency costs zero wall time and shows up as exactly
  // 20000 virtual microseconds on CmiTimer.
  NetModel slow;
  slow.name = "sim-exact";
  slow.alpha_us = 20000;
  SimConfig sim;
  SimReport report;
  sim.report = &report;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.model = &slow;
  cfg.sim = &sim;
  std::atomic<double> at_delivery_us{-1};
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      at_delivery_us = CmiTimer() * 1e6;
      CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      return;
    }
    CsdScheduler(-1);
  });
  EXPECT_DOUBLE_EQ(at_delivery_us.load(), 20000.0);
  EXPECT_GE(report.final_virtual_us, 20000.0);
}

TEST(Sim, QuiescenceExitEndsIdleRun) {
  // With exit_on_quiescence (the default), a run whose handlers stop
  // generating work ends on its own: no explicit exit broadcast needed.
  SimConfig sim;
  SimReport report;
  sim.report = &report;
  MachineConfig cfg;
  cfg.npes = 3;
  cfg.sim = &sim;
  std::atomic<int> delivered{0};
  RunConverse(cfg, [&](int pe, int n) {
    int h = CmiRegisterHandler([&](void*) { delivered.fetch_add(1); });
    if (pe == 0) {
      for (int d = 0; d < n; ++d) {
        void* m = CmiMakeMessage(h, nullptr, 0);
        CmiSyncSendAndFree(static_cast<unsigned>(d), CmiMsgTotalSize(m), m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(delivered.load(), 3);
  EXPECT_TRUE(report.quiesced);
}

TEST(Sim, DeadlockIsDetectedWhenQuiescenceExitIsOff) {
  // With exit_on_quiescence off, a machine where every PE waits forever is
  // a deadlock; the simulator reports it (with the replay seed) instead of
  // hanging.
  SimConfig sim;
  sim.seed = 99;
  sim.exit_on_quiescence = false;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.sim = &sim;
  try {
    RunConverse(cfg, [&](int, int) {
      CmiRegisterHandler([](void*) {});
      CsdScheduler(-1);  // no one ever sends anything
    });
    FAIL() << "deadlocked machine returned normally";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

TEST(Sim, ReportCountsContextSwitchesAndEvents) {
  const sim::FuzzResult r = sim::RunFuzzCase(BaseParams(3));
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.report.events, r.report.context_switches);
  EXPECT_GT(r.report.context_switches, 0u);
}

TEST(Sim, OutcomeHashIsDeterministicAndOrderInsensitive) {
  // Same seed -> identical outcome digest (alongside the ordered trace
  // hash); the digest also survives schedule changes that permute the same
  // multiset of deliveries, which is what CciRace's replay relies on.
  const sim::FuzzResult a = sim::RunFuzzCase(BaseParams(5));
  const sim::FuzzResult b = sim::RunFuzzCase(BaseParams(5));
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_NE(a.report.outcome_hash, 0u);
  EXPECT_EQ(a.report.outcome_hash, b.report.outcome_hash);
  EXPECT_FALSE(a.report.flip_applied);  // no flip configured
}

TEST(Sim, FlipWithAbsentTargetLeavesFlipUnapplied) {
  // A flip whose hold identity never hits the wire must flush cleanly at
  // quiescence with flip_applied=false (the "unreplayable" signal).
  SimReport report;
  SimConfig sim;
  sim.seed = 11;
  sim.report = &report;
  sim.flip.enabled = true;
  sim.flip.hold_src = 0;
  sim.flip.hold_seq = 0xfffffff0u;  // never allocated by this short run
  sim.flip.until_src = 1;
  sim.flip.until_seq = 0xfffffff1u;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;
  RunConverse(cfg, [](int pe, int) {
    const int h = CmiRegisterHandler([](void*) {});
    if (pe == 0) {
      void* msg = CmiAlloc(CmiMsgHeaderSizeBytes());
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, static_cast<unsigned>(CmiMsgHeaderSizeBytes()),
                         msg);
    }
    CsdScheduler(-1);
  });
  EXPECT_TRUE(report.quiesced);
  EXPECT_FALSE(report.flip_applied);
  EXPECT_NE(report.outcome_hash, 0u);
}
