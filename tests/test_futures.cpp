// Futures tests: single-assignment remote values in both control regimes.
#include "test_helpers.h"

#include <cstring>

#include "converse/futures.h"

using namespace converse;

TEST(Futures, LocalSetThenWait) {
  RunConverse(1, [&](int, int) {
    Cfuture f = CfutureCreate();
    EXPECT_FALSE(CfutureReady(f));
    CfutureSetValue<long>(f, 99);
    EXPECT_TRUE(CfutureReady(f));
    EXPECT_EQ(CfutureWaitValue<long>(f), 99);
    // Value stays readable until destroyed.
    EXPECT_EQ(CfutureWaitValue<long>(f), 99);
    CfutureDestroy(f);
    EXPECT_EQ(CfutureLiveCount(), 0);
  });
}

TEST(Futures, RemoteSetWakesSpmWaiter) {
  std::atomic<double> got{0};
  RunConverse(2, [&](int pe, int) {
    // Distribute the future handle via a plain message.
    static Cfuture shared;
    int carry = CmiRegisterHandler([](void* msg) {
      std::memcpy(&shared, CmiMsgPayload(msg), sizeof(shared));
      CfutureSetValue<double>(shared, 2.25);  // fulfilled remotely
    });
    if (pe == 0) {
      Cfuture f = CfutureCreate();
      void* m = CmiMakeMessage(carry, &f, sizeof(f));
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      got = CfutureWaitValue<double>(f);  // SPM wait on the main context
      CfutureDestroy(f);
      ConverseBroadcastExit();
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(got.load(), 2.25);
}

TEST(Futures, ThreadWaiterSuspendsNotThePe) {
  std::atomic<int> other_work{0};
  std::atomic<long> got{0};
  RunConverse(2, [&](int pe, int) {
    static Cfuture shared;
    int carry = CmiRegisterHandler([](void* msg) {
      std::memcpy(&shared, CmiMsgPayload(msg), sizeof(shared));
      CfutureSetValue<long>(shared, 31);
    });
    int bg = CmiRegisterHandler([&](void* msg) {
      ++other_work;
      CmiFree(msg);
    });
    if (pe == 0) {
      Cfuture f = CfutureCreate();
      CthAwaken(CthCreate([&, f] {
        got = CfutureWaitValue<long>(f);  // thread suspends here
        ConverseBroadcastExit();
      }));
      for (int i = 0; i < 3; ++i) CsdEnqueue(CmiMakeMessage(bg, nullptr, 0));
      void* m = CmiMakeMessage(carry, &f, sizeof(f));
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      CsdScheduler(-1);
      CsdScheduleUntilIdle();  // drain bg work if the exit came early
    } else {
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(got.load(), 31);
  EXPECT_EQ(other_work.load(), 3);  // the PE kept working while it waited
}

TEST(Futures, ManyFuturesFanIn) {
  // The classic pattern: fire N remote computations, wait on N futures.
  constexpr int kN = 20;
  std::atomic<long> total{0};
  RunConverse(3, [&](int pe, int np) {
    struct WorkWire {
      Cfuture reply_to;
      long value;
    };
    int worker = CmiRegisterHandler([](void* msg) {
      WorkWire w;
      std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
      CfutureSetValue<long>(w.reply_to, w.value * w.value);
    });
    if (pe == 0) {
      std::vector<Cfuture> futs;
      for (int i = 1; i <= kN; ++i) {
        Cfuture f = CfutureCreate();
        futs.push_back(f);
        WorkWire w{f, i};
        void* m = CmiMakeMessage(worker, &w, sizeof(w));
        CmiSyncSendAndFree(static_cast<unsigned>(1 + (i % (np - 1))),
                           CmiMsgTotalSize(m), m);
      }
      long acc = 0;
      for (Cfuture f : futs) {
        acc += CfutureWaitValue<long>(f);
        CfutureDestroy(f);
      }
      total = acc;
      ConverseBroadcastExit();
    }
    CsdScheduler(-1);
  });
  // sum of squares 1..20 = 2870
  EXPECT_EQ(total.load(), 2870);
}

TEST(Futures, BytesPayloadRoundTrip) {
  RunConverse(1, [&](int, int) {
    Cfuture f = CfutureCreate();
    const char data[] = "future-bytes";
    CfutureSet(f, data, sizeof(data));
    const auto& v = CfutureWait(f);
    EXPECT_EQ(v.size(), sizeof(data));
    EXPECT_EQ(std::memcmp(v.data(), data, sizeof(data)), 0);
    CfutureDestroy(f);
  });
}
