// cnx tests: NX-style typed sends, blocking and posted receives
// (paper §1, §5: NXLib among the initial Converse clients).
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/cnx.h"

using namespace converse;
using namespace converse::nx;

TEST(Nx, NodeIdentity) {
  RunConverse(3, [&](int pe, int) {
    EXPECT_EQ(mynode(), pe);
    EXPECT_EQ(numnodes(), 3);
  });
}

TEST(Nx, CsendCrecvRoundTrip) {
  std::atomic<long> got{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const long v = 505;
      csend(17, &v, sizeof(v), 1);
      return;
    }
    long v = 0;
    crecv(17, &v, sizeof(v));
    got = v;
    EXPECT_EQ(infocount(), static_cast<long>(sizeof(v)));
    EXPECT_EQ(infotype(), 17);
    EXPECT_EQ(infonode(), 0);
  });
  EXPECT_EQ(got.load(), 505);
}

TEST(Nx, CrecvByTypeSkipsOthers) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const int a = 1;
      csend(100, &a, sizeof(a), 1);
      const int b = 2;
      csend(200, &b, sizeof(b), 1);
      return;
    }
    int v = 0;
    crecv(200, &v, sizeof(v));
    const bool first = v == 2;
    crecv(100, &v, sizeof(v));
    ok = first && v == 1;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Nx, IrecvMsgdoneNonBlockingCompletion) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      // Wait for the go signal before sending the data message.
      char go = 0;
      crecv(1, &go, 1);
      const double d = 2.5;
      csend(2, &d, sizeof(d), 0);
      return;
    }
    double d = 0;
    const long mid = irecv(2, &d, sizeof(d));
    EXPECT_EQ(msgdone(mid), 0);  // posted but nothing sent yet
    const char go = 1;
    csend(1, &go, 1, 1);
    msgwait(mid);
    ok = d == 2.5 && infotype() == 2 && infonode() == 1;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Nx, IrecvMatchesAlreadyBufferedMessage) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const int v = 7;
      csend(5, &v, sizeof(v), 1);
      const int w = 8;
      csend(6, &w, sizeof(w), 1);
      return;
    }
    int w = 0;
    crecv(6, &w, sizeof(w));  // buffers the type-5 message
    EXPECT_EQ(iprobe(5), 1);
    int v = 0;
    const long mid = irecv(5, &v, sizeof(v));
    EXPECT_EQ(msgdone(mid), 1);  // completed immediately from the buffer
    ok = v == 7 && w == 8;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Nx, WildcardTypeReceive) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const int v = 3;
      csend(77, &v, sizeof(v), 1);
      return;
    }
    int v = 0;
    crecv(kAnyType, &v, sizeof(v));
    ok = v == 3 && infotype() == 77;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Nx, ThreadedMsgwaitSuspendsThread) {
  std::atomic<int> got{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      CthAwaken(CthCreate([&] {
        int v = 0;
        const long mid = irecv(3, &v, sizeof(v));
        msgwait(mid);  // suspends the thread, not the PE
        got = v;
        ConverseBroadcastExit();
      }));
      CsdScheduler(-1);
    } else {
      volatile double x = 1;
      for (int i = 0; i < 1000000; ++i) x = x * 1.0000001;
      const int v = 33;
      csend(3, &v, sizeof(v), 0);
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(got.load(), 33);
}

TEST(Nx, TwoPostedReceivesFillInOrder) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const int a = 1, b = 2;
      csend(9, &a, sizeof(a), 1);
      csend(9, &b, sizeof(b), 1);
      return;
    }
    int x = 0, y = 0;
    const long m1 = irecv(9, &x, sizeof(x));
    const long m2 = irecv(9, &y, sizeof(y));
    msgwait(m1);
    msgwait(m2);
    ok = x == 1 && y == 2;  // posted order matches arrival order
  });
  EXPECT_TRUE(ok.load());
}
