// Chare array tests: collective creation, element messaging, broadcast,
// array reductions, quiescence integration.
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/charm.h"

using namespace converse;
using namespace converse::charm;

namespace {

/// An element holding a value derived from its index.
struct Cell : ArrayElement {
  long value;
  Cell(int idx, const void* arg, std::size_t len) : value(idx) {
    if (len == sizeof(long)) {
      long base;
      std::memcpy(&base, arg, sizeof(base));
      value += base;
    }
  }
  void Scale(const void* d, std::size_t) {
    long k;
    std::memcpy(&k, d, sizeof(k));
    value *= k;
  }
};

}  // namespace

class CharmArrayNpes : public ::testing::TestWithParam<int> {};

TEST_P(CharmArrayNpes, ElementsConstructedRoundRobin) {
  const int npes = GetParam();
  constexpr int kElems = 13;
  std::atomic<int> total_elems{0};
  RunConverse(npes, [&](int pe, int np) {
    const int type = RegisterArrayElementType<Cell>("cell");
    static int aid;
    if (pe == 0) {
      const long base = 0;
      aid = CreateArray(type, kElems, &base, sizeof(base));
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
    total_elems += ArrayLocalElements(aid);
    // Round-robin: this PE owns ceil/floor share.
    const int expect = kElems / np + (pe < kElems % np ? 1 : 0);
    EXPECT_EQ(ArrayLocalElements(aid), expect);
  });
  EXPECT_EQ(total_elems.load(), kElems);
}

INSTANTIATE_TEST_SUITE_P(Npes, CharmArrayNpes, ::testing::Values(1, 2, 3, 4));

TEST(CharmArray, ElementEntryInvocation) {
  std::atomic<long> observed{0};
  RunConverse(3, [&](int pe, int) {
    const int type = RegisterArrayElementType<Cell>("cell");
    const int scale = RegisterEntryMethod<Cell>(&Cell::Scale);
    const int read = RegisterEntry([&](Chare* c, const void*, std::size_t) {
      observed = static_cast<Cell*>(c)->value;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      const long base = 100;
      const int aid = CreateArray(type, 8, &base, sizeof(base));
      const long k = 3;
      SendToElement(aid, 5, scale, &k, sizeof(k));  // (100+5)*3 = 315
      SendToElement(aid, 5, read, nullptr, 0);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(observed.load(), 315);
}

TEST(CharmArray, BroadcastHitsEveryElement) {
  constexpr int kElems = 10;
  std::atomic<int> hits{0};
  RunConverse(2, [&](int pe, int) {
    const int type = RegisterArrayElementType<Cell>("cell");
    const int poke = RegisterEntry([&](Chare*, const void*, std::size_t) {
      ++hits;
    });
    if (pe == 0) {
      const int aid = CreateArray(type, kElems, nullptr, 0);
      // Broadcast needs the local descriptor: run our own create first.
      CsdScheduler(1);
      BroadcastToArray(aid, poke, nullptr, 0);
      StartQuiescence([] { ConverseBroadcastExit(); });
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(hits.load(), kElems);
}

TEST(CharmArray, ReductionSumsAllElements) {
  constexpr int kElems = 12;
  std::atomic<long> sum{0};
  RunConverse(3, [&](int pe, int) {
    const int type = RegisterArrayElementType<Cell>("cell");
    // Atomic: every PE thread stores the (identical) index concurrently.
    static std::atomic<int> client;
    client.store(CmiRegisterHandler([&](void* msg) {
      long v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      sum = v;
      CmiFree(msg);  // scheduler-queue delivery
      ConverseBroadcastExit();
    }));
    static std::atomic<int> contrib_entry;
    contrib_entry.store(RegisterEntry([](Chare* c, const void*, std::size_t) {
      auto* cell = static_cast<Cell*>(c);
      const std::int64_t v = cell->value;
      ArrayContribute(cell, &v, sizeof(v), CmiReducerSumI64(), client.load());
    }));
    if (pe == 0) {
      const int aid = CreateArray(type, kElems, nullptr, 0);
      CsdScheduler(1);
      BroadcastToArray(aid, contrib_entry.load(), nullptr, 0);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(sum.load(), 11 * 12 / 2);  // 0+1+...+11
}

TEST(CharmArray, TwoReductionRoundsKeepSeparate) {
  constexpr int kElems = 6;
  std::vector<long> results;
  RunConverse(2, [&](int pe, int) {
    const int type = RegisterArrayElementType<Cell>("cell");
    // Atomic: every PE thread stores the (identical) index concurrently.
    static std::atomic<int> client;
    client.store(CmiRegisterHandler([&](void* msg) {
      long v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      results.push_back(v);
      CmiFree(msg);
      if (results.size() == 2) ConverseBroadcastExit();
    }));
    static std::atomic<int> contrib2;
    contrib2.store(RegisterEntry([](Chare* c, const void*, std::size_t) {
      auto* cell = static_cast<Cell*>(c);
      // Round 1: value; round 2: value*10 — results must stay distinct.
      std::int64_t v = cell->value;
      ArrayContribute(cell, &v, sizeof(v), CmiReducerSumI64(), client.load());
      v = cell->value * 10;
      ArrayContribute(cell, &v, sizeof(v), CmiReducerSumI64(), client.load());
    }));
    if (pe == 0) {
      const int aid = CreateArray(type, kElems, nullptr, 0);
      CsdScheduler(1);
      BroadcastToArray(aid, contrib2.load(), nullptr, 0);
    }
    CsdScheduler(-1);
  });
  ASSERT_EQ(results.size(), 2u);
  const long base = 0 + 1 + 2 + 3 + 4 + 5;
  EXPECT_EQ(results[0], base);
  EXPECT_EQ(results[1], base * 10);
}

TEST(CharmArray, MessagesBeforeCreationAreBuffered) {
  // PE0 creates and instantly messages element 1 (owned by PE1); the
  // element message can outrun the create broadcast only in delivery
  // order, and the runtime must buffer it.
  std::atomic<long> observed{0};
  RunConverse(2, [&](int pe, int) {
    const int type = RegisterArrayElementType<Cell>("cell");
    const int read = RegisterEntry([&](Chare* c, const void*, std::size_t) {
      observed = static_cast<Cell*>(c)->value;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      const int aid = CreateArray(type, 4, nullptr, 0);
      SendToElement(aid, 1, read, nullptr, 0);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(observed.load(), 1);
}

TEST(CharmArray, QuiescenceCoversArrayTraffic) {
  std::atomic<bool> premature{false};
  std::atomic<int> pokes{0};
  RunConverse(2, [&](int pe, int) {
    constexpr int kElems = 16;
    const int type = RegisterArrayElementType<Cell>("cell");
    const int poke = RegisterEntry([&](Chare*, const void*, std::size_t) {
      ++pokes;
    });
    if (pe == 0) {
      const int aid = CreateArray(type, kElems, nullptr, 0);
      CsdScheduler(1);
      BroadcastToArray(aid, poke, nullptr, 0);
      StartQuiescence([&] {
        if (pokes.load() != kElems) premature = true;
        ConverseBroadcastExit();
      });
    }
    CsdScheduler(-1);
  });
  EXPECT_FALSE(premature.load());
  EXPECT_EQ(pokes.load(), 16);
}
