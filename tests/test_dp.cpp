// Data-parallel layer tests: block distribution, elementwise operations,
// halo exchange, reductions, gather (paper §1: DP-Charm among the clients).
#include "test_helpers.h"

#include <cmath>

#include "converse/langs/dp.h"

using namespace converse;
using namespace converse::dp;

TEST(DpDist, BlocksPartitionTheIndexSpace) {
  for (int npes : {1, 2, 3, 4, 7}) {
    for (std::size_t n : {0ul, 1ul, 5ul, 16ul, 100ul}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int pe = 0; pe < npes; ++pe) {
        Distribution1D d(n, npes, pe);
        EXPECT_EQ(d.begin(), prev_end);
        prev_end = d.end();
        covered += d.local_size();
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(DpDist, OwnerMatchesBlocks) {
  for (int npes : {1, 2, 3, 5}) {
    const std::size_t n = 23;
    for (int pe = 0; pe < npes; ++pe) {
      Distribution1D d(n, npes, pe);
      for (std::size_t i = d.begin(); i < d.end(); ++i) {
        EXPECT_EQ(d.Owner(i), pe) << "i=" << i << " npes=" << npes;
      }
    }
  }
}

TEST(DpDist, BalancedWithinOne) {
  Distribution1D a(10, 3, 0), b(10, 3, 1), c(10, 3, 2);
  EXPECT_EQ(a.local_size(), 4u);
  EXPECT_EQ(b.local_size(), 3u);
  EXPECT_EQ(c.local_size(), 3u);
}

TEST(Dp, ForEachTouchesExactlyLocalElements) {
  std::atomic<long> touched{0};
  RunConverse(3, [&](int pe, int npes) {
    Array1D<double> x(20, npes, pe);
    x.ForEach([&](std::size_t i, double& v) {
      v = static_cast<double>(i);
      ++touched;
    });
    EXPECT_EQ(x[x.dist().begin()], static_cast<double>(x.dist().begin()));
  });
  EXPECT_EQ(touched.load(), 20);
}

TEST(Dp, ReduceSumIsGlobal) {
  std::atomic<bool> ok{true};
  RunConverse(4, [&](int pe, int npes) {
    Array1D<double> x(100, npes, pe);
    x.ForEach([](std::size_t i, double& v) { v = static_cast<double>(i); });
    const double s = x.ReduceSum([](std::size_t, const double& v) { return v; });
    if (s != 99.0 * 100.0 / 2.0) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Dp, HaloExchangeBringsNeighborValues) {
  std::atomic<bool> ok{true};
  RunConverse(4, [&](int pe, int npes) {
    Array1D<long> x(16, npes, pe);
    x.ForEach([](std::size_t i, long& v) { v = static_cast<long>(i * 10); });
    x.ExchangeHalo();
    const auto& d = x.dist();
    if (d.begin() > 0) {
      if (x.left_ghost() != static_cast<long>((d.begin() - 1) * 10)) {
        ok = false;
      }
    }
    if (d.end() < d.global_size()) {
      if (x.right_ghost() != static_cast<long>(d.end() * 10)) ok = false;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Dp, GatherAssemblesFullArrayOnRoot) {
  std::atomic<bool> ok{false};
  RunConverse(3, [&](int pe, int npes) {
    Array1D<int> x(11, npes, pe);
    x.ForEach([](std::size_t i, int& v) { v = static_cast<int>(i * i); });
    auto full = x.Gather();
    if (pe == 0) {
      bool good = full.size() == 11;
      for (std::size_t i = 0; good && i < full.size(); ++i) {
        good = full[i] == static_cast<int>(i * i);
      }
      ok = good;
    } else {
      EXPECT_TRUE(full.empty());
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Dp, JacobiIterationConverges) {
  // 1-D Laplace with Dirichlet boundaries via dp: the canonical DP kernel.
  std::atomic<double> residual{1e9};
  RunConverse(3, [&](int pe, int npes) {
    constexpr std::size_t kN = 32;
    Array1D<double> u(kN, npes, pe), next(kN, npes, pe);
    u.ForEach([](std::size_t i, double& v) {
      v = (i == 0) ? 0.0 : (i == kN - 1 ? 1.0 : 0.5);
    });
    for (int iter = 0; iter < 2000; ++iter) {
      u.ExchangeHalo();
      const auto& d = u.dist();
      next.ForEach([&](std::size_t i, double& v) {
        if (i == 0 || i == kN - 1) {
          v = u[i];
          return;
        }
        const double left = i - 1 < d.begin() ? u.left_ghost() : u[i - 1];
        const double right = i + 1 >= d.end() ? u.right_ghost() : u[i + 1];
        v = 0.5 * (left + right);
      });
      std::swap(u, next);
    }
    // Solution tends to the linear ramp i/(N-1).
    const double err = u.ReduceSum([&](std::size_t i, const double& v) {
      const double exact = static_cast<double>(i) / (kN - 1);
      return (v - exact) * (v - exact);
    });
    residual = err;
  });
  EXPECT_LT(residual.load(), 1e-2);
}

// ------------------------------ 2-D arrays --------------------------------------

TEST(Dp2dDist, GridIsNearSquareAndCoversPes) {
  for (int npes : {1, 2, 3, 4, 6, 8, 12}) {
    const auto g = ProcessGrid::For(npes);
    EXPECT_EQ(g.px * g.py, npes);
    EXPECT_GE(g.px, g.py);
  }
  EXPECT_EQ(ProcessGrid::For(4).px, 2);
  EXPECT_EQ(ProcessGrid::For(4).py, 2);
}

TEST(Dp2dDist, TilesPartitionTheDomain) {
  for (int npes : {1, 2, 4, 6}) {
    const std::size_t nx = 17, ny = 11;
    std::vector<int> owner_count(nx * ny, 0);
    for (int pe = 0; pe < npes; ++pe) {
      Distribution2D d(nx, ny, npes, pe);
      for (std::size_t y = d.y_begin(); y < d.y_end(); ++y) {
        for (std::size_t x = d.x_begin(); x < d.x_end(); ++x) {
          ++owner_count[y * nx + x];
          EXPECT_EQ(d.Owner(x, y), pe);
        }
      }
    }
    for (int c : owner_count) EXPECT_EQ(c, 1);
  }
}

TEST(Dp2dDist, NeighborsAreMutual) {
  const int npes = 4;
  for (int pe = 0; pe < npes; ++pe) {
    Distribution2D d(8, 8, npes, pe);
    for (auto [dx, dy] : {std::pair{-1, 0}, {1, 0}, {0, -1}, {0, 1}}) {
      const int n = d.NeighborPe(dx, dy);
      if (n < 0) continue;
      Distribution2D dn(8, 8, npes, n);
      EXPECT_EQ(dn.NeighborPe(-dx, -dy), pe);
    }
  }
}

TEST(Dp2d, HaloExchangeFillsAllFourSides) {
  std::atomic<bool> ok{true};
  RunConverse(4, [&](int pe, int np) {
    Array2D<long> a(8, 8, np, pe);
    a.ForEach([](std::size_t x, std::size_t y, long& v) {
      v = static_cast<long>(y * 100 + x);
    });
    a.ExchangeHalo();
    const auto& d = a.dist();
    // Every interior-global neighbor read must return y*100+x.
    for (std::size_t y = d.y_begin(); y < d.y_end(); ++y) {
      for (std::size_t x = d.x_begin(); x < d.x_end(); ++x) {
        for (auto [dx, dy] : {std::pair{-1, 0}, {1, 0}, {0, -1}, {0, 1}}) {
          const long want_x = static_cast<long>(x) + dx;
          const long want_y = static_cast<long>(y) + dy;
          if (want_x < 0 || want_x >= 8 || want_y < 0 || want_y >= 8) {
            continue;
          }
          if (a.Neighbor(x, y, dx, dy) != want_y * 100 + want_x) {
            ok = false;
          }
        }
      }
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Dp2d, JacobiHeat2DConverges) {
  std::atomic<double> err{1e9};
  RunConverse(4, [&](int pe, int np) {
    constexpr std::size_t kN = 12;
    Array2D<double> u(kN, kN, np, pe), next(kN, kN, np, pe);
    auto boundary = [](std::size_t x, std::size_t y) {
      return x == 0 || y == 0 || x == kN - 1 || y == kN - 1;
    };
    u.ForEach([&](std::size_t x, std::size_t y, double& v) {
      v = boundary(x, y) ? 1.0 : 0.0;  // hot walls, cold interior
    });
    for (int iter = 0; iter < 800; ++iter) {
      u.ExchangeHalo();
      next.ForEach([&](std::size_t x, std::size_t y, double& v) {
        if (boundary(x, y)) {
          v = u.At(x, y);
          return;
        }
        v = 0.25 * (u.Neighbor(x, y, -1, 0) + u.Neighbor(x, y, 1, 0) +
                    u.Neighbor(x, y, 0, -1) + u.Neighbor(x, y, 0, 1));
      });
      std::swap(u, next);
    }
    // Steady state with uniformly hot walls is uniformly 1.0 everywhere.
    const double e = u.ReduceSum([](std::size_t, std::size_t,
                                    const double& v) {
      return (v - 1.0) * (v - 1.0);
    });
    err = e;
  });
  EXPECT_LT(err.load(), 1e-3);
}

TEST(Dp2d, ReduceSumCountsEveryCellOnce) {
  std::atomic<bool> ok{true};
  RunConverse(3, [&](int pe, int np) {
    Array2D<int> a(9, 5, np, pe);
    a.ForEach([](std::size_t, std::size_t, int& v) { v = 1; });
    const double total =
        a.ReduceSum([](std::size_t, std::size_t, const int& v) { return v; });
    if (total != 45.0) ok = false;
  });
  EXPECT_TRUE(ok.load());
}
