// Synchronization tests (paper §3.2.3, appendix §6): cooperative locks,
// condition variables, barriers over thread objects.
#include "test_helpers.h"

#include <vector>

using namespace converse;

namespace {

/// Run body on a single-PE machine.
void Run1(const std::function<void()>& body) {
  RunConverse(1, [&](int, int) { body(); });
}

}  // namespace

// ---- Locks ---------------------------------------------------------------------

TEST(CtsLocks, TryLockAndOwnership) {
  Run1([] {
    LOCK* l = CtsNewLock();
    EXPECT_EQ(CtsLockOwner(l), nullptr);
    EXPECT_EQ(CtsTryLock(l), 1);
    EXPECT_EQ(CtsLockOwner(l), CthSelf());
    EXPECT_EQ(CtsTryLock(l), 0);  // already held
    EXPECT_EQ(CtsUnLock(l), 0);
    EXPECT_EQ(CtsLockOwner(l), nullptr);
    CtsFreeLock(l);
  });
}

TEST(CtsLocks, UnlockByNonOwnerFails) {
  Run1([] {
    LOCK* l = CtsNewLock();
    CthThread* t = CthCreate([l] {
      EXPECT_EQ(CtsLock(l), 0);
      CthSuspend();  // hold the lock while main tries to unlock it
      EXPECT_EQ(CtsUnLock(l), 0);
    });
    CthResume(t);                 // t takes the lock and suspends
    EXPECT_EQ(CtsUnLock(l), -1);  // main does not own it
    CthAwaken(t);
    CsdScheduleUntilIdle();  // t resumes, releases the lock, exits
    CtsFreeLock(l);
  });
}

TEST(CtsLocks, MutualExclusionWithYields) {
  // N threads increment a shared counter inside a critical section that
  // yields mid-update; the lock must serialize them.
  Run1([] {
    LOCK* l = CtsNewLock();
    int counter = 0;
    bool interleaving_error = false;
    constexpr int kThreads = 8;
    constexpr int kIters = 10;
    for (int i = 0; i < kThreads; ++i) {
      CthAwaken(CthCreate([&, l] {
        for (int j = 0; j < kIters; ++j) {
          CtsLock(l);
          const int seen = counter;
          CthYield();  // other threads run here; lock must hold them off
          if (counter != seen) interleaving_error = true;
          counter = seen + 1;
          CtsUnLock(l);
          CthYield();
        }
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_FALSE(interleaving_error);
    EXPECT_EQ(counter, kThreads * kIters);
    CtsFreeLock(l);
  });
}

TEST(CtsLocks, HandoffIsFifo) {
  Run1([] {
    LOCK* l = CtsNewLock();
    std::vector<int> order;
    CtsLock(l);  // main holds; threads queue
    for (int i = 0; i < 3; ++i) {
      CthAwaken(CthCreate([&, l, i] {
        CtsLock(l);
        order.push_back(i);
        CtsUnLock(l);
      }));
    }
    CsdScheduleUntilIdle();   // threads block on the lock
    EXPECT_EQ(CtsLockWaiters(l), 3u);
    CtsUnLock(l);             // ownership passes to the first waiter
    CsdScheduleUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    CtsFreeLock(l);
  });
}

// ---- Condition variables ----------------------------------------------------------

TEST(CtsCondn, SignalWakesOneInFifoOrder) {
  Run1([] {
    CONDN* c = CtsNewCondn();
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
      CthAwaken(CthCreate([&, c, i] {
        CtsCondnWait(c);
        order.push_back(i);
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_EQ(CtsCondnWaiters(c), 3u);
    EXPECT_EQ(CtsCondnSignal(c), 1);
    CsdScheduleUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_EQ(CtsCondnBroadcast(c), 2);
    CsdScheduleUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(CtsCondnSignal(c), 0);  // nobody left
    CtsFreeCondn(c);
  });
}

TEST(CtsCondn, InitAwakensCurrentWaiters) {
  // Per the appendix: (re)initialization wakes everything waiting.
  Run1([] {
    CONDN* c = CtsNewCondn();
    int woken = 0;
    for (int i = 0; i < 2; ++i) {
      CthAwaken(CthCreate([&, c] {
        CtsCondnWait(c);
        ++woken;
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_EQ(CtsCondnInit(c), 2);
    CsdScheduleUntilIdle();
    EXPECT_EQ(woken, 2);
    CtsFreeCondn(c);
  });
}

TEST(CtsCondn, ProducerConsumerPattern) {
  Run1([] {
    CONDN* c = CtsNewCondn();
    std::vector<int> items;
    std::vector<int> consumed;
    CthAwaken(CthCreate([&, c] {  // consumer
      for (int n = 0; n < 3; ++n) {
        while (items.empty()) CtsCondnWait(c);
        consumed.push_back(items.back());
        items.pop_back();
      }
    }));
    CthAwaken(CthCreate([&, c] {  // producer
      for (int i = 1; i <= 3; ++i) {
        items.push_back(i * 11);
        CtsCondnSignal(c);
        CthYield();
      }
    }));
    CsdScheduleUntilIdle();
    EXPECT_EQ(consumed, (std::vector<int>{11, 22, 33}));
    CtsFreeCondn(c);
  });
}

// ---- Barriers ------------------------------------------------------------------------

TEST(CtsBarrier, KthArrivalReleasesEveryone) {
  Run1([] {
    BARRIER* b = CtsNewBarrier();
    CtsBarrierReinit(b, 4);
    int before = 0, after = 0;
    for (int i = 0; i < 4; ++i) {
      CthAwaken(CthCreate([&, b] {
        ++before;
        CtsAtBarrier(b);
        ++after;
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_EQ(before, 4);
    EXPECT_EQ(after, 4);
    CtsFreeBarrier(b);
  });
}

TEST(CtsBarrier, NoneProceedUntilLastArrives) {
  Run1([] {
    BARRIER* b = CtsNewBarrier();
    CtsBarrierReinit(b, 3);
    int past = 0;
    for (int i = 0; i < 2; ++i) {
      CthAwaken(CthCreate([&, b] {
        CtsAtBarrier(b);
        ++past;
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_EQ(past, 0);  // 2 of 3 arrived: everyone still blocked
    CthAwaken(CthCreate([&, b] {
      CtsAtBarrier(b);
      ++past;
    }));
    CsdScheduleUntilIdle();
    EXPECT_EQ(past, 3);
    CtsFreeBarrier(b);
  });
}

TEST(CtsBarrier, ReusableAfterRelease) {
  Run1([] {
    BARRIER* b = CtsNewBarrier();
    CtsBarrierReinit(b, 2);
    int rounds_done = 0;
    for (int i = 0; i < 2; ++i) {
      CthAwaken(CthCreate([&, b] {
        for (int r = 0; r < 3; ++r) {
          CtsAtBarrier(b);
        }
        ++rounds_done;
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_EQ(rounds_done, 2);
    CtsFreeBarrier(b);
  });
}

TEST(CtsBarrier, ReinitReleasesWaiters) {
  Run1([] {
    BARRIER* b = CtsNewBarrier();
    CtsBarrierReinit(b, 5);
    int released = 0;
    CthAwaken(CthCreate([&, b] {
      CtsAtBarrier(b);  // will be freed by reinit
      ++released;
    }));
    CsdScheduleUntilIdle();
    EXPECT_EQ(released, 0);
    CtsBarrierReinit(b, 1);
    CsdScheduleUntilIdle();
    EXPECT_EQ(released, 1);
    CtsFreeBarrier(b);
  });
}
