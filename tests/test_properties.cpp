// Randomized property tests against reference models: the scheduler queue
// under mixed bit-vector priorities, and the message manager against a
// naive mailbox.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "converse/cmm.h"
#include "converse/msg.h"
#include "converse/queueing.h"
#include "converse/util/rng.h"

using namespace converse;

namespace {

void* Msg(int id) {
  void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + sizeof(int));
  *static_cast<int*>(CmiMsgPayload(m)) = id;
  return m;
}

int IdOf(void* m) { return *static_cast<int*>(CmiMsgPayload(m)); }

}  // namespace

class BitvecQueueProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitvecQueueProperty, MatchesReferenceLexicographicOrder) {
  util::Xoshiro256 rng(GetParam());
  CqsQueue q;
  struct Ref {
    std::vector<bool> bits;  // the priority as a bit string
    int seq;
    int id;
  };
  std::vector<Ref> ref;
  for (int i = 0; i < 300; ++i) {
    const int nbits = static_cast<int>(rng.Below(70));  // 0..69 bits
    std::vector<bool> bits(static_cast<std::size_t>(nbits));
    std::vector<std::uint32_t> words(
        static_cast<std::size_t>((nbits + 31) / 32), 0);
    for (int b = 0; b < nbits; ++b) {
      const bool bit = rng.Below(2) == 1;
      bits[static_cast<std::size_t>(b)] = bit;
      if (bit) {
        words[static_cast<std::size_t>(b / 32)] |=
            0x80000000u >> (b % 32);
      }
    }
    if (nbits == 0) {
      // Zero-length bit-vector == default priority (int 0): enqueue as a
      // plain FIFO entry so the reference ranks it as "int 0" too.
      q.Enqueue(Msg(i));
      ref.push_back(Ref{{false, false, false, false, false, false, false,
                         false, false, false, false, false, false, false,
                         false, false, false, false, false, false, false,
                         false, false, false, false, false, false, false,
                         false, false, true},  // placeholder, fixed below
                        i, i});
      // int 0 == bit string "1000...0" (sign-biased word 0x80000000).
      auto& b = ref.back().bits;
      b.assign(32, false);
      b[0] = true;
      continue;
    }
    q.EnqueueBitvecPrio(Msg(i), words.data(), nbits);
    ref.push_back(Ref{std::move(bits), i, i});
  }
  // Reference order: lexicographic bit-string compare (prefix smaller),
  // FIFO among equals.
  std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    return std::lexicographical_compare(a.bits.begin(), a.bits.end(),
                                        b.bits.begin(), b.bits.end());
  });
  for (std::size_t i = 0; i < ref.size(); ++i) {
    void* m = q.Dequeue();
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(IdOf(m), ref[i].id) << "position " << i;
    CmiFree(m);
  }
  EXPECT_TRUE(q.Empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitvecQueueProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

class CmmProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CmmProperty, MatchesNaiveMailbox) {
  util::Xoshiro256 rng(GetParam());
  MSG_MNGR* mm = CmmNew();
  struct RefMsg {
    int tag1, tag2;
    std::vector<char> data;
  };
  std::deque<RefMsg> ref;

  auto ref_find = [&](int t1, int t2) {
    for (auto it = ref.begin(); it != ref.end(); ++it) {
      if ((t1 == CmmWildCard || t1 == it->tag1) &&
          (t2 == CmmWildCard || t2 == it->tag2)) {
        return it;
      }
    }
    return ref.end();
  };

  for (int op = 0; op < 2000; ++op) {
    const auto kind = rng.Below(3);
    const int t1 = static_cast<int>(rng.Below(6));
    const int t2 = static_cast<int>(rng.Below(4));
    if (kind == 0) {  // put
      const std::size_t n = rng.Below(32);
      std::vector<char> data(n);
      for (auto& c : data) c = static_cast<char>(rng.Next());
      CmmPut2(mm, data.data(), t1, t2, static_cast<int>(n));
      ref.push_back(RefMsg{t1, t2, std::move(data)});
    } else if (kind == 1) {  // probe with random wildcards
      const int w1 = rng.Below(2) ? t1 : CmmWildCard;
      const int w2 = rng.Below(2) ? t2 : CmmWildCard;
      int r1 = -7, r2 = -7;
      const int got = CmmProbe2(mm, w1, w2, &r1, &r2);
      const auto it = ref_find(w1, w2);
      if (it == ref.end()) {
        EXPECT_EQ(got, -1);
      } else {
        EXPECT_EQ(got, static_cast<int>(it->data.size()));
        EXPECT_EQ(r1, it->tag1);
        EXPECT_EQ(r2, it->tag2);
      }
    } else {  // get with random wildcards
      const int w1 = rng.Below(2) ? t1 : CmmWildCard;
      const int w2 = rng.Below(2) ? t2 : CmmWildCard;
      char buf[64];
      int r1 = -7, r2 = -7;
      const int got = CmmGet2(mm, buf, w1, w2, sizeof(buf), &r1, &r2);
      const auto it = ref_find(w1, w2);
      if (it == ref.end()) {
        EXPECT_EQ(got, -1);
      } else {
        ASSERT_EQ(got, static_cast<int>(it->data.size()));
        EXPECT_EQ(std::memcmp(buf, it->data.data(), it->data.size()), 0);
        EXPECT_EQ(r1, it->tag1);
        EXPECT_EQ(r2, it->tag2);
        ref.erase(it);
      }
    }
    ASSERT_EQ(CmmLength(mm), ref.size());
  }
  CmmFree(mm);
}

TEST_P(CmmProperty, SingleTagApiMatchesNaiveMailbox) {
  // Same oracle through the single-tag entry points, plus the two retrieval
  // variants the two-tag test does not touch: CmmGetPtr (caller-owned
  // buffer) and CmmGet with a too-small destination (truncating copy that
  // still reports the full length).
  util::Xoshiro256 rng(GetParam() * 7919 + 1);
  MSG_MNGR* mm = CmmNew();
  struct RefMsg {
    int tag;
    std::vector<char> data;
  };
  std::deque<RefMsg> ref;

  auto ref_find = [&](int t) {
    for (auto it = ref.begin(); it != ref.end(); ++it) {
      if (t == CmmWildCard || t == it->tag) return it;
    }
    return ref.end();
  };

  for (int op = 0; op < 2000; ++op) {
    const auto kind = rng.Below(4);
    const int tag = static_cast<int>(rng.Below(5));
    const int w = rng.Below(2) ? tag : CmmWildCard;
    if (kind == 0) {  // put
      const std::size_t n = rng.Below(48);
      std::vector<char> data(n);
      for (auto& c : data) c = static_cast<char>(rng.Next());
      CmmPut(mm, data.data(), tag, static_cast<int>(n));
      ref.push_back(RefMsg{tag, std::move(data)});
    } else if (kind == 1) {  // probe
      int r = -7;
      const int got = CmmProbe(mm, w, &r);
      const auto it = ref_find(w);
      if (it == ref.end()) {
        EXPECT_EQ(got, -1);
      } else {
        EXPECT_EQ(got, static_cast<int>(it->data.size()));
        EXPECT_EQ(r, it->tag);
      }
    } else if (kind == 2) {  // get, sometimes into a truncating buffer
      const std::size_t cap = rng.Below(2) ? 64 : rng.Below(16);
      char buf[64];
      int r = -7;
      const int got = CmmGet(mm, buf, w, static_cast<int>(cap), &r);
      const auto it = ref_find(w);
      if (it == ref.end()) {
        EXPECT_EQ(got, -1);
      } else {
        ASSERT_EQ(got, static_cast<int>(it->data.size()));
        const std::size_t copied = std::min(cap, it->data.size());
        EXPECT_EQ(std::memcmp(buf, it->data.data(), copied), 0);
        EXPECT_EQ(r, it->tag);
        ref.erase(it);
      }
    } else {  // getptr: exact-size buffer allocated by the manager
      void* addr = nullptr;
      int r = -7;
      const int got = CmmGetPtr(mm, &addr, w, &r);
      const auto it = ref_find(w);
      if (it == ref.end()) {
        EXPECT_EQ(got, -1);
        EXPECT_EQ(addr, nullptr);
      } else {
        ASSERT_EQ(got, static_cast<int>(it->data.size()));
        EXPECT_EQ(std::memcmp(addr, it->data.data(), it->data.size()), 0);
        EXPECT_EQ(r, it->tag);
        delete[] static_cast<char*>(addr);
        ref.erase(it);
      }
    }
    ASSERT_EQ(CmmLength(mm), ref.size());
  }
  CmmFree(mm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmmProperty,
                         ::testing::Values(5u, 6u, 7u, 8u));
