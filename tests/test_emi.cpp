// EMI tests: scatter "advance receive" registrations and their interaction
// with gather-style sends (paper §3.1.3 EMI).
#include "test_helpers.h"

#include <cstring>

using namespace converse;

namespace {

/// Payload layout used by these tests: a 32-bit match key followed by two
/// data fields the scatter splits into separate destinations.
struct ScatterPayload {
  std::uint32_t key;
  double a[4];
  long b[2];
};

}  // namespace

TEST(Emi, ScatterSplitsMatchingMessage) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) {
      FAIL() << "scattered message must not reach its normal handler";
    });
    if (pe == 0) {
      double a[4] = {};
      long b[2] = {};
      CmiScatterRegister(
          offsetof(ScatterPayload, key), 0xC0FFEE,
          {{offsetof(ScatterPayload, a), sizeof(a), a},
           {offsetof(ScatterPayload, b), sizeof(b), b}});
      // Wait for the scatter to consume the message.
      while (CmiScatterCount() > 0) CsdSchedulePoll(1);
      ok = a[0] == 1.5 && a[3] == 4.5 && b[0] == 100 && b[1] == 200;
      ConverseBroadcastExit();
      CsdScheduler(-1);
    } else {
      ScatterPayload p{0xC0FFEE, {1.5, 2.5, 3.5, 4.5}, {100, 200}};
      void* m = CmiMakeMessage(never, &p, sizeof(p));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      CsdScheduler(-1);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Emi, ScatterWithNotificationEnqueuesShortMessage) {
  std::atomic<std::uint32_t> notified{0};
  RunConverse(2, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) { FAIL(); });
    int notify = CmiRegisterHandler([&](void* msg) {
      std::uint32_t v = 0;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      notified = v;
      CmiFree(msg);  // notification comes via the scheduler queue
      ConverseBroadcastExit();
    });
    // Must outlive the whole scheduling phase: the scatter fires while
    // this PE sits in CsdScheduler below.
    std::uint32_t dest = 0;
    if (pe == 0) {
      CmiScatterRegister(0, 0xABCD, {{0, sizeof(dest), &dest}}, notify);
    } else {
      const std::uint32_t key = 0xABCD;
      void* m = CmiMakeMessage(never, &key, sizeof(key));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(notified.load(), 0xABCDu);
}

TEST(Emi, NonMatchingMessagePassesThrough) {
  std::atomic<int> normal{0};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      ++normal;
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t sink;
      CmiScatterRegister(0, 0xDEAD, {{0, sizeof(sink), &sink}});
    } else {
      const std::uint32_t key = 0xBEEF;  // does not match
      void* m = CmiMakeMessage(h, &key, sizeof(key));
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
    if (pe == 0) {
      EXPECT_EQ(CmiScatterCount(), 1);  // registration still armed
      CmiScatterCancel(0);
    }
  });
  EXPECT_EQ(normal.load(), 1);
}

TEST(Emi, OneShotConsumesSingleMessage) {
  std::atomic<int> through{0};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      if (++through == 1) ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t sink;
      CmiScatterRegister(0, 0x1111, {{0, sizeof(sink), &sink}});
    } else {
      for (int i = 0; i < 2; ++i) {  // two identical messages
        const std::uint32_t key = 0x1111;
        void* m = CmiMakeMessage(h, &key, sizeof(key));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      }
    }
    CsdScheduler(-1);
  });
  // First message scattered (one-shot), second passed through.
  EXPECT_EQ(through.load(), 1);
}

TEST(Emi, PersistentScatterConsumesAll) {
  std::atomic<int> leaked_to_handler{0};
  std::atomic<int> scattered{0};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) { ++leaked_to_handler; });
    int notify = CmiRegisterHandler([&](void* msg) {
      CmiFree(msg);
      if (++scattered == 3) ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t sink;
      CmiScatterRegister(0, 0x2222, {{0, sizeof(sink), &sink}}, notify,
                         /*persistent=*/true);
    } else {
      for (int i = 0; i < 3; ++i) {
        const std::uint32_t key = 0x2222;
        void* m = CmiMakeMessage(h, &key, sizeof(key));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      }
    }
    CsdScheduler(-1);
    if (pe == 0) CmiScatterCancel(0);
  });
  EXPECT_EQ(leaked_to_handler.load(), 0);
  EXPECT_EQ(scattered.load(), 3);
}

TEST(Emi, GatherSendIntoScatterReceive) {
  // "It is not necessary that a message sent via a gather is received via
  // a scatter call, or vice-versa" — but the combination must work: a
  // CmiVectorSend whose concatenation matches a scatter registration.
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    int never = CmiRegisterHandler([](void*) { FAIL(); });
    int notify = CmiRegisterHandler([&](void* msg) {
      CmiFree(msg);
      ConverseBroadcastExit();
    });
    if (pe == 0) {
      static std::uint32_t key_sink;
      static char text[6];
      CmiScatterRegister(0, 0x7777,
                         {{0, sizeof(key_sink), &key_sink},
                          {sizeof(std::uint32_t), sizeof(text), text}},
                         notify);
      CsdScheduler(-1);
      ok = std::memcmp(text, "gather", 6) == 0;
    } else {
      const std::uint32_t key = 0x7777;
      const char* text = "gather";
      const int sizes[] = {sizeof(key), 6};
      const void* arrays[] = {&key, text};
      CmiVectorSend(0, never, 2, sizes, arrays);
      CsdScheduler(-1);
    }
  });
  EXPECT_TRUE(ok.load());
}
