// Unit tests for the utility layer: RNG, statistics, spanning trees,
// pack/unpack, CRC-32C.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "converse/util/crc.h"
#include "converse/util/pack.h"
#include "converse/util/rng.h"
#include "converse/util/spantree.h"
#include "converse/util/stats.h"
#include "converse/util/timer.h"

namespace cu = converse::util;

// ---- RNG ---------------------------------------------------------------------

TEST(Rng, SplitMix64KnownSequenceIsDeterministic) {
  cu::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, SplitMix64DifferentSeedsDiffer) {
  cu::SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, XoshiroBelowRespectsBound) {
  cu::Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Rng, XoshiroBelowCoversAllResidues) {
  cu::Xoshiro256 rng(12345);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, XoshiroBelowIsRoughlyUniform) {
  cu::Xoshiro256 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  cu::Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---- Stats --------------------------------------------------------------------

TEST(Stats, RunningMomentsMatchClosedForm) {
  cu::RunningStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_EQ(s.Count(), 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 5050.0);
  // Sample variance of 1..100 is 841.666...
  EXPECT_NEAR(s.Variance(), 841.6666666, 1e-6);
}

TEST(Stats, EmptyStatsAreZero) {
  cu::RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(Stats, MergeEqualsBulk) {
  cu::RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.Add(i * 0.5);
    all.Add(i * 0.5);
  }
  for (int i = 50; i < 120; ++i) {
    b.Add(i * 0.5);
    all.Add(i * 0.5);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(Stats, MergeWithEmptySides) {
  cu::RunningStats a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1u);
  cu::RunningStats c;
  c.Merge(a);
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_DOUBLE_EQ(c.Mean(), 3.0);
}

TEST(Stats, PercentilesInterpolate) {
  cu::SampleStats s;
  for (int i = 1; i <= 5; ++i) s.Add(i);  // 1 2 3 4 5
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(12.5), 1.5);
}

TEST(Stats, PercentileAfterLateAdd) {
  cu::SampleStats s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  s.Add(0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
}

// ---- Spanning tree -------------------------------------------------------------

class SpanTreeParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SpanTreeParam, ParentChildConsistent) {
  const auto [npes, root, branching] = GetParam();
  cu::SpanningTree t(npes, root, branching);
  int reachable = 0;
  for (int pe = 0; pe < npes; ++pe) {
    const int parent = t.Parent(pe);
    if (pe == root) {
      EXPECT_EQ(parent, -1);
    } else {
      ASSERT_GE(parent, 0);
      auto kids = t.Children(parent);
      EXPECT_NE(std::find(kids.begin(), kids.end(), pe), kids.end())
          << "pe " << pe << " missing from its parent's child list";
    }
    const auto kids = t.Children(pe);
    EXPECT_EQ(static_cast<int>(kids.size()), t.NumChildren(pe));
    EXPECT_LE(static_cast<int>(kids.size()), branching);
    for (int k : kids) {
      EXPECT_EQ(t.Parent(k), pe);
      EXPECT_EQ(t.Depth(k), t.Depth(pe) + 1);
    }
    reachable += 1;
  }
  EXPECT_EQ(reachable, npes);
}

TEST_P(SpanTreeParam, EveryPeReachesRoot) {
  const auto [npes, root, branching] = GetParam();
  cu::SpanningTree t(npes, root, branching);
  for (int pe = 0; pe < npes; ++pe) {
    int cur = pe;
    int steps = 0;
    while (cur != root) {
      cur = t.Parent(cur);
      ASSERT_GE(cur, 0);
      ASSERT_LE(++steps, npes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpanTreeParam,
    ::testing::Values(std::make_tuple(1, 0, 4), std::make_tuple(2, 0, 4),
                      std::make_tuple(2, 1, 4), std::make_tuple(7, 3, 2),
                      std::make_tuple(8, 0, 1), std::make_tuple(16, 5, 3),
                      std::make_tuple(33, 32, 4), std::make_tuple(64, 0, 8)));

TEST(SpanTree, DepthOfRootIsZero) {
  cu::SpanningTree t(16, 3, 4);
  EXPECT_EQ(t.Depth(3), 0);
}

// ---- Pack/Unpack ----------------------------------------------------------------

TEST(Pack, RoundTripScalarsArraysStrings) {
  cu::Packer p;
  p.Put<int>(42);
  p.Put<double>(3.25);
  const int arr[] = {1, 2, 3, 4};
  p.PutArray(arr, 4);
  p.PutString("hello converse");

  cu::Unpacker u(p.data(), p.size());
  EXPECT_EQ(u.Get<int>(), 42);
  EXPECT_EQ(u.Get<double>(), 3.25);
  const auto back = u.GetArray<int>();
  EXPECT_EQ(back, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(u.GetString(), "hello converse");
  EXPECT_EQ(u.Remaining(), 0u);
}

TEST(Pack, UnpackerThrowsOnOverrun) {
  cu::Packer p;
  p.Put<int>(1);
  cu::Unpacker u(p.data(), p.size());
  (void)u.Get<int>();
  EXPECT_THROW(u.Get<int>(), cu::PackError);
}

TEST(Pack, UnpackerThrowsOnBogusArrayLength) {
  // A huge length prefix must not cause allocation before validation.
  cu::Packer p;
  p.Put<std::uint64_t>(1ull << 60);
  cu::Unpacker u(p.data(), p.size());
  EXPECT_THROW(u.GetArray<int>(), cu::PackError);
}

TEST(Pack, EmptyArrayAndString) {
  cu::Packer p;
  p.PutArray<int>(nullptr, 0);
  p.PutString("");
  cu::Unpacker u(p.data(), p.size());
  EXPECT_TRUE(u.GetArray<int>().empty());
  EXPECT_EQ(u.GetString(), "");
}

// ---- CRC -----------------------------------------------------------------------

TEST(Crc, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(cu::Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc, EmptyIsZero) { EXPECT_EQ(cu::Crc32c("", 0), 0u); }

TEST(Crc, IncrementalEqualsOneShot) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = std::strlen(s);
  const auto one = cu::Crc32c(s, n);
  auto part = cu::Crc32c(s, 10);
  part = cu::Crc32c(s + 10, n - 10, part);
  EXPECT_EQ(part, one);
}

TEST(Crc, SensitiveToSingleBitFlip) {
  char buf[64];
  std::memset(buf, 0xab, sizeof(buf));
  const auto base = cu::Crc32c(buf, sizeof(buf));
  buf[17] ^= 1;
  EXPECT_NE(cu::Crc32c(buf, sizeof(buf)), base);
}

// ---- Timer ---------------------------------------------------------------------

TEST(Timer, Monotonic) {
  const auto a = cu::NowNs();
  const auto b = cu::NowNs();
  EXPECT_LE(a, b);
}
