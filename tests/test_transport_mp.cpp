// Real multi-process transport tests: fork one OS process per node and
// drive actual Unix-domain sockets between them (what tools/converserun
// does, minus the exec).  Each child runs a full RunConverse machine with
// MachineConfig::mynode set and reports pass/fail through its exit code;
// the parent asserts on the collected codes.
//
// The fault-path tests exercise the wire's failure semantics: a peer that
// dies mid-stream must abort the survivors after CONVERSE_WIRE_TIMEOUT_MS
// (never hang), and a connection torn down at a partial record must not
// deliver the truncated tail.
#include "test_helpers.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

using namespace converse;

namespace {

// Exit codes children use to report what happened.
constexpr int kPass = 0;
constexpr int kCheckFailed = 3;   // machine ran but an assertion failed
constexpr int kNoAbort = 4;       // expected MachineAborted, machine exited
constexpr int kAborted = 5;       // machine aborted (expected in fault tests)

struct ForkResult {
  std::vector<int> codes;  // per-node exit code (128+sig for signals)
};

// Fork `nnodes` children; child `i` runs `body(cfg, node)` on a config
// pre-wired for real mode over a fresh Unix-socket rendezvous directory
// and _exits with its return value.  gtest never runs in the children.
ForkResult ForkNodes(int npes, int nnodes, CmiTransport transport,
                     int wire_timeout_ms,
                     const std::function<int(MachineConfig&, int)>& body) {
  char rdv[] = "/tmp/converse_mp.XXXXXX";
  if (mkdtemp(rdv) == nullptr) {
    ADD_FAILURE() << "mkdtemp failed";
    return {};
  }
  std::vector<pid_t> pids;
  for (int node = 0; node < nnodes; ++node) {
    const pid_t pid = fork();
    if (pid == 0) {
      MachineConfig cfg;
      cfg.npes = npes;
      cfg.nnodes = nnodes;
      cfg.transport = transport;
      cfg.mynode = node;
      cfg.rendezvous_dir = rdv;
      cfg.wire_timeout_ms = wire_timeout_ms;
      _exit(body(cfg, node));
    }
    pids.push_back(pid);
  }
  ForkResult r;
  r.codes.resize(static_cast<std::size_t>(nnodes), -1);
  for (int node = 0; node < nnodes; ++node) {
    int status = 0;
    waitpid(pids[static_cast<std::size_t>(node)], &status, 0);
    r.codes[static_cast<std::size_t>(node)] =
        WIFEXITED(status) ? WEXITSTATUS(status)
                          : 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
  }
  for (int node = 0; node < nnodes; ++node) {
    const std::string sock =
        std::string(rdv) + "/node" + std::to_string(node) + ".sock";
    unlink(sock.c_str());
  }
  rmdir(rdv);
  return r;
}

}  // namespace

TEST(TransportMp, PingpongAcrossProcesses) {
  // Two single-PE processes bounce a counted token over a real socket;
  // both sides verify the count and the sender-side wire counters.
  constexpr int kRounds = 50;
  const ForkResult r = ForkNodes(
      2, 2, CmiTransport::kSocket, 10000, [](MachineConfig& cfg, int) {
        int rounds = 0;
        std::uint64_t frames = 0, syscalls = 0;
        RunConverse(cfg, [&](int pe, int) {
          int h = -1;
          h = CmiRegisterHandler([&h, &rounds](void* msg) {
            int v;
            std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
            rounds = v;
            if (v >= kRounds) {
              ConverseBroadcastExit();
              return;
            }
            const int next = v + 1;
            void* m = CmiMakeMessage(h, &next, sizeof(next));
            CmiSyncSendAndFree(CmiMyPe() == 0 ? 1 : 0, CmiMsgTotalSize(m), m);
          });
          if (pe == 0) {
            const int zero = 0;
            void* m = CmiMakeMessage(h, &zero, sizeof(zero));
            CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
          }
          CsdScheduler(-1);
          const CmiStats s = CmiGetStats();
          frames = s.wire_frames_sent;
          syscalls = s.wire_syscalls;
        });
        // Each side sent ~kRounds/2 legs; every leg is one record, and
        // real sockets must have made actual syscalls to carry them.
        if (rounds < kRounds - 1) return kCheckFailed;
        if (frames == 0 || syscalls == 0) return kCheckFailed;
        return kPass;
      });
  ASSERT_EQ(r.codes.size(), 2u);
  EXPECT_EQ(r.codes[0], kPass);
  EXPECT_EQ(r.codes[1], kPass);
}

TEST(TransportMp, BroadcastAndImmediatesSmpNode) {
  // 2 processes x 2 PEs (SMP-node mode): pattern-checked broadcasts (small
  // wrapper path AND share-threshold shared-block path) plus immediates,
  // with acks converging on PE 0.
  constexpr int kSmall = 8, kBig = 2;
  constexpr std::size_t kBigBytes = 8192;
  const ForkResult r = ForkNodes(
      4, 2, CmiTransport::kSmpNode, 10000, [](MachineConfig& cfg, int) {
        std::atomic<int> bad{0};
        cfg.bcast_share_min = 4096;  // kBig broadcasts take the shared path
        RunConverse(cfg, [&](int pe, int n) {
          thread_local int acks, imms, seen;
          acks = imms = seen = 0;
          int h_ack = CmiRegisterHandler([n](void*) {
            if (++acks == (kSmall + kBig) * n) ConverseBroadcastExit();
          });
          int h_bc = CmiRegisterHandler([&bad, h_ack](void* msg) {
            unsigned seed;
            std::memcpy(&seed, CmiMsgPayload(msg), sizeof(seed));
            const auto* p =
                static_cast<const unsigned char*>(CmiMsgPayload(msg)) +
                sizeof(seed);
            const std::size_t len = CmiMsgPayloadSize(msg) - sizeof(seed);
            for (std::size_t i = 0; i < len; ++i) {
              if (p[i] != static_cast<unsigned char>((seed + i * 7) & 0xff)) {
                ++bad;
                break;
              }
            }
            ++seen;
            void* m = CmiMakeMessage(h_ack, &seed, sizeof(seed));
            CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
          });
          int h_imm = CmiRegisterHandler([](void*) { ++imms; });
          if (pe == 0) {
            for (int i = 0; i < kSmall + kBig; ++i) {
              const std::size_t body = i < kSmall ? 48 : kBigBytes;
              const unsigned seed = 0xb0u + static_cast<unsigned>(i);
              void* m = CmiAlloc(
                  static_cast<std::size_t>(CmiMsgHeaderSizeBytes()) +
                  sizeof(seed) + body);
              CmiSetHandler(m, h_bc);
              std::memcpy(CmiMsgPayload(m), &seed, sizeof(seed));
              auto* p = static_cast<unsigned char*>(CmiMsgPayload(m)) +
                        sizeof(seed);
              for (std::size_t j = 0; j < body; ++j) {
                p[j] = static_cast<unsigned char>((seed + j * 7) & 0xff);
              }
              CmiSyncBroadcastAllAndFree(CmiMsgTotalSize(m), m);
            }
            // A few immediates to the last PE (crosses the node boundary).
            for (int i = 0; i < 4; ++i) {
              void* m = CmiMakeMessage(h_imm, &i, sizeof(i));
              CmiSyncSendImmediateAndFree(
                  static_cast<unsigned>(n - 1), CmiMsgTotalSize(m), m);
            }
          }
          CsdScheduler(-1);
          if (seen != kSmall + kBig) ++bad;
        });
        return bad.load() == 0 ? kPass : kCheckFailed;
      });
  ASSERT_EQ(r.codes.size(), 2u);
  EXPECT_EQ(r.codes[0], kPass);
  EXPECT_EQ(r.codes[1], kPass);
}

TEST(TransportMp, KilledPeerAbortsSurvivorAfterTimeout) {
  // Node 1 dies before ever joining the rendezvous; node 0 must abort
  // (MachineAborted surfacing as an exception from RunConverse) once the
  // wire timeout expires — a dead rank may never hang the machine.
  const ForkResult r = ForkNodes(
      2, 2, CmiTransport::kSocket, 1200, [](MachineConfig& cfg, int node) {
        if (node == 1) _exit(kAborted);  // die without ever connecting
        try {
          RunConverse(cfg, [&](int pe, int) {
            int h = -1;
            h = CmiRegisterHandler([](void*) {});
            if (pe == 0) {
              // Traffic for the dead peer queues, then the timeout fires.
              void* m = CmiMakeMessage(h, nullptr, 0);
              CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
            }
            CsdScheduler(-1);
          });
        } catch (const std::exception&) {
          return kAborted;  // expected: the machine aborted
        }
        return kNoAbort;
      });
  ASSERT_EQ(r.codes.size(), 2u);
  EXPECT_EQ(r.codes[0], kAborted) << "survivor did not abort";
  EXPECT_EQ(r.codes[1], kAborted);
}

TEST(TransportMp, PeerDyingMidStreamAbortsSurvivor) {
  // Node 1 connects, exchanges some traffic, then dies WITHOUT the
  // goodbye handshake (simulating a crash mid-conversation, possibly at a
  // partial record).  The survivor must notice the unclean EOF, fail to
  // reconnect, and abort after the timeout instead of waiting forever.
  const ForkResult r = ForkNodes(
      2, 2, CmiTransport::kSocket, 1500, [](MachineConfig& cfg, int node) {
        bool got_any = false;
        try {
          RunConverse(cfg, [&](int pe, int) {
            int h = CmiRegisterHandler([&got_any](void* msg) {
              got_any = true;
              if (CmiMyPe() == 1) {
                // Crash the whole process from inside a handler: no
                // goodbye record, the socket just resets.
                _exit(kAborted);
              }
              (void)msg;
            });
            if (pe == 0) {
              for (int i = 0; i < 4; ++i) {
                void* m = CmiMakeMessage(h, &i, sizeof(i));
                CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
              }
            }
            CsdScheduler(-1);
          });
        } catch (const std::exception&) {
          return got_any || node == 0 ? kAborted : kCheckFailed;
        }
        return kNoAbort;
      });
  ASSERT_EQ(r.codes.size(), 2u);
  EXPECT_EQ(r.codes[0], kAborted) << "survivor did not abort on dead peer";
  EXPECT_EQ(r.codes[1], kAborted) << "peer did not die as scripted";
}
