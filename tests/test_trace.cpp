// Trace module tests (paper §3.3.2): summary counters, full event log in
// the standard format, self-describing user events, creation events.
#include "test_helpers.h"

#include <algorithm>
#include <cstring>
#include <string>

using namespace converse;

namespace {

int CountKind(const std::vector<TraceRecord>& log, TraceEventKind k) {
  return static_cast<int>(
      std::count_if(log.begin(), log.end(),
                    [k](const TraceRecord& r) { return r.kind == k; }));
}

}  // namespace

TEST(Trace, SummaryCountsSendsAndDeliveries) {
  std::atomic<long> sends{0}, deliveries{0};
  RunConverse(2, [&](int pe, int) {
    TraceBegin(TraceMode::kSummary);
    int noop = CmiRegisterHandler([](void*) {});
    int ex = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      for (int i = 0; i < 4; ++i) {
        void* m = CmiMakeMessage(noop, nullptr, 0);
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      void* m = CmiMakeMessage(ex, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      const auto s = TraceGetSummary();
      sends += static_cast<long>(s.sends);
      TraceEnd();
      return;
    }
    CsdScheduler(-1);
    const auto s = TraceGetSummary();
    deliveries += static_cast<long>(s.deliveries);
    // Per-handler attribution: exactly 4 noop invocations.
    ASSERT_GT(s.per_handler.size(), static_cast<std::size_t>(noop));
    EXPECT_EQ(s.per_handler[static_cast<std::size_t>(noop)].invocations, 4u);
    TraceEnd();
  });
  EXPECT_EQ(sends.load(), 5);
  EXPECT_EQ(deliveries.load(), 5);
}

TEST(Trace, LogRecordsMatchedBeginEndPairs) {
  RunConverse(1, [&](int, int) {
    TraceBegin(TraceMode::kLog);
    int h = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    for (int i = 0; i < 3; ++i) CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(3);
    const auto& log = TraceGetLog();
    EXPECT_EQ(CountKind(log, TraceEventKind::kEnqueue), 3);
    EXPECT_EQ(CountKind(log, TraceEventKind::kScheduleBegin), 3);
    EXPECT_EQ(CountKind(log, TraceEventKind::kScheduleEnd), 3);
    // Timestamps are nondecreasing.
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_LE(log[i - 1].time_us, log[i].time_us);
    }
    TraceEnd();
  });
}

TEST(Trace, NetworkDeliveryUsesDeliverKind) {
  std::atomic<int> deliver_begins{0};
  RunConverse(2, [&](int pe, int) {
    TraceBegin(TraceMode::kLog);
    int h = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      TraceEnd();
      return;
    }
    CsdScheduler(-1);
    deliver_begins +=
        CountKind(TraceGetLog(), TraceEventKind::kDeliverBegin);
    TraceEnd();
  });
  EXPECT_EQ(deliver_begins.load(), 1);
}

TEST(Trace, UserEventsAndDumpFormat) {
  std::string dump;
  RunConverse(1, [&](int, int) {
    TraceBegin(TraceMode::kLog);
    const int ev = TraceRegisterUserEvent("phase-boundary");
    TraceUserEvent(ev);
    TraceUserEvent(ev);
    TraceNoteThreadCreate();
    TraceNoteObjectCreate();
    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    TraceDump(mem);
    std::fclose(mem);
    dump.assign(buf, len);
    free(buf);
    TraceEnd();
  });
  EXPECT_NE(dump.find("CONVERSE-TRACE v1 pe=0"), std::string::npos);
  EXPECT_NE(dump.find("USER-EVENT 0 phase-boundary"), std::string::npos);
  EXPECT_NE(dump.find("USER_EVENT"), std::string::npos);
  EXPECT_NE(dump.find("THREAD_CREATE"), std::string::npos);
  EXPECT_NE(dump.find("OBJECT_CREATE"), std::string::npos);
}

TEST(Trace, DisabledModeRecordsNothing) {
  RunConverse(1, [&](int, int) {
    int h = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(1);
    EXPECT_TRUE(TraceGetLog().empty());
    EXPECT_EQ(TraceGetSummary().deliveries, 0u);
  });
}

TEST(Trace, TraceEndDisconnectsHooks) {
  RunConverse(1, [&](int, int) {
    TraceBegin(TraceMode::kSummary);
    int h = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(1);
    const auto before = TraceGetSummary().deliveries;
    TraceEnd();
    CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(1);
    EXPECT_EQ(TraceGetSummary().deliveries, before);
  });
}

TEST(Trace, IdlePeriodsAreRecorded) {
  RunConverse(2, [&](int pe, int) {
    TraceBegin(TraceMode::kSummary);
    int h = CmiRegisterHandler([](void*) { CsdExitScheduler(); });
    if (pe == 0) {
      // Delay so PE1 blocks idle first.
      volatile double x = 1;
      for (int i = 0; i < 3000000; ++i) x = x * 1.0000001;
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      TraceEnd();
      return;
    }
    CsdScheduler(-1);
    const auto s = TraceGetSummary();
    EXPECT_GE(s.idle_periods, 1u);
    EXPECT_GT(s.idle_us, 0.0);
    TraceEnd();
  });
}

TEST(Trace, ClearResetsState) {
  RunConverse(1, [&](int, int) {
    TraceBegin(TraceMode::kLog);
    int h = CmiRegisterHandler([](void* msg) { CmiFree(msg); });
    CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(1);
    EXPECT_FALSE(TraceGetLog().empty());
    TraceClear();
    EXPECT_TRUE(TraceGetLog().empty());
    EXPECT_EQ(TraceGetSummary().deliveries, 0u);
    TraceEnd();
  });
}
