// Randomized multi-paradigm stress tests: several runtimes active at once
// on one machine, with seeds controlling the interleavings.  Invariants:
// nothing deadlocks, every message is accounted for, payloads arrive
// intact.
#include "test_helpers.h"

#include <cstring>

#include "converse/futures.h"
#include "converse/langs/charm.h"
#include "converse/langs/cmpi.h"
#include "converse/langs/sm.h"
#include "converse/langs/tsm.h"
#include "converse/util/crc.h"
#include "converse/util/rng.h"

using namespace converse;

class StressSeed : public ::testing::TestWithParam<unsigned> {};

TEST_P(StressSeed, MixedParadigmTrafficAllAccounted) {
  constexpr int kNpes = 4;
  constexpr int kOpsPerPe = 150;
  std::atomic<long> raw_received{0}, sm_received{0}, chare_invoked{0},
      thread_done{0};
  std::atomic<long> raw_sent{0}, sm_sent{0}, chare_sent{0},
      thread_spawned{0};
  std::atomic<int> senders_done{0};

  RunConverse(kNpes, [&](int pe, int np) {
    CldSetStrategy(CldStrategy::kRandom);

    // --- paradigm 1: raw handlers with CRC'd payloads ---
    int raw = CmiRegisterHandler([&](void* msg) {
      const auto n = CmiMsgPayloadSize(msg) - 4;
      const char* d = static_cast<const char*>(CmiMsgPayload(msg));
      std::uint32_t want;
      std::memcpy(&want, d + n, 4);
      ASSERT_EQ(util::Crc32c(d, n), want);
      ++raw_received;
    });

    // --- paradigm 2: charm chares created via seeds ---
    struct Sink : charm::Chare {
      Sink(const void*, std::size_t) {}
    };
    // Atomic: every PE thread stores the (identical) pointer concurrently.
    static std::atomic<std::atomic<long>*> chare_counter;
    chare_counter.store(&chare_invoked);
    const int sink_type =
        charm::RegisterChare("sink", [](const void*, std::size_t) -> charm::Chare* {
          chare_counter.load()->fetch_add(1);
          return new Sink(nullptr, 0);
        });

    // --- driver: every PE mixes operations, seeded ---
    util::Xoshiro256 rng(GetParam() * 1000 + static_cast<unsigned>(pe));
    for (int op = 0; op < kOpsPerPe; ++op) {
      switch (rng.Below(4)) {
        case 0: {  // raw message with checksum
          const std::size_t n = rng.Below(512) + 1;
          void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + n + 4);
          CmiSetHandler(m, raw);
          auto* d = static_cast<char*>(CmiMsgPayload(m));
          for (std::size_t j = 0; j < n; ++j) {
            d[j] = static_cast<char>(rng.Next());
          }
          const std::uint32_t crc = util::Crc32c(d, n);
          std::memcpy(d + n, &crc, 4);
          ++raw_sent;
          CmiSyncSendAndFree(
              static_cast<unsigned>(rng.Below(static_cast<std::uint64_t>(np))),
              CmiMsgTotalSize(m), m);
          break;
        }
        case 1: {  // SM tagged message to a thread on a random PE
          const long v = static_cast<long>(rng.Next());
          ++sm_sent;
          sm::SmSend(static_cast<int>(rng.Below(static_cast<std::uint64_t>(np))),
                     500, &v, sizeof(v));
          break;
        }
        case 2: {  // chare seed
          ++chare_sent;
          charm::CreateChare(sink_type, nullptr, 0);
          break;
        }
        case 3: {  // local thread that yields a few times
          ++thread_spawned;
          tsm::tSMCreate([&, yields = rng.Below(4)] {
            for (std::uint64_t y = 0; y < yields; ++y) CthYield();
            ++thread_done;
          });
          break;
        }
      }
      // Occasionally let the scheduler breathe mid-burst.
      if (op % 32 == 31) CsdSchedulePoll(8);
    }

    // One consumer thread per PE drains SM traffic forever (until exit).
    tsm::tSMCreate([&] {
      for (;;) {
        long v = 0;
        sm::SmRecv(&v, sizeof(v), 500);
        ++sm_received;
      }
    });

    // Completion: when every PE finished its send loop AND quiescence of
    // the charm layer is reached AND counts match, PE0 ends the run.
    // `poll` must outlive the whole scheduling phase (the QD callback
    // keeps a reference to it for re-arming), so it lives at entry scope.
    ++senders_done;
    std::function<void()> poll;
    if (pe == 0) {
      poll = [&]() {
        const bool all_sent = senders_done.load() == np;
        const bool raw_ok = raw_received.load() == raw_sent.load();
        const bool sm_ok = sm_received.load() == sm_sent.load();
        const bool chare_ok = chare_invoked.load() == chare_sent.load();
        const bool thr_ok = thread_done.load() == thread_spawned.load();
        if (all_sent && raw_ok && sm_ok && chare_ok && thr_ok) {
          ConverseBroadcastExit();
          return;
        }
        charm::StartQuiescence(poll);  // re-arm: QD fires when traffic drains
      };
      charm::StartQuiescence(poll);
    }
    CsdScheduler(-1);
  });

  EXPECT_EQ(raw_received.load(), raw_sent.load());
  EXPECT_EQ(sm_received.load(), sm_sent.load());
  EXPECT_EQ(chare_invoked.load(), chare_sent.load());
  EXPECT_EQ(thread_done.load(), thread_spawned.load());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Stress, TinyRingWrapsAndSpillsKeepPerSenderFifo) {
  // ring_capacity 4 forces constant wraparound and overflow spills on the
  // lock-free delivery lanes; the per-sender FIFO contract must survive
  // both paths (a message spilled to the overflow deque must never be
  // passed by a later message from the same sender going via the ring).
  constexpr int kNpes = 5;
  constexpr int kPerSender = 400;
  MachineConfig cfg;
  cfg.npes = kNpes;
  cfg.ring_capacity = 4;
  std::atomic<long> received{0};
  std::atomic<bool> fifo_ok{true};
  RunConverse(cfg, [&](int pe, int np) {
    struct Wire {
      std::int32_t sender;
      std::int32_t seq;
    };
    std::vector<int> last_seq(static_cast<std::size_t>(np), -1);
    int h = CmiRegisterHandler([&](void* msg) {
      Wire w;
      std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
      if (w.seq != last_seq[w.sender] + 1) fifo_ok = false;
      last_seq[w.sender] = w.seq;
      if (++received == static_cast<long>(np - 1) * kPerSender) {
        ConverseBroadcastExit();
      }
    });
    if (pe != 0) {
      for (int i = 0; i < kPerSender; ++i) {
        Wire w{pe, i};
        void* m = CmiMakeMessage(h, &w, sizeof(w));
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_TRUE(fifo_ok.load());
  EXPECT_EQ(received.load(), static_cast<long>(kNpes - 1) * kPerSender);
}

TEST(Stress, RemoteFreeReturnRingsUnderEightPeAllToAll) {
  // All-to-all traffic on 8 PEs: every message is allocated from the
  // sender's pool and freed on the receiver's thread, exercising the
  // cross-thread return rings.  The memory-stats deltas must show the
  // remote frees (when the pool is enabled) and the run must account for
  // every message.
  const CmiMemoryStats before = CmiGetMemoryStats();
  constexpr int kNpes = 8;
  constexpr int kPerDest = 120;
  constexpr long kTotal =
      static_cast<long>(kNpes) * (kNpes - 1) * kPerDest;
  std::atomic<long> received{0};
  std::atomic<bool> aggregated{false};
  RunConverse(kNpes, [&](int pe, int np) {
    if (pe == 0) aggregated = CmiAggActive();
    int h = CmiRegisterHandler([&](void*) {
      if (++received == kTotal) ConverseBroadcastExit();
    });
    for (int dest = 0; dest < np; ++dest) {
      if (dest == pe) continue;
      for (int i = 0; i < kPerDest; ++i) {
        void* m = CmiMakeMessage(h, &i, sizeof(i));
        CmiSyncSendAndFree(static_cast<unsigned>(dest), CmiMsgTotalSize(m),
                           m);
      }
    }
    CsdScheduler(-1);
  });
  EXPECT_EQ(received.load(), kTotal);
  const CmiMemoryStats after = CmiGetMemoryStats();
  if (!after.pool_enabled) GTEST_SKIP() << "message pool disabled";
  if (aggregated.load()) {
    // Aggregated runs materialize (and free) the small messages on the
    // receiver; only frame buffers cross threads, so the per-message
    // remote-free invariant does not apply.
    GTEST_SKIP() << "aggregation on: inners are receiver-local";
  }
  // Every cross-PE message was freed on a thread that does not own it.
  EXPECT_GE(after.remote_frees - before.remote_frees,
            static_cast<std::uint64_t>(kTotal));
}

TEST(Stress, PoolReusesFreedBlocks) {
  // Local alloc/free cycles of one size class must hit the freelist on
  // every iteration after the first (observable reuse, not just counters
  // standing still).
  const CmiMemoryStats before = CmiGetMemoryStats();
  RunConverse(1, [&](int, int) {
    const std::size_t bytes = CmiMsgHeaderSizeBytes() + 64;
    for (int i = 0; i < 64; ++i) {
      void* m = CmiAlloc(bytes);
      CmiFree(m);
    }
  });
  const CmiMemoryStats after = CmiGetMemoryStats();
  if (!after.pool_enabled) GTEST_SKIP() << "message pool disabled";
  EXPECT_GE(after.pool_hits - before.pool_hits, 63u);
  EXPECT_GT(after.local_frees, before.local_frees);
}

TEST(Stress, ManySequentialMachines) {
  // Machine setup/teardown hygiene: leaks or stale state would accumulate.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    RunConverse(1 + round % 3, [&](int, int) {
      int h = CmiRegisterHandler([&](void*) {
        ++count;
        CsdExitScheduler();
      });
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(static_cast<unsigned>(CmiMyPe()),
                         CmiMsgTotalSize(m), m);
      CsdScheduler(-1);
    });
    EXPECT_EQ(count.load(), 1 + round % 3);
  }
}

TEST(Stress, CthParkAwakenHundredThousandCycles) {
  // Session-scale thread churn (the service runtime's worker discipline,
  // magnified): 32 threads per PE on 4 PEs each park and get awakened 800
  // times — 102,400 suspend/awaken cycles — driven by wake tokens that
  // circulate across the PEs.  Every cycle must be accounted for and the
  // run must terminate cleanly; TSan / CONVERSE_RACE builds additionally
  // check the park/awaken handoffs are race-free.
  constexpr int kNpes = 4;
  constexpr int kThreads = 32;
  constexpr int kCycles = 800;
  std::atomic<long> total_cycles{0};
  std::atomic<int> pes_done{0};
  std::atomic<int> tokens_swallowed{0};
  RunConverse(kNpes, [&](int pe, int np) {
    struct Slot {
      CthThread* t = nullptr;
      bool parked = false;
    };
    // Per-PE state, touched only from this PE's thread (handlers and Cth
    // threads of one PE run cooperatively), so no locks needed.
    std::vector<Slot> slots(kThreads);
    int exited = 0;
    int h = -1;
    h = CmiRegisterHandler([&](void*) {
      // A wake token: awaken every parked thread here, then pass the token
      // on.  Once every PE's threads finished, each of the np circulating
      // tokens is swallowed exactly once; the last one ends the run.
      for (Slot& s : slots) {
        if (s.parked) {
          s.parked = false;
          CthAwaken(s.t);
        }
      }
      if (pes_done.load() == np) {
        if (++tokens_swallowed == np) ConverseBroadcastExit();
        return;
      }
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(static_cast<unsigned>((pe + 1) % np),
                         CmiMsgTotalSize(m), m);
    });
    for (int i = 0; i < kThreads; ++i) {
      slots[i].t = CthCreate([&, i] {
        Slot& self = slots[i];
        for (int c = 0; c < kCycles; ++c) {
          // No yield point between setting parked and suspending, so the
          // token handler can never observe a half-parked thread.
          self.parked = true;
          CthSuspend();
          ++total_cycles;
        }
        if (++exited == kThreads) ++pes_done;
      });
      CthAwaken(slots[i].t);  // run to the first park
    }
    // Each PE launches one token; np tokens circulate concurrently.
    void* m = CmiMakeMessage(h, nullptr, 0);
    CmiSyncSendAndFree(static_cast<unsigned>((pe + 1) % np),
                       CmiMsgTotalSize(m), m);
    CsdScheduler(-1);
  });
  EXPECT_EQ(total_cycles.load(),
            static_cast<long>(kNpes) * kThreads * kCycles);
  EXPECT_EQ(pes_done.load(), kNpes);
  EXPECT_EQ(tokens_swallowed.load(), kNpes);
}

TEST(Stress, FuturesFanOutFanInUnderLoad) {
  constexpr int kWaves = 10;
  constexpr int kPerWave = 16;
  std::atomic<long> total{0};
  RunConverse(3, [&](int pe, int np) {
    struct Wire {
      Cfuture f;
      long v;
    };
    int worker = CmiRegisterHandler([](void* msg) {
      Wire w;
      std::memcpy(&w, CmiMsgPayload(msg), sizeof(w));
      CfutureSetValue<long>(w.f, w.v + 1);
    });
    if (pe == 0) {
      long acc = 0;
      for (int wave = 0; wave < kWaves; ++wave) {
        std::vector<Cfuture> fs;
        for (int i = 0; i < kPerWave; ++i) {
          Cfuture f = CfutureCreate();
          fs.push_back(f);
          Wire w{f, wave * kPerWave + i};
          void* m = CmiMakeMessage(worker, &w, sizeof(w));
          CmiSyncSendAndFree(
              static_cast<unsigned>(1 + (i % (np - 1))),
              CmiMsgTotalSize(m), m);
        }
        for (Cfuture f : fs) {
          acc += CfutureWaitValue<long>(f);
          CfutureDestroy(f);
        }
      }
      total = acc;
      ConverseBroadcastExit();
    }
    CsdScheduler(-1);
  });
  const long n = kWaves * kPerWave;
  EXPECT_EQ(total.load(), n * (n - 1) / 2 + n);
}
