// Integration tests for the unified scheduler (paper §3.1.2): loop
// variants, exit, enqueue strategies, the second-handler idiom, and
// SPM/implicit-regime interleaving.
#include "test_helpers.h"

#include <cstring>
#include <vector>

using namespace converse;

namespace {

/// Enqueue a locally-owned message that appends `id` to `order` when run.
int MakeRecorder(std::vector<int>* order) {
  return CmiRegisterHandler([order](void* msg) {
    order->push_back(*static_cast<int*>(CmiMsgPayload(msg)));
    CmiFree(msg);  // scheduler-queue deliveries are handler-owned
  });
}

void* IdMsg(int handler, int id) {
  return CmiMakeMessage(handler, &id, sizeof(id));
}

}  // namespace

TEST(Scheduler, EnqueueFifoRunsInOrder) {
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    int h = MakeRecorder(&order);
    for (int i = 0; i < 5; ++i) CsdEnqueue(IdMsg(h, i));
    EXPECT_EQ(CsdLength(), 5u);
    CsdScheduler(5);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EnqueueLifoRunsInReverse) {
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    int h = MakeRecorder(&order);
    for (int i = 0; i < 4; ++i) CsdEnqueueLifo(IdMsg(h, i));
    CsdScheduler(4);
  });
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Scheduler, IntPriorityOrdering) {
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    int h = MakeRecorder(&order);
    CsdEnqueueIntPrio(IdMsg(h, 30), 30);
    CsdEnqueueIntPrio(IdMsg(h, 10), 10);
    CsdEnqueue(IdMsg(h, 0));  // unprioritized == priority 0
    CsdEnqueueIntPrio(IdMsg(h, -5), -5);
    CsdScheduler(4);
  });
  EXPECT_EQ(order, (std::vector<int>{-5, 0, 10, 30}));
}

TEST(Scheduler, BitvecPriorityOrdering) {
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    int h = MakeRecorder(&order);
    const std::uint32_t hi[] = {0x00000000u};  // highest (lexicographically least)
    const std::uint32_t lo[] = {0x40000000u};
    CsdEnqueueBitvecPrio(IdMsg(h, 2), lo, 4);
    CsdEnqueueBitvecPrio(IdMsg(h, 1), hi, 4);
    CsdScheduler(2);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, SchedulerCountsBothNetworkAndQueueMessages) {
  std::atomic<int> handled{0};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      ++handled;
      // Network deliveries are system-owned: no free here.
      (void)msg;
    });
    int hq = CmiRegisterHandler([&](void* msg) {
      ++handled;
      CmiFree(msg);
    });
    if (pe == 0) {
      // 2 network messages to PE1 + PE1 enqueues 2 local ones.
      for (int i = 0; i < 2; ++i) {
        void* m = CmiMakeMessage(h, nullptr, 0);
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
    } else {
      for (int i = 0; i < 2; ++i) CsdEnqueue(CmiMakeMessage(hq, nullptr, 0));
      CsdScheduler(4);  // exactly four deliveries
      EXPECT_TRUE(CsdLength() == 0u);
    }
  });
  EXPECT_EQ(handled.load(), 4);
}

TEST(Scheduler, ExitSchedulerStopsMinusOneLoop) {
  std::atomic<int> ran{0};
  RunConverse(1, [&](int, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      if (++ran == 3) CsdExitScheduler();
      CmiFree(msg);
    });
    for (int i = 0; i < 3; ++i) CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(-1);
  });
  EXPECT_EQ(ran.load(), 3);
}

TEST(Scheduler, ExitLeavesRemainingMessagesQueued) {
  std::atomic<int> ran{0};
  RunConverse(1, [&](int, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      ++ran;
      CsdExitScheduler();
      CmiFree(msg);
    });
    for (int i = 0; i < 5; ++i) CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(-1);
    EXPECT_EQ(CsdLength(), 4u);  // one consumed, four remain
    CsdScheduler(-1);
    EXPECT_EQ(CsdLength(), 3u);  // exit flag was consumed, not sticky
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(Scheduler, ScheduleUntilIdleDrainsEverything) {
  std::atomic<int> ran{0};
  RunConverse(1, [&](int, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      // Cascade: first three messages enqueue a follow-up each.
      if (ran.fetch_add(1) < 3) {
        CsdEnqueue(CmiMakeMessage(CmiGetHandler(msg), nullptr, 0));
      }
      CmiFree(msg);
    });
    CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    const int n = CsdScheduleUntilIdle();
    EXPECT_EQ(n, 4);
    EXPECT_TRUE(CsdIsIdle());
  });
  EXPECT_EQ(ran.load(), 4);
}

TEST(Scheduler, PollDoesNotBlockOnEmpty) {
  RunConverse(1, [&](int, int) {
    EXPECT_EQ(CsdSchedulePoll(), 0);  // must return immediately
  });
}

TEST(Scheduler, SchedulerNDeliversExactlyN) {
  std::atomic<int> ran{0};
  RunConverse(1, [&](int, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      ++ran;
      CmiFree(msg);
    });
    for (int i = 0; i < 10; ++i) CsdEnqueue(CmiMakeMessage(h, nullptr, 0));
    CsdScheduler(3);
    EXPECT_EQ(ran.load(), 3);
    CsdScheduler(2);
    EXPECT_EQ(ran.load(), 5);
    EXPECT_EQ(CsdLength(), 5u);
  });
}

TEST(Scheduler, SecondHandlerIdiomRequeuesWithPriority) {
  // The paper §3.3: a network handler enqueues the message for later,
  // switching its handler to a "second handler" that knows the message
  // came from the queue.  Verify both handlers run and ownership is clean.
  std::vector<int> order;
  RunConverse(2, [&](int pe, int) {
    int second = CmiRegisterHandler([&](void* msg) {
      order.push_back(2);
      CmiFree(msg);  // queue delivery: we own it
      ConverseBroadcastExit();
    });
    int first = CmiRegisterHandler([&, second](void* msg) {
      order.push_back(1);
      CmiGrabBuffer(&msg);  // keep the system buffer
      CmiSetHandler(msg, second);
      CsdEnqueueIntPrio(msg, -1);
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(first, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
    }
    CsdScheduler(-1);
    if (pe == 1) {
      EXPECT_EQ(order, (std::vector<int>{1, 2}));
    }
  });
}

TEST(Scheduler, SpmModuleCanDonateCyclesWithScheduleN) {
  // Explicit-regime module on PE0 interleaves: it waits for data while
  // donating cycles to message-driven work (paper §3.1.2 "useful for SPM
  // modules to allow a certain amount of concurrent execution").
  std::atomic<int> background{0};
  std::atomic<bool> got_data{false};
  RunConverse(2, [&](int pe, int) {
    int bg = CmiRegisterHandler([&](void* msg) {
      ++background;
      CmiFree(msg);
    });
    int data = CmiRegisterHandler([&](void*) { got_data = true; });
    if (pe == 1) {
      void* m = CmiMakeMessage(data, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      return;
    }
    // SPM phase: local background work queued.
    for (int i = 0; i < 4; ++i) CsdEnqueue(CmiMakeMessage(bg, nullptr, 0));
    while (!got_data.load()) {
      CsdScheduler(1);  // donate one delivery at a time while waiting
    }
    EXPECT_GE(background.load(), 0);
    CsdScheduleUntilIdle();
  });
  EXPECT_TRUE(got_data.load());
  EXPECT_EQ(background.load(), 4);
}

TEST(Scheduler, NestedSchedulerFromHandler) {
  // A handler may run the scheduler reentrantly (the SPM-in-handler
  // pattern).  Inner exit must not kill the outer loop.
  std::vector<int> order;
  RunConverse(1, [&](int, int) {
    int inner = CmiRegisterHandler([&](void* msg) {
      order.push_back(2);
      CmiFree(msg);
      CsdExitScheduler();  // stops the *inner* loop
    });
    int outer = CmiRegisterHandler([&, inner](void* msg) {
      order.push_back(1);
      CsdEnqueue(CmiMakeMessage(inner, nullptr, 0));
      CsdScheduler(-1);  // run inner message now
      order.push_back(3);
      CmiFree(msg);
    });
    int fin = CmiRegisterHandler([&](void* msg) {
      order.push_back(4);
      CmiFree(msg);
    });
    CsdEnqueue(CmiMakeMessage(outer, nullptr, 0));
    CsdScheduler(1);  // runs `outer`, which nests a full inner loop
    CsdEnqueue(CmiMakeMessage(fin, nullptr, 0));
    CsdScheduler(1);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Scheduler, IdleBlockWakesOnMessage) {
  // PE0 blocks idle in CsdScheduler(-1); PE1 sends after doing some work.
  // The condvar wake must deliver it (no spinning, no deadlock).
  std::atomic<bool> woke{false};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      woke = true;
      CsdExitScheduler();
    });
    if (pe == 1) {
      volatile double x = 1;  // ensure PE0 reaches the idle block first
      for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
      return;
    }
    CsdScheduler(-1);
    EXPECT_GE(CmiGetStats().idle_blocks, 1u);
  });
  EXPECT_TRUE(woke.load());
}
