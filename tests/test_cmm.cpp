// Unit tests for the message manager (paper §3.2.1, appendix §4): tagged
// storage, one- and two-tag retrieval, wildcards, FIFO among matches.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "converse/cmm.h"

using namespace converse;

namespace {

void PutStr(MSG_MNGR* mm, const std::string& s, int tag) {
  CmmPut(mm, s.data(), tag, static_cast<int>(s.size()));
}

std::string GetStr(MSG_MNGR* mm, int tag, int* rettag = nullptr) {
  char buf[256] = {};
  const int len = CmmGet(mm, buf, tag, sizeof(buf), rettag);
  if (len < 0) return "<none>";
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace

class CmmTest : public ::testing::Test {
 protected:
  void SetUp() override { mm_ = CmmNew(); }
  void TearDown() override { CmmFree(mm_); }
  MSG_MNGR* mm_ = nullptr;
};

TEST_F(CmmTest, EmptyProbeAndGetReturnMinusOne) {
  int rettag = -99;
  EXPECT_EQ(CmmProbe(mm_, 5, &rettag), -1);
  char buf[8];
  EXPECT_EQ(CmmGet(mm_, buf, 5, sizeof(buf), &rettag), -1);
  EXPECT_EQ(CmmLength(mm_), 0u);
}

TEST_F(CmmTest, PutProbeGetExactTag) {
  PutStr(mm_, "alpha", 7);
  EXPECT_EQ(CmmLength(mm_), 1u);
  int rettag = 0;
  EXPECT_EQ(CmmProbe(mm_, 7, &rettag), 5);
  EXPECT_EQ(rettag, 7);
  EXPECT_EQ(CmmLength(mm_), 1u);  // probe does not remove
  EXPECT_EQ(GetStr(mm_, 7), "alpha");
  EXPECT_EQ(CmmLength(mm_), 0u);
}

TEST_F(CmmTest, WildcardMatchesAnyTagFifo) {
  PutStr(mm_, "first", 1);
  PutStr(mm_, "second", 2);
  int rettag = 0;
  EXPECT_EQ(GetStr(mm_, CmmWildCard, &rettag), "first");
  EXPECT_EQ(rettag, 1);
  EXPECT_EQ(GetStr(mm_, CmmWildCard, &rettag), "second");
  EXPECT_EQ(rettag, 2);
}

TEST_F(CmmTest, FifoAmongEqualTags) {
  PutStr(mm_, "a", 3);
  PutStr(mm_, "b", 3);
  PutStr(mm_, "c", 3);
  EXPECT_EQ(GetStr(mm_, 3), "a");
  EXPECT_EQ(GetStr(mm_, 3), "b");
  EXPECT_EQ(GetStr(mm_, 3), "c");
}

TEST_F(CmmTest, NonMatchingTagLeavesMessage) {
  PutStr(mm_, "keep", 9);
  EXPECT_EQ(GetStr(mm_, 8), "<none>");
  EXPECT_EQ(CmmLength(mm_), 1u);
}

TEST_F(CmmTest, TwoTagMatching) {
  const char d1[] = {1};
  const char d2[] = {2};
  CmmPut2(mm_, d1, /*tag1=*/10, /*tag2=*/100, 1);
  CmmPut2(mm_, d2, /*tag1=*/10, /*tag2=*/200, 1);
  char buf[4];
  int t1 = 0, t2 = 0;
  // Wildcard tag1, exact tag2=200 picks the second message.
  EXPECT_EQ(CmmGet2(mm_, buf, CmmWildCard, 200, sizeof(buf), &t1, &t2), 1);
  EXPECT_EQ(buf[0], 2);
  EXPECT_EQ(t1, 10);
  EXPECT_EQ(t2, 200);
  EXPECT_EQ(CmmLength(mm_), 1u);
}

TEST_F(CmmTest, Probe2DoubleWildcard) {
  const char d[] = {42};
  CmmPut2(mm_, d, 5, 6, 1);
  int t1 = 0, t2 = 0;
  EXPECT_EQ(CmmProbe2(mm_, CmmWildCard, CmmWildCard, &t1, &t2), 1);
  EXPECT_EQ(t1, 5);
  EXPECT_EQ(t2, 6);
}

TEST_F(CmmTest, GetTruncatesToSizeButReturnsFullLength) {
  PutStr(mm_, "0123456789", 1);
  char buf[4] = {};
  int rettag = 0;
  EXPECT_EQ(CmmGet(mm_, buf, 1, 4, &rettag), 10);
  EXPECT_EQ(std::memcmp(buf, "0123", 4), 0);
}

TEST_F(CmmTest, GetPtrAllocates) {
  PutStr(mm_, "pointer-path", 2);
  void* p = nullptr;
  int rettag = 0;
  const int len = CmmGetPtr(mm_, &p, 2, &rettag);
  ASSERT_EQ(len, 12);
  EXPECT_EQ(std::memcmp(p, "pointer-path", 12), 0);
  delete[] static_cast<char*>(p);
  EXPECT_EQ(CmmLength(mm_), 0u);
}

TEST_F(CmmTest, GetPtrMissLeavesAddrUntouched) {
  void* p = reinterpret_cast<void*>(0x1234);
  EXPECT_EQ(CmmGetPtr(mm_, &p, 2, nullptr), -1);
  EXPECT_EQ(p, reinterpret_cast<void*>(0x1234));
}

TEST_F(CmmTest, ZeroLengthMessage) {
  CmmPut(mm_, "", 4, 0);
  int rettag = 0;
  EXPECT_EQ(CmmProbe(mm_, 4, &rettag), 0);
  char buf[1];
  EXPECT_EQ(CmmGet(mm_, buf, 4, sizeof(buf), &rettag), 0);
}

TEST_F(CmmTest, NullRettagAllowed) {
  PutStr(mm_, "x", 1);
  char buf[2];
  EXPECT_EQ(CmmGet(mm_, buf, CmmWildCard, sizeof(buf), nullptr), 1);
}

TEST_F(CmmTest, ManyMessagesStressOrdering) {
  for (int i = 0; i < 200; ++i) {
    const int tag = i % 5;
    CmmPut(mm_, &i, tag, sizeof(i));
  }
  // All messages of tag 3 come out in insertion order.
  int prev = -1;
  char buf[8];
  int got;
  while ((got = CmmGet(mm_, buf, 3, sizeof(buf), nullptr)) >= 0) {
    int v;
    std::memcpy(&v, buf, sizeof(v));
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_EQ(CmmLength(mm_), 160u);
}

TEST(CmmWrapper, RaiiLifecycle) {
  MessageManager mm;
  const int v = 11;
  mm.Put(&v, 1, sizeof(v));
  EXPECT_EQ(mm.Length(), 1u);
  int out = 0;
  EXPECT_EQ(mm.Get(&out, 1, sizeof(out)), static_cast<int>(sizeof(v)));
  EXPECT_EQ(out, 11);
}
