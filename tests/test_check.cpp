// CciCheck tests (include/converse/check.h).
//
// Two families:
//  * death tests — buggy programs must abort with a one-line diagnostic
//    naming the violated rule (run only when the library was configured
//    with -DCONVERSE_CHECK=ON);
//  * disabled-mode tests — the same buggy programs must run to (silently
//    incorrect) completion when the checker is off, and the counters API
//    must be inert.
//
// Death tests use the "threadsafe" style: the machine spawns one OS thread
// per PE, so gtest must re-execute the binary instead of forking mid-run.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "converse/check.h"
#include "converse/converse.h"
#include "test_helpers.h"

namespace converse {
namespace {

constexpr unsigned int kMsgBytes =
    static_cast<unsigned int>(CmiMsgHeaderSizeBytes()) + 8;

void* AllocMsg(int handler) {
  void* m = CmiAlloc(kMsgBytes);
  if (handler >= 0) CmiSetHandler(m, handler);
  return m;
}

class CciCheckDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CciCheckEnabled()) {
      GTEST_SKIP() << "library built without -DCONVERSE_CHECK=ON";
    }
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

// ---------------------------------------------------------------------------
// Buffer ownership state machine
// ---------------------------------------------------------------------------

TEST_F(CciCheckDeathTest, DoubleFreeAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          void* m = AllocMsg(-1);
                          CmiFree(m);
                          // converse-lint: allow(double-free) under test
                          CmiFree(m);
                        }),
               "\\[CciCheck\\] fatal: rule=double-free");
}

TEST_F(CciCheckDeathTest, ForeignFreeAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          alignas(16) static char not_a_msg[64] = {};
                          CmiFree(not_a_msg);  // bug: never CmiAlloc'd
                        }),
               "\\[CciCheck\\] fatal: rule=foreign-free");
}

TEST_F(CciCheckDeathTest, FreeAfterSendAndFreeAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          const int h = CmiRegisterHandler([](void*) {});
                          void* m = AllocMsg(h);
                          CmiSyncSendAndFree(0, kMsgBytes, m);
                          // converse-lint: allow(free-after-send-and-free)
                          CmiFree(m);  // bug under test: ownership moved
                        }),
               "\\[CciCheck\\] fatal: rule=use-after-send");
}

TEST_F(CciCheckDeathTest, SendOfFreedMessageAborts) {
#if defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "ASan reports the underlying use-after-free first";
#endif
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          const int h = CmiRegisterHandler([](void*) {});
                          void* m = AllocMsg(h);
                          CmiFree(m);
                          CmiSyncSendAndFree(0, kMsgBytes, m);  // bug
                        }),
               "\\[CciCheck\\] fatal: rule=use-after-free");
}

TEST_F(CciCheckDeathTest, UngrabbedFreeInsideHandlerAborts) {
  EXPECT_DEATH(
      ctu::Run(1,
               [](int, int) {
                 const int h = CmiRegisterHandler([](void* msg) {
                   CmiFree(msg);  // bug: system buffer, never grabbed
                 });
                 void* m = AllocMsg(h);
                 CmiSyncSendAndFree(0, kMsgBytes, m);
                 CmiDeliverMsgs(1);
               }),
      "\\[CciCheck\\] fatal: rule=ungrabbed-free");
}

TEST_F(CciCheckDeathTest, UngrabbedSendAndFreeInsideHandlerAborts) {
  EXPECT_DEATH(
      ctu::Run(1,
               [](int, int) {
                 const int h = CmiRegisterHandler([](void* msg) {
                   // bug: forwarding a system buffer without grabbing it.
                   CmiSyncSendAndFree(0, kMsgBytes, msg);
                 });
                 void* m = AllocMsg(h);
                 CmiSyncSendAndFree(0, kMsgBytes, m);
                 CmiDeliverMsgs(1);
               }),
      "\\[CciCheck\\] fatal: rule=ungrabbed-send");
}

TEST_F(CciCheckDeathTest, DoubleGrabAborts) {
  EXPECT_DEATH(
      ctu::Run(1,
               [](int, int) {
                 const int h = CmiRegisterHandler([](void* msg) {
                   void* p = msg;
                   CmiGrabBuffer(&p);
                   void* q = msg;
                   CmiGrabBuffer(&q);  // bug
                   CmiFree(p);
                 });
                 void* m = AllocMsg(h);
                 CmiSyncSendAndFree(0, kMsgBytes, m);
                 CmiDeliverMsgs(1);
               }),
      "\\[CciCheck\\] fatal: rule=double-grab");
}

TEST_F(CciCheckDeathTest, GrabOutsideDeliveryAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          void* m = AllocMsg(-1);
                          CmiGrabBuffer(&m);  // bug: nothing being delivered
                        }),
               "\\[CciCheck\\] fatal: rule=grab-outside-delivery");
}

TEST_F(CciCheckDeathTest, DoubleEnqueueAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          const int h = CmiRegisterHandler([](void*) {});
                          void* m = AllocMsg(h);
                          CsdEnqueue(m);
                          CsdEnqueue(m);  // bug
                        }),
               "\\[CciCheck\\] fatal: rule=double-enqueue");
}

TEST_F(CciCheckDeathTest, EnqueueOfUngrabbedSystemBufferAborts) {
  EXPECT_DEATH(
      ctu::Run(1,
               [](int, int) {
                 const int h = CmiRegisterHandler([](void* msg) {
                   CsdEnqueue(msg);  // bug: dispatcher still owns msg
                 });
                 void* m = AllocMsg(h);
                 CmiSyncSendAndFree(0, kMsgBytes, m);
                 CmiDeliverMsgs(1);
               }),
      "\\[CciCheck\\] fatal: rule=enqueue-not-owned");
}

// ---------------------------------------------------------------------------
// Handler table
// ---------------------------------------------------------------------------

TEST_F(CciCheckDeathTest, NeverSetHandlerAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          void* m = AllocMsg(-1);  // bug: no CmiSetHandler
                          CmiSyncSendAndFree(0, kMsgBytes, m);
                          CmiDeliverMsgs(1);
                        }),
               "\\[CciCheck\\] fatal: rule=no-handler");
}

TEST_F(CciCheckDeathTest, OutOfRangeHandlerAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          void* m = AllocMsg(123456);  // bug: bogus index
                          CmiSyncSendAndFree(0, kMsgBytes, m);
                          CmiDeliverMsgs(1);
                        }),
               "\\[CciCheck\\] fatal: rule=bad-handler");
}

TEST_F(CciCheckDeathTest, DivergentHandlerTablesAbort) {
  EXPECT_DEATH(ctu::Run(2,
                        [](int pe, int) {
                          if (pe == 0) {
                            // bug: handler registered on PE 0 only.
                            const int h = CmiRegisterHandler([](void*) {});
                            void* m = AllocMsg(h);
                            CmiSyncSendAndFree(1, kMsgBytes, m);
                          }
                          CsdScheduler(-1);  // abort on PE 1 kills the run
                        }),
               "\\[CciCheck\\] fatal: rule=handler-divergence");
}

// ---------------------------------------------------------------------------
// Cross-PE / threading
// ---------------------------------------------------------------------------

std::atomic<CthThread*> g_shared_thread{nullptr};

TEST_F(CciCheckDeathTest, CrossPeThreadAccessAborts) {
  EXPECT_DEATH(ctu::Run(2,
                        [](int pe, int) {
                          if (pe == 0) {
                            g_shared_thread.store(CthCreate([] {}));
                            CsdScheduler(-1);  // park; PE 1 aborts the run
                          } else {
                            CthThread* t = nullptr;
                            while ((t = g_shared_thread.load()) == nullptr) {
                            }
                            CthAwaken(t);  // bug: PE 0 owns this thread
                          }
                        }),
               "\\[CciCheck\\] fatal: rule=cross-pe-access");
}

TEST_F(CciCheckDeathTest, ResumingExitedThreadAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          CthThread* t = CthCreate([] {});
                          CthResume(t);  // runs to completion and exits
                          CthResume(t);  // bug: stale handle
                        }),
               "\\[CciCheck\\] fatal: rule=thread-resumed-twice");
}

TEST_F(CciCheckDeathTest, AwakeningFreedThreadAborts) {
  EXPECT_DEATH(ctu::Run(1,
                        [](int, int) {
                          CthThread* t = CthCreate([] {});
                          CthFree(t);
                          CthAwaken(t);  // bug: freed handle
                        }),
               "\\[CciCheck\\] fatal: rule=thread-use-after-free");
}

TEST_F(CciCheckDeathTest, ConverseCallFromNonPeThreadAborts) {
  EXPECT_DEATH(CmiMyPe(),  // bug: no machine is running on this thread
               "\\[CciCheck\\] fatal: rule=non-pe-thread");
}

// ---------------------------------------------------------------------------
// Warnings and counters (checker on)
// ---------------------------------------------------------------------------

TEST(CciCheck, ExitImbalanceWarnsAtTeardown) {
  if (!CciCheckEnabled()) GTEST_SKIP();
  const std::uint64_t before = CciCheckCounters().warnings;
  // CsdExitScheduler with no scheduler loop left to consume it.
  ctu::Run(1, [](int, int) { CsdExitScheduler(); });
  EXPECT_GT(CciCheckCounters().warnings, before);
}

TEST(CciCheck, LeakedThreadWarnsAtTeardown) {
  if (!CciCheckEnabled()) GTEST_SKIP();
  const std::uint64_t before = CciCheckCounters().warnings;
  ctu::Run(1, [](int, int) {
    CthCreate([] {});  // never resumed, exited, or freed
  });
  EXPECT_GT(CciCheckCounters().warnings, before);
}

TEST(CciCheck, CountersBalanceAcrossACleanRun) {
  if (!CciCheckEnabled()) GTEST_SKIP();
  const CciCounters before = CciCheckCounters();
  ctu::RunPe0(2, [] { ConverseBroadcastExit(); });
  const CciCounters after = CciCheckCounters();
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_EQ(after.allocs - before.allocs, after.frees - before.frees);
  EXPECT_EQ(after.live_buffers, before.live_buffers);
}

TEST(CciCheck, GrabIsCounted) {
  if (!CciCheckEnabled()) GTEST_SKIP();
  const std::uint64_t before = CciCheckCounters().grabs;
  ctu::Run(1, [](int, int) {
    const int h = CmiRegisterHandler([](void* msg) {
      CmiGrabBuffer(&msg);
      CmiFree(msg);
    });
    void* m = AllocMsg(h);
    CmiSyncSendAndFree(0, kMsgBytes, m);
    CmiDeliverMsgs(1);
  });
  EXPECT_GT(CciCheckCounters().grabs, before);
}

// ---------------------------------------------------------------------------
// Disabled mode: buggy programs complete, counters are inert
// ---------------------------------------------------------------------------

TEST(CciCheckDisabled, CountersAreInert) {
  if (CciCheckEnabled()) GTEST_SKIP() << "checker is enabled in this build";
  ctu::Run(1, [](int, int) {
    void* m = AllocMsg(-1);
    CmiFree(m);
  });
  const CciCounters c = CciCheckCounters();
  EXPECT_EQ(c.live_buffers, -1);  // sentinel: no tracking compiled in
  EXPECT_EQ(c.allocs, 0u);
  EXPECT_EQ(c.frees, 0u);
  EXPECT_EQ(c.grabs, 0u);
}

std::atomic<bool> g_buggy_handler_ran{false};

TEST(CciCheckDisabled, DoubleGrabRunsToCompletion) {
  if (CciCheckEnabled()) GTEST_SKIP() << "checker is enabled in this build";
  g_buggy_handler_ran.store(false);
  ctu::Run(1, [](int, int) {
    const int h = CmiRegisterHandler([](void* msg) {
      void* p = msg;
      CmiGrabBuffer(&p);
      void* q = msg;
      CmiGrabBuffer(&q);  // bug: silently tolerated without the checker
      CmiFree(p);
      g_buggy_handler_ran.store(true);
    });
    void* m = AllocMsg(h);
    CmiSyncSendAndFree(0, kMsgBytes, m);
    CmiDeliverMsgs(1);
  });
  EXPECT_TRUE(g_buggy_handler_ran.load());
}

// ---------------------------------------------------------------------------
// Rule names (both modes)
// ---------------------------------------------------------------------------

TEST(CciCheck, RuleNamesAreStableAndDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(CciRule::kBufferLeak); ++i) {
    const char* name = CciRuleName(static_cast<CciRule>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate rule name " << name;
  }
  EXPECT_STREQ(CciRuleName(CciRule::kDoubleFree), "double-free");
  EXPECT_STREQ(CciRuleName(CciRule::kHandlerDivergence),
               "handler-divergence");
  EXPECT_STREQ(CciRuleName(CciRule::kCrossPeAccess), "cross-pe-access");
}

}  // namespace
}  // namespace converse
