// SM language tests: tagged SPMD messaging in both control regimes
// (paper §2.2, §5: the "SM (a simple messaging layer)" client).
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/sm.h"
#include <numeric>

using namespace converse;
using namespace converse::sm;

TEST(Sm, PingPongSpm) {
  std::atomic<long> final{0};
  RunConverse(2, [&](int pe, int) {
    long v = 0;
    if (pe == 0) {
      v = 1;
      SmSend(1, 1, &v, sizeof(v));
      SmRecv(&v, sizeof(v), 2);
      final = v;
    } else {
      SmRecv(&v, sizeof(v), 1);
      v *= 10;
      SmSend(0, 2, &v, sizeof(v));
    }
  });
  EXPECT_EQ(final.load(), 10);
}

TEST(Sm, RecvByTagOutOfOrder) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      int a = 1, b = 2, c = 3;
      SmSend(0, 10, &a, sizeof(a));
      SmSend(0, 20, &b, sizeof(b));
      SmSend(0, 30, &c, sizeof(c));
      return;
    }
    int v = 0;
    SmRecv(&v, sizeof(v), 30);
    const bool got30 = v == 3;
    SmRecv(&v, sizeof(v), 10);
    const bool got10 = v == 1;
    SmRecv(&v, sizeof(v), 20);
    ok = got30 && got10 && v == 2;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Sm, WildcardRecvReportsTagAndSource) {
  std::atomic<bool> ok{false};
  RunConverse(3, [&](int pe, int) {
    if (pe == 2) {
      const double x = 2.75;
      SmSend(0, 42, &x, sizeof(x));
      return;
    }
    if (pe == 0) {
      double x = 0;
      int tag = 0, src = 0;
      SmRecv(&x, sizeof(x), kAnyTag, kAnySource, &tag, &src);
      ok = x == 2.75 && tag == 42 && src == 2;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Sm, RecvBySourceFiltersSenders) {
  std::atomic<bool> ok{false};
  RunConverse(3, [&](int pe, int) {
    if (pe != 0) {
      const int v = pe * 100;
      SmSend(0, 5, &v, sizeof(v));
      return;
    }
    int v = 0;
    SmRecv(&v, sizeof(v), 5, /*source=*/2);
    const bool first = v == 200;
    SmRecv(&v, sizeof(v), 5, /*source=*/1);
    ok = first && v == 100;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Sm, TruncatedRecvReturnsFullLength) {
  std::atomic<int> fulllen{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      char big[100];
      std::memset(big, 'x', sizeof(big));
      SmSend(0, 1, big, sizeof(big));
      return;
    }
    char small[10];
    fulllen = SmRecv(small, sizeof(small), 1);
    EXPECT_EQ(small[9], 'x');
  });
  EXPECT_EQ(fulllen.load(), 100);
}

TEST(Sm, ProbeSeesBufferedOnly) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      const int v = 5;
      SmSend(0, 9, &v, sizeof(v));
      const int w = 6;
      SmSend(0, 8, &w, sizeof(w));
      return;
    }
    // Nothing buffered until a receive pulls from the machine layer.
    EXPECT_EQ(SmProbe(9), -1);
    int v = 0;
    SmRecv(&v, sizeof(v), 8);  // buffers the tag-9 message on the way
    EXPECT_EQ(SmProbe(9), static_cast<int>(sizeof(int)));
    EXPECT_EQ(SmPending(), 1u);
    SmRecv(&v, sizeof(v), 9);
    ok = v == 5 && SmPending() == 0;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Sm, BroadcastAllReachesEveryPe) {
  constexpr int kNpes = 4;
  ctu::PerPeCounters got(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    if (pe == 0) {
      const int v = 31;
      SmBroadcastAll(3, &v, sizeof(v));
    }
    int v = 0;
    SmRecv(&v, sizeof(v), 3);
    got.Add(pe, v);
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(got.Get(i), 31);
}

TEST(Sm, ThreadedRecvSuspendsOnlyTheThread) {
  // A thread blocks in SmRecv; the PE keeps serving other handlers
  // (implicit control regime) until the message arrives.
  std::atomic<int> other_work{0};
  std::atomic<long> thread_got{0};
  RunConverse(2, [&](int pe, int) {
    int bg = CmiRegisterHandler([&](void* msg) {
      ++other_work;
      CmiFree(msg);
    });
    if (pe == 0) {
      CthAwaken(CthCreate([&] {
        long v = 0;
        SmRecv(&v, sizeof(v), 77);  // suspends this thread
        thread_got = v;
        ConverseBroadcastExit();
      }));
      // Local background work that must run while the thread waits.
      for (int i = 0; i < 3; ++i) CsdEnqueue(CmiMakeMessage(bg, nullptr, 0));
      CsdScheduler(-1);
      CsdScheduleUntilIdle();  // drain bg work if the exit came early
      EXPECT_EQ(other_work.load(), 3);
    } else {
      // Give PE0 time to run its background work first.
      volatile double x = 1;
      for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
      long v = 4242;
      SmSend(0, 77, &v, sizeof(v));
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(thread_got.load(), 4242);
  EXPECT_EQ(other_work.load(), 3);
}

TEST(Sm, ManyToOneGather) {
  constexpr int kNpes = 5;
  std::atomic<long> total{0};
  RunConverse(kNpes, [&](int pe, int npes) {
    if (pe != 0) {
      const long v = pe;
      SmSend(0, 1, &v, sizeof(v));
      return;
    }
    long acc = 0;
    for (int i = 1; i < npes; ++i) {
      long v = 0;
      SmRecv(&v, sizeof(v), 1);
      acc += v;
    }
    total = acc;
  });
  EXPECT_EQ(total.load(), 1 + 2 + 3 + 4);
}

TEST(Sm, ZeroLengthMessages) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      SmSend(0, 1, nullptr, 0);
      return;
    }
    ok = SmRecv(nullptr, 0, 1) == 0;
  });
  EXPECT_TRUE(ok.load());
}
