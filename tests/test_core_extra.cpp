// Additional core coverage: the public CmiGetMsg/CmiDeliverMsgs paths and
// their buffer protocol, the per-PE module registry, fiber stack pooling,
// handler-table growth, and CqsPrio ordering laws.
#include "test_helpers.h"

#include <cstring>

#include "converse/detail/module.h"
#include "converse/util/rng.h"
#include "threads/fiber.h"

using namespace converse;

// ---- Public CmiGetMsg path -----------------------------------------------------

TEST(CmiGetMsgPath, ReturnsNullWhenNothingPending) {
  RunConverse(1, [&](int, int) {
    EXPECT_EQ(CmiGetMsg(), nullptr);
  });
}

TEST(CmiGetMsgPath, ReturnsMessagesInArrivalOrder) {
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([](void*) {});
    if (pe == 0) {
      for (int i = 0; i < 3; ++i) {
        void* m = CmiMakeMessage(h, &i, sizeof(i));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      return;
    }
    for (int want = 0; want < 3; ++want) {
      void* m;
      while ((m = CmiGetMsg()) == nullptr) {
      }
      EXPECT_EQ(*static_cast<int*>(CmiMsgPayload(m)), want);
      // MMI-owned: do not free; the next CmiGetMsg reclaims it.
    }
  });
}

TEST(CmiGetMsgPath, GrabbedBufferSurvivesNextReceive) {
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([](void*) {});
    if (pe == 0) {
      void* a = CmiMakeMessage(h, "AA", 2);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(a), a);
      void* b = CmiMakeMessage(h, "BB", 2);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(b), b);
      return;
    }
    void* first;
    while ((first = CmiGetMsg()) == nullptr) {
    }
    CmiGrabBuffer(&first);  // keep it across the next receive
    void* second;
    while ((second = CmiGetMsg()) == nullptr) {
    }
    EXPECT_TRUE(CmiMsgIsValid(first));
    EXPECT_EQ(std::memcmp(CmiMsgPayload(first), "AA", 2), 0);
    EXPECT_EQ(std::memcmp(CmiMsgPayload(second), "BB", 2), 0);
    CmiFree(first);
  });
}

TEST(CmiGetMsgPath, DeliverMsgsRespectsBudget) {
  std::atomic<int> handled{0};
  RunConverse(2, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) { ++handled; });
    if (pe == 0) {
      for (int i = 0; i < 6; ++i) {
        void* m = CmiMakeMessage(h, nullptr, 0);
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      return;
    }
    // Wait for all six to be queued, then deliver in two budgeted calls.
    while (CsdIsIdle()) {
    }
    int got = 0;
    while (got < 2) got += CmiDeliverMsgs(2 - got);
    // Aggregation frames deliver whole: the budget can overshoot by the
    // tail of the final frame, never undershoot, and the return value
    // always matches what the handlers saw.
    EXPECT_GE(handled.load(), 2);
    EXPECT_EQ(handled.load(), got);
    while (got < 6) got += CmiDeliverMsgs(-1);
    EXPECT_EQ(handled.load(), 6);
  });
}

// ---- Module registry ------------------------------------------------------------

TEST(ModuleRegistry, StatePersistsAcrossHandlersWithinMachine) {
  // A test-local module: registered once process-wide, fresh state per
  // machine, visible from handlers.
  struct LocalState {
    int counter = 0;
  };
  static int module_id;
  static const int registered = detail::RegisterModule(
      "test-local",
      [](int id) { detail::SetModuleState(id, new LocalState); },
      [](void* s) { delete static_cast<LocalState*>(s); });
  module_id = registered;

  for (int round = 0; round < 2; ++round) {
    std::atomic<int> observed{-1};
    RunConverse(2, [&](int pe, int) {
      auto* st =
          static_cast<LocalState*>(detail::ModuleState(module_id));
      ASSERT_NE(st, nullptr);
      EXPECT_EQ(st->counter, 0) << "state must be fresh per machine";
      int h = CmiRegisterHandler([&](void*) {
        auto* s =
            static_cast<LocalState*>(detail::ModuleState(module_id));
        observed = ++s->counter;
        CsdExitScheduler();
      });
      if (pe == 0) {
        void* m = CmiMakeMessage(h, nullptr, 0);
        CmiSyncSendAndFree(0, CmiMsgTotalSize(m), m);
        CsdScheduler(-1);
      }
    });
    EXPECT_EQ(observed.load(), 1);
  }
}

TEST(ModuleRegistry, ModuleCountIsStableAndPositive) {
  RunConverse(1, [&](int, int) {});  // first run registers the core module
  const int n1 = detail::NumModules();
  EXPECT_GT(n1, 5);  // core + the runtime components linked in
  RunConverse(1, [&](int, int) {});
  EXPECT_EQ(detail::NumModules(), n1);
}

// ---- Fiber stack pool -------------------------------------------------------------

TEST(StackPool, ReusesMappingsAcrossThreadLifetimes) {
  RunConverse(1, [&](int, int) {
    const auto before = detail::FiberStackPoolHits();
    for (int i = 0; i < 10; ++i) {
      CthResume(CthCreate([] {}));  // create, run, exit, reclaim
    }
    // After the first thread dies its mapping is reusable: at least 8 of
    // the next 9 creations must hit the pool.
    EXPECT_GE(detail::FiberStackPoolHits() - before, 8u);
  });
}

TEST(StackPool, DistinctSizesDoNotFalselyMatch) {
  RunConverse(1, [&](int, int) {
    CthResume(CthCreateOfSize([] {}, 128 * 1024));
    const auto before = detail::FiberStackPoolHits();
    // A different size must not reuse the 128 KB mapping.
    CthResume(CthCreateOfSize([] {}, 512 * 1024));
    EXPECT_EQ(detail::FiberStackPoolHits(), before);
    // Same size again: now it may hit.
    CthResume(CthCreateOfSize([] {}, 512 * 1024));
    EXPECT_EQ(detail::FiberStackPoolHits(), before + 1);
  });
}

// ---- Handler table ---------------------------------------------------------------

TEST(HandlerTable, GrowsAndDispatchesHundreds) {
  RunConverse(1, [&](int, int) {
    std::vector<int> ids;
    std::vector<int> hits(300, 0);
    for (int i = 0; i < 300; ++i) {
      ids.push_back(CmiRegisterHandler([&hits, i](void* msg) {
        ++hits[static_cast<std::size_t>(i)];
        CmiFree(msg);
      }));
    }
    EXPECT_GE(CmiNumHandlers(), 300);
    for (int i = 0; i < 300; ++i) {
      CsdEnqueue(CmiMakeMessage(ids[static_cast<std::size_t>(i)], nullptr, 0));
    }
    CsdScheduler(300);
    for (int i = 0; i < 300; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
  });
}

// ---- CqsPrio ordering laws ----------------------------------------------------------

TEST(CqsPrioLaws, CompareIsAntisymmetricAndTransitive) {
  util::Xoshiro256 rng(7);
  std::vector<CqsPrio> prios;
  prios.push_back(CqsPrio{});
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      prios.push_back(CqsPrio::FromInt(
          static_cast<std::int32_t>(rng.Below(2001)) - 1000));
    } else {
      std::uint32_t words[3];
      for (auto& w : words) w = static_cast<std::uint32_t>(rng.Next());
      const int nbits = 1 + static_cast<int>(rng.Below(96));
      prios.push_back(CqsPrio::FromBitvec(words, nbits));
    }
  }
  for (const auto& a : prios) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const auto& b : prios) {
      const int ab = a.Compare(b);
      const int ba = b.Compare(a);
      EXPECT_EQ(ab > 0, ba < 0);
      EXPECT_EQ(ab == 0, ba == 0);
      for (const auto& c : prios) {
        if (ab <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << "transitivity violated";
        }
      }
    }
  }
}

// ---- Regressions: ownership, nested scheduling, ring overflow ------------------

TEST(BufferOwnership, GrabbedBufferSurvivesRedeliveryThroughSchedulerQueue) {
  // A handler may grab a system buffer and hand it to the scheduler queue
  // for a second, handler-owned delivery.  The payload must survive the
  // ownership transfer and the second handler must be able to free it.
  constexpr int kCount = 16;
  RunConverse(2, [&](int pe, int) {
    int delivered = 0;
    int next = 0;
    int h2 = -1;
    h2 = CmiRegisterHandler([&](void* m) {  // second pass: handler-owned
      int v = -1;
      std::memcpy(&v, CmiMsgPayload(m), sizeof(v));
      EXPECT_EQ(v, next++);
      CmiFree(m);
      if (++delivered == kCount) CsdExitScheduler();
    });
    const int h1 = CmiRegisterHandler([&](void* m) {  // first pass: system-owned
      CmiGrabBuffer(&m);
      CmiSetHandler(m, h2);
      CsdEnqueue(m);
    });
    if (pe == 0) {
      for (int i = 0; i < kCount; ++i) {
        void* m = CmiMakeMessage(h1, &i, sizeof(i));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      return;
    }
    CsdScheduler(-1);
    EXPECT_EQ(delivered, kCount);
  });
}

TEST(SchedulerNesting, ExitSchedulerInsideScheduleUntilIdleStaysLocal) {
  // CsdExitScheduler raised inside a nested CsdScheduleUntilIdle must end
  // only the nested loop: the outer CsdScheduler has to keep running (the
  // exit flag is consumed, not leaked).
  RunConverse(1, [&](int, int) {
    std::vector<int> log;
    int h_inner = CmiRegisterHandler([&](void* m) {
      CmiFree(m);
      log.push_back(1);
      CsdExitScheduler();  // ends the *nested* loop below
    });
    int h_after = CmiRegisterHandler([&](void* m) {
      CmiFree(m);
      log.push_back(2);
      CsdExitScheduler();  // ends the outer loop
    });
    int h_outer = CmiRegisterHandler([&](void* m) {
      CmiFree(m);
      CsdEnqueue(CmiMakeMessage(h_inner, nullptr, 0));
      CsdEnqueue(CmiMakeMessage(h_after, nullptr, 0));
      // The nested loop must stop at the inner exit with h_after pending.
      EXPECT_EQ(CsdScheduleUntilIdle(), 1);
      log.push_back(3);
    });
    CsdEnqueue(CmiMakeMessage(h_outer, nullptr, 0));
    CsdScheduler(-1);
    // If the nested exit leaked, the outer scheduler would have stopped
    // before delivering h_after and the log would end at 3.
    EXPECT_EQ(log, (std::vector<int>{1, 3, 2}));
  });
}

TEST(RingOverflow, ZeroAndMaxSizeMessagesSurviveTinyRing) {
  // A burst far larger than a 4-slot delivery ring forces the overflow
  // path; zero-payload and quarter-megabyte messages must both come out
  // intact and in order.
  constexpr int kCount = 64;
  constexpr std::size_t kBigPayload = 256 * 1024;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.ring_capacity = 4;
  RunConverse(cfg, [&](int pe, int) {
    int zeros = 0, bigs = 0, expected_big = 1;
    int h_zero = CmiRegisterHandler([&](void* m) {
      EXPECT_EQ(CmiMsgPayloadSize(m), 0u);
      if (++zeros + bigs == kCount) CsdExitScheduler();
    });
    int h_big = CmiRegisterHandler([&](void* m) {
      ASSERT_EQ(CmiMsgPayloadSize(m), kBigPayload);
      int seq = -1;
      std::memcpy(&seq, CmiMsgPayload(m), sizeof(seq));
      EXPECT_EQ(seq, expected_big);  // FIFO among the big ones
      expected_big += 2;
      const char* p = static_cast<const char*>(CmiMsgPayload(m));
      EXPECT_EQ(p[kBigPayload - 1], static_cast<char>(seq & 0x7f));
      if (zeros + ++bigs == kCount) CsdExitScheduler();
    });
    if (pe == 0) {
      for (int i = 0; i < kCount; ++i) {
        if (i % 2 == 0) {
          void* m = CmiMakeMessage(h_zero, nullptr, 0);
          CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
        } else {
          void* m = CmiAlloc(CmiMsgHeaderSizeBytes() + kBigPayload);
          CmiSetHandler(m, h_big);
          std::memcpy(CmiMsgPayload(m), &i, sizeof(i));
          static_cast<char*>(CmiMsgPayload(m))[kBigPayload - 1] =
              static_cast<char>(i & 0x7f);
          CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
        }
      }
      return;
    }
    CsdScheduler(-1);
    EXPECT_EQ(zeros, kCount / 2);
    EXPECT_EQ(bigs, kCount / 2);
  });
}
