// cmpi tests: the §3.1.3 claim that MPI-style retrieval (context + tag +
// source matching, pairwise FIFO ordering) can be built efficiently on the
// minimal machine interface.
#include "test_helpers.h"

#include <cstring>

#include "converse/langs/cmpi.h"

using namespace converse;
namespace M = converse::mpi;

TEST(Cmpi, RankAndSize) {
  RunConverse(3, [&](int pe, int) {
    EXPECT_EQ(M::CommRank(M::kCommWorld), pe);
    EXPECT_EQ(M::CommSize(M::kCommWorld), 3);
  });
}

TEST(Cmpi, BlockingSendRecvWithStatus) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      const double v = 3.5;
      M::Send(&v, sizeof(v), 1, 42, M::kCommWorld);
      return;
    }
    double v = 0;
    M::Status st;
    M::Recv(&v, sizeof(v), 0, 42, M::kCommWorld, &st);
    ok = v == 3.5 && st.source == 0 && st.tag == 42 &&
         st.count == sizeof(double);
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, PairwiseFifoOrderingGuarantee) {
  // "guarantees that messages are delivered in the sequence in which they
  // are sent between a pair of processors" — with identical tags.
  std::atomic<bool> ok{true};
  RunConverse(2, [&](int pe, int) {
    constexpr int kN = 200;
    if (pe == 0) {
      for (int i = 0; i < kN; ++i) {
        M::Send(&i, sizeof(i), 1, 1, M::kCommWorld);
      }
      return;
    }
    for (int i = 0; i < kN; ++i) {
      int v = -1;
      M::Recv(&v, sizeof(v), 0, 1, M::kCommWorld);
      if (v != i) ok = false;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, FifoHoldsUnderReorderingNetwork) {
  // The timed-delivery machine can physically reorder different-size
  // messages; cmpi's sequence numbers must restore sender order.
  NetModel bw;
  bw.name = "reorder";
  bw.alpha_us = 100;
  bw.per_byte_us = 2.0;  // big messages arrive much later
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.model = &bw;
  std::atomic<bool> ok{true};
  RunConverse(cfg, [&](int pe, int) {
    if (pe == 0) {
      // Big first, then small: physically the small one overtakes.
      char big[2048];
      std::memset(big, 1, sizeof(big));
      M::Send(big, sizeof(big), 1, 7, M::kCommWorld);
      const char small = 2;
      M::Send(&small, 1, 1, 7, M::kCommWorld);
      return;
    }
    char first[2048] = {};
    M::Status st;
    M::Recv(first, sizeof(first), 0, 7, M::kCommWorld, &st);
    if (st.count != 2048 || first[0] != 1) ok = false;  // sender order!
    char second = 0;
    M::Recv(&second, 1, 0, 7, M::kCommWorld, &st);
    if (second != 2) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, WildcardsAndTagSelection) {
  std::atomic<bool> ok{false};
  RunConverse(3, [&](int pe, int) {
    if (pe == 1) {
      const int a = 10;
      M::Send(&a, sizeof(a), 0, 5, M::kCommWorld);
    } else if (pe == 2) {
      const int b = 20;
      M::Send(&b, sizeof(b), 0, 6, M::kCommWorld);
    } else {
      int v = 0;
      M::Status st;
      M::Recv(&v, sizeof(v), M::kAnySource, 6, M::kCommWorld, &st);
      const bool tag6 = v == 20 && st.source == 2;
      M::Recv(&v, sizeof(v), M::kAnySource, M::kAnyTag, M::kCommWorld, &st);
      ok = tag6 && v == 10 && st.tag == 5 && st.source == 1;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, CommunicatorsSeparateTraffic) {
  // Same (source, tag) on two communicators must not cross.
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    const M::Comm other = M::CommDup(M::kCommWorld);
    if (pe == 0) {
      const int w = 1, o = 2;
      M::Send(&o, sizeof(o), 1, 9, other);
      M::Send(&w, sizeof(w), 1, 9, M::kCommWorld);
      return;
    }
    int v = 0;
    M::Recv(&v, sizeof(v), 0, 9, M::kCommWorld);
    const bool world_got_world = v == 1;
    M::Recv(&v, sizeof(v), 0, 9, other);
    ok = world_got_world && v == 2;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, IRecvTestWait) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      // Wait for the ready signal, then send the data.
      char go;
      M::Recv(&go, 1, 0, 1, M::kCommWorld);
      const long v = 77;
      M::Send(&v, sizeof(v), 0, 2, M::kCommWorld);
      return;
    }
    long v = 0;
    M::Request* req = M::IRecv(&v, sizeof(v), 1, 2, M::kCommWorld);
    EXPECT_FALSE(M::Test(req));
    const char go = 1;
    M::Send(&go, 1, 1, 1, M::kCommWorld);
    M::Status st;
    M::Wait(req, &st);
    ok = v == 77 && st.count == sizeof(long);
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, IProbeSeesBuffered) {
  std::atomic<bool> ok{false};
  RunConverse(2, [&](int pe, int) {
    if (pe == 1) {
      const int a = 1;
      M::Send(&a, sizeof(a), 0, 3, M::kCommWorld);
      const int b = 2;
      M::Send(&b, sizeof(b), 0, 4, M::kCommWorld);
      return;
    }
    EXPECT_FALSE(M::IProbe(1, 3, M::kCommWorld));
    int v = 0;
    M::Recv(&v, sizeof(v), 1, 4, M::kCommWorld);  // buffers tag 3
    M::Status st;
    EXPECT_TRUE(M::IProbe(1, 3, M::kCommWorld, &st));
    EXPECT_EQ(st.count, static_cast<int>(sizeof(int)));
    EXPECT_EQ(M::UnexpectedCount(), 1u);
    M::Recv(&v, sizeof(v), 1, 3, M::kCommWorld);
    ok = v == 1;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, SendrecvExchange) {
  std::atomic<bool> ok{true};
  RunConverse(2, [&](int pe, int) {
    const int mine = pe * 100;
    int theirs = -1;
    M::Sendrecv(&mine, sizeof(mine), 1 - pe, 8, &theirs, sizeof(theirs),
                1 - pe, 8, M::kCommWorld);
    if (theirs != (1 - pe) * 100) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, RingAllPesSpmd) {
  constexpr int kNpes = 4;
  std::atomic<long> final{0};
  RunConverse(kNpes, [&](int pe, int np) {
    long token = 0;
    if (pe == 0) {
      token = 1;
      M::Send(&token, sizeof(token), 1, 0, M::kCommWorld);
      M::Recv(&token, sizeof(token), np - 1, 0, M::kCommWorld);
      final = token;
    } else {
      M::Recv(&token, sizeof(token), pe - 1, 0, M::kCommWorld);
      token *= 2;
      M::Send(&token, sizeof(token), (pe + 1) % np, 0, M::kCommWorld);
    }
  });
  EXPECT_EQ(final.load(), 8);  // 1 * 2^3
}

TEST(Cmpi, CollectivesVeneer) {
  std::atomic<bool> ok{true};
  RunConverse(3, [&](int pe, int np) {
    M::Barrier(M::kCommWorld);
    double v[2] = {static_cast<double>(pe), 1.0};
    if (pe != 0) v[0] = pe;
    // Bcast from rank 1.
    double b = pe == 1 ? 6.25 : 0.0;
    M::Bcast(&b, sizeof(b), 1, M::kCommWorld);
    if (b != 6.25) ok = false;
    double out[2];
    M::AllreduceF64(v, out, 2, M::Op::kSum, M::kCommWorld);
    if (out[0] != np * (np - 1) / 2.0 || out[1] != np) ok = false;
    std::int64_t mx = pe;
    std::int64_t mxo = 0;
    M::AllreduceI64(&mx, &mxo, 1, M::Op::kMax, M::kCommWorld);
    if (mxo != np - 1) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Cmpi, ThreadedRecvSuspendsThread) {
  std::atomic<long> got{0};
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      CthAwaken(CthCreate([&] {
        long v = 0;
        M::Recv(&v, sizeof(v), 1, 11, M::kCommWorld);
        got = v;
        ConverseBroadcastExit();
      }));
      CsdScheduler(-1);
    } else {
      volatile double x = 1;
      for (int i = 0; i < 500000; ++i) x = x * 1.0000001;
      const long v = 1111;
      M::Send(&v, sizeof(v), 0, 11, M::kCommWorld);
      CsdScheduler(-1);
    }
  });
  EXPECT_EQ(got.load(), 1111);
}
