// Processor group tests (paper EMI, appendix §3.8): explicit tree
// construction by the root, descriptor distribution, queries, and tree
// multicast semantics.
#include "test_helpers.h"

#include <algorithm>

using namespace converse;

TEST(Pgrp, CreateAndQueryOnRoot) {
  RunConverse(6, [&](int pe, int) {
    if (pe != 2) {
      CsdScheduler(-1);
      return;
    }
    Pgrp g;
    CmiPgrpCreate(&g);
    EXPECT_EQ(g.root, 2);
    EXPECT_TRUE(CmiPgrpReady(&g));
    const int kids_of_root[] = {0, 4};
    CmiAddChildren(&g, 2, 2, kids_of_root);
    const int kids_of_0[] = {5};
    CmiAddChildren(&g, 0, 1, kids_of_0);

    EXPECT_EQ(CmiPgrpRoot(&g), 2);
    EXPECT_EQ(CmiNumChildren(&g, 2), 2);
    EXPECT_EQ(CmiNumChildren(&g, 0), 1);
    EXPECT_EQ(CmiNumChildren(&g, 4), 0);
    EXPECT_EQ(CmiParent(&g, 0), 2);
    EXPECT_EQ(CmiParent(&g, 5), 0);
    EXPECT_EQ(CmiParent(&g, 2), -1);
    int kids[2] = {-1, -1};
    CmiChildren(&g, 2, kids);
    EXPECT_EQ(kids[0], 0);
    EXPECT_EQ(kids[1], 4);
    auto members = CmiPgrpMembers(&g);
    std::sort(members.begin(), members.end());
    EXPECT_EQ(members, (std::vector<int>{0, 2, 4, 5}));
    CmiPgrpDestroy(&g);
    EXPECT_EQ(g.id, -1);
    ConverseBroadcastExit();
  });
}

namespace {

/// Build a group rooted at 0 with members {0..nmembers-1} as a root+chain
/// of children under the root, distribute it, and barrier.
Pgrp BuildFlatGroup(int nmembers) {
  Pgrp g;
  CmiPgrpCreate(&g);
  std::vector<int> rest;
  for (int i = 1; i < nmembers; ++i) rest.push_back(i);
  if (!rest.empty()) {
    CmiAddChildren(&g, 0, static_cast<int>(rest.size()), rest.data());
  }
  CmiPgrpDistribute(&g);
  return g;
}

}  // namespace

TEST(Pgrp, DistributeMakesDescriptorAvailable) {
  constexpr int kNpes = 4;
  std::atomic<int> ready{0};
  RunConverse(kNpes, [&](int pe, int) {
    static Pgrp shared_group;  // written by root before others read: the
                               // barrier below orders accesses
    if (pe == 0) {
      shared_group = BuildFlatGroup(3);  // members 0,1,2 (not 3)
    }
    CmiBarrierBlocking();  // descriptor + gid visible everywhere after this
    if (pe == 1 || pe == 2) {
      // Descriptor may still be in flight; pump until it lands.
      while (!CmiPgrpReady(&shared_group)) CsdScheduler(1);
      EXPECT_EQ(CmiPgrpRoot(&shared_group), 0);
      EXPECT_EQ(CmiParent(&shared_group, pe), 0);
      ++ready;
    }
    CmiBarrierBlocking();
  });
  EXPECT_EQ(ready.load(), 2);
}

TEST(Pgrp, MulticastReachesMembersExcludingCaller) {
  constexpr int kNpes = 5;
  ctu::PerPeCounters hits(kNpes);
  std::atomic<int> total{0};
  RunConverse(kNpes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void*) {
      hits.Add(pe);
      ++total;
    });
    static Pgrp g;
    if (pe == 0) {
      g = BuildFlatGroup(4);  // members 0,1,2,3; PE4 outside
    }
    CmiBarrierBlocking();
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiAsyncMulticast(&g, CmiMsgTotalSize(m), m);
      CmiFree(m);
    }
    // Members other than the caller wait for their own copy; everyone else
    // proceeds (the closing barrier pumps the scheduler, so stragglers
    // still drain any in-flight forwards).
    if (pe == 1 || pe == 2 || pe == 3) {
      while (hits.Get(pe) < 1) CsdScheduler(1);
    }
    CmiBarrierBlocking();
  });
  EXPECT_EQ(hits.Get(0), 0);  // caller excluded
  EXPECT_EQ(hits.Get(1), 1);
  EXPECT_EQ(hits.Get(2), 1);
  EXPECT_EQ(hits.Get(3), 1);
  EXPECT_EQ(hits.Get(4), 0);  // not a member
}

TEST(Pgrp, NonMemberCanMulticast) {
  constexpr int kNpes = 4;
  ctu::PerPeCounters hits(kNpes);
  std::atomic<int> total{0};
  RunConverse(kNpes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void*) {
      hits.Add(pe);
      ++total;
    });
    static Pgrp g;
    if (pe == 0) {
      g = BuildFlatGroup(3);  // members 0,1,2
    }
    CmiBarrierBlocking();
    if (pe == 3) {  // PE3 is not in the group but may multicast to it
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiAsyncMulticast(&g, CmiMsgTotalSize(m), m);
      CmiFree(m);
    }
    if (pe <= 2) {
      while (hits.Get(pe) < 1) CsdScheduler(1);
    }
    CmiBarrierBlocking();
  });
  EXPECT_EQ(hits.Get(0), 1);
  EXPECT_EQ(hits.Get(1), 1);
  EXPECT_EQ(hits.Get(2), 1);
  EXPECT_EQ(hits.Get(3), 0);
}

TEST(Pgrp, DeepTreeMulticastForwardsAlongTree) {
  // Root 0 -> child 1 -> child 2 -> child 3 (a chain): the multicast must
  // traverse interior nodes.
  constexpr int kNpes = 4;
  ctu::PerPeCounters hits(kNpes);
  std::atomic<int> total{0};
  RunConverse(kNpes, [&](int pe, int) {
    int h = CmiRegisterHandler([&, pe](void*) {
      hits.Add(pe);
      ++total;
    });
    static Pgrp g;
    if (pe == 0) {
      CmiPgrpCreate(&g);
      const int c1[] = {1};
      const int c2[] = {2};
      const int c3[] = {3};
      CmiAddChildren(&g, 0, 1, c1);
      CmiAddChildren(&g, 1, 1, c2);
      CmiAddChildren(&g, 2, 1, c3);
      CmiPgrpDistribute(&g);
    }
    CmiBarrierBlocking();
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiAsyncMulticast(&g, CmiMsgTotalSize(m), m);
      CmiFree(m);
    }
    if (pe != 0) {
      while (hits.Get(pe) < 1) CsdScheduler(1);
    }
    CmiBarrierBlocking();
  });
  for (int i = 1; i < kNpes; ++i) EXPECT_EQ(hits.Get(i), 1);
}

TEST(Pgrp, TwoGroupsHaveDistinctIds) {
  RunConverse(2, [&](int pe, int) {
    if (pe == 0) {
      Pgrp a, b;
      CmiPgrpCreate(&a);
      CmiPgrpCreate(&b);
      EXPECT_NE(a.id, b.id);
      CmiPgrpDestroy(&a);
      CmiPgrpDestroy(&b);
      ConverseBroadcastExit();
    }
    CsdScheduler(-1);
  });
}
