// CciRace tests (include/converse/race.h).
//
// Three families:
//  * detection tests — planted logical races must be reported with both
//    provenance chains and classified by sim-replay confirmation
//    (confirmed-divergent for order-sensitive pairs, benign-commutative
//    for commutative ones);
//  * death tests — CciRaceEnforce must abort with a one-line diagnostic
//    naming the violated rule for every confirmed-divergent report class;
//  * disabled-mode tests — with the detector compiled out the same
//    programs run to completion and the counters API is inert.
//
// Death tests use the "threadsafe" style: the machine spawns one OS thread
// per PE, so gtest must re-execute the binary instead of forking mid-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "converse/converse.h"

namespace converse {
namespace {

constexpr unsigned int kMsgBytes =
    static_cast<unsigned int>(CmiMsgHeaderSizeBytes()) + 8;

MachineConfig SimCfg(SimConfig& sim, int npes, std::uint64_t seed = 7) {
  sim = SimConfig{};
  sim.seed = seed;
  MachineConfig cfg;
  cfg.npes = npes;
  cfg.seed = seed;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;  // explicit: ignore any CONVERSE_AGG in the env
  return cfg;
}

void SendWord(int dest, int handler, std::uint64_t value) {
  void* msg = CmiAlloc(kMsgBytes);
  CmiSetHandler(msg, handler);
  std::memcpy(CmiMsgPayload(msg), &value, sizeof(value));
  CmiSyncSendAndFree(static_cast<unsigned>(dest), kMsgBytes, msg);
}

std::uint64_t PayloadWord(const void* msg) {
  std::uint64_t v = 0;
  std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Planted workloads.  Each entry registers the same handlers on every PE
// (ids agree), PE 0 plants two causally unordered deliveries on PE 1, and
// the run ends at the simulator's quiescence exit.  State lives in the
// caller's frame and is re-initialized through CciRaceOptions::reset so
// CciRaceAnalyze can re-execute the entry for its replay runs.
// ---------------------------------------------------------------------------

/// Payload race: two unordered handlers on PE 1 both read-modify-write the
/// payload of a message PE 0 still owns, echoing the observed value (so
/// the flipped replay diverges).
struct PayloadRaceState {
  void* victim = nullptr;
};

void PayloadRaceEntry(PayloadRaceState& st, int mype) {
  int h_echo = CmiRegisterHandler([](void*) {});
  const int h_writer = CmiRegisterHandler([&st, h_echo](void* msg) {
    const std::uint64_t k = PayloadWord(msg);
    auto* cell = static_cast<std::uint64_t*>(CmiMsgPayload(st.victim));
    CmiRaceNoteWrite(cell, sizeof(*cell));
    *cell = *cell * 31 + k;
    SendWord(0, h_echo, *cell);
  });
  if (mype == 0) {
    st.victim = CmiAlloc(kMsgBytes);
    std::memset(CmiMsgPayload(st.victim), 0, 8);
    SendWord(1, h_writer, 1);
    SendWord(1, h_writer, 2);
  }
  CsdScheduler(-1);
  if (mype == 0) {
    CmiFree(st.victim);
    st.victim = nullptr;
  }
}

std::vector<CciRaceReport> AnalyzePayloadRace() {
  PayloadRaceState st;
  SimConfig sim;
  const MachineConfig cfg = SimCfg(sim, 2);
  CciRaceOptions opts;
  opts.reset = [&st] { st = PayloadRaceState{}; };
  return CciRaceAnalyze(
      cfg, [&st](int pe, int) { PayloadRaceEntry(st, pe); }, opts);
}

/// Cpv race: two unordered handlers on PE 1 both update PE 1's instance of
/// a CpvDeclare'd counter through CpvAccess (which self-annotates).
CpvStaticDeclare(std::uint64_t, race_test_counter);

void CpvRaceEntry(int mype) {
  CpvInitialize(std::uint64_t, race_test_counter);
  int h_echo = CmiRegisterHandler([](void*) {});
  const int h_writer = CmiRegisterHandler([h_echo](void* msg) {
    const std::uint64_t k = PayloadWord(msg);
    CpvAccess(race_test_counter) = CpvAccess(race_test_counter) * 31 + k;
    SendWord(0, h_echo, CpvAccess(race_test_counter));
  });
  if (mype == 0) {
    SendWord(1, h_writer, 1);
    SendWord(1, h_writer, 2);
  }
  CsdScheduler(-1);
}

std::vector<CciRaceReport> AnalyzeCpvRace() {
  SimConfig sim;
  const MachineConfig cfg = SimCfg(sim, 2);
  return CciRaceAnalyze(cfg, [](int pe, int) { CpvRaceEntry(pe); });
}

/// Benign pair: two unordered commutative increments of a registered cell,
/// nothing order-dependent escapes — the candidate must classify
/// benign-commutative and CciRaceEnforce must pass.
struct BenignState {
  std::uint64_t cell = 0;
};

void BenignEntry(BenignState& st, int mype) {
  const int h_inc = CmiRegisterHandler([&st](void*) {
    CmiRaceNoteWrite(&st.cell, sizeof(st.cell));
    st.cell += 1;
  });
  if (mype == 0) {
    CciRaceRegisterNamed(&st.cell, sizeof(st.cell), "benign counter");
    SendWord(1, h_inc, 1);
    SendWord(1, h_inc, 2);
  }
  CsdScheduler(-1);
}

std::vector<CciRaceReport> AnalyzeBenign(BenignState& st) {
  SimConfig sim;
  const MachineConfig cfg = SimCfg(sim, 2);
  CciRaceOptions opts;
  opts.reset = [&st] { st.cell = 0; };
  return CciRaceAnalyze(
      cfg, [&st](int pe, int) { BenignEntry(st, pe); }, opts);
}

/// Causally ordered chain: each hop's handler performs the next send, so
/// every access to the cell is ordered — a sound detector stays silent.
void OrderedChainEntry(std::uint64_t* cell, int mype, int npes) {
  int h_hop = -1;
  h_hop = CmiRegisterHandler([cell, npes, &h_hop](void* msg) {
    const std::uint64_t hop = PayloadWord(msg);
    CmiRaceNoteWrite(cell, sizeof(*cell));
    *cell = *cell * 31 + hop;
    if (hop < 8) {
      SendWord(static_cast<int>((hop + 1) % npes), h_hop, hop + 1);
    }
  });
  if (mype == 0) {
    CciRaceRegisterNamed(cell, sizeof(*cell), "chain cell");
    SendWord(1 % npes, h_hop, 1);
  }
  CsdScheduler(-1);
}

// ---------------------------------------------------------------------------
// Detection + classification
// ---------------------------------------------------------------------------

class CciRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CciRaceEnabled()) {
      GTEST_SKIP() << "library built without -DCONVERSE_RACE=ON";
    }
  }
};

TEST_F(CciRaceTest, PayloadRaceConfirmedDivergentWithBothChains) {
  const auto reports = AnalyzePayloadRace();
  ASSERT_EQ(reports.size(), 1u);
  const CciRaceReport& r = reports[0];
  EXPECT_EQ(r.rule, CciRaceRule::kPayloadRace);
  EXPECT_EQ(r.classification, CciRaceClass::kConfirmedDivergent);
  EXPECT_TRUE(r.replayable);
  // Both provenance chains name the racing handler on PE 1 and trace the
  // message back to PE 0's entry context.
  EXPECT_NE(r.first.chain.find("@pe1(msg pe0#"), std::string::npos)
      << r.first.chain;
  EXPECT_NE(r.second.chain.find("@pe1(msg pe0#"), std::string::npos)
      << r.second.chain;
  EXPECT_NE(r.first.chain.find("entry@pe0"), std::string::npos);
  EXPECT_NE(r.second.chain.find("entry@pe0"), std::string::npos);
  EXPECT_LT(r.first.order, r.second.order);
  EXPECT_NE(r.line.find("rule=payload-race"), std::string::npos) << r.line;
  EXPECT_NE(r.line.find("class=confirmed-divergent"), std::string::npos);
}

TEST_F(CciRaceTest, CpvRaceConfirmedDivergentWithBothChains) {
  const auto reports = AnalyzeCpvRace();
  ASSERT_EQ(reports.size(), 1u);
  const CciRaceReport& r = reports[0];
  EXPECT_EQ(r.rule, CciRaceRule::kCpvRace);
  EXPECT_EQ(r.classification, CciRaceClass::kConfirmedDivergent);
  EXPECT_NE(r.object.find("race_test_counter"), std::string::npos)
      << r.object;
  EXPECT_FALSE(r.first.chain.empty());
  EXPECT_FALSE(r.second.chain.empty());
  EXPECT_NE(r.line.find("rule=cpv-race"), std::string::npos) << r.line;
}

TEST_F(CciRaceTest, BenignCommutativePairPassesEnforce) {
  BenignState st;
  const auto reports = AnalyzeBenign(st);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule, CciRaceRule::kCsvRace);
  EXPECT_EQ(reports[0].classification, CciRaceClass::kBenignCommutative);
  CciRaceEnforce(reports);  // must not abort
}

TEST_F(CciRaceTest, CausallyOrderedChainIsSilent) {
  std::uint64_t cell = 0;
  SimConfig sim;
  const MachineConfig cfg = SimCfg(sim, 3);
  CciRaceOptions opts;
  opts.reset = [&cell] { cell = 0; };
  const auto reports = CciRaceAnalyze(
      cfg, [&cell](int pe, int npes) { OrderedChainEntry(&cell, pe, npes); },
      opts);
  EXPECT_TRUE(reports.empty());
}

TEST_F(CciRaceTest, CountersAdvance) {
  const CciRaceCounters before = CciRaceGetCounters();
  (void)AnalyzePayloadRace();
  const CciRaceCounters after = CciRaceGetCounters();
  EXPECT_GT(after.accesses, before.accesses);
  EXPECT_GT(after.candidates, before.candidates);
  EXPECT_GT(after.confirmed, before.confirmed);
}

TEST(CciRaceNames, AreStable) {
  EXPECT_STREQ(CciRaceRuleName(CciRaceRule::kPayloadRace), "payload-race");
  EXPECT_STREQ(CciRaceRuleName(CciRaceRule::kCpvRace), "cpv-race");
  EXPECT_STREQ(CciRaceRuleName(CciRaceRule::kCsvRace), "csv-race");
  EXPECT_STREQ(CciRaceRuleName(CciRaceRule::kMemoryRace), "memory-race");
  EXPECT_STREQ(CciRaceClassName(CciRaceClass::kUnconfirmed), "unconfirmed");
  EXPECT_STREQ(CciRaceClassName(CciRaceClass::kConfirmedDivergent),
               "confirmed-divergent");
  EXPECT_STREQ(CciRaceClassName(CciRaceClass::kBenignCommutative),
               "benign-commutative");
  EXPECT_STREQ(CciRaceClassName(CciRaceClass::kUnreplayable),
               "unreplayable");
}

// ---------------------------------------------------------------------------
// Death tests: one per report class that must be fatal under Enforce.
// ---------------------------------------------------------------------------

class CciRaceDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CciRaceEnabled()) {
      GTEST_SKIP() << "library built without -DCONVERSE_RACE=ON";
    }
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(CciRaceDeathTest, PayloadRaceAborts) {
  EXPECT_DEATH(CciRaceEnforce(AnalyzePayloadRace()),
               "\\[CciRace\\] fatal: rule=payload-race");
}

TEST_F(CciRaceDeathTest, CpvRaceAborts) {
  EXPECT_DEATH(CciRaceEnforce(AnalyzeCpvRace()),
               "\\[CciRace\\] fatal: rule=cpv-race");
}

// ---------------------------------------------------------------------------
// Disabled mode: everything is inert and the programs run to completion.
// ---------------------------------------------------------------------------

TEST(CciRaceDisabled, CountersAreInert) {
  if (CciRaceEnabled()) {
    GTEST_SKIP() << "library built with -DCONVERSE_RACE=ON";
  }
  const CciRaceCounters c = CciRaceGetCounters();
  EXPECT_EQ(c.tracked_cells, -1);
  EXPECT_EQ(c.accesses, 0);
  EXPECT_EQ(c.candidates, 0);
  EXPECT_EQ(c.confirmed, 0);
  EXPECT_TRUE(CciRaceTakeReports().empty());
}

TEST(CciRaceDisabled, RacyProgramRunsToCompletion) {
  if (CciRaceEnabled()) {
    GTEST_SKIP() << "library built with -DCONVERSE_RACE=ON";
  }
  const auto reports = AnalyzePayloadRace();
  EXPECT_TRUE(reports.empty());
  CciRaceEnforce(reports);  // nothing to enforce
}

}  // namespace
}  // namespace converse
