// Million-task skewed-workload stress suite for the seed balancer
// (converse/cld.h), run under the deterministic simulator so occupancy is
// virtual time (CldChargeTime) and every result is a pure function of the
// sim seed regardless of host core count.
//
// Proven here, per strategy where it applies:
//  * seed conservation at scale: Zipf task costs, bursty spawn waves and a
//    branch-and-bound spawn tree all execute every seed exactly once;
//  * bounded imbalance / idle fraction for the adaptive strategies on the
//    skewed workloads (the acceptance bar benchmarks/ldb_strategies.cpp
//    measures is asserted here at test scale);
//  * determinism: the same sim seed reproduces the same event-trace hash,
//    the same per-PE placements and the same virtual makespan, with send
//    aggregation off or on;
//  * the steal path's cross-PE interleavings classify benign-commutative
//    under CciRaceAnalyze (the suite's TSan leg soaks StealChurn instead).
//
// Scale drops automatically for sanitizer and debug builds: the point of
// the full 2^20 run is the release CI leg and local release runs.
#include "test_helpers.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "converse/util/rng.h"

using namespace converse;

namespace {

constexpr int kZipfLevels = 1024;  // bounded cost levels: 1..1024 virtual us

int ScaleDivisor() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return 16;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return 16;
#elif !defined(NDEBUG)
  return 8;
#else
  return 1;
#endif
#elif !defined(NDEBUG)
  return 8;
#else
  return 1;
#endif
}

/// Total seeds for the headline runs: 2^20 in release builds.
std::uint64_t HeadlineSeeds() { return (1ull << 20) / ScaleDivisor(); }

/// Bounded Zipf sampler: P(level) proportional to level^-s over
/// 1..kZipfLevels; a seed's virtual cost is its level in microseconds.
/// Bounding the tail keeps the largest single task far below a PE's fair
/// share, so perfect balancing is achievable and the imbalance bound is a
/// property of the strategy, not of one monster task.
class ZipfCost {
 public:
  explicit ZipfCost(double s) {
    cdf_.resize(kZipfLevels);
    double total = 0;
    for (int l = 1; l <= kZipfLevels; ++l) {
      total += 1.0 / std::pow(static_cast<double>(l), s);
      cdf_[static_cast<size_t>(l - 1)] = total;
    }
    for (double& v : cdf_) v /= total;
  }

  std::uint32_t Sample(std::uint64_t u) const {
    const double x =
        static_cast<double>(u >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    return static_cast<std::uint32_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

const ZipfCost& Zipf10() {
  static const ZipfCost z(1.0);
  return z;
}
const ZipfCost& Zipf12() {
  static const ZipfCost z(1.2);
  return z;
}

struct StressResult {
  std::vector<std::uint64_t> executed;
  std::vector<double> busy_us;
  std::vector<std::uint64_t> placed;
  std::vector<CldCounters> counters;
  SimReport report;

  std::uint64_t ExecutedTotal() const {
    std::uint64_t t = 0;
    for (auto v : executed) t += v;
    return t;
  }
  double BusyTotal() const {
    double t = 0;
    for (double v : busy_us) t += v;
    return t;
  }
  double MaxOverMeanBusy() const {
    double max = 0;
    for (double v : busy_us) max = std::max(max, v);
    const double mean = BusyTotal() / static_cast<double>(busy_us.size());
    return mean > 0 ? max / mean : 0.0;
  }
  /// Fraction of the run's PE-time not covered by charged work.
  double IdleFraction() const {
    const double span = report.final_virtual_us *
                        static_cast<double>(busy_us.size());
    return span > 0 ? 1.0 - BusyTotal() / span : 0.0;
  }
  CldCounters Totals() const {
    CldCounters t;
    for (const CldCounters& c : counters) {
      t.stored += c.stored;
      t.executed_store += c.executed_store;
      t.stolen_out += c.stolen_out;
      t.stolen_in += c.stolen_in;
      t.rebalanced_out += c.rebalanced_out;
      t.spawned += c.spawned;
      t.placed += c.placed;
    }
    return t;
  }
  /// Order-sensitive digest of where seeds ended up (determinism checks).
  std::uint64_t PlacementDigest() const {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t v : executed) {
      h = (h ^ v) * 1099511628211ull;
    }
    return h;
  }
};

struct StressCase {
  CldStrategy strategy = CldStrategy::kSteal;
  int npes = 8;
  std::uint64_t total_seeds = 1 << 16;
  int waves = 1;           // 1 = single burst; >1 = virtual-time-spaced waves
  bool single_source = false;  // all seeds from PE 0 (else spread over PEs)
  double zipf_s = 1.2;
  std::uint64_t sim_seed = 42;
  int aggregate = 0;
};

/// Run one skewed workload to quiescence under the sim and collect per-PE
/// results.  Spawning happens in waves armed by delayed self-sends (a
/// reliable virtual-time timer), each wave drawing seed costs from a
/// per-(PE, wave) SplitMix stream.
StressResult RunStress(const StressCase& sc) {
  StressResult r;
  r.executed.assign(static_cast<size_t>(sc.npes), 0);
  r.busy_us.assign(static_cast<size_t>(sc.npes), 0);
  r.placed.assign(static_cast<size_t>(sc.npes), 0);
  r.counters.assign(static_cast<size_t>(sc.npes), CldCounters{});

  const ZipfCost& zipf = sc.zipf_s >= 1.1 ? Zipf12() : Zipf10();
  const int spawners = sc.single_source ? 1 : sc.npes;
  const std::uint64_t per_spawner = sc.total_seeds / spawners;

  SimConfig sim;
  sim.seed = sc.sim_seed;
  sim.report = &r.report;
  sim.race_detect = false;  // 10^6 sends: the HB recorder would dominate
  MachineConfig cfg;
  cfg.npes = sc.npes;
  cfg.seed = sc.sim_seed;
  cfg.sim = &sim;
  cfg.aggregate_sends = sc.aggregate;  // explicit: env must not leak in

  RunConverse(cfg, [&](int pe, int) {
    CldSetStrategy(sc.strategy);
    thread_local int h_seed = -1;
    h_seed = CmiRegisterHandler([&r, pe](void* msg) {
      std::uint32_t cost = 0;
      std::memcpy(&cost, CmiMsgPayload(msg), sizeof(cost));
      ++r.executed[static_cast<size_t>(pe)];
      CldChargeTime(static_cast<double>(cost));
      CmiFree(msg);
    });
    thread_local int h_wave = -1;
    h_wave = CmiRegisterHandler([&, pe](void* msg) {
      int wave = 0;
      std::memcpy(&wave, CmiMsgPayload(msg), sizeof(wave));
      std::uint64_t n = per_spawner / static_cast<std::uint64_t>(sc.waves);
      if (wave == sc.waves - 1) {
        n += per_spawner % static_cast<std::uint64_t>(sc.waves);
      }
      util::SplitMix64 sm(sc.sim_seed ^
                          (0x9e3779b97f4a7c15ULL *
                           static_cast<std::uint64_t>(pe * 1031 + wave + 1)));
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint32_t cost = zipf.Sample(sm.Next());
        void* m = CmiMakeMessage(h_seed, &cost, sizeof(cost));
        CldEnqueue(m);
      }
      if (wave + 1 < sc.waves) {
        int next = wave + 1;
        void* nm = CmiMakeMessage(h_wave, &next, sizeof(next));
        CmiSyncSendDelayedAndFree(static_cast<unsigned>(pe),
                                  static_cast<unsigned>(CmiMsgTotalSize(nm)),
                                  nm, 5000.0);
      }
    });
    if (!sc.single_source || pe == 0) {
      int w0 = 0;
      void* m = CmiMakeMessage(h_wave, &w0, sizeof(w0));
      CmiSyncSendDelayedAndFree(static_cast<unsigned>(pe),
                                static_cast<unsigned>(CmiMsgTotalSize(m)), m,
                                1.0 + pe);
    }
    CsdScheduler(-1);  // sim exits on global quiescence
    r.busy_us[static_cast<size_t>(pe)] = CldBusyTimeUs();
    r.placed[static_cast<size_t>(pe)] = CldSeedsPlaced();
    r.counters[static_cast<size_t>(pe)] = CldGetCounters();
  });
  return r;
}

std::uint64_t ExpectedSeeds(const StressCase& sc) {
  const int spawners = sc.single_source ? 1 : sc.npes;
  return sc.total_seeds / spawners * static_cast<std::uint64_t>(spawners);
}

void ExpectConserved(const StressCase& sc, const StressResult& r) {
  const std::uint64_t want = ExpectedSeeds(sc);
  EXPECT_TRUE(r.report.quiesced);
  EXPECT_EQ(r.ExecutedTotal(), want);
  const CldCounters t = r.Totals();
  EXPECT_EQ(t.spawned, want);
  EXPECT_EQ(t.placed, want);
  EXPECT_EQ(t.stored, t.executed_store + t.stolen_out + t.rebalanced_out);
  EXPECT_EQ(t.stolen_in, t.stolen_out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Conservation at scale, every strategy.
// ---------------------------------------------------------------------------

class LdbStressAll : public ::testing::TestWithParam<CldStrategy> {};

TEST_P(LdbStressAll, SkewedWavesConserveEverySeed) {
  StressCase sc;
  sc.strategy = GetParam();
  sc.npes = 8;
  sc.total_seeds = HeadlineSeeds() / 8;  // 2^17 per strategy in release
  sc.waves = 4;
  sc.zipf_s = 1.2;
  const StressResult r = RunStress(sc);
  ExpectConserved(sc, r);
}

INSTANTIATE_TEST_SUITE_P(Strategies, LdbStressAll,
                         ::testing::Values(CldStrategy::kLocal,
                                           CldStrategy::kRandom,
                                           CldStrategy::kNeighbor,
                                           CldStrategy::kCentral,
                                           CldStrategy::kSteal,
                                           CldStrategy::kPeriodic),
                         [](const auto& info) {
                           switch (info.param) {
                             case CldStrategy::kLocal: return "Local";
                             case CldStrategy::kRandom: return "Random";
                             case CldStrategy::kNeighbor: return "Neighbor";
                             case CldStrategy::kCentral: return "Central";
                             case CldStrategy::kSteal: return "Steal";
                             case CldStrategy::kPeriodic: return "Periodic";
                           }
                           return "?";
                         });

// ---------------------------------------------------------------------------
// The headline run: 2^20 Zipf(1.2) seeds, single source, 8 PEs, kSteal.
// ---------------------------------------------------------------------------

TEST(LdbStress, MillionSeedSingleSourceStealBalances) {
  StressCase sc;
  sc.strategy = CldStrategy::kSteal;
  sc.npes = 8;
  sc.total_seeds = HeadlineSeeds();
  sc.single_source = true;
  sc.zipf_s = 1.2;
  const StressResult r = RunStress(sc);
  ExpectConserved(sc, r);
  EXPECT_GT(r.Totals().stolen_in, 0u) << "nothing was ever stolen";
  // Balancing quality on the most adversarial shape (everything born on
  // one PE): charged work spreads within the acceptance bound and PEs
  // spend most of the virtual makespan busy.
  EXPECT_LE(r.MaxOverMeanBusy(), 1.25);
  EXPECT_LE(r.IdleFraction(), 0.30);
}

TEST(LdbStress, BurstyWavesStealKeepsImbalanceBounded) {
  StressCase sc;
  sc.strategy = CldStrategy::kSteal;
  sc.npes = 8;
  sc.total_seeds = HeadlineSeeds() / 4;
  sc.waves = 8;
  sc.zipf_s = 1.2;
  const StressResult r = RunStress(sc);
  ExpectConserved(sc, r);
  EXPECT_LE(r.MaxOverMeanBusy(), 1.25);
}

TEST(LdbStress, BurstyWavesPeriodicKeepsImbalanceBounded) {
  StressCase sc;
  sc.strategy = CldStrategy::kPeriodic;
  sc.npes = 8;
  sc.total_seeds = HeadlineSeeds() / 4;
  sc.waves = 8;
  sc.zipf_s = 1.0;
  const StressResult r = RunStress(sc);
  ExpectConserved(sc, r);
  EXPECT_LE(r.MaxOverMeanBusy(), 1.5) << "rebalancing left a hot spot";
}

// ---------------------------------------------------------------------------
// Branch-and-bound spawn tree: seeds spawning seeds, exact node count.
// ---------------------------------------------------------------------------

namespace {

struct TreeState {
  std::atomic<std::uint64_t> executed{0};
};

/// Every seed spawns `branch` children until `depth` runs out; the total
/// node count of the uniform tree is exact, so a single lost or duplicated
/// seed anywhere in the steal pipeline shows up as a count mismatch.
std::uint64_t TreeNodes(std::uint64_t branch, std::uint64_t depth) {
  std::uint64_t total = 0, level = 1;
  for (std::uint64_t d = 0; d <= depth; ++d) {
    total += level;
    level *= branch;
  }
  return total;
}

}  // namespace

TEST(LdbStress, BranchAndBoundTreeConservesUnderStealing) {
  constexpr int kNpes = 8;
  const std::uint64_t kBranch = 4;
  // Release: depth 9 -> (4^10 - 1) / 3 = 349525 seeds from one root.
  const std::uint64_t kDepth = ScaleDivisor() == 1 ? 9 : 7;
  TreeState ts;
  SimConfig sim;
  sim.seed = 1234;
  sim.race_detect = false;
  SimReport report;
  sim.report = &report;
  MachineConfig cfg;
  cfg.npes = kNpes;
  cfg.seed = 1234;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;
  std::vector<CldCounters> counters(kNpes);
  RunConverse(cfg, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kSteal);
    thread_local int h_node = -1;
    h_node = CmiRegisterHandler([&](void* msg) {
      std::uint32_t depth = 0;
      std::memcpy(&depth, CmiMsgPayload(msg), sizeof(depth));
      ts.executed.fetch_add(1, std::memory_order_relaxed);
      CldChargeTime(3.0);
      if (depth > 0) {
        const std::uint32_t child = depth - 1;
        for (std::uint64_t b = 0; b < kBranch; ++b) {
          CldEnqueue(CmiMakeMessage(h_node, &child, sizeof(child)));
        }
      }
      CmiFree(msg);
    });
    if (pe == 0) {
      const auto root = static_cast<std::uint32_t>(kDepth);
      CldEnqueue(CmiMakeMessage(h_node, &root, sizeof(root)));
    }
    CsdScheduler(-1);
    counters[static_cast<size_t>(pe)] = CldGetCounters();
  });
  EXPECT_TRUE(report.quiesced);
  EXPECT_EQ(ts.executed.load(), TreeNodes(kBranch, kDepth));
  CldCounters t;
  for (const CldCounters& c : counters) {
    t.stored += c.stored;
    t.executed_store += c.executed_store;
    t.stolen_out += c.stolen_out;
    t.stolen_in += c.stolen_in;
  }
  EXPECT_EQ(t.stored, t.executed_store + t.stolen_out);
  EXPECT_EQ(t.stolen_in, t.stolen_out);
  EXPECT_GT(t.stolen_in, 0u) << "the tree never spread off PE 0";
}

// ---------------------------------------------------------------------------
// Determinism: same sim seed, same trace, same placements — agg off and on.
// ---------------------------------------------------------------------------

class LdbDeterminism : public ::testing::TestWithParam<CldStrategy> {};

TEST_P(LdbDeterminism, SameSeedSameTraceAndPlacement) {
  for (const int agg : {0, 1}) {
    StressCase sc;
    sc.strategy = GetParam();
    sc.npes = 6;
    sc.total_seeds = 30000 / static_cast<std::uint64_t>(ScaleDivisor()) * 6;
    sc.waves = 3;
    sc.sim_seed = 77;
    sc.aggregate = agg;
    const StressResult a = RunStress(sc);
    const StressResult b = RunStress(sc);
    EXPECT_EQ(a.report.trace_hash, b.report.trace_hash) << "agg=" << agg;
    EXPECT_EQ(a.report.outcome_hash, b.report.outcome_hash) << "agg=" << agg;
    EXPECT_EQ(a.PlacementDigest(), b.PlacementDigest()) << "agg=" << agg;
    EXPECT_EQ(a.executed, b.executed) << "agg=" << agg;
    EXPECT_EQ(a.report.final_virtual_us, b.report.final_virtual_us)
        << "agg=" << agg;
    ExpectConserved(sc, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Adaptive, LdbDeterminism,
                         ::testing::Values(CldStrategy::kSteal,
                                           CldStrategy::kPeriodic),
                         [](const auto& info) {
                           return info.param == CldStrategy::kSteal
                                      ? "Steal"
                                      : "Periodic";
                         });

// ---------------------------------------------------------------------------
// StealChurn: a real (non-sim) machine hammering the steal protocol with
// bursty cross-PE spawning.  This is the test the TSan CI leg soaks
// (--gtest_repeat): the per-PE balancer state must never be touched off
// its owning PE thread.
// ---------------------------------------------------------------------------

TEST(LdbStress, StealChurn) {
  constexpr int kNpes = 8;
  constexpr int kWaves = 5;
  const int per_wave =
      ScaleDivisor() == 1 ? 500 : 500 / ScaleDivisor() + 50;
  const int total = kNpes * kWaves * per_wave;
  std::atomic<int> done{0};
  ctu::PerPeCounters placed(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    CldSetStrategy(CldStrategy::kSteal);
    thread_local int h_seed = -1;
    h_seed = CmiRegisterHandler([&, pe](void* msg) {
      placed.Add(pe);
      CmiFree(msg);
      if (done.fetch_add(1) + 1 == total) ConverseBroadcastExit();
    });
    thread_local int h_wave = -1;
    h_wave = CmiRegisterHandler([&, pe](void* msg) {
      int wave = 0;
      std::memcpy(&wave, CmiMsgPayload(msg), sizeof(wave));
      for (int i = 0; i < per_wave; ++i) {
        void* m = CmiMakeMessage(h_seed, &i, sizeof(i));
        CldEnqueue(m);
      }
      if (wave + 1 < kWaves) {
        // Ping-pong the next wave through a neighbor so spawn bursts and
        // steal traffic interleave across the machine.
        int next = wave + 1;
        void* nm = CmiMakeMessage(h_wave, &next, sizeof(next));
        CmiSyncSendAndFree(static_cast<unsigned>((pe + 1) % kNpes),
                           static_cast<unsigned>(CmiMsgTotalSize(nm)), nm);
      }
    });
    int w0 = 0;
    void* m = CmiMakeMessage(h_wave, &w0, sizeof(w0));
    CmiSyncSendAndFree(static_cast<unsigned>(pe),
                       static_cast<unsigned>(CmiMsgTotalSize(m)), m);
    CsdScheduler(-1);
  });
  EXPECT_EQ(done.load(), total);
  EXPECT_EQ(placed.Total(), total);
}

// ---------------------------------------------------------------------------
// CciRace coverage of the steal path (satellite of the race detector): a
// steal request racing the victim's own execution of the same backlog is a
// benign-commutative interleaving, and the detector must say so.
// ---------------------------------------------------------------------------

namespace {

struct StealRaceState {
  std::uint64_t cell = 0;
};

void StealRaceEntry(StealRaceState& st, int mype) {
  CldSetStrategy(CldStrategy::kSteal);
  const int h_seed = CmiRegisterHandler([&st](void* msg) {
    // Commutative shared update: seeds run on whichever PE won them (the
    // victim keeps half, the thief takes the rest), so increments from
    // different PEs are causally unordered — a candidate race whose
    // flipped replay produces the identical outcome.
    CmiRaceNoteWrite(&st.cell, sizeof(st.cell));
    st.cell += 1;
    CldChargeTime(1000.0);
    CmiFree(msg);
  });
  if (mype == 0) {
    CciRaceRegisterNamed(&st.cell, sizeof(st.cell), "steal-shared counter");
    // Exactly one steal round, sized so the victim's store never reaches 2
    // again after the grant.  A replay flip freezes one worker tick, and a
    // probe landing inside that window must still find a sub-stealable
    // store on both sides, or the flipped run grants work the baseline
    // never granted (a genuinely different delivery multiset, reported
    // divergent).  Three seeds: the thief's opening probe takes one, the
    // victim keeps at most two with one already executing.
    for (int i = 0; i < 3; ++i) {
      CldEnqueue(CmiMakeMessage(h_seed, &i, sizeof(i)));
    }
  }
  CsdScheduler(-1);
}

}  // namespace

TEST(LdbStress, StealInterleavingsClassifyBenignCommutative) {
  if (!CciRaceEnabled()) {
    GTEST_SKIP() << "library built without -DCONVERSE_RACE=ON";
  }
  StealRaceState st;
  const char* e = std::getenv("LDB_RACE_SEED");
  const std::uint64_t seed = e != nullptr ? std::strtoull(e, nullptr, 10) : 5;
  SimConfig sim;
  sim.seed = seed;
  MachineConfig cfg;
  // Two PEs: one victim, one thief.  A flipped delivery pair then only
  // reorders two executions of already-assigned seeds; with more PEs the
  // hold window lets third-party probes fire that the baseline never sent,
  // which changes the delivery multiset and misreads as divergent.
  cfg.npes = 2;
  cfg.seed = seed;
  cfg.sim = &sim;
  cfg.aggregate_sends = 0;
  CciRaceOptions opts;
  opts.max_replays = 256;  // confirm every candidate pair, not the first 16
  opts.reset = [&st] { st = StealRaceState{}; };
  const std::vector<CciRaceReport> reports = CciRaceAnalyze(
      cfg, [&st](int pe, int) { StealRaceEntry(st, pe); }, opts);
  ASSERT_FALSE(reports.empty())
      << "stolen seeds never raced the victim's own execution";
  for (const CciRaceReport& rep : reports) {
    EXPECT_EQ(rep.classification, CciRaceClass::kBenignCommutative)
        << rep.object;
  }
}
