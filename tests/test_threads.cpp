// Thread-object tests (paper §3.2.2, appendix §5), parameterized over both
// fiber backends (hand-written x86-64 switch and ucontext).
#include "test_helpers.h"

#include <vector>

using namespace converse;

class CthTest : public ::testing::TestWithParam<CthBackend> {
 protected:
  void SetUp() override {
    if (!CthBackendAvailable(GetParam())) {
      GTEST_SKIP() << "backend unavailable in this build";
    }
  }

  /// Run a single-PE machine with the parameterized backend selected.
  void RunWithBackend(const std::function<void()>& body) {
    RunConverse(1, [&](int, int) {
      CthInit(GetParam());
      body();
    });
  }
};

TEST_P(CthTest, CreateAwakenRunsThroughScheduler) {
  bool ran = false;
  RunWithBackend([&] {
    CthThread* t = CthCreate([&] { ran = true; });
    CthAwaken(t);
    EXPECT_FALSE(ran);  // only scheduled, not run
    CsdScheduler(1);
    EXPECT_TRUE(ran);
  });
}

TEST_P(CthTest, ResumeSwitchesImmediately) {
  std::vector<int> order;
  RunWithBackend([&] {
    CthThread* t = CthCreate([&] { order.push_back(2); });
    order.push_back(1);
    CthResume(t);  // direct switch; returns when t exits
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(CthTest, SuspendAndReAwaken) {
  std::vector<int> order;
  RunWithBackend([&] {
    CthThread* self_holder = nullptr;
    CthThread* t = CthCreate([&] {
      order.push_back(1);
      self_holder = CthSelf();
      CthSuspend();  // back to scheduler
      order.push_back(3);
    });
    CthAwaken(t);
    CsdScheduler(1);  // runs until suspend
    order.push_back(2);
    CthAwaken(self_holder);
    CsdScheduler(1);  // resumes after suspend
    order.push_back(4);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST_P(CthTest, YieldInterleavesTwoThreads) {
  std::vector<int> order;
  RunWithBackend([&] {
    auto worker = [&](int id) {
      for (int i = 0; i < 3; ++i) {
        order.push_back(id);
        CthYield();
      }
    };
    CthAwaken(CthCreate([&] { worker(1); }));
    CthAwaken(CthCreate([&] { worker(2); }));
    CsdScheduleUntilIdle();
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST_P(CthTest, ExplicitExitStopsThread) {
  std::vector<int> order;
  RunWithBackend([&] {
    CthThread* t = CthCreate([&] {
      order.push_back(1);
      CthExit();
      // unreachable
    });
    CthResume(t);
    order.push_back(2);
    CsdScheduleUntilIdle();
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(CthTest, SelfAndIsMain) {
  RunWithBackend([&] {
    EXPECT_TRUE(CthIsMain(CthSelf()));
    CthThread* t = CthCreate([&] {
      EXPECT_FALSE(CthIsMain(CthSelf()));
    });
    CthResume(t);
    EXPECT_TRUE(CthIsMain(CthSelf()));
  });
}

TEST_P(CthTest, UserDataSlot) {
  RunWithBackend([&] {
    int value = 99;
    CthThread* t = CthCreate([&] {
      EXPECT_EQ(*static_cast<int*>(CthGetData(CthSelf())), 99);
    });
    CthSetData(t, &value);
    EXPECT_EQ(CthGetData(t), &value);
    CthResume(t);
  });
}

TEST_P(CthTest, ManyThreadsAllComplete) {
  constexpr int kThreads = 100;
  int done = 0;
  RunWithBackend([&] {
    for (int i = 0; i < kThreads; ++i) {
      CthAwaken(CthCreate([&done] {
        for (int j = 0; j < 3; ++j) CthYield();
        ++done;
      }));
    }
    CsdScheduleUntilIdle();
    EXPECT_EQ(CthLiveThreads(), 0);
  });
  EXPECT_EQ(done, kThreads);
}

TEST_P(CthTest, DeepStackUsageWithinDefault) {
  // Recurse to ~64 KB of stack inside a thread (default stack is 256 KB).
  bool ok = false;
  RunWithBackend([&] {
    std::function<long(int)> burn = [&](int depth) -> long {
      volatile char pad[1024];
      pad[0] = static_cast<char>(depth);
      if (depth == 0) return pad[0];
      return burn(depth - 1) + pad[0];
    };
    CthThread* t = CthCreate([&] {
      ok = burn(64) >= 0;
    });
    CthResume(t);
  });
  EXPECT_TRUE(ok);
}

TEST_P(CthTest, CustomStackSize) {
  bool ok = false;
  RunWithBackend([&] {
    CthThread* t = CthCreateOfSize([&] { ok = true; }, 1 << 20);
    CthResume(t);
  });
  EXPECT_TRUE(ok);
}

TEST_P(CthTest, PaperStyleCreateWithArg) {
  static int received;
  received = 0;
  RunWithBackend([&] {
    int arg = 31337;
    CthThread* t = CthCreate(
        [](void* a) { received = *static_cast<int*>(a); }, &arg);
    CthResume(t);
  });
  EXPECT_EQ(received, 31337);
}

TEST_P(CthTest, AwakenPrioOrdersThreadExecution) {
  std::vector<int> order;
  RunWithBackend([&] {
    CthThread* lo = CthCreate([&] { order.push_back(10); });
    CthThread* hi = CthCreate([&] { order.push_back(1); });
    CthAwakenPrio(lo, 10);
    CthAwakenPrio(hi, -10);
    CsdScheduler(2);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST_P(CthTest, SetStrategyControlsReadyPoolOrder) {
  // A custom LIFO ready pool (paper's CthSetStrategy contract): awaken
  // pushes, suspend resumes the most recently awakened thread.
  std::vector<int> order;
  RunWithBackend([&] {
    std::vector<CthThread*> pool;  // our private ready pool
    CthThread* main_thr = CthSelf();
    auto suspend_fn = [&pool, main_thr] {
      CthThread* next = nullptr;
      if (!pool.empty()) {
        next = pool.back();
        pool.pop_back();
      } else {
        next = main_thr;
      }
      CthResume(next);
    };
    auto awaken_fn = [&pool](CthThread* t) { pool.push_back(t); };

    std::vector<CthThread*> threads;
    for (int i = 0; i < 3; ++i) {
      CthThread* t = CthCreate([&order, i] { order.push_back(i); });
      CthSetStrategy(t, suspend_fn, awaken_fn);
      threads.push_back(t);
    }
    for (CthThread* t : threads) CthAwaken(t);  // pool = [0,1,2]
    // Run them: resume the pool LIFO by hand (the suspend side of the
    // strategy drives successor selection on exit).
    while (!pool.empty()) {
      CthThread* t = pool.back();
      pool.pop_back();
      CthResume(t);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST_P(CthTest, SwitchCountAdvances) {
  RunWithBackend([&] {
    const auto before = CthSwitchCount();
    CthThread* t = CthCreate([] {});
    CthResume(t);
    EXPECT_GT(CthSwitchCount(), before);
  });
}

TEST_P(CthTest, UnrunThreadsAreReclaimedAtTeardown) {
  // Threads created but never resumed must not leak (module fini frees).
  RunWithBackend([&] {
    for (int i = 0; i < 10; ++i) {
      CthCreate([] { FAIL() << "never-awakened thread must not run"; });
    }
    EXPECT_EQ(CthLiveThreads(), 10);
  });
}

TEST_P(CthTest, FloatingPointStatePreservedAcrossSwitches) {
  double result = 0;
  RunWithBackend([&] {
    CthThread* t = CthCreate([&] {
      double acc = 1.0;
      for (int i = 1; i <= 20; ++i) {
        acc = acc * 1.5 + static_cast<double>(i) / 3.0;
        CthYield();
      }
      result = acc;
    });
    CthAwaken(t);
    CsdScheduleUntilIdle();
  });
  // Reference computed without any switching.
  double want = 1.0;
  for (int i = 1; i <= 20; ++i) want = want * 1.5 + static_cast<double>(i) / 3.0;
  EXPECT_DOUBLE_EQ(result, want);
}

TEST_P(CthTest, ThreadsAcrossMultiplePes) {
  constexpr int kNpes = 4;
  ctu::PerPeCounters done(kNpes);
  RunConverse(kNpes, [&](int pe, int) {
    CthInit(GetParam());
    for (int i = 0; i < 5; ++i) {
      CthAwaken(CthCreate([&done, pe] {
        CthYield();
        done.Add(pe);
      }));
    }
    CsdScheduleUntilIdle();
  });
  for (int i = 0; i < kNpes; ++i) EXPECT_EQ(done.Get(i), 5);
}

INSTANTIATE_TEST_SUITE_P(Backends, CthTest,
                         ::testing::Values(CthBackend::kAsm,
                                           CthBackend::kUcontext),
                         [](const auto& info) {
                           return info.param == CthBackend::kAsm
                                      ? "Asm"
                                      : "Ucontext";
                         });
