// Network model tests: analytic properties of the per-machine latency
// models (Figures 4-8) and behaviour of the timed-delivery machine backend.
#include "test_helpers.h"

#include <cstring>
#include <vector>

using namespace converse;

TEST(NetModel, ZeroModelIsFree) {
  NetModel m;
  EXPECT_EQ(m.OnewayUs(0), 0.0);
  EXPECT_EQ(m.OnewayUs(1 << 20), 0.0);
}

class NamedModels : public ::testing::TestWithParam<NetModel> {};

TEST_P(NamedModels, MonotoneNondecreasingInSize) {
  const NetModel m = GetParam();
  double prev = -1.0;
  for (std::size_t n = 0; n <= (1u << 18); n = n == 0 ? 1 : n * 2) {
    const double t = m.OnewayUs(n);
    EXPECT_GE(t, prev) << m.name << " at " << n;
    EXPECT_GT(t, 0.0);
    prev = t;
  }
}

TEST_P(NamedModels, LatencyDominatedBySizeEventually) {
  const NetModel m = GetParam();
  // Doubling a large message must nearly double its time (bandwidth bound).
  const double t1 = m.OnewayUs(1 << 20);
  const double t2 = m.OnewayUs(1 << 21);
  EXPECT_GT(t2 / t1, 1.6) << m.name;
}

INSTANTIATE_TEST_SUITE_P(Machines, NamedModels,
                         ::testing::Values(netmodels::AtmHp(),
                                           netmodels::CrayT3D(),
                                           netmodels::MyrinetFm(),
                                           netmodels::IbmSp1(),
                                           netmodels::ParagonSunmos()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(NetModel, T3DHasPacketizationJumpAt16K) {
  // The paper: "The jump at 16K bytes is due to copying during
  // packetization."  The model must show a discontinuity there.
  const NetModel t3d = netmodels::CrayT3D();
  const double just_below = t3d.OnewayUs(16 * 1024);
  const double just_above = t3d.OnewayUs(16 * 1024 + 64);
  // The step must be far larger than 64 bytes' worth of bandwidth.
  const double smooth_delta = 64 * t3d.per_byte_us + t3d.per_packet_us;
  EXPECT_GT(just_above - just_below, 10 * smooth_delta);
}

TEST(NetModel, MyrinetMatchesPaperAnchor) {
  // Paper §5.1: FM delivers <=128-byte messages in ~25 us.
  const NetModel fm = netmodels::MyrinetFm();
  EXPECT_NEAR(fm.OnewayUs(128), 25.0, 8.0);
}

TEST(NetModel, RelativeMachineOrderingForShortMessages) {
  // Era ground truth: T3D fastest, then Paragon/Myrinet, then SP-1, with
  // the ATM workstation LAN slowest by an order of magnitude.
  const double t3d = netmodels::CrayT3D().OnewayUs(64);
  const double fm = netmodels::MyrinetFm().OnewayUs(64);
  const double paragon = netmodels::ParagonSunmos().OnewayUs(64);
  const double sp1 = netmodels::IbmSp1().OnewayUs(64);
  const double atm = netmodels::AtmHp().OnewayUs(64);
  EXPECT_LT(t3d, fm);
  EXPECT_LT(paragon, sp1);
  EXPECT_LT(fm, sp1);
  EXPECT_GT(atm, 4 * sp1);
}

// ---- Timed-delivery machine backend ------------------------------------------
//
// These tests run under the deterministic simulation backend (cfg.sim):
// modeled latency is virtual time, so the assertions are exact equalities
// on the virtual clock instead of wall-clock waits with tolerances, and
// the tests finish instantly regardless of the modeled delays.

TEST(NetSim, MessageIsDelayedByModeledLatency) {
  NetModel slow;
  slow.name = "test-slow";
  slow.alpha_us = 20000;  // 20 ms of (virtual) latency
  SimConfig sim;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.model = &slow;
  cfg.sim = &sim;
  std::atomic<double> elapsed_us{0};
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void*) {
      CsdExitScheduler();
    });
    if (pe == 0) {
      void* m = CmiMakeMessage(h, nullptr, 0);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      return;
    }
    const double t0 = CmiTimer();
    CsdScheduler(-1);
    elapsed_us = (CmiTimer() - t0) * 1e6;
  });
  // The virtual clock advances to exactly the modeled arrival time.
  EXPECT_DOUBLE_EQ(elapsed_us.load(), 20000.0);
}

TEST(NetSim, LargerMessagesArriveLater) {
  NetModel bw;
  bw.name = "test-bw";
  bw.alpha_us = 1000;
  bw.per_byte_us = 5.0;  // 5 us per byte: 4 KB ~ 21.5 ms (virtual)
  SimConfig sim;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.model = &bw;
  cfg.sim = &sim;
  std::vector<int> arrival_order;
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      arrival_order.push_back(static_cast<int>(CmiMsgPayloadSize(msg)));
      if (arrival_order.size() == 2) CsdExitScheduler();
    });
    if (pe == 0) {
      // Send the big one first; the small one must overtake it.
      void* big = CmiMakeMessage(h, nullptr, 0);
      void* big2 = CmiAlloc(CmiMsgHeaderSizeBytes() + 4096);
      CmiSetHandler(big2, h);
      CmiFree(big);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(big2), big2);
      void* small = CmiAlloc(CmiMsgHeaderSizeBytes() + 8);
      CmiSetHandler(small, h);
      CmiSyncSendAndFree(1, CmiMsgTotalSize(small), small);
      return;
    }
    CsdScheduler(-1);
    EXPECT_EQ(arrival_order, (std::vector<int>{8, 4096}));
  });
}

TEST(NetSim, CollectivesWorkUnderLatency) {
  NetModel lag;
  lag.name = "test-lag";
  lag.alpha_us = 2000;
  SimConfig sim;
  MachineConfig cfg;
  cfg.npes = 3;
  cfg.model = &lag;
  cfg.sim = &sim;
  std::atomic<bool> ok{true};
  RunConverse(cfg, [&](int pe, int n) {
    const std::int64_t got = CmiAllReduceI64(pe, CmiReducerSumI64());
    if (got != n * (n - 1) / 2) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(NetSim, EqualArrivalTimesStayFifo) {
  NetModel fixed;
  fixed.name = "test-fifo";
  fixed.alpha_us = 500;
  SimConfig sim;
  MachineConfig cfg;
  cfg.npes = 2;
  cfg.model = &fixed;
  cfg.sim = &sim;
  std::vector<int> order;
  RunConverse(cfg, [&](int pe, int) {
    int h = CmiRegisterHandler([&](void* msg) {
      int v;
      std::memcpy(&v, CmiMsgPayload(msg), sizeof(v));
      order.push_back(v);
      if (order.size() == 8) CsdExitScheduler();
    });
    if (pe == 0) {
      for (int i = 0; i < 8; ++i) {
        void* m = CmiMakeMessage(h, &i, sizeof(i));
        CmiSyncSendAndFree(1, CmiMsgTotalSize(m), m);
      }
      return;
    }
    CsdScheduler(-1);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  });
}
