// Shared helpers for Converse tests.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "converse/converse.h"

namespace converse::ctu {

/// Run a machine with `npes` PEs and default config.
inline void Run(int npes, const std::function<void(int, int)>& entry) {
  RunConverse(npes, entry);
}

/// Run a machine where only PE 0 executes `pe0`, all others just schedule
/// until a broadcast exit (pe0 must end with ConverseBroadcastExit()).
inline void RunPe0(int npes, const std::function<void()>& pe0) {
  RunConverse(npes, [&](int pe, int) {
    if (pe == 0) pe0();
    CsdScheduler(-1);
  });
}

/// The usual SPMD pattern: every PE runs `before`, then sits in
/// CsdScheduler(-1) until some handler broadcasts exit.
inline void RunAll(int npes, const std::function<void(int, int)>& before) {
  RunConverse(npes, [&](int pe, int n) {
    before(pe, n);
    CsdScheduler(-1);
  });
}

/// A per-test atomic counter array indexed by PE.
class PerPeCounters {
 public:
  explicit PerPeCounters(int npes) : counts_(npes) {
    for (auto& c : counts_) c.store(0);
  }
  void Add(int pe, long v = 1) { counts_[static_cast<size_t>(pe)] += v; }
  long Get(int pe) const { return counts_[static_cast<size_t>(pe)].load(); }
  long Total() const {
    long t = 0;
    for (const auto& c : counts_) t += c.load();
    return t;
  }

 private:
  std::vector<std::atomic<long>> counts_;
};

}  // namespace converse::ctu
