// Synchronization mechanisms for thread objects (paper §3.2.3, appendix §6).
//
// Locks, condition variables and barriers over Cth threads.  All objects
// are PE-local and cooperative: threads of one PE interleave under the
// scheduler, so no atomic operations are needed — blocking means "suspend
// this thread and record it in the object's wait queue"; releasing means
// "CthAwaken the next waiter".
//
// Return conventions follow the appendix: 0 on success, -1 on misuse
// (e.g. unlocking a lock one does not own).
#pragma once

#include <cstddef>

namespace converse {

struct CthThread;

struct LOCK;
struct CONDN;
struct BARRIER;

// ---- Locks (appendix §6.1) -------------------------------------------------

/// Allocate and initialize a new lock.
LOCK* CtsNewLock();
/// (Re)initialize a lock allocated elsewhere. Must not have waiters.
void CtsLockInit(LOCK* lock);
/// Nonblocking attempt: returns 1 and takes ownership if free, else 0.
int CtsTryLock(LOCK* lock);
/// Block (suspend) until the lock is owned by the calling thread.
int CtsLock(LOCK* lock);
/// Release; ownership passes to the first queued waiter, which is awakened.
/// Returns -1 if the caller is not the owner.
int CtsUnLock(LOCK* lock);
/// Destroy a lock (must be unowned with no waiters).
void CtsFreeLock(LOCK* lock);

/// Diagnostics: current owner (nullptr if free) and queue length.
CthThread* CtsLockOwner(const LOCK* lock);
std::size_t CtsLockWaiters(const LOCK* lock);

// ---- Condition variables (appendix §6.2) -----------------------------------

CONDN* CtsNewCondn();
/// (Re)initialize; awakens all threads currently waiting (per appendix).
int CtsCondnInit(CONDN* condn);
/// Suspend the calling thread until signalled/broadcast.
int CtsCondnWait(CONDN* condn);
/// Release one waiting thread (FIFO). Returns number released (0 or 1).
int CtsCondnSignal(CONDN* condn);
/// Release all waiting threads. Returns the number released.
int CtsCondnBroadcast(CONDN* condn);
void CtsFreeCondn(CONDN* condn);
std::size_t CtsCondnWaiters(const CONDN* condn);

// ---- Barriers (appendix §6.3) ----------------------------------------------

/// "A barrier is a condition variable whose kth wait is a broadcast."
BARRIER* CtsNewBarrier();
/// Free any threads waiting, then await the arrival of `num` threads.
int CtsBarrierReinit(BARRIER* bar, int num);
/// Block until `num` threads (set by Reinit) have arrived; the last
/// arrival releases everyone and resets the barrier for reuse.
int CtsAtBarrier(BARRIER* bar);
void CtsFreeBarrier(BARRIER* bar);

}  // namespace converse
