// Per-PE module registry — the mechanism behind Converse's component-based,
// pay-for-what-you-use architecture (paper §3: "each language or paradigm
// should incur only the cost for the features it uses").
//
// A runtime component (threads, collectives, a language runtime, ...)
// registers itself once per process via RegisterModule(); the machine layer
// then runs the component's init hook on every PE *before* user code starts,
// in a fixed process-wide order, so any handler indices the component
// registers agree across PEs.  Components that are never linked in (static
// archive member never referenced) are never registered and cost nothing.
//
// Typical usage inside a component's .cpp:
//
//   namespace {
//   struct FooState { int handler; ... };
//   int ModuleId() {
//     static const int id = converse::detail::RegisterModule(
//         "foo", [] { converse::detail::SetModuleState(IdRef(), new ...); },
//         [](void* s) { delete static_cast<FooState*>(s); });
//     return id;
//   }
//   FooState& State() { return *static_cast<FooState*>(
//       converse::detail::ModuleState(ModuleId())); }
//   }
#pragma once

#include <functional>

namespace converse::detail {

/// Registers a component. `pe_init` runs on each PE thread during machine
/// start (current PE valid, handlers registrable); it must store the
/// component's per-PE state via SetModuleState(id, ptr). `pe_fini` runs at
/// machine teardown with that pointer.  Returns the module id.
///
/// Thread-compatible: must be called before any machine is running (static
/// initialization or first-use from a single thread).
int RegisterModule(const char* name, std::function<void(int module_id)> pe_init,
                   std::function<void(void* state)> pe_fini);

/// Per-current-PE state slot for the module.
void* ModuleState(int module_id);
void SetModuleState(int module_id, void* state);

/// Number of registered modules (diagnostics).
int NumModules();

/// Called by the machine layer on each PE thread during init/teardown.
void RunPeInitHooks();
void RunPeFiniHooks();

}  // namespace converse::detail
