// Trace-report analysis (paper §3.3.2, "Support for Tools").
//
// The trace module emits the standard self-describing text format
// (TraceDump); this component parses it back and computes the profile a
// performance tool would show: per-handler invocation counts and time,
// busy/idle breakdown, send/delivery volumes, and a coarse utilization
// timeline.  `tools/trace_report` is the command-line front end.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace converse::tracetool {

struct HandlerProfile {
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  double busy_us = 0.0;  // sum of matched begin..end spans
};

struct Report {
  int pe = -1;
  std::size_t records = 0;
  std::map<std::string, int> user_events;  // name -> id
  std::map<std::uint32_t, HandlerProfile> handlers;
  std::uint64_t sends = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t user_event_hits = 0;
  std::uint64_t thread_creates = 0;
  std::uint64_t object_creates = 0;
  double idle_us = 0.0;
  double span_us = 0.0;  // last timestamp - first timestamp
  /// Busy fraction per timeline bucket (kTimelineBuckets buckets).
  std::vector<double> timeline_busy_fraction;
};

inline constexpr int kTimelineBuckets = 20;

/// Parse one PE's dump (the format TraceDump writes).  Throws
/// std::runtime_error on malformed input.
Report ParseTrace(std::FILE* in);

/// Render the report as human-readable text.
void PrintReport(const Report& report, std::FILE* out);

}  // namespace converse::tracetool
