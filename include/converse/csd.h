// The unified scheduler (paper §3.1.2, appendix §2).
//
// One loop serves every concurrent entity on a PE: it first delivers all
// messages available from the machine layer, then dequeues one generalized
// message from the prioritized scheduler queue and delivers it to its
// handler.  The scheduler is deliberately *exposed* to user code so that
// explicit-control (SPM) modules can interleave with implicit-control
// modules: an SPM module calls CsdScheduler(n) to donate cycles while it
// waits for data.
#pragma once

#include <cstdint>

#include "converse/msg.h"
#include "converse/queueing.h"

namespace converse {

/// Run the scheduler loop.
///  * n == -1: loop until CsdExitScheduler() is called from a handler.
///  * n >= 0: return after delivering n messages (network or queue), or
///    earlier if CsdExitScheduler() is called.
/// Blocks (condvar, no spinning) when there is nothing to do.
void CsdScheduler(int number_of_messages);

/// Run the scheduler until both the network and the scheduler queue are
/// empty, without blocking for future arrivals.  Returns the number of
/// messages delivered (paper's ScheduleUntilIdle).
int CsdScheduleUntilIdle();

/// Deliver at most `n` immediately-available messages without ever
/// blocking; returns the number delivered.  (Poll variant, an extension.)
int CsdSchedulePoll(int n = -1);

/// Make the innermost running CsdScheduler(-1)/CsdScheduler(n) loop on this
/// PE return once control is back in the loop.
void CsdExitScheduler();

/// Enqueue a generalized message into this PE's scheduler queue (FIFO).
/// The queue takes ownership; when the message is later delivered, its
/// handler owns it and must CmiFree (or re-enqueue) it.
void CsdEnqueue(void* msg);

/// Strategy/priority variants (paper §2.3's prioritized queueing).
void CsdEnqueueLifo(void* msg);
void CsdEnqueueIntPrio(void* msg, std::int32_t prio, bool lifo = false);
void CsdEnqueueBitvecPrio(void* msg, const std::uint32_t* prio_words,
                          int nbits, bool lifo = false);
/// General form mirroring CqsEnqueueGeneral.
void CsdEnqueueGeneral(void* msg, Queueing strategy, const CqsPrio& prio);

/// Number of messages currently in this PE's scheduler queue.
std::size_t CsdLength();

/// True when both the scheduler queue and the deliverable part of the
/// network queue are empty on this PE.
bool CsdIsIdle();

}  // namespace converse
