// The Converse Machine Interface — MMI calls (paper §3.1.3 and appendix §3).
//
// These functions may only be called from inside a PE thread of a running
// machine (i.e. from the entry function, handlers, or thread objects).
#pragma once

#include <cstddef>
#include <cstdint>

#include "converse/handlers.h"
#include "converse/msg.h"

namespace converse {

// ---------------------------------------------------------------------------
// Processor identity (appendix §3.6)
// ---------------------------------------------------------------------------

/// Logical PE number of the caller, in [0, CmiNumPes()).
int CmiMyPe();

/// Total number of PEs in the running machine.
int CmiNumPes();

/// Paper's spelling (appendix uses CmiNumPe()).
inline int CmiNumPe() { return CmiNumPes(); }

/// Node of the caller, in [0, CmiNumNodes()).  A "node" is the unit that
/// shares an address space: all PEs of one node are threads of one process
/// (converse/machine.h CmiTransport).  Single-process machines are one
/// node, so CmiMyNode() == 0 and CmiNumNodes() == 1.
int CmiMyNode();

/// Number of nodes in the running machine.
int CmiNumNodes();

/// Node that owns PE `pe` (block distribution: each node owns a contiguous
/// PE range).
int CmiNodeOf(int pe);

/// First PE of node `node`.
int CmiNodeFirst(int node);

/// Number of PEs on node `node`.
int CmiNodeSize(int node);

/// Rank of the caller within its node, in [0, CmiNodeSize(CmiMyNode())).
int CmiMyRank();

// ---------------------------------------------------------------------------
// Timers (appendix §3.2)
// ---------------------------------------------------------------------------

/// Seconds since machine start (microsecond accuracy or better).
double CmiTimer();

/// Alias kept for fidelity with later Converse versions.
inline double CmiWallTimer() { return CmiTimer(); }

/// Per-thread CPU time in seconds.
double CmiCpuTimer();

// ---------------------------------------------------------------------------
// Point-to-point communication (appendix §3.3)
// ---------------------------------------------------------------------------

/// Opaque handle for an asynchronous communication operation.
struct CommHandle {
  void* rec = nullptr;
};

/// Send `msg` (a complete message: header + payload, `size` bytes total) to
/// `dest_pe`.  The buffer may be reused as soon as the call returns.
void CmiSyncSend(unsigned int dest_pe, unsigned int size, void* msg);

/// Like CmiSyncSend but transfers ownership of `msg` to the machine layer
/// (no copy on the in-process machine).  `msg` must come from CmiAlloc.
/// Extension over the paper's MMI, present in later Converse versions.
void CmiSyncSendAndFree(unsigned int dest_pe, unsigned int size, void* msg);

/// Timed send (extension): deliver `msg` to `dest_pe` no earlier than
/// `delay_us` microseconds of machine time from now — virtual time under
/// the simulation backend, modeled time under a NetModel — on top of the
/// model's own latency.  Requires a timed machine (MachineConfig::sim or
/// MachineConfig::model set); on a plain machine the delay is ignored and
/// delivery is immediate (callers that need real-time pacing on a plain
/// machine spin on CmiTimer instead).  Timed messages bypass
/// the aggregation layer and carry no FIFO ordering guarantee relative to
/// untimed sends.  Transfers ownership of `msg` like CmiSyncSendAndFree.
/// This is the timer primitive the service runtime (converse/svc.h) builds
/// virtual-time arrival generators and service-time clocks from.
void CmiSyncSendDelayedAndFree(unsigned int dest_pe, unsigned int size,
                               void* msg, double delay_us);

/// Initiate an asynchronous send; the buffer must stay valid until
/// CmiAsyncMsgSent(handle) returns nonzero.
CommHandle CmiAsyncSend(unsigned int dest_pe, unsigned int size, void* msg);

/// Status of an asynchronous operation: nonzero once complete.
int CmiAsyncMsgSent(CommHandle handle);

/// Release the handle and associated resources (not the message buffer).
void CmiReleaseCommHandle(CommHandle handle);

/// Gather-style send (appendix §3.3 CmiVectorSend): concatenates `len`
/// pieces (DataArray[i], sizes[i] bytes) into one message with handler
/// `handler_id` and sends it to `dest_pe`.
CommHandle CmiVectorSend(int dest_pe, int handler_id, int len,
                         const int sizes[], const void* const data_array[]);

// ---------------------------------------------------------------------------
// Immediate (out-of-band) messages — the paper's §6 "preemptive messages
// (interrupt messages)" future work, realized cooperatively: an immediate
// message is always delivered before any regular traffic at the next
// delivery point, is never delayed by a network latency model, and can be
// polled explicitly from long-running handlers via CmiProbeImmediates().
// ---------------------------------------------------------------------------

/// Send a message into the destination's immediate lane (copies `msg`).
void CmiSyncSendImmediate(unsigned int dest_pe, unsigned int size,
                          void* msg);
/// Ownership-transferring variant.
void CmiSyncSendImmediateAndFree(unsigned int dest_pe, unsigned int size,
                                 void* msg);
/// Deliver all pending immediate messages right now (callable from inside
/// a long-running handler or SPM compute loop).  Returns the number
/// delivered.
int CmiProbeImmediates();

// ---------------------------------------------------------------------------
// Receiving (paper §3.1.3)
// ---------------------------------------------------------------------------

/// Non-blockingly retrieve the next message delivered to this PE, or
/// nullptr.  The returned buffer is owned by the MMI: it is freed when the
/// caller-side dispatch completes unless CmiGrabBuffer is called.  Most
/// programs never call this directly — the scheduler does.
void* CmiGetMsg();

/// Deliver (invoke handlers for) up to `max_msgs` pending network messages
/// (-1 = all currently available).  Returns the number delivered.
int CmiDeliverMsgs(int max_msgs = -1);

/// Block until a message whose handler field equals `handler_id` arrives,
/// buffering any other messages for later delivery (paper: for SPM modules
/// that must not run other code while waiting).  The returned buffer is
/// MMI-owned until the next CmiGetMsg/CmiGetSpecificMsg call; call
/// CmiGrabBuffer to keep it.
void* CmiGetSpecificMsg(int handler_id);

/// Transfer ownership of the buffer `*pbuf` (the message currently being
/// delivered, or the last CmiGetSpecificMsg result) to the caller.  On this
/// machine no copy is needed; on machines with system buffers the MMI would
/// copy, so portable code must not assume pointer identity is preserved —
/// always use the possibly-updated `*pbuf`.
void CmiGrabBuffer(void** pbuf);

// ---------------------------------------------------------------------------
// Broadcasts (appendix §3.5)
// ---------------------------------------------------------------------------

void CmiSyncBroadcast(unsigned int size, void* msg);             // all but me
void CmiSyncBroadcastAll(unsigned int size, void* msg);          // everyone
void CmiSyncBroadcastAllAndFree(unsigned int size, void* msg);   // frees msg
CommHandle CmiAsyncBroadcast(unsigned int size, void* msg);
CommHandle CmiAsyncBroadcastAll(unsigned int size, void* msg);

// ---------------------------------------------------------------------------
// Console I/O (appendix §3.7) — atomic with respect to other PEs.
// ---------------------------------------------------------------------------

void CmiPrintf(const char* format, ...) __attribute__((format(printf, 1, 2)));
void CmiError(const char* format, ...) __attribute__((format(printf, 1, 2)));
int CmiScanf(const char* format, ...) __attribute__((format(scanf, 1, 2)));

/// Non-blocking scanf variant (paper §3.1.3): reads one input line and
/// sends it, as a NUL-terminated string payload, to `handler_id` on the
/// calling PE; the recipient re-parses with sscanf.
void CmiScanfAsync(int handler_id);

// ---------------------------------------------------------------------------
// Machine-internal statistics (extension; used by tests and benches)
// ---------------------------------------------------------------------------

struct CmiStats {
  std::uint64_t msgs_sent = 0;       // logical messages this PE sent
  std::uint64_t msgs_delivered = 0;  // network messages dispatched here
  std::uint64_t msgs_enqueued = 0;   // CsdEnqueue* calls on this PE
  std::uint64_t msgs_scheduled = 0;  // scheduler-queue dispatches here
  std::uint64_t idle_blocks = 0;     // times the scheduler blocked idle
  // Aggregation layer (converse/stream.h).  msgs_sent counts logical
  // messages whether or not they traveled inside a frame; these two count
  // the physical frames and the messages that rode in them.
  std::uint64_t agg_frames_sent = 0;   // aggregate frames pushed to the wire
  std::uint64_t agg_msgs_batched = 0;  // messages that traveled inside frames
  std::uint64_t bcast_forwards = 0;    // spanning-tree wrapper sends (root
                                       // children + interior re-forwards)
  // Zero-copy broadcast path (MachineConfig::bcast_share_min): payload
  // copies made by broadcast calls on this PE (a shared-payload broadcast
  // performs exactly one, at the root), shared blocks built here, and
  // shared views dispatched here.
  std::uint64_t bcast_payload_copies = 0;
  std::uint64_t bcast_shared_blocks = 0;
  std::uint64_t bcast_shared_views = 0;
  // Zero-copy scatter landing: CmiVectorSend payloads written straight
  // into a pre-registered scatter's user buffers, no message allocated.
  std::uint64_t scatter_direct = 0;
  // Service runtime (converse/svc.h): per-PE admission-control outcomes of
  // requests arriving at sessions owned by this PE.
  std::uint64_t svc_admitted = 0;   // requests accepted into a session queue
  std::uint64_t svc_shed = 0;       // requests refused (queue cap / deadline)
  std::uint64_t svc_completed = 0;  // admitted requests that sent a reply
  // Adaptive seed balancing (converse/cld.h kSteal / kPeriodic).  All three
  // stay zero under the four legacy strategies (no adaptive code runs).
  std::uint64_t ldb_steals = 0;     // successful steals landed on this PE
                                    // (thief side: non-empty reply arrived)
  std::uint64_t ldb_steal_msgs = 0; // steal protocol messages sent from here
                                    // (requests + replies + surplus pushes)
  std::uint64_t ldb_rebalance_moves = 0;  // seeds this PE pushed away during
                                          // a kPeriodic rebalance tick
  // Transport layer (multi-node machines; converse/machine.h CmiTransport).
  // The first two are per-PE (the sending PE is known when a record is
  // created); the rest are node-level totals folded into every local PE's
  // snapshot, mirroring how agg/bcast counters read machine-wide in tests.
  // All six stay exactly zero on a single-node in-process machine.
  std::uint64_t wire_frames_sent = 0;     // wire records this PE created
  std::uint64_t wire_bytes_sent = 0;      // record header + body bytes
  std::uint64_t wire_bytes_received = 0;  // node: body bytes parsed off wire
  std::uint64_t wire_syscalls = 0;        // node: writev/read data syscalls
  std::uint64_t wire_reconnects = 0;      // node: re-established peer links
  std::uint64_t wire_dropped = 0;  // node: logical msgs lost to injected
                                   // disconnects (loopback wire only)
};

/// Snapshot of the current PE's counters.
CmiStats CmiGetStats();

/// Message-allocator counters, summed over every PE's size-class pool.
/// All zero when pooling is disabled (sanitizer builds, CONVERSE_POOL=0).
struct CmiMemoryStats {
  /// Upper bound on size classes a pool build can have; the valid prefix of
  /// the per-class arrays below is `size_classes` entries.
  static constexpr int kMaxSizeClasses = 16;

  bool pool_enabled = false;
  std::uint64_t pool_hits = 0;    // allocations served from a freelist
  std::uint64_t pool_misses = 0;  // freelist empty: fresh block carved
  std::uint64_t direct_allocs = 0;   // oversize or outside a PE thread
  std::uint64_t local_frees = 0;     // freed on the owning PE's thread
  std::uint64_t remote_frees = 0;    // pushed to the owner's return stack
  std::uint64_t remote_reclaimed = 0;  // pulled back from the return stack
  // First-touch arena placement: pool misses carve blocks out of per-PE
  // arena chunks (touched by the owning thread, so pages land on its NUMA
  // node) instead of hitting the global allocator per block.
  std::uint64_t arena_chunks = 0;  // arena chunks allocated across all PEs
  std::uint64_t arena_bytes = 0;   // total bytes in those chunks
  // Oversize (> largest size class) messages keep a small per-PE cache of
  // recently freed buffers so large-message traffic stops round-tripping
  // through the global allocator.
  std::uint64_t oversize_cached = 0;  // oversize frees parked in the cache
  std::uint64_t oversize_reused = 0;  // oversize allocs served from it
  // Per-size-class breakdown (valid prefix: `size_classes` entries).
  int size_classes = 0;
  std::uint64_t class_bytes[kMaxSizeClasses] = {};   // block size per class
  std::uint64_t class_hits[kMaxSizeClasses] = {};    // freelist hits
  std::uint64_t class_misses[kMaxSizeClasses] = {};  // arena carves
};

/// Process-wide snapshot of the message-pool counters.  Unlike
/// CmiGetStats this may be called outside a machine.
CmiMemoryStats CmiGetMemoryStats();

// ---------------------------------------------------------------------------
// Exit helpers
// ---------------------------------------------------------------------------

/// Broadcast a system message that calls CsdExitScheduler() on every PE
/// (including the caller).  The standard way to end a run in which every PE
/// sits in CsdScheduler(-1).
void ConverseBroadcastExit();

}  // namespace converse
