// CciRace — happens-before race detection for message-driven programs.
//
// TSan sees *physical* races: two threads touching one word without
// synchronization.  In a message-driven program the dangerous races are
// *logical*: two handlers that are unordered under the message
// happens-before relation touch the same buffer or Cpv/Csv state, even
// though this particular run happened to serialize them on one thread (or
// one sim baton).  CciRace detects exactly that class.
//
// Model (docs/ANALYSIS.md has the full story):
//  * Every handler dispatch opens a *context*; contexts carry ancestor
//    sets (which earlier contexts happen-before this one).  Edges are
//    added at send / local-enqueue / handler-dispatch / spanning-tree
//    broadcast / aggregation-frame boundaries — a frame carries the joined
//    clock of its appenders once per carrier.
//  * Message payloads registered by CmiAlloc, plus Cpv/Csv cells declared
//    with the macros below, get shadow metadata.  Accesses are recorded at
//    explicit annotation points (CmiRaceNoteRead/Write and the CpvAccess /
//    CsvAccess macros); two conflicting accesses from contexts unordered
//    by happens-before produce a candidate report with both provenance
//    chains.
//  * Sim-replay confirmation: CciRaceAnalyze re-executes the same seed
//    with the two deliveries' order flipped and diffs the runs'
//    order-insensitive outcome digests, classifying each candidate as
//    confirmed-divergent, benign-commutative, or unreplayable.
//
// The detector is layered on the deterministic sim backend
// (converse/sim.h) and is inert in normal threaded execution.  Like
// CciCheck, everything here compiles to zero bytes on hot paths unless the
// library was built with -DCONVERSE_RACE=ON (CONVERSE_RACE_ENABLED).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "converse/machine.h"

namespace converse {

/// Rule taxonomy.  Every report names exactly one rule.
enum class CciRaceRule : int {
  /// Conflicting unordered accesses to a CmiAlloc'd message payload
  /// (including aggregation-frame views).
  kPayloadRace = 0,
  /// Conflicting unordered accesses to a CpvDeclare'd (per-PE private)
  /// variable — necessarily two handlers of the same PE.
  kCpvRace,
  /// Conflicting unordered accesses to a CsvDeclare'd (node-shared)
  /// variable or a CciRaceRegisterNamed cell.
  kCsvRace,
  /// Conflicting unordered accesses to annotated memory outside any
  /// registered range.
  kMemoryRace,
};

const char* CciRaceRuleName(CciRaceRule rule);

/// What sim-replay confirmation concluded about a candidate pair.
enum class CciRaceClass : int {
  kUnconfirmed = 0,     ///< replay not attempted (confirm off / budget)
  kConfirmedDivergent,  ///< flipping the deliveries changed the outcome
  kBenignCommutative,   ///< flipped run produced the identical outcome
  kUnreplayable,        ///< the pair's order could not be flipped
};

const char* CciRaceClassName(CciRaceClass c);

/// True when the library was built with the detector compiled in.
constexpr bool CciRaceEnabled() {
#if CONVERSE_RACE_ENABLED
  return true;
#else
  return false;
#endif
}

/// One side of a racy pair.
struct CciRaceAccess {
  int pe = -1;
  bool is_write = false;
  /// Message provenance chain, innermost context first:
  /// "h5@pe1(msg pe0#12) <- h2@pe0(msg pe1#3) <- entry@pe1".
  std::string chain;
  /// Wire identity of the delivery that ran this context (replay handle);
  /// wire_src < 0 means the context was not a replayable wire delivery.
  int wire_src = -1;
  std::uint32_t wire_seq = 0;
  /// Global delivery-order stamp within the run (smaller = earlier).
  std::uint64_t order = 0;
};

/// A candidate (or confirmed) logical race.
struct CciRaceReport {
  CciRaceRule rule{};
  CciRaceClass classification = CciRaceClass::kUnconfirmed;
  std::uintptr_t address = 0;
  std::string object;      ///< "Cpv counter", "message payload", ...
  CciRaceAccess first;     ///< the access whose delivery came first
  CciRaceAccess second;
  bool replayable = false; ///< both sides are flippable wire deliveries
  std::string line;        ///< the formatted one-line report
};

/// Monotonic process-wide counters (handy for zero-cost pin tests).  When
/// the detector is compiled out, `tracked_cells` is -1 and everything else
/// is 0 — the counters are inert, not merely zero.
struct CciRaceCounters {
  long long tracked_cells = -1;  ///< currently registered ranges/cells
  long long accesses = 0;        ///< annotation events recorded
  long long candidates = 0;      ///< racy pairs detected
  long long confirmed = 0;       ///< pairs classified confirmed-divergent
};

CciRaceCounters CciRaceGetCounters();

/// Drain the reports published by machines that have since been torn down.
/// Ownership moves to the caller; a second call returns an empty vector.
std::vector<CciRaceReport> CciRaceTakeReports();

/// Knobs for CciRaceAnalyze.
struct CciRaceOptions {
  /// Run the sim-replay confirmation pass over the candidates.
  bool confirm = true;
  /// Cap on re-executions; candidates beyond it stay kUnconfirmed.
  int max_replays = 16;
  /// Called before *every* machine run (the baseline and each replay) so
  /// the entry closure's captured state can be re-initialized.
  std::function<void()> reset;
};

/// Run `entry` under the sim backend described by cfg (cfg.sim must be
/// set; fault injection is forced off so runs are comparable), collect
/// candidate races, then — unless opts.confirm is off — re-execute the
/// same seed once per replayable candidate with that pair's delivery
/// order flipped and classify it by comparing outcome digests.  With the
/// detector compiled out the program runs once and the result is empty.
std::vector<CciRaceReport> CciRaceAnalyze(
    const MachineConfig& cfg, const std::function<void(int, int)>& entry,
    const CciRaceOptions& opts = {});

/// Abort (CciCheck-style `[CciRace] fatal: rule=...` on stderr) on the
/// first confirmed-divergent report.  Benign/unreplayable pairs pass.
void CciRaceEnforce(const std::vector<CciRaceReport>& reports);

/// Register a named shared cell (outside the Cpv/Csv macros) so accesses
/// to it report rule csv-race with `name` in the object description.
/// No-op outside a sim-backed machine or with the detector compiled out.
void CciRaceRegisterNamed(const void* p, std::size_t n, const char* name);

namespace detail::race {
#if CONVERSE_RACE_ENABLED
void NoteAccess(const void* p, std::size_t n, bool is_write);
void OnCpvInit(const void* p, std::size_t n, const char* name);
void OnCsvInit(const void* p, std::size_t n, const char* name);
#else
inline void NoteAccess(const void*, std::size_t, bool) {}
inline void OnCpvInit(const void*, std::size_t, const char*) {}
inline void OnCsvInit(const void*, std::size_t, const char*) {}
#endif
}  // namespace detail::race

/// Annotate an access to tracked memory (message payload, frame view, or
/// a registered cell).  Inert unless the current thread is a PE of a
/// sim-backed machine with the detector compiled in.
inline void CmiRaceNoteRead(const void* p, std::size_t n) {
  detail::race::NoteAccess(p, n, /*is_write=*/false);
}
inline void CmiRaceNoteWrite(const void* p, std::size_t n) {
  detail::race::NoteAccess(p, n, /*is_write=*/true);
}

}  // namespace converse

// ---------------------------------------------------------------------------
// Cpv/Csv — processor- and node-private variable macros (paper §3.2).
//
// CpvDeclare(type, name) declares per-PE storage (one instance per PE
// thread); CsvDeclare declares node-shared storage.  CpvInitialize /
// CsvInitialize must run before first use (per PE for Cpv) and register
// the cell with CciRace when the detector is live.  CpvAccess/CsvAccess
// yield an lvalue; under CciRace each expansion records one conservative
// *write* access (cheaper and stricter than separating reads).
// ---------------------------------------------------------------------------
#define CpvDeclare(type, name) thread_local type Cpv_var_##name {}
#define CpvStaticDeclare(type, name) static thread_local type Cpv_var_##name {}
#define CpvExtern(type, name) extern thread_local type Cpv_var_##name

#define CpvInitialize(type, name)                                           \
  do {                                                                      \
    Cpv_var_##name = decltype(Cpv_var_##name){};                            \
    ::converse::detail::race::OnCpvInit(                                    \
        &Cpv_var_##name, sizeof(Cpv_var_##name), #name);                    \
  } while (0)

#define CpvAccess(name)                                                     \
  (::converse::detail::race::NoteAccess(&Cpv_var_##name,                    \
                                        sizeof(Cpv_var_##name), true),      \
   Cpv_var_##name)

#define CsvDeclare(type, name) type Csv_var_##name {}
#define CsvStaticDeclare(type, name) static type Csv_var_##name {}
#define CsvExtern(type, name) extern type Csv_var_##name

// CsvInitialize registers only (no zeroing write: the cell is shared, and
// re-zeroing from every PE would itself be the race we are hunting).
#define CsvInitialize(type, name)                                           \
  ::converse::detail::race::OnCsvInit(&Csv_var_##name,                      \
                                      sizeof(Csv_var_##name), #name)

#define CsvAccess(name)                                                     \
  (::converse::detail::race::NoteAccess(&Csv_var_##name,                    \
                                        sizeof(Csv_var_##name), true),      \
   Csv_var_##name)
