// Deterministic simulation backend for the in-process machine.
//
// Almost every interesting bug in a message-driven runtime is an
// interleaving or message-ordering bug, which wall-clock, really-threaded
// tests can neither reproduce nor shrink.  Attaching a SimConfig to a
// MachineConfig turns the machine into a deterministic simulator: the PE
// threads still exist, but a coordinator serializes them so exactly one
// runs at a time, every scheduling choice (who runs next, delivery order,
// timed arrival) is drawn from a single seeded PRNG, and time is virtual —
// it advances only when every PE is blocked, jumping straight to the next
// modeled arrival.  The same seed therefore replays the same event order
// bit-for-bit, captured in a trace hash.
//
// A fault injector on the inter-PE send path can drop, duplicate, delay,
// or reorder regular messages with configured probabilities (immediate-lane
// messages and local scheduler enqueues are never faulted: they are the
// reliable control plane).  On top of the backend, converse::sim provides a
// property-based fuzz workload with invariant oracles and a failing-seed
// minimizer; see tools/simfuzz and docs/TESTING.md.
#pragma once

#include <cstdint>
#include <string>

namespace converse {

/// Fault-injection probabilities, each in [0, 1), applied independently to
/// every regular inter-PE message at send time.  Messages a PE sends to
/// itself are exempt (they never cross a network), as are immediate-lane
/// messages and local scheduler enqueues — together they form the reliable
/// control plane that timers and shutdown protocols can build on.
struct SimFaults {
  double drop = 0.0;     // message silently freed, never delivered
  double dup = 0.0;      // an identical copy (same header seq) also arrives
  double delay = 0.0;    // extra virtual latency, uniform in [0, delay_max_us]
  double reorder = 0.0;  // message held back past the sender's next message
                         // to the same destination (per-sender FIFO broken)
  double delay_max_us = 500.0;
  /// Stop injecting after this many faults (bounds lost messages so fuzz
  /// workloads still make progress under high probabilities).
  std::uint64_t max_faults = UINT64_MAX;

  bool Any() const {
    return drop > 0 || dup > 0 || delay > 0 || reorder > 0;
  }
};

/// Counters filled into SimConfig::report when the machine tears down.
/// msgs_dropped / msgs_duplicated count LOGICAL messages: a faulted wire
/// message that is an aggregation frame or a spanning-tree broadcast
/// carrier (converse/stream.h) is weighted by the logical messages it
/// carries, so the conservation law delivered == sent - dropped +
/// duplicated holds whether or not aggregation is on.  faults_injected
/// counts injection events (one per faulted wire message), matching
/// SimFaults::max_faults.
struct SimReport {
  std::uint64_t trace_hash = 0;   // FNV-1a over the ordered event stream
  std::uint64_t events = 0;       // hashed events (send/deliver/switch/...)
  std::uint64_t context_switches = 0;  // PE-to-PE baton handoffs
  std::uint64_t msgs_dropped = 0;
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msgs_delayed = 0;
  std::uint64_t msgs_reordered = 0;
  std::uint64_t faults_injected = 0;  // injection events (wire messages)
  std::uint64_t agg_frames = 0;       // aggregation frames sent machine-wide
  std::uint64_t agg_msgs_batched = 0; // messages that rode inside frames
  double final_virtual_us = 0.0;  // virtual clock at teardown
  bool quiesced = false;          // the quiescence exit fired at least once
  /// Order-insensitive digest of the logical deliveries: a commutative
  /// (wrapping) sum over one hash per delivery of (pe, handler, payload
  /// size, payload CRC).  Header bytes are excluded so per-sender seq
  /// reassignment under a flipped schedule does not pollute it.  Two runs
  /// with equal outcome_hash performed the same multiset of deliveries —
  /// the comparison CciRace's replay confirmation classifies by.
  std::uint64_t outcome_hash = 0;
  /// True when SimConfig::flip found and flipped its target pair.
  bool flip_applied = false;
};

/// A delivery-order flip for CciRace replay confirmation: hold the wire
/// message (hold_src, hold_seq) back at its send until the wire message
/// (until_src, until_seq) has been delivered, then release it — the two
/// deliveries' order is exactly inverted relative to the baseline run.
/// If the until-delivery never happens, the held message is released at
/// quiescence and the report's flip_applied stays false (unreplayable).
struct SimFlip {
  bool enabled = false;
  int hold_src = -1;
  std::uint32_t hold_seq = 0;
  int until_src = -1;
  std::uint32_t until_seq = 0;
};

/// Attach to MachineConfig::sim to run that machine deterministically.
struct SimConfig {
  /// Seed for every simulator choice (schedule, faults).  Replaying with
  /// the same seed and the same workload reproduces the same event order.
  std::uint64_t seed = 1;

  SimFaults faults;

  /// When every PE is blocked with no pending or future message (global
  /// quiescence), raise the exit flag on all PEs so CsdScheduler(-1) loops
  /// return — the simulated analogue of "the program went idle".  A PE that
  /// blocks again without making progress afterwards is a genuine deadlock
  /// and aborts the machine with a diagnostic.  When false, quiescence
  /// itself is reported as a deadlock.
  bool exit_on_quiescence = true;

  /// Test-only toggle: deliberately violate per-sender FIFO (same hold-back
  /// mechanism as the reorder fault but *not* recorded as a fault), so the
  /// invariant oracles can demonstrate catching a planted ordering bug.
  bool plant_reorder_bug = false;

  /// Optional out-param, filled when the machine finishes.
  SimReport* report = nullptr;

  /// Run the CciRace happens-before detector on this machine (only
  /// meaningful when the library was built with CONVERSE_RACE_ENABLED;
  /// see converse/race.h).
  bool race_detect = true;

  /// Suppress CciRace candidate printing (CciRaceAnalyze sets this for its
  /// replay runs, which re-detect the baseline's candidates).
  bool race_quiet = false;

  /// Delivery-order flip for CciRace replay confirmation.
  SimFlip flip;
};

namespace sim {

/// Parameters of one randomized fuzz workload run (see src/sim/fuzz.cpp):
/// random handler graphs exercising sends, broadcasts, immediate messages,
/// Cmm put/probe/get, thread suspend/resume, and priority enqueues, checked
/// against invariant oracles.
struct FuzzParams {
  std::uint64_t seed = 1;
  int npes = 4;
  int actions = 48;  // root ops injected per PE (each fans out by TTL)
  int threads = 2;   // Cth threads per PE doing suspend/resume traffic
  SimFaults faults;
  bool plant_reorder_bug = false;
  /// Run with small-message aggregation on (MachineConfig::aggregate_sends
  /// = 1): adds aggregated send bursts and explicit CmiFlush calls to the
  /// action mix, and the oracles see through frames.
  bool aggregate = false;
};

struct FuzzResult {
  bool ok = false;
  std::string failure;  // first violated invariant (empty when ok)
  SimReport report;
};

/// Run one deterministic fuzz case and check every invariant oracle:
///  * immediate-lane and local-enqueue messages are never lost, duplicated,
///    or reordered (they are never faulted);
///  * regular-message conservation: delivered == sent - dropped + duplicated;
///  * per-sender FIFO per destination whenever no configured fault can
///    legally reorder (dup/delay/reorder all zero) — this is the oracle
///    that catches plant_reorder_bug;
///  * no duplicate delivery when dup == 0;
///  * Cmm tag/wildcard retrievals match a naive reference mailbox;
///  * the run ends by global quiescence (no stuck PE).
FuzzResult RunFuzzCase(const FuzzParams& params);

/// Shrink a failing case: greedily try fewer actions, fewer threads, fewer
/// PEs, and disabled fault dimensions (at most `budget` deterministic
/// re-runs), keeping every reduction that still fails.  Returns the
/// smallest still-failing parameters (the input itself if nothing smaller
/// fails).
FuzzParams Minimize(const FuzzParams& failing, int budget = 64);

/// One-line replay command for a parameter set, e.g.
/// "CONVERSE_SIM_SEED=7 tools/simfuzz --pes 3 --actions 12 --plant-bug".
std::string FormatReplay(const FuzzParams& params);

/// Parameters of one CciRace fuzz run (simfuzz --race): seeded token
/// chains hop between PEs writing per-chain registered cells (causally
/// ordered, so a sound detector must stay silent), optionally with a
/// planted unordered pair on a shared cell.
struct RaceFuzzParams {
  std::uint64_t seed = 1;
  int npes = 4;
  int chains = 5;  // independent causal chains (never racy)
  int hops = 6;    // cross-PE hops per chain
  /// 0 = no plant; 1 = divergent pair (order-sensitive updates echoed to
  /// the root — must classify confirmed-divergent); 2 = benign pair
  /// (commutative increments — must classify benign-commutative).
  int plant = 0;
};

struct RaceFuzzResult {
  bool ok = false;
  std::string failure;  // first violated expectation (empty when ok)
  int candidates = 0;
  int divergent = 0;
  int benign = 0;
  int unreplayable = 0;
};

/// True when the library was built with the race detector compiled in;
/// RunRaceFuzzCase fails fast otherwise.
bool RaceFuzzAvailable();

/// Run one race-detection fuzz case through CciRaceAnalyze and check the
/// expectations for its plant mode: no plant -> zero candidates; plant 1
/// -> at least one confirmed-divergent; plant 2 -> at least one
/// benign-commutative and zero divergent.
RaceFuzzResult RunRaceFuzzCase(const RaceFuzzParams& params);

/// One-line replay command, e.g. "tools/simfuzz --race --seed 7 --pes 4".
std::string FormatRaceReplay(const RaceFuzzParams& params);

}  // namespace sim
}  // namespace converse
